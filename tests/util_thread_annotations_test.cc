// Runtime behavior of the capability-annotated lock primitives in
// util/thread_annotations.h. The *static* half of the contract — that an
// unannotated access fails to compile under ZOMBIE_THREAD_SAFETY=ON — is
// proven by the configure-time try_compile matrix over tests/compile_fail/
// (ctest cases prefixed compile_fail_, clang only); these tests pin the
// dynamic half: the wrappers must behave exactly like the std primitives
// they shim, on every compiler.

#include "util/thread_annotations.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace zombie {
namespace {

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu;
  mu.Lock();
  // Already held: TryLock must fail from another thread...
  bool try_while_held = true;
  std::thread probe([&] { try_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(try_while_held);
  mu.Unlock();
  // ...and succeed once released.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, GuardsCriticalSection) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 2500;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SharedMutexTest, WriterExcludesWriter) {
  SharedMutex mu;
  int value = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIters = 2500;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value, kThreads * kIters);
}

TEST(SharedMutexTest, ReadersSeeConsistentSnapshots) {
  // Writers bump two counters under the exclusive lock; readers take the
  // shared lock and must never observe them out of sync.
  SharedMutex mu;
  int a = 0;
  int b = 0;
  bool torn = false;
  std::thread writer([&] {
    for (int i = 0; i < 5000; ++i) {
      WriterMutexLock lock(&mu);
      ++a;
      ++b;
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        ReaderMutexLock lock(&mu);
        if (a != b) torn = true;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn);
  EXPECT_EQ(a, 5000);
  EXPECT_EQ(b, 5000);
}

TEST(CondVarTest, WaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&lock);
    observed = 42;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, NotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&lock);
      ++woke;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke, kWaiters);
}

}  // namespace
}  // namespace zombie
