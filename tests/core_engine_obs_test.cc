// Engine <-> observability contract tests: attaching an ObsContext (any
// sink combination) never changes RunResult, the expected metric series
// appear, and the no-op-sink configuration adds zero allocations per pull
// relative to the uninstrumented engine.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "gtest/gtest.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

}  // namespace
}  // namespace zombie

void* operator new(std::size_t size) {
  if (zombie::g_count_allocs.load(std::memory_order_relaxed)) {
    zombie::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace zombie {
namespace {

/// Every deterministic RunResult field; wall_micros deliberately excluded.
std::string Fingerprint(const RunResult& r) {
  std::string s = StrFormat(
      "items=%zu loop=%lld holdout=%lld q=%.17g stop=%s pos=%zu\n",
      r.items_processed, static_cast<long long>(r.loop_virtual_micros),
      static_cast<long long>(r.holdout_virtual_micros), r.final_quality,
      StopReasonName(r.stop_reason), r.positives_processed);
  for (const ArmSummary& a : r.arms) {
    s += StrFormat("arm %zu %zu %.17g %zu\n", a.group_size, a.pulls,
                   a.total_reward, a.positives_seen);
  }
  s += r.curve.ToCsv();
  return s;
}

class EngineObsTest : public ::testing::Test {
 protected:
  EngineObsTest()
      : task_(MakeTask(TaskKind::kWebCat, 700, 42)),
        grouper_(6, 7),
        grouping_(grouper_.Group(task_.corpus)) {
    opts_.seed = 1;
    opts_.holdout_size = 100;
    opts_.stop.max_items = 120;
  }

  RunResult RunWith(ObsContext* obs) {
    EngineOptions opts = opts_;
    opts.obs = obs;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    return engine.Run(RunSpec(grouping_, policy_, learner_, reward_));
  }

  Task task_;
  KMeansGrouper grouper_;
  GroupingResult grouping_;
  EngineOptions opts_;
  EpsilonGreedyPolicy policy_;
  NaiveBayesLearner learner_;
  LabelReward reward_;
};

TEST_F(EngineObsTest, ResultsIdenticalWithEverySinkCombination) {
  std::string baseline = Fingerprint(RunWith(nullptr));
  for (int mask = 0; mask < 8; ++mask) {
    ObsOptions obs_opts;
    obs_opts.metrics = (mask & 1) != 0;
    obs_opts.trace = (mask & 2) != 0;
    obs_opts.decision_log = (mask & 4) != 0;
    ObsContext obs(obs_opts);
    EXPECT_EQ(Fingerprint(RunWith(&obs)), baseline)
        << "sink mask " << mask << " changed the run";
  }
}

TEST_F(EngineObsTest, ExpectedMetricSeriesAppear) {
  ObsContext obs;
  RunResult r = RunWith(&obs);
  ASSERT_NE(obs.metrics(), nullptr);
  EXPECT_EQ(obs.metrics()->GetCounter("engine.pulls")->value(),
            r.items_processed);
  EXPECT_EQ(obs.metrics()->GetCounter("engine.positives")->value(),
            r.positives_processed);
  EXPECT_GT(obs.metrics()->GetCounter("engine.evals")->value(), 0u);
  // No cache configured: every featurization counts as a bypass.
  EXPECT_GT(obs.metrics()->GetCounter("featureeng.cache.bypass")->value(),
            0u);
  HistogramSnapshot extract =
      obs.metrics()->GetHistogram("featureeng.extract_us")->Snapshot();
  EXPECT_GE(extract.count, r.items_processed);
  // Per-component series are suffixed with the component's name.
  EXPECT_GT(obs.metrics()
                ->GetHistogram("bandit.select_us." + policy_.name())
                ->Snapshot()
                .count,
            0u);
  EXPECT_EQ(obs.metrics()
                ->GetHistogram("learner.update_us." + learner_.name())
                ->Snapshot()
                .count,
            r.items_processed);
}

TEST_F(EngineObsTest, TraceSpansNestAndDecisionLogMatchesRun) {
  ObsContext obs;
  RunResult r = RunWith(&obs);
  ASSERT_NE(obs.trace(), nullptr);
  bool saw_run = false, saw_loop = false, saw_holdout = false;
  for (const TraceEvent& e : obs.trace()->Events()) {
    if (e.name == "engine.run") saw_run = true;
    if (e.name == "engine.loop") saw_loop = true;
    if (e.name == "engine.holdout") saw_holdout = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_loop);
  EXPECT_TRUE(saw_holdout);

  ASSERT_NE(obs.decisions(), nullptr);
  EXPECT_EQ(obs.decisions()->num_records(), r.items_processed);
}

TEST_F(EngineObsTest, NoopSinkAddsZeroAllocations) {
  // An ObsContext with every sink disabled must leave the engine's
  // allocation profile untouched: the instrumented paths reduce to null
  // checks. Allocation counts of a deterministic run are deterministic,
  // so exact equality is the right assertion.
  RunWith(nullptr);  // warm lazy init (vocabularies, interned strings)

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  RunWith(nullptr);
  g_count_allocs.store(false, std::memory_order_relaxed);
  uint64_t baseline = g_alloc_count.load(std::memory_order_relaxed);

  ObsOptions no_sinks;
  no_sinks.metrics = false;
  no_sinks.trace = false;
  no_sinks.decision_log = false;
  ObsContext noop(no_sinks);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  RunWith(&noop);
  g_count_allocs.store(false, std::memory_order_relaxed);
  uint64_t with_noop = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_GT(baseline, 0u);
  EXPECT_EQ(with_noop, baseline);
}

}  // namespace
}  // namespace zombie
