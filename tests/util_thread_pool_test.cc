#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/string_util.h"

namespace zombie {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(&pool, 50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not run"; });
  SUCCEED();
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

// Race stress: many roots each fan out children (and grandchildren) while
// the main thread is already blocked in Wait(). Run under
// -DZOMBIE_SANITIZE=thread this doubles as the TSan regression test for the
// Submit-during-Wait protocol.
TEST(ThreadPoolTest, StressSubmitFromTasksDuringWait) {
  ThreadPool pool(4);
  constexpr int kRounds = 20;
  constexpr int kRoots = 32;
  constexpr int kChildren = 8;
  constexpr int kGrandchildren = 2;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> counter{0};
    for (int i = 0; i < kRoots; ++i) {
      pool.Submit([&] {
        counter.fetch_add(1);
        for (int c = 0; c < kChildren; ++c) {
          pool.Submit([&] {
            counter.fetch_add(1);
            for (int g = 0; g < kGrandchildren; ++g) {
              pool.Submit([&] { counter.fetch_add(1); });
            }
          });
        }
      });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(),
              kRoots * (1 + kChildren * (1 + kGrandchildren)));
  }
}

// ParallelFor bodies that feed a shared accumulator via atomic ops must not
// tear or drop updates regardless of pool size.
TEST(ThreadPoolTest, StressParallelForRepeated) {
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    ParallelFor(&pool, 200, [&sum](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i));
    });
    EXPECT_EQ(sum.load(), 199 * 200 / 2);
  }
}

TEST(ParallelForStatusTest, AllOkReturnsOk) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50);
  Status st = ParallelForStatus(&pool, 50, [&hits](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForStatusTest, ZeroIterationsIsOk) {
  ThreadPool pool(2);
  Status st = ParallelForStatus(&pool, 0, [](size_t) {
    ADD_FAILURE() << "must not run";
    return Status::Internal("unreachable");
  });
  EXPECT_TRUE(st.ok());
}

TEST(ParallelForStatusTest, SingleFailureIsPropagated) {
  ThreadPool pool(4);
  Status st = ParallelForStatus(&pool, 20, [](size_t i) {
    if (i == 13) return Status::NotFound("iteration 13");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "iteration 13");
}

// Several iterations fail; the reported one must be the smallest index, not
// whichever worker lost the race — repeated to make scheduling luck
// irrelevant.
TEST(ParallelForStatusTest, FirstFailureByIndexWinsDeterministically) {
  ThreadPool pool(8);
  for (int round = 0; round < 25; ++round) {
    Status st = ParallelForStatus(&pool, 64, [](size_t i) {
      if (i % 2 == 1) {
        return Status::Internal(StrFormat("failed at %zu", i));
      }
      return Status::OK();
    });
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_EQ(st.message(), "failed at 1");
  }
}

// Failures must not short-circuit other iterations: every index still runs,
// so results never depend on which worker noticed a problem first.
TEST(ParallelForStatusTest, AllIterationsRunDespiteFailures) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status st = ParallelForStatus(&pool, 40, [&ran](size_t i) {
    ran.fetch_add(1);
    if (i < 5) return Status::Internal("early failure");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(ran.load(), 40);
}

// A task still running when the destructor begins must not be able to
// enqueue more work: the racing Submit is a checked fatal, not silent queue
// corruption.
TEST(ThreadPoolDeathTest, SubmitAfterDestructionBeganDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        ThreadPool* raw = &pool;
        pool.Submit([raw] {
          // Outlive the destructor's entry (it flips `accepting_` before
          // joining, then blocks on this very task).
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          raw->Submit([] {});
        });
        // Scope exit destroys the pool while the task sleeps.
      },
      "ThreadPool::Submit after destruction began");
}

}  // namespace
}  // namespace zombie
