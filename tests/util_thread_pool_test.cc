#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace zombie {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(&pool, 50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not run"; });
  SUCCEED();
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

}  // namespace
}  // namespace zombie
