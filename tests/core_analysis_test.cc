#include "core/analysis.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

RunResult MakeRun(std::vector<std::pair<int64_t, double>> micros_quality,
                  int64_t holdout_micros = 0) {
  RunResult r;
  size_t items = 0;
  for (const auto& [micros, quality] : micros_quality) {
    CurvePoint p;
    p.items_processed = items;
    p.virtual_micros = micros;
    p.quality = quality;
    r.curve.Add(p);
    items += 100;
  }
  r.items_processed = items == 0 ? 0 : items - 100;
  r.final_quality = r.curve.FinalQuality();
  r.holdout_virtual_micros = holdout_micros;
  r.loop_virtual_micros =
      micros_quality.empty() ? 0 : micros_quality.back().first;
  return r;
}

TEST(SpeedupTest, ComputesCrossingsAndRatios) {
  // Baseline reaches 0.76 (95% of 0.8) at t=8000; zombie at t=2000.
  RunResult baseline = MakeRun({{0, 0.0}, {4000, 0.5}, {8000, 0.78}, {12000, 0.8}});
  RunResult zombie = MakeRun({{0, 0.0}, {2000, 0.79}, {3000, 0.8}});
  SpeedupReport s = ComputeSpeedup(baseline, zombie, 0.95);
  EXPECT_NEAR(s.target_quality, 0.76, 1e-12);
  EXPECT_EQ(s.baseline_micros, 8000);
  EXPECT_EQ(s.treatment_micros, 2000);
  EXPECT_DOUBLE_EQ(s.time_speedup, 4.0);
  EXPECT_EQ(s.baseline_items, 200);
  EXPECT_EQ(s.treatment_items, 100);
  EXPECT_DOUBLE_EQ(s.items_speedup, 2.0);
  EXPECT_TRUE(s.valid());
  EXPECT_NE(s.ToString().find("4.00x"), std::string::npos);
}

TEST(SpeedupTest, HoldoutCostCountsOnBothSides) {
  RunResult baseline = MakeRun({{0, 0.0}, {1000, 1.0}}, /*holdout=*/500);
  RunResult zombie = MakeRun({{0, 0.0}, {1000, 1.0}}, /*holdout=*/500);
  SpeedupReport s = ComputeSpeedup(baseline, zombie, 0.95);
  EXPECT_EQ(s.baseline_micros, 1500);
  EXPECT_EQ(s.treatment_micros, 1500);
  EXPECT_DOUBLE_EQ(s.time_speedup, 1.0);
}

TEST(SpeedupTest, UnreachedTargetInvalidates) {
  RunResult baseline = MakeRun({{0, 0.0}, {1000, 0.8}});
  RunResult zombie = MakeRun({{0, 0.0}, {1000, 0.5}});  // never gets there
  SpeedupReport s = ComputeSpeedup(baseline, zombie, 0.95);
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s.treatment_micros, -1);
  EXPECT_NE(s.ToString().find("not reached"), std::string::npos);
}

TEST(SpeedupTest, SlowdownReportsBelowOne) {
  RunResult baseline = MakeRun({{0, 0.0}, {1000, 1.0}});
  RunResult slower = MakeRun({{0, 0.0}, {4000, 1.0}});
  SpeedupReport s = ComputeSpeedup(baseline, slower, 0.9);
  EXPECT_DOUBLE_EQ(s.time_speedup, 0.25);
}

TEST(MeanCurveTest, AveragesPointwise) {
  RunResult a = MakeRun({{0, 0.0}, {1000, 0.4}});
  RunResult b = MakeRun({{0, 0.2}, {3000, 0.6}});
  auto mc = MeanCurve({a, b});
  ASSERT_EQ(mc.size(), 2u);
  EXPECT_DOUBLE_EQ(mc[0].mean_quality, 0.1);
  EXPECT_DOUBLE_EQ(mc[1].mean_quality, 0.5);
  EXPECT_DOUBLE_EQ(mc[1].mean_virtual_seconds, 0.002);
  EXPECT_GT(mc[1].stddev_quality, 0.0);
}

TEST(MeanCurveTest, TruncatesToShortestCurve) {
  RunResult a = MakeRun({{0, 0.0}, {1000, 0.4}, {2000, 0.8}});
  RunResult b = MakeRun({{0, 0.0}, {1000, 0.4}});
  EXPECT_EQ(MeanCurve({a, b}).size(), 2u);
  EXPECT_TRUE(MeanCurve({}).empty());
}

TEST(MeanScalarsTest, Basics) {
  RunResult a = MakeRun({{0, 0.0}, {1000000, 1.0}});
  RunResult b = MakeRun({{0, 0.0}, {3000000, 0.5}});
  std::vector<RunResult> runs;
  runs.push_back(a);
  runs.push_back(b);
  EXPECT_DOUBLE_EQ(MeanFinalQuality(runs), 0.75);
  EXPECT_DOUBLE_EQ(MeanItemsProcessed(runs), 100.0);
  EXPECT_DOUBLE_EQ(MeanVirtualSeconds(runs), 2.0);
}

}  // namespace
}  // namespace zombie
