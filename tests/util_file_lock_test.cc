// FileLock semantics the persistent feature store's role election depends
// on: exclusive excludes exclusive, shared coexists with shared, and
// exclusive is refused while shared is held. flock attaches to the open
// file description, so two Acquire calls in one process contend exactly
// like two processes — which is what makes these tests (and the store's
// in-process reader/writer tests) possible without forking.

#include <string>

#include "gtest/gtest.h"
#include "util/file_lock.h"

namespace zombie {
namespace {

std::string LockPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FileLockTest, ExclusiveExcludesExclusive) {
  std::string path = LockPath("fl_ex_ex.lock");
  StatusOr<FileLock> first =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first.value().held());
  EXPECT_EQ(first.value().mode(), FileLockMode::kExclusive);

  StatusOr<FileLock> second =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FileLockTest, SharedCoexistsWithShared) {
  std::string path = LockPath("fl_sh_sh.lock");
  StatusOr<FileLock> first = FileLock::Acquire(path, FileLockMode::kShared);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  StatusOr<FileLock> second = FileLock::Acquire(path, FileLockMode::kShared);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(first.value().held());
  EXPECT_TRUE(second.value().held());
}

TEST(FileLockTest, ExclusiveRefusedWhileSharedHeld) {
  std::string path = LockPath("fl_sh_ex.lock");
  StatusOr<FileLock> reader = FileLock::Acquire(path, FileLockMode::kShared);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  StatusOr<FileLock> writer =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FileLockTest, ReleaseAllowsReacquisition) {
  std::string path = LockPath("fl_release.lock");
  StatusOr<FileLock> first =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  first.value().Release();
  EXPECT_FALSE(first.value().held());
  StatusOr<FileLock> second =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  EXPECT_TRUE(second.ok()) << second.status().ToString();
}

TEST(FileLockTest, DestructorReleases) {
  std::string path = LockPath("fl_dtor.lock");
  {
    StatusOr<FileLock> held =
        FileLock::Acquire(path, FileLockMode::kExclusive);
    ASSERT_TRUE(held.ok()) << held.status().ToString();
  }
  StatusOr<FileLock> again =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST(FileLockTest, MoveTransfersOwnership) {
  std::string path = LockPath("fl_move.lock");
  StatusOr<FileLock> first =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  FileLock moved = std::move(first).value();
  EXPECT_TRUE(moved.held());
  // Still exclusively held (by `moved`), so a second acquire fails.
  StatusOr<FileLock> second =
      FileLock::Acquire(path, FileLockMode::kExclusive);
  EXPECT_FALSE(second.ok());
}

}  // namespace
}  // namespace zombie
