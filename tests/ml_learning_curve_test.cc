#include "ml/learning_curve.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

CurvePoint P(size_t items, int64_t micros, double quality) {
  CurvePoint p;
  p.items_processed = items;
  p.virtual_micros = micros;
  p.quality = quality;
  return p;
}

TEST(LearningCurveTest, EmptyDefaults) {
  LearningCurve c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.FinalQuality(), 0.0);
  EXPECT_EQ(c.PeakQuality(), 0.0);
  EXPECT_EQ(c.TimeToQuality(0.5), -1);
  EXPECT_EQ(c.ItemsToQuality(0.5), -1);
}

TEST(LearningCurveTest, FinalAndPeak) {
  LearningCurve c;
  c.Add(P(0, 0, 0.0));
  c.Add(P(10, 100, 0.8));
  c.Add(P(20, 200, 0.6));  // quality can regress
  EXPECT_DOUBLE_EQ(c.FinalQuality(), 0.6);
  EXPECT_DOUBLE_EQ(c.PeakQuality(), 0.8);
  EXPECT_EQ(c.size(), 3u);
}

TEST(LearningCurveTest, TimeAndItemsToQuality) {
  LearningCurve c;
  c.Add(P(0, 0, 0.0));
  c.Add(P(10, 1000, 0.3));
  c.Add(P(20, 2000, 0.7));
  c.Add(P(30, 3000, 0.9));
  EXPECT_EQ(c.TimeToQuality(0.5), 2000);
  EXPECT_EQ(c.ItemsToQuality(0.5), 20);
  EXPECT_EQ(c.TimeToQuality(0.0), 0);
  EXPECT_EQ(c.TimeToQuality(0.95), -1);
}

TEST(LearningCurveTest, NormalizedAucOrdering) {
  // A fast learner's curve dominates a slow one.
  LearningCurve fast;
  fast.Add(P(0, 0, 0.0));
  fast.Add(P(10, 100, 0.9));
  fast.Add(P(20, 200, 0.9));
  LearningCurve slow;
  slow.Add(P(0, 0, 0.0));
  slow.Add(P(10, 100, 0.1));
  slow.Add(P(20, 200, 0.9));
  EXPECT_GT(fast.NormalizedAucItems(), slow.NormalizedAucItems());
}

TEST(LearningCurveTest, NormalizedAucConstantCurve) {
  LearningCurve c;
  c.Add(P(0, 0, 0.5));
  c.Add(P(100, 1000, 0.5));
  EXPECT_NEAR(c.NormalizedAucItems(), 0.5, 1e-12);
}

TEST(LearningCurveTest, SinglePointAucIsFinal) {
  LearningCurve c;
  c.Add(P(5, 50, 0.42));
  EXPECT_DOUBLE_EQ(c.NormalizedAucItems(), 0.42);
}

TEST(LearningCurveTest, CsvHasHeaderAndRows) {
  LearningCurve c;
  c.Add(P(0, 0, 0.0));
  c.Add(P(25, 1000000, 0.5));
  std::string csv = c.ToCsv();
  EXPECT_NE(csv.find("items,virtual_seconds,quality"), std::string::npos);
  EXPECT_NE(csv.find("\n25,1.000000,0.500000"), std::string::npos);
}

TEST(LearningCurveDeathTest, NonMonotonicItemsAbort) {
  LearningCurve c;
  c.Add(P(10, 100, 0.1));
  EXPECT_DEATH(c.Add(P(5, 200, 0.2)), "Check failed");
}

TEST(LearningCurveDeathTest, NonMonotonicTimeAborts) {
  LearningCurve c;
  c.Add(P(10, 100, 0.1));
  EXPECT_DEATH(c.Add(P(20, 50, 0.2)), "Check failed");
}

}  // namespace
}  // namespace zombie
