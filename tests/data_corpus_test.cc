#include "data/corpus.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

Document MakeDoc(uint64_t id, std::vector<uint32_t> tokens, int32_t label,
                 uint32_t domain = 0) {
  Document d;
  d.id = id;
  d.tokens = std::move(tokens);
  d.label = label;
  d.domain = domain;
  d.extraction_cost_micros = 1000;
  d.labeling_cost_micros = 10;
  return d;
}

TEST(CorpusTest, AddAndAccess) {
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("a");
  c.mutable_vocabulary().GetOrAdd("b");
  c.AddDomain("site0");
  EXPECT_EQ(c.AddDocument(MakeDoc(7, {0, 1}, 1)), 0u);
  EXPECT_EQ(c.AddDocument(MakeDoc(8, {1}, 0)), 1u);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.doc(0).id, 7u);
  EXPECT_EQ(c.doc(1).label, 0);
  EXPECT_EQ(c.DomainName(0), "site0");
}

TEST(CorpusTest, StatsComputation) {
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("t");
  c.AddDomain("d");
  c.AddDocument(MakeDoc(0, {0, 0}, 1));
  c.AddDocument(MakeDoc(1, {0}, 0));
  c.AddDocument(MakeDoc(2, {0, 0, 0}, 0));
  CorpusStats s = c.ComputeStats();
  EXPECT_EQ(s.num_documents, 3u);
  EXPECT_EQ(s.num_positive, 1u);
  EXPECT_NEAR(s.positive_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.mean_length, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_extraction_cost_ms, 1.0);
  EXPECT_EQ(s.num_domains, 1u);
  EXPECT_EQ(s.vocabulary_size, 1u);
}

TEST(CorpusTest, EmptyStats) {
  Corpus c;
  CorpusStats s = c.ComputeStats();
  EXPECT_EQ(s.num_documents, 0u);
  EXPECT_EQ(s.positive_fraction, 0.0);
}

TEST(CorpusTest, ValidateCatchesBadTokenId) {
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("only");
  c.AddDocument(MakeDoc(0, {5}, 0));  // token 5 beyond vocab of 1
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CorpusTest, ValidateCatchesBadDomain) {
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("t");
  c.AddDomain("d0");
  c.AddDocument(MakeDoc(0, {0}, 0, /*domain=*/3));
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CorpusTest, ValidateCatchesNegativeCost) {
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("t");
  Document d = MakeDoc(0, {0}, 0);
  d.extraction_cost_micros = -5;
  c.AddDocument(std::move(d));
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CorpusTest, ValidateAcceptsWellFormed) {
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("t");
  c.AddDomain("d");
  c.AddDocument(MakeDoc(0, {0}, 1));
  EXPECT_TRUE(c.Validate().ok());
}

TEST(CorpusTest, DomainlessCorpusValidates) {
  // A corpus with no registered domains skips the domain check.
  Corpus c;
  c.mutable_vocabulary().GetOrAdd("t");
  c.AddDocument(MakeDoc(0, {0}, 0, /*domain=*/42));
  EXPECT_TRUE(c.Validate().ok());
}

}  // namespace
}  // namespace zombie
