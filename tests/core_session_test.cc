#include "core/session.h"

#include <gtest/gtest.h>

#include "core/reward.h"
#include "data/webcat_generator.h"
#include "featureeng/revision_script.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"

namespace zombie {
namespace {

RevisionScript ShortScript() {
  // Three cheap revisions keep the test fast while exercising the loop.
  RevisionScript script = MakeWebCatRevisionScript();
  RevisionScript out;
  for (size_t i = 0; i < 3; ++i) {
    size_t idx = i;
    out.Add(script.name(idx), [script = MakeWebCatRevisionScript(),
                               idx](const Corpus& c) {
      return script.BuildPipeline(idx, c);
    });
  }
  return out;
}

struct Fixture {
  Fixture() {
    WebCatOptions opts;
    opts.num_documents = 1500;
    opts.seed = 9;
    corpus = GenerateWebCatCorpus(opts);
  }

  EngineOptions Options() {
    EngineOptions o;
    o.seed = 4;
    o.holdout_size = 100;
    o.eval_every = 25;
    o.stop.min_items = 100;
    return o;
  }

  Corpus corpus;
};

TEST(SessionTest, FullScanRunsEveryRevisionExhaustively) {
  Fixture f;
  NaiveBayesLearner nb;
  LabelReward reward;
  SessionResult s = RunSession(f.corpus, ShortScript(),
                               SessionMode::kFullScan, nullptr, nb, reward,
                               f.Options());
  ASSERT_EQ(s.revisions.size(), 3u);
  EXPECT_EQ(s.index_virtual_micros, 0);
  for (const auto& rev : s.revisions) {
    EXPECT_EQ(rev.stop_reason, StopReason::kExhausted);
    EXPECT_EQ(rev.items_processed, 1400u);  // corpus minus holdout
    EXPECT_GT(rev.virtual_micros, 0);
  }
  EXPECT_EQ(s.mode, SessionMode::kFullScan);
}

TEST(SessionTest, ZombieSessionChargesIndexOnceAndStopsEarly) {
  Fixture f;
  NaiveBayesLearner nb;
  LabelReward reward;
  KMeansGrouper grouper(8, 2);
  SessionResult s = RunSession(f.corpus, ShortScript(), SessionMode::kZombie,
                               &grouper, nb, reward, f.Options());
  EXPECT_GT(s.index_virtual_micros, 0);
  int64_t revision_total = 0;
  for (const auto& rev : s.revisions) {
    EXPECT_LE(rev.items_processed, 1400u);
    revision_total += rev.virtual_micros;
  }
  EXPECT_EQ(s.total_virtual_micros, revision_total + s.index_virtual_micros);
}

TEST(SessionTest, ZombieFasterThanFullScanOnThisWorkload) {
  Fixture f;
  NaiveBayesLearner nb;
  LabelReward reward;
  KMeansGrouper grouper(8, 2);
  SessionResult full = RunSession(f.corpus, ShortScript(),
                                  SessionMode::kFullScan, nullptr, nb, reward,
                                  f.Options());
  SessionResult fast = RunSession(f.corpus, ShortScript(),
                                  SessionMode::kZombie, &grouper, nb, reward,
                                  f.Options());
  EXPECT_LT(fast.total_virtual_micros, full.total_virtual_micros);
}

TEST(SessionTest, BestQualityIsMaxOverRevisions) {
  Fixture f;
  NaiveBayesLearner nb;
  LabelReward reward;
  SessionResult s = RunSession(f.corpus, ShortScript(),
                               SessionMode::kFullScan, nullptr, nb, reward,
                               f.Options());
  double max_q = 0.0;
  for (const auto& rev : s.revisions) max_q = std::max(max_q, rev.final_quality);
  EXPECT_DOUBLE_EQ(s.best_quality, max_q);
}

TEST(SessionTest, WarmStartSessionRunsAndSavesItems) {
  Fixture f;
  NaiveBayesLearner nb;
  LabelReward reward;
  KMeansGrouper grouper(8, 2);
  SessionResult cold = RunSession(f.corpus, ShortScript(),
                                  SessionMode::kZombie, &grouper, nb, reward,
                                  f.Options(), /*warm_start_bandit=*/false);
  KMeansGrouper grouper2(8, 2);
  SessionResult warm = RunSession(f.corpus, ShortScript(),
                                  SessionMode::kZombie, &grouper2, nb, reward,
                                  f.Options(), /*warm_start_bandit=*/true);
  ASSERT_EQ(warm.revisions.size(), cold.revisions.size());
  // Warm starting never changes revision 0 (nothing to inherit) and must
  // produce comparable quality overall.
  EXPECT_EQ(warm.revisions[0].items_processed,
            cold.revisions[0].items_processed);
  EXPECT_GT(warm.best_quality, 0.8 * cold.best_quality);
}

TEST(SessionTest, ToStringMentionsModeAndTotals) {
  SessionResult s;
  s.mode = SessionMode::kZombie;
  std::string str = s.ToString();
  EXPECT_NE(str.find("zombie"), std::string::npos);
  EXPECT_STREQ(SessionModeName(SessionMode::kFullScan), "fullscan");
}

TEST(SessionDeathTest, ZombieModeNeedsGrouper) {
  Fixture f;
  NaiveBayesLearner nb;
  LabelReward reward;
  EXPECT_DEATH(RunSession(f.corpus, ShortScript(), SessionMode::kZombie,
                          nullptr, nb, reward, f.Options()),
               "grouper");
}

}  // namespace
}  // namespace zombie
