#include "data/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "data/webcat_generator.h"

namespace zombie {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripsGeneratedCorpus) {
  WebCatOptions opts;
  opts.num_documents = 500;
  Corpus original = GenerateWebCatCorpus(opts);
  std::string path = TempPath("roundtrip.zmbc");
  ASSERT_TRUE(SaveCorpus(original, path).ok());

  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Corpus& c = loaded.value();

  EXPECT_EQ(c.name(), original.name());
  EXPECT_EQ(c.size(), original.size());
  EXPECT_EQ(c.vocabulary().size(), original.vocabulary().size());
  EXPECT_EQ(c.num_domains(), original.num_domains());
  for (size_t i = 0; i < c.size(); ++i) {
    const Document& a = original.doc(i);
    const Document& b = c.doc(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.topic, b.topic);
    EXPECT_EQ(a.extraction_cost_micros, b.extraction_cost_micros);
    EXPECT_EQ(a.labeling_cost_micros, b.labeling_cost_micros);
    EXPECT_EQ(a.url, b.url);
  }
  for (uint32_t t = 0; t < original.vocabulary().size(); ++t) {
    EXPECT_EQ(c.vocabulary().Term(t), original.vocabulary().Term(t));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedVocabularyIsFrozen) {
  WebCatOptions opts;
  opts.num_documents = 50;
  Corpus original = GenerateWebCatCorpus(opts);
  std::string path = TempPath("frozen.zmbc");
  ASSERT_TRUE(SaveCorpus(original, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().vocabulary().frozen());
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyCorpusRoundTrips) {
  Corpus empty;
  empty.set_name("nothing");
  std::string path = TempPath("empty.zmbc");
  ASSERT_TRUE(SaveCorpus(empty, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0u);
  EXPECT_EQ(loaded.value().name(), "nothing");
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIOError) {
  StatusOr<Corpus> loaded = LoadCorpus("/no/such/file.zmbc");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, BadMagicIsRejected) {
  std::string path = TempPath("garbage.zmbc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a corpus file at all", f);
  std::fclose(f);
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileIsRejected) {
  WebCatOptions opts;
  opts.num_documents = 100;
  Corpus original = GenerateWebCatCorpus(opts);
  std::string path = TempPath("trunc.zmbc");
  ASSERT_TRUE(SaveCorpus(original, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  StatusOr<Corpus> loaded = LoadCorpus(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, UnwritablePathIsIOError) {
  Corpus c;
  EXPECT_EQ(SaveCorpus(c, "/no/such/dir/file.zmbc").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace zombie
