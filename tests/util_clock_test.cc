#include "util/clock.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(VirtualClockTest, AccumulatesAdvances) {
  VirtualClock c;
  EXPECT_EQ(c.NowMicros(), 0);
  c.Advance(1500);
  c.Advance(500);
  EXPECT_EQ(c.NowMicros(), 2000);
  EXPECT_DOUBLE_EQ(c.NowSeconds(), 0.002);
}

TEST(VirtualClockTest, ResetReturnsToZero) {
  VirtualClock c;
  c.Advance(1000);
  c.Reset();
  EXPECT_EQ(c.NowMicros(), 0);
}

TEST(VirtualClockTest, ZeroAdvanceAllowed) {
  VirtualClock c;
  c.Advance(0);
  EXPECT_EQ(c.NowMicros(), 0);
}

TEST(VirtualClockDeathTest, NegativeAdvanceAborts) {
  VirtualClock c;
  EXPECT_DEATH(c.Advance(-1), "Check failed");
}

TEST(StopwatchTest, MeasuresElapsedWallTime) {
  Stopwatch w;
  // Elapsed time is non-negative and monotonically increases.
  int64_t a = w.ElapsedMicros();
  int64_t b = w.ElapsedMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  w.Restart();
  EXPECT_GE(w.ElapsedMicros(), 0);
}

TEST(FormatDurationTest, AllBands) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(2500), "2ms");
  EXPECT_EQ(FormatDuration(1500000), "1.5s");
  EXPECT_EQ(FormatDuration(65L * 1000000), "1m05s");
  EXPECT_EQ(FormatDuration(3L * 3600 * 1000000LL + 5 * 60 * 1000000LL),
            "3h05m");
  EXPECT_EQ(FormatDuration(-5), "0us");
}

}  // namespace
}  // namespace zombie
