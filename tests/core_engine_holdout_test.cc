// Parallel holdout evaluation determinism: the engine's periodic holdout
// scoring may fan out across an internal thread pool, but the contract is
// byte-identical results at any thread count — fixed shards accumulate into
// disjoint slots and are reduced serially in shard order, so the FP addition
// sequence never depends on scheduling. These tests pin that contract for
// RunResult and for the DecisionLog JSONL stream (which records the
// quality estimates the holdout produces). They also run under the ASan
// and TSan CI legs, where a racing shard would be caught directly.

#include <string>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "gtest/gtest.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace {

/// Every deterministic RunResult field; wall_micros deliberately excluded.
std::string Fingerprint(const RunResult& r) {
  std::string s = StrFormat(
      "items=%zu loop=%lld holdout=%lld q=%.17g stop=%s pos=%zu\n",
      r.items_processed, static_cast<long long>(r.loop_virtual_micros),
      static_cast<long long>(r.holdout_virtual_micros), r.final_quality,
      StopReasonName(r.stop_reason), r.positives_processed);
  for (const ArmSummary& a : r.arms) {
    s += StrFormat("arm %zu %zu %.17g %zu\n", a.group_size, a.pulls,
                   a.total_reward, a.positives_seen);
  }
  s += r.curve.ToCsv();
  return s;
}

class EngineHoldoutTest : public ::testing::Test {
 protected:
  EngineHoldoutTest()
      : task_(MakeTask(TaskKind::kWebCat, 900, 42)),
        grouper_(6, 7),
        grouping_(grouper_.Group(task_.corpus)) {
    opts_.seed = 3;
    // A holdout spanning several 128-item shards, evaluated often, so the
    // parallel path does real sharded work many times per run.
    opts_.holdout_size = 300;
    opts_.eval_every = 10;
    opts_.stop.max_items = 150;
  }

  struct Outcome {
    std::string fingerprint;
    std::string decisions_jsonl;
  };

  Outcome RunWithThreads(size_t threads) {
    EngineOptions opts = opts_;
    opts.holdout_eval_threads = threads;
    ObsContext obs;
    opts.obs = &obs;
    EpsilonGreedyPolicy policy;
    NaiveBayesLearner learner;
    LabelReward reward;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    RunResult r = engine.Run(RunSpec(grouping_, policy, learner, reward));
    return {Fingerprint(r), obs.decisions()->ToJsonl()};
  }

  Task task_;
  KMeansGrouper grouper_;
  GroupingResult grouping_;
  EngineOptions opts_;
};

TEST_F(EngineHoldoutTest, RunResultByteIdenticalAcrossThreadCounts) {
  Outcome serial = RunWithThreads(1);
  for (size_t threads : {2u, 4u}) {
    Outcome parallel = RunWithThreads(threads);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << "holdout_eval_threads=" << threads << " changed the run";
  }
}

TEST_F(EngineHoldoutTest, DecisionLogJsonlByteIdenticalAcrossThreadCounts) {
  Outcome serial = RunWithThreads(1);
  ASSERT_FALSE(serial.decisions_jsonl.empty());
  Outcome parallel = RunWithThreads(4);
  EXPECT_EQ(parallel.decisions_jsonl, serial.decisions_jsonl);
}

TEST_F(EngineHoldoutTest, HoldoutEvalHistogramRecordsEvals) {
  EngineOptions opts = opts_;
  opts.holdout_eval_threads = 4;
  ObsContext obs;
  opts.obs = &obs;
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner learner;
  LabelReward reward;
  ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
  engine.Run(RunSpec(grouping_, policy, learner, reward));
  HistogramSnapshot evals =
      obs.metrics()->GetHistogram("engine.holdout_eval_us")->Snapshot();
  // One sample per cadence evaluation plus one for the final-metrics
  // scoring pass after the loop.
  EXPECT_EQ(evals.count,
            obs.metrics()->GetCounter("engine.evals")->value() + 1);
  EXPECT_GT(evals.count, 1u);
}

TEST_F(EngineHoldoutTest, ThreadCountBeyondHoldoutShardsIsHarmless) {
  // More threads than 128-item shards (300 items -> 3 shards) must not
  // misbehave or diverge.
  Outcome serial = RunWithThreads(1);
  Outcome oversubscribed = RunWithThreads(16);
  EXPECT_EQ(oversubscribed.fingerprint, serial.fingerprint);
}

}  // namespace
}  // namespace zombie
