#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/task_factory.h"
#include "ml/naive_bayes.h"

namespace zombie {
namespace {

struct Fixture {
  Fixture() : task(MakeTask(TaskKind::kWebCat, 800, 5)) {}

  EngineOptions Options() {
    EngineOptions o;
    o.seed = 3;
    o.holdout_size = 100;
    o.eval_every = 25;
    return o;
  }

  Task task;
};

TEST(BaselinesTest, FullScanOptionsDisableEarlyStops) {
  EngineOptions o;
  o.stop.plateau_enabled = true;
  o.stop.target_quality = 0.5;
  EngineOptions full = FullScanOptions(o);
  EXPECT_FALSE(full.stop.plateau_enabled);
  EXPECT_LT(full.stop.target_quality, 0.0);
}

TEST(BaselinesTest, SequentialScanIsExhaustiveAndNamed) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline,
                      FullScanOptions(f.Options()));
  NaiveBayesLearner nb;
  RunResult r = RunSequentialBaseline(engine, nb);
  EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
  EXPECT_EQ(r.items_processed, 700u);  // corpus minus holdout
  EXPECT_EQ(r.policy_name, "sequential");
  EXPECT_EQ(r.grouper_name, "sequential");
}

TEST(BaselinesTest, RandomScanIsExhaustive) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline,
                      FullScanOptions(f.Options()));
  NaiveBayesLearner nb;
  RunResult r = RunRandomBaseline(engine, nb);
  EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
  EXPECT_EQ(r.items_processed, 700u);
  EXPECT_EQ(r.policy_name, "randomscan");
}

TEST(BaselinesTest, SequentialAndRandomDifferInTrajectory) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline,
                      FullScanOptions(f.Options()));
  NaiveBayesLearner nb;
  RunResult seq = RunSequentialBaseline(engine, nb);
  RunResult rnd = RunRandomBaseline(engine, nb);
  // Same totals (all items processed), different order -> the virtual
  // clock accumulates differently at intermediate evaluations (per-item
  // costs vary), even if the coarse quality values happen to coincide.
  EXPECT_EQ(seq.items_processed, rnd.items_processed);
  bool any_diff = false;
  for (size_t i = 1; i + 1 < std::min(seq.curve.size(), rnd.curve.size());
       ++i) {
    any_diff |= seq.curve.point(i).virtual_micros !=
                rnd.curve.point(i).virtual_micros;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BaselinesTest, BaselinesRespectEarlyStopWhenEnabled) {
  Fixture f;
  EngineOptions o = f.Options();
  o.stop.plateau_enabled = true;
  o.stop.min_items = 100;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, o);
  NaiveBayesLearner nb;
  RunResult r = RunRandomBaseline(engine, nb);
  // Either it plateaued early or it drained the corpus; both are legal,
  // but the run must never exceed the corpus.
  EXPECT_LE(r.items_processed, 700u);
}

TEST(BaselinesTest, FixedSampleBaselineRespectsBudget) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.Options());
  NaiveBayesLearner nb;
  RunResult r = RunFixedSampleBaseline(engine, nb, 150);
  EXPECT_EQ(r.items_processed, 150u);
  EXPECT_EQ(r.stop_reason, StopReason::kBudget);
  EXPECT_EQ(r.policy_name, "fixedsample");
}

TEST(BaselinesTest, FixedSampleLargerThanCorpusExhausts) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.Options());
  NaiveBayesLearner nb;
  RunResult r = RunFixedSampleBaseline(engine, nb, 100000);
  EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
  EXPECT_EQ(r.items_processed, 700u);
}

TEST(BaselinesTest, LargerSamplesLearnAtLeastAsWell) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.Options());
  NaiveBayesLearner nb;
  RunResult small = RunFixedSampleBaseline(engine, nb, 50);
  RunResult large = RunFixedSampleBaseline(engine, nb, 700);
  EXPECT_GE(large.final_quality + 0.05, small.final_quality);
}

TEST(BaselinesTest, DeterministicBaselines) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline,
                      FullScanOptions(f.Options()));
  NaiveBayesLearner nb;
  RunResult a = RunRandomBaseline(engine, nb);
  RunResult b = RunRandomBaseline(engine, nb);
  EXPECT_EQ(a.final_quality, b.final_quality);
  EXPECT_EQ(a.loop_virtual_micros, b.loop_virtual_micros);
}

}  // namespace
}  // namespace zombie
