#include <gtest/gtest.h>

#include <memory>

#include "data/balanced_generator.h"
#include "data/entity_generator.h"
#include "data/webcat_generator.h"
#include "index/kmeans_grouper.h"
#include "index/metadata_grouper.h"
#include "index/oracle_grouper.h"
#include "index/random_grouper.h"
#include "index/token_grouper.h"

namespace zombie {
namespace {

Corpus TestCorpus(size_t n = 1000) {
  WebCatOptions opts;
  opts.num_documents = n;
  opts.positive_fraction = 0.1;
  return GenerateWebCatCorpus(opts);
}

// Every grouper must produce a covering, duplicate-free-within-group
// result that Validate() accepts.
class EveryGrouperTest : public testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Grouper> MakeGrouper() {
    switch (GetParam()) {
      case 0:
        return std::make_unique<RandomGrouper>(8, 1);
      case 1:
        return std::make_unique<KMeansGrouper>(8, 1);
      case 2:
        return std::make_unique<TokenGrouper>();
      case 3:
        return std::make_unique<MetadataGrouper>(16);
      case 4:
        return std::make_unique<OracleGrouper>(OracleMode::kLabel);
      case 5:
        return std::make_unique<OracleGrouper>(OracleMode::kTopic);
      default:
        return nullptr;
    }
  }
};

TEST_P(EveryGrouperTest, ProducesValidCoveringGroups) {
  Corpus corpus = TestCorpus();
  auto grouper = MakeGrouper();
  GroupingResult g = grouper->Group(corpus);
  EXPECT_TRUE(g.Validate(corpus.size()).ok()) << grouper->name();
  EXPECT_GE(g.num_groups(), 1u);
  EXPECT_EQ(g.method, grouper->name());
  EXPECT_GE(g.build_wall_micros, 0);
  EXPECT_GE(g.build_virtual_micros, 0);
}

TEST_P(EveryGrouperTest, DeterministicGrouping) {
  Corpus corpus = TestCorpus(300);
  GroupingResult a = MakeGrouper()->Group(corpus);
  GroupingResult b = MakeGrouper()->Group(corpus);
  EXPECT_EQ(a.groups, b.groups);
}

INSTANTIATE_TEST_SUITE_P(AllGroupers, EveryGrouperTest,
                         testing::Values(0, 1, 2, 3, 4, 5));

TEST(RandomGrouperTest, NearEqualSizes) {
  Corpus corpus = TestCorpus(1000);
  RandomGrouper g(10, 3);
  GroupingResult r = g.Group(corpus);
  ASSERT_EQ(r.num_groups(), 10u);
  for (const auto& grp : r.groups) {
    EXPECT_EQ(grp.size(), 100u);
  }
  // No raw-data reads.
  EXPECT_EQ(r.build_virtual_micros, 0);
}

TEST(RandomGrouperTest, CarriesNoLabelSignal) {
  Corpus corpus = TestCorpus(4000);
  RandomGrouper g(8, 3);
  GroupingResult r = g.Group(corpus);
  double base = corpus.ComputeStats().positive_fraction;
  for (const auto& grp : r.groups) {
    size_t pos = 0;
    for (uint32_t d : grp) pos += corpus.doc(d).label == 1;
    EXPECT_NEAR(static_cast<double>(pos) / grp.size(), base, 0.06);
  }
}

TEST(KMeansGrouperTest, ConcentratesPositivesOnWebCat) {
  WebCatOptions opts;
  opts.num_documents = 8000;
  Corpus corpus = GenerateWebCatCorpus(opts);
  KMeansGrouper g(32, 7);
  GroupingResult r = g.Group(corpus);
  double base = corpus.ComputeStats().positive_fraction;
  double best_rate = 0.0;
  for (const auto& grp : r.groups) {
    if (grp.size() < 20) continue;
    size_t pos = 0;
    for (uint32_t d : grp) pos += corpus.doc(d).label == 1;
    best_rate = std::max(best_rate,
                         static_cast<double>(pos) / grp.size());
  }
  // The best content cluster is far richer than the base rate.
  EXPECT_GT(best_rate, 3.0 * base);
  // Index construction reads raw data, so virtual cost is positive.
  EXPECT_GT(r.build_virtual_micros, 0);
}

TEST(KMeansGrouperTest, CapsGroupsAtCorpusSize) {
  Corpus corpus = TestCorpus(5);
  KMeansGrouper g(100, 1);
  GroupingResult r = g.Group(corpus);
  EXPECT_LE(r.num_groups(), 5u);
  EXPECT_TRUE(r.Validate(corpus.size()).ok());
}

TEST(TokenGrouperTest, SeedTermsGetDedicatedGroups) {
  EntityExtractOptions opts;
  opts.num_documents = 3000;
  Corpus corpus = GenerateEntityExtractCorpus(opts);
  TokenGrouperOptions topts;
  topts.seed_terms = {"topic0_w0", "topic0_w1", "not_a_term"};
  TokenGrouper g(topts);
  GroupingResult r = g.Group(corpus);
  EXPECT_TRUE(r.Validate(corpus.size()).ok());
  // Seeded groups come first; the group of docs containing topic0_w0 is
  // overwhelmingly positive (mention tokens define the label).
  ASSERT_GE(r.num_groups(), 2u);
  size_t pos = 0;
  for (uint32_t d : r.groups[0]) pos += corpus.doc(d).label == 1;
  ASSERT_FALSE(r.groups[0].empty());
  EXPECT_GT(static_cast<double>(pos) / r.groups[0].size(), 0.9);
}

TEST(TokenGrouperTest, GroupsMayOverlap) {
  Corpus corpus = TestCorpus(2000);
  TokenGrouper g;
  GroupingResult r = g.Group(corpus);
  size_t total_membership = 0;
  for (const auto& grp : r.groups) total_membership += grp.size();
  // Overlap means total membership exceeds corpus size (docs that mention
  // several indexed tokens appear in several groups).
  EXPECT_GT(total_membership, corpus.size() / 2);
  EXPECT_TRUE(r.Validate(corpus.size()).ok());
}

TEST(TokenGrouperTest, RespectsMaxGroups) {
  Corpus corpus = TestCorpus(2000);
  TokenGrouperOptions topts;
  topts.max_groups = 5;
  TokenGrouper g(topts);
  GroupingResult r = g.Group(corpus);
  EXPECT_LE(r.num_groups(), 6u);  // 5 token groups + catch-all
}

TEST(MetadataGrouperTest, GroupsShareDomains) {
  Corpus corpus = TestCorpus(2000);
  MetadataGrouper g(1000);  // more slots than domains: one per domain
  GroupingResult r = g.Group(corpus);
  for (const auto& grp : r.groups) {
    ASSERT_FALSE(grp.empty());
    uint32_t domain = corpus.doc(grp[0]).domain;
    for (uint32_t d : grp) EXPECT_EQ(corpus.doc(d).domain, domain);
  }
  EXPECT_EQ(r.build_virtual_micros, 0);  // metadata reads are free
}

TEST(MetadataGrouperTest, FoldsDomainsWhenCapped) {
  Corpus corpus = TestCorpus(2000);
  MetadataGrouper g(8);
  GroupingResult r = g.Group(corpus);
  EXPECT_LE(r.num_groups(), 8u);
  EXPECT_TRUE(r.Validate(corpus.size()).ok());
}

TEST(OracleGrouperTest, LabelModeSplitsPerfectly) {
  Corpus corpus = TestCorpus(1000);
  OracleGrouper g(OracleMode::kLabel);
  GroupingResult r = g.Group(corpus);
  ASSERT_EQ(r.num_groups(), 2u);
  for (const auto& grp : r.groups) {
    int32_t label = corpus.doc(grp[0]).label;
    for (uint32_t d : grp) EXPECT_EQ(corpus.doc(d).label, label);
  }
}

TEST(OracleGrouperTest, TopicModeOneGroupPerTopic) {
  Corpus corpus = TestCorpus(1000);
  OracleGrouper g(OracleMode::kTopic);
  GroupingResult r = g.Group(corpus);
  for (const auto& grp : r.groups) {
    uint32_t topic = corpus.doc(grp[0]).topic;
    for (uint32_t d : grp) EXPECT_EQ(corpus.doc(d).topic, topic);
  }
}

TEST(GroupingResultTest, ValidateRejectsBadResults) {
  GroupingResult g;
  g.groups = {{0, 1}, {1, 2}};
  EXPECT_TRUE(g.Validate(3).ok());
  // Missing doc 3.
  EXPECT_FALSE(g.Validate(4).ok());
  // Out-of-range doc.
  g.groups = {{0, 5}};
  EXPECT_FALSE(g.Validate(3).ok());
  // Duplicate within a group.
  g.groups = {{0, 0}, {1}, {2}};
  EXPECT_FALSE(g.Validate(3).ok());
}

}  // namespace
}  // namespace zombie
