// Regression guard for the non-stationary policies (PR 10): on a drifting
// reward stream the recency-aware policies (SlidingUcb, Exp3) must beat a
// stationary UCB1 that trusts lifetime means. Streaming ingestion is the
// whole reason these policies ship — domain-grouped arrival schedules make
// arm values drift by construction — so this pins the property the E13
// experiment is built on.
//
// The drift stream is the standard oblivious-adversary construction (the
// lower-bound argument from Auer et al. that motivates Exp3): stationary
// UCB1 is simulated once, and the schedule pays 0.1 to whichever arm it
// picks at each step and 0.9 to every other arm. The schedule is then
// FROZEN — a fixed, seeded, per-step-drifting reward stream, identical for
// every policy. Because UCB1 ignores its Rng and the replay consumes the
// seeded generator exactly like the simulation, replayed UCB1 walks into
// the trap at every single step (asserted below), while a sliding window
// (forgets the stale means the trap is built from) or exponential weights
// (randomizes, so no fixed schedule can anticipate it) stay near the
// 1-in-K chance rate and collect most of the 0.9s. Stochastic piecewise
// drift is NOT enough to pin this: UCB1's exploration bonus rescues a
// starved newly-best arm within tens of pulls, so it tracks benign phase
// rotations about as well as the windowed policies do.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "bandit/arm_stats.h"
#include "bandit/exp3.h"
#include "bandit/policy.h"
#include "bandit/sliding_ucb.h"
#include "bandit/ucb1.h"
#include "util/random.h"

namespace zombie {
namespace {

constexpr size_t kArms = 4;
constexpr size_t kSteps = 4000;
constexpr double kHighPay = 0.9;
constexpr double kLowPay = 0.1;

// Stationary bookkeeping: UCB1 sees exactly the lifetime means its bounds
// assume — the handicap under drift is the policy's, not the bookkeeping's.
ArmStats MakeStationaryStats() {
  ArmStatsOptions opts;
  opts.window = 0;
  opts.discount = 1.0;
  return ArmStats(kArms, opts);
}

// Simulates stationary UCB1 against the adversary and returns the frozen
// schedule: bad[t] is the (single) arm that pays kLowPay at step t.
std::vector<size_t> BuildAdversarialSchedule(uint64_t seed) {
  ArmStats stats = MakeStationaryStats();
  Ucb1Policy ucb1;
  ucb1.Reset(kArms);
  Rng rng(seed);
  std::vector<size_t> bad(kSteps);
  for (size_t t = 0; t < kSteps; ++t) {
    size_t arm = ucb1.SelectArm(stats, &rng);
    bad[t] = arm;
    double r = rng.NextBernoulli(kLowPay) ? 1.0 : 0.0;
    stats.Record(arm, r);
    ucb1.Observe(arm, r);
  }
  return bad;
}

struct DriftOutcome {
  double cumulative = 0.0;
  size_t trapped_steps = 0;  // pulls that landed on the punished arm
};

// Replays `policy` against the frozen schedule and returns cumulative
// reward plus how often it stepped on the punished arm.
DriftOutcome PlayDriftingBandit(BanditPolicy* policy,
                                const std::vector<size_t>& bad,
                                uint64_t seed) {
  ArmStats stats = MakeStationaryStats();
  policy->Reset(kArms);
  Rng rng(seed);
  DriftOutcome out;
  for (size_t t = 0; t < bad.size(); ++t) {
    size_t arm = policy->SelectArm(stats, &rng);
    if (arm == bad[t]) ++out.trapped_steps;
    double pay = arm == bad[t] ? kLowPay : kHighPay;
    double r = rng.NextBernoulli(pay) ? 1.0 : 0.0;
    out.cumulative += r;
    stats.Record(arm, r);
    policy->Observe(arm, r);
  }
  return out;
}

const std::vector<uint64_t>& Seeds() {
  static const std::vector<uint64_t> kSeeds = {101, 202, 303};
  return kSeeds;
}

double MeanReward(BanditPolicy* policy) {
  double total = 0.0;
  for (uint64_t seed : Seeds()) {
    total += PlayDriftingBandit(policy, BuildAdversarialSchedule(seed), seed)
                 .cumulative;
  }
  return total / static_cast<double>(Seeds().size());
}

TEST(DriftingBanditTest, ReplayedUcb1WalksIntoEveryTrap) {
  // The construction's load-bearing fact: UCB1 is deterministic given the
  // reward draws, so the replay reproduces the simulated trajectory and
  // every pull lands on the punished arm. If UCB1 ever grows a tie-break
  // or starts consuming the Rng this breaks loudly, and the comparative
  // tests below lose their foundation with it.
  for (uint64_t seed : Seeds()) {
    Ucb1Policy ucb1;
    DriftOutcome out =
        PlayDriftingBandit(&ucb1, BuildAdversarialSchedule(seed), seed);
    EXPECT_EQ(out.trapped_steps, kSteps) << "seed " << seed;
    // Trapped means paid at the kLowPay rate; leave generous noise slack.
    EXPECT_LT(out.cumulative, 2.0 * kLowPay * static_cast<double>(kSteps))
        << "seed " << seed;
  }
}

TEST(DriftingBanditTest, SlidingUcbBeatsUcb1UnderDrift) {
  Ucb1Policy ucb1;
  SlidingUcbPolicy swucb;  // default window 200: forgets the stale means
  double ucb1_reward = MeanReward(&ucb1);
  double swucb_reward = MeanReward(&swucb);
  // The margin is structural (~0.1T vs ~0.7T), so demand a wide gap, not
  // a coin-flip inequality.
  EXPECT_GT(swucb_reward, 2.0 * ucb1_reward)
      << "swucb " << swucb_reward << " vs ucb1 " << ucb1_reward;
}

TEST(DriftingBanditTest, Exp3BeatsUcb1UnderDrift) {
  Ucb1Policy ucb1;
  Exp3Policy exp3;  // randomizes: no fixed schedule can anticipate it
  double ucb1_reward = MeanReward(&ucb1);
  double exp3_reward = MeanReward(&exp3);
  EXPECT_GT(exp3_reward, 2.0 * ucb1_reward)
      << "exp3 " << exp3_reward << " vs ucb1 " << ucb1_reward;
}

TEST(DriftingBanditTest, StationaryControlFavorsUcb1) {
  // Sanity inversion: with no drift (a fixed best arm) plain UCB1 is
  // near-optimal, so the drift losses above are about drift, not a
  // handicapped baseline. UCB1 must land close to the oracle here.
  Ucb1Policy ucb1;
  ArmStats stats = MakeStationaryStats();
  ucb1.Reset(kArms);
  Rng rng(404);
  double cumulative = 0.0;
  for (size_t t = 0; t < kSteps; ++t) {
    size_t arm = ucb1.SelectArm(stats, &rng);
    double r = rng.NextBernoulli(arm == 2 ? kHighPay : kLowPay) ? 1.0 : 0.0;
    cumulative += r;
    stats.Record(arm, r);
    ucb1.Observe(arm, r);
  }
  EXPECT_GT(cumulative, 0.8 * kHighPay * static_cast<double>(kSteps));
}

}  // namespace
}  // namespace zombie
