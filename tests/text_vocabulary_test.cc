#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(VocabularyTest, AssignsDenseIdsInInsertionOrder) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(v.GetOrAdd("beta"), 1u);
  EXPECT_EQ(v.GetOrAdd("alpha"), 0u);  // existing
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabularyTest, LookupUnknownReturnsSentinel) {
  Vocabulary v;
  v.GetOrAdd("known");
  EXPECT_EQ(v.Lookup("unknown"), Vocabulary::kUnknownTerm);
  EXPECT_EQ(v.Lookup("known"), 0u);
}

TEST(VocabularyTest, TermRoundTrip) {
  Vocabulary v;
  v.GetOrAdd("x");
  v.GetOrAdd("y");
  EXPECT_EQ(v.Term(0), "x");
  EXPECT_EQ(v.Term(1), "y");
}

TEST(VocabularyTest, FreezeRejectsNewTerms) {
  Vocabulary v;
  v.GetOrAdd("pre");
  v.Freeze();
  EXPECT_TRUE(v.frozen());
  EXPECT_EQ(v.GetOrAdd("post"), Vocabulary::kUnknownTerm);
  EXPECT_EQ(v.GetOrAdd("pre"), 0u);  // existing still resolves
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, EmptyTermIsValid) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd(""), 0u);
  EXPECT_EQ(v.Lookup(""), 0u);
}

TEST(VocabularyTest, ManyTermsStayConsistent) {
  Vocabulary v;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.GetOrAdd("term" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.Term(static_cast<uint32_t>(i)), "term" + std::to_string(i));
  }
}

TEST(VocabularyDeathTest, TermOutOfRangeAborts) {
  Vocabulary v;
  EXPECT_DEATH(v.Term(0), "Check failed");
}

}  // namespace
}  // namespace zombie
