// Persistent-store inertness: the store is a wall-clock-only second cache
// tier, so RunResult and the DecisionLog JSONL stream must be
// byte-identical with the store disabled, cold (first run populates it),
// or warm (every extraction served from disk) — and across experiment
// driver thread counts with a shared store. Same discipline as the
// prefetch, holdout-parallelism, and obs inertness tests; the store stats
// assertions keep the comparisons non-vacuous (the warm runs really did
// hit the store).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/experiment_driver.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "featureeng/feature_cache.h"
#include "featureeng/persistent_feature_store.h"
#include "gtest/gtest.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace {


class EngineStoreTest : public ::testing::Test {
 protected:
  EngineStoreTest()
      : task_(MakeTask(TaskKind::kWebCat, 900, 42)),
        grouper_(6, 7),
        grouping_(grouper_.Group(task_.corpus)) {}

  static std::string FreshStorePath(const std::string& name) {
    std::string path = testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
    return path;
  }

  struct Outcome {
    std::string fingerprint;
    std::string decisions_jsonl;
  };

  /// One engine run from a cold memory cache, optionally backed by `store`.
  Outcome RunWith(PersistentFeatureStore* store) {
    FeatureCache cache;
    EngineOptions opts;
    opts.seed = 3;
    opts.holdout_size = 150;
    opts.eval_every = 10;
    opts.stop.max_items = 200;
    opts.feature_cache = &cache;
    opts.feature_store = store;
    ObsContext obs;
    opts.obs = &obs;

    NaiveBayesLearner learner;
    LabelReward reward;
    EpsilonGreedyPolicy policy;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    RunSpec spec(grouping_, policy, learner, reward);
    RunResult r = engine.Run(spec);

    Outcome out;
    out.fingerprint = r.Fingerprint();
    out.decisions_jsonl = obs.decisions()->ToJsonl();
    return out;
  }

  Task task_;
  KMeansGrouper grouper_;
  GroupingResult grouping_;
};

TEST_F(EngineStoreTest, ByteIdenticalStoreOffColdWarm) {
  Outcome off = RunWith(nullptr);
  std::string path = FreshStorePath("engine_store.zfs");

  Outcome cold;
  {
    auto store = PersistentFeatureStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    cold = RunWith(store.value().get());
    PersistentFeatureStoreStats s = store.value()->Stats();
    EXPECT_GT(s.appends, 0u) << "cold run must populate the store";
    EXPECT_EQ(s.hits, 0u) << "first run cannot hit a fresh store";
  }
  Outcome warm;
  {
    auto store = PersistentFeatureStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    warm = RunWith(store.value().get());
    PersistentFeatureStoreStats s = store.value()->Stats();
    EXPECT_GT(s.hits, 0u) << "warm run must hit the recovered store";
    EXPECT_EQ(s.appends, 0u)
        << "identical run over a warm store has nothing new to append";
  }

  EXPECT_EQ(cold.fingerprint, off.fingerprint)
      << "cold store changed RunResult";
  EXPECT_EQ(warm.fingerprint, off.fingerprint)
      << "warm store changed RunResult";
  EXPECT_EQ(cold.decisions_jsonl, off.decisions_jsonl)
      << "cold store changed the decision log";
  EXPECT_EQ(warm.decisions_jsonl, off.decisions_jsonl)
      << "warm store changed the decision log";
}

TEST_F(EngineStoreTest, ByteIdenticalAcrossDriverThreadCounts) {
  NaiveBayesLearner learner;
  LabelReward reward;
  const std::vector<uint64_t> seeds = {3, 4, 5, 6};

  // One driver pass: `threads` trial workers over a shared memory cache
  // and (optionally) a shared persistent store.
  auto run_grid = [&](size_t threads, PersistentFeatureStore* store) {
    FeatureCache cache;
    ExperimentDriverOptions dopts;
    dopts.num_threads = threads;
    dopts.engine.seed = 3;
    dopts.engine.holdout_size = 150;
    dopts.engine.eval_every = 10;
    dopts.engine.stop.max_items = 200;
    dopts.cache = &cache;
    dopts.store = store;
    ExperimentDriver driver(&task_.corpus, &task_.pipeline, dopts);
    ExperimentGrid grid;
    grid.policies = {PolicyKind::kEpsilonGreedy};
    grid.groupings = {&grouping_};
    grid.rewards = {&reward};
    grid.learners = {&learner};
    grid.seeds = seeds;
    StatusOr<std::vector<TrialResult>> trials = driver.RunGrid(grid);
    EXPECT_TRUE(trials.ok()) << trials.status().ToString();
    std::vector<std::string> prints;
    for (const TrialResult& t : trials.value()) {
      prints.push_back(t.run.Fingerprint());
    }
    return prints;
  };

  std::vector<std::string> baseline = run_grid(1, nullptr);
  std::string path = FreshStorePath("driver_store.zfs");
  {
    auto store = PersistentFeatureStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    std::vector<std::string> cold = run_grid(1, store.value().get());
    EXPECT_EQ(cold, baseline) << "cold store changed driver results";
    EXPECT_GT(store.value()->Stats().appends, 0u);
  }
  for (size_t threads : {1u, 4u}) {
    auto store = PersistentFeatureStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    std::vector<std::string> warm = run_grid(threads, store.value().get());
    EXPECT_EQ(warm, baseline)
        << "warm store changed driver results at threads=" << threads;
    EXPECT_GT(store.value()->Stats().hits, 0u)
        << "warm driver run must hit the store at threads=" << threads;
  }
}

}  // namespace
}  // namespace zombie
