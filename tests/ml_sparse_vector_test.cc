#include "ml/sparse_vector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "util/random.h"

namespace zombie {
namespace {

SparseVector V(std::vector<std::pair<uint32_t, double>> pairs) {
  return SparseVector::FromPairs(std::move(pairs));
}

TEST(SparseVectorTest, FromPairsSortsAndMerges) {
  SparseVector v = V({{5, 1.0}, {2, 2.0}, {5, 3.0}, {7, 0.0}});
  ASSERT_EQ(v.num_nonzero(), 2u);
  EXPECT_EQ(v.index_at(0), 2u);
  EXPECT_DOUBLE_EQ(v.value_at(0), 2.0);
  EXPECT_EQ(v.index_at(1), 5u);
  EXPECT_DOUBLE_EQ(v.value_at(1), 4.0);
}

TEST(SparseVectorTest, MergedToZeroIsDropped) {
  SparseVector v = V({{3, 1.0}, {3, -1.0}});
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.dimension(), 0u);
}

TEST(SparseVectorTest, PushBackStrictOrder) {
  SparseVector v;
  v.PushBack(1, 1.0);
  v.PushBack(4, 2.0);
  EXPECT_EQ(v.num_nonzero(), 2u);
  EXPECT_EQ(v.dimension(), 5u);
  EXPECT_DEATH(v.PushBack(4, 3.0), "strictly increasing");
}

TEST(SparseVectorTest, PushBackSkipsZeros) {
  SparseVector v;
  v.PushBack(1, 0.0);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, GetBinarySearch) {
  SparseVector v = V({{10, 1.5}, {20, -2.5}});
  EXPECT_DOUBLE_EQ(v.Get(10), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(20), -2.5);
  EXPECT_DOUBLE_EQ(v.Get(15), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(100), 0.0);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector v = V({{0, 2.0}, {3, 1.0}});
  std::vector<double> dense = {1.0, 9.0, 9.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 2.0 + 4.0);
  // Indices past the dense size contribute zero.
  std::vector<double> short_dense = {5.0};
  EXPECT_DOUBLE_EQ(v.Dot(short_dense), 10.0);
  EXPECT_DOUBLE_EQ(v.Dot(std::vector<double>{}), 0.0);
}

TEST(SparseVectorTest, DotSparseSparse) {
  SparseVector a = V({{1, 2.0}, {3, 1.0}, {8, 4.0}});
  SparseVector b = V({{3, 5.0}, {8, 0.5}, {9, 100.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 5.0 + 2.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), a.Dot(b));  // symmetry
  EXPECT_DOUBLE_EQ(a.Dot(SparseVector()), 0.0);
}

TEST(SparseVectorTest, AddScaledToGrowsDense) {
  SparseVector v = V({{2, 3.0}});
  std::vector<double> dense = {1.0};
  v.AddScaledTo(2.0, &dense);
  ASSERT_EQ(dense.size(), 3u);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
  EXPECT_DOUBLE_EQ(dense[2], 6.0);
}

TEST(SparseVectorTest, ScaleAndNorms) {
  SparseVector v = V({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
  v.Scale(2.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 10.0);
}

TEST(SparseVectorTest, SquaredDistance) {
  SparseVector a = V({{0, 1.0}, {2, 2.0}});
  SparseVector b = V({{0, 1.0}, {1, 3.0}});
  // diff: idx1 -3, idx2 +2 -> 9 + 4
  EXPECT_DOUBLE_EQ(a.SquaredDistance(b), 13.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistance(a), 0.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistance(SparseVector()), 5.0);
}

TEST(SparseVectorTest, CosineSimilarity) {
  SparseVector a = V({{0, 1.0}});
  SparseVector b = V({{0, 5.0}});
  SparseVector c = V({{1, 1.0}});
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(b), 1.0);
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(c), 0.0);
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(SparseVector()), 0.0);
}

// Regression: dimension() used to return uint32_t, so an entry at index
// UINT32_MAX wrapped it to 0 — and AddScaledTo would then skip its resize
// and write past the end of the dense vector.
TEST(SparseVectorTest, DimensionDoesNotWrapAtUint32Max) {
  SparseVector v;
  v.PushBack(std::numeric_limits<uint32_t>::max(), 1.0);
  EXPECT_EQ(v.dimension(), (1ULL << 32));
  EXPECT_EQ(SparseVector().dimension(), 0u);
}

TEST(SparseVectorTest, ToStringRendersPairs) {
  SparseVector v = V({{3, 1.0}, {17, 0.5}});
  EXPECT_EQ(v.ToString(), "{3:1, 17:0.5}");
  EXPECT_EQ(SparseVector().ToString(), "{}");
}

// Property-style randomized algebra checks.
class SparseVectorPropertyTest : public testing::TestWithParam<uint64_t> {};

SparseVector RandomVector(Rng* rng, uint32_t dim, size_t nnz) {
  std::vector<std::pair<uint32_t, double>> pairs;
  for (size_t i = 0; i < nnz; ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng->NextBelow(dim)),
                       rng->NextGaussian());
  }
  return SparseVector::FromPairs(std::move(pairs));
}

TEST_P(SparseVectorPropertyTest, DotConsistentWithDense) {
  Rng rng(GetParam());
  SparseVector a = RandomVector(&rng, 100, 20);
  SparseVector b = RandomVector(&rng, 100, 20);
  std::vector<double> b_dense(100, 0.0);
  b.AddScaledTo(1.0, &b_dense);
  EXPECT_NEAR(a.Dot(b), a.Dot(b_dense), 1e-9);
}

TEST_P(SparseVectorPropertyTest, DistanceExpandsAsNorms) {
  Rng rng(GetParam() + 1000);
  SparseVector a = RandomVector(&rng, 50, 10);
  SparseVector b = RandomVector(&rng, 50, 10);
  double expansion =
      a.L2Norm() * a.L2Norm() + b.L2Norm() * b.L2Norm() - 2.0 * a.Dot(b);
  EXPECT_NEAR(a.SquaredDistance(b), expansion, 1e-9);
}

TEST_P(SparseVectorPropertyTest, CosineBounded) {
  Rng rng(GetParam() + 2000);
  SparseVector a = RandomVector(&rng, 30, 15);
  SparseVector b = RandomVector(&rng, 30, 15);
  double cs = a.CosineSimilarity(b);
  EXPECT_GE(cs, -1.0 - 1e-12);
  EXPECT_LE(cs, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- View semantics -------------------------------------------------------

TEST(SparseVectorViewTest, DefaultViewIsEmpty) {
  SparseVectorView v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.num_nonzero(), 0u);
  EXPECT_EQ(v.dimension(), 0u);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 0.0);
}

TEST(SparseVectorViewTest, ViewAliasesOwningStorage) {
  SparseVector owner = V({{2, 1.0}, {9, -3.0}});
  SparseVectorView view = owner.view();
  EXPECT_EQ(view.indices_data(), owner.indices().data());
  EXPECT_EQ(view.values_data(), owner.values().data());
  EXPECT_EQ(view.num_nonzero(), owner.num_nonzero());
  // Mutating the owner in place is visible through the view: no copy was
  // taken.
  owner.Scale(2.0);
  EXPECT_DOUBLE_EQ(view.value_at(0), 2.0);
  EXPECT_DOUBLE_EQ(view.value_at(1), -6.0);
}

TEST(SparseVectorViewTest, ImplicitConversionMatchesExplicitView) {
  SparseVector owner = V({{0, 1.0}, {5, 2.0}});
  auto takes_view = [](SparseVectorView v) { return v.L1Norm(); };
  EXPECT_DOUBLE_EQ(takes_view(owner), owner.view().L1Norm());
}

TEST(SparseVectorViewTest, KernelsAgreeWithOwningVector) {
  SparseVector a = V({{1, 1.5}, {4, -2.0}, {9, 0.5}});
  SparseVector b = V({{1, 2.0}, {6, 1.0}, {9, -1.0}});
  std::vector<double> dense = {0.5, 1.0, 1.5, 2.0, 2.5};
  // Bit-identical, not approximately equal: the view kernels ARE the
  // owning vector's kernels (the owner delegates), and A/B engine tests
  // depend on that.
  EXPECT_EQ(a.view().Dot(b.view()), a.Dot(b));
  EXPECT_EQ(a.view().Dot(dense), a.Dot(dense));
  EXPECT_EQ(a.view().SquaredDistance(b.view()), a.SquaredDistance(b));
  std::vector<double> d1, d2;
  a.view().AddScaledTo(0.25, &d1);
  a.AddScaledTo(0.25, &d2);
  EXPECT_EQ(d1, d2);
}

TEST(SparseVectorViewTest, FromViewRoundTrip) {
  SparseVector original = V({{3, 1.0}, {7, -2.5}, {100, 0.125}});
  SparseVector copy = SparseVector::FromView(original.view());
  EXPECT_EQ(copy, original);
  // The copy owns fresh storage, not the original's.
  EXPECT_NE(copy.indices().data(), original.indices().data());
}

// --- CSR Dataset equivalence ---------------------------------------------

Dataset ToDataset(const std::vector<SparseVector>& rows,
                  const std::vector<int32_t>& labels) {
  Dataset ds;
  for (size_t i = 0; i < rows.size(); ++i) ds.Add(rows[i], labels[i]);
  return ds;
}

TEST(DatasetCsrTest, RowsRoundTripExactly) {
  Rng rng(42);
  std::vector<SparseVector> rows;
  std::vector<int32_t> labels;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(RandomVector(&rng, 200, 1 + i % 7));
    labels.push_back(i % 2);
  }
  Dataset ds = ToDataset(rows, labels);
  ASSERT_EQ(ds.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(ds.example(i).x == rows[i].view()) << "row " << i;
    EXPECT_EQ(ds.example(i).y, labels[i]);
  }
}

TEST(DatasetCsrTest, EmptyRowsAreRepresentable) {
  Dataset ds;
  ds.Add(SparseVector(), 1);
  ds.Add(V({{5, 2.0}}), 0);
  ds.Add(SparseVector(), 1);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_TRUE(ds.example(0).x.empty());
  EXPECT_EQ(ds.example(1).x.num_nonzero(), 1u);
  EXPECT_TRUE(ds.example(2).x.empty());
  // An empty row between populated ones must not shift its neighbors.
  EXPECT_DOUBLE_EQ(ds.example(1).x.Get(5), 2.0);
  EXPECT_EQ(ds.num_entries(), 1u);
}

TEST(DatasetCsrTest, Uint32MaxAdjacentIndicesSurviveStorage) {
  // Indices at the top of the uint32 range stress dimension() (which must
  // widen to size_t) and the CSR round trip equally.
  SparseVector high;
  high.PushBack(UINT32_MAX - 1, 1.0);
  high.PushBack(UINT32_MAX, 2.0);
  Dataset ds;
  ds.Add(high, 1);
  SparseVectorView row = ds.example(0).x;
  EXPECT_EQ(row.index_at(0), UINT32_MAX - 1);
  EXPECT_EQ(row.index_at(1), UINT32_MAX);
  EXPECT_EQ(row.dimension(), static_cast<size_t>(UINT32_MAX) + 1);
  EXPECT_DOUBLE_EQ(row.Get(UINT32_MAX), 2.0);
}

TEST(DatasetCsrTest, FromPairsDupSummingFeedsCsrUnchanged) {
  // FromPairs collapses duplicates before storage, so the CSR row carries
  // the summed entry — there is no second dedup inside Dataset to diverge.
  SparseVector v = V({{7, 1.0}, {7, 2.5}, {3, -1.0}, {3, 1.0}});
  Dataset ds;
  ds.Add(v, 0);
  SparseVectorView row = ds.example(0).x;
  ASSERT_EQ(row.num_nonzero(), 1u);  // {3} summed to zero and was dropped
  EXPECT_EQ(row.index_at(0), 7u);
  EXPECT_DOUBLE_EQ(row.value_at(0), 3.5);
}

TEST(DatasetCsrTest, LearnerWeightsIdenticalFromVectorsAndCsrRows) {
  // The equivalence that matters end-to-end: training on CSR row views
  // produces bit-identical weights to training on the owning vectors.
  Rng rng(7);
  std::vector<SparseVector> rows;
  std::vector<int32_t> labels;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(RandomVector(&rng, 64, 8));
    labels.push_back(static_cast<int32_t>(rng.NextBernoulli(0.5)));
  }
  Dataset ds = ToDataset(rows, labels);

  LogisticRegressionLearner from_vectors;
  LogisticRegressionLearner from_csr;
  for (size_t i = 0; i < rows.size(); ++i) {
    from_vectors.Update(rows[i], labels[i]);
    from_csr.Update(ds.example(i).x, ds.example(i).y);
  }
  EXPECT_EQ(from_vectors.bias(), from_csr.bias());
  for (uint32_t f = 0; f < 64; ++f) {
    EXPECT_EQ(from_vectors.WeightAt(f), from_csr.WeightAt(f)) << "w" << f;
  }
}

}  // namespace
}  // namespace zombie
