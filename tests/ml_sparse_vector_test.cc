#include "ml/sparse_vector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/random.h"

namespace zombie {
namespace {

SparseVector V(std::vector<std::pair<uint32_t, double>> pairs) {
  return SparseVector::FromPairs(std::move(pairs));
}

TEST(SparseVectorTest, FromPairsSortsAndMerges) {
  SparseVector v = V({{5, 1.0}, {2, 2.0}, {5, 3.0}, {7, 0.0}});
  ASSERT_EQ(v.num_nonzero(), 2u);
  EXPECT_EQ(v.index_at(0), 2u);
  EXPECT_DOUBLE_EQ(v.value_at(0), 2.0);
  EXPECT_EQ(v.index_at(1), 5u);
  EXPECT_DOUBLE_EQ(v.value_at(1), 4.0);
}

TEST(SparseVectorTest, MergedToZeroIsDropped) {
  SparseVector v = V({{3, 1.0}, {3, -1.0}});
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.dimension(), 0u);
}

TEST(SparseVectorTest, PushBackStrictOrder) {
  SparseVector v;
  v.PushBack(1, 1.0);
  v.PushBack(4, 2.0);
  EXPECT_EQ(v.num_nonzero(), 2u);
  EXPECT_EQ(v.dimension(), 5u);
  EXPECT_DEATH(v.PushBack(4, 3.0), "strictly increasing");
}

TEST(SparseVectorTest, PushBackSkipsZeros) {
  SparseVector v;
  v.PushBack(1, 0.0);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, GetBinarySearch) {
  SparseVector v = V({{10, 1.5}, {20, -2.5}});
  EXPECT_DOUBLE_EQ(v.Get(10), 1.5);
  EXPECT_DOUBLE_EQ(v.Get(20), -2.5);
  EXPECT_DOUBLE_EQ(v.Get(15), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(v.Get(100), 0.0);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector v = V({{0, 2.0}, {3, 1.0}});
  std::vector<double> dense = {1.0, 9.0, 9.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Dot(dense), 2.0 + 4.0);
  // Indices past the dense size contribute zero.
  std::vector<double> short_dense = {5.0};
  EXPECT_DOUBLE_EQ(v.Dot(short_dense), 10.0);
  EXPECT_DOUBLE_EQ(v.Dot(std::vector<double>{}), 0.0);
}

TEST(SparseVectorTest, DotSparseSparse) {
  SparseVector a = V({{1, 2.0}, {3, 1.0}, {8, 4.0}});
  SparseVector b = V({{3, 5.0}, {8, 0.5}, {9, 100.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 5.0 + 2.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), a.Dot(b));  // symmetry
  EXPECT_DOUBLE_EQ(a.Dot(SparseVector()), 0.0);
}

TEST(SparseVectorTest, AddScaledToGrowsDense) {
  SparseVector v = V({{2, 3.0}});
  std::vector<double> dense = {1.0};
  v.AddScaledTo(2.0, &dense);
  ASSERT_EQ(dense.size(), 3u);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
  EXPECT_DOUBLE_EQ(dense[2], 6.0);
}

TEST(SparseVectorTest, ScaleAndNorms) {
  SparseVector v = V({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
  v.Scale(2.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 10.0);
}

TEST(SparseVectorTest, SquaredDistance) {
  SparseVector a = V({{0, 1.0}, {2, 2.0}});
  SparseVector b = V({{0, 1.0}, {1, 3.0}});
  // diff: idx1 -3, idx2 +2 -> 9 + 4
  EXPECT_DOUBLE_EQ(a.SquaredDistance(b), 13.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistance(a), 0.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistance(SparseVector()), 5.0);
}

TEST(SparseVectorTest, CosineSimilarity) {
  SparseVector a = V({{0, 1.0}});
  SparseVector b = V({{0, 5.0}});
  SparseVector c = V({{1, 1.0}});
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(b), 1.0);
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(c), 0.0);
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(SparseVector()), 0.0);
}

// Regression: dimension() used to return uint32_t, so an entry at index
// UINT32_MAX wrapped it to 0 — and AddScaledTo would then skip its resize
// and write past the end of the dense vector.
TEST(SparseVectorTest, DimensionDoesNotWrapAtUint32Max) {
  SparseVector v;
  v.PushBack(std::numeric_limits<uint32_t>::max(), 1.0);
  EXPECT_EQ(v.dimension(), (1ULL << 32));
  EXPECT_EQ(SparseVector().dimension(), 0u);
}

TEST(SparseVectorTest, ToStringRendersPairs) {
  SparseVector v = V({{3, 1.0}, {17, 0.5}});
  EXPECT_EQ(v.ToString(), "{3:1, 17:0.5}");
  EXPECT_EQ(SparseVector().ToString(), "{}");
}

// Property-style randomized algebra checks.
class SparseVectorPropertyTest : public testing::TestWithParam<uint64_t> {};

SparseVector RandomVector(Rng* rng, uint32_t dim, size_t nnz) {
  std::vector<std::pair<uint32_t, double>> pairs;
  for (size_t i = 0; i < nnz; ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng->NextBelow(dim)),
                       rng->NextGaussian());
  }
  return SparseVector::FromPairs(std::move(pairs));
}

TEST_P(SparseVectorPropertyTest, DotConsistentWithDense) {
  Rng rng(GetParam());
  SparseVector a = RandomVector(&rng, 100, 20);
  SparseVector b = RandomVector(&rng, 100, 20);
  std::vector<double> b_dense(100, 0.0);
  b.AddScaledTo(1.0, &b_dense);
  EXPECT_NEAR(a.Dot(b), a.Dot(b_dense), 1e-9);
}

TEST_P(SparseVectorPropertyTest, DistanceExpandsAsNorms) {
  Rng rng(GetParam() + 1000);
  SparseVector a = RandomVector(&rng, 50, 10);
  SparseVector b = RandomVector(&rng, 50, 10);
  double expansion =
      a.L2Norm() * a.L2Norm() + b.L2Norm() * b.L2Norm() - 2.0 * a.Dot(b);
  EXPECT_NEAR(a.SquaredDistance(b), expansion, 1e-9);
}

TEST_P(SparseVectorPropertyTest, CosineBounded) {
  Rng rng(GetParam() + 2000);
  SparseVector a = RandomVector(&rng, 30, 15);
  SparseVector b = RandomVector(&rng, 30, 15);
  double cs = a.CosineSimilarity(b);
  EXPECT_GE(cs, -1.0 - 1e-12);
  EXPECT_LE(cs, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace zombie
