#include "data/cost_model.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace zombie {
namespace {

TEST(ConstantCostModelTest, AlwaysSameValue) {
  ConstantCostModel m(1234);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.SampleCostMicros(100, &rng), 1234);
  }
}

TEST(ConstantCostModelTest, ZeroAllowed) {
  ConstantCostModel m(0);
  Rng rng(1);
  EXPECT_EQ(m.SampleCostMicros(5, &rng), 0);
}

TEST(LogNormalCostModelTest, MeanMatchesTarget) {
  LogNormalCostModel m(10000.0, 0.5);
  Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    int64_t c = m.SampleCostMicros(100, &rng);
    ASSERT_GE(c, 1);
    sum += static_cast<double>(c);
  }
  EXPECT_NEAR(sum / n, 10000.0, 200.0);
}

TEST(LogNormalCostModelTest, ZeroSigmaIsDeterministic) {
  LogNormalCostModel m(5000.0, 0.0);
  Rng rng(3);
  EXPECT_EQ(m.SampleCostMicros(10, &rng), m.SampleCostMicros(10, &rng));
  EXPECT_NEAR(static_cast<double>(m.SampleCostMicros(10, &rng)), 5000.0, 1.0);
}

TEST(LogNormalCostModelTest, CostsNeverBelowOneMicro) {
  LogNormalCostModel m(2.0, 2.0);  // tiny mean, huge spread
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(m.SampleCostMicros(1, &rng), 1);
  }
}

TEST(LengthProportionalCostModelTest, ScalesWithLength) {
  LengthProportionalCostModel m(1000.0, 10.0, 0.0);
  Rng rng(5);
  int64_t short_doc = m.SampleCostMicros(10, &rng);
  int64_t long_doc = m.SampleCostMicros(1000, &rng);
  EXPECT_EQ(short_doc, 1100);
  EXPECT_EQ(long_doc, 11000);
}

TEST(LengthProportionalCostModelTest, NoiseKeepsMeanRoughly) {
  LengthProportionalCostModel m(0.0, 100.0, 0.5);
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(m.SampleCostMicros(10, &rng));
  }
  // Base cost 1000 with mean-one multiplicative noise.
  EXPECT_NEAR(sum / n, 1000.0, 30.0);
}

}  // namespace
}  // namespace zombie
