// MUST NOT COMPILE: the positional ZombieEngine::Run(grouping, policy,
// learner, reward, ...) overload was deleted in favor of the named-field
// RunSpec API. This case pins the deletion — if someone reintroduces a
// positional overload (even a [[deprecated]] one), this file starts
// compiling and the compile_fail_fail_positional_run ctest case fails.

#include "core/engine.h"

zombie::RunResult CallPositional(const zombie::ZombieEngine& engine,
                                 const zombie::GroupingResult& grouping,
                                 const zombie::BanditPolicy& policy,
                                 const zombie::Learner& learner,
                                 const zombie::RewardFunction& reward) {
  // The only Run takes a RunSpec; a positional call must not resolve.
  return engine.Run(grouping, policy, learner, reward);
}
