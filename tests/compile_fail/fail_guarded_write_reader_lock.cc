// MUST NOT COMPILE (-Werror=thread-safety): writing a ZOMBIE_GUARDED_BY
// member while holding only the shared (reader) side of its SharedMutex.

#include "util/thread_annotations.h"

namespace {

class Cache {
 public:
  void Bump() {
    zombie::ReaderMutexLock lock(&mu_);
    ++entries_;  // write under a shared lock: thread-safety error
  }

 private:
  zombie::SharedMutex mu_;
  int entries_ ZOMBIE_GUARDED_BY(mu_) = 0;
};

}  // namespace

void TouchForOdr() {
  Cache c;
  c.Bump();
}
