// MUST COMPILE: control for fail_positional_run.cc. Proves the harness can
// compile core/engine.h and resolve the RunSpec-based Run at all — without
// this, the fail_ case could "pass" because of a broken include path
// rather than the missing positional overload.

#include "core/engine.h"

zombie::RunResult CallViaSpec(const zombie::ZombieEngine& engine,
                              const zombie::GroupingResult& grouping,
                              const zombie::BanditPolicy& policy,
                              const zombie::Learner& learner,
                              const zombie::RewardFunction& reward) {
  zombie::RunSpec spec(grouping, policy, learner, reward);
  spec.shuffle_groups = false;
  return engine.Run(spec);
}
