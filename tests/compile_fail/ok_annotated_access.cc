// MUST COMPILE: the fully annotated locking discipline — guards held for
// every access, REQUIRES satisfied, condition-variable wait in a predicate
// loop. If this file fails, the harness flags (not the annotations under
// test) are broken, and every fail_* result is meaningless.

#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push() ZOMBIE_EXCLUDES(mu_) {
    {
      zombie::MutexLock lock(&mu_);
      ++size_;
      TrimLocked();
    }
    cv_.NotifyOne();
  }

  void AwaitNonEmpty() ZOMBIE_EXCLUDES(mu_) {
    zombie::MutexLock lock(&mu_);
    while (size_ == 0) cv_.Wait(&lock);
  }

  int Snapshot() const ZOMBIE_EXCLUDES(shared_mu_) {
    zombie::ReaderMutexLock lock(&shared_mu_);
    return snapshot_;
  }

  void Publish(int v) ZOMBIE_EXCLUDES(shared_mu_) {
    zombie::WriterMutexLock lock(&shared_mu_);
    snapshot_ = v;
  }

 private:
  void TrimLocked() ZOMBIE_REQUIRES(mu_) {
    if (size_ > 8) size_ = 8;
  }

  zombie::Mutex mu_;
  zombie::CondVar cv_;
  int size_ ZOMBIE_GUARDED_BY(mu_) = 0;
  mutable zombie::SharedMutex shared_mu_;
  int snapshot_ ZOMBIE_GUARDED_BY(shared_mu_) = 0;
};

}  // namespace

void TouchForOdr() {
  Queue q;
  q.Push();
  q.AwaitNonEmpty();
  q.Publish(q.Snapshot());
}
