// MUST NOT COMPILE (-Werror=thread-safety): calling a ZOMBIE_EXCLUDES
// function while already holding the excluded (non-reentrant) mutex.

#include "util/thread_annotations.h"

namespace {

class Registry {
 public:
  void Insert() ZOMBIE_EXCLUDES(mu_) {
    zombie::MutexLock lock(&mu_);
    ++size_;
    Insert();  // re-entry with mu_ held: thread-safety error
  }

 private:
  zombie::Mutex mu_;
  int size_ ZOMBIE_GUARDED_BY(mu_) = 0;
};

}  // namespace

void TouchForOdr() {
  Registry r;
  r.Insert();
}
