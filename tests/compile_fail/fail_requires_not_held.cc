// MUST NOT COMPILE (-Werror=thread-safety): calling a ZOMBIE_REQUIRES
// function without holding the required mutex.

#include "util/thread_annotations.h"

namespace {

class Evictor {
 public:
  void Evict() { EvictLocked(); }  // mu_ not held: thread-safety error

 private:
  void EvictLocked() ZOMBIE_REQUIRES(mu_) {}

  zombie::Mutex mu_;
};

}  // namespace

void TouchForOdr() {
  Evictor e;
  e.Evict();
}
