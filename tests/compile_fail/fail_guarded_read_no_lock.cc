// MUST NOT COMPILE (-Werror=thread-safety): reading a ZOMBIE_GUARDED_BY
// member without holding its mutex.

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int Peek() { return value_; }  // read without mu_: thread-safety error

 private:
  zombie::Mutex mu_;
  int value_ ZOMBIE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int TouchForOdr() {
  Counter c;
  return c.Peek();
}
