#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace zombie {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, FilteredLogDoesNotEvaluateStream) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  ZLOG(Debug) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(before);
}

TEST(LoggingTest, EnabledLogEvaluatesStream) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto counted = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  ZLOG(Debug) << "value " << counted();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(before);
}

TEST(CheckTest, PassingChecksAreSilent) {
  ZCHECK(true) << "never printed";
  ZCHECK_EQ(1, 1);
  ZCHECK_NE(1, 2);
  ZCHECK_LT(1, 2);
  ZCHECK_LE(2, 2);
  ZCHECK_GT(2, 1);
  ZCHECK_GE(2, 2);
  ZCHECK_OK(Status::OK());
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(ZCHECK(false) << "boom", "Check failed: false boom");
}

TEST(CheckDeathTest, ComparisonMacrosShowValues) {
  int a = 3;
  int b = 5;
  EXPECT_DEATH(ZCHECK_EQ(a, b), "3 vs 5");
  EXPECT_DEATH(ZCHECK_GT(a, b), "3 vs 5");
}

TEST(CheckDeathTest, CheckOkShowsStatus) {
  EXPECT_DEATH(ZCHECK_OK(Status::NotFound("missing thing")),
               "NotFound: missing thing");
}

}  // namespace
}  // namespace zombie
