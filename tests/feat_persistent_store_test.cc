// PersistentFeatureStore contract tests: roundtrip persistence across
// reopen, SIGKILL crash recovery (every acked-committed record survives, a
// torn tail never does more damage than its own chain), versioned
// invalidation, corrupt-header cold start, and the reader-role degradations
// (read-only flag, live-writer contention, missing file). The crash test
// forks a real writer process and kills it mid-append — the commit
// protocol's whole point — with commit acks flowing over a pipe so the
// parent knows exactly which records must be recoverable.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "featureeng/persistent_feature_store.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace zombie {
namespace {

constexpr uint64_t kFpA = 0x1111222233334444ull;
constexpr uint64_t kFpB = 0xaaaabbbbccccddddull;

std::string StorePath(const std::string& name) {
  std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  return path;
}

/// Deterministic entry for doc `i`: variable nnz so records have different
/// sizes (exercises arena packing and the odd-nnz alignment pad).
FeatureCache::Entry MakeEntry(uint32_t i) {
  FeatureCache::Entry e;
  uint32_t nnz = 3 + i % 8;
  for (uint32_t k = 0; k < nnz; ++k) {
    e.features.PushBack(i + k * 7, 0.25 * static_cast<double>(i) +
                                       static_cast<double>(k));
  }
  e.label = static_cast<int32_t>(i % 2);
  e.cost_micros = 1000 + static_cast<int64_t>(i);
  return e;
}

/// gtest-free equality for forked children (plain _exit codes).
bool EntryEquals(const FeatureCache::Entry& got,
                 const FeatureCache::Entry& want) {
  return got.features == want.features && got.label == want.label &&
         got.cost_micros == want.cost_micros;
}

void ExpectEntryEq(const FeatureCache::Entry& got,
                   const FeatureCache::Entry& want, uint32_t i) {
  EXPECT_EQ(got.features, want.features) << "doc " << i;
  EXPECT_EQ(got.label, want.label) << "doc " << i;
  EXPECT_EQ(got.cost_micros, want.cost_micros) << "doc " << i;
}

PersistentFeatureStoreOptions SmallStore() {
  PersistentFeatureStoreOptions opts;
  opts.num_buckets = 64;  // force real chains and a small file
  return opts;
}

TEST(PersistentFeatureStoreTest, RoundtripAcrossReopen) {
  std::string path = StorePath("roundtrip.zfs");
  constexpr uint32_t kDocs = 200;
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(store.value()->writable());
    for (uint32_t i = 0; i < kDocs; ++i) {
      EXPECT_TRUE(store.value()->Append(kFpA, i, MakeEntry(i)));
    }
    // Duplicate keys are rejected without writing.
    EXPECT_FALSE(store.value()->Append(kFpA, 0, MakeEntry(0)));
    PersistentFeatureStoreStats s = store.value()->Stats();
    EXPECT_EQ(s.appends, kDocs);
    EXPECT_EQ(s.entries, kDocs);
  }
  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PersistentFeatureStoreStats s = store.value()->Stats();
  EXPECT_EQ(s.recovered, kDocs);
  EXPECT_EQ(s.entries, kDocs);
  EXPECT_EQ(s.corrupt_skipped, 0u);
  for (uint32_t i = 0; i < kDocs; ++i) {
    auto hit = store.value()->Lookup(kFpA, i);
    ASSERT_TRUE(hit.has_value()) << "doc " << i;
    ExpectEntryEq(*hit, MakeEntry(i), i);
  }
  EXPECT_FALSE(store.value()->Lookup(kFpA, kDocs).has_value());
  EXPECT_FALSE(store.value()->Lookup(kFpB, 0).has_value());
}

TEST(PersistentFeatureStoreTest, GenerationBumpsPerWriterOpen) {
  std::string path = StorePath("generation.zfs");
  uint64_t first = 0;
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    first = store.value()->generation();
    EXPECT_GE(first, 1u);
  }
  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->generation(), first + 1);
}

TEST(PersistentFeatureStoreTest, ReadOnlyOptionForcesReaderRole) {
  std::string path = StorePath("read_only.zfs");
  {
    auto writer = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(kFpA, 7, MakeEntry(7)));
  }
  PersistentFeatureStoreOptions opts = SmallStore();
  opts.read_only = true;
  auto reader = PersistentFeatureStore::Open(path, opts);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.value()->writable());
  EXPECT_FALSE(reader.value()->Append(kFpA, 8, MakeEntry(8)));
  auto hit = reader.value()->Lookup(kFpA, 7);
  ASSERT_TRUE(hit.has_value());
  ExpectEntryEq(*hit, MakeEntry(7), 7);
}

TEST(PersistentFeatureStoreTest, SecondOpenDegradesToReaderWhileWriterLives) {
  std::string path = StorePath("two_roles.zfs");
  auto writer = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->writable());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.value()->Append(kFpA, i, MakeEntry(i)));
  }
  // flock is per open file description, so this second open contends with
  // the live writer exactly like another process would: the exclusive and
  // shared locks are both refused and the open degrades to lock-free reads.
  auto reader = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.value()->writable());
  EXPECT_FALSE(reader.value()->Append(kFpA, 99, MakeEntry(99)));
  for (uint32_t i = 0; i < 50; ++i) {
    auto hit = reader.value()->Lookup(kFpA, i);
    ASSERT_TRUE(hit.has_value()) << "doc " << i;
    ExpectEntryEq(*hit, MakeEntry(i), i);
  }
}

TEST(PersistentFeatureStoreTest, MissingFileReaderRunsDetached) {
  std::string path = StorePath("missing.zfs");
  PersistentFeatureStoreOptions opts = SmallStore();
  opts.read_only = true;
  auto reader = PersistentFeatureStore::Open(path, opts);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader.value()->writable());
  EXPECT_FALSE(reader.value()->Lookup(kFpA, 0).has_value());
  EXPECT_FALSE(reader.value()->Append(kFpA, 0, MakeEntry(0)));
  EXPECT_EQ(reader.value()->Stats().misses, 1u);
}

TEST(PersistentFeatureStoreTest, FingerprintInvalidationDropsOnlyStale) {
  std::string path = StorePath("invalidate.zfs");
  constexpr uint32_t kDocs = 60;
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE(store.value()->Append(kFpA, i, MakeEntry(i)));
      ASSERT_TRUE(store.value()->Append(kFpB, i, MakeEntry(i + 1000)));
    }
  }
  {
    PersistentFeatureStoreOptions opts = SmallStore();
    opts.retain_fingerprints = {kFpA};
    auto store = PersistentFeatureStore::Open(path, opts);
    ASSERT_TRUE(store.ok());
    PersistentFeatureStoreStats s = store.value()->Stats();
    EXPECT_EQ(s.invalidated, kDocs);
    EXPECT_EQ(s.recovered, kDocs);
    EXPECT_EQ(s.entries, kDocs);
    for (uint32_t i = 0; i < kDocs; ++i) {
      EXPECT_TRUE(store.value()->Lookup(kFpA, i).has_value()) << i;
      EXPECT_FALSE(store.value()->Lookup(kFpB, i).has_value()) << i;
    }
  }
  // The unlink is persistent: a later retain-everything open still sees
  // only the retained fingerprint's records.
  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->Stats().recovered, kDocs);
  EXPECT_FALSE(store.value()->Lookup(kFpB, 0).has_value());
  EXPECT_TRUE(store.value()->Lookup(kFpA, 0).has_value());
}

TEST(PersistentFeatureStoreTest, CorruptRecordTruncatesOnlyItsChain) {
  std::string path = StorePath("torn.zfs");
  constexpr uint32_t kDocs = 40;
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE(store.value()->Append(kFpA, i, MakeEntry(i)));
    }
  }
  // Scribble over one byte inside the first record's payload (the arena
  // begins right after the 64-byte header + 64 * 8-byte bucket index).
  // CRC validation must reject the record; because it was appended first
  // it is the *tail* of its chain, so every other record survives.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    long arena = 64 + 64 * 8;
    ASSERT_EQ(std::fseek(f, arena + 16, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, arena + 16, SEEK_SET), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok());
  PersistentFeatureStoreStats s = store.value()->Stats();
  EXPECT_EQ(s.corrupt_skipped, 1u);
  EXPECT_EQ(s.recovered, kDocs - 1);
  uint32_t found = 0;
  for (uint32_t i = 0; i < kDocs; ++i) {
    if (auto hit = store.value()->Lookup(kFpA, i)) {
      ExpectEntryEq(*hit, MakeEntry(i), i);
      ++found;
    }
  }
  EXPECT_EQ(found, kDocs - 1);
}

TEST(PersistentFeatureStoreTest, CorruptHeaderColdStartsWriter) {
  std::string path = StorePath("bad_header.zfs");
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Append(kFpA, 1, MakeEntry(1)));
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "NOTASTORE";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PersistentFeatureStoreStats s = store.value()->Stats();
  EXPECT_EQ(s.corrupt_skipped, 1u);
  EXPECT_EQ(s.recovered, 0u);
  EXPECT_EQ(s.entries, 0u);
  // The store is fully usable after the in-place cold start.
  EXPECT_FALSE(store.value()->Lookup(kFpA, 1).has_value());
  EXPECT_TRUE(store.value()->Append(kFpA, 2, MakeEntry(2)));
  auto hit = store.value()->Lookup(kFpA, 2);
  ASSERT_TRUE(hit.has_value());
  ExpectEntryEq(*hit, MakeEntry(2), 2);
}

TEST(PersistentFeatureStoreTest, CorruptHeaderDetachesReader) {
  std::string path = StorePath("bad_header_reader.zfs");
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Append(kFpA, 1, MakeEntry(1)));
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "NOTASTORE";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  PersistentFeatureStoreOptions opts = SmallStore();
  opts.read_only = true;
  auto reader = PersistentFeatureStore::Open(path, opts);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->Stats().corrupt_skipped, 1u);
  EXPECT_FALSE(reader.value()->Lookup(kFpA, 1).has_value());
}

TEST(PersistentFeatureStoreTest, ExportMetricsPublishesGauges) {
  std::string path = StorePath("metrics.zfs");
  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Append(kFpA, 1, MakeEntry(1)));
  EXPECT_TRUE(store.value()->Lookup(kFpA, 1).has_value());
  EXPECT_FALSE(store.value()->Lookup(kFpA, 2).has_value());
  MetricsRegistry metrics;
  store.value()->ExportMetrics(&metrics);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("store.hits")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("store.misses")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("store.appends")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("store.entries")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("store.hit_rate")->value(), 0.5);
  // Repeated export is snapshot-stable (gauge, not counter).
  store.value()->ExportMetrics(&metrics);
  EXPECT_DOUBLE_EQ(metrics.GetGauge("store.hits")->value(), 1.0);
}

// --- SIGKILL crash recovery -----------------------------------------------

// The child appends records as fast as it can, acking each *committed*
// append (Append returned true) through a pipe. The parent kills it with
// SIGKILL after a batch of acks — at a completely arbitrary point in the
// child's append/commit sequence — then reopens the store and checks the
// recovery invariant: acked ⊆ recovered ⊆ attempted, with every acked
// record's payload intact.
TEST(PersistentFeatureStoreCrashTest, RecoversAllAckedRecordsAfterSigkill) {
  std::string path = StorePath("crash.zfs");
  constexpr uint32_t kMaxDocs = 200000;

  int ack_pipe[2];
  ASSERT_EQ(pipe(ack_pipe), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: plain _exit codes, no gtest machinery. The writer lock dies
    // with the process, so the parent's reopen below gets writer role.
    ::close(ack_pipe[0]);
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    if (!store.ok()) _exit(2);
    for (uint32_t i = 0; i < kMaxDocs; ++i) {
      if (!store.value()->Append(kFpA, i, MakeEntry(i))) _exit(3);
      if (::write(ack_pipe[1], &i, sizeof(i)) !=
          static_cast<ssize_t>(sizeof(i))) {
        _exit(4);
      }
    }
    _exit(0);
  }
  ::close(ack_pipe[1]);

  // Collect acks until the child has committed a healthy batch, then kill
  // it mid-stream.
  uint32_t last_acked = 0;
  uint32_t acked_count = 0;
  while (acked_count < 500) {
    uint32_t id = 0;
    ssize_t n = ::read(ack_pipe[0], &id, sizeof(id));
    ASSERT_EQ(n, static_cast<ssize_t>(sizeof(id)))
        << "child exited early (ack pipe closed)";
    last_acked = id;
    ++acked_count;
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child was not killed by SIGKILL";
  // Drain acks the child wrote between our last read and the kill: they
  // are committed records too and must be recovered.
  uint32_t id = 0;
  while (::read(ack_pipe[0], &id, sizeof(id)) ==
         static_cast<ssize_t>(sizeof(id))) {
    last_acked = id;
  }
  ::close(ack_pipe[0]);

  auto store = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store.value()->writable())
      << "SIGKILL must release the dead writer's lock";
  PersistentFeatureStoreStats s = store.value()->Stats();
  // Everything acked was committed before the kill and must be intact.
  for (uint32_t i = 0; i <= last_acked; ++i) {
    auto hit = store.value()->Lookup(kFpA, i);
    ASSERT_TRUE(hit.has_value()) << "acked record " << i << " lost (of "
                                 << last_acked << ")";
    ExpectEntryEq(*hit, MakeEntry(i), i);
  }
  // Recovery may additionally see the record whose commit flip landed but
  // whose ack never did — at most one per bucket chain, and in practice
  // at most one total (the append in flight at kill time).
  EXPECT_GE(s.recovered, static_cast<uint64_t>(last_acked) + 1);
  EXPECT_LE(s.recovered, static_cast<uint64_t>(kMaxDocs));
  // A torn tail never aborts the open; it is skipped and counted.
  EXPECT_EQ(s.corrupt_skipped, 0u)
      << "commit protocol must never publish a torn record";
}

// --- GC (--store-gc) vs concurrent readers --------------------------------

TEST(PersistentFeatureStoreTest, GcDefersWhileReaderHoldsSharedLock) {
  std::string path = StorePath("gc_deferred.zfs");
  constexpr uint32_t kDocs = 60;
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE(store.value()->Append(kFpA, i, MakeEntry(i)));
      ASSERT_TRUE(store.value()->Append(kFpB, i, MakeEntry(i + 1000)));
    }
  }
  PersistentFeatureStoreOptions reader_opts = SmallStore();
  reader_opts.read_only = true;
  auto reader = PersistentFeatureStore::Open(path, reader_opts);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  // A --store-gc open (retain_fingerprints set) while the reader holds the
  // shared lock cannot get the exclusive lock: it degrades to reader role
  // and the invalidation pass — writer-only by contract — does not run.
  // GC defers until the readers drain rather than mutating under them.
  PersistentFeatureStoreOptions gc_opts = SmallStore();
  gc_opts.retain_fingerprints = {kFpA};
  {
    auto gc = PersistentFeatureStore::Open(path, gc_opts);
    ASSERT_TRUE(gc.ok()) << gc.status().ToString();
    EXPECT_FALSE(gc.value()->writable());
    EXPECT_EQ(gc.value()->Stats().invalidated, 0u);
    EXPECT_TRUE(gc.value()->Lookup(kFpB, 0).has_value());
  }
  // The live reader's view is untouched.
  for (uint32_t i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(reader.value()->Lookup(kFpA, i).has_value()) << i;
    ASSERT_TRUE(reader.value()->Lookup(kFpB, i).has_value()) << i;
  }
  reader.value().reset();

  // With the shared lock released the same GC open wins writer role and
  // the deferred invalidation finally lands.
  auto gc = PersistentFeatureStore::Open(path, gc_opts);
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  EXPECT_TRUE(gc.value()->writable());
  EXPECT_EQ(gc.value()->Stats().invalidated, kDocs);
  EXPECT_TRUE(gc.value()->Lookup(kFpA, 0).has_value());
  EXPECT_FALSE(gc.value()->Lookup(kFpB, 0).has_value());
}

// A reader that opened while some writer was alive holds no lock at all
// (the SecondOpenDegradesToReaderWhileWriterLives path), so a later
// --store-gc writer CAN unlink chains underneath its live mapping. The
// contract the child checks from a real separate process: retained
// fingerprints keep serving intact payloads all through the GC, dropped
// fingerprints either serve an intact pre-GC record or miss (never tear),
// and a clean reopen converges to the post-GC view.
TEST(PersistentFeatureStoreGcTest, GcUnderLockFreeReaderProcess) {
  std::string path = StorePath("gc_live_reader.zfs");
  constexpr uint32_t kDocs = 60;
  {
    auto store = PersistentFeatureStore::Open(path, SmallStore());
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE(store.value()->Append(kFpA, i, MakeEntry(i)));
      ASSERT_TRUE(store.value()->Append(kFpB, i, MakeEntry(i + 1000)));
    }
  }
  // Hold the exclusive lock so the child's open degrades to lock-free.
  auto writer = PersistentFeatureStore::Open(path, SmallStore());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->writable());

  int ready_pipe[2];
  int gc_done_pipe[2];
  ASSERT_EQ(pipe(ready_pipe), 0);
  ASSERT_EQ(pipe(gc_done_pipe), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: plain _exit codes, no gtest machinery.
    ::close(ready_pipe[0]);
    ::close(gc_done_pipe[1]);
    // Drop the writer handle this process inherited across fork: flock
    // lives on the (shared) open file description, so the parent's later
    // release only takes effect once this duplicate fd is gone too.
    writer.value().reset();
    PersistentFeatureStoreOptions opts = SmallStore();
    opts.read_only = true;
    auto reader = PersistentFeatureStore::Open(path, opts);
    if (!reader.ok() || reader.value()->writable()) _exit(2);
    for (uint32_t i = 0; i < kDocs; ++i) {
      auto a = reader.value()->Lookup(kFpA, i);
      auto b = reader.value()->Lookup(kFpB, i);
      if (!a.has_value() || !EntryEquals(*a, MakeEntry(i))) _exit(3);
      if (!b.has_value() || !EntryEquals(*b, MakeEntry(i + 1000))) _exit(3);
    }
    char byte = 'r';
    if (::write(ready_pipe[1], &byte, 1) != 1) _exit(4);
    if (::read(gc_done_pipe[0], &byte, 1) != 1) _exit(4);
    // GC ran against the file this reader still has mapped. Retained
    // chains must serve every record intact; dropped ones are
    // served-intact-or-missed, never torn.
    for (uint32_t i = 0; i < kDocs; ++i) {
      auto a = reader.value()->Lookup(kFpA, i);
      if (!a.has_value() || !EntryEquals(*a, MakeEntry(i))) _exit(5);
      auto b = reader.value()->Lookup(kFpB, i);
      if (b.has_value() && !EntryEquals(*b, MakeEntry(i + 1000))) _exit(6);
    }
    // Clean reopen converges to the post-GC view.
    reader = PersistentFeatureStore::Open(path, opts);
    if (!reader.ok()) _exit(7);
    for (uint32_t i = 0; i < kDocs; ++i) {
      auto a = reader.value()->Lookup(kFpA, i);
      if (!a.has_value() || !EntryEquals(*a, MakeEntry(i))) _exit(8);
      if (reader.value()->Lookup(kFpB, i).has_value()) _exit(9);
    }
    _exit(0);
  }
  ::close(ready_pipe[1]);
  ::close(gc_done_pipe[0]);

  char byte = 0;
  ASSERT_EQ(::read(ready_pipe[0], &byte, 1), 1) << "child died before ready";
  // Release the exclusive lock, then run the --store-gc open: the child
  // reader holds no lock, so this open wins writer role and unlinks kFpB
  // while the child's mapping is live.
  writer.value().reset();
  PersistentFeatureStoreOptions gc_opts = SmallStore();
  gc_opts.retain_fingerprints = {kFpA};
  auto gc = PersistentFeatureStore::Open(path, gc_opts);
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  ASSERT_TRUE(gc.value()->writable());
  EXPECT_EQ(gc.value()->Stats().invalidated, kDocs);
  ASSERT_EQ(::write(gc_done_pipe[1], &byte, 1), 1);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child failure code";
  ::close(ready_pipe[0]);
  ::close(gc_done_pipe[1]);
}

}  // namespace
}  // namespace zombie
