// Differential tests for the runtime ISA dispatch layer (ml/simd/): every
// compiled-and-runnable kernel table must be *bit-identical* to the scalar
// reference — same FP additions, same operands, same order — on adversarial
// index patterns and on seeded random CSR rows across nnz/overlap regimes.
// Plus unit tests for the SimdLevel parse/probe/resolution rules.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "ml/simd/simd_level.h"
#include "ml/simd/sparse_kernels.h"
#include "ml/simd/sparse_kernels_scalar.h"
#include "ml/sparse_vector.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {
namespace {

using simd::SimdLevel;
using simd::SparseKernels;

// Raw result bits: EXPECT_EQ on these is exact bit equality, which is the
// contract (EXPECT_DOUBLE_EQ would tolerate ULP drift and also treat
// -0.0 == +0.0).
uint64_t Bits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Sparse operand as parallel raw arrays, buildable from arbitrary sorted
// index sets (including UINT32_MAX, which SparseVector supports too).
struct Row {
  std::vector<uint32_t> idx;
  std::vector<double> val;

  size_t n() const { return idx.size(); }
  const uint32_t* ip() const { return idx.data(); }
  const double* vp() const { return val.data(); }
};

Row MakeRow(std::vector<uint32_t> indices, Rng* rng) {
  Row r;
  r.idx = std::move(indices);
  r.val.reserve(r.idx.size());
  for (size_t i = 0; i < r.idx.size(); ++i) {
    // Mix magnitudes and signs so accumulation-order bugs actually move
    // result bits (uniform same-scale values can round identically under
    // benign reorderings and mask a violation).
    r.val.push_back(rng->NextGaussian() * (1.0 + 1e6 * rng->NextDouble()));
  }
  return r;
}

// Random strictly-increasing indices: `n` draws without replacement from
// [lo, hi], sorted.
std::vector<uint32_t> RandomIndices(size_t n, uint32_t lo, uint32_t hi,
                                    Rng* rng) {
  std::vector<uint32_t> out;
  out.reserve(n);
  uint64_t span = static_cast<uint64_t>(hi) - lo + 1;
  while (out.size() < n) {
    out.push_back(lo + static_cast<uint32_t>(rng->NextBelow(span)));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

// Runs all four kernels from `table` against the scalar reference on one
// operand pair and asserts bit equality of every result.
void ExpectBitIdentical(const SparseKernels& table, const Row& a,
                        const Row& b, const std::string& label) {
  SCOPED_TRACE(label);
  // dot_sparse_sparse requires non-empty operands (wrapper contract).
  if (a.n() > 0 && b.n() > 0) {
    const double got =
        table.dot_sparse_sparse(a.ip(), a.vp(), a.n(), b.ip(), b.vp(), b.n());
    const double want = simd::ScalarDotSparseSparse(a.ip(), a.vp(), a.n(),
                                                    b.ip(), b.vp(), b.n());
    EXPECT_EQ(Bits(got), Bits(want)) << "dot_sparse_sparse " << got << " vs "
                                     << want;
  }
  {
    const double got = table.squared_distance(a.ip(), a.vp(), a.n(), b.ip(),
                                              b.vp(), b.n());
    const double want = simd::ScalarSquaredDistance(a.ip(), a.vp(), a.n(),
                                                    b.ip(), b.vp(), b.n());
    EXPECT_EQ(Bits(got), Bits(want)) << "squared_distance " << got << " vs "
                                     << want;
  }
  // Dense-side kernels need in-range indices; clamp to a dense buffer that
  // covers the row (skip when the row's dimension is impractically large).
  const uint32_t max_idx = a.n() == 0 ? 0 : a.idx.back();
  if (a.n() > 0 && max_idx < (1u << 16)) {
    Rng rng(777);
    std::vector<double> dense(static_cast<size_t>(max_idx) + 1);
    for (double& d : dense) d = rng.NextGaussian();
    const double got = table.dot_sparse_dense(a.ip(), a.vp(), a.n(),
                                              dense.data());
    const double want = simd::ScalarDotSparseDense(a.ip(), a.vp(), a.n(),
                                                   dense.data());
    EXPECT_EQ(Bits(got), Bits(want)) << "dot_sparse_dense " << got << " vs "
                                     << want;

    std::vector<double> out_got = dense;
    std::vector<double> out_want = dense;
    table.add_scaled_to(a.ip(), a.vp(), a.n(), -0.75, out_got.data());
    simd::ScalarAddScaledTo(a.ip(), a.vp(), a.n(), -0.75, out_want.data());
    ASSERT_EQ(out_got.size(), out_want.size());
    for (size_t i = 0; i < out_got.size(); ++i) {
      ASSERT_EQ(Bits(out_got[i]), Bits(out_want[i]))
          << "add_scaled_to slot " << i;
    }
  }
}

// --- SimdLevel parse/probe/resolution ---------------------------------------

TEST(SimdLevelTest, ParseAcceptsCanonicalNames) {
  EXPECT_EQ(simd::ParseSimdLevel("scalar").value(), SimdLevel::kScalar);
  EXPECT_EQ(simd::ParseSimdLevel("avx2").value(), SimdLevel::kAvx2);
  EXPECT_EQ(simd::ParseSimdLevel("avx512").value(), SimdLevel::kAvx512);
}

TEST(SimdLevelTest, ParseRejectsAnythingElse) {
  for (const char* bad : {"", "AVX2", "avx-512", "sse4.2", "native", "2"}) {
    StatusOr<SimdLevel> r = simd::ParseSimdLevel(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(SimdLevelTest, NameRoundTrips) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    EXPECT_EQ(simd::ParseSimdLevel(simd::SimdLevelName(level)).value(), level);
  }
}

TEST(SimdLevelTest, ResolutionClampsToDetectedAndCompiled) {
  // No override: min(detected, compiled).
  EXPECT_EQ(simd::ComputeActiveSimdLevel(nullptr, SimdLevel::kAvx512,
                                         SimdLevel::kAvx2)
                .value(),
            SimdLevel::kAvx2);
  EXPECT_EQ(simd::ComputeActiveSimdLevel(nullptr, SimdLevel::kScalar,
                                         SimdLevel::kAvx512)
                .value(),
            SimdLevel::kScalar);
}

TEST(SimdLevelTest, ForcingDownIsHonored) {
  EXPECT_EQ(simd::ComputeActiveSimdLevel("scalar", SimdLevel::kAvx512,
                                         SimdLevel::kAvx512)
                .value(),
            SimdLevel::kScalar);
  EXPECT_EQ(simd::ComputeActiveSimdLevel("avx2", SimdLevel::kAvx512,
                                         SimdLevel::kAvx512)
                .value(),
            SimdLevel::kAvx2);
}

TEST(SimdLevelTest, ForcingAboveCpuOrBinaryDowngrades) {
  // CPU lacks the level: downgrade, never execute illegal opcodes.
  EXPECT_EQ(simd::ComputeActiveSimdLevel("avx512", SimdLevel::kAvx2,
                                         SimdLevel::kAvx512)
                .value(),
            SimdLevel::kAvx2);
  // Binary lacks the level (built with ZOMBIE_SIMD=OFF): same.
  EXPECT_EQ(simd::ComputeActiveSimdLevel("avx2", SimdLevel::kAvx512,
                                         SimdLevel::kScalar)
                .value(),
            SimdLevel::kScalar);
}

TEST(SimdLevelTest, MalformedOverrideIsAnError) {
  StatusOr<SimdLevel> r = simd::ComputeActiveSimdLevel(
      "avx1024", SimdLevel::kAvx512, SimdLevel::kAvx512);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimdLevelTest, ProbeAndTablesAreConsistent) {
  // Can't assert what the CPU supports, but the invariants must hold:
  // scalar is always available, levels ascend, every available level has a
  // compiled table, and the active level is within them.
  const std::vector<SimdLevel> levels = simd::AvailableLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(levels[i - 1], levels[i]);
    EXPECT_LE(levels[i], simd::DetectCpuSimdLevel());
    EXPECT_LE(levels[i], simd::CompiledSimdLevel());
  }
  for (SimdLevel level : levels) {
    EXPECT_NE(simd::KernelsForLevel(level), nullptr);
  }
  EXPECT_LE(simd::ActiveSimdLevel(), simd::DetectCpuSimdLevel());
  EXPECT_LE(simd::ActiveSimdLevel(), simd::CompiledSimdLevel());
  EXPECT_NE(simd::KernelsForLevel(simd::ActiveSimdLevel()), nullptr);
}

// --- Adversarial fixed patterns ---------------------------------------------

class SimdKernelsTest : public ::testing::Test {
 protected:
  // Every test body runs once per available level; the scalar row of the
  // matrix doubles as a self-check of the harness.
  void ForEachLevel(const Row& a, const Row& b, const std::string& label) {
    for (SimdLevel level : simd::AvailableLevels()) {
      ExpectBitIdentical(*simd::KernelsForLevel(level), a, b,
                         label + " @ " + simd::SimdLevelName(level));
    }
  }
};

TEST_F(SimdKernelsTest, EmptyAndSingleEntry) {
  Rng rng(1);
  const Row empty;
  const Row one = MakeRow({42}, &rng);
  ForEachLevel(empty, empty, "empty/empty");
  ForEachLevel(one, empty, "one/empty");
  ForEachLevel(empty, one, "empty/one");
  ForEachLevel(one, one, "one/one");
}

TEST_F(SimdKernelsTest, SingleRunDisjointRanges) {
  // All of a's indices strictly below all of b's: one maximal mismatch run
  // each way, no matches — the pure AdvanceTo path.
  Rng rng(2);
  const Row a = MakeRow(RandomIndices(100, 0, 999, &rng), &rng);
  const Row b = MakeRow(RandomIndices(100, 1000, 1999, &rng), &rng);
  ForEachLevel(a, b, "disjoint low/high");
  ForEachLevel(b, a, "disjoint high/low");
}

TEST_F(SimdKernelsTest, DenseOverlapIdenticalIndexSets) {
  // Every index matches: the pure match path, zero-length runs between
  // matches (exercises the vector loop's "first lane already >= bound"
  // early out).
  Rng rng(3);
  std::vector<uint32_t> shared = RandomIndices(257, 0, 4095, &rng);
  const Row a = MakeRow(shared, &rng);
  const Row b = MakeRow(shared, &rng);
  ForEachLevel(a, b, "identical index sets");
  ForEachLevel(a, a, "self (distance must hit exact zero)");
}

TEST_F(SimdKernelsTest, InterleavedAlternatingIndices) {
  // a gets evens, b gets odds: maximal alternation, run length 1
  // throughout — worst case for vectorized scanning, must still be exact.
  Rng rng(4);
  std::vector<uint32_t> evens;
  std::vector<uint32_t> odds;
  for (uint32_t i = 0; i < 300; ++i) {
    (i % 2 == 0 ? evens : odds).push_back(i);
  }
  const Row a = MakeRow(std::move(evens), &rng);
  const Row b = MakeRow(std::move(odds), &rng);
  ForEachLevel(a, b, "alternating");
}

TEST_F(SimdKernelsTest, Uint32MaxAdjacentIndices) {
  // Indices straddling both the signed-compare boundary (2^31) and the top
  // of the index space: catches any signed/unsigned confusion in vector
  // compares (AVX2 has no unsigned epi32 compare and must bias by the sign
  // bit).
  Rng rng(5);
  std::vector<uint32_t> high = {0x7ffffffdu, 0x7ffffffeu, 0x7fffffffu,
                                0x80000000u, 0x80000001u, 0xfffffff0u,
                                UINT32_MAX - 1, UINT32_MAX};
  std::vector<uint32_t> mixed = {0u,          5u,          0x7fffffffu,
                                 0x80000000u, 0xfffffff0u, UINT32_MAX};
  const Row a = MakeRow(high, &rng);
  const Row b = MakeRow(mixed, &rng);
  ForEachLevel(a, b, "uint32-max adjacent");
  // Long rows around the boundary so the vector loops actually engage.
  const Row c = MakeRow(RandomIndices(200, 0x7fffff00u, 0x800000ffu, &rng),
                        &rng);
  const Row d = MakeRow(RandomIndices(200, 0x7fffff80u, 0x8000017fu, &rng),
                        &rng);
  ForEachLevel(c, d, "boundary-straddling runs");
  const Row e = MakeRow(RandomIndices(64, UINT32_MAX - 255, UINT32_MAX, &rng),
                        &rng);
  ForEachLevel(e, e, "top-of-range self");
  ForEachLevel(a, e, "high vs top-of-range");
}

TEST_F(SimdKernelsTest, DuplicateFreeCsrRowsFromDataset) {
  // Rows as the production pipeline makes them: FromPairs output (sorted,
  // duplicate-merged, zeros dropped).
  Rng rng(6);
  std::vector<std::pair<uint32_t, double>> pa;
  std::vector<std::pair<uint32_t, double>> pb;
  for (int i = 0; i < 400; ++i) {
    pa.emplace_back(static_cast<uint32_t>(rng.NextBelow(8192)),
                    rng.NextGaussian());
    pb.emplace_back(static_cast<uint32_t>(rng.NextBelow(8192)),
                    rng.NextGaussian());
  }
  const SparseVector va = SparseVector::FromPairs(pa);
  const SparseVector vb = SparseVector::FromPairs(pb);
  Row a{va.indices(), va.values()};
  Row b{vb.indices(), vb.values()};
  ForEachLevel(a, b, "csr rows");
}

// --- RemapSparseView (pruning compaction) -----------------------------------

// Monotone old-id→dense-id table: each id is kept with probability
// `keep_fraction`, kept ids numbered densely in order (the shape
// FeaturePruner freezes).
std::vector<uint32_t> MakeRemapTable(size_t size, double keep_fraction,
                                     Rng* rng) {
  std::vector<uint32_t> remap(size, simd::kPrunedFeature);
  uint32_t next = 0;
  for (size_t f = 0; f < size; ++f) {
    if (rng->NextDouble() < keep_fraction) remap[f] = next++;
  }
  return remap;
}

// Runs every available level's remap_sparse_view against the scalar
// reference — out-of-place and in-place — and asserts the identical kept
// sequence (indices equal, value bits equal). Pure data movement, so exact
// equality is the whole contract.
void ExpectRemapBitIdentical(const Row& a, const std::vector<uint32_t>& remap,
                             const std::string& label) {
  SCOPED_TRACE(label);
  std::vector<uint32_t> want_idx(a.n());
  std::vector<double> want_val(a.n());
  const size_t want_n = simd::ScalarRemapSparseView(
      a.ip(), a.vp(), a.n(), remap.data(), remap.size(), want_idx.data(),
      want_val.data());
  ASSERT_LE(want_n, a.n());
  for (SimdLevel level : simd::AvailableLevels()) {
    SCOPED_TRACE(simd::SimdLevelName(level));
    const SparseKernels& table = *simd::KernelsForLevel(level);
    // Poisoned out buffers catch writes past the kept count.
    std::vector<uint32_t> got_idx(a.n(), 0xdeadbeefu);
    std::vector<double> got_val(a.n(), -12345.0);
    const size_t got_n =
        table.remap_sparse_view(a.ip(), a.vp(), a.n(), remap.data(),
                                remap.size(), got_idx.data(), got_val.data());
    ASSERT_EQ(got_n, want_n);
    for (size_t i = 0; i < got_n; ++i) {
      ASSERT_EQ(got_idx[i], want_idx[i]) << "index slot " << i;
      ASSERT_EQ(Bits(got_val[i]), Bits(want_val[i])) << "value slot " << i;
    }
    // In-place (out aliasing in) is part of the kernel contract: the write
    // cursor must never pass the read cursor.
    std::vector<uint32_t> inplace_idx = a.idx;
    std::vector<double> inplace_val = a.val;
    const size_t inplace_n = table.remap_sparse_view(
        inplace_idx.data(), inplace_val.data(), a.n(), remap.data(),
        remap.size(), inplace_idx.data(), inplace_val.data());
    ASSERT_EQ(inplace_n, want_n);
    for (size_t i = 0; i < inplace_n; ++i) {
      ASSERT_EQ(inplace_idx[i], want_idx[i]) << "in-place index slot " << i;
      ASSERT_EQ(Bits(inplace_val[i]), Bits(want_val[i]))
          << "in-place value slot " << i;
    }
  }
}

TEST_F(SimdKernelsTest, RemapAdversarialPatterns) {
  Rng rng(11);
  const size_t kDim = 512;
  std::vector<uint32_t> keep_all = MakeRemapTable(kDim, 1.0, &rng);
  std::vector<uint32_t> drop_all = MakeRemapTable(kDim, 0.0, &rng);
  std::vector<uint32_t> half = MakeRemapTable(kDim, 0.5, &rng);
  // Alternating keep/prune: run length 1 throughout, the worst case for
  // any vectorized left-pack.
  std::vector<uint32_t> alternating(kDim, simd::kPrunedFeature);
  uint32_t next = 0;
  for (size_t f = 0; f < kDim; f += 2) alternating[f] = next++;

  const Row empty;
  ExpectRemapBitIdentical(empty, half, "empty row");
  const Row one = MakeRow({17}, &rng);
  ExpectRemapBitIdentical(one, keep_all, "single kept");
  ExpectRemapBitIdentical(one, drop_all, "single pruned");
  const Row row = MakeRow(RandomIndices(100, 0, kDim - 1, &rng), &rng);
  ExpectRemapBitIdentical(row, keep_all, "keep everything");
  ExpectRemapBitIdentical(row, drop_all, "prune everything");
  ExpectRemapBitIdentical(row, half, "half pruned");
  ExpectRemapBitIdentical(row, alternating, "alternating keep/prune");
  // Indices at and past remap_size form a droppable suffix; straddle the
  // boundary so the sorted-suffix cutoff is exercised in the lane loops.
  const Row straddling =
      MakeRow(RandomIndices(64, kDim - 32, kDim + 31, &rng), &rng);
  ExpectRemapBitIdentical(straddling, half, "ids straddling table size");
  const Row beyond = MakeRow({kDim, kDim + 1, 4096, UINT32_MAX}, &rng);
  ExpectRemapBitIdentical(beyond, half, "all ids out of range");
}

TEST_F(SimdKernelsTest, RemapDifferentialFuzz) {
  // nnz around the 8/16-lane widths x keep fractions from drop-all to
  // keep-all, on tables sized to force both in-range and suffix paths.
  Rng rng(20260812);
  const size_t kDim = 4096;
  for (double keep : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    std::vector<uint32_t> remap = MakeRemapTable(kDim, keep, &rng);
    for (size_t nnz : {1u, 7u, 8u, 15u, 16u, 31u, 63u, 64u, 128u, 300u}) {
      for (int rep = 0; rep < 6; ++rep) {
        const Row a = MakeRow(
            RandomIndices(nnz, 0, static_cast<uint32_t>(kDim) + 63, &rng),
            &rng);
        ExpectRemapBitIdentical(
            a, remap, StrFormat("fuzz keep=%.1f nnz=%zu rep=%d", keep, nnz,
                                rep));
      }
    }
  }
}

TEST_F(SimdKernelsTest, RemapThroughWrapperCompactsInPlace) {
  // End-to-end through SparseVector::RemapThrough at the active level:
  // same kept sequence as the scalar reference, vector invariants intact.
  Rng rng(13);
  const size_t kDim = 1024;
  std::vector<uint32_t> remap = MakeRemapTable(kDim, 0.5, &rng);
  for (size_t nnz : {1u, 16u, 100u, 400u}) {
    const Row a = MakeRow(
        RandomIndices(nnz, 0, static_cast<uint32_t>(kDim) - 1, &rng), &rng);
    std::vector<uint32_t> want_idx(a.n());
    std::vector<double> want_val(a.n());
    const size_t want_n = simd::ScalarRemapSparseView(
        a.ip(), a.vp(), a.n(), remap.data(), remap.size(), want_idx.data(),
        want_val.data());
    SparseVector v;
    for (size_t i = 0; i < a.n(); ++i) v.PushBack(a.idx[i], a.val[i]);
    v.RemapThrough(remap.data(), remap.size());
    ASSERT_EQ(v.num_nonzero(), want_n);
    for (size_t i = 0; i < want_n; ++i) {
      ASSERT_EQ(v.indices()[i], want_idx[i]) << "slot " << i;
      ASSERT_EQ(Bits(v.values()[i]), Bits(want_val[i])) << "slot " << i;
    }
  }
}

// --- Seeded randomized differential fuzz ------------------------------------

TEST_F(SimdKernelsTest, DifferentialFuzzAcrossRegimes) {
  // (nnz_a, nnz_b, index range) regimes: tiny rows, tail remainders around
  // the 8/16-lane widths, unbalanced sides (one long AdvanceTo scan),
  // near-dense overlap, and sparse production-like rows.
  struct Regime {
    size_t na;
    size_t nb;
    uint32_t hi;
  };
  const Regime regimes[] = {
      {1, 1, 64},       {3, 5, 64},        {7, 9, 128},     {8, 8, 64},
      {15, 17, 256},    {16, 16, 128},     {31, 33, 512},   {100, 3, 4096},
      {3, 100, 4096},   {128, 128, 8192},  {128, 128, 256}, {500, 500, 600},
      {512, 64, 65536}, {64, 512, 65536},
  };
  Rng rng(20260808);
  for (const Regime& regime : regimes) {
    for (int rep = 0; rep < 12; ++rep) {
      const Row a =
          MakeRow(RandomIndices(regime.na, 0, regime.hi - 1, &rng), &rng);
      const Row b =
          MakeRow(RandomIndices(regime.nb, 0, regime.hi - 1, &rng), &rng);
      ForEachLevel(a, b,
                   StrFormat("fuzz na=%zu nb=%zu hi=%u rep=%d", regime.na,
                             regime.nb, regime.hi, rep));
    }
  }
}

// --- Dispatched wrappers ----------------------------------------------------

TEST_F(SimdKernelsTest, WrapperMatchesScalarKernelsAtActiveLevel) {
  // End-to-end through SparseVectorView::{Dot,AddScaledTo,SquaredDistance}
  // at whatever level this process resolved (native, or forced via
  // ZOMBIE_SIMD_LEVEL by the CI matrix): results must equal the scalar
  // kernels bit-for-bit, dispatch hop, small-n short-circuit, cutoff and
  // resize logic included.
  Rng rng(7);
  for (size_t nnz : {1u, 8u, 15u, 16u, 64u, 300u}) {
    const Row a = MakeRow(RandomIndices(nnz, 0, 2047, &rng), &rng);
    const Row b = MakeRow(RandomIndices(nnz, 0, 2047, &rng), &rng);
    const SparseVectorView va(a.ip(), a.vp(), a.n());
    const SparseVectorView vb(b.ip(), b.vp(), b.n());

    EXPECT_EQ(Bits(va.Dot(vb)),
              Bits(simd::ScalarDotSparseSparse(a.ip(), a.vp(), a.n(), b.ip(),
                                               b.vp(), b.n())));
    EXPECT_EQ(Bits(va.SquaredDistance(vb)),
              Bits(simd::ScalarSquaredDistance(a.ip(), a.vp(), a.n(), b.ip(),
                                               b.vp(), b.n())));

    std::vector<double> dense(1024);
    for (double& d : dense) d = rng.NextGaussian();
    // Wrapper clamps to indices < dense.size(); mirror it for the reference.
    const size_t limit = static_cast<size_t>(
        std::lower_bound(a.idx.begin(), a.idx.end(),
                         static_cast<uint32_t>(dense.size())) -
        a.idx.begin());
    EXPECT_EQ(Bits(va.Dot(dense)),
              Bits(simd::ScalarDotSparseDense(a.ip(), a.vp(), limit,
                                              dense.data())));

    std::vector<double> got(16, 1.0);
    std::vector<double> want(16, 1.0);
    va.AddScaledTo(0.5, &got);
    if (a.n() > 0) {
      want.resize(std::max<size_t>(want.size(),
                                   static_cast<size_t>(a.idx.back()) + 1),
                  0.0);
      simd::ScalarAddScaledTo(a.ip(), a.vp(), a.n(), 0.5, want.data());
    }
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(Bits(got[i]), Bits(want[i])) << "slot " << i;
    }
  }
}

}  // namespace
}  // namespace zombie
