#include "featureeng/extractors.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.h"

namespace zombie {
namespace {

Document Doc(std::vector<uint32_t> tokens, uint32_t domain = 0) {
  Document d;
  d.tokens = std::move(tokens);
  d.domain = domain;
  return d;
}

Corpus EmptyCorpus() { return Corpus(); }

TEST(BowExtractorTest, IndicesBoundedAndCountsPositive) {
  HashedBagOfWordsExtractor e(64, /*sublinear_tf=*/false);
  Corpus c = EmptyCorpus();
  TermCounts out;
  e.Extract(Doc({1, 2, 3, 1, 2, 1}), c, &out);
  double total = 0.0;
  for (const auto& [idx, v] : out) {
    EXPECT_LT(idx, 64u);
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(BowExtractorTest, SublinearTfDampens) {
  HashedBagOfWordsExtractor raw(1 << 16, /*sublinear_tf=*/false);
  HashedBagOfWordsExtractor sub(1 << 16, /*sublinear_tf=*/true);
  Corpus c = EmptyCorpus();
  TermCounts raw_out;
  TermCounts sub_out;
  raw.Extract(Doc({7, 7, 7, 7}), c, &raw_out);
  sub.Extract(Doc({7, 7, 7, 7}), c, &sub_out);
  ASSERT_EQ(raw_out.size(), 1u);
  ASSERT_EQ(sub_out.size(), 1u);
  EXPECT_DOUBLE_EQ(raw_out[0].second, 4.0);
  EXPECT_NEAR(sub_out[0].second, std::log(5.0), 1e-12);
}

TEST(BowExtractorTest, NameEncodesDimension) {
  EXPECT_EQ(HashedBagOfWordsExtractor(4096).name(), "bow4096");
}

TEST(BigramExtractorTest, EmitsAdjacentPairs) {
  HashedBigramExtractor e(1 << 16);
  Corpus c = EmptyCorpus();
  TermCounts out;
  e.Extract(Doc({1, 2, 3}), c, &out);
  EXPECT_EQ(out.size(), 2u);  // (1,2), (2,3)
  out.clear();
  e.Extract(Doc({1}), c, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(e.cost_factor(), 1.0);  // heavier than unigrams
}

TEST(BigramExtractorTest, OrderSensitive) {
  HashedBigramExtractor e(1 << 20);
  Corpus c = EmptyCorpus();
  TermCounts ab;
  TermCounts ba;
  e.Extract(Doc({1, 2}), c, &ab);
  e.Extract(Doc({2, 1}), c, &ba);
  ASSERT_EQ(ab.size(), 1u);
  ASSERT_EQ(ba.size(), 1u);
  EXPECT_NE(ab[0].first, ba[0].first);
}

TEST(KeywordExtractorTest, EmitsOnlyKeywordHits) {
  KeywordExtractor e({10, 20, 30});
  Corpus c = EmptyCorpus();
  TermCounts out;
  e.Extract(Doc({5, 20, 20, 30, 99}), c, &out);
  // Local indices are positions in the sorted keyword list.
  double hits_20 = 0.0;
  double hits_30 = 0.0;
  for (const auto& [idx, v] : out) {
    EXPECT_LT(idx, e.dimension());
    if (idx == 1) hits_20 += v;
    if (idx == 2) hits_30 += v;
  }
  EXPECT_DOUBLE_EQ(hits_20, 2.0);
  EXPECT_DOUBLE_EQ(hits_30, 1.0);
}

TEST(KeywordExtractorTest, DedupsKeywordList) {
  KeywordExtractor e({7, 7, 3});
  EXPECT_EQ(e.dimension(), 2u);
}

TEST(KeywordExtractorDeathTest, EmptyListAborts) {
  EXPECT_DEATH(KeywordExtractor(std::vector<uint32_t>{}), "non-empty");
}

TEST(DocLengthExtractorTest, BucketsMonotoneInLength) {
  DocLengthExtractor e(16);
  Corpus c = EmptyCorpus();
  auto bucket_of = [&](size_t len) {
    TermCounts out;
    e.Extract(Doc(std::vector<uint32_t>(len, 1)), c, &out);
    EXPECT_EQ(out.size(), 1u);
    return out[0].first;
  };
  EXPECT_LE(bucket_of(1), bucket_of(100));
  EXPECT_LE(bucket_of(100), bucket_of(10000));
  EXPECT_LT(bucket_of(100000), 16u);  // clamped to top bucket
}

TEST(DomainExtractorTest, SameDomainSameFeature) {
  DomainExtractor e(256);
  Corpus c = EmptyCorpus();
  TermCounts a;
  TermCounts b;
  TermCounts other;
  e.Extract(Doc({}, 7), c, &a);
  e.Extract(Doc({1, 2}, 7), c, &b);
  e.Extract(Doc({}, 8), c, &other);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].first, b[0].first);
  EXPECT_NE(a[0].first, other[0].first);
}

TEST(DiversityExtractorTest, DistinctRatioBuckets) {
  TokenDiversityExtractor e(10);
  Corpus c = EmptyCorpus();
  TermCounts uniform;
  TermCounts diverse;
  e.Extract(Doc({1, 1, 1, 1, 1, 1, 1, 1, 1, 1}), c, &uniform);
  e.Extract(Doc({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}), c, &diverse);
  ASSERT_EQ(uniform.size(), 1u);
  ASSERT_EQ(diverse.size(), 1u);
  EXPECT_LT(uniform[0].first, diverse[0].first);
  // Empty doc gets bucket 0 rather than crashing.
  TermCounts empty;
  e.Extract(Doc({}), c, &empty);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].first, 0u);
}

TEST(ExpensiveWrapperTest, MultipliesCostKeepsFeatures) {
  auto inner = std::make_unique<HashedBagOfWordsExtractor>(128);
  double inner_cost = inner->cost_factor();
  uint32_t inner_dim = inner->dimension();
  ExpensiveWrapperExtractor wrapped(std::move(inner), 3.0);
  EXPECT_DOUBLE_EQ(wrapped.cost_factor(), inner_cost * 3.0);
  EXPECT_EQ(wrapped.dimension(), inner_dim);
  Corpus c = EmptyCorpus();
  TermCounts out;
  wrapped.Extract(Doc({1, 2, 3}), c, &out);
  EXPECT_FALSE(out.empty());
  EXPECT_NE(wrapped.name().find("expensive"), std::string::npos);
}

}  // namespace
}  // namespace zombie
