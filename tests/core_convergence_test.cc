#include "core/convergence.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

ConvergenceOptions Opts(size_t window, double epsilon) {
  ConvergenceOptions o;
  o.window = window;
  o.epsilon = epsilon;
  return o;
}

TEST(ConvergenceTest, NeverConvergedBeforeWindowFills) {
  ConvergenceDetector d(Opts(4, 0.01));
  for (int i = 0; i < 3; ++i) {
    d.Add(0.5);
    EXPECT_FALSE(d.converged()) << "after " << i + 1;
  }
  d.Add(0.5);
  EXPECT_TRUE(d.converged());
}

TEST(ConvergenceTest, FlatCurveConverges) {
  ConvergenceDetector d(Opts(5, 0.001));
  for (int i = 0; i < 5; ++i) d.Add(0.7);
  EXPECT_TRUE(d.converged());
}

TEST(ConvergenceTest, RisingCurveDoesNot) {
  ConvergenceDetector d(Opts(5, 0.01));
  for (int i = 0; i < 20; ++i) {
    d.Add(0.05 * i);
    EXPECT_FALSE(d.converged()) << "step " << i;
  }
}

TEST(ConvergenceTest, SpreadWithinEpsilonConverges) {
  ConvergenceDetector d(Opts(3, 0.1));
  d.Add(0.50);
  d.Add(0.55);
  d.Add(0.59);
  EXPECT_TRUE(d.converged());
  // A jump re-opens the window.
  d.Add(0.80);
  EXPECT_FALSE(d.converged());
}

TEST(ConvergenceTest, OldValuesAgeOut) {
  ConvergenceDetector d(Opts(3, 0.01));
  d.Add(0.1);  // will age out
  d.Add(0.5);
  d.Add(0.5);
  EXPECT_FALSE(d.converged());
  d.Add(0.5);  // window now {0.5, 0.5, 0.5}
  EXPECT_TRUE(d.converged());
}

TEST(ConvergenceTest, ZeroEpsilonNeedsExactEquality) {
  ConvergenceDetector d(Opts(2, 0.0));
  d.Add(0.5);
  d.Add(0.5);
  EXPECT_TRUE(d.converged());
  d.Add(0.5000001);
  EXPECT_FALSE(d.converged());
}

TEST(ConvergenceTest, ResetClearsHistory) {
  ConvergenceDetector d(Opts(2, 0.1));
  d.Add(0.5);
  d.Add(0.5);
  EXPECT_TRUE(d.converged());
  d.Reset();
  EXPECT_FALSE(d.converged());
  EXPECT_EQ(d.num_observations(), 0u);
}

TEST(ConvergenceTest, CountsObservations) {
  ConvergenceDetector d;
  for (int i = 0; i < 7; ++i) d.Add(0.1);
  EXPECT_EQ(d.num_observations(), 7u);
}

TEST(ConvergenceDeathTest, WindowBelowTwoAborts) {
  EXPECT_DEATH(ConvergenceDetector(Opts(1, 0.01)), "Check failed");
}

}  // namespace
}  // namespace zombie
