#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

#include "ml/adagrad_lr.h"
#include "ml/dataset.h"
#include "ml/evaluator.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/majority.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/pegasos_svm.h"
#include "ml/perceptron.h"
#include "util/random.h"

namespace zombie {
namespace {

SparseVector V(std::vector<std::pair<uint32_t, double>> pairs) {
  return SparseVector::FromPairs(std::move(pairs));
}

// A linearly separable two-cluster dataset: positives light up features
// [0, 5), negatives [5, 10), with a little noise.
Dataset SeparableData(size_t n, Rng* rng) {
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    int32_t y = rng->NextBernoulli(0.5) ? 1 : 0;
    std::vector<std::pair<uint32_t, double>> pairs;
    uint32_t base = y == 1 ? 0 : 5;
    for (int k = 0; k < 3; ++k) {
      pairs.emplace_back(base + static_cast<uint32_t>(rng->NextBelow(5)),
                         1.0);
    }
    // Shared noise feature.
    pairs.emplace_back(10 + static_cast<uint32_t>(rng->NextBelow(3)), 1.0);
    data.Add(V(std::move(pairs)), y);
  }
  return data;
}

// Every learner under test, as fresh prototypes.
std::vector<std::unique_ptr<Learner>> AllLearners() {
  std::vector<std::unique_ptr<Learner>> out;
  out.push_back(std::make_unique<NaiveBayesLearner>());
  out.push_back(std::make_unique<LogisticRegressionLearner>());
  out.push_back(std::make_unique<AveragedPerceptronLearner>());
  out.push_back(std::make_unique<PegasosSvmLearner>());
  out.push_back(std::make_unique<KnnLearner>(3));
  out.push_back(std::make_unique<AdaGradLogisticLearner>());
  return out;
}

class EveryLearnerTest : public testing::TestWithParam<size_t> {
 protected:
  std::unique_ptr<Learner> MakeLearner() {
    return AllLearners()[GetParam()]->Clone();
  }
};

TEST_P(EveryLearnerTest, LearnsSeparableData) {
  Rng rng(42);
  Dataset train = SeparableData(300, &rng);
  Dataset test = SeparableData(100, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 3, &rng);
  BinaryMetrics m = EvaluateLearner(*learner, test);
  EXPECT_GT(m.accuracy, 0.9) << learner->name();
  EXPECT_GT(m.f1, 0.9) << learner->name();
}

TEST_P(EveryLearnerTest, ResetForgetsEverything) {
  Rng rng(43);
  Dataset train = SeparableData(100, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 1, &rng);
  learner->Reset();
  EXPECT_EQ(learner->num_updates(), 0u);
  SparseVector x = V({{0, 1.0}, {1, 1.0}});
  EXPECT_EQ(learner->Score(x), 0.0) << learner->name();
}

TEST_P(EveryLearnerTest, CloneIsFreshAndIndependent) {
  Rng rng(44);
  Dataset train = SeparableData(100, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 1, &rng);
  auto clone = learner->Clone();
  EXPECT_EQ(clone->num_updates(), 0u) << learner->name();
  EXPECT_EQ(clone->name(), learner->name());
}

TEST_P(EveryLearnerTest, ProbabilitiesInUnitInterval) {
  Rng rng(45);
  Dataset train = SeparableData(200, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 2, &rng);
  for (ExampleView e : train.examples()) {
    double p = learner->PredictProbability(e.x);
    EXPECT_GE(p, 0.0) << learner->name();
    EXPECT_LE(p, 1.0) << learner->name();
  }
}

TEST_P(EveryLearnerTest, PredictConsistentWithScore) {
  Rng rng(46);
  Dataset train = SeparableData(150, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 2, &rng);
  for (ExampleView e : train.examples()) {
    double s = learner->Score(e.x);
    EXPECT_EQ(learner->Predict(e.x), s > 0.0 ? 1 : 0) << learner->name();
  }
}

TEST_P(EveryLearnerTest, RejectsNonBinaryLabels) {
  auto learner = MakeLearner();
  SparseVector x = V({{0, 1.0}});
  EXPECT_DEATH(learner->Update(x, 2), "binary");
  EXPECT_DEATH(learner->Update(x, -1), "binary");
}

TEST_P(EveryLearnerTest, ExportWeightMagnitudesMatchesSupportContract) {
  Rng rng(47);
  Dataset train = SeparableData(200, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 2, &rng);
  std::vector<double> mags;
  const bool supported = learner->ExportWeightMagnitudes(&mags);
  // kNN has no per-feature weights; the pruner must see false and disable
  // itself. Every other learner under test exports magnitudes.
  EXPECT_EQ(supported, learner->name() != "knn") << learner->name();
  if (!supported) return;
  double max_mag = 0.0;
  for (double m : mags) {
    EXPECT_GE(m, 0.0) << learner->name();
    max_mag = std::max(max_mag, m);
  }
  EXPECT_GT(max_mag, 0.0)
      << "trained " << learner->name() << " exported all-zero magnitudes";
}

TEST_P(EveryLearnerTest, CompactFeaturesPreservesScoresBitExactly) {
  Rng rng(48);
  Dataset train = SeparableData(250, &rng);
  auto learner = MakeLearner();
  TrainEpochs(learner.get(), train, 2, &rng);

  // Monotone remap: drop 3, 7 and the noise block [10, 13) so kept dense
  // ids actually shift (not an identity prefix).
  const uint32_t kDim = 13;
  std::vector<uint32_t> old_to_new(kDim, simd::kPrunedFeature);
  uint32_t next = 0;
  for (uint32_t f = 0; f < 10; ++f) {
    if (f == 3 || f == 7) continue;
    old_to_new[f] = next++;
  }

  // The contract: post-compaction Score on the remapped vector is
  // bit-identical to pre-compaction Score on the original with pruned
  // features dropped. Capture the expected bits before mutating state.
  Dataset test = SeparableData(60, &rng);
  std::vector<SparseVector> filtered;
  std::vector<SparseVector> remapped;
  std::vector<uint64_t> want_bits;
  for (ExampleView e : test.examples()) {
    std::vector<std::pair<uint32_t, double>> keep;
    std::vector<std::pair<uint32_t, double>> dense;
    for (size_t i = 0; i < e.x.num_nonzero(); ++i) {
      const uint32_t f = e.x.index_at(i);
      if (f >= kDim || old_to_new[f] == simd::kPrunedFeature) continue;
      keep.emplace_back(f, e.x.value_at(i));
      dense.emplace_back(old_to_new[f], e.x.value_at(i));
    }
    filtered.push_back(V(std::move(keep)));
    remapped.push_back(V(std::move(dense)));
  }
  for (const SparseVector& x : filtered) {
    uint64_t bits = 0;
    const double s = learner->Score(x);
    std::memcpy(&bits, &s, sizeof(bits));
    want_bits.push_back(bits);
  }

  if (!learner->CompactFeatures(old_to_new, next)) {
    // Unsupported (kNN): state must be untouched — original scores stand.
    EXPECT_EQ(learner->name(), "knn");
    for (size_t i = 0; i < filtered.size(); ++i) {
      uint64_t bits = 0;
      const double s = learner->Score(filtered[i]);
      std::memcpy(&bits, &s, sizeof(bits));
      EXPECT_EQ(bits, want_bits[i]) << "example " << i;
    }
    return;
  }
  for (size_t i = 0; i < remapped.size(); ++i) {
    uint64_t bits = 0;
    const double s = learner->Score(remapped[i]);
    std::memcpy(&bits, &s, sizeof(bits));
    EXPECT_EQ(bits, want_bits[i])
        << learner->name() << " example " << i << ": compacted score "
        << s << " diverged";
  }
  // Training continues after compaction in the engine; a compacted-space
  // update must not fault or reject compacted ids.
  learner->Update(remapped[0], 1);
}

INSTANTIATE_TEST_SUITE_P(AllLearners, EveryLearnerTest,
                         testing::Values(0, 1, 2, 3, 4, 5));

// --- Learner-specific behaviors -------------------------------------------

TEST(NaiveBayesTest, PriorDominatesWithoutFeatures) {
  NaiveBayesLearner nb;
  SparseVector empty;
  for (int i = 0; i < 20; ++i) nb.Update(V({{0, 1.0}}), 1);
  EXPECT_GT(nb.Score(empty), 0.0);  // prior says positive
  for (int i = 0; i < 60; ++i) nb.Update(V({{1, 1.0}}), 0);
  EXPECT_LT(nb.Score(empty), 0.0);  // prior flipped
}

TEST(NaiveBayesTest, DiscriminativeTokenShiftsScore) {
  NaiveBayesLearner nb;
  for (int i = 0; i < 50; ++i) {
    nb.Update(V({{0, 1.0}}), 1);
    nb.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_GT(nb.Score(V({{0, 1.0}})), 0.0);
  EXPECT_LT(nb.Score(V({{1, 1.0}})), 0.0);
}

TEST(NaiveBayesTest, NegativeFeatureValuesIgnored) {
  NaiveBayesLearner nb;
  nb.Update(V({{0, -5.0}}), 1);
  nb.Update(V({{1, 1.0}}), 0);
  // Feature 0 contributed nothing, so scoring it reflects only priors and
  // smoothing, and must not produce NaN.
  double s = nb.Score(V({{0, 1.0}}));
  EXPECT_FALSE(std::isnan(s));
}

TEST(NaiveBayesTest, UntrainedScoreIsZero) {
  NaiveBayesLearner nb;
  EXPECT_EQ(nb.Score(V({{0, 1.0}})), 0.0);
  EXPECT_DOUBLE_EQ(nb.PredictProbability(V({{0, 1.0}})), 0.5);
}

TEST(LogisticRegressionTest, ProbabilityCalibrationDirection) {
  LogisticRegressionLearner lr;
  for (int i = 0; i < 200; ++i) {
    lr.Update(V({{0, 1.0}}), 1);
    lr.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_GT(lr.PredictProbability(V({{0, 1.0}})), 0.8);
  EXPECT_LT(lr.PredictProbability(V({{1, 1.0}})), 0.2);
}

TEST(LogisticRegressionTest, WeightAccessors) {
  LogisticRegressionLearner lr;
  EXPECT_EQ(lr.WeightAt(0), 0.0);
  for (int i = 0; i < 50; ++i) {
    lr.Update(V({{0, 1.0}}), 1);
    lr.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_GT(lr.WeightAt(0), 0.0);
  EXPECT_LT(lr.WeightAt(1), 0.0);
  EXPECT_EQ(lr.WeightAt(999), 0.0);
}

TEST(LogisticRegressionTest, RegularizationShrinksWeights) {
  LogisticRegressionOptions strong;
  strong.lambda = 0.5;
  LogisticRegressionOptions weak;
  weak.lambda = 1e-6;
  LogisticRegressionLearner lr_strong(strong);
  LogisticRegressionLearner lr_weak(weak);
  for (int i = 0; i < 300; ++i) {
    lr_strong.Update(V({{0, 1.0}}), 1);
    lr_strong.Update(V({{1, 1.0}}), 0);
    lr_weak.Update(V({{0, 1.0}}), 1);
    lr_weak.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_LT(std::abs(lr_strong.WeightAt(0)), std::abs(lr_weak.WeightAt(0)));
}

TEST(PerceptronTest, NoUpdateWhenCorrect) {
  AveragedPerceptronLearner p;
  p.Update(V({{0, 1.0}}), 1);  // first example always a "mistake" (margin 0)
  size_t mistakes = p.num_mistakes();
  // Now that it classifies feature 0 as positive, repeats are correct.
  p.Update(V({{0, 1.0}}), 1);
  p.Update(V({{0, 1.0}}), 1);
  EXPECT_EQ(p.num_mistakes(), mistakes);
  EXPECT_EQ(p.num_updates(), 3u);
}

TEST(PerceptronTest, AveragingSmoothsLateMistakes) {
  AveragedPerceptronLearner p;
  for (int i = 0; i < 100; ++i) {
    p.Update(V({{0, 1.0}}), 1);
    p.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_GT(p.Score(V({{0, 1.0}})), 0.0);
  EXPECT_LT(p.Score(V({{1, 1.0}})), 0.0);
}

TEST(PegasosTest, MarginGrowsWithTraining) {
  PegasosSvmLearner svm;
  for (int i = 0; i < 500; ++i) {
    svm.Update(V({{0, 1.0}}), 1);
    svm.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_GT(svm.Score(V({{0, 1.0}})), 0.0);
  EXPECT_LT(svm.Score(V({{1, 1.0}})), 0.0);
}

TEST(AdaGradTest, LearnsDirectionLikeLogReg) {
  AdaGradLogisticLearner lr;
  for (int i = 0; i < 100; ++i) {
    lr.Update(V({{0, 1.0}}), 1);
    lr.Update(V({{1, 1.0}}), 0);
  }
  EXPECT_GT(lr.WeightAt(0), 0.0);
  EXPECT_LT(lr.WeightAt(1), 0.0);
  EXPECT_GT(lr.PredictProbability(V({{0, 1.0}})), 0.8);
  EXPECT_LT(lr.PredictProbability(V({{1, 1.0}})), 0.2);
}

TEST(AdaGradTest, RareFeatureKeepsLargeSteps) {
  // A feature seen once moves as far as its first step allows; a feature
  // hammered 100 times anneals. Verify the rare feature's weight after one
  // update exceeds the frequent feature's per-update movement at the end.
  AdaGradLogisticLearner lr;
  for (int i = 0; i < 100; ++i) lr.Update(V({{0, 1.0}}), 1);
  double frequent_before = lr.WeightAt(0);
  lr.Update(V({{0, 1.0}}), 1);
  double frequent_step = lr.WeightAt(0) - frequent_before;
  lr.Update(V({{5, 1.0}}), 1);  // first sighting of feature 5
  double rare_step = lr.WeightAt(5);
  EXPECT_GT(rare_step, frequent_step);
}

TEST(AdaGradTest, WeightAtOutOfRangeIsZero) {
  AdaGradLogisticLearner lr;
  EXPECT_EQ(lr.WeightAt(1234), 0.0);
}

TEST(KnnTest, UsesNearestNeighbors) {
  KnnLearner knn(3);
  knn.Update(V({{0, 1.0}}), 1);
  knn.Update(V({{0, 1.0}, {1, 0.1}}), 1);
  knn.Update(V({{5, 1.0}}), 0);
  knn.Update(V({{5, 1.0}, {6, 0.1}}), 0);
  EXPECT_GT(knn.Score(V({{0, 1.0}, {1, 0.05}})), 0.0);
  EXPECT_LT(knn.Score(V({{5, 1.0}})), 0.0);
}

TEST(KnnTest, EmptyMemoryScoresZero) {
  KnnLearner knn(5);
  EXPECT_EQ(knn.Score(V({{0, 1.0}})), 0.0);
}

TEST(MajorityTest, TracksSeenBalance) {
  MajorityClassLearner m;
  SparseVector x;
  EXPECT_EQ(m.Score(x), 0.0);
  m.Update(x, 1);
  EXPECT_GT(m.Score(x), 0.0);
  m.Update(x, 0);
  m.Update(x, 0);
  EXPECT_LT(m.Score(x), 0.0);
}

}  // namespace
}  // namespace zombie
