#include "ml/metrics.h"

#include <gtest/gtest.h>

#include "ml/majority.h"

namespace zombie {
namespace {

TEST(ConfusionTest, AddRoutesCells) {
  Confusion c;
  c.Add(1, 1);  // tp
  c.Add(1, 0);  // fn
  c.Add(0, 1);  // fp
  c.Add(0, 0);  // tn
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 4);
}

TEST(MetricsTest, KnownValues) {
  Confusion c;
  c.tp = 8;
  c.fp = 2;
  c.fn = 4;
  c.tn = 6;
  EXPECT_DOUBLE_EQ(Accuracy(c), 0.7);
  EXPECT_DOUBLE_EQ(Precision(c), 0.8);
  EXPECT_NEAR(Recall(c), 8.0 / 12.0, 1e-12);
  double p = 0.8;
  double r = 8.0 / 12.0;
  EXPECT_NEAR(F1(c), 2 * p * r / (p + r), 1e-12);
}

TEST(MetricsTest, DegenerateDenominatorsAreZeroNotNan) {
  Confusion c;  // empty
  EXPECT_EQ(Accuracy(c), 0.0);
  EXPECT_EQ(Precision(c), 0.0);
  EXPECT_EQ(Recall(c), 0.0);
  EXPECT_EQ(F1(c), 0.0);
  c.tn = 10;  // no positives anywhere
  EXPECT_EQ(Precision(c), 0.0);
  EXPECT_EQ(Recall(c), 0.0);
  EXPECT_EQ(F1(c), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy(c), 1.0);
}

TEST(MetricsTest, PerfectClassifier) {
  Confusion c;
  c.tp = 5;
  c.tn = 5;
  EXPECT_DOUBLE_EQ(F1(c), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(c), 1.0);
}

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(
      AucFromScores({-2.0, -1.0, 1.0, 2.0}, {0, 0, 1, 1}), 1.0);
}

TEST(AucTest, PerfectInversion) {
  EXPECT_DOUBLE_EQ(
      AucFromScores({2.0, 1.0, -1.0, -2.0}, {0, 0, 1, 1}), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(AucFromScores({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(AucTest, SingleClassIsZero) {
  EXPECT_EQ(AucFromScores({1.0, 2.0}, {1, 1}), 0.0);
  EXPECT_EQ(AucFromScores({1.0, 2.0}, {0, 0}), 0.0);
  EXPECT_EQ(AucFromScores({}, {}), 0.0);
}

TEST(AucTest, PartialOrderKnownValue) {
  // scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0) -> 3/4.
  EXPECT_DOUBLE_EQ(AucFromScores({3.0, 1.0, 2.0, 0.0}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, MidrankHandlesMixedTies) {
  // pos {1}, neg {1}: tie -> 0.5 credit.
  EXPECT_DOUBLE_EQ(AucFromScores({1.0, 1.0}, {1, 0}), 0.5);
}

TEST(QualityMetricTest, SelectorAndNames) {
  BinaryMetrics m;
  m.f1 = 0.1;
  m.accuracy = 0.2;
  m.auc = 0.3;
  EXPECT_DOUBLE_EQ(QualityOf(m, QualityMetric::kF1), 0.1);
  EXPECT_DOUBLE_EQ(QualityOf(m, QualityMetric::kAccuracy), 0.2);
  EXPECT_DOUBLE_EQ(QualityOf(m, QualityMetric::kAuc), 0.3);
  EXPECT_STREQ(QualityMetricName(QualityMetric::kF1), "f1");
  EXPECT_STREQ(QualityMetricName(QualityMetric::kAccuracy), "accuracy");
  EXPECT_STREQ(QualityMetricName(QualityMetric::kAuc), "auc");
}

TEST(EvaluateLearnerTest, UntrainedModelPredictsNegative) {
  // Untrained learners score 0; ties classify negative, so recall is 0,
  // not 1 (see learner.h).
  MajorityClassLearner learner;
  Dataset data;
  data.Add(SparseVector::FromPairs({{0, 1.0}}), 1);
  data.Add(SparseVector::FromPairs({{1, 1.0}}), 0);
  BinaryMetrics m = EvaluateLearner(learner, data);
  EXPECT_EQ(m.confusion.tp, 0);
  EXPECT_EQ(m.confusion.fn, 1);
  EXPECT_EQ(m.confusion.tn, 1);
  EXPECT_EQ(m.f1, 0.0);
}

TEST(EvaluateLearnerTest, MajorityLearnerScoresBySeenBalance) {
  MajorityClassLearner learner;
  SparseVector x = SparseVector::FromPairs({{0, 1.0}});
  for (int i = 0; i < 9; ++i) learner.Update(x, 1);
  learner.Update(x, 0);
  Dataset data;
  data.Add(x, 1);
  data.Add(x, 0);
  BinaryMetrics m = EvaluateLearner(learner, data);
  // Majority class is positive: predicts 1 everywhere.
  EXPECT_EQ(m.confusion.tp, 1);
  EXPECT_EQ(m.confusion.fp, 1);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

// A learner whose score is fixed per example index via a lookup; used to
// test threshold tuning with hand-picked score layouts.
class FixedScoreLearner : public Learner {
 public:
  explicit FixedScoreLearner(std::vector<double> scores)
      : scores_(std::move(scores)) {}

  void Update(SparseVectorView, int32_t) override {}
  double Score(SparseVectorView x) const override {
    // Feature index 0 carries the example id.
    return scores_[static_cast<size_t>(x.value_at(0))];
  }
  void Reset() override {}
  std::unique_ptr<Learner> Clone() const override {
    return std::make_unique<FixedScoreLearner>(scores_);
  }
  std::string name() const override { return "fixed"; }
  size_t num_updates() const override { return 0; }

 private:
  std::vector<double> scores_;
};

Dataset IndexedDataset(const std::vector<int32_t>& labels) {
  Dataset d;
  for (size_t i = 0; i < labels.size(); ++i) {
    d.Add(SparseVector::FromPairs({{0, static_cast<double>(i)}}), labels[i]);
  }
  return d;
}

TEST(TunedEvaluationTest, FindsBetterThresholdThanZero) {
  // Scores are well-ordered but all shifted negative: at threshold 0 the
  // classifier predicts all-negative (F1 = 0); the tuned threshold
  // separates perfectly.
  FixedScoreLearner learner({-4.0, -3.0, -2.0, -1.0});
  Dataset data = IndexedDataset({0, 0, 1, 1});
  BinaryMetrics zero = EvaluateLearner(learner, data);
  EXPECT_EQ(zero.f1, 0.0);
  double tau = 0.0;
  BinaryMetrics tuned = EvaluateLearnerTuned(learner, data, &tau);
  EXPECT_DOUBLE_EQ(tuned.f1, 1.0);
  EXPECT_GT(tau, -3.0);
  EXPECT_LT(tau, -2.0);
}

TEST(TunedEvaluationTest, ImperfectOrderingPicksBestSplit) {
  // labels by descending score: 1, 0, 1, 0. Best F1 split takes top 3:
  // tp=2 fp=1 fn=0 -> p=2/3 r=1 -> f1=0.8.
  FixedScoreLearner learner({4.0, 3.0, 2.0, 1.0});
  Dataset data = IndexedDataset({1, 0, 1, 0});
  BinaryMetrics tuned = EvaluateLearnerTuned(learner, data);
  EXPECT_NEAR(tuned.f1, 0.8, 1e-12);
}

TEST(TunedEvaluationTest, AllNegativeDataStaysZero) {
  FixedScoreLearner learner({1.0, 2.0});
  Dataset data = IndexedDataset({0, 0});
  BinaryMetrics tuned = EvaluateLearnerTuned(learner, data);
  EXPECT_EQ(tuned.f1, 0.0);
  EXPECT_EQ(tuned.confusion.fp, 0);  // all-negative classifier chosen
}

TEST(TunedEvaluationTest, TiedScoresNotSplit) {
  // Two examples share a score but have different labels; the threshold
  // cannot separate them, so perfect F1 is unattainable.
  FixedScoreLearner learner({1.0, 1.0, 0.0});
  Dataset data = IndexedDataset({1, 0, 0});
  BinaryMetrics tuned = EvaluateLearnerTuned(learner, data);
  EXPECT_LT(tuned.f1, 1.0);
  EXPECT_GT(tuned.f1, 0.0);
}

TEST(TunedEvaluationTest, TunedNeverWorseThanZeroThreshold) {
  FixedScoreLearner learner({-1.0, 0.5, 2.0, -0.3, 1.5});
  Dataset data = IndexedDataset({0, 1, 1, 0, 1});
  BinaryMetrics zero = EvaluateLearner(learner, data);
  BinaryMetrics tuned = EvaluateLearnerTuned(learner, data);
  EXPECT_GE(tuned.f1, zero.f1);
  // AUC is threshold-free and must be identical.
  EXPECT_DOUBLE_EQ(tuned.auc, zero.auc);
}

TEST(BinaryMetricsTest, ToStringContainsFields) {
  BinaryMetrics m;
  m.accuracy = 0.5;
  std::string s = m.ToString();
  EXPECT_NE(s.find("acc=0.500"), std::string::npos);
  EXPECT_NE(s.find("f1="), std::string::npos);
}

}  // namespace
}  // namespace zombie
