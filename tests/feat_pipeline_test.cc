#include "featureeng/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/corpus.h"
#include "featureeng/extractors.h"

namespace zombie {
namespace {

Document Doc(std::vector<uint32_t> tokens, int64_t cost_micros = 1000) {
  Document d;
  d.tokens = std::move(tokens);
  d.extraction_cost_micros = cost_micros;
  return d;
}

TEST(PipelineTest, NamespacesExtractorIndices) {
  FeaturePipeline p("test");
  p.Add(std::make_unique<DocLengthExtractor>(16));   // dims [0, 16)
  p.Add(std::make_unique<DomainExtractor>(256));     // dims [16, 272)
  p.set_l2_normalize(false);
  Corpus c;
  SparseVector v = p.Extract(Doc({1, 2, 3}), c);
  ASSERT_EQ(v.num_nonzero(), 2u);
  EXPECT_LT(v.index_at(0), 16u);
  EXPECT_GE(v.index_at(1), 16u);
  EXPECT_LT(v.index_at(1), 272u);
  EXPECT_EQ(p.dimension(), 272u);
}

TEST(PipelineTest, EmptyPipelineYieldsEmptyVector) {
  FeaturePipeline p("empty");
  Corpus c;
  EXPECT_TRUE(p.Extract(Doc({1}), c).empty());
  EXPECT_EQ(p.dimension(), 0u);
  EXPECT_DOUBLE_EQ(p.total_cost_factor(), 0.0);
  EXPECT_EQ(p.Description(), "(empty)");
}

TEST(PipelineTest, L2NormalizationUnitNorm) {
  FeaturePipeline p("norm");
  p.Add(std::make_unique<HashedBagOfWordsExtractor>(1024));
  Corpus c;
  SparseVector v = p.Extract(Doc({1, 2, 3, 4, 5}), c);
  EXPECT_NEAR(v.L2Norm(), 1.0, 1e-12);
  p.set_l2_normalize(false);
  SparseVector raw = p.Extract(Doc({1, 2, 3, 4, 5}), c);
  EXPECT_GT(raw.L2Norm(), 1.0);
}

TEST(PipelineTest, CostFactorSumsExtractors) {
  FeaturePipeline p("cost");
  p.Add(std::make_unique<HashedBagOfWordsExtractor>(64));   // 1.0
  p.Add(std::make_unique<HashedBigramExtractor>(64));       // 1.5
  p.Add(std::make_unique<DocLengthExtractor>());            // 0.05
  EXPECT_NEAR(p.total_cost_factor(), 2.55, 1e-12);
  EXPECT_EQ(p.ExtractionCostMicros(Doc({1, 2}, 1000)), 2550);
}

TEST(PipelineTest, DescriptionJoinsNames) {
  FeaturePipeline p("desc");
  p.Add(std::make_unique<HashedBagOfWordsExtractor>(256));
  p.Add(std::make_unique<DocLengthExtractor>());
  EXPECT_EQ(p.Description(), "bow256 + doclen");
  EXPECT_EQ(p.name(), "desc");
}

TEST(PipelineTest, ExtractorAccessor) {
  FeaturePipeline p("acc");
  p.Add(std::make_unique<DocLengthExtractor>());
  EXPECT_EQ(p.num_extractors(), 1u);
  EXPECT_EQ(p.extractor(0).name(), "doclen");
}

TEST(PipelineTest, DeterministicExtraction) {
  FeaturePipeline p("det");
  p.Add(std::make_unique<HashedBagOfWordsExtractor>(512));
  p.Add(std::make_unique<HashedBigramExtractor>(512));
  Corpus c;
  Document d = Doc({9, 8, 7, 6, 5});
  EXPECT_EQ(p.Extract(d, c), p.Extract(d, c));
}

}  // namespace
}  // namespace zombie
