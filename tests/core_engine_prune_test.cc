// Online feature pruning engine contract (ml/feature_pruner.h + engine.cc):
//  - pruning disabled (the default) is a perfect no-op — RunResult
//    fingerprint and DecisionLog JSONL byte-identical to the no-pruner
//    engine, no prune records, no prune metrics;
//  - pruning enabled derives the mask from virtual-time-visible state only,
//    so the run is byte-identical across cache on/off and holdout-eval
//    thread counts (wall-clock-only knobs);
//  - the freeze lands exactly once, at a holdout-eval boundary at or after
//    freeze_after_items, and is recorded consistently in the DecisionLog,
//    the prune.* metrics, and the engine's actual dimension compaction;
//  - a learner with no per-feature weights (kNN) disables the pruner into
//    a byte-identical no-op rather than guessing.

#include <cstdint>
#include <string>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "featureeng/feature_cache.h"
#include "gtest/gtest.h"
#include "index/kmeans_grouper.h"
#include "ml/feature_pruner.h"
#include "ml/knn.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace {

/// Every deterministic RunResult field; wall_micros deliberately excluded.
std::string Fingerprint(const RunResult& r) {
  std::string s = StrFormat(
      "items=%zu loop=%lld holdout=%lld q=%.17g stop=%s pos=%zu\n",
      r.items_processed, static_cast<long long>(r.loop_virtual_micros),
      static_cast<long long>(r.holdout_virtual_micros), r.final_quality,
      StopReasonName(r.stop_reason), r.positives_processed);
  for (const ArmSummary& a : r.arms) {
    s += StrFormat("arm %zu %zu %.17g %zu\n", a.group_size, a.pulls,
                   a.total_reward, a.positives_seen);
  }
  s += r.curve.ToCsv();
  return s;
}

class EnginePruneTest : public ::testing::Test {
 protected:
  EnginePruneTest()
      : task_(MakeTask(TaskKind::kWebCat, 900, 42)),
        grouper_(6, 7),
        grouping_(grouper_.Group(task_.corpus)) {}

  struct Outcome {
    std::string fingerprint;
    std::string decisions_jsonl;
    uint64_t freezes = 0;
    uint64_t frozen_at_items = 0;
    uint64_t input_dimension = 0;
    uint64_t kept_features = 0;
    uint64_t pruned_features = 0;
  };

  Outcome RunWith(const FeaturePrunerOptions* pruning_override,
                  const Learner& learner, bool use_cache = true,
                  size_t eval_threads = 1) {
    // Fresh cache per run: every configuration starts cold, so only the
    // pruning itself differs between runs.
    FeatureCache cache;
    EngineOptions opts;
    opts.seed = 3;
    opts.holdout_size = 150;
    opts.eval_every = 10;
    opts.stop.max_items = 200;
    opts.feature_cache = use_cache ? &cache : nullptr;
    opts.holdout_eval_threads = eval_threads;
    ObsContext obs;
    opts.obs = &obs;

    EpsilonGreedyPolicy policy;
    LabelReward reward;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    RunSpec spec(grouping_, policy, learner, reward);
    spec.pruning_override = pruning_override;
    RunResult r = engine.Run(spec);

    Outcome out;
    out.fingerprint = Fingerprint(r);
    out.decisions_jsonl = obs.decisions()->ToJsonl();
    out.freezes =
        static_cast<uint64_t>(obs.metrics()->GetCounter("prune.freezes")
                                  ->value());
    out.frozen_at_items = static_cast<uint64_t>(
        obs.metrics()->GetGauge("prune.frozen_at_items")->value());
    out.input_dimension = static_cast<uint64_t>(
        obs.metrics()->GetGauge("prune.input_dimension")->value());
    out.kept_features = static_cast<uint64_t>(
        obs.metrics()->GetGauge("prune.kept_features")->value());
    out.pruned_features = static_cast<uint64_t>(
        obs.metrics()->GetGauge("prune.pruned_features")->value());
    return out;
  }

  Task task_;
  KMeansGrouper grouper_;
  GroupingResult grouping_;
};

TEST_F(EnginePruneTest, DisabledPruningIsByteIdenticalNoOp) {
  NaiveBayesLearner nb;
  Outcome off = RunWith(nullptr, nb);
  EXPECT_EQ(off.freezes, 0u);
  EXPECT_EQ(off.decisions_jsonl.find("\"kind\": \"prune\""),
            std::string::npos);

  // An explicitly disabled preset and default-constructed options must both
  // be perfect no-ops, not merely near misses.
  FeaturePrunerOptions disabled = ConservativePruning();
  disabled.enabled = false;
  FeaturePrunerOptions defaults;
  for (const FeaturePrunerOptions* o : {&disabled, &defaults}) {
    Outcome run = RunWith(o, nb);
    EXPECT_EQ(run.fingerprint, off.fingerprint);
    EXPECT_EQ(run.decisions_jsonl, off.decisions_jsonl);
    EXPECT_EQ(run.freezes, 0u);
  }
}

TEST_F(EnginePruneTest, PrunedRunByteIdenticalAcrossWallClockKnobs) {
  NaiveBayesLearner nb;
  const FeaturePrunerOptions conservative = ConservativePruning();
  Outcome base = RunWith(&conservative, nb, /*use_cache=*/true,
                         /*eval_threads=*/1);
  // Non-vacuity: the mask really froze and really pruned.
  ASSERT_EQ(base.freezes, 1u);
  EXPECT_GT(base.pruned_features, 0u);
  EXPECT_EQ(base.kept_features + base.pruned_features, base.input_dimension);
  EXPECT_NE(base.decisions_jsonl.find("\"kind\": \"prune\""),
            std::string::npos);

  struct Knob {
    const char* name;
    bool use_cache;
    size_t eval_threads;
  };
  for (const Knob& k : {Knob{"no cache", false, 1}, Knob{"4 eval threads",
                                                         true, 4},
                        Knob{"no cache + threads", false, 4}}) {
    Outcome run = RunWith(&conservative, nb, k.use_cache, k.eval_threads);
    EXPECT_EQ(run.fingerprint, base.fingerprint) << k.name;
    // Decision records carry a "cache" outcome field that legitimately
    // differs with the cache off (same as prune-off runs), so byte-equality
    // of the JSONL is only asserted between cache-mode-matched runs.
    if (k.use_cache) {
      EXPECT_EQ(run.decisions_jsonl, base.decisions_jsonl) << k.name;
    }
  }

  // The engine-level default (EngineOptions::pruning) and the RunSpec
  // override are the same code path.
  {
    FeatureCache cache;
    EngineOptions opts;
    opts.seed = 3;
    opts.holdout_size = 150;
    opts.eval_every = 10;
    opts.stop.max_items = 200;
    opts.feature_cache = &cache;
    opts.pruning = conservative;
    ObsContext obs;
    opts.obs = &obs;
    EpsilonGreedyPolicy policy;
    LabelReward reward;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    RunSpec spec(grouping_, policy, nb, reward);
    EXPECT_EQ(Fingerprint(engine.Run(spec)), base.fingerprint);
  }
}

TEST_F(EnginePruneTest, FreezeLandsAtHoldoutBoundaryAndIsRecorded) {
  NaiveBayesLearner nb;
  const FeaturePrunerOptions conservative = ConservativePruning();
  Outcome run = RunWith(&conservative, nb);
  ASSERT_EQ(run.freezes, 1u);
  // eval_every=10 and freeze_after_items=100: the first boundary at or
  // after the warmup is exactly item 100.
  EXPECT_EQ(run.frozen_at_items, 100u);
  EXPECT_EQ(run.frozen_at_items % 10, 0u) << "freeze off an eval boundary";

  // The DecisionLog prune record carries the same facts the metrics do.
  const std::string line = StrFormat(
      "\"kind\": \"prune\", \"items\": %llu",
      static_cast<unsigned long long>(run.frozen_at_items));
  EXPECT_NE(run.decisions_jsonl.find(line), std::string::npos)
      << run.decisions_jsonl;
  for (const std::string& field :
       {StrFormat("\"input_dim\": %llu",
                  static_cast<unsigned long long>(run.input_dimension)),
        StrFormat("\"kept\": %llu",
                  static_cast<unsigned long long>(run.kept_features)),
        StrFormat("\"pruned\": %llu",
                  static_cast<unsigned long long>(run.pruned_features))}) {
    EXPECT_NE(run.decisions_jsonl.find(field), std::string::npos) << field;
  }
}

TEST_F(EnginePruneTest, AggressivePrunesMoreThanConservative) {
  NaiveBayesLearner nb;
  const FeaturePrunerOptions conservative = ConservativePruning();
  const FeaturePrunerOptions aggressive = AggressivePruning();
  Outcome cons = RunWith(&conservative, nb);
  Outcome aggr = RunWith(&aggressive, nb);
  ASSERT_EQ(cons.freezes, 1u);
  ASSERT_EQ(aggr.freezes, 1u);
  EXPECT_LT(aggr.kept_features, cons.kept_features);
  EXPECT_NE(aggr.fingerprint, cons.fingerprint)
      << "presets with different masks cannot produce identical runs";
}

TEST_F(EnginePruneTest, LearnerWithoutWeightsDisablesPruningAsNoOp) {
  KnnLearner knn(3);
  Outcome off = RunWith(nullptr, knn);
  const FeaturePrunerOptions conservative = ConservativePruning();
  Outcome on = RunWith(&conservative, knn);
  // kNN exports no per-feature weights: the pruner disables itself and the
  // run must be byte-identical to never having constructed it.
  EXPECT_EQ(on.freezes, 0u);
  EXPECT_EQ(on.fingerprint, off.fingerprint);
  EXPECT_EQ(on.decisions_jsonl, off.decisions_jsonl);
}

}  // namespace
}  // namespace zombie
