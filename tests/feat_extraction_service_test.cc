// ExtractionService unit tests: the facade must behave exactly like the
// hand-inlined (lookup -> extract -> insert) sequence it replaced — same
// vectors, same CacheOutcome stream — and speculation must be bounded,
// cancellable, and invisible in that stream (the first touch of a
// prefetched entry reports kMiss, exactly as if prefetch were off).

#include "featureeng/extraction_service.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/task_factory.h"
#include "featureeng/feature_cache.h"
#include "ml/feature_pruner.h"
#include "ml/naive_bayes.h"
#include "obs/metrics.h"

namespace zombie {
namespace {

class ExtractionServiceTest : public ::testing::Test {
 protected:
  ExtractionServiceTest() : task_(MakeTask(TaskKind::kWebCat, 200, 42)) {}

  std::vector<uint32_t> AllDocIds() const {
    std::vector<uint32_t> ids(task_.corpus.size());
    std::iota(ids.begin(), ids.end(), 0u);
    return ids;
  }

  Task task_;
};

TEST_F(ExtractionServiceTest, NoCacheFeaturizeMatchesRawExtract) {
  ExtractionService service(&task_.pipeline);
  EXPECT_FALSE(service.prefetch_enabled());
  for (uint32_t id = 0; id < 10; ++id) {
    CacheOutcome outcome = CacheOutcome::kHit;
    SparseVector got =
        service.Featurize(task_.corpus.doc(id), id, task_.corpus, &outcome);
    EXPECT_EQ(outcome, CacheOutcome::kDisabled);
    EXPECT_EQ(got, task_.pipeline.Extract(task_.corpus.doc(id), task_.corpus));
  }
  // No cache -> nowhere to put speculative results -> enqueue is a no-op.
  EXPECT_EQ(service.EnqueuePrefetch(task_.corpus, AllDocIds()), 0u);
}

TEST_F(ExtractionServiceTest, PrefetchThreadsWithoutCacheStayDisabled) {
  PrefetchOptions prefetch;
  prefetch.threads = 4;
  ExtractionService service(&task_.pipeline, nullptr, prefetch);
  EXPECT_FALSE(service.prefetch_enabled());
  EXPECT_EQ(service.EnqueuePrefetch(task_.corpus, AllDocIds()), 0u);
}

TEST_F(ExtractionServiceTest, CacheMemoizesAndReportsOutcomes) {
  FeatureCache cache;
  ExtractionService service(&task_.pipeline, &cache);
  const Document& doc = task_.corpus.doc(3);
  SparseVector raw = task_.pipeline.Extract(doc, task_.corpus);

  CacheOutcome outcome = CacheOutcome::kDisabled;
  EXPECT_EQ(service.Featurize(doc, 3, task_.corpus, &outcome), raw);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_EQ(service.Featurize(doc, 3, task_.corpus, &outcome), raw);
  EXPECT_EQ(outcome, CacheOutcome::kHit);

  EXPECT_EQ(service.ExtractionCostMicros(doc),
            task_.pipeline.ExtractionCostMicros(doc));
  EXPECT_EQ(service.pipeline_fingerprint(), task_.pipeline.Fingerprint());
}

TEST_F(ExtractionServiceTest, PrefetchedEntryPromotesAsMissThenHits) {
  FeatureCache cache;
  PrefetchOptions prefetch;
  prefetch.threads = 2;
  ExtractionService service(&task_.pipeline, &cache, prefetch);
  ASSERT_TRUE(service.prefetch_enabled());

  EXPECT_EQ(service.EnqueuePrefetch(task_.corpus, {5, 6}), 2u);
  service.DrainPrefetch();
  PrefetchStats stats = service.prefetch_stats();
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.issued, 2u);
  EXPECT_EQ(stats.useful, 0u);
  EXPECT_EQ(stats.wasted(), 2u);
  EXPECT_TRUE(cache.Contains(task_.pipeline.Fingerprint(), 5));

  // First touch: as-if-no-prefetch accounting reports a miss (and marks the
  // speculation useful), but the vector comes from the cache.
  CacheOutcome outcome = CacheOutcome::kDisabled;
  SparseVector got =
      service.Featurize(task_.corpus.doc(5), 5, task_.corpus, &outcome);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_EQ(got, task_.pipeline.Extract(task_.corpus.doc(5), task_.corpus));
  stats = service.prefetch_stats();
  EXPECT_EQ(stats.useful, 1u);
  EXPECT_EQ(stats.wasted(), 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);

  // Second touch is an ordinary hit, matching the prefetch-off world where
  // the first (miss) touch would have inserted the entry.
  EXPECT_EQ(service.Featurize(task_.corpus.doc(5), 5, task_.corpus, &outcome),
            got);
  EXPECT_EQ(outcome, CacheOutcome::kHit);
  EXPECT_EQ(service.prefetch_stats().useful, 1u);

  // The cache's own hit/miss counters match the prefetch-off sequence:
  // two lookups of doc 5 = one miss, one hit (doc 6 untouched).
  FeatureCacheStats cache_stats = cache.Stats();
  EXPECT_EQ(cache_stats.misses, 1u);
  EXPECT_EQ(cache_stats.hits, 1u);
}

TEST_F(ExtractionServiceTest, EnqueueSkipsAlreadyCachedDocs) {
  FeatureCache cache;
  PrefetchOptions prefetch;
  prefetch.threads = 1;
  ExtractionService service(&task_.pipeline, &cache, prefetch);

  (void)service.Featurize(task_.corpus.doc(7), 7, task_.corpus);
  EXPECT_EQ(service.EnqueuePrefetch(task_.corpus, {7}), 0u);
  PrefetchStats stats = service.prefetch_stats();
  EXPECT_EQ(stats.enqueued, 0u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST_F(ExtractionServiceTest, EveryCandidateIsEnqueuedOrSkipped) {
  FeatureCache cache;
  PrefetchOptions prefetch;
  prefetch.threads = 2;
  prefetch.queue_cap = 4;  // small cap: most of the batch must be dropped
  ExtractionService service(&task_.pipeline, &cache, prefetch);

  std::vector<uint32_t> ids = AllDocIds();
  size_t submitted = service.EnqueuePrefetch(task_.corpus, ids);
  service.DrainPrefetch();
  PrefetchStats stats = service.prefetch_stats();
  EXPECT_EQ(stats.enqueued, submitted);
  // The cap admits at least the first candidate (nothing outstanding yet).
  EXPECT_GE(stats.enqueued, 1u);
  EXPECT_EQ(stats.enqueued + stats.skipped, ids.size());
  // Distinct ids, no competing writers, no cancel: every enqueued task
  // created its entry.
  EXPECT_EQ(stats.issued, stats.enqueued);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST_F(ExtractionServiceTest, CancelInvalidatesNotYetStartedTasks) {
  FeatureCache cache;
  PrefetchOptions prefetch;
  prefetch.threads = 1;
  prefetch.queue_cap = 256;
  ExtractionService service(&task_.pipeline, &cache, prefetch);

  size_t submitted = service.EnqueuePrefetch(task_.corpus, AllDocIds());
  service.CancelPrefetch();
  service.DrainPrefetch();
  PrefetchStats stats = service.prefetch_stats();
  // Each submitted task either ran to completion before the cancel landed
  // or bailed on the generation check — nothing is lost or double-counted.
  EXPECT_EQ(stats.issued + stats.cancelled, submitted);
}

TEST_F(ExtractionServiceTest, ExportMetricsIsDeltaTracked) {
  FeatureCache cache;
  PrefetchOptions prefetch;
  prefetch.threads = 2;
  ExtractionService service(&task_.pipeline, &cache, prefetch);

  ASSERT_EQ(service.EnqueuePrefetch(task_.corpus, {1, 2, 3}), 3u);
  service.DrainPrefetch();
  (void)service.Featurize(task_.corpus.doc(1), 1, task_.corpus);

  MetricsRegistry metrics;
  // Two exports with no activity in between must not double-count.
  service.ExportMetrics(&metrics);
  service.ExportMetrics(&metrics);
  PrefetchStats stats = service.prefetch_stats();
  EXPECT_EQ(metrics.GetCounter("prefetch.enqueued")->value(), stats.enqueued);
  EXPECT_EQ(metrics.GetCounter("prefetch.issued")->value(), stats.issued);
  EXPECT_EQ(metrics.GetCounter("prefetch.useful")->value(), stats.useful);
  EXPECT_EQ(metrics.GetCounter("prefetch.wasted")->value(), stats.wasted());
  EXPECT_DOUBLE_EQ(metrics.GetGauge("prefetch.hit_rate")->value(),
                   stats.hit_rate());

  // New activity after the first exports shows up as exactly its delta.
  (void)service.Featurize(task_.corpus.doc(2), 2, task_.corpus);
  service.ExportMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("prefetch.useful")->value(),
            service.prefetch_stats().useful);
}

// Trains a learner on the first `items` docs while the pruner observes the
// same vectors, then freezes the mask at `items`. Returns the frozen pruner.
FeaturePruner MakeFrozenPruner(const Task& task, size_t items) {
  FeaturePrunerOptions opts = ConservativePruning();
  opts.freeze_after_items = items;
  FeaturePruner pruner(opts);
  NaiveBayesLearner nb;
  for (uint32_t id = 0; id < items; ++id) {
    SparseVector x = task.pipeline.Extract(task.corpus.doc(id), task.corpus);
    pruner.ObserveExample(x);
    nb.Update(x, static_cast<int32_t>(id % 2));
  }
  EXPECT_TRUE(pruner.MaybeFreeze(&nb, items));
  EXPECT_TRUE(pruner.frozen());
  EXPECT_GT(pruner.stats().pruned_features, 0u);
  return pruner;
}

TEST_F(ExtractionServiceTest, PrunerCompactsReturnsButCacheStaysFullDim) {
  FeaturePruner pruner = MakeFrozenPruner(task_, 60);
  FeatureCache cache;
  ExtractionService service(&task_.pipeline, &cache);

  const uint32_t kDoc = 150;  // untouched by the pruner warmup
  const Document& doc = task_.corpus.doc(kDoc);
  SparseVector full = task_.pipeline.Extract(doc, task_.corpus);
  SparseVector compacted = full;
  pruner.CompactInPlace(&compacted);
  ASSERT_LT(compacted.num_nonzero(), full.num_nonzero())
      << "test doc never crossed the mask — pick one that does";

  // Miss path: the return is compacted, the cache entry is not.
  CacheOutcome outcome = CacheOutcome::kDisabled;
  EXPECT_EQ(service.Featurize(doc, kDoc, task_.corpus, &outcome, &pruner),
            compacted);
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  auto entry = cache.Lookup(task_.pipeline.Fingerprint(), kDoc);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->features, full)
      << "cache must stay keyed at full dimension (shared across pruned "
         "and unpruned runs)";

  // Hit path: the same full-dimension entry is compacted on the way out.
  EXPECT_EQ(service.Featurize(doc, kDoc, task_.corpus, &outcome, &pruner),
            compacted);
  EXPECT_EQ(outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.Lookup(task_.pipeline.Fingerprint(), kDoc)->features, full);

  // A null or not-yet-frozen pruner changes nothing.
  EXPECT_EQ(service.Featurize(doc, kDoc, task_.corpus, &outcome), full);
  FeaturePruner unfrozen((FeaturePrunerOptions()));
  EXPECT_EQ(service.Featurize(doc, kDoc, task_.corpus, &outcome, &unfrozen),
            full);
}

TEST_F(ExtractionServiceTest, DestructorDrainsOutstandingSpeculation) {
  FeatureCache cache;
  PrefetchOptions prefetch;
  prefetch.threads = 4;
  prefetch.queue_cap = 256;
  {
    ExtractionService service(&task_.pipeline, &cache, prefetch);
    (void)service.EnqueuePrefetch(task_.corpus, AllDocIds());
    // Destruction with tasks in flight must not crash or leak (ASan/TSan
    // legs exercise this); tasks either finish or bail on the generation
    // check bumped by the destructor's cancel.
  }
  SUCCEED();
}

}  // namespace
}  // namespace zombie
