#include "bandit/arm_stats.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(ArmStatsTest, InitialState) {
  ArmStats s(3);
  EXPECT_EQ(s.num_arms(), 3u);
  EXPECT_EQ(s.num_active(), 3u);
  EXPECT_EQ(s.total_pulls(), 0u);
  for (size_t a = 0; a < 3; ++a) {
    EXPECT_TRUE(s.active(a));
    EXPECT_EQ(s.pulls(a), 0u);
    EXPECT_DOUBLE_EQ(s.mean(a), s.options().prior_mean);
  }
}

TEST(ArmStatsTest, RecordUpdatesCounters) {
  ArmStats s(2);
  s.Record(0, 1.0);
  s.Record(0, 0.0);
  s.Record(1, 0.5);
  EXPECT_EQ(s.pulls(0), 2u);
  EXPECT_EQ(s.pulls(1), 1u);
  EXPECT_EQ(s.total_pulls(), 3u);
  EXPECT_DOUBLE_EQ(s.total_reward(0), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(0), 0.5);
  EXPECT_DOUBLE_EQ(s.lifetime_mean(1), 0.5);
}

TEST(ArmStatsTest, WindowedMeanTracksRecentRewards) {
  ArmStatsOptions opts;
  opts.window = 3;
  opts.discount = 1.0;
  ArmStats s(1, opts);
  // Old high rewards age out of the window.
  s.Record(0, 1.0);
  s.Record(0, 1.0);
  s.Record(0, 0.0);
  s.Record(0, 0.0);
  s.Record(0, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(0), 0.0);
  EXPECT_DOUBLE_EQ(s.lifetime_mean(0), 0.4);
}

TEST(ArmStatsTest, DiscountedMeanWinsWhenBothConfigured) {
  ArmStatsOptions opts;
  opts.window = 100;
  opts.discount = 0.5;
  ArmStats s(1, opts);
  s.Record(0, 0.0);
  s.Record(0, 1.0);
  // Discounted: (0*0.5 + 1) / (0.5 + 1) = 2/3, not windowed 0.5.
  EXPECT_NEAR(s.mean(0), 2.0 / 3.0, 1e-12);
}

TEST(ArmStatsTest, PlainMeanWhenWindowDisabled) {
  ArmStatsOptions opts;
  opts.window = 0;
  ArmStats s(1, opts);
  for (int i = 0; i < 10; ++i) s.Record(0, i < 5 ? 1.0 : 0.0);
  EXPECT_DOUBLE_EQ(s.mean(0), 0.5);
}

TEST(ArmStatsTest, DeactivateRemovesFromActiveCount) {
  ArmStats s(3);
  s.Deactivate(1);
  EXPECT_FALSE(s.active(1));
  EXPECT_EQ(s.num_active(), 2u);
  s.Deactivate(1);  // idempotent
  EXPECT_EQ(s.num_active(), 2u);
  s.Deactivate(0);
  s.Deactivate(2);
  EXPECT_EQ(s.num_active(), 0u);
}

TEST(ArmStatsTest, PriorMeanBeforeFirstPull) {
  ArmStatsOptions opts;
  opts.prior_mean = 0.42;
  ArmStats s(2, opts);
  EXPECT_DOUBLE_EQ(s.mean(0), 0.42);
  EXPECT_DOUBLE_EQ(s.lifetime_mean(0), 0.42);
  s.Record(0, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(1), 0.42);
}

TEST(ArmStatsTest, AddArmAppendsFreshActiveArm) {
  ArmStatsOptions opts;
  opts.prior_mean = 0.7;
  ArmStats s(2, opts);
  s.Record(0, 1.0);
  size_t arm = s.AddArm();
  EXPECT_EQ(arm, 2u);
  EXPECT_EQ(s.num_arms(), 3u);
  EXPECT_EQ(s.num_active(), 3u);
  EXPECT_TRUE(s.active(arm));
  EXPECT_EQ(s.pulls(arm), 0u);
  EXPECT_DOUBLE_EQ(s.mean(arm), 0.7);
  // The new arm records like any other and old arms are untouched.
  s.Record(arm, 0.25);
  EXPECT_DOUBLE_EQ(s.mean(arm), 0.25);
  EXPECT_EQ(s.pulls(0), 1u);
  EXPECT_EQ(s.total_pulls(), 2u);
}

TEST(ArmStatsTest, AddArmAfterDeactivationKeepsCountsStraight) {
  ArmStats s(2);
  s.Deactivate(0);
  EXPECT_EQ(s.num_active(), 1u);
  size_t arm = s.AddArm();
  EXPECT_EQ(arm, 2u);
  EXPECT_EQ(s.num_active(), 2u);
  EXPECT_FALSE(s.active(0));
}

TEST(ArmStatsTest, ReactivateRevivesArmAndKeepsHistory) {
  ArmStats s(2);
  s.Record(1, 1.0);
  s.Record(1, 0.0);
  s.Deactivate(1);
  EXPECT_EQ(s.num_active(), 1u);
  s.Reactivate(1);
  EXPECT_TRUE(s.active(1));
  EXPECT_EQ(s.num_active(), 2u);
  // Same group, only its supply was interrupted: history survives.
  EXPECT_EQ(s.pulls(1), 2u);
  EXPECT_DOUBLE_EQ(s.lifetime_mean(1), 0.5);
  // No-op on an already-active arm.
  s.Reactivate(1);
  EXPECT_EQ(s.num_active(), 2u);
}

TEST(ArmStatsDeathTest, OutOfRangeArmAborts) {
  ArmStats s(2);
  EXPECT_DEATH(s.Record(2, 1.0), "Check failed");
  EXPECT_DEATH((void)s.mean(5), "Check failed");
}

}  // namespace
}  // namespace zombie
