#include "ml/evaluator.h"

#include <gtest/gtest.h>

#include "ml/naive_bayes.h"
#include "util/random.h"

namespace zombie {
namespace {

SparseVector V(std::vector<std::pair<uint32_t, double>> pairs) {
  return SparseVector::FromPairs(std::move(pairs));
}

Dataset TwoFeatureData(size_t n, Rng* rng) {
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    int32_t y = rng->NextBernoulli(0.5) ? 1 : 0;
    data.Add(V({{static_cast<uint32_t>(y == 1 ? 0 : 1), 1.0}}), y);
  }
  return data;
}

TEST(DatasetTest, PositiveCounting) {
  Dataset d;
  EXPECT_EQ(d.positive_fraction(), 0.0);
  d.Add(V({{0, 1.0}}), 1);
  d.Add(V({{0, 1.0}}), 0);
  d.Add(V({{0, 1.0}}), 1);
  EXPECT_EQ(d.num_positive(), 2u);
  EXPECT_NEAR(d.positive_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(DatasetTest, SplitTrainTestPartitions) {
  Rng rng(1);
  Dataset d = TwoFeatureData(100, &rng);
  auto [train, test] = d.SplitTrainTest(0.25, &rng);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
}

TEST(DatasetTest, SplitFoldsCoverEverything) {
  Rng rng(2);
  Dataset d = TwoFeatureData(103, &rng);
  auto folds = d.SplitFolds(5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  size_t total = 0;
  for (const auto& f : folds) {
    total += f.size();
    EXPECT_GE(f.size(), 20u);
    EXPECT_LE(f.size(), 21u);
  }
  EXPECT_EQ(total, 103u);
}

TEST(DatasetTest, ShuffleKeepsContents) {
  Rng rng(3);
  Dataset d = TwoFeatureData(50, &rng);
  size_t pos_before = d.num_positive();
  d.Shuffle(&rng);
  EXPECT_EQ(d.size(), 50u);
  EXPECT_EQ(d.num_positive(), pos_before);
}

TEST(TrainEpochsTest, MultipleEpochsFeedEveryExample) {
  Rng rng(4);
  Dataset d = TwoFeatureData(40, &rng);
  NaiveBayesLearner nb;
  TrainEpochs(&nb, d, 3, &rng);
  EXPECT_EQ(nb.num_updates(), 120u);
}

TEST(HoldoutEvaluatorTest, EvaluatesAgainstFixedSet) {
  Rng rng(5);
  Dataset holdout = TwoFeatureData(100, &rng);
  HoldoutEvaluator eval(holdout);
  EXPECT_EQ(eval.size(), 100u);

  NaiveBayesLearner nb;
  double untrained = eval.Quality(nb, QualityMetric::kF1);
  EXPECT_EQ(untrained, 0.0);  // scores 0 -> all negative

  Dataset train = TwoFeatureData(200, &rng);
  TrainEpochs(&nb, train, 2, &rng);
  EXPECT_GT(eval.Quality(nb, QualityMetric::kF1), 0.95);
  EXPECT_GT(eval.Evaluate(nb).accuracy, 0.95);
}

TEST(HoldoutEvaluatorDeathTest, EmptyHoldoutAborts) {
  EXPECT_DEATH(HoldoutEvaluator{Dataset()}, "non-empty");
}

TEST(CrossValidateTest, HighQualityOnLearnableTask) {
  Rng rng(6);
  Dataset d = TwoFeatureData(200, &rng);
  NaiveBayesLearner proto;
  CrossValidationResult cv =
      CrossValidate(proto, d, 5, 2, QualityMetric::kAccuracy, &rng);
  EXPECT_EQ(cv.fold_qualities.size(), 5u);
  EXPECT_GT(cv.mean_quality, 0.95);
  EXPECT_LT(cv.stddev_quality, 0.1);
}

TEST(CrossValidateTest, FoldCountRespected) {
  Rng rng(7);
  Dataset d = TwoFeatureData(60, &rng);
  NaiveBayesLearner proto;
  CrossValidationResult cv =
      CrossValidate(proto, d, 3, 1, QualityMetric::kF1, &rng);
  EXPECT_EQ(cv.fold_qualities.size(), 3u);
}

}  // namespace
}  // namespace zombie
