#include "data/generator.h"

#include <gtest/gtest.h>

#include "data/balanced_generator.h"
#include "data/entity_generator.h"
#include "data/webcat_generator.h"

namespace zombie {
namespace {

SyntheticCorpusConfig SmallConfig() {
  SyntheticCorpusConfig cfg;
  cfg.num_documents = 2000;
  cfg.common_vocabulary_size = 500;
  cfg.topic_vocabulary_size = 100;
  cfg.num_background_topics = 4;
  cfg.num_domains = 20;
  cfg.seed = 77;
  return cfg;
}

TEST(GeneratorTest, DeterministicForSeed) {
  SyntheticCorpusGenerator g(SmallConfig());
  Corpus a = g.Generate();
  Corpus b = g.Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.doc(i).tokens, b.doc(i).tokens);
    EXPECT_EQ(a.doc(i).label, b.doc(i).label);
    EXPECT_EQ(a.doc(i).domain, b.doc(i).domain);
    EXPECT_EQ(a.doc(i).extraction_cost_micros,
              b.doc(i).extraction_cost_micros);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentCorpora) {
  SyntheticCorpusConfig cfg = SmallConfig();
  Corpus a = SyntheticCorpusGenerator(cfg).Generate();
  cfg.seed = 78;
  Corpus b = SyntheticCorpusGenerator(cfg).Generate();
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a.doc(i).tokens != b.doc(i).tokens;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, PositiveFractionNearTarget) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.num_documents = 10000;
  cfg.positive_fraction = 0.10;
  cfg.label_noise = 0.0;
  Corpus c = SyntheticCorpusGenerator(cfg).Generate();
  EXPECT_NEAR(c.ComputeStats().positive_fraction, 0.10, 0.02);
}

TEST(GeneratorTest, ValidatePassesAndVocabularyFrozen) {
  Corpus c = SyntheticCorpusGenerator(SmallConfig()).Generate();
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_TRUE(c.vocabulary().frozen());
  // Vocabulary holds the common slice plus one slice per topic.
  SyntheticCorpusConfig cfg = SmallConfig();
  EXPECT_EQ(c.vocabulary().size(),
            cfg.common_vocabulary_size +
                (cfg.num_background_topics + 1) * cfg.topic_vocabulary_size);
}

TEST(GeneratorTest, DomainPurityConcentratesTopics) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.num_documents = 5000;
  cfg.domain_purity = 1.0;
  Corpus c = SyntheticCorpusGenerator(cfg).Generate();
  // With full purity, any domain hosts documents of exactly one topic.
  std::vector<int32_t> domain_topic(cfg.num_domains, -1);
  for (const Document& d : c.documents()) {
    if (domain_topic[d.domain] == -1) {
      domain_topic[d.domain] = static_cast<int32_t>(d.topic);
    }
    EXPECT_EQ(domain_topic[d.domain], static_cast<int32_t>(d.topic));
  }
}

TEST(GeneratorTest, ZeroDomainPurityIsUniform) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.num_documents = 20000;
  cfg.domain_purity = 0.0;
  cfg.positive_fraction = 0.5;
  Corpus c = SyntheticCorpusGenerator(cfg).Generate();
  // Positive rates per domain hover near the global rate.
  std::vector<int> pos(cfg.num_domains, 0);
  std::vector<int> tot(cfg.num_domains, 0);
  for (const Document& d : c.documents()) {
    ++tot[d.domain];
    pos[d.domain] += d.label == 1;
  }
  for (size_t dom = 0; dom < cfg.num_domains; ++dom) {
    ASSERT_GT(tot[dom], 100);
    EXPECT_NEAR(static_cast<double>(pos[dom]) / tot[dom], 0.5, 0.15);
  }
}

TEST(GeneratorTest, MinDocLengthRespected) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.min_doc_length = 30;
  cfg.mean_doc_length = 35.0;
  Corpus c = SyntheticCorpusGenerator(cfg).Generate();
  for (const Document& d : c.documents()) {
    EXPECT_GE(d.tokens.size(), 30u);
  }
}

TEST(GeneratorTest, MeanLengthNearTarget) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.num_documents = 10000;
  cfg.mean_doc_length = 100.0;
  Corpus c = SyntheticCorpusGenerator(cfg).Generate();
  EXPECT_NEAR(c.ComputeStats().mean_length, 100.0, 8.0);
}

TEST(GeneratorTest, CostMeanNearTarget) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.num_documents = 10000;
  cfg.mean_extraction_cost_ms = 5.0;
  Corpus c = SyntheticCorpusGenerator(cfg).Generate();
  EXPECT_NEAR(c.ComputeStats().mean_extraction_cost_ms, 5.0, 0.5);
}

TEST(GeneratorTest, TokenPresenceLabelRuleMatchesTokens) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.label_rule = LabelRule::kTokenPresence;
  cfg.num_mention_tokens = 3;
  cfg.label_noise = 0.0;
  SyntheticCorpusGenerator g(cfg);
  Corpus c = g.Generate();
  for (const Document& d : c.documents()) {
    bool has_mention = false;
    for (uint32_t tok : d.tokens) has_mention |= g.IsMentionToken(tok);
    EXPECT_EQ(d.label == 1, has_mention) << "doc " << d.id;
  }
}

TEST(GeneratorTest, TokenIdLayoutHelpers) {
  SyntheticCorpusConfig cfg = SmallConfig();
  SyntheticCorpusGenerator g(cfg);
  EXPECT_EQ(g.CommonTokenId(0), 0u);
  EXPECT_EQ(g.TopicTokenId(0, 0), cfg.common_vocabulary_size);
  EXPECT_EQ(g.TopicTokenId(1, 5),
            cfg.common_vocabulary_size + cfg.topic_vocabulary_size + 5);
  EXPECT_EQ(g.num_topics(), cfg.num_background_topics + 1);
}

TEST(GeneratorConfigTest, ValidateRejectsBadKnobs) {
  SyntheticCorpusConfig cfg = SmallConfig();
  cfg.positive_fraction = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SmallConfig();
  cfg.num_documents = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SmallConfig();
  cfg.label_noise = 0.7;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SmallConfig();
  cfg.domain_purity = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = SmallConfig();
  cfg.label_rule = LabelRule::kTokenPresence;
  cfg.num_mention_tokens = cfg.topic_vocabulary_size + 1;
  EXPECT_FALSE(cfg.Validate().ok());
  EXPECT_TRUE(SmallConfig().Validate().ok());
}

TEST(PresetTest, WebCatPreset) {
  WebCatOptions opts;
  opts.num_documents = 3000;
  Corpus c = GenerateWebCatCorpus(opts);
  EXPECT_EQ(c.size(), 3000u);
  EXPECT_EQ(c.name(), "webcat");
  EXPECT_TRUE(c.Validate().ok());
  double frac = c.ComputeStats().positive_fraction;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.15);
}

TEST(PresetTest, EntityPresetLabelsMatchMentions) {
  EntityExtractOptions opts;
  opts.num_documents = 3000;
  Corpus c = GenerateEntityExtractCorpus(opts);
  EXPECT_EQ(c.name(), "entity");
  SyntheticCorpusGenerator g(MakeEntityExtractConfig(opts));
  for (const Document& d : c.documents()) {
    bool has_mention = false;
    for (uint32_t tok : d.tokens) has_mention |= g.IsMentionToken(tok);
    EXPECT_EQ(d.label == 1, has_mention);
  }
}

TEST(PresetTest, BalancedPresetIsBalancedAndUnconcentrated) {
  BalancedOptions opts;
  opts.num_documents = 8000;
  Corpus c = GenerateBalancedCorpus(opts);
  EXPECT_NEAR(c.ComputeStats().positive_fraction, 0.5, 0.03);
}

}  // namespace
}  // namespace zombie
