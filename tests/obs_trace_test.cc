// Tests for obs/trace: span nesting, deterministic injected clocks,
// thread-id assignment, and well-formedness of the exported Chrome
// trace-event JSON (validated with a small structural JSON parser — the
// repo has no JSON library, deliberately).

#include "obs/trace.h"

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace zombie {
namespace {

/// Minimal recursive-descent JSON well-formedness checker. Accepts the
/// JSON value grammar (objects, arrays, strings, numbers, literals);
/// returns false on any structural error or trailing garbage.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(TraceRecorderTest, RecordsCompleteEvents) {
  int64_t fake_now = 0;
  TraceRecorder rec([&fake_now] { return fake_now; });
  fake_now = 100;
  {
    TraceSpan span(&rec, "outer", "test");
    fake_now = 350;
  }
  ASSERT_EQ(rec.size(), 1u);
  TraceEvent e = rec.Events()[0];
  EXPECT_EQ(e.name, "outer");
  EXPECT_EQ(e.category, "test");
  EXPECT_EQ(e.ts_micros, 100);
  EXPECT_EQ(e.dur_micros, 250);
}

TEST(TraceRecorderTest, NestedSpansCloseInnerFirstAndNestByTime) {
  int64_t fake_now = 0;
  TraceRecorder rec([&fake_now] { return fake_now; });
  {
    TraceSpan outer(&rec, "outer", "test");
    fake_now = 10;
    {
      TraceSpan inner(&rec, "inner", "test");
      fake_now = 20;
    }
    fake_now = 40;
  }
  ASSERT_EQ(rec.size(), 2u);
  std::vector<TraceEvent> events = rec.Events();
  // Destruction order: inner lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  // The inner interval is contained in the outer one (what makes the
  // nesting render correctly in a trace viewer).
  EXPECT_GE(events[0].ts_micros, events[1].ts_micros);
  EXPECT_LE(events[0].ts_micros + events[0].dur_micros,
            events[1].ts_micros + events[1].dur_micros);
}

TEST(TraceSpanTest, NullRecorderIsANoop) {
  TraceSpan span(nullptr, "ignored");
  // Nothing to assert beyond "does not crash": the disabled path must be
  // safe without a recorder.
}

TEST(TraceRecorderTest, WallClockSpansHaveNonNegativeDurations) {
  TraceRecorder rec;  // real wall epoch
  {
    TraceSpan span(&rec, "walltime", "test");
  }
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_GE(rec.Events()[0].dur_micros, 0);
  EXPECT_GE(rec.Events()[0].ts_micros, 0);
}

TEST(TraceRecorderTest, ThreadIdsAreDenseFromOne) {
  TraceRecorder rec;
  { TraceSpan span(&rec, "main-thread", "test"); }
  std::thread other([&rec] { TraceSpan span(&rec, "other-thread", "test"); });
  other.join();
  ASSERT_EQ(rec.size(), 2u);
  std::vector<TraceEvent> events = rec.Events();
  EXPECT_EQ(events[0].tid, 1u);
  EXPECT_EQ(events[1].tid, 2u);
}

TEST(TraceRecorderTest, JsonIsWellFormedAndPerfettoShaped) {
  int64_t fake_now = 0;
  TraceRecorder rec([&fake_now] { return fake_now; });
  {
    TraceSpan a(&rec, "alpha \"quoted\"", "cat\\egory");
    fake_now = 5;
  }
  { TraceSpan b(&rec, "beta", "test"); }
  std::string json = rec.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // The two keys Perfetto/chrome://tracing require to load the file.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Escaping really happened.
  EXPECT_NE(json.find("alpha \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("cat\\egory"), std::string::npos);
}

TEST(TraceRecorderTest, EmptyRecorderStillEmitsValidJson) {
  TraceRecorder rec;
  std::string json = rec.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceRecorderTest, ConcurrentAppendKeepsAllEvents) {
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&rec, "concurrent", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.size(), static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_TRUE(JsonValidator(rec.ToJson()).Valid());
}

}  // namespace
}  // namespace zombie
