#include "featureeng/feature_scoring.h"

#include <gtest/gtest.h>

#include "data/webcat_generator.h"

namespace zombie {
namespace {

// A tiny hand-built corpus where token 0 marks positives, token 1 marks
// negatives, and token 2 is uninformative (everywhere).
Corpus MarkerCorpus() {
  Corpus c;
  for (const char* t : {"pos_marker", "neg_marker", "common"}) {
    c.mutable_vocabulary().GetOrAdd(t);
  }
  for (int i = 0; i < 20; ++i) {
    Document d;
    d.id = static_cast<uint64_t>(i);
    bool positive = i < 10;
    d.label = positive ? 1 : 0;
    d.tokens = {positive ? 0u : 1u};
    // The common token appears in most (not all) documents of both
    // classes; a universal token has an undefined chi-square (absent
    // column is empty) and is rightly dropped by the scorer.
    if (i % 4 != 0) d.tokens.push_back(2u);
    d.extraction_cost_micros = 100;
    c.AddDocument(std::move(d));
  }
  return c;
}

std::vector<uint32_t> AllDocs(const Corpus& c) {
  std::vector<uint32_t> ids(c.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  return ids;
}

TEST(ChiSquareTest, MarkersOutscoreCommonTerm) {
  Corpus c = MarkerCorpus();
  auto scores = ChiSquareTerms(c, AllDocs(c), 3);
  ASSERT_EQ(scores.size(), 3u);
  // Both markers are perfectly class-associated; common is independent.
  EXPECT_TRUE(scores[0].token_id == 0 || scores[0].token_id == 1);
  EXPECT_TRUE(scores[1].token_id == 0 || scores[1].token_id == 1);
  EXPECT_EQ(scores[2].token_id, 2u);
  EXPECT_GT(scores[0].score, scores[2].score);
  // The common term is nearly class-independent: tiny chi-square.
  EXPECT_LT(scores[2].score, 1.0);
}

TEST(ChiSquareTest, DfCountsAreFilledIn) {
  Corpus c = MarkerCorpus();
  auto scores = ChiSquareTerms(c, AllDocs(c), 3);
  for (const auto& s : scores) {
    if (s.token_id == 0) {
      EXPECT_EQ(s.df_positive, 10u);
      EXPECT_EQ(s.df_negative, 0u);
    }
    if (s.token_id == 2) {
      EXPECT_EQ(s.df_positive, 7u);
      EXPECT_EQ(s.df_negative, 8u);
    }
  }
}

TEST(ChiSquareTest, TopKLimitsOutput) {
  Corpus c = MarkerCorpus();
  EXPECT_EQ(ChiSquareTerms(c, AllDocs(c), 1).size(), 1u);
  EXPECT_TRUE(ChiSquareTerms(c, {}, 5).empty());
}

TEST(PmiTest, PositiveMarkerRanksFirst) {
  Corpus c = MarkerCorpus();
  auto scores = PmiTerms(c, AllDocs(c), 3);
  ASSERT_FALSE(scores.empty());
  // PMI targets the positive class: the positive marker must win, and the
  // negative marker must score lowest.
  EXPECT_EQ(scores[0].token_id, 0u);
  EXPECT_EQ(scores.back().token_id, 1u);
  EXPECT_GT(scores[0].score, 0.0);
  EXPECT_LT(scores.back().score, 0.0);
}

TEST(SuggestKeywordsTest, FindsTargetTopicTermsOnWebCat) {
  WebCatOptions opts;
  opts.num_documents = 3000;
  opts.positive_fraction = 0.2;
  opts.label_noise = 0.0;
  Corpus corpus = GenerateWebCatCorpus(opts);
  std::vector<uint32_t> sample;
  for (uint32_t i = 0; i < 1000; ++i) sample.push_back(i);
  std::vector<uint32_t> keywords = SuggestKeywords(corpus, sample, 10);
  ASSERT_EQ(keywords.size(), 10u);
  // The suggested keywords should overwhelmingly be target-topic tokens
  // (named "topic0_wX" in the generator's vocabulary layout).
  size_t topic0 = 0;
  for (uint32_t tok : keywords) {
    const std::string& term = corpus.vocabulary().Term(tok);
    if (term.rfind("topic0_", 0) == 0) ++topic0;
  }
  EXPECT_GE(topic0, 8u);
}

TEST(ScoringDeathTest, OutOfRangeSampleAborts) {
  Corpus c = MarkerCorpus();
  EXPECT_DEATH(ChiSquareTerms(c, {999}, 3), "Check failed");
}

}  // namespace
}  // namespace zombie
