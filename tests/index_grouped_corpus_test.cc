#include "index/grouped_corpus.h"

#include <gtest/gtest.h>

#include <set>

#include "data/webcat_generator.h"
#include "index/random_grouper.h"
#include "index/token_grouper.h"

namespace zombie {
namespace {

Corpus TestCorpus(size_t n = 200) {
  WebCatOptions opts;
  opts.num_documents = n;
  return GenerateWebCatCorpus(opts);
}

GroupingResult TwoGroups(size_t n) {
  GroupingResult g;
  g.method = "two";
  g.groups.resize(2);
  for (size_t i = 0; i < n; ++i) {
    g.groups[i % 2].push_back(static_cast<uint32_t>(i));
  }
  return g;
}

TEST(GroupedCorpusTest, DrainsEveryItemExactlyOnce) {
  Corpus corpus = TestCorpus(100);
  GroupedCorpus gc(&corpus, TwoGroups(100), 1);
  std::set<uint32_t> seen;
  while (!gc.AllExhausted()) {
    for (size_t g = 0; g < gc.num_groups(); ++g) {
      auto idx = gc.NextFromGroup(g);
      if (idx.has_value()) {
        EXPECT_TRUE(seen.insert(*idx).second) << "duplicate " << *idx;
      }
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(gc.num_processed(), 100u);
}

TEST(GroupedCorpusTest, PeekUnprocessedMatchesNextFromGroupOrder) {
  Corpus corpus = TestCorpus(40);
  GroupedCorpus gc(&corpus, TwoGroups(40), 9);
  std::vector<uint32_t> peeked;
  gc.PeekUnprocessed(0, 5, &peeked);
  ASSERT_EQ(peeked.size(), 5u);
  // Purely observational: peeking moved no cursor and marked nothing.
  EXPECT_EQ(gc.num_processed(), 0u);
  for (uint32_t id : peeked) {
    auto next = gc.NextFromGroup(0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, id);
  }
}

TEST(GroupedCorpusTest, PeekUnprocessedSkipsProcessedItems) {
  Corpus corpus = TestCorpus(40);
  GroupedCorpus gc(&corpus, TwoGroups(40), 10);
  std::vector<uint32_t> peeked;
  gc.PeekUnprocessed(0, 3, &peeked);
  ASSERT_EQ(peeked.size(), 3u);
  // Consume the first upcoming item through the *other* group's processed
  // set: the peek must now start at the second.
  gc.MarkProcessed(peeked[0]);
  std::vector<uint32_t> repeeked;
  gc.PeekUnprocessed(0, 2, &repeeked);
  ASSERT_EQ(repeeked.size(), 2u);
  EXPECT_EQ(repeeked[0], peeked[1]);
  EXPECT_EQ(repeeked[1], peeked[2]);
}

TEST(GroupedCorpusTest, PeekUnprocessedOnExhaustedGroupIsEmpty) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1, 2}, {3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 11);
  while (gc.NextFromGroup(0).has_value()) {
  }
  std::vector<uint32_t> peeked = {99};
  gc.PeekUnprocessed(0, 4, &peeked);
  EXPECT_TRUE(peeked.empty());
}

TEST(GroupedCorpusTest, OverlappingGroupsNeverRepeatItems) {
  Corpus corpus = TestCorpus(50);
  GroupingResult g;
  g.method = "overlap";
  g.groups.resize(2);
  for (uint32_t i = 0; i < 50; ++i) {
    g.groups[0].push_back(i);
    if (i % 2 == 0) g.groups[1].push_back(i);  // subset overlap
  }
  GroupedCorpus gc(&corpus, std::move(g), 2);
  std::set<uint32_t> seen;
  // Drain group 1 (the subset) first.
  while (auto idx = gc.NextFromGroup(1)) seen.insert(*idx);
  EXPECT_EQ(seen.size(), 25u);
  // Group 0 then yields only the other half.
  size_t rest = 0;
  while (auto idx = gc.NextFromGroup(0)) {
    EXPECT_TRUE(seen.insert(*idx).second);
    ++rest;
  }
  EXPECT_EQ(rest, 25u);
  EXPECT_TRUE(gc.AllExhausted());
}

TEST(GroupedCorpusTest, ExhaustedGroupReturnsNullopt) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1}, {2, 3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 3);
  EXPECT_TRUE(gc.NextFromGroup(0).has_value());
  EXPECT_TRUE(gc.NextFromGroup(0).has_value());
  EXPECT_FALSE(gc.NextFromGroup(0).has_value());
  EXPECT_TRUE(gc.GroupExhausted(0));
  EXPECT_FALSE(gc.GroupExhausted(1));
  EXPECT_FALSE(gc.AllExhausted());
}

TEST(GroupedCorpusTest, MarkProcessedExcludesFromSelection) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 4);
  for (uint32_t i = 0; i < 5; ++i) gc.MarkProcessed(i);
  EXPECT_EQ(gc.num_processed(), 5u);
  std::set<uint32_t> seen;
  while (auto idx = gc.NextFromGroup(0)) seen.insert(*idx);
  EXPECT_EQ(seen.size(), 5u);
  for (uint32_t i : seen) EXPECT_GE(i, 5u);
}

TEST(GroupedCorpusTest, MarkProcessedIdempotent) {
  Corpus corpus = TestCorpus(10);
  GroupedCorpus gc(&corpus, TwoGroups(10), 5);
  gc.MarkProcessed(3);
  gc.MarkProcessed(3);
  EXPECT_EQ(gc.num_processed(), 1u);
  EXPECT_TRUE(gc.IsProcessed(3));
  EXPECT_FALSE(gc.IsProcessed(4));
}

TEST(GroupedCorpusTest, ShuffleChangesOrderButNotContents) {
  Corpus corpus = TestCorpus(60);
  GroupingResult g = TwoGroups(60);
  GroupedCorpus shuffled(&corpus, g, 6, /*shuffle=*/true);
  GroupedCorpus ordered(&corpus, g, 6, /*shuffle=*/false);
  std::vector<uint32_t> s_order;
  std::vector<uint32_t> o_order;
  while (auto idx = shuffled.NextFromGroup(0)) s_order.push_back(*idx);
  while (auto idx = ordered.NextFromGroup(0)) o_order.push_back(*idx);
  EXPECT_NE(s_order, o_order);
  std::sort(s_order.begin(), s_order.end());
  EXPECT_EQ(s_order, o_order);  // ordered group 0 is already sorted (evens)
}

TEST(GroupedCorpusTest, ResetRestoresAllItems) {
  Corpus corpus = TestCorpus(20);
  GroupedCorpus gc(&corpus, TwoGroups(20), 7);
  while (auto idx = gc.NextFromGroup(0)) {
  }
  gc.MarkProcessed(1);
  gc.Reset();
  EXPECT_EQ(gc.num_processed(), 0u);
  EXPECT_FALSE(gc.GroupExhausted(0));
  size_t count = 0;
  while (auto idx = gc.NextFromGroup(0)) ++count;
  EXPECT_EQ(count, 10u);
}

TEST(GroupedCorpusTest, GroupSizeReportsOriginalSizes) {
  Corpus corpus = TestCorpus(30);
  GroupedCorpus gc(&corpus, TwoGroups(30), 8);
  EXPECT_EQ(gc.group_size(0), 15u);
  EXPECT_EQ(gc.group_size(1), 15u);
}

TEST(GroupedCorpusDeathTest, InvalidGroupingAborts) {
  Corpus corpus = TestCorpus(5);
  GroupingResult g;
  g.groups = {{0, 1}};  // docs 2..4 uncovered
  EXPECT_DEATH(GroupedCorpus(&corpus, std::move(g), 1), "not covered");
}

}  // namespace
}  // namespace zombie
