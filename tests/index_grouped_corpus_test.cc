#include "index/grouped_corpus.h"

#include <gtest/gtest.h>

#include <set>

#include "data/webcat_generator.h"
#include "index/random_grouper.h"
#include "index/token_grouper.h"

namespace zombie {
namespace {

Corpus TestCorpus(size_t n = 200) {
  WebCatOptions opts;
  opts.num_documents = n;
  return GenerateWebCatCorpus(opts);
}

GroupingResult TwoGroups(size_t n) {
  GroupingResult g;
  g.method = "two";
  g.groups.resize(2);
  for (size_t i = 0; i < n; ++i) {
    g.groups[i % 2].push_back(static_cast<uint32_t>(i));
  }
  return g;
}

TEST(GroupedCorpusTest, DrainsEveryItemExactlyOnce) {
  Corpus corpus = TestCorpus(100);
  GroupedCorpus gc(&corpus, TwoGroups(100), 1);
  std::set<uint32_t> seen;
  while (!gc.AllExhausted()) {
    for (size_t g = 0; g < gc.num_groups(); ++g) {
      auto idx = gc.NextFromGroup(g);
      if (idx.has_value()) {
        EXPECT_TRUE(seen.insert(*idx).second) << "duplicate " << *idx;
      }
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(gc.num_processed(), 100u);
}

TEST(GroupedCorpusTest, PeekUnprocessedMatchesNextFromGroupOrder) {
  Corpus corpus = TestCorpus(40);
  GroupedCorpus gc(&corpus, TwoGroups(40), 9);
  std::vector<uint32_t> peeked;
  gc.PeekUnprocessed(0, 5, &peeked);
  ASSERT_EQ(peeked.size(), 5u);
  // Purely observational: peeking moved no cursor and marked nothing.
  EXPECT_EQ(gc.num_processed(), 0u);
  for (uint32_t id : peeked) {
    auto next = gc.NextFromGroup(0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, id);
  }
}

TEST(GroupedCorpusTest, PeekUnprocessedSkipsProcessedItems) {
  Corpus corpus = TestCorpus(40);
  GroupedCorpus gc(&corpus, TwoGroups(40), 10);
  std::vector<uint32_t> peeked;
  gc.PeekUnprocessed(0, 3, &peeked);
  ASSERT_EQ(peeked.size(), 3u);
  // Consume the first upcoming item through the *other* group's processed
  // set: the peek must now start at the second.
  gc.MarkProcessed(peeked[0]);
  std::vector<uint32_t> repeeked;
  gc.PeekUnprocessed(0, 2, &repeeked);
  ASSERT_EQ(repeeked.size(), 2u);
  EXPECT_EQ(repeeked[0], peeked[1]);
  EXPECT_EQ(repeeked[1], peeked[2]);
}

TEST(GroupedCorpusTest, PeekUnprocessedOnExhaustedGroupIsEmpty) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1, 2}, {3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 11);
  while (gc.NextFromGroup(0).has_value()) {
  }
  std::vector<uint32_t> peeked = {99};
  gc.PeekUnprocessed(0, 4, &peeked);
  EXPECT_TRUE(peeked.empty());
}

TEST(GroupedCorpusTest, OverlappingGroupsNeverRepeatItems) {
  Corpus corpus = TestCorpus(50);
  GroupingResult g;
  g.method = "overlap";
  g.groups.resize(2);
  for (uint32_t i = 0; i < 50; ++i) {
    g.groups[0].push_back(i);
    if (i % 2 == 0) g.groups[1].push_back(i);  // subset overlap
  }
  GroupedCorpus gc(&corpus, std::move(g), 2);
  std::set<uint32_t> seen;
  // Drain group 1 (the subset) first.
  while (auto idx = gc.NextFromGroup(1)) seen.insert(*idx);
  EXPECT_EQ(seen.size(), 25u);
  // Group 0 then yields only the other half.
  size_t rest = 0;
  while (auto idx = gc.NextFromGroup(0)) {
    EXPECT_TRUE(seen.insert(*idx).second);
    ++rest;
  }
  EXPECT_EQ(rest, 25u);
  EXPECT_TRUE(gc.AllExhausted());
}

TEST(GroupedCorpusTest, ExhaustedGroupReturnsNullopt) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1}, {2, 3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 3);
  EXPECT_TRUE(gc.NextFromGroup(0).has_value());
  EXPECT_TRUE(gc.NextFromGroup(0).has_value());
  EXPECT_FALSE(gc.NextFromGroup(0).has_value());
  EXPECT_TRUE(gc.GroupExhausted(0));
  EXPECT_FALSE(gc.GroupExhausted(1));
  EXPECT_FALSE(gc.AllExhausted());
}

TEST(GroupedCorpusTest, MarkProcessedExcludesFromSelection) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 4);
  for (uint32_t i = 0; i < 5; ++i) gc.MarkProcessed(i);
  EXPECT_EQ(gc.num_processed(), 5u);
  std::set<uint32_t> seen;
  while (auto idx = gc.NextFromGroup(0)) seen.insert(*idx);
  EXPECT_EQ(seen.size(), 5u);
  for (uint32_t i : seen) EXPECT_GE(i, 5u);
}

TEST(GroupedCorpusTest, MarkProcessedIdempotent) {
  Corpus corpus = TestCorpus(10);
  GroupedCorpus gc(&corpus, TwoGroups(10), 5);
  gc.MarkProcessed(3);
  gc.MarkProcessed(3);
  EXPECT_EQ(gc.num_processed(), 1u);
  EXPECT_TRUE(gc.IsProcessed(3));
  EXPECT_FALSE(gc.IsProcessed(4));
}

TEST(GroupedCorpusTest, ShuffleChangesOrderButNotContents) {
  Corpus corpus = TestCorpus(60);
  GroupingResult g = TwoGroups(60);
  GroupedCorpus shuffled(&corpus, g, 6, /*shuffle=*/true);
  GroupedCorpus ordered(&corpus, g, 6, /*shuffle=*/false);
  std::vector<uint32_t> s_order;
  std::vector<uint32_t> o_order;
  while (auto idx = shuffled.NextFromGroup(0)) s_order.push_back(*idx);
  while (auto idx = ordered.NextFromGroup(0)) o_order.push_back(*idx);
  EXPECT_NE(s_order, o_order);
  std::sort(s_order.begin(), s_order.end());
  EXPECT_EQ(s_order, o_order);  // ordered group 0 is already sorted (evens)
}

TEST(GroupedCorpusTest, ResetRestoresAllItems) {
  Corpus corpus = TestCorpus(20);
  GroupedCorpus gc(&corpus, TwoGroups(20), 7);
  while (auto idx = gc.NextFromGroup(0)) {
  }
  gc.MarkProcessed(1);
  gc.Reset();
  EXPECT_EQ(gc.num_processed(), 0u);
  EXPECT_FALSE(gc.GroupExhausted(0));
  size_t count = 0;
  while (auto idx = gc.NextFromGroup(0)) ++count;
  EXPECT_EQ(count, 10u);
}

TEST(GroupedCorpusTest, GroupSizeReportsOriginalSizes) {
  Corpus corpus = TestCorpus(30);
  GroupedCorpus gc(&corpus, TwoGroups(30), 8);
  EXPECT_EQ(gc.group_size(0), 15u);
  EXPECT_EQ(gc.group_size(1), 15u);
}

// --- Streaming: appends, new groups, shard-arena views. -------------------

TEST(GroupedCorpusStreamTest, BaseSizeEqualCorpusMatchesOfflineCtor) {
  Corpus corpus = TestCorpus(80);
  GroupingResult g = TwoGroups(80);
  GroupedCorpus offline(&corpus, g, 21, /*shuffle=*/true);
  GroupedCorpus streaming(&corpus, g, 21, /*shuffle=*/true,
                          /*base_size=*/80);
  EXPECT_EQ(streaming.base_size(), 80u);
  for (size_t grp = 0; grp < 2; ++grp) {
    while (true) {
      auto a = offline.NextFromGroup(grp);
      auto b = streaming.NextFromGroup(grp);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) break;
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(GroupedCorpusStreamTest, AppendRevivesExhaustedGroup) {
  Corpus corpus = TestCorpus(20);
  GroupingResult g;
  g.groups = {{0, 1}, {2, 3, 4, 5, 6, 7, 8, 9}};  // base = docs [0, 10)
  GroupedCorpus gc(&corpus, std::move(g), 12, /*shuffle=*/false,
                   /*base_size=*/10);
  while (gc.NextFromGroup(0).has_value()) {
  }
  EXPECT_TRUE(gc.GroupExhausted(0));
  gc.AppendDocument(10, {0});
  EXPECT_FALSE(gc.GroupExhausted(0));
  auto idx = gc.NextFromGroup(0);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 10u);
  EXPECT_TRUE(gc.GroupExhausted(0));
  EXPECT_EQ(gc.group_size(0), 3u);
}

TEST(GroupedCorpusStreamTest, AppendToMultipleGroupsTrainsOnce) {
  Corpus corpus = TestCorpus(12);
  GroupingResult g;
  g.groups = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  GroupedCorpus gc(&corpus, std::move(g), 13, /*shuffle=*/false,
                   /*base_size=*/8);
  gc.AppendDocument(8, {0, 1});  // overlapping append
  std::set<uint32_t> seen;
  for (size_t grp = 0; grp < 2; ++grp) {
    while (auto idx = gc.NextFromGroup(grp)) {
      EXPECT_TRUE(seen.insert(*idx).second) << "doc " << *idx << " twice";
    }
  }
  EXPECT_EQ(seen.size(), 9u);  // 8 base + 1 appended, not 10
}

TEST(GroupedCorpusStreamTest, AddGroupOpensNewArmWithMembers) {
  Corpus corpus = TestCorpus(20);
  GroupingResult g;
  g.groups = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  GroupedCorpus gc(&corpus, std::move(g), 14, /*shuffle=*/false,
                   /*base_size=*/10);
  // Split-style: members copied from the existing group plus an arrival.
  size_t ng = gc.AddGroup({7, 8, 9});
  EXPECT_EQ(ng, 1u);
  EXPECT_EQ(gc.num_groups(), 2u);
  EXPECT_EQ(gc.group_size(1), 3u);
  // The copies dedup against the source group through the processed set.
  std::vector<uint32_t> from_new;
  while (auto idx = gc.NextFromGroup(1)) from_new.push_back(*idx);
  EXPECT_EQ(from_new, (std::vector<uint32_t>{7, 8, 9}));
  size_t rest = 0;
  while (auto idx = gc.NextFromGroup(0)) {
    EXPECT_LT(*idx, 7u);
    ++rest;
  }
  EXPECT_EQ(rest, 7u);
}

TEST(GroupedCorpusStreamTest, AddEmptyGroupIsExhaustedUntilAppend) {
  Corpus corpus = TestCorpus(10);
  GroupingResult g;
  g.groups = {{0, 1, 2, 3, 4}};
  GroupedCorpus gc(&corpus, std::move(g), 15, /*shuffle=*/false,
                   /*base_size=*/5);
  size_t ng = gc.AddGroup({});  // brand-new domain: an arm with no history
  EXPECT_TRUE(gc.GroupExhausted(ng));
  EXPECT_EQ(gc.group_size(ng), 0u);
  EXPECT_EQ(gc.num_shards(ng), 0u);
  gc.AppendDocument(5, {ng});
  EXPECT_FALSE(gc.GroupExhausted(ng));
  EXPECT_EQ(*gc.NextFromGroup(ng), 5u);
}

TEST(GroupedCorpusStreamTest, ShardChainsGrowAndViewsMatchInsertionOrder) {
  const size_t cap = GroupedCorpus::kShardCapacity;
  Corpus corpus = TestCorpus(3 * cap);
  GroupingResult g;
  g.groups = {{0}};
  GroupedCorpus gc(&corpus, std::move(g), 16, /*shuffle=*/false,
                   /*base_size=*/1);
  // One base doc + (2*cap + 3) appends: chain of 3 shards, tail partial.
  std::vector<uint32_t> inserted = {0};
  for (uint32_t d = 1; d < static_cast<uint32_t>(2 * cap + 4); ++d) {
    gc.AppendDocument(d, {0});
    inserted.push_back(d);
  }
  EXPECT_EQ(gc.group_size(0), inserted.size());
  ASSERT_EQ(gc.num_shards(0), 3u);
  std::vector<uint32_t> from_shards;
  for (size_t s = 0; s < gc.num_shards(0); ++s) {
    GroupedCorpus::ShardView view = gc.shard(0, s);
    ASSERT_NE(view.docs, nullptr);
    if (s + 1 < gc.num_shards(0)) {
      EXPECT_EQ(view.size, cap) << "interior shards are full";
    }
    from_shards.insert(from_shards.end(), view.docs, view.docs + view.size);
  }
  EXPECT_EQ(from_shards, inserted);
  // Pop order is the shard-chain order.
  std::vector<uint32_t> popped;
  while (auto idx = gc.NextFromGroup(0)) popped.push_back(*idx);
  EXPECT_EQ(popped, inserted);
}

TEST(GroupedCorpusStreamTest, CursorResumesOnPartiallyFilledTailShard) {
  const size_t cap = GroupedCorpus::kShardCapacity;
  Corpus corpus = TestCorpus(2 * cap);
  GroupingResult g;
  g.groups = {{0, 1, 2}};
  GroupedCorpus gc(&corpus, std::move(g), 17, /*shuffle=*/false,
                   /*base_size=*/3);
  // Drain to the end of the (partial) tail shard, then append into it: the
  // cursor must pick up the new slot, not restart or skip.
  while (gc.NextFromGroup(0).has_value()) {
  }
  gc.AppendDocument(3, {0});
  EXPECT_EQ(*gc.NextFromGroup(0), 3u);
  // Fill past the shard boundary and drain again: order preserved.
  std::vector<uint32_t> expect;
  for (uint32_t d = 4; d < static_cast<uint32_t>(cap + 8); ++d) {
    gc.AppendDocument(d, {0});
    expect.push_back(d);
  }
  std::vector<uint32_t> popped;
  while (auto idx = gc.NextFromGroup(0)) popped.push_back(*idx);
  EXPECT_EQ(popped, expect);
  EXPECT_GE(gc.num_shards(0), 2u);
}

TEST(GroupedCorpusStreamTest, ResetPreservesAppendedOrder) {
  Corpus corpus = TestCorpus(20);
  GroupingResult g;
  g.groups = {{0, 1, 2, 3, 4, 5, 6, 7}};
  GroupedCorpus gc(&corpus, std::move(g), 18, /*shuffle=*/true,
                   /*base_size=*/8);
  size_t ng = gc.AddGroup({2, 5});
  gc.AppendDocument(8, {0});
  gc.AppendDocument(9, {ng});
  auto drain = [&gc]() {
    std::vector<uint32_t> order;
    for (size_t grp = 0; grp < gc.num_groups(); ++grp) {
      while (auto idx = gc.NextFromGroup(grp)) order.push_back(*idx);
    }
    return order;
  };
  std::vector<uint32_t> first = drain();
  gc.Reset();
  EXPECT_EQ(gc.num_processed(), 0u);
  std::vector<uint32_t> second = drain();
  EXPECT_EQ(first, second)
      << "Reset must preserve insertion order, including streamed appends";
}

TEST(GroupedCorpusDeathTest, InvalidGroupingAborts) {
  Corpus corpus = TestCorpus(5);
  GroupingResult g;
  g.groups = {{0, 1}};  // docs 2..4 uncovered
  EXPECT_DEATH(GroupedCorpus(&corpus, std::move(g), 1), "not covered");
}

}  // namespace
}  // namespace zombie
