// Property-style sweep: engine invariants that must hold for every
// (task, seed) combination — accounting identities, curve monotonicity,
// holdout exclusion, and stop-rule sanity.

#include <gtest/gtest.h>

#include <tuple>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"

namespace zombie {
namespace {

class EngineInvariantTest
    : public testing::TestWithParam<std::tuple<TaskKind, uint64_t>> {};

TEST_P(EngineInvariantTest, AccountingAndMonotonicityHold) {
  auto [kind, seed] = GetParam();
  Task task = MakeTask(kind, 1500, seed);
  KMeansGrouper grouper(8, seed);
  GroupingResult grouping = grouper.Group(task.corpus);

  EngineOptions opts;
  opts.seed = seed;
  opts.holdout_size = 100;
  opts.eval_every = 20;
  opts.stop.min_items = 100;
  opts.stop.max_items = 600;
  ZombieEngine engine(&task.corpus, &task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(grouping, policy, nb, reward));

  // Items never exceed budget nor the trainable corpus.
  EXPECT_LE(r.items_processed, 600u);
  EXPECT_LE(r.items_processed, task.corpus.size() - 100);

  // Pull accounting: per-arm pulls sum to items; positives bounded.
  size_t pulls = 0;
  size_t positives = 0;
  for (const auto& a : r.arms) {
    pulls += a.pulls;
    positives += a.positives_seen;
    EXPECT_LE(a.positives_seen, a.pulls);
    EXPECT_LE(a.pulls, a.group_size);
    EXPECT_GE(a.total_reward, 0.0);
    EXPECT_LE(a.total_reward, static_cast<double>(a.pulls) + 1e-9);
  }
  EXPECT_EQ(pulls, r.items_processed);
  EXPECT_EQ(positives, r.positives_processed);

  // Curve invariants: starts at 0 items, strictly increasing items,
  // non-decreasing virtual time, quality in [0, 1].
  ASSERT_GE(r.curve.size(), 2u);
  EXPECT_EQ(r.curve.point(0).items_processed, 0u);
  for (size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GT(r.curve.point(i).items_processed,
              r.curve.point(i - 1).items_processed);
    EXPECT_GE(r.curve.point(i).virtual_micros,
              r.curve.point(i - 1).virtual_micros);
  }
  for (const auto& p : r.curve.points()) {
    EXPECT_GE(p.quality, 0.0);
    EXPECT_LE(p.quality, 1.0);
  }

  // Clock accounting: loop time positive iff items processed; totals add.
  EXPECT_GT(r.holdout_virtual_micros, 0);
  EXPECT_EQ(r.total_virtual_micros(),
            r.loop_virtual_micros + r.holdout_virtual_micros);
  if (r.items_processed > 0) {
    EXPECT_GT(r.loop_virtual_micros, 0);
  }

  // Final metrics coherent with the curve's last point.
  EXPECT_DOUBLE_EQ(r.final_quality, r.curve.FinalQuality());
}

INSTANTIATE_TEST_SUITE_P(
    TasksAndSeeds, EngineInvariantTest,
    testing::Combine(testing::Values(TaskKind::kWebCat, TaskKind::kEntity,
                                     TaskKind::kBalanced),
                     testing::Values(1, 2, 3, 4)),
    [](const testing::TestParamInfo<std::tuple<TaskKind, uint64_t>>& param_info) {
      return std::string(TaskKindName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace zombie
