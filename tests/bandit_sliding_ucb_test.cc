#include "bandit/sliding_ucb.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace zombie {
namespace {

TEST(SlidingUcbTest, TriesEveryArmFirst) {
  SlidingUcbPolicy policy;
  ArmStats stats(4);
  policy.Reset(4);
  Rng rng(1);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 4; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    EXPECT_FALSE(seen[arm]);
    seen[arm] = true;
    stats.Record(arm, 0.5);
    policy.Observe(arm, 0.5);
  }
}

TEST(SlidingUcbTest, WindowEvictsOldObservations) {
  SlidingUcbOptions opts;
  opts.window = 4;
  SlidingUcbPolicy policy(opts);
  policy.Reset(2);
  for (int i = 0; i < 10; ++i) policy.Observe(0, 1.0);
  EXPECT_EQ(policy.WindowPulls(0), 4u);
  policy.Observe(1, 0.0);
  EXPECT_EQ(policy.WindowPulls(0), 3u);
  EXPECT_EQ(policy.WindowPulls(1), 1u);
}

TEST(SlidingUcbTest, EvictedArmGetsRetried) {
  // Once an arm's observations fully age out of the window, it has an
  // infinite index again and must be re-tried.
  SlidingUcbOptions opts;
  opts.window = 3;
  SlidingUcbPolicy policy(opts);
  ArmStats stats(2);
  policy.Reset(2);
  Rng rng(2);
  stats.Record(0, 1.0);
  policy.Observe(0, 1.0);
  stats.Record(1, 0.0);
  policy.Observe(1, 0.0);
  // Push arm-1's observation out with three arm-0 wins.
  for (int i = 0; i < 3; ++i) {
    stats.Record(0, 1.0);
    policy.Observe(0, 1.0);
  }
  EXPECT_EQ(policy.WindowPulls(1), 0u);
  EXPECT_EQ(policy.SelectArm(stats, &rng), 1u);
}

TEST(SlidingUcbTest, TracksNonStationarySwitch) {
  // Arm 0 pays first, then dies; arm 1 starts paying. A windowed policy
  // must migrate; a lifetime-mean UCB would cling to arm 0 far longer.
  SlidingUcbOptions opts;
  opts.window = 50;
  SlidingUcbPolicy policy(opts);
  ArmStats stats(2);
  policy.Reset(2);
  Rng rng(3);
  auto reward_at = [](size_t arm, int t) {
    bool first_phase = t < 300;
    return (first_phase ? arm == 0 : arm == 1) ? 1.0 : 0.0;
  };
  int second_phase_arm1 = 0;
  for (int t = 0; t < 600; ++t) {
    size_t arm = policy.SelectArm(stats, &rng);
    double r = reward_at(arm, t);
    stats.Record(arm, r);
    policy.Observe(arm, r);
    if (t >= 400 && arm == 1) ++second_phase_arm1;
  }
  // After the switch settles, most pulls go to arm 1.
  EXPECT_GT(second_phase_arm1, 140);
}

TEST(SlidingUcbTest, SelectsOnlyActiveArms) {
  SlidingUcbPolicy policy;
  ArmStats stats(3);
  policy.Reset(3);
  stats.Deactivate(0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    EXPECT_NE(arm, 0u);
    stats.Record(arm, 0.5);
    policy.Observe(arm, 0.5);
  }
}

TEST(SlidingUcbTest, OnArmAddedIsTriedAtNextOpportunity) {
  SlidingUcbPolicy policy;
  ArmStats stats(2);
  policy.Reset(2);
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    stats.Record(arm, arm == 0 ? 1.0 : 0.0);
    policy.Observe(arm, arm == 0 ? 1.0 : 0.0);
  }
  size_t new_arm = stats.AddArm();
  policy.OnArmAdded(new_arm);
  // Zeroed window counters: no pulls in the window, infinite index.
  EXPECT_EQ(policy.WindowPulls(new_arm), 0u);
  std::vector<double> scores;
  policy.ScoreArms(stats, &scores);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GE(scores[new_arm], 1e9);
  EXPECT_EQ(policy.SelectArm(stats, &rng), new_arm);
  // Once observed, the newborn joins normal windowed accounting.
  stats.Record(new_arm, 1.0);
  policy.Observe(new_arm, 1.0);
  EXPECT_EQ(policy.WindowPulls(new_arm), 1u);
}

TEST(SlidingUcbTest, NameAndClone) {
  SlidingUcbOptions opts;
  opts.window = 123;
  SlidingUcbPolicy policy(opts);
  EXPECT_EQ(policy.name(), "swucb(123)");
  auto clone = policy.Clone();
  EXPECT_EQ(clone->name(), "swucb(123)");
}

TEST(SlidingUcbDeathTest, RequiresReset) {
  SlidingUcbPolicy policy;
  ArmStats stats(2);
  Rng rng(5);
  EXPECT_DEATH(policy.SelectArm(stats, &rng), "Reset");
}

}  // namespace
}  // namespace zombie
