#include "data/corpus_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generator.h"

namespace zombie {
namespace {

Corpus SmallCorpus(size_t docs = 1000, uint64_t seed = 77) {
  SyntheticCorpusConfig cfg;
  cfg.num_documents = docs;
  cfg.common_vocabulary_size = 400;
  cfg.topic_vocabulary_size = 80;
  cfg.num_background_topics = 4;
  cfg.num_domains = 12;
  cfg.seed = seed;
  return SyntheticCorpusGenerator(cfg).Generate();
}

TEST(ArrivalScheduleTest, CoversSuffixExactlyOnce) {
  Corpus corpus = SmallCorpus();
  ArrivalScheduleOptions opts;
  std::vector<DocumentArrival> schedule =
      BuildArrivalSchedule(corpus, 600, opts);
  ASSERT_EQ(schedule.size(), 400u);
  std::set<uint32_t> seen;
  for (const DocumentArrival& a : schedule) {
    EXPECT_GE(a.doc_index, 600u);
    EXPECT_LT(a.doc_index, 1000u);
    EXPECT_TRUE(seen.insert(a.doc_index).second)
        << "doc " << a.doc_index << " scheduled twice";
  }
  EXPECT_EQ(seen.size(), 400u);
}

TEST(ArrivalScheduleTest, TimesAreStrictlyIncreasingAndRatePaced) {
  Corpus corpus = SmallCorpus();
  ArrivalScheduleOptions opts;
  opts.docs_per_virtual_second = 100.0;  // mean gap 10'000us
  opts.jitter = 0.5;                     // gaps in [5'000, 15'000]us
  std::vector<DocumentArrival> schedule =
      BuildArrivalSchedule(corpus, 900, opts);
  ASSERT_EQ(schedule.size(), 100u);
  int64_t prev = 0;
  for (const DocumentArrival& a : schedule) {
    int64_t gap = a.at_virtual_micros - prev;
    EXPECT_GE(gap, 5000 - 1);   // llround slack
    EXPECT_LE(gap, 15000 + 1);
    prev = a.at_virtual_micros;
  }
}

TEST(ArrivalScheduleTest, ZeroJitterIsPeriodic) {
  Corpus corpus = SmallCorpus();
  ArrivalScheduleOptions opts;
  opts.docs_per_virtual_second = 1000.0;
  opts.jitter = 0.0;
  std::vector<DocumentArrival> schedule =
      BuildArrivalSchedule(corpus, 990, opts);
  ASSERT_EQ(schedule.size(), 10u);
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].at_virtual_micros,
              static_cast<int64_t>(1000 * (i + 1)));
  }
}

TEST(ArrivalScheduleTest, DeterministicForSeedAndSensitiveToIt) {
  Corpus corpus = SmallCorpus();
  ArrivalScheduleOptions opts;
  opts.order = ArrivalOrder::kShuffled;
  std::vector<DocumentArrival> a = BuildArrivalSchedule(corpus, 500, opts);
  std::vector<DocumentArrival> b = BuildArrivalSchedule(corpus, 500, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc_index, b[i].doc_index);
    EXPECT_EQ(a[i].at_virtual_micros, b[i].at_virtual_micros);
  }
  opts.seed = 18;
  std::vector<DocumentArrival> c = BuildArrivalSchedule(corpus, 500, opts);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].doc_index != c[i].doc_index ||
               a[i].at_virtual_micros != c[i].at_virtual_micros;
  }
  EXPECT_TRUE(any_diff) << "seed change must move the schedule";
}

TEST(ArrivalScheduleTest, DomainGroupedOrderIsGroupedAndStable) {
  Corpus corpus = SmallCorpus();
  ArrivalScheduleOptions opts;
  opts.order = ArrivalOrder::kDomainGrouped;
  std::vector<DocumentArrival> schedule =
      BuildArrivalSchedule(corpus, 200, opts);
  // Each domain appears as one contiguous block...
  std::set<uint32_t> closed;
  uint32_t current = corpus.doc(schedule[0].doc_index).domain;
  uint32_t prev_index = 0;
  bool first = true;
  for (const DocumentArrival& a : schedule) {
    uint32_t d = corpus.doc(a.doc_index).domain;
    if (d != current) {
      EXPECT_TRUE(closed.insert(current).second)
          << "domain " << current << " appears in two blocks";
      current = d;
      first = true;
    }
    // ...and within a block, corpus order is preserved (stable sort).
    if (!first) EXPECT_GT(a.doc_index, prev_index);
    prev_index = a.doc_index;
    first = false;
  }
  EXPECT_EQ(closed.find(current), closed.end());
}

TEST(ScheduledCorpusSourceTest, SortsArrivalsAndValidates) {
  Corpus corpus = SmallCorpus(100);
  std::vector<DocumentArrival> arrivals;
  // Deliberately out of order; the constructor stably sorts by time.
  arrivals.push_back({3000, 99});
  arrivals.push_back({1000, 97});
  arrivals.push_back({2000, 98});
  ScheduledCorpusSource source(&corpus, 97, std::move(arrivals));
  ASSERT_EQ(source.arrivals().size(), 3u);
  EXPECT_EQ(source.arrivals()[0].doc_index, 97u);
  EXPECT_EQ(source.arrivals()[1].doc_index, 98u);
  EXPECT_EQ(source.arrivals()[2].doc_index, 99u);
  EXPECT_TRUE(source.Validate().ok());
}

TEST(ScheduledCorpusSourceTest, VisibleCountFollowsVirtualTime) {
  Corpus corpus = SmallCorpus(100);
  std::vector<DocumentArrival> arrivals;
  arrivals.push_back({1000, 98});
  arrivals.push_back({5000, 99});
  ScheduledCorpusSource source(&corpus, 98, std::move(arrivals));
  EXPECT_EQ(source.VisibleCount(0), 98u);
  EXPECT_EQ(source.VisibleCount(999), 98u);
  EXPECT_EQ(source.VisibleCount(1000), 99u);  // inclusive at the timestamp
  EXPECT_EQ(source.VisibleCount(4999), 99u);
  EXPECT_EQ(source.VisibleCount(5000), 100u);
  EXPECT_EQ(source.VisibleCount(1 << 30), 100u);
}

TEST(ScheduledCorpusSourceTest, RejectsBadSchedulesAtConstruction) {
  Corpus corpus = SmallCorpus(100);
  // The constructor ZCHECKs Validate(), so a bad schedule never produces a
  // usable source — it dies with the offending document in the message.
  EXPECT_DEATH(ScheduledCorpusSource(
                   &corpus, 98, std::vector<DocumentArrival>{{1000, 99}}),
               "arrivals");  // missing doc 98
  EXPECT_DEATH(
      ScheduledCorpusSource(&corpus, 98,
                            std::vector<DocumentArrival>{{1000, 99}, {2000, 99}}),
      "twice");
  EXPECT_DEATH(
      ScheduledCorpusSource(&corpus, 99,
                            std::vector<DocumentArrival>{{1000, 0}}),
      "outside");
}

TEST(ScheduledCorpusSourceTest, FullBaseMeansDrainedStream) {
  Corpus corpus = SmallCorpus(100);
  ArrivalScheduleOptions opts;
  std::vector<DocumentArrival> schedule =
      BuildArrivalSchedule(corpus, corpus.size(), opts);
  EXPECT_TRUE(schedule.empty());
  ScheduledCorpusSource source(&corpus, corpus.size(), std::move(schedule));
  EXPECT_TRUE(source.Validate().ok());
  EXPECT_EQ(source.VisibleCount(0), corpus.size());
}

}  // namespace
}  // namespace zombie
