// Tests for obs/decision_log: record bookkeeping, JSONL determinism, and
// the headline property — the serialized log is byte-identical no matter
// how many worker threads the experiment driver uses.

#include "obs/decision_log.h"

#include <string>
#include <vector>

#include "core/experiment_driver.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "gtest/gtest.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"

namespace zombie {
namespace {

DecisionRecord MakeRecord(uint64_t iter, uint32_t arm, double reward) {
  DecisionRecord r;
  r.iteration = iter;
  r.arm = arm;
  r.doc_id = 100 + arm;
  r.reward = reward;
  r.cache = CacheOutcome::kMiss;
  r.extraction_cost_micros = 12;
  r.virtual_micros = static_cast<int64_t>(iter) * 12;
  r.arm_scores = {0.5, reward};
  return r;
}

TEST(CacheOutcomeTest, Names) {
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kDisabled), "off");
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kMiss), "miss");
  EXPECT_STREQ(CacheOutcomeName(CacheOutcome::kHit), "hit");
}

TEST(DecisionLogTest, AppendRunAccumulates) {
  DecisionLog log;
  EXPECT_EQ(log.num_runs(), 0u);
  log.AppendRun("b", {MakeRecord(0, 1, 1.0)});
  log.AppendRun("a", {MakeRecord(0, 0, 0.0), MakeRecord(1, 2, 1.0)});
  EXPECT_EQ(log.num_runs(), 2u);
  EXPECT_EQ(log.num_records(), 3u);
  EXPECT_EQ(log.Records("a").size(), 2u);
  EXPECT_EQ(log.Records("b").size(), 1u);
  EXPECT_TRUE(log.Records("absent").empty());
  // Same label appends, preserving order.
  log.AppendRun("b", {MakeRecord(1, 3, 0.5)});
  std::vector<DecisionRecord> b = log.Records("b");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].arm, 1u);
  EXPECT_EQ(b[1].arm, 3u);
}

TEST(DecisionLogTest, JsonlIsLabelOrderedRegardlessOfCommitOrder) {
  DecisionLog forward;
  forward.AppendRun("run-a", {MakeRecord(0, 0, 1.0)});
  forward.AppendRun("run-b", {MakeRecord(0, 1, 0.0)});
  DecisionLog reversed;
  reversed.AppendRun("run-b", {MakeRecord(0, 1, 0.0)});
  reversed.AppendRun("run-a", {MakeRecord(0, 0, 1.0)});
  EXPECT_EQ(forward.ToJsonl(), reversed.ToJsonl());
  // One line per record, runs in label order.
  std::string jsonl = forward.ToJsonl();
  EXPECT_LT(jsonl.find("run-a"), jsonl.find("run-b"));
}

TEST(DecisionLogTest, JsonlLineShape) {
  DecisionLog log;
  log.AppendRun("lbl", {MakeRecord(7, 3, 0.25)});
  std::string jsonl = log.ToJsonl();
  EXPECT_NE(jsonl.find("\"run\": \"lbl\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"iter\": 7"), std::string::npos);
  EXPECT_NE(jsonl.find("\"arm\": 3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"cache\": \"miss\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"scores\": ["), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');
}

// The headline determinism property: running the same grid through the
// driver at different worker-thread counts serializes to identical bytes.
TEST(DecisionLogTest, DriverLogIsByteIdenticalAcrossThreadCounts) {
  Task task = MakeTask(TaskKind::kWebCat, 800, 42);
  KMeansGrouper grouper(8, 7);
  GroupingResult grouping = grouper.Group(task.corpus);
  LabelReward reward;
  NaiveBayesLearner learner;

  auto run_grid = [&](size_t threads) {
    ObsOptions obs_opts;
    obs_opts.metrics = false;
    obs_opts.trace = false;
    ObsContext obs(obs_opts);
    ExperimentDriverOptions dopts;
    dopts.num_threads = threads;
    dopts.engine.stop.max_items = 150;
    dopts.engine.holdout_size = 100;
    dopts.engine.obs = &obs;
    ExperimentDriver driver(&task.corpus, &task.pipeline, dopts);
    ExperimentGrid grid;
    grid.policies = {PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1};
    grid.groupings = {&grouping};
    grid.rewards = {&reward};
    grid.learners = {&learner};
    grid.seeds = {1, 2};
    StatusOr<std::vector<TrialResult>> results = driver.RunGrid(grid);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    EXPECT_EQ(obs.decisions()->num_runs(), 4u);
    return obs.decisions()->ToJsonl();
  };

  std::string serial = run_grid(1);
  std::string parallel = run_grid(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// Scores recorded at selection time: the engine must snapshot ScoreArms
// before feeding the pull's reward back (pinned here via record content —
// every record's score vector has one entry per arm).
TEST(DecisionLogTest, EngineRecordsCarryPerArmScores) {
  Task task = MakeTask(TaskKind::kWebCat, 600, 42);
  KMeansGrouper grouper(6, 7);
  GroupingResult grouping = grouper.Group(task.corpus);
  LabelReward reward;
  NaiveBayesLearner learner;

  ObsOptions obs_opts;
  obs_opts.metrics = false;
  obs_opts.trace = false;
  ObsContext obs(obs_opts);
  ExperimentDriverOptions dopts;
  dopts.engine.stop.max_items = 80;
  dopts.engine.holdout_size = 80;
  dopts.engine.obs = &obs;
  ExperimentDriver driver(&task.corpus, &task.pipeline, dopts);
  ExperimentGrid grid;
  grid.policies = {PolicyKind::kUcb1};
  grid.groupings = {&grouping};
  grid.rewards = {&reward};
  grid.learners = {&learner};
  grid.seeds = {1};
  StatusOr<std::vector<TrialResult>> results = driver.RunGrid(grid);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(obs.decisions()->num_runs(), 1u);
  std::vector<std::string> labels = obs.decisions()->Labels();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].find("ucb1"), 0u) << labels[0];
  EXPECT_NE(labels[0].find("/s1"), std::string::npos) << labels[0];
  std::vector<DecisionRecord> records = obs.decisions()->Records(labels[0]);
  ASSERT_FALSE(records.empty())
      << "expected records under label " << labels[0];
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].arm_scores.size(), grouping.num_groups());
    EXPECT_EQ(records[i].iteration, static_cast<uint64_t>(i));
    EXPECT_LT(records[i].arm, grouping.num_groups());
  }
}

}  // namespace
}  // namespace zombie
