#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace zombie {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), n / 100);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, LogNormalMeanMatches) {
  Rng rng(19);
  // mean of exp(N(mu, s)) = exp(mu + s^2/2); mu chosen for mean 100.
  double sigma = 0.5;
  double mu = std::log(100.0) - sigma * sigma / 2;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextLogNormal(mu, sigma);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GammaMeanMatches) {
  Rng rng(29);
  const int n = 100000;
  // Gamma(shape, scale) has mean shape*scale; exercise shape < 1 too.
  for (double shape : {0.5, 2.0, 5.0}) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape, 2.0);
    EXPECT_NEAR(sum / n, shape * 2.0, shape * 2.0 * 0.03) << "shape " << shape;
  }
}

TEST(RngTest, BetaStaysInUnitIntervalWithCorrectMean) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double b = rng.NextBeta(2.0, 3.0);
    ASSERT_GE(b, 0.0);
    ASSERT_LE(b, 1.0);
    sum += b;
  }
  EXPECT_NEAR(sum / n, 0.4, 0.01);  // alpha/(alpha+beta)
}

TEST(RngTest, ZipfRankZeroMostFrequent) {
  Rng rng(37);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(100, 1.1)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[50]);
  for (const auto& [rank, c] : counts) EXPECT_LT(rank, 100u);
}

TEST(RngTest, ZipfExponentZeroIsUniform) {
  Rng rng(41);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(43);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextZipf(1, 1.2), 0u);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(47);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    size_t pick = rng.NextDiscrete(weights);
    ASSERT_LT(pick, weights.size());
    ++counts[pick];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, DiscreteAllZeroReturnsSize) {
  Rng rng(53);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.NextDiscrete(weights), weights.size());
  EXPECT_EQ(rng.NextDiscrete({}), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
  // The fork differs from the parent's continued stream.
  Rng c(99);
  Rng fc = c.Fork();
  EXPECT_NE(fc.NextUint64(), c.NextUint64());
}

TEST(HashTest, HashBytesStableAndSensitive) {
  EXPECT_EQ(HashBytes("abc", 3), HashBytes("abc", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abc", 2));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

}  // namespace
}  // namespace zombie
