#include "index/incremental_grouper.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/generator.h"

namespace zombie {
namespace {

Corpus TestCorpus(size_t docs = 800, uint64_t seed = 41) {
  SyntheticCorpusConfig cfg;
  cfg.num_documents = docs;
  cfg.common_vocabulary_size = 500;
  cfg.topic_vocabulary_size = 100;
  cfg.num_background_topics = 6;
  cfg.num_domains = 10;
  cfg.seed = seed;
  return SyntheticCorpusGenerator(cfg).Generate();
}

// ---------------------------------------------------------------------------
// k-means
// ---------------------------------------------------------------------------

TEST(IncrementalKMeansTest, GroupBaseCoversPrefixAndValidates) {
  Corpus corpus = TestCorpus();
  IncrementalKMeansOptions opts;
  opts.num_groups = 8;
  IncrementalKMeansGrouper grouper(opts);
  GroupingResult grouping = grouper.GroupBase(corpus, 600);
  EXPECT_TRUE(grouping.Validate(600).ok());
  EXPECT_EQ(grouping.num_groups(), grouper.num_groups());
  std::set<uint32_t> covered;
  for (const auto& g : grouping.groups) {
    for (uint32_t d : g) {
      EXPECT_LT(d, 600u) << "base grouping must not touch the suffix";
      covered.insert(d);
    }
  }
  EXPECT_EQ(covered.size(), 600u);
}

TEST(IncrementalKMeansTest, AssignIsDeterministicAndAppendsToOneGroup) {
  Corpus corpus = TestCorpus();
  IncrementalKMeansOptions opts;
  opts.num_groups = 8;
  opts.split_threshold = 1u << 20;  // never split in this test
  IncrementalKMeansGrouper a(opts);
  IncrementalKMeansGrouper b(opts);
  a.GroupBase(corpus, 600);
  b.GroupBase(corpus, 600);
  for (uint32_t d = 600; d < 700; ++d) {
    IngestAssignment ia = a.AssignOrSplit(corpus, d);
    IngestAssignment ib = b.AssignOrSplit(corpus, d);
    ASSERT_EQ(ia.groups.size(), 1u) << "kmeans assigns to exactly one group";
    EXPECT_EQ(ia.groups, ib.groups);
    EXPECT_TRUE(ia.new_groups.empty());
    EXPECT_LT(ia.groups[0], a.num_groups());
  }
  EXPECT_EQ(a.num_splits(), 0u);
  EXPECT_EQ(a.num_groups(), 8u);
}

TEST(IncrementalKMeansTest, OverflowTriggersDeterministicSplit) {
  Corpus corpus = TestCorpus();
  IncrementalKMeansOptions opts;
  opts.num_groups = 2;       // big fat groups...
  opts.split_threshold = 8;  // ...that overflow almost immediately
  IncrementalKMeansGrouper grouper(opts);
  IncrementalKMeansGrouper twin(opts);
  grouper.GroupBase(corpus, 64);
  twin.GroupBase(corpus, 64);
  size_t groups_before = grouper.num_groups();
  bool saw_split = false;
  for (uint32_t d = 64; d < 200; ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    IngestAssignment b = twin.AssignOrSplit(corpus, d);
    ASSERT_EQ(a.groups, b.groups);
    ASSERT_EQ(a.new_groups.size(), b.new_groups.size());
    for (size_t i = 0; i < a.new_groups.size(); ++i) {
      saw_split = true;
      const NewGroupSeed& seed = a.new_groups[i];
      // Splits record their source group and move a non-empty member set.
      EXPECT_NE(seed.source_group, kNoSourceGroup);
      EXPECT_FALSE(seed.members.empty());
      EXPECT_EQ(seed.members, b.new_groups[i].members);
      for (uint32_t m : seed.members) EXPECT_LT(m, 200u);
    }
  }
  EXPECT_TRUE(saw_split) << "split_threshold=8 over 136 arrivals must split";
  EXPECT_GT(grouper.num_groups(), groups_before);
  EXPECT_EQ(grouper.num_splits(), twin.num_splits());
  EXPECT_EQ(grouper.num_groups(),
            groups_before + grouper.num_splits());
}

TEST(IncrementalKMeansTest, MaxGroupsCapStopsSplitsButNotAssignment) {
  Corpus corpus = TestCorpus();
  IncrementalKMeansOptions opts;
  opts.num_groups = 2;
  opts.split_threshold = 4;
  opts.max_groups = 3;  // one split allowed, then capped
  IncrementalKMeansGrouper grouper(opts);
  grouper.GroupBase(corpus, 64);
  for (uint32_t d = 64; d < 400; ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    ASSERT_EQ(a.groups.size(), 1u);
    EXPECT_LE(grouper.num_groups(), 3u);
  }
  EXPECT_EQ(grouper.num_groups(), 3u);
  EXPECT_EQ(grouper.num_splits(), 1u);
}

TEST(IncrementalKMeansTest, CloneIsIndependentDeepCopy) {
  Corpus corpus = TestCorpus();
  IncrementalKMeansOptions opts;
  opts.num_groups = 4;
  opts.split_threshold = 8;
  IncrementalKMeansGrouper grouper(opts);
  grouper.GroupBase(corpus, 100);
  std::unique_ptr<IncrementalGrouper> clone = grouper.Clone();
  // Drive the clone and the original with the same stream: identical
  // decisions (Clone copies all state)...
  for (uint32_t d = 100; d < 150; ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    IngestAssignment b = clone->AssignOrSplit(corpus, d);
    EXPECT_EQ(a.groups, b.groups);
    ASSERT_EQ(a.new_groups.size(), b.new_groups.size());
  }
  // ...then drive only the clone further: the original must not move.
  size_t original_groups = grouper.num_groups();
  for (uint32_t d = 150; d < 300; ++d) clone->AssignOrSplit(corpus, d);
  EXPECT_EQ(grouper.num_groups(), original_groups);
}

// ---------------------------------------------------------------------------
// metadata
// ---------------------------------------------------------------------------

// A handmade corpus with a controlled domain sequence: documents take the
// domains listed in `domains`, in order. Lets the tests stage "a never-seen
// domain arrives mid-stream" deterministically.
Corpus DomainCorpus(const std::vector<uint32_t>& domains) {
  Corpus corpus;
  uint32_t t0 = corpus.mutable_vocabulary().GetOrAdd("alpha");
  uint32_t t1 = corpus.mutable_vocabulary().GetOrAdd("beta");
  corpus.mutable_vocabulary().Freeze();
  uint32_t max_domain = 0;
  for (uint32_t d : domains) max_domain = std::max(max_domain, d);
  for (uint32_t d = 0; d <= max_domain; ++d) {
    corpus.AddDomain("site" + std::to_string(d) + ".example.com");
  }
  for (size_t i = 0; i < domains.size(); ++i) {
    Document doc;
    doc.id = i;
    doc.tokens = {t0, t1};
    doc.label = static_cast<int32_t>(i % 2);
    doc.domain = domains[i];
    doc.extraction_cost_micros = 100;
    corpus.AddDocument(std::move(doc));
  }
  return corpus;
}

TEST(IncrementalMetadataTest, NewDomainOpensGroupBelowCap) {
  // Base (first 4 docs) sees only domains 0 and 1; the stream brings the
  // never-seen domains 2 and 3, plus repeats.
  Corpus corpus = DomainCorpus({0, 1, 0, 1, /*stream:*/ 2, 0, 3, 2});
  IncrementalMetadataGrouper grouper({/*max_groups=*/64});
  GroupingResult grouping = grouper.GroupBase(corpus, 4);
  EXPECT_TRUE(grouping.Validate(4).ok());
  ASSERT_EQ(grouper.num_groups(), 2u);

  std::set<uint32_t> seen = {0, 1};
  for (uint32_t d = 4; d < corpus.size(); ++d) {
    bool fresh = seen.insert(corpus.doc(d).domain).second;
    size_t before = grouper.num_groups();
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    ASSERT_EQ(a.groups.size(), 1u);
    if (fresh) {
      ASSERT_EQ(a.new_groups.size(), 1u);
      EXPECT_EQ(a.new_groups[0].source_group, kNoSourceGroup)
          << "a new domain is not a split";
      EXPECT_TRUE(a.new_groups[0].members.empty())
          << "engine appends the arrival itself via a.groups";
      EXPECT_EQ(a.groups[0], before) << "new group takes the next id";
      EXPECT_EQ(grouper.num_groups(), before + 1);
    } else {
      EXPECT_TRUE(a.new_groups.empty());
      EXPECT_EQ(grouper.num_groups(), before);
    }
  }
  EXPECT_EQ(grouper.num_groups(), 4u);
}

TEST(IncrementalMetadataTest, AtCapNewDomainsFoldInByHash) {
  Corpus corpus = DomainCorpus({0, 1, /*stream:*/ 2, 3, 4, 5, 2, 3});
  IncrementalMetadataGrouper grouper({/*max_groups=*/2});
  grouper.GroupBase(corpus, 2);
  ASSERT_EQ(grouper.num_groups(), 2u);
  std::vector<size_t> first_assignment(6, 0);
  for (uint32_t d = 2; d < corpus.size(); ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    ASSERT_EQ(a.groups.size(), 1u);
    EXPECT_LT(a.groups[0], 2u) << "at the cap everything folds into "
                                  "existing groups";
    EXPECT_TRUE(a.new_groups.empty());
    uint32_t domain = corpus.doc(d).domain;
    if (d < 6) {
      first_assignment[domain] = a.groups[0];
    } else {
      // Hash-folding is sticky: a repeated domain lands where it first did.
      EXPECT_EQ(a.groups[0], first_assignment[domain]);
    }
  }
  EXPECT_EQ(grouper.num_groups(), 2u);
}

TEST(IncrementalMetadataTest, CloneCarriesDomainMap) {
  Corpus corpus = DomainCorpus({0, 1, /*stream:*/ 2, 0, 3, 2, 1, 3});
  IncrementalMetadataGrouper grouper({/*max_groups=*/64});
  grouper.GroupBase(corpus, 2);
  std::unique_ptr<IncrementalGrouper> clone = grouper.Clone();
  for (uint32_t d = 2; d < corpus.size(); ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    IngestAssignment b = clone->AssignOrSplit(corpus, d);
    EXPECT_EQ(a.groups, b.groups);
    EXPECT_EQ(a.new_groups.size(), b.new_groups.size());
  }
  EXPECT_EQ(grouper.num_groups(), clone->num_groups());
}

// ---------------------------------------------------------------------------
// token
// ---------------------------------------------------------------------------

TEST(IncrementalTokenTest, AppendOnlyWithCatchAllFallback) {
  Corpus corpus = TestCorpus();
  IncrementalTokenGrouper grouper;
  GroupingResult grouping = grouper.GroupBase(corpus, 600);
  EXPECT_TRUE(grouping.Validate(600).ok());
  // The catch-all always exists: group count = token groups + 1.
  ASSERT_GE(grouper.num_groups(), 1u);
  const size_t catch_all = grouper.num_groups() - 1;
  bool used_catch_all = false;
  for (uint32_t d = 600; d < corpus.size(); ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    EXPECT_TRUE(a.new_groups.empty()) << "token grouper is append-only";
    ASSERT_FALSE(a.groups.empty());
    for (size_t g : a.groups) EXPECT_LT(g, grouper.num_groups());
    if (a.groups.size() == 1 && a.groups[0] == catch_all) {
      used_catch_all = true;
    }
    // Group list has no duplicates (first-mention order).
    std::vector<size_t> sorted = a.groups;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
  EXPECT_EQ(grouper.num_groups(), grouping.num_groups());
  (void)used_catch_all;  // depends on vocabulary; not asserted
}

TEST(IncrementalTokenTest, CatchAllCatchesDocWithNoIndexedToken) {
  Corpus corpus = TestCorpus();
  TokenGrouperOptions opts;
  // Impossibly tight DF band: no token qualifies, everything lands in the
  // catch-all — which must still exist (unlike the offline TokenGrouper,
  // where a fully-covering table can omit it).
  opts.min_df_fraction = 0.999;
  opts.max_df_fraction = 0.9999;
  IncrementalTokenGrouper grouper(opts);
  GroupingResult grouping = grouper.GroupBase(corpus, 600);
  EXPECT_TRUE(grouping.Validate(600).ok());
  EXPECT_EQ(grouper.num_groups(), 1u);
  for (uint32_t d = 600; d < 620; ++d) {
    IngestAssignment a = grouper.AssignOrSplit(corpus, d);
    ASSERT_EQ(a.groups.size(), 1u);
    EXPECT_EQ(a.groups[0], 0u);
  }
}

TEST(IncrementalTokenTest, CloneSharesNoState) {
  Corpus corpus = TestCorpus();
  IncrementalTokenGrouper grouper;
  grouper.GroupBase(corpus, 600);
  std::unique_ptr<IncrementalGrouper> clone = grouper.Clone();
  EXPECT_EQ(clone->num_groups(), grouper.num_groups());
  for (uint32_t d = 600; d < 650; ++d) {
    EXPECT_EQ(grouper.AssignOrSplit(corpus, d).groups,
              clone->AssignOrSplit(corpus, d).groups);
  }
}

}  // namespace
}  // namespace zombie
