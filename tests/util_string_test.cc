#include "util/string_util.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLowerAscii("MiXeD 123 Case"), "mixed 123 case");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(StripTest, Whitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("\t\na b\r\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
  // Long outputs are not truncated.
  std::string lots = StrFormat("%0500d", 1);
  EXPECT_EQ(lots.size(), 500u);
}

}  // namespace
}  // namespace zombie
