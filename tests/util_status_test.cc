#include "util/status.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Exhausted("x").code(), StatusCode::kExhausted);
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kExhausted), "Exhausted");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, AccessOnErrorAborts) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH((void)v.value(), "boom");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    ZOMBIE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    ZOMBIE_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace zombie
