#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace zombie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Exhausted("x").code(), StatusCode::kExhausted);
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kExhausted), "Exhausted");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  ASSERT_TRUE(v.ok());
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, AccessOnErrorAborts) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH((void)v.value(), "boom");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    ZOMBIE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    ZOMBIE_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kInvalidArgument);
}

// StatusOr stores its payload in a std::optional, so T does not need a
// default constructor (regression test for the old `T value_{};` storage).
struct NoDefault {
  explicit NoDefault(int v) : value(v) {}
  int value;
};

TEST(StatusOrTest, NonDefaultConstructiblePayload) {
  StatusOr<NoDefault> ok_or(NoDefault(7));
  ASSERT_TRUE(ok_or.ok());
  EXPECT_EQ(ok_or.value().value, 7);

  StatusOr<NoDefault> err_or(Status::NotFound("missing"));
  ASSERT_FALSE(err_or.ok());
  EXPECT_EQ(err_or.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

TEST(StatusTest, AssignOrReturnUnwrapsValue) {
  auto produce = []() -> StatusOr<int> { return 41; };
  auto consume = [&]() -> StatusOr<int> {
    ZOMBIE_ASSIGN_OR_RETURN(int x, produce());
    return x + 1;
  };
  StatusOr<int> result = consume();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusTest, AssignOrReturnPropagatesError) {
  bool reached_end = false;
  auto produce = []() -> StatusOr<int> {
    return Status::Exhausted("drained");
  };
  auto consume = [&]() -> Status {
    ZOMBIE_ASSIGN_OR_RETURN(int x, produce());
    (void)x;
    reached_end = true;
    return Status::OK();
  };
  Status st = consume();
  EXPECT_EQ(st.code(), StatusCode::kExhausted);
  EXPECT_EQ(st.message(), "drained");
  EXPECT_FALSE(reached_end);
}

TEST(StatusTest, AssignOrReturnAssignsToExistingVariable) {
  auto produce = []() -> StatusOr<std::string> {
    return std::string("fresh");
  };
  std::string target = "stale";
  auto consume = [&]() -> Status {
    ZOMBIE_ASSIGN_OR_RETURN(target, produce());
    return Status::OK();
  };
  ASSERT_TRUE(consume().ok());
  EXPECT_EQ(target, "fresh");
}

TEST(StatusTest, AssignOrReturnMovesTheValue) {
  auto produce = []() -> StatusOr<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  auto consume = [&]() -> StatusOr<int> {
    ZOMBIE_ASSIGN_OR_RETURN(std::unique_ptr<int> p, produce());
    return *p;
  };
  StatusOr<int> result = consume();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 9);
}

}  // namespace
}  // namespace zombie
