#include <atomic>
#include <cstdint>
#include <string>

namespace zombie {

// BAD: plain mutable global.
int g_pull_count = 0;

// BAD: atomics are thread-safe but still hidden process state.
std::atomic<uint64_t> g_epoch{0};

namespace detail {
// BAD: nested namespaces do not launder globals.
std::string g_last_label;
}  // namespace detail

}  // namespace zombie

// BAD: file-scope counts as namespace scope too.
double g_budget = 1.5;
