#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace zombie {

// const/constexpr/constinit globals carry no hidden mutable state.
constexpr int kMaxArms = 64;
const char* const kDefaultLabel = "run";
constinit std::atomic<uint64_t> kEpochBase{0};

// Function declarations and definitions are not variables.
int PullCount();
int PullCount() { return 0; }

// The registered-singleton pattern: a function-local static behind an
// accessor, constructed on first use.
std::vector<int>& RegisteredIds() {
  static std::vector<int> ids;
  return ids;
}

// Locals and class members are out of the rule's scope.
struct Session {
  int pulls = 0;
};

// Aliases/using declarations are not variables.
using Label = std::string;

// The escape hatch names the exact rule.
std::atomic<int> g_verbosity{1};  // zombie-lint: allow(no-mutable-global)

}  // namespace zombie
