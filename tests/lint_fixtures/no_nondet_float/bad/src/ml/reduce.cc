#include <execution>
#include <numeric>
#include <vector>

#pragma float_control(precise, off)

namespace zombie {

// BAD on three counts: <execution> include, fast-math-style pragma above,
// and std::reduce's unspecified accumulation order below.
double Sum(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  return std::transform_reduce(a.begin(), a.end(), b.begin(), 0.0);
}

}  // namespace zombie
