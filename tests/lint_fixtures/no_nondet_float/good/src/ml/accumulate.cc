#include <numeric>
#include <vector>

// Turning contraction OFF tightens determinism; only relaxations are
// findings.
#pragma STDC FP_CONTRACT OFF

namespace zombie {

// std::accumulate is sequential left-to-right: exactly the FP-order
// contract.
double Sum(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

// An identifier merely *named* reduce is not std::reduce.
double reduce(double a, double b) { return a + b; }

}  // namespace zombie
