#include <immintrin.h>

namespace zombie {

// BAD: raw intrinsics in src/ml/ but outside src/ml/simd/ — no cpuid gate
// guards this code path and no per-TU ISA flag scopes the codegen.
double FastDot(const double* a, const double* b) {
  __m256d va = _mm256_loadu_pd(a);
  __m256d vb = _mm256_loadu_pd(b);
  __m256d prod = _mm256_mul_pd(va, vb);
  double out[4];
  _mm256_storeu_pd(out, prod);
  return out[0] + out[1] + out[2] + out[3];
}

}  // namespace zombie
