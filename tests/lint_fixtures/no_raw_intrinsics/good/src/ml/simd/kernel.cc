#include <immintrin.h>

namespace zombie {

// src/ml/simd/ is the one home for vendor intrinsics: the dispatch table
// only routes here after cpuid confirms the ISA, and the TU carries the
// matching -m flags plus -ffp-contract=off.
double Sum4(const double* v) {
  __m256d lanes = _mm256_loadu_pd(v);
  double out[4];
  _mm256_storeu_pd(out, lanes);
  double s = 0.0;
  s += out[0];
  s += out[1];
  s += out[2];
  s += out[3];
  return s;
}

}  // namespace zombie
