namespace zombie {

double KernelDot(const double* a, const double* b, unsigned long n);

// Outside src/ml/simd/ the kernels are reached through the dispatch
// declarations only — no intrinsics, no <*intrin.h> include.
double Score(const double* a, const double* b, unsigned long n) {
  return KernelDot(a, b, n);
}

}  // namespace zombie
