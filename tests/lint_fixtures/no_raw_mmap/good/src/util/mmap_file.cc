#include <sys/mman.h>

namespace zombie {

// src/util/ is the one home for the raw mapping syscalls (MmapFile).
void* MapFile(int fd, unsigned long size) {
  return mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
}

void UnmapFile(void* p, unsigned long size) {
  msync(p, size, MS_SYNC);
  munmap(p, size);
}

}  // namespace zombie
