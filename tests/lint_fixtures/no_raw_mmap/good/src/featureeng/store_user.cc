namespace zombie {

class MmapFile;

// Using the wrapper (util/mmap_file.h) is the sanctioned path; the words
// appear only as type/member names, never as the banned syscalls.
unsigned long MappedSize(const MmapFile* file);

unsigned long StoreBytes(const MmapFile* file) {
  // A vetted direct call can opt out in place:
  // (void)msync(nullptr, 0, 0);  // zombie-lint: allow(no-raw-mmap)
  return MappedSize(file);
}

}  // namespace zombie
