#include <sys/mman.h>

namespace zombie {

void* MapScratch(int fd, unsigned long size) {
  // BAD: raw mmap outside src/util/; MmapFile owns the mapping syscalls.
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  // BAD: raw msync outside src/util/.
  msync(p, size, MS_SYNC);
  // BAD: raw munmap outside src/util/.
  munmap(p, size);
  return p;
}

}  // namespace zombie
