#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace zombie {

// Lookup (no traversal) on an unordered container is fine.
uint64_t LookupOnly(const std::unordered_map<uint32_t, uint64_t>& pulls,
                    uint32_t arm) {
  auto it = pulls.find(arm);
  return it == pulls.end() ? 0 : it->second;
}

// Copy-keys-and-sort is the sanctioned traversal recipe: order comes from
// the sort, not the hash seed.
std::vector<uint32_t> SortedKeys(
    const std::unordered_map<uint32_t, uint64_t>& pulls,
    const std::vector<uint32_t>& universe) {
  std::vector<uint32_t> keys;
  for (uint32_t arm : universe) {
    if (pulls.count(arm) != 0) keys.push_back(arm);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Ordered containers iterate deterministically; no finding. (Named
// distinctly from the unordered params above: the symbol table is
// file-wide by design, so reusing an unordered-declared name for an
// ordered container would — intentionally — still flag.)
uint64_t SumOrdered(const std::map<uint32_t, uint64_t>& by_arm) {
  uint64_t sum = 0;
  for (const auto& kv : by_arm) sum += kv.second;
  return sum;
}

// The escape hatch still works when order provably cannot reach results.
uint64_t SumSuppressed(const std::unordered_map<uint32_t, uint64_t>& pulls) {
  uint64_t sum = 0;
  for (const auto& kv : pulls) sum += kv.second;  // zombie-lint: allow(no-unordered-iteration)
  return sum;
}

}  // namespace zombie
