#include <cstdint>
#include <unordered_map>

namespace zombie {

// src/util/ is outside the result-affecting dirs (src/core, src/bandit,
// src/ml, src/featureeng), so iteration here is not flagged.
uint64_t SumOutsideRestrictedDirs(
    const std::unordered_map<uint32_t, uint64_t>& counts) {
  uint64_t sum = 0;
  for (const auto& kv : counts) sum += kv.second;
  return sum;
}

}  // namespace zombie
