#include "core/state.h"

namespace zombie {

uint64_t ArmState::Total() const {
  uint64_t sum = 0;
  // BAD: range-for over an unordered member declared in the header.
  for (const auto& kv : pulls_) {
    sum += kv.second;
  }
  return sum;
}

void ArmState::Tick() {
  // BAD: explicit iterator loop over an unordered member.
  for (auto it = seen_.begin(); it != seen_.end(); ++it) {
    (void)*it;
  }
}

uint64_t SumLocal() {
  std::unordered_map<int, int> local{{1, 2}};
  uint64_t sum = 0;
  // BAD: range-for over a locally declared unordered map.
  for (const auto& kv : local) {
    sum += static_cast<uint64_t>(kv.second);
  }
  return sum;
}

}  // namespace zombie
