#ifndef ZOMBIE_CORE_STATE_H_
#define ZOMBIE_CORE_STATE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace zombie {

// The member types live in this header; the iteration lives in the .cc —
// the rule must connect them through the include graph.
class ArmState {
 public:
  uint64_t Total() const;
  void Tick();

 private:
  std::unordered_map<uint32_t, uint64_t> pulls_;
  std::unordered_set<uint32_t> seen_;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_STATE_H_
