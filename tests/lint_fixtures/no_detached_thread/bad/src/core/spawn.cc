#include <thread>

namespace zombie {

void FireAndForget() {
  // BAD: raw std::thread outside src/util/thread_pool.
  std::thread worker([] {});
  // BAD: detach abandons the thread past every join/shutdown invariant.
  worker.detach();
}

}  // namespace zombie
