#include <thread>
#include <vector>

namespace zombie {

// src/util/thread_pool.* is the one home for raw std::thread construction.
void Spawn(std::vector<std::thread>* threads) {
  threads->emplace_back([] {});
}

}  // namespace zombie
