#include <cstddef>
#include <thread>

namespace zombie {

// Type-level std::thread uses are not thread construction.
std::thread::id MainId() { return std::thread::id{}; }

size_t Parallelism() { return std::thread::hardware_concurrency(); }

}  // namespace zombie
