// End-to-end fixture tests for tools/zombie_lint.cc: write snippets into a
// temporary tree, run the real linter binary over it, and assert on the exit
// code and the reported rules. The binary path is injected by CMake via
// ZOMBIE_LINT_BINARY.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace zombie {
namespace {

namespace fs = std::filesystem;

#ifndef ZOMBIE_LINT_BINARY
#error "ZOMBIE_LINT_BINARY must be defined by the build"
#endif

struct LintRun {
  int exit_code;
  std::string output;
};

// Runs the linter on `root` and captures combined stdout+stderr.
LintRun RunLint(const fs::path& root) {
  std::string cmd = std::string(ZOMBIE_LINT_BINARY) + " " + root.string() +
                    " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 512> buf;
  while (pipe != nullptr &&
         std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    output += buf.data();
  }
  int raw = pipe != nullptr ? pclose(pipe) : -1;
  int code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return {code, output};
}

class ZombieLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("zombie_lint_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
  }

  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  fs::path src() const { return root_ / "src"; }

  fs::path root_;
};

TEST_F(ZombieLintTest, CleanFilePasses) {
  WriteFile("src/good.cc",
            "#include <string>\n"
            "namespace zombie {\n"
            "int Add(int a, int b) { return a + b; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RejectsThrowRandAndCout) {
  WriteFile("src/bad.cc",
            "#include <cstdlib>\n"
            "#include <iostream>\n"
            "namespace zombie {\n"
            "int Roll() {\n"
            "  if (rand() > 100) throw 1;\n"
            "  std::cout << \"rolled\\n\";\n"
            "  return 0;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-throw"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("no-raw-random"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("no-stdout"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, AllowCommentSuppressesFinding) {
  WriteFile("src/suppressed.cc",
            "namespace zombie {\n"
            "int Roll(int (*rand)());  // zombie-lint: allow(no-raw-random)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, SuppressionIsPerRule) {
  // The allow() names a different rule, so the finding must still fire.
  WriteFile("src/wrong_rule.cc",
            "namespace zombie {\n"
            "int Roll(int (*rand)());  // zombie-lint: allow(no-stdout)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-random"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, TokensInCommentsAndStringsDoNotTrigger) {
  WriteFile("src/commented.cc",
            "// This comment mentions throw, rand(), and std::cout freely.\n"
            "/* block comment: srand random_device printf */\n"
            "namespace zombie {\n"
            "const char* Help() { return \"try rand() or std::cout\"; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, SubstringIdentifiersDoNotTrigger) {
  // "operand", "entry", "catchup" contain banned tokens as substrings only.
  // (Locals, not globals, so no-mutable-global stays quiet too.)
  WriteFile("src/substrings.cc",
            "namespace zombie {\n"
            "int Sum() {\n"
            "  int operand = 0;\n"
            "  int entry = 1;\n"
            "  int catchup = 2;\n"
            "  int sprintf_like = 3;\n"
            "  return operand + entry + catchup + sprintf_like;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RandomImplFileIsExempt) {
  WriteFile("src/util/random.cc",
            "namespace zombie {\n"
            "unsigned Seed() { return 42; /* may mention rand_r */ }\n"
            "int Entropy() { return srand(1), 0; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RejectsRawClockNow) {
  WriteFile("src/core/timer.cc",
            "#include <chrono>\n"
            "namespace zombie {\n"
            "long Now() {\n"
            "  return std::chrono::steady_clock::now().time_since_epoch()\n"
            "      .count();\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-clock"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, RejectsSystemAndHighResolutionClockNow) {
  WriteFile("src/core/clocks.cc",
            "#include <chrono>\n"
            "namespace zombie {\n"
            "auto A() { return std::chrono::system_clock::now(); }\n"
            "auto B() { return std::chrono::high_resolution_clock::now(); }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("system_clock"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("high_resolution_clock"), std::string::npos)
      << run.output;
}

TEST_F(ZombieLintTest, ClockTypeWithoutNowDoesNotTrigger) {
  // Declaring a time_point type is not a clock read.
  WriteFile("src/core/types.cc",
            "#include <chrono>\n"
            "namespace zombie {\n"
            "using TimePoint = std::chrono::steady_clock::time_point;\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, ClockImplAndObsFilesAreExemptFromRawClock) {
  const char* body =
      "#include <chrono>\n"
      "namespace zombie {\n"
      "long Now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch()"
      ".count();\n"
      "}\n"
      "}  // namespace zombie\n";
  WriteFile("src/util/clock.cc", body);
  WriteFile("src/obs/sampler.cc", body);
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, AllowCommentSuppressesRawClock) {
  WriteFile("src/core/special.cc",
            "#include <chrono>\n"
            "namespace zombie {\n"
            "auto T() { return std::chrono::steady_clock::now(); }"
            "  // zombie-lint: allow(no-raw-clock)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RejectsStringVectorOnHotPath) {
  WriteFile("src/featureeng/bad_tokens.cc",
            "#include <string>\n"
            "#include <vector>\n"
            "namespace zombie {\n"
            "std::vector<std::string> CollectTokens();\n"
            "}  // namespace zombie\n");
  WriteFile("src/core/bad_core.cc",
            "#include <string>\n"
            "#include <vector>\n"
            "namespace zombie {\n"
            "std::vector<std::string> Names();\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-hot-path-string-copy"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("bad_tokens.cc"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("bad_core.cc"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, StringVectorMatchToleratesWhitespace) {
  WriteFile("src/core/spaced.cc",
            "#include <string>\n"
            "#include <vector>\n"
            "namespace zombie {\n"
            "std::vector< std::string > Spaced();\n"
            "std::vector<\n"
            "    std::string>\n"
            "Wrapped();\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The single-line spelling must be caught despite the extra spaces, and —
  // since the linter matches token sequences, not lines — the declaration
  // wrapped across lines 5-7 must be caught too.
  EXPECT_NE(run.output.find("spaced.cc:4"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("spaced.cc:5"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, StringVectorOutsideHotPathIsFine) {
  // util/ and text/ may own strings; only featureeng/ and core/ are hot.
  WriteFile("src/util/strings.cc",
            "#include <string>\n"
            "#include <vector>\n"
            "namespace zombie {\n"
            "std::vector<std::string> Split();\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, AllowCommentSuppressesStringVector) {
  WriteFile("src/core/setup.cc",
            "#include <string>\n"
            "#include <vector>\n"
            "namespace zombie {\n"
            "std::vector<std::string> Labels();"
            "  // zombie-lint: allow(no-hot-path-string-copy)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RejectsRawExtractOutsideFeatureeng) {
  WriteFile("src/core/direct.cc",
            "namespace zombie {\n"
            "void A(P* p, const D& d, const C& c) { p->Extract(d, c); }\n"
            "void B(P& p, const D& d, const C& c) { p.Extract(d, c); }\n"
            "void C2(P& p, const D& d, const C& c) { p . Extract (d, c); }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-extract-outside-service"),
            std::string::npos)
      << run.output;
  // All three spellings (->, ., whitespace-spaced) must be caught.
  EXPECT_NE(run.output.find("direct.cc:2"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("direct.cc:3"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("direct.cc:4"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, RawExtractInsideFeatureengIsFine) {
  // The extraction layer implements the service; it may call Extract.
  WriteFile("src/featureeng/service.cc",
            "namespace zombie {\n"
            "void F(P* p, const D& d, const C& c) { p->Extract(d, c); }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, ExtractLikeIdentifiersDoNotTrigger) {
  // Prefixed/suffixed method names and non-call uses are not findings.
  WriteFile("src/core/lookalikes.cc",
            "namespace zombie {\n"
            "void A(W& w) { w.ExtractAll(); }\n"
            "void B(W& w) { w.ReExtract(); }\n"
            "void C(W& w) { auto f = &W::Extract; (void)f; (void)w; }\n"
            "// comment may say pipeline->Extract(doc) freely\n"
            "const char* D() { return \"call .Extract( here\"; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, AllowCommentSuppressesRawExtract) {
  WriteFile("src/core/special_extract.cc",
            "namespace zombie {\n"
            "void F(P* p, const D& d, const C& c) { p->Extract(d, c); }"
            "  // zombie-lint: allow(no-raw-extract-outside-service)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, HeaderGuardMustMatchPath) {
  WriteFile("src/util/widget.h",
            "#ifndef WRONG_GUARD_H\n"
            "#define WRONG_GUARD_H\n"
            "#endif  // WRONG_GUARD_H\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("header-guard"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("ZOMBIE_UTIL_WIDGET_H_"), std::string::npos)
      << run.output;
}

TEST_F(ZombieLintTest, CorrectHeaderGuardPasses) {
  WriteFile("src/util/widget.h",
            "#ifndef ZOMBIE_UTIL_WIDGET_H_\n"
            "#define ZOMBIE_UTIL_WIDGET_H_\n"
            "#endif  // ZOMBIE_UTIL_WIDGET_H_\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, MissingHeaderGuardIsReported) {
  WriteFile("src/util/bare.h", "namespace zombie {}\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("missing #ifndef"), std::string::npos)
      << run.output;
}

// --- suppression matching is exact per rule token -------------------------

TEST_F(ZombieLintTest, SuppressionRequiresExactRuleToken) {
  // A longer rule name sharing the real one as a prefix must not suppress.
  WriteFile("src/prefix_rule.cc",
            "namespace zombie {\n"
            "int Roll(int (*rand)());  // zombie-lint: allow(no-raw-random-x)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-random"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, SuppressionPrefixOfRuleDoesNotSuppress) {
  // A shorter prefix of the rule name must not suppress either.
  WriteFile("src/short_rule.cc",
            "namespace zombie {\n"
            "int Roll(int (*rand)());  // zombie-lint: allow(no-raw)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-random"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, SuppressionAcceptsCommaList) {
  WriteFile("src/multi_rule.cc",
            "namespace zombie {\n"
            "int Roll(int (*rand)()) { return 0; }"
            "  // zombie-lint: allow(no-stdout, no-raw-random)\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- no-unordered-iteration -----------------------------------------------

TEST_F(ZombieLintTest, RejectsRangeForOverUnorderedMap) {
  WriteFile("src/core/iter.cc",
            "#include <unordered_map>\n"
            "namespace zombie {\n"
            "int Sum(const std::unordered_map<int, int>& m) {\n"
            "  int s = 0;\n"
            "  for (const auto& kv : m) s += kv.second;\n"
            "  return s;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-unordered-iteration"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("iter.cc:5"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, UnorderedMemberDeclaredInHeaderIsCaughtInCc) {
  // The declaration and the iteration live in different files; the include
  // graph must connect them.
  WriteFile("src/core/tally.h",
            "#ifndef ZOMBIE_CORE_TALLY_H_\n"
            "#define ZOMBIE_CORE_TALLY_H_\n"
            "#include <unordered_map>\n"
            "namespace zombie {\n"
            "class Tally {\n"
            " public:\n"
            "  int Sum() const;\n"
            " private:\n"
            "  std::unordered_map<int, int> counts_;\n"
            "};\n"
            "}  // namespace zombie\n"
            "#endif  // ZOMBIE_CORE_TALLY_H_\n");
  WriteFile("src/core/tally.cc",
            "#include \"core/tally.h\"\n"
            "namespace zombie {\n"
            "int Tally::Sum() const {\n"
            "  int s = 0;\n"
            "  for (const auto& kv : counts_) s += kv.second;\n"
            "  return s;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-unordered-iteration"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("tally.cc:5"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, UnorderedIterationOutsideRestrictedDirsIsFine) {
  WriteFile("src/util/freq.cc",
            "#include <unordered_map>\n"
            "namespace zombie {\n"
            "int Sum(const std::unordered_map<int, int>& m) {\n"
            "  int s = 0;\n"
            "  for (const auto& kv : m) s += kv.second;\n"
            "  return s;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, UnorderedLookupWithoutIterationIsFine) {
  WriteFile("src/core/lookup.cc",
            "#include <unordered_map>\n"
            "namespace zombie {\n"
            "int Get(const std::unordered_map<int, int>& m, int k) {\n"
            "  auto it = m.find(k);\n"
            "  return it == m.end() ? 0 : it->second;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- no-detached-thread ----------------------------------------------------

TEST_F(ZombieLintTest, RejectsRawThreadAndDetach) {
  WriteFile("src/core/spawner.cc",
            "#include <thread>\n"
            "namespace zombie {\n"
            "void Go() {\n"
            "  std::thread t([] {});\n"
            "  t.detach();\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-detached-thread"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("spawner.cc:4"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("spawner.cc:5"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, ThreadPoolFilesMayConstructThreads) {
  WriteFile("src/util/thread_pool.cc",
            "#include <thread>\n"
            "#include <vector>\n"
            "namespace zombie {\n"
            "void Spawn(std::vector<std::thread>* ts) {"
            " ts->emplace_back([] {}); }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, ThreadTypeLevelUsesAreFine) {
  WriteFile("src/core/par.cc",
            "#include <thread>\n"
            "namespace zombie {\n"
            "unsigned N() { return std::thread::hardware_concurrency(); }\n"
            "std::thread::id Id() { return std::thread::id{}; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- no-nondet-float -------------------------------------------------------

TEST_F(ZombieLintTest, RejectsStdReduceAndFastMathPragma) {
  WriteFile("src/ml/fast.cc",
            "#include <numeric>\n"
            "#include <vector>\n"
            "#pragma float_control(precise, off)\n"
            "namespace zombie {\n"
            "double Sum(const std::vector<double>& v) {\n"
            "  return std::reduce(v.begin(), v.end(), 0.0);\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-nondet-float"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("fast.cc:3"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("fast.cc:6"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, AccumulateAndContractOffAreFine) {
  WriteFile("src/ml/seq.cc",
            "#include <numeric>\n"
            "#include <vector>\n"
            "#pragma STDC FP_CONTRACT OFF\n"
            "namespace zombie {\n"
            "double Sum(const std::vector<double>& v) {\n"
            "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RejectsExecutionHeaderInclude) {
  WriteFile("src/ml/parstl.cc",
            "#include <execution>\n"
            "namespace zombie {\n"
            "int Noop() { return 0; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-nondet-float"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("parstl.cc:1"), std::string::npos) << run.output;
}

// --- no-mutable-global -----------------------------------------------------

TEST_F(ZombieLintTest, RejectsMutableNamespaceScopeVariable) {
  WriteFile("src/core/state.cc",
            "namespace zombie {\n"
            "int g_counter = 0;\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-mutable-global"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("g_counter"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, RejectsMutableGlobalInAnonymousNamespace) {
  // Anonymous namespaces and brace-initialized atomics do not launder
  // hidden state.
  WriteFile("src/core/anon.cc",
            "#include <atomic>\n"
            "namespace zombie {\n"
            "namespace {\n"
            "std::atomic<int> g_level{2};\n"
            "}  // namespace\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-mutable-global"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("anon.cc:4"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, ConstGlobalsAndLocalStaticsAreFine) {
  WriteFile("src/core/consts.cc",
            "namespace zombie {\n"
            "constexpr int kMax = 8;\n"
            "const char* const kName = \"x\";\n"
            "int& Counter() {\n"
            "  static int count = 0;\n"
            "  return count;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, FunctionAndClassDeclarationsAreNotGlobals) {
  WriteFile("src/core/decls.cc",
            "#include <string>\n"
            "namespace zombie {\n"
            "int Add(int a, int b);\n"
            "struct Options { int depth = 3; };\n"
            "using Label = std::string;\n"
            "int Add(int a, int b) { return a + b; }\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RawMmapOutsideUtilFlagged) {
  WriteFile("src/featureeng/raw_map.cc",
            "#include <sys/mman.h>\n"
            "namespace zombie {\n"
            "void* Map(int fd, unsigned long n) {\n"
            "  return mmap(nullptr, n, 3, 1, fd, 0);\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-mmap"), std::string::npos) << run.output;
}

TEST_F(ZombieLintTest, RawMmapInUtilAndAllowEscapeAreFine) {
  // src/util/ implements the wrapper, so the syscalls are legal there; a
  // vetted call elsewhere can opt out in place with allow().
  WriteFile("src/util/mmap_file.cc",
            "#include <sys/mman.h>\n"
            "namespace zombie {\n"
            "void Drop(void* p, unsigned long n) { munmap(p, n); }\n"
            "}  // namespace zombie\n");
  WriteFile("src/core/vetted.cc",
            "#include <sys/mman.h>\n"
            "namespace zombie {\n"
            "void Sync(void* p, unsigned long n) {\n"
            "  msync(p, n, 4);  // zombie-lint: allow(no-raw-mmap)\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, RawIntrinsicsOutsideSimdFlagged) {
  // Both spellings must fire: the <*intrin.h> include and the _mm*/__m256
  // identifiers (caught even without the include, e.g. via a transitive
  // header).
  WriteFile("src/ml/fast_path.cc",
            "#include <immintrin.h>\n"
            "namespace zombie {\n"
            "double Sum(const double* v) {\n"
            "  __m256d lanes = _mm256_loadu_pd(v);\n"
            "  double out[4];\n"
            "  _mm256_storeu_pd(out, lanes);\n"
            "  return out[0] + out[1] + out[2] + out[3];\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("no-raw-intrinsics"), std::string::npos)
      << run.output;
  // The include line and at least one identifier line both report.
  EXPECT_NE(run.output.find("immintrin.h"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("_mm256_loadu_pd"), std::string::npos)
      << run.output;
}

TEST_F(ZombieLintTest, RawIntrinsicsInSimdDirAndAllowEscapeAreFine) {
  // src/ml/simd/ is the allowed zone; elsewhere a vetted line can opt out
  // in place with allow().
  WriteFile("src/ml/simd/kernel.cc",
            "#include <immintrin.h>\n"
            "namespace zombie {\n"
            "double Lane0(const double* v) {\n"
            "  return _mm256_cvtsd_f64(_mm256_loadu_pd(v));\n"
            "}\n"
            "}  // namespace zombie\n");
  WriteFile("src/core/vetted.cc",
            "namespace zombie {\n"
            "void Hint(const char* p) {\n"
            "  _mm_prefetch(p, 3);  // zombie-lint: allow(no-raw-intrinsics)\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST_F(ZombieLintTest, NonIntrinsicUnderscoreIdentsAreFine) {
  // Reserved-looking but non-intrinsic names must not trip the prefix
  // matcher: __musl_libc, _map_size, __method.
  WriteFile("src/core/names.cc",
            "namespace zombie {\n"
            "int __musl_libc = 0;  // zombie-lint: allow(no-mutable-global)\n"
            "int Use(int _map_size, int __method) {\n"
            "  return _map_size + __method + __musl_libc;\n"
            "}\n"
            "}  // namespace zombie\n");
  LintRun run = RunLint(src());
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// --- checked-in fixture trees ---------------------------------------------

#ifndef ZOMBIE_LINT_FIXTURES
#error "ZOMBIE_LINT_FIXTURES must be defined by the build"
#endif

struct FixtureCase {
  const char* dir;
  const char* rule;
};

class ZombieLintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(ZombieLintFixtureTest, BadTreeFails) {
  fs::path tree =
      fs::path(ZOMBIE_LINT_FIXTURES) / GetParam().dir / "bad" / "src";
  ASSERT_TRUE(fs::is_directory(tree)) << tree;
  LintRun run = RunLint(tree);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(std::string("[") + GetParam().rule + "]"),
            std::string::npos)
      << run.output;
}

TEST_P(ZombieLintFixtureTest, GoodTreeIsClean) {
  fs::path tree =
      fs::path(ZOMBIE_LINT_FIXTURES) / GetParam().dir / "good" / "src";
  ASSERT_TRUE(fs::is_directory(tree)) << tree;
  LintRun run = RunLint(tree);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    DeterminismRules, ZombieLintFixtureTest,
    ::testing::Values(
        FixtureCase{"no_unordered_iteration", "no-unordered-iteration"},
        FixtureCase{"no_detached_thread", "no-detached-thread"},
        FixtureCase{"no_nondet_float", "no-nondet-float"},
        FixtureCase{"no_mutable_global", "no-mutable-global"},
        FixtureCase{"no_raw_mmap", "no-raw-mmap"},
        FixtureCase{"no_raw_intrinsics", "no-raw-intrinsics"}),
    [](const ::testing::TestParamInfo<FixtureCase>& fixture) {
      return std::string(fixture.param.dir);
    });

}  // namespace
}  // namespace zombie
