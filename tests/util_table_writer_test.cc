#include "util/table_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace zombie {
namespace {

TEST(TableWriterTest, AsciiAlignsColumns) {
  TableWriter t({"name", "value"});
  t.BeginRow();
  t.Cell("alpha");
  t.Cell(static_cast<int64_t>(42));
  t.BeginRow();
  t.Cell("b");
  t.Cell(3.14159, 2);
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| name  | value |"), std::string::npos);
  EXPECT_NE(ascii.find("| alpha | 42    |"), std::string::npos);
  EXPECT_NE(ascii.find("| b     | 3.14  |"), std::string::npos);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b"});
  t.BeginRow();
  t.Cell("x");
  t.Cell("has,comma");
  t.BeginRow();
  t.Cell("quote\"inside");
  t.Cell(static_cast<int64_t>(7));
  EXPECT_EQ(t.ToCsv(),
            "a,b\nx,\"has,comma\"\n\"quote\"\"inside\",7\n");
}

TEST(TableWriterTest, DoublePrecision) {
  TableWriter t({"v"});
  t.BeginRow();
  t.Cell(1.23456789, 4);
  EXPECT_NE(t.ToCsv().find("1.2346"), std::string::npos);
}

TEST(TableWriterTest, ShortRowsRenderEmptyCells) {
  TableWriter t({"a", "b", "c"});
  t.BeginRow();
  t.Cell("only");
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("| only |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableWriterTest, WriteCsvFileRoundTrips) {
  TableWriter t({"k", "v"});
  t.BeginRow();
  t.Cell("key");
  t.Cell(static_cast<int64_t>(9));
  std::string path = testing::TempDir() + "/zombie_table_test.csv";
  ASSERT_TRUE(t.WriteCsvFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "k,v\nkey,9\n");
}

TEST(TableWriterTest, WriteCsvFileFailsOnBadPath) {
  TableWriter t({"a"});
  EXPECT_FALSE(t.WriteCsvFile("/nonexistent_dir_zzz/file.csv"));
}

TEST(TableWriterDeathTest, CellBeforeBeginRowAborts) {
  TableWriter t({"a"});
  EXPECT_DEATH(t.Cell("x"), "BeginRow");
}

TEST(TableWriterDeathTest, TooManyCellsAborts) {
  TableWriter t({"a"});
  t.BeginRow();
  t.Cell("1");
  EXPECT_DEATH(t.Cell("2"), "Check failed");
}

}  // namespace
}  // namespace zombie
