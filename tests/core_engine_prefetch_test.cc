// Speculative prefetch inertness: prefetch is a wall-clock-only
// optimization, so RunResult and the DecisionLog JSONL stream must be
// byte-identical with prefetch off or on at any thread count — across
// policies and groupings, from a cold cache each time. These tests pin
// that contract (the same discipline as the holdout-parallelism and obs
// tests) and sanity-check that speculation actually happened, so the
// equivalence assertions are not vacuously comparing two no-prefetch runs.
// They also run under the ASan and TSan CI legs, where a racing prefetch
// worker would be caught directly.

#include <cstdint>
#include <string>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bandit/ucb1.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "featureeng/feature_cache.h"
#include "gtest/gtest.h"
#include "index/kmeans_grouper.h"
#include "index/metadata_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace {

/// Every deterministic RunResult field; wall_micros deliberately excluded.
std::string Fingerprint(const RunResult& r) {
  std::string s = StrFormat(
      "items=%zu loop=%lld holdout=%lld q=%.17g stop=%s pos=%zu\n",
      r.items_processed, static_cast<long long>(r.loop_virtual_micros),
      static_cast<long long>(r.holdout_virtual_micros), r.final_quality,
      StopReasonName(r.stop_reason), r.positives_processed);
  for (const ArmSummary& a : r.arms) {
    s += StrFormat("arm %zu %zu %.17g %zu\n", a.group_size, a.pulls,
                   a.total_reward, a.positives_seen);
  }
  s += r.curve.ToCsv();
  return s;
}

class EnginePrefetchTest : public ::testing::Test {
 protected:
  EnginePrefetchTest()
      : task_(MakeTask(TaskKind::kWebCat, 900, 42)),
        kmeans_grouper_(6, 7),
        kmeans_grouping_(kmeans_grouper_.Group(task_.corpus)),
        metadata_grouper_(8),
        metadata_grouping_(metadata_grouper_.Group(task_.corpus)) {}

  struct Outcome {
    std::string fingerprint;
    std::string decisions_jsonl;
    uint64_t prefetch_enqueued = 0;
    uint64_t prefetch_issued = 0;
    uint64_t prefetch_useful = 0;
  };

  Outcome RunWith(const GroupingResult& grouping, const BanditPolicy& policy,
                  size_t prefetch_threads) {
    // Fresh cache per run: every configuration starts from the same cold
    // state, so only the speculation itself differs between runs.
    FeatureCache cache;
    EngineOptions opts;
    opts.seed = 3;
    opts.holdout_size = 150;
    opts.eval_every = 10;
    opts.stop.max_items = 200;
    opts.feature_cache = &cache;
    ObsContext obs;
    opts.obs = &obs;

    NaiveBayesLearner learner;
    LabelReward reward;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    RunSpec spec(grouping, policy, learner, reward);
    spec.prefetch.threads = prefetch_threads;
    spec.prefetch.max_arms = 4;
    spec.prefetch.max_items_per_arm = 4;
    RunResult r = engine.Run(spec);

    Outcome out;
    out.fingerprint = Fingerprint(r);
    out.decisions_jsonl = obs.decisions()->ToJsonl();
    out.prefetch_enqueued =
        obs.metrics()->GetCounter("prefetch.enqueued")->value();
    out.prefetch_issued =
        obs.metrics()->GetCounter("prefetch.issued")->value();
    out.prefetch_useful =
        obs.metrics()->GetCounter("prefetch.useful")->value();
    return out;
  }

  Task task_;
  KMeansGrouper kmeans_grouper_;
  GroupingResult kmeans_grouping_;
  MetadataGrouper metadata_grouper_;
  GroupingResult metadata_grouping_;
};

TEST_F(EnginePrefetchTest, ByteIdenticalAcrossPrefetchThreadCounts) {
  EpsilonGreedyPolicy egreedy;
  Ucb1Policy ucb1;
  struct Config {
    const char* name;
    const GroupingResult* grouping;
    const BanditPolicy* policy;
  };
  const Config configs[] = {
      {"egreedy/kmeans", &kmeans_grouping_, &egreedy},
      {"egreedy/metadata", &metadata_grouping_, &egreedy},
      {"ucb1/kmeans", &kmeans_grouping_, &ucb1},
      {"ucb1/metadata", &metadata_grouping_, &ucb1},
  };
  for (const Config& c : configs) {
    Outcome off = RunWith(*c.grouping, *c.policy, 0);
    EXPECT_EQ(off.prefetch_enqueued, 0u) << c.name;
    for (size_t threads : {2u, 8u}) {
      Outcome on = RunWith(*c.grouping, *c.policy, threads);
      EXPECT_EQ(on.fingerprint, off.fingerprint)
          << c.name << " prefetch_threads=" << threads << " changed RunResult";
      EXPECT_EQ(on.decisions_jsonl, off.decisions_jsonl)
          << c.name << " prefetch_threads=" << threads
          << " changed the decision log";
      // Non-vacuity: speculation really ran in the prefetch-on runs.
      EXPECT_GT(on.prefetch_enqueued, 0u)
          << c.name << " prefetch_threads=" << threads;
    }
  }
}

TEST_F(EnginePrefetchTest, PrefetchMetricsAreExportedAndConsistent) {
  EpsilonGreedyPolicy policy;
  Outcome on = RunWith(kmeans_grouping_, policy, 4);
  EXPECT_GT(on.prefetch_enqueued, 0u);
  EXPECT_GT(on.prefetch_issued, 0u);
  EXPECT_LE(on.prefetch_issued, on.prefetch_enqueued);
  // The engine walks groups the prefetcher ranked highly, so at least some
  // speculative entries must have been consumed by real pulls.
  EXPECT_GT(on.prefetch_useful, 0u);
  EXPECT_LE(on.prefetch_useful, on.prefetch_issued);
}

}  // namespace
}  // namespace zombie
