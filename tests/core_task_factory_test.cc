#include "core/task_factory.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(TaskFactoryTest, NamesMatchKinds) {
  EXPECT_STREQ(TaskKindName(TaskKind::kWebCat), "webcat");
  EXPECT_STREQ(TaskKindName(TaskKind::kEntity), "entity");
  EXPECT_STREQ(TaskKindName(TaskKind::kBalanced), "balanced");
}

TEST(TaskFactoryTest, BuildsEveryTask) {
  for (TaskKind kind :
       {TaskKind::kWebCat, TaskKind::kEntity, TaskKind::kBalanced}) {
    Task task = MakeTask(kind, 500, 3);
    EXPECT_EQ(task.name, TaskKindName(kind));
    EXPECT_EQ(task.corpus.size(), 500u);
    EXPECT_TRUE(task.corpus.Validate().ok());
    EXPECT_GT(task.pipeline.dimension(), 0u);
    // The pipeline must produce features for the first document.
    SparseVector v = task.pipeline.Extract(task.corpus.doc(0), task.corpus);
    EXPECT_FALSE(v.empty());
  }
}

TEST(TaskFactoryTest, DeterministicForSeed) {
  Task a = MakeTask(TaskKind::kWebCat, 300, 9);
  Task b = MakeTask(TaskKind::kWebCat, 300, 9);
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    ASSERT_EQ(a.corpus.doc(i).tokens, b.corpus.doc(i).tokens);
  }
}

TEST(TaskFactoryTest, SkewedTasksAreSkewedBalancedIsNot) {
  Task webcat = MakeTask(TaskKind::kWebCat, 4000, 1);
  Task entity = MakeTask(TaskKind::kEntity, 4000, 1);
  Task balanced = MakeTask(TaskKind::kBalanced, 4000, 1);
  EXPECT_LT(webcat.corpus.ComputeStats().positive_fraction, 0.2);
  EXPECT_LT(entity.corpus.ComputeStats().positive_fraction, 0.2);
  EXPECT_NEAR(balanced.corpus.ComputeStats().positive_fraction, 0.5, 0.05);
}

TEST(TaskFactoryTest, DefaultPipelinesDifferByTask) {
  Task webcat = MakeTask(TaskKind::kWebCat, 200, 1);
  Task entity = MakeTask(TaskKind::kEntity, 200, 1);
  // The entity pipeline is deliberately collision-prone (smaller BoW).
  EXPECT_GT(webcat.pipeline.dimension(), entity.pipeline.dimension());
}

}  // namespace
}  // namespace zombie
