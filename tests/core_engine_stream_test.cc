// Streaming ingestion engine contract (data/corpus_source.h +
// index/incremental_grouper.h + engine.cc):
//  - spec.stream == nullptr is the offline engine, and an empty (drained)
//    schedule over the full corpus is byte-identical to it;
//  - streaming runs are byte-identical across holdout-eval thread counts
//    and cache modes (fingerprints; decision logs within a cache mode) and
//    across repeated invocations of one spec;
//  - dynamic arms (k-means splits) appear in result.arms, in the bandit,
//    in the "kind": "ingest" DecisionLog records, and in ingest.* metrics,
//    all telling one consistent story;
//  - when every arm is exhausted but the stream is not drained, the engine
//    fast-forwards virtual time to the next arrival instead of stopping:
//    kExhausted means base AND stream fully consumed;
//  - all eight shipped policies survive mid-run arm growth.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "data/corpus_source.h"
#include "featureeng/feature_cache.h"
#include "gtest/gtest.h"
#include "index/incremental_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace {

/// Every deterministic RunResult field; wall_micros deliberately excluded.
std::string Fingerprint(const RunResult& r) {
  std::string s = StrFormat(
      "items=%zu loop=%lld holdout=%lld q=%.17g stop=%s pos=%zu\n",
      r.items_processed, static_cast<long long>(r.loop_virtual_micros),
      static_cast<long long>(r.holdout_virtual_micros), r.final_quality,
      StopReasonName(r.stop_reason), r.positives_processed);
  for (const ArmSummary& a : r.arms) {
    s += StrFormat("arm %zu %zu %.17g %zu\n", a.group_size, a.pulls,
                   a.total_reward, a.positives_seen);
  }
  s += r.curve.ToCsv();
  return s;
}

class EngineStreamTest : public ::testing::Test {
 protected:
  EngineStreamTest() : task_(MakeTask(TaskKind::kWebCat, 900, 42)) {}

  struct Outcome {
    std::string fingerprint;
    std::string decisions_jsonl;
    size_t num_arms = 0;
    uint64_t ingest_windows = 0;
    uint64_t ingest_docs = 0;
    uint64_t ingest_new_arms = 0;
    uint64_t ingest_splits = 0;
    StopReason stop = StopReason::kExhausted;
    size_t items = 0;
  };

  /// Runs one streaming (or, with stream == nullptr, offline) spec on a
  /// fresh engine/cache/obs. The grouper prototype is cloned by the engine,
  /// so one primed `igrouper` serves every run of a test identically.
  Outcome RunWith(const GroupingResult& grouping,
                  const ScheduledCorpusSource* stream,
                  const IncrementalGrouper* igrouper, bool use_cache = true,
                  size_t eval_threads = 1, size_t max_items = 250,
                  bool early_stops = true) {
    FeatureCache cache;
    EngineOptions opts;
    opts.seed = 3;
    opts.holdout_size = 120;
    opts.eval_every = 10;
    opts.stop.max_items = max_items;
    if (!early_stops) {
      opts.stop.plateau_enabled = false;
      opts.stop.decline_enabled = false;
    }
    opts.feature_cache = use_cache ? &cache : nullptr;
    opts.holdout_eval_threads = eval_threads;
    ObsContext obs;
    opts.obs = &obs;

    EpsilonGreedyPolicy policy;
    LabelReward reward;
    NaiveBayesLearner nb;
    ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
    RunSpec spec(grouping, policy, nb, reward);
    spec.stream = stream;
    spec.incremental_grouper = igrouper;
    RunResult r = engine.Run(spec);

    Outcome out;
    out.fingerprint = Fingerprint(r);
    out.decisions_jsonl = obs.decisions()->ToJsonl();
    out.num_arms = r.arms.size();
    out.ingest_windows = static_cast<uint64_t>(
        obs.metrics()->GetCounter("ingest.windows")->value());
    out.ingest_docs = static_cast<uint64_t>(
        obs.metrics()->GetCounter("ingest.docs")->value());
    out.ingest_new_arms = static_cast<uint64_t>(
        obs.metrics()->GetCounter("ingest.new_arms")->value());
    out.ingest_splits = static_cast<uint64_t>(
        obs.metrics()->GetCounter("ingest.splits")->value());
    out.stop = r.stop_reason;
    out.items = r.items_processed;
    return out;
  }

  Task task_;
};

TEST_F(EngineStreamTest, DrainedStreamIsByteIdenticalToOffline) {
  // Same base grouping either way; the streaming run's schedule is empty
  // (base == corpus), so the ingestion machinery must be a perfect no-op.
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 6;
  kopts.seed = 7;
  IncrementalKMeansGrouper igrouper(kopts);
  GroupingResult grouping =
      igrouper.GroupBase(task_.corpus, task_.corpus.size());
  ScheduledCorpusSource source(&task_.corpus, task_.corpus.size(), {});

  Outcome offline = RunWith(grouping, nullptr, nullptr);
  Outcome streaming = RunWith(grouping, &source, &igrouper);
  EXPECT_EQ(streaming.fingerprint, offline.fingerprint);
  EXPECT_EQ(streaming.decisions_jsonl, offline.decisions_jsonl);
  EXPECT_EQ(streaming.ingest_windows, 0u);
  EXPECT_EQ(streaming.decisions_jsonl.find("\"kind\": \"ingest\""),
            std::string::npos);
}

TEST_F(EngineStreamTest, ByteIdenticalAcrossWallClockKnobsAndRepeats) {
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 6;
  kopts.seed = 7;
  kopts.split_threshold = 16;  // force mid-run splits
  IncrementalKMeansGrouper igrouper(kopts);
  const size_t base = 600;
  GroupingResult grouping = igrouper.GroupBase(task_.corpus, base);
  ArrivalScheduleOptions sched;
  sched.docs_per_virtual_second = 50.0;
  ScheduledCorpusSource source(
      &task_.corpus, base, BuildArrivalSchedule(task_.corpus, base, sched));

  Outcome first = RunWith(grouping, &source, &igrouper);
  // Non-vacuity: arrivals landed and new arms were born.
  ASSERT_GT(first.ingest_windows, 0u);
  ASSERT_GT(first.ingest_docs, 0u);
  ASSERT_GT(first.ingest_new_arms, 0u);

  Outcome repeat = RunWith(grouping, &source, &igrouper);
  EXPECT_EQ(repeat.fingerprint, first.fingerprint);
  EXPECT_EQ(repeat.decisions_jsonl, first.decisions_jsonl);

  struct Knob {
    const char* name;
    bool use_cache;
    size_t eval_threads;
  };
  for (const Knob& k :
       {Knob{"4 eval threads", true, 4}, Knob{"no cache", false, 1},
        Knob{"no cache + threads", false, 4}}) {
    Outcome run = RunWith(grouping, &source, &igrouper, k.use_cache,
                          k.eval_threads);
    EXPECT_EQ(run.fingerprint, first.fingerprint) << k.name;
    EXPECT_EQ(run.ingest_windows, first.ingest_windows) << k.name;
    EXPECT_EQ(run.ingest_new_arms, first.ingest_new_arms) << k.name;
    // Decision records carry a "cache" outcome field that legitimately
    // differs with the cache off, so JSONL byte-equality is asserted only
    // between cache-mode-matched runs.
    if (k.use_cache) {
      EXPECT_EQ(run.decisions_jsonl, first.decisions_jsonl) << k.name;
    }
  }
}

TEST_F(EngineStreamTest, DynamicArmsAppearEverywhereConsistently) {
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 4;
  kopts.seed = 7;
  kopts.split_threshold = 8;  // split eagerly
  IncrementalKMeansGrouper igrouper(kopts);
  const size_t base = 600;
  GroupingResult grouping = igrouper.GroupBase(task_.corpus, base);
  const size_t base_arms = grouping.num_groups();
  ScheduledCorpusSource source(
      &task_.corpus, base,
      BuildArrivalSchedule(task_.corpus, base, ArrivalScheduleOptions{}));

  Outcome run = RunWith(grouping, &source, &igrouper);
  ASSERT_GT(run.ingest_new_arms, 0u);
  // result.arms covers the grown arm set, one entry per group.
  EXPECT_EQ(run.num_arms, base_arms + run.ingest_new_arms);
  // k-means only ever grows by splitting, so the two counters agree.
  EXPECT_EQ(run.ingest_splits, run.ingest_new_arms);
  // The DecisionLog carries matching ingest records.
  EXPECT_NE(run.decisions_jsonl.find("\"kind\": \"ingest\""),
            std::string::npos);
  const std::string total = StrFormat(
      "\"total_arms\": %llu",
      static_cast<unsigned long long>(base_arms + run.ingest_new_arms));
  EXPECT_NE(run.decisions_jsonl.find(total), std::string::npos)
      << run.decisions_jsonl;
}

TEST_F(EngineStreamTest, StarvationFastForwardsToNextArrival) {
  // A tiny offline base that the loop drains almost immediately, with the
  // whole suffix arriving slowly afterwards: every arm goes quiet while
  // the stream still holds documents. The engine must advance virtual time
  // to the next arrival and keep going — kExhausted only when the base AND
  // the stream are fully consumed.
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 3;
  kopts.seed = 7;
  IncrementalKMeansGrouper igrouper(kopts);
  const size_t base = 60;
  GroupingResult grouping = igrouper.GroupBase(task_.corpus, base);
  ArrivalScheduleOptions sched;
  sched.docs_per_virtual_second = 2.0;  // one arrival per 500ms virtual
  ScheduledCorpusSource source(
      &task_.corpus, base, BuildArrivalSchedule(task_.corpus, base, sched));

  Outcome run = RunWith(grouping, &source, &igrouper, /*use_cache=*/true,
                        /*eval_threads=*/1, /*max_items=*/10000,
                        /*early_stops=*/false);
  EXPECT_EQ(run.stop, StopReason::kExhausted);
  // Every one of the 840 arrivals was ingested...
  EXPECT_EQ(run.ingest_docs, task_.corpus.size() - base);
  // ...and trained on: far more items than the base alone could supply.
  EXPECT_GT(run.items, base);
  EXPECT_GT(run.ingest_windows, 1u)
      << "slow arrivals must spread over multiple ingestion windows";

  // Determinism holds through starvation fast-forwards too.
  Outcome repeat = RunWith(grouping, &source, &igrouper, /*use_cache=*/true,
                           /*eval_threads=*/4, /*max_items=*/10000,
                           /*early_stops=*/false);
  EXPECT_EQ(repeat.fingerprint, run.fingerprint);
}

TEST_F(EngineStreamTest, AllPoliciesSurviveMidRunArmGrowth) {
  constexpr PolicyKind kAllKinds[] = {
      PolicyKind::kRoundRobin,    PolicyKind::kUniformRandom,
      PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1,
      PolicyKind::kSlidingUcb,    PolicyKind::kThompson,
      PolicyKind::kExp3,          PolicyKind::kSoftmax,
  };
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 4;
  kopts.seed = 7;
  kopts.split_threshold = 8;
  IncrementalKMeansGrouper igrouper(kopts);
  const size_t base = 600;
  GroupingResult grouping = igrouper.GroupBase(task_.corpus, base);
  ScheduledCorpusSource source(
      &task_.corpus, base,
      BuildArrivalSchedule(task_.corpus, base, ArrivalScheduleOptions{}));

  for (PolicyKind kind : kAllKinds) {
    auto run_once = [&]() {
      FeatureCache cache;
      EngineOptions opts;
      opts.seed = 3;
      opts.holdout_size = 120;
      opts.eval_every = 10;
      opts.stop.max_items = 250;
      opts.feature_cache = &cache;
      ObsContext obs;
      opts.obs = &obs;
      auto policy = MakePolicy(kind);
      LabelReward reward;
      NaiveBayesLearner nb;
      ZombieEngine engine(&task_.corpus, &task_.pipeline, opts);
      RunSpec spec(grouping, *policy, nb, reward);
      spec.stream = &source;
      spec.incremental_grouper = &igrouper;
      RunResult r = engine.Run(spec);
      EXPECT_GE(r.arms.size(), grouping.num_groups())
          << PolicyKindName(kind);
      EXPECT_GT(r.items_processed, 0u) << PolicyKindName(kind);
      return Fingerprint(r);
    };
    std::string first = run_once();
    EXPECT_EQ(run_once(), first)
        << PolicyKindName(kind) << " streaming run not deterministic";
  }
}

}  // namespace
}  // namespace zombie
