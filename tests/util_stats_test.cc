#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace zombie {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(WindowedMeanTest, UnboundedActsAsPlainMean) {
  WindowedMean m(0);
  for (int i = 1; i <= 10; ++i) m.Add(i);
  EXPECT_DOUBLE_EQ(m.mean(), 5.5);
  EXPECT_EQ(m.count(), 10u);
}

TEST(WindowedMeanTest, WindowEvictsOldValues) {
  WindowedMean m(3);
  m.Add(100.0);
  m.Add(1.0);
  m.Add(2.0);
  m.Add(3.0);  // evicts 100
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_EQ(m.total_count(), 4u);
}

TEST(WindowedMeanTest, EmptyMeanIsZero) {
  WindowedMean m(5);
  EXPECT_EQ(m.mean(), 0.0);
}

TEST(DiscountedMeanTest, GammaOneIsPlainMean) {
  DiscountedMean m(1.0);
  for (double x : {1.0, 2.0, 3.0}) m.Add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
}

TEST(DiscountedMeanTest, RecentValuesDominate) {
  DiscountedMean m(0.5);
  m.Add(0.0);
  m.Add(0.0);
  m.Add(1.0);
  // weights: 0.25, 0.5, 1 -> mean = 1 / 1.75
  EXPECT_NEAR(m.mean(), 1.0 / 1.75, 1e-12);
}

TEST(DescriptiveTest, MeanVarianceMedian) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.125), 15.0);
}

TEST(BootstrapTest, CiCoversTrueMean) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.NextGaussian(10.0, 2.0));
  BootstrapCi ci = BootstrapMeanCi(xs, 0.95, 500, &rng);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 10.3);
  EXPECT_GT(ci.hi, 9.7);
}

TEST(BootstrapTest, DegenerateSample) {
  Rng rng(2);
  BootstrapCi ci = BootstrapMeanCi({5.0}, 0.95, 100, &rng);
  EXPECT_DOUBLE_EQ(ci.lo, 5.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0);
}

TEST(WelchTest, DetectsSeparation) {
  Rng rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.NextGaussian(5.0, 1.0));
    b.push_back(rng.NextGaussian(3.0, 1.0));
  }
  EXPECT_GT(WelchT(a, b), 5.0);
  EXPECT_LT(WelchT(b, a), -5.0);
}

TEST(WelchTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(WelchT({1.0}, {2.0, 3.0}), 0.0);
  EXPECT_EQ(WelchT({1.0, 1.0}, {1.0, 1.0}), 0.0);  // zero variance
}

}  // namespace
}  // namespace zombie
