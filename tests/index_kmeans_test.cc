#include "index/kmeans.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace zombie {
namespace {

// Three well-separated blobs in 2D.
std::vector<std::vector<double>> Blobs(size_t per_blob, Rng* rng) {
  std::vector<std::vector<double>> rows;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      rows.push_back({centers[b][0] + rng->NextGaussian() * 0.3,
                      centers[b][1] + rng->NextGaussian() * 0.3});
    }
  }
  return rows;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  auto rows = Blobs(50, &rng);
  KMeansConfig cfg;
  cfg.k = 3;
  KMeansResult r = RunKMeans(rows, cfg);
  ASSERT_EQ(r.assignments.size(), 150u);
  // Each blob must be a single pure cluster.
  for (int b = 0; b < 3; ++b) {
    uint32_t c = r.assignments[static_cast<size_t>(b) * 50];
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(r.assignments[static_cast<size_t>(b) * 50 + i], c);
    }
  }
  // Distinct clusters per blob.
  EXPECT_NE(r.assignments[0], r.assignments[50]);
  EXPECT_NE(r.assignments[50], r.assignments[100]);
  EXPECT_LT(r.inertia, 150 * 0.3 * 0.3 * 2 * 4);  // near within-blob noise
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(2);
  auto rows = Blobs(30, &rng);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.seed = 99;
  KMeansResult a = RunKMeans(rows, cfg);
  KMeansResult b = RunKMeans(rows, cfg);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, KGreaterOrEqualNGivesOnePointClusters) {
  std::vector<std::vector<double>> rows = {{0.0}, {1.0}, {2.0}};
  KMeansConfig cfg;
  cfg.k = 5;
  KMeansResult r = RunKMeans(rows, cfg);
  EXPECT_EQ(r.inertia, 0.0);
  EXPECT_EQ(r.assignments, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(r.centroids.size(), 5u);
}

TEST(KMeansTest, KOneGroupsEverything) {
  Rng rng(3);
  auto rows = Blobs(10, &rng);
  KMeansConfig cfg;
  cfg.k = 1;
  KMeansResult r = RunKMeans(rows, cfg);
  for (uint32_t a : r.assignments) EXPECT_EQ(a, 0u);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  std::vector<std::vector<double>> rows(20, std::vector<double>{1.0, 2.0});
  KMeansConfig cfg;
  cfg.k = 4;
  KMeansResult r = RunKMeans(rows, cfg);
  EXPECT_EQ(r.assignments.size(), 20u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, AssignmentsAlwaysWithinK) {
  Rng rng(4);
  auto rows = Blobs(20, &rng);
  KMeansConfig cfg;
  cfg.k = 7;
  KMeansResult r = RunKMeans(rows, cfg);
  for (uint32_t a : r.assignments) EXPECT_LT(a, 7u);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(5);
  auto rows = Blobs(40, &rng);
  double prev = 1e300;
  for (size_t k : {1, 2, 3, 6}) {
    KMeansConfig cfg;
    cfg.k = k;
    double inertia = RunKMeans(rows, cfg).inertia;
    EXPECT_LE(inertia, prev + 1e-9) << "k=" << k;
    prev = inertia;
  }
}

TEST(KMeansTest, IterationCountBounded) {
  Rng rng(6);
  auto rows = Blobs(30, &rng);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.max_iterations = 2;
  KMeansResult r = RunKMeans(rows, cfg);
  EXPECT_LE(r.iterations, 2u);
}

TEST(SquaredL2Test, KnownValue) {
  EXPECT_DOUBLE_EQ(SquaredL2({1.0, 2.0}, {4.0, 6.0}), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(SquaredL2({}, {}), 0.0);
}

TEST(KMeansDeathTest, EmptyRowsAbort) {
  KMeansConfig cfg;
  EXPECT_DEATH(RunKMeans({}, cfg), "at least one row");
}

TEST(KMeansDeathTest, RaggedRowsAbort) {
  KMeansConfig cfg;
  cfg.k = 1;
  EXPECT_DEATH(RunKMeans({{1.0}, {1.0, 2.0}}, cfg), "Check failed");
}

}  // namespace
}  // namespace zombie
