// Tests for obs/metrics: registry semantics, histogram bucketing and
// percentiles, concurrent mutation (run under TSan in CI), and the
// disabled-path cost contract (no allocations when sinks are null).

#include "obs/metrics.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace zombie {
namespace {

// Global operator new/delete instrumentation for the zero-allocation
// assertions. Counting is toggled explicitly so gtest's own allocations
// don't pollute the counts.
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

}  // namespace
}  // namespace zombie

void* operator new(std::size_t size) {
  if (zombie::g_count_allocs.load(std::memory_order_relaxed)) {
    zombie::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace zombie {
namespace {

uint64_t CountAllocations(const std::function<void()>& body) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  body();
  g_count_allocs.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(HistogramTest, SnapshotTracksCountSumMinMax) {
  Histogram h({10.0, 100.0, 1000.0});
  h.Observe(5.0);
  h.Observe(50.0);
  h.Observe(500.0);
  h.Observe(5000.0);  // overflow bucket
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 5555.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5000.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5555.0 / 4.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, PercentilesAreOrderedAndBounded) {
  Histogram h;  // default latency bounds
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  HistogramSnapshot s = h.Snapshot();
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // With 1..1000 uniform, p50 should land in the right decade.
  EXPECT_GT(s.p50, 200.0);
  EXPECT_LT(s.p50, 900.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  Histogram h;
  h.Observe(77.0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 77.0);
  EXPECT_DOUBLE_EQ(s.p95, 77.0);
  EXPECT_DOUBLE_EQ(s.p99, 77.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Increment();
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "x.count");
  EXPECT_EQ(snap.counters[0].second, 1u);
}

TEST(MetricsRegistryTest, SnapshotIsNameOrdered) {
  MetricsRegistry reg;
  reg.GetCounter("zz");
  reg.GetCounter("aa");
  reg.GetGauge("mm");
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "aa");
  EXPECT_EQ(snap.counters[1].first, "zz");
  ASSERT_EQ(snap.gauges.size(), 1u);
}

TEST(MetricsRegistryTest, ToJsonIsStable) {
  MetricsRegistry reg;
  reg.GetCounter("runs")->Increment(3);
  reg.GetGauge("depth")->Set(2.0);
  reg.GetHistogram("lat")->Observe(10.0);
  std::string a = reg.ToJson();
  std::string b = reg.ToJson();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"runs\": 3"), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentMutationIsConsistent) {
  // Stress the lock-free paths from several threads; run under TSan in CI.
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter* c = reg.GetCounter("stress.count");
      Histogram* h = reg.GetHistogram("stress.lat");
      Gauge* g = reg.GetGauge("stress.depth");
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<double>((t * kOpsPerThread + i) % 997));
        g->Set(static_cast<double>(i));
        if (i % 1000 == 0) reg.Snapshot();  // concurrent readers
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("stress.count")->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  HistogramSnapshot s = reg.GetHistogram("stress.lat")->Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 996.0);
}

TEST(ScopedHistogramTimerTest, ObservesIntoHistogram) {
  Histogram h;
  {
    ScopedHistogramTimer timer(&h);
  }
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(ScopedHistogramTimerTest, NullHistogramAllocatesNothing) {
  uint64_t allocs = CountAllocations([] {
    for (int i = 0; i < 1000; ++i) {
      ScopedHistogramTimer timer(nullptr);
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(MetricsTest, HotPathOperationsAllocateNothing) {
  // Resolve handles first (creation allocates), then assert the per-event
  // operations — the ones instrumented code runs per pull — are alloc-free.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hot.count");
  Gauge* g = reg.GetGauge("hot.gauge");
  Histogram* h = reg.GetHistogram("hot.lat");
  uint64_t allocs = CountAllocations([&] {
    for (int i = 0; i < 1000; ++i) {
      c->Increment();
      g->Set(static_cast<double>(i));
      h->Observe(static_cast<double>(i));
    }
  });
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace zombie
