#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "bandit/epsilon_greedy.h"
#include "bandit/round_robin.h"
#include "core/task_factory.h"
#include "featureeng/extractors.h"
#include "index/kmeans_grouper.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"

namespace zombie {
namespace {

struct Fixture {
  Fixture(size_t n = 2000, uint64_t seed = 42)
      : task(MakeTask(TaskKind::kWebCat, n, seed)) {}

  EngineOptions SmallOptions() {
    EngineOptions o;
    o.seed = 7;
    o.holdout_size = 100;
    o.eval_every = 20;
    o.stop.min_items = 100;
    return o;
  }

  GroupingResult Grouping(size_t k = 8) {
    KMeansGrouper grouper(k, 3);
    return grouper.Group(task.corpus);
  }

  Task task;
};

TEST(EngineTest, DeterministicTraceForSeed) {
  Fixture f;
  GroupingResult grouping = f.Grouping();
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.SmallOptions());
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult a = engine.Run(RunSpec(grouping, policy, nb, reward));
  RunResult b = engine.Run(RunSpec(grouping, policy, nb, reward));
  EXPECT_EQ(a.items_processed, b.items_processed);
  EXPECT_EQ(a.loop_virtual_micros, b.loop_virtual_micros);
  EXPECT_EQ(a.final_quality, b.final_quality);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve.point(i).quality, b.curve.point(i).quality);
    EXPECT_EQ(a.curve.point(i).virtual_micros,
              b.curve.point(i).virtual_micros);
  }
}

TEST(EngineTest, DifferentSeedsDifferentTraces) {
  Fixture f;
  GroupingResult grouping = f.Grouping();
  EngineOptions o1 = f.SmallOptions();
  EngineOptions o2 = f.SmallOptions();
  o2.seed = 8;
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult a = ZombieEngine(&f.task.corpus, &f.task.pipeline, o1)
                    .Run(RunSpec(grouping, policy, nb, reward));
  RunResult b = ZombieEngine(&f.task.corpus, &f.task.pipeline, o2)
                    .Run(RunSpec(grouping, policy, nb, reward));
  EXPECT_NE(a.loop_virtual_micros, b.loop_virtual_micros);
}

TEST(EngineTest, BudgetStopRespected) {
  Fixture f;
  EngineOptions opts = f.SmallOptions();
  opts.stop.max_items = 150;
  opts.stop.plateau_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  EXPECT_EQ(r.items_processed, 150u);
  EXPECT_EQ(r.stop_reason, StopReason::kBudget);
}

TEST(EngineTest, ExhaustionProcessesEverythingExceptHoldout) {
  Fixture f(500);
  EngineOptions opts = f.SmallOptions();
  opts.stop.plateau_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  RoundRobinPolicy policy;
  NaiveBayesLearner nb;
  ZeroReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(4), policy, nb, reward));
  EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
  EXPECT_EQ(r.items_processed, 500u - opts.holdout_size);
}

TEST(EngineTest, TargetQualityStopsEarly) {
  Fixture f;
  EngineOptions opts = f.SmallOptions();
  opts.stop.target_quality = 0.05;  // trivially reachable
  opts.stop.plateau_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  EXPECT_EQ(r.stop_reason, StopReason::kTarget);
  EXPECT_GE(r.final_quality, 0.0);
  EXPECT_LT(r.items_processed, 1900u);
}

TEST(EngineTest, PlateauStopsBeforeExhaustion) {
  Fixture f(4000);
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.SmallOptions());
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(16), policy, nb, reward));
  EXPECT_EQ(r.stop_reason, StopReason::kPlateau);
  EXPECT_LT(r.items_processed, 3900u - 100u);
}

TEST(EngineTest, VirtualCostMatchesPipelineFactor) {
  // With round-robin over one ordered group and no early stop, the loop's
  // virtual time must equal the per-item pipeline costs exactly.
  Fixture f(300);
  EngineOptions opts = f.SmallOptions();
  opts.stop.plateau_enabled = false;
  opts.holdout_size = 50;
  opts.charge_holdout_cost = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  RoundRobinPolicy policy;
  NaiveBayesLearner nb;
  ZeroReward reward;
  GroupingResult single = MakeSingleGroupGrouping(f.task.corpus.size());
  RunSpec spec(single, policy, nb, reward);
  spec.shuffle_groups = false;
  RunResult r = engine.Run(spec);
  EXPECT_EQ(r.holdout_virtual_micros, 0);
  // Recompute the expected charge over exactly the processed items: with
  // preserved order, those are the non-holdout items in corpus order.
  EXPECT_EQ(r.items_processed, 250u);
  EXPECT_GT(r.loop_virtual_micros, 0);
  double factor = f.task.pipeline.total_cost_factor();
  int64_t max_possible = 0;
  for (const auto& d : f.task.corpus.documents()) {
    max_possible += f.task.pipeline.ExtractionCostMicros(d) +
                    d.labeling_cost_micros;
  }
  EXPECT_LE(r.loop_virtual_micros, max_possible);
  EXPECT_GT(factor, 0.0);
}

TEST(EngineTest, HoldoutChargedWhenEnabled) {
  Fixture f(400);
  EngineOptions opts = f.SmallOptions();
  opts.charge_holdout_cost = true;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  EXPECT_GT(r.holdout_virtual_micros, 0);
  EXPECT_EQ(r.total_virtual_micros(),
            r.loop_virtual_micros + r.holdout_virtual_micros);
}

TEST(EngineTest, StratifiedHoldoutHitsTargetFraction) {
  Fixture f(4000);
  EngineOptions opts = f.SmallOptions();
  opts.holdout_size = 200;
  opts.holdout_positive_fraction = 0.25;
  opts.stop.max_items = 50;
  opts.stop.plateau_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  // The holdout composition is visible through the curve's confusion
  // totals: tp+fn = positives in holdout.
  const CurvePoint& p = r.curve.point(0);
  int64_t holdout_pos = p.metrics.confusion.tp + p.metrics.confusion.fn;
  EXPECT_EQ(p.metrics.confusion.total(), 200);
  EXPECT_EQ(holdout_pos, 50);
}

TEST(EngineTest, NaturalHoldoutTracksBaseRate) {
  Fixture f(4000);
  EngineOptions opts = f.SmallOptions();
  opts.holdout_size = 400;
  opts.holdout_positive_fraction = -1.0;
  opts.stop.max_items = 50;
  opts.stop.plateau_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  const CurvePoint& p = r.curve.point(0);
  double holdout_rate =
      static_cast<double>(p.metrics.confusion.tp + p.metrics.confusion.fn) /
      static_cast<double>(p.metrics.confusion.total());
  double base = f.task.corpus.ComputeStats().positive_fraction;
  EXPECT_NEAR(holdout_rate, base, 0.06);
}

TEST(EngineTest, ArmSummariesConsistent) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.SmallOptions());
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  GroupingResult grouping = f.Grouping(8);
  RunResult r = engine.Run(RunSpec(grouping, policy, nb, reward));
  ASSERT_EQ(r.arms.size(), grouping.num_groups());
  size_t total_pulls = 0;
  size_t total_pos = 0;
  for (size_t a = 0; a < r.arms.size(); ++a) {
    total_pulls += r.arms[a].pulls;
    total_pos += r.arms[a].positives_seen;
    EXPECT_EQ(r.arms[a].group_size, grouping.groups[a].size());
    EXPECT_LE(r.arms[a].positives_seen, r.arms[a].pulls);
  }
  EXPECT_EQ(total_pulls, r.items_processed);
  EXPECT_EQ(total_pos, r.positives_processed);
}

TEST(EngineTest, CurveStartsAtZeroItemsAndEndsAtFinal) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.SmallOptions());
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  ASSERT_GE(r.curve.size(), 2u);
  EXPECT_EQ(r.curve.point(0).items_processed, 0u);
  EXPECT_EQ(r.curve.point(r.curve.size() - 1).items_processed,
            r.items_processed);
  EXPECT_DOUBLE_EQ(r.curve.FinalQuality(), r.final_quality);
}

TEST(EngineTest, ProbeRewardRuns) {
  Fixture f(1000);
  EngineOptions opts = f.SmallOptions();
  opts.stop.max_items = 120;
  opts.stop.plateau_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  ImprovementReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(), policy, nb, reward));
  EXPECT_EQ(r.reward_name, "improvement");
  EXPECT_EQ(r.items_processed, 120u);
}

TEST(EngineTest, MetadataInResultNames) {
  Fixture f;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, f.SmallOptions());
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  GroupingResult g = f.Grouping();
  RunResult r = engine.Run(RunSpec(g, policy, nb, reward));
  EXPECT_EQ(r.grouper_name, g.method);
  EXPECT_EQ(r.learner_name, "nb");
  EXPECT_EQ(r.reward_name, "label");
  EXPECT_NE(r.policy_name.find("egreedy"), std::string::npos);
  EXPECT_FALSE(r.ToString().empty());
}

TEST(EngineTest, DeclineRuleStopsDriftingRuns) {
  // Construct a run whose quality inevitably decays: after the rich
  // groups drain, the label-reward stream turns all-negative and a
  // recency-sensitive learner drifts. With plateau disabled, only the
  // decline rule can stop it before exhaustion.
  Fixture f(3000);
  EngineOptions opts = f.SmallOptions();
  opts.stop.plateau_enabled = false;
  opts.stop.decline_enabled = true;
  opts.stop.decline_window = 6;
  opts.stop.decline_margin = 0.03;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  LogisticRegressionLearner lr;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(16), policy, lr, reward));
  if (r.stop_reason == StopReason::kDecline) {
    // The peak must sit clearly above where we stopped.
    EXPECT_GT(r.curve.PeakQuality(), r.final_quality);
    EXPECT_LT(r.items_processed, 2900u - 100u);
  } else {
    // Acceptable alternative on some seeds: the run drained the corpus
    // without a clear >margin decline.
    EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
  }
}

TEST(EngineTest, DeclineDisabledRunsToExhaustion) {
  Fixture f(800);
  EngineOptions opts = f.SmallOptions();
  opts.stop.plateau_enabled = false;
  opts.stop.decline_enabled = false;
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  LogisticRegressionLearner lr;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(f.Grouping(8), policy, lr, reward));
  EXPECT_EQ(r.stop_reason, StopReason::kExhausted);
}

TEST(EngineTest, TunedThresholdQualityAtLeastZeroThreshold) {
  Fixture f(1500);
  EngineOptions opts = f.SmallOptions();
  opts.stop.max_items = 200;
  opts.stop.plateau_enabled = false;
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  GroupingResult grouping = f.Grouping();
  opts.tune_threshold = false;
  RunResult plain = ZombieEngine(&f.task.corpus, &f.task.pipeline, opts)
                        .Run(RunSpec(grouping, policy, nb, reward));
  opts.tune_threshold = true;
  RunResult tuned = ZombieEngine(&f.task.corpus, &f.task.pipeline, opts)
                        .Run(RunSpec(grouping, policy, nb, reward));
  // Same trace (seeded identically), but every evaluation picks the best
  // threshold, so quality can only improve.
  EXPECT_EQ(plain.items_processed, tuned.items_processed);
  EXPECT_GE(tuned.final_quality, plain.final_quality);
}

TEST(EngineTest, WarmStartBiasesEarlySelection) {
  Fixture f(3000);
  EngineOptions opts = f.SmallOptions();
  opts.stop.max_items = 120;
  opts.stop.plateau_enabled = false;
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  GroupingResult grouping = f.Grouping(8);

  // Cold run discovers the rich arms.
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  RunResult cold = engine.Run(RunSpec(grouping, policy, nb, reward));

  // Warm run is seeded with the cold run's arm knowledge and must find
  // at least as many positives early.
  RunSpec warm_spec(grouping, policy, nb, reward);
  warm_spec.warm_start = &cold.arms;
  RunResult warm = engine.Run(warm_spec);
  EXPECT_GE(warm.positives_processed + 5, cold.positives_processed);
  // Arm accounting excludes pseudo-observations.
  size_t total_pulls = 0;
  for (const auto& a : warm.arms) total_pulls += a.pulls;
  EXPECT_EQ(total_pulls, warm.items_processed);
}

TEST(EngineTest, WarmStartWithWrongArmCountIsIgnored) {
  Fixture f(1000);
  EngineOptions opts = f.SmallOptions();
  opts.stop.max_items = 60;
  opts.stop.plateau_enabled = false;
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  GroupingResult grouping = f.Grouping(8);
  std::vector<ArmSummary> wrong(3);  // mismatched arm count
  for (auto& a : wrong) {
    a.pulls = 10;
    a.total_reward = 10.0;  // would heavily bias selection if applied
  }
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  RunSpec mismatched(grouping, policy, nb, reward);
  mismatched.warm_start = &wrong;
  RunResult r = engine.Run(mismatched);
  EXPECT_EQ(r.items_processed, 60u);

  // The contract is "ignored", not "degraded": the run must be identical
  // to one with no warm start at all — same selections, same rewards,
  // same curve.
  RunResult plain = engine.Run(RunSpec(grouping, policy, nb, reward));
  EXPECT_EQ(r.items_processed, plain.items_processed);
  EXPECT_EQ(r.positives_processed, plain.positives_processed);
  EXPECT_EQ(r.loop_virtual_micros, plain.loop_virtual_micros);
  EXPECT_EQ(r.final_quality, plain.final_quality);
  ASSERT_EQ(r.arms.size(), plain.arms.size());
  for (size_t a = 0; a < r.arms.size(); ++a) {
    EXPECT_EQ(r.arms[a].pulls, plain.arms[a].pulls);
    EXPECT_EQ(r.arms[a].total_reward, plain.arms[a].total_reward);
    EXPECT_EQ(r.arms[a].positives_seen, plain.arms[a].positives_seen);
  }
}

TEST(EngineTest, RepeatedRunSpecCallsAreIdentical) {
  // Run(const RunSpec&) is the engine's only entry point (the positional
  // overload it once shimmed is gone — see tests/compile_fail/
  // fail_positional_run.cc, which keeps it from coming back). The engine
  // is stateless across calls: the same spec twice must produce the same
  // run, field for field.
  Fixture f(1000);
  EngineOptions opts = f.SmallOptions();
  opts.stop.max_items = 80;
  opts.stop.plateau_enabled = false;
  GroupingResult grouping = f.Grouping(6);
  ZombieEngine engine(&f.task.corpus, &f.task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunSpec spec(grouping, policy, nb, reward);
  RunResult first = engine.Run(spec);
  RunResult again = engine.Run(spec);
  EXPECT_EQ(first.Fingerprint(), again.Fingerprint());
  EXPECT_EQ(first.items_processed, again.items_processed);
  EXPECT_EQ(first.positives_processed, again.positives_processed);
  EXPECT_EQ(first.loop_virtual_micros, again.loop_virtual_micros);
  EXPECT_EQ(first.holdout_virtual_micros, again.holdout_virtual_micros);
  EXPECT_EQ(first.final_quality, again.final_quality);
  ASSERT_EQ(first.curve.size(), again.curve.size());
  for (size_t i = 0; i < first.curve.size(); ++i) {
    EXPECT_EQ(first.curve.point(i).quality, again.curve.point(i).quality);
  }
}

TEST(EngineTest, CostAwareRewardsPreferCheapGroups) {
  // Two groups with identical labels but 4x different extraction costs:
  // cost-aware selection must spend more pulls on the cheap group.
  Corpus corpus;
  corpus.mutable_vocabulary().GetOrAdd("t");
  corpus.AddDomain("d");
  // The cheap group is deliberately the SECOND arm: ε-greedy breaks ties
  // toward the first arm, so cost-aware selection must overcome that bias
  // to win this test.
  for (int i = 0; i < 600; ++i) {
    Document d;
    d.id = static_cast<uint64_t>(i);
    d.tokens = {0};
    d.label = 1;  // all positive: reward 1 everywhere pre-normalization
    d.extraction_cost_micros = i < 300 ? 4000 : 1000;
    corpus.AddDocument(std::move(d));
  }
  FeaturePipeline pipeline("p");
  pipeline.Add(std::make_unique<HashedBagOfWordsExtractor>(16));

  GroupingResult grouping;
  grouping.method = "cost-split";
  grouping.groups.resize(2);
  for (uint32_t i = 0; i < 600; ++i) {
    grouping.groups[i < 300 ? 0 : 1].push_back(i);
  }

  EngineOptions opts;
  opts.seed = 5;
  opts.holdout_size = 50;
  opts.eval_every = 50;
  opts.stop.max_items = 200;
  opts.stop.plateau_enabled = false;
  opts.stop.decline_enabled = false;
  opts.cost_aware_rewards = true;
  ZombieEngine engine(&corpus, &pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunResult r = engine.Run(RunSpec(grouping, policy, nb, reward));
  ASSERT_EQ(r.arms.size(), 2u);
  EXPECT_GT(r.arms[1].pulls, 2 * r.arms[0].pulls);

  // Without cost awareness, rewards are identical and the greedy
  // tie-break favors the first (expensive) arm: the preference flips.
  opts.cost_aware_rewards = false;
  ZombieEngine plain(&corpus, &pipeline, opts);
  RunResult p = plain.Run(RunSpec(grouping, policy, nb, reward));
  EXPECT_GE(p.arms[0].pulls, p.arms[1].pulls);
}

TEST(EngineOptionsTest, ValidateRejectsBadKnobs) {
  EngineOptions o;
  o.eval_every = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = EngineOptions();
  o.holdout_size = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = EngineOptions();
  o.probe_size = o.holdout_size + 1;
  EXPECT_FALSE(o.Validate().ok());
  o = EngineOptions();
  o.stop.max_items = 0;
  EXPECT_FALSE(o.Validate().ok());
  EXPECT_TRUE(EngineOptions().Validate().ok());
}

TEST(EngineDeathTest, EmptyCorpusAborts) {
  Corpus empty;
  FeaturePipeline pipeline("p");
  EXPECT_DEATH(ZombieEngine(&empty, &pipeline), "empty corpus");
}

TEST(SingleGroupGroupingTest, CoversInOrder) {
  GroupingResult g = MakeSingleGroupGrouping(5);
  ASSERT_EQ(g.num_groups(), 1u);
  EXPECT_EQ(g.groups[0], (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(g.Validate(5).ok());
}

}  // namespace
}  // namespace zombie
