#include "index/signature.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/webcat_generator.h"
#include "index/kmeans_grouper.h"

namespace zombie {
namespace {

Document Doc(std::vector<uint32_t> tokens, uint32_t domain = 0,
             int64_t cost = 10000) {
  Document d;
  d.tokens = std::move(tokens);
  d.domain = domain;
  d.extraction_cost_micros = cost;
  return d;
}

TEST(SignatureTest, DimensionAndDeterminism) {
  SignatureConfig cfg;
  cfg.dimensions = 32;
  Document d = Doc({1, 2, 3, 4});
  std::vector<double> a = ComputeSignature(d, cfg);
  std::vector<double> b = ComputeSignature(d, cfg);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);
}

TEST(SignatureTest, TokenChannelsL2Normalized) {
  SignatureConfig cfg;
  cfg.dimensions = 16;
  cfg.include_length = false;
  cfg.include_domain = false;
  std::vector<double> s = ComputeSignature(Doc({1, 2, 3, 4, 5}), cfg);
  double norm_sq = 0.0;
  for (double v : s) norm_sq += v * v;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST(SignatureTest, EmptyDocumentIsZeroTokenChannels) {
  SignatureConfig cfg;
  cfg.dimensions = 8;
  std::vector<double> s = ComputeSignature(Doc({}), cfg);
  // Token dims are zero; scalar channels may be nonzero.
  for (size_t i = 0; i + 2 < s.size(); ++i) EXPECT_EQ(s[i], 0.0);
}

TEST(SignatureTest, PrefixOnlyReadsMaxTokens) {
  SignatureConfig cfg;
  cfg.dimensions = 16;
  cfg.max_tokens = 3;
  cfg.include_length = false;  // length reads full size; exclude
  cfg.include_domain = false;
  std::vector<uint32_t> base = {1, 2, 3};
  std::vector<uint32_t> longer = {1, 2, 3, 99, 98, 97};
  EXPECT_EQ(ComputeSignature(Doc(base), cfg),
            ComputeSignature(Doc(longer), cfg));
}

TEST(SignatureTest, DomainChannelDistinguishesDomains) {
  SignatureConfig cfg;
  cfg.dimensions = 8;
  std::vector<double> a = ComputeSignature(Doc({1}, 3), cfg);
  std::vector<double> b = ComputeSignature(Doc({1}, 4), cfg);
  EXPECT_NE(a.back(), b.back());
}

TEST(SignatureMatrixTest, RowsAndVirtualCost) {
  WebCatOptions opts;
  opts.num_documents = 100;
  Corpus corpus = GenerateWebCatCorpus(opts);
  SignatureConfig cfg;
  cfg.use_idf = false;
  SignatureMatrix m = ComputeSignatures(corpus, cfg);
  EXPECT_EQ(m.rows.size(), 100u);
  // One pass at cost_fraction of full extraction.
  double expected = 0.0;
  for (const auto& d : corpus.documents()) {
    expected += cfg.cost_fraction * static_cast<double>(d.extraction_cost_micros);
  }
  EXPECT_NEAR(static_cast<double>(m.virtual_cost_micros), expected, 2.0);
}

TEST(SignatureMatrixTest, IdfDoublesScanCost) {
  WebCatOptions opts;
  opts.num_documents = 100;
  Corpus corpus = GenerateWebCatCorpus(opts);
  SignatureConfig no_idf;
  no_idf.use_idf = false;
  SignatureConfig with_idf;
  with_idf.use_idf = true;
  int64_t base = ComputeSignatures(corpus, no_idf).virtual_cost_micros;
  int64_t idf = ComputeSignatures(corpus, with_idf).virtual_cost_micros;
  EXPECT_NEAR(static_cast<double>(idf), 2.0 * static_cast<double>(base), 4.0);
}

TEST(SignatureMatrixTest, IdfClusteringConcentratesPositives) {
  // The property k-means needs from signatures: with the default IDF
  // weighting, clusters concentrate target-topic documents far above the
  // base rate even when topical tokens are a minority of the content.
  // (Whether IDF beats raw hashing depends on topic share; at the default
  // low share it does — see the kmeans purity checks in DESIGN.md.)
  WebCatOptions opts;
  opts.num_documents = 6000;
  opts.positive_fraction = 0.1;
  opts.topic_token_share = 0.22;
  Corpus corpus = GenerateWebCatCorpus(opts);
  auto best_rate = [&](bool use_idf) {
    SignatureConfig cfg;
    cfg.use_idf = use_idf;
    KMeansGrouper grouper(16, 7, cfg);
    GroupingResult r = grouper.Group(corpus);
    double best = 0.0;
    for (const auto& grp : r.groups) {
      if (grp.size() < 30) continue;
      size_t pos = 0;
      for (uint32_t d : grp) pos += corpus.doc(d).label == 1;
      best = std::max(best, static_cast<double>(pos) / grp.size());
    }
    return best;
  };
  double base = corpus.ComputeStats().positive_fraction;
  EXPECT_GT(best_rate(true), 3.0 * base);
}

}  // namespace
}  // namespace zombie
