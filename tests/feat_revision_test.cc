#include "featureeng/revision_script.h"

#include <gtest/gtest.h>

#include "data/entity_generator.h"
#include "data/webcat_generator.h"

namespace zombie {
namespace {

Corpus SmallWebCat() {
  WebCatOptions opts;
  opts.num_documents = 200;
  return GenerateWebCatCorpus(opts);
}

TEST(RevisionScriptTest, WebCatScriptBuildsEveryRevision) {
  RevisionScript script = MakeWebCatRevisionScript();
  EXPECT_EQ(script.size(), 10u);
  Corpus corpus = SmallWebCat();
  for (size_t i = 0; i < script.size(); ++i) {
    FeaturePipeline p = script.BuildPipeline(i, corpus);
    EXPECT_GT(p.dimension(), 0u) << script.name(i);
    EXPECT_GT(p.total_cost_factor(), 0.0) << script.name(i);
    SparseVector v = p.Extract(corpus.doc(0), corpus);
    EXPECT_FALSE(v.empty()) << script.name(i);
  }
}

TEST(RevisionScriptTest, EntityScriptBuildsEveryRevision) {
  RevisionScript script = MakeEntityRevisionScript();
  EXPECT_EQ(script.size(), 6u);
  EntityExtractOptions opts;
  opts.num_documents = 200;
  Corpus corpus = GenerateEntityExtractCorpus(opts);
  for (size_t i = 0; i < script.size(); ++i) {
    FeaturePipeline p = script.BuildPipeline(i, corpus);
    EXPECT_GT(p.dimension(), 0u) << script.name(i);
  }
}

TEST(RevisionScriptTest, LaterRevisionsGrowRicher) {
  RevisionScript script = MakeWebCatRevisionScript();
  Corpus corpus = SmallWebCat();
  FeaturePipeline first = script.BuildPipeline(0, corpus);
  FeaturePipeline last = script.BuildPipeline(script.size() - 1, corpus);
  EXPECT_GT(last.dimension(), first.dimension());
  EXPECT_GT(last.total_cost_factor(), first.total_cost_factor());
}

TEST(RevisionScriptTest, NamesAreStable) {
  RevisionScript script = MakeWebCatRevisionScript();
  EXPECT_EQ(script.name(0), "r0-bow256");
  EXPECT_EQ(script.name(9), "r9-deep-features");
}

TEST(RevisionScriptTest, CustomScriptRoundTrip) {
  RevisionScript script;
  script.Add("mine", [](const Corpus&) { return FeaturePipeline("mine"); });
  EXPECT_EQ(script.size(), 1u);
  Corpus corpus = SmallWebCat();
  EXPECT_EQ(script.BuildPipeline(0, corpus).name(), "mine");
}

TEST(ResolveTermsTest, DropsUnknownTerms) {
  Corpus corpus = SmallWebCat();
  std::vector<uint32_t> ids =
      ResolveTerms(corpus, {"topic0_w0", "definitely_not_a_term", "w0"});
  EXPECT_EQ(ids.size(), 2u);
}

TEST(ResolveTermsTest, EmptyInput) {
  Corpus corpus = SmallWebCat();
  EXPECT_TRUE(ResolveTerms(corpus, {}).empty());
}

}  // namespace
}  // namespace zombie
