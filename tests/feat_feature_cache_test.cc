#include "featureeng/feature_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "core/engine.h"
#include "core/task_factory.h"
#include "featureeng/extractors.h"
#include "featureeng/pipeline.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "ml/sparse_vector.h"
#include "util/thread_pool.h"

namespace zombie {
namespace {

SparseVector Vec(uint32_t index, double value) {
  return SparseVector::FromPairs({{index, value}});
}

FeatureCache::Entry MakeEntry(uint32_t index) {
  return FeatureCache::Entry{Vec(index, 1.0), 1, 1000};
}

// ---------------------------------------------------------------------------
// Basic memo semantics
// ---------------------------------------------------------------------------

TEST(FeatureCacheTest, MissThenHit) {
  FeatureCache cache;
  EXPECT_EQ(cache.Lookup(1, 7), nullptr);
  cache.Insert(1, 7, MakeEntry(3));
  auto hit = cache.Lookup(1, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->features, Vec(3, 1.0));
  EXPECT_EQ(hit->label, 1);
  EXPECT_EQ(hit->cost_micros, 1000);

  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(FeatureCacheTest, KeysAreFingerprintAndDocId) {
  FeatureCache cache;
  cache.Insert(1, 7, MakeEntry(3));
  EXPECT_EQ(cache.Lookup(2, 7), nullptr);  // other revision
  EXPECT_EQ(cache.Lookup(1, 8), nullptr);  // other doc
  EXPECT_NE(cache.Lookup(1, 7), nullptr);
}

TEST(FeatureCacheTest, FirstInsertWinsOnDuplicateKey) {
  FeatureCache cache;
  cache.Insert(1, 7, MakeEntry(3));
  cache.Insert(1, 7, MakeEntry(9));
  auto hit = cache.Lookup(1, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->features, Vec(3, 1.0));
}

TEST(FeatureCacheTest, ClearEmptiesEntriesAndKeepsCounters) {
  FeatureCache cache;
  cache.Insert(1, 7, MakeEntry(3));
  (void)cache.Lookup(1, 7);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1, 7), nullptr);
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

TEST(FeatureCacheTest, TinyCapacityStaysBounded) {
  FeatureCacheOptions opts;
  opts.capacity = 16;
  FeatureCache cache(opts);
  for (uint32_t i = 0; i < 200; ++i) cache.Insert(1, i, MakeEntry(i));
  FeatureCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 16u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.inserts, 200u);
}

TEST(FeatureCacheTest, EvictionPrefersStaleEntries) {
  FeatureCacheOptions opts;
  opts.capacity = 16;
  FeatureCache cache(opts);
  for (uint32_t i = 0; i < 16; ++i) cache.Insert(1, i, MakeEntry(i));
  // Touch doc 0 repeatedly so its recency tick is the freshest.
  for (int i = 0; i < 8; ++i) ASSERT_NE(cache.Lookup(1, 0), nullptr);
  // Overflow: the batch evictor drops the stalest ~1/8, never doc 0.
  for (uint32_t i = 16; i < 24; ++i) cache.Insert(1, i, MakeEntry(i));
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
}

TEST(FeatureCacheTest, HitsKeepSharedEntryAliveAcrossEviction) {
  FeatureCacheOptions opts;
  opts.capacity = 16;
  FeatureCache cache(opts);
  cache.Insert(1, 0, MakeEntry(42));
  auto pinned = cache.Lookup(1, 0);
  ASSERT_NE(pinned, nullptr);
  for (uint32_t i = 1; i < 200; ++i) cache.Insert(1, i, MakeEntry(i));
  // Whatever the cache evicted, our shared_ptr still owns the entry.
  EXPECT_EQ(pinned->features, Vec(42, 1.0));
}

// ---------------------------------------------------------------------------
// Speculative entries (prefetch support; see ExtractionService)
// ---------------------------------------------------------------------------

TEST(FeatureCacheSpeculativeTest, FirstTouchPromotesAndCountsAsMiss) {
  FeatureCache cache;
  EXPECT_TRUE(cache.InsertSpeculative(1, 7, MakeEntry(3)));
  EXPECT_TRUE(cache.Contains(1, 7));

  bool first_touch = false;
  auto got = cache.LookupForExtraction(1, 7, &first_touch);
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(first_touch);
  EXPECT_EQ(got->features, Vec(3, 1.0));
  // As-if-no-prefetch accounting: the first touch is the miss the caller
  // would have seen without speculation.
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Promoted: later touches are ordinary hits.
  first_touch = true;
  got = cache.LookupForExtraction(1, 7, &first_touch);
  ASSERT_NE(got, nullptr);
  EXPECT_FALSE(first_touch);
  stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(FeatureCacheSpeculativeTest, LookupForExtractionOnRegularEntryIsAHit) {
  FeatureCache cache;
  cache.Insert(1, 7, MakeEntry(3));
  bool first_touch = true;
  auto got = cache.LookupForExtraction(1, 7, &first_touch);
  ASSERT_NE(got, nullptr);
  EXPECT_FALSE(first_touch);
  EXPECT_EQ(cache.Stats().hits, 1u);
}

TEST(FeatureCacheSpeculativeTest, AbsentKeyIsAMissWithoutFirstTouch) {
  FeatureCache cache;
  bool first_touch = true;
  EXPECT_EQ(cache.LookupForExtraction(1, 7, &first_touch), nullptr);
  EXPECT_FALSE(first_touch);
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(FeatureCacheSpeculativeTest, NeverDowngradesAnExistingEntry) {
  FeatureCache cache;
  cache.Insert(1, 7, MakeEntry(3));
  EXPECT_FALSE(cache.InsertSpeculative(1, 7, MakeEntry(9)));
  bool first_touch = true;
  auto got = cache.LookupForExtraction(1, 7, &first_touch);
  ASSERT_NE(got, nullptr);
  EXPECT_FALSE(first_touch);          // still a committed entry
  EXPECT_EQ(got->features, Vec(3, 1.0));  // first writer won
}

TEST(FeatureCacheSpeculativeTest, RefusedAtCapacityAndNeverEvicts) {
  FeatureCacheOptions opts;
  opts.capacity = 16;
  FeatureCache cache(opts);
  for (uint32_t i = 0; i < 16; ++i) cache.Insert(1, i, MakeEntry(i));
  // Speculation must not displace committed entries: a full cache rejects
  // speculative inserts instead of evicting.
  EXPECT_FALSE(cache.InsertSpeculative(1, 100, MakeEntry(100)));
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 16u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_FALSE(cache.Contains(1, 100));
  for (uint32_t i = 0; i < 16; ++i) EXPECT_TRUE(cache.Contains(1, i));
}

TEST(FeatureCacheSpeculativeTest, ContainsTouchesNoCounters) {
  FeatureCache cache;
  cache.Insert(1, 7, MakeEntry(3));
  EXPECT_TRUE(cache.Contains(1, 7));
  EXPECT_FALSE(cache.Contains(1, 8));
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline fingerprints
// ---------------------------------------------------------------------------

FeaturePipeline MakePipeline(const std::string& name, uint32_t dim,
                             uint64_t salt) {
  FeaturePipeline p(name);
  p.Add(std::make_unique<HashedBagOfWordsExtractor>(dim, true, salt));
  p.Add(std::make_unique<KeywordExtractor>(std::vector<uint32_t>{1, 2, 3}));
  return p;
}

TEST(FingerprintTest, IdenticalConfigsShareFingerprint) {
  EXPECT_EQ(MakePipeline("a", 4096, 0).Fingerprint(),
            MakePipeline("a", 4096, 0).Fingerprint());
}

TEST(FingerprintTest, DisplayNameIsCosmetic) {
  // Same feature code under a different revision label must share cache
  // entries (re-run sessions rename revisions freely).
  EXPECT_EQ(MakePipeline("v1", 4096, 0).Fingerprint(),
            MakePipeline("v2-renamed", 4096, 0).Fingerprint());
}

TEST(FingerprintTest, BehaviorChangesInvalidate) {
  uint64_t base = MakePipeline("a", 4096, 0).Fingerprint();
  EXPECT_NE(base, MakePipeline("a", 8192, 0).Fingerprint());  // dimension
  EXPECT_NE(base, MakePipeline("a", 4096, 5).Fingerprint());  // hash salt

  FeaturePipeline other("a");  // different keyword list
  other.Add(std::make_unique<HashedBagOfWordsExtractor>(4096, true, 0));
  other.Add(std::make_unique<KeywordExtractor>(std::vector<uint32_t>{1, 2}));
  EXPECT_NE(base, other.Fingerprint());

  FeaturePipeline unnormalized = MakePipeline("a", 4096, 0);
  unnormalized.set_l2_normalize(false);
  EXPECT_NE(base, unnormalized.Fingerprint());
}

TEST(FingerprintTest, ExtractorOrderMatters) {
  FeaturePipeline ab("p");
  ab.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
  ab.Add(std::make_unique<HashedBigramExtractor>(4096));
  FeaturePipeline ba("p");
  ba.Add(std::make_unique<HashedBigramExtractor>(4096));
  ba.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
  EXPECT_NE(ab.Fingerprint(), ba.Fingerprint());
}

TEST(FingerprintTest, ExpensiveWrapperFoldsMultiplier) {
  auto make = [](double mult) {
    FeaturePipeline p("p");
    p.Add(std::make_unique<ExpensiveWrapperExtractor>(
        std::make_unique<HashedBagOfWordsExtractor>(4096), mult));
    return p.Fingerprint();
  };
  EXPECT_EQ(make(8.0), make(8.0));
  EXPECT_NE(make(8.0), make(9.0));
}

// ---------------------------------------------------------------------------
// Engine equivalence: the cache may only change wall-clock time
// ---------------------------------------------------------------------------

TEST(FeatureCacheEngineTest, CachedRunsAreByteIdentical) {
  Task task = MakeTask(TaskKind::kWebCat, 1500, 42);
  KMeansGrouper grouper(8, 3);
  GroupingResult grouping = grouper.Group(task.corpus);
  EngineOptions opts;
  opts.seed = 7;
  opts.holdout_size = 100;
  opts.eval_every = 20;
  opts.stop.min_items = 100;

  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;

  RunResult plain = ZombieEngine(&task.corpus, &task.pipeline, opts)
                        .Run(RunSpec(grouping, policy, nb, reward));

  FeatureCache cache;
  EngineOptions cached_opts = opts;
  cached_opts.feature_cache = &cache;
  // Run twice: the first populates (all misses), the second replays from a
  // warm cache. Both must match the cache-less run exactly.
  for (int round = 0; round < 2; ++round) {
    RunResult r = ZombieEngine(&task.corpus, &task.pipeline, cached_opts)
                      .Run(RunSpec(grouping, policy, nb, reward));
    EXPECT_EQ(plain.items_processed, r.items_processed) << "round " << round;
    EXPECT_EQ(plain.loop_virtual_micros, r.loop_virtual_micros)
        << "round " << round;
    EXPECT_EQ(plain.final_quality, r.final_quality) << "round " << round;
    ASSERT_EQ(plain.curve.size(), r.curve.size()) << "round " << round;
    for (size_t i = 0; i < plain.curve.size(); ++i) {
      EXPECT_EQ(plain.curve.point(i).quality, r.curve.point(i).quality);
      EXPECT_EQ(plain.curve.point(i).virtual_micros,
                r.curve.point(i).virtual_micros);
    }
  }
  FeatureCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.entries, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (run under -DZOMBIE_SANITIZE=thread this is the TSan
// regression test for the shared-lock read path + batch eviction)
// ---------------------------------------------------------------------------

TEST(FeatureCacheStressTest, ConcurrentMixedLookupInsert) {
  FeatureCacheOptions opts;
  opts.capacity = 64;  // small: forces constant eviction under contention
  FeatureCache cache(opts);
  ThreadPool pool(8);
  constexpr size_t kWorkers = 16;
  constexpr uint32_t kDocs = 256;
  ParallelFor(&pool, kWorkers, [&cache](size_t w) {
    for (uint32_t i = 0; i < kDocs; ++i) {
      uint32_t doc = (i * 7 + static_cast<uint32_t>(w) * 13) % kDocs;
      if (auto hit = cache.Lookup(1, doc)) {
        // Entries are immutable; a hit must always carry its own doc id.
        ASSERT_EQ(hit->features, Vec(doc, 1.0));
      } else {
        cache.Insert(1, doc, MakeEntry(doc));
      }
    }
  });
  FeatureCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_EQ(stats.hits + stats.misses, kWorkers * kDocs);
}

}  // namespace
}  // namespace zombie
