#include "text/hashing_vectorizer.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "text/term_counts.h"

namespace zombie {
namespace {

bool IsSortedUnique(const TermCounts& counts) {
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i - 1].first >= counts[i].first) return false;
  }
  return true;
}

TEST(HashingVectorizerTest, IndicesWithinDimension) {
  HashingVectorizer v(16);
  TermCounts c = v.Transform({"a", "b", "c", "d", "e", "f"});
  for (const auto& [idx, value] : c) EXPECT_LT(idx, 16u);
  EXPECT_TRUE(IsSortedUnique(c));
}

TEST(HashingVectorizerTest, RepeatedTokensSum) {
  HashingVectorizer v(1024);
  TermCounts c = v.Transform({"dup", "dup", "dup"});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].second, 3.0);
}

TEST(HashingVectorizerTest, DeterministicAcrossInstances) {
  HashingVectorizer a(256);
  HashingVectorizer b(256);
  EXPECT_EQ(a.Transform({"x", "y"}), b.Transform({"x", "y"}));
  EXPECT_EQ(a.IndexOf("zed"), b.IndexOf("zed"));
}

TEST(HashingVectorizerTest, SaltChangesMapping) {
  HashingVectorizer a(1 << 20, false, 0);
  HashingVectorizer b(1 << 20, false, 1);
  EXPECT_NE(a.IndexOf("token"), b.IndexOf("token"));
}

TEST(HashingVectorizerTest, TransformIdsMatchesDimension) {
  HashingVectorizer v(64);
  TermCounts c = v.TransformIds({1, 2, 3, 1, 2, 1});
  double total = 0.0;
  for (const auto& [idx, value] : c) {
    EXPECT_LT(idx, 64u);
    total += value;
  }
  EXPECT_DOUBLE_EQ(total, 6.0);
  EXPECT_TRUE(IsSortedUnique(c));
}

TEST(HashingVectorizerTest, SignedHashCanCancel) {
  // With sign hashing, values are +/-1 per occurrence; magnitudes bounded.
  HashingVectorizer v(8, /*signed_hash=*/true);
  TermCounts c = v.Transform({"a", "b", "c", "d", "e", "f", "g", "h"});
  double sum_abs = 0.0;
  for (const auto& [idx, value] : c) sum_abs += std::abs(value);
  EXPECT_LE(sum_abs, 8.0);
  EXPECT_GT(sum_abs, 0.0);
}

TEST(HashingVectorizerTest, EmptyInput) {
  HashingVectorizer v(32);
  EXPECT_TRUE(v.Transform({}).empty());
  EXPECT_TRUE(v.TransformIds({}).empty());
}

// --- Zero-allocation view path ------------------------------------------

std::vector<std::string_view> AsViews(const std::vector<std::string>& toks) {
  return std::vector<std::string_view>(toks.begin(), toks.end());
}

TEST(HashingVectorizerTest, TransformViewsBitIdenticalToTransform) {
  const std::vector<std::string> tokens = {"the", "quick", "brown", "fox",
                                           "the", "lazy",  "dog",   "the"};
  // Power-of-two dimensions take the mask path, the others the modulo
  // path; both must agree exactly with Transform (which always divides).
  for (uint32_t dim : {8u, 16u, 1024u, 7u, 100u, 1000u}) {
    for (bool sign : {false, true}) {
      HashingVectorizer v(dim, sign, /*salt=*/42);
      TermCounts scratch;
      v.TransformViews(AsViews(tokens), &scratch);
      EXPECT_EQ(scratch, v.Transform(tokens)) << "dim=" << dim
                                              << " signed=" << sign;
    }
  }
}

TEST(HashingVectorizerTest, TransformViewsClearsScratch) {
  HashingVectorizer v(32);
  TermCounts scratch;
  v.TransformViews(AsViews({"a", "b", "c"}), &scratch);
  v.TransformViews(AsViews({"z"}), &scratch);
  EXPECT_EQ(scratch, v.Transform({"z"}));
}

TEST(HashingVectorizerTest, IndexOfAgreesAcrossReductionPaths) {
  // IndexOf must agree with where Transform actually lands a token, for
  // both the power-of-two mask and the arbitrary-dimension modulo.
  for (uint32_t dim : {64u, 97u}) {
    HashingVectorizer v(dim);
    for (const char* tok : {"alpha", "beta", "gamma", "delta"}) {
      TermCounts c = v.Transform({tok});
      ASSERT_EQ(c.size(), 1u);
      EXPECT_EQ(v.IndexOf(tok), c[0].first) << "dim=" << dim;
    }
  }
}

TEST(TermCountsTest, CountTokenIdsAggregates) {
  TermCounts c = CountTokenIds({5, 3, 5, 5, 3, 9});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], (std::pair<uint32_t, double>{3, 2.0}));
  EXPECT_EQ(c[1], (std::pair<uint32_t, double>{5, 3.0}));
  EXPECT_EQ(c[2], (std::pair<uint32_t, double>{9, 1.0}));
}

TEST(TermCountsTest, NormalizeMergesDuplicates) {
  TermCounts c = {{7, 1.0}, {3, 2.0}, {7, 0.5}};
  NormalizeTermCounts(&c);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].first, 3u);
  EXPECT_EQ(c[1].first, 7u);
  EXPECT_DOUBLE_EQ(c[1].second, 1.5);
}

}  // namespace
}  // namespace zombie
