#include "text/hashing_vectorizer.h"

#include <gtest/gtest.h>

#include "text/term_counts.h"

namespace zombie {
namespace {

bool IsSortedUnique(const TermCounts& counts) {
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i - 1].first >= counts[i].first) return false;
  }
  return true;
}

TEST(HashingVectorizerTest, IndicesWithinDimension) {
  HashingVectorizer v(16);
  TermCounts c = v.Transform({"a", "b", "c", "d", "e", "f"});
  for (const auto& [idx, value] : c) EXPECT_LT(idx, 16u);
  EXPECT_TRUE(IsSortedUnique(c));
}

TEST(HashingVectorizerTest, RepeatedTokensSum) {
  HashingVectorizer v(1024);
  TermCounts c = v.Transform({"dup", "dup", "dup"});
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].second, 3.0);
}

TEST(HashingVectorizerTest, DeterministicAcrossInstances) {
  HashingVectorizer a(256);
  HashingVectorizer b(256);
  EXPECT_EQ(a.Transform({"x", "y"}), b.Transform({"x", "y"}));
  EXPECT_EQ(a.IndexOf("zed"), b.IndexOf("zed"));
}

TEST(HashingVectorizerTest, SaltChangesMapping) {
  HashingVectorizer a(1 << 20, false, 0);
  HashingVectorizer b(1 << 20, false, 1);
  EXPECT_NE(a.IndexOf("token"), b.IndexOf("token"));
}

TEST(HashingVectorizerTest, TransformIdsMatchesDimension) {
  HashingVectorizer v(64);
  TermCounts c = v.TransformIds({1, 2, 3, 1, 2, 1});
  double total = 0.0;
  for (const auto& [idx, value] : c) {
    EXPECT_LT(idx, 64u);
    total += value;
  }
  EXPECT_DOUBLE_EQ(total, 6.0);
  EXPECT_TRUE(IsSortedUnique(c));
}

TEST(HashingVectorizerTest, SignedHashCanCancel) {
  // With sign hashing, values are +/-1 per occurrence; magnitudes bounded.
  HashingVectorizer v(8, /*signed_hash=*/true);
  TermCounts c = v.Transform({"a", "b", "c", "d", "e", "f", "g", "h"});
  double sum_abs = 0.0;
  for (const auto& [idx, value] : c) sum_abs += std::abs(value);
  EXPECT_LE(sum_abs, 8.0);
  EXPECT_GT(sum_abs, 0.0);
}

TEST(HashingVectorizerTest, EmptyInput) {
  HashingVectorizer v(32);
  EXPECT_TRUE(v.Transform({}).empty());
  EXPECT_TRUE(v.TransformIds({}).empty());
}

TEST(TermCountsTest, CountTokenIdsAggregates) {
  TermCounts c = CountTokenIds({5, 3, 5, 5, 3, 9});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], (std::pair<uint32_t, double>{3, 2.0}));
  EXPECT_EQ(c[1], (std::pair<uint32_t, double>{5, 3.0}));
  EXPECT_EQ(c[2], (std::pair<uint32_t, double>{9, 1.0}));
}

TEST(TermCountsTest, NormalizeMergesDuplicates) {
  TermCounts c = {{7, 1.0}, {3, 2.0}, {7, 0.5}};
  NormalizeTermCounts(&c);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].first, 3u);
  EXPECT_EQ(c[1].first, 7u);
  EXPECT_DOUBLE_EQ(c[1].second, 1.5);
}

}  // namespace
}  // namespace zombie
