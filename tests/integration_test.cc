// End-to-end checks of the paper's headline behaviours, run at reduced
// scale: intelligent input selection beats a random scan on skewed tasks,
// does no meaningful harm on a balanced task, and better groupings yield
// better selection.

#include <gtest/gtest.h>

#include "bandit/epsilon_greedy.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "data/serialization.h"
#include "index/kmeans_grouper.h"
#include "index/oracle_grouper.h"
#include "index/random_grouper.h"
#include "index/token_grouper.h"
#include "ml/naive_bayes.h"

namespace zombie {
namespace {

EngineOptions TestOptions(uint64_t seed) {
  EngineOptions o;
  o.seed = seed;
  o.holdout_size = 200;
  o.eval_every = 25;
  return o;
}

struct Outcome {
  RunResult zombie;
  RunResult baseline;
};

Outcome RunPair(const Task& task, const GroupingResult& grouping,
                uint64_t seed) {
  NaiveBayesLearner nb;
  EpsilonGreedyPolicy policy;
  LabelReward reward;
  Outcome out{
      ZombieEngine(&task.corpus, &task.pipeline, TestOptions(seed))
          .Run(RunSpec(grouping, policy, nb, reward)),
      RunRandomBaseline(ZombieEngine(&task.corpus, &task.pipeline,
                                     FullScanOptions(TestOptions(seed))),
                        nb)};
  return out;
}

TEST(IntegrationTest, ZombieBeatsRandomScanOnWebCat) {
  // Majority vote across seeds: items-to-target must be at least 2x
  // better with input selection on the skewed task.
  int wins = 0;
  for (uint64_t seed : {42ull, 43ull, 44ull}) {
    Task task = MakeTask(TaskKind::kWebCat, 8000, seed);
    KMeansGrouper grouper(16, 7);
    Outcome o = RunPair(task, grouper.Group(task.corpus), seed);
    SpeedupReport s = ComputeSpeedup(o.baseline, o.zombie, 0.9);
    if (s.items_speedup > 2.0) ++wins;
  }
  EXPECT_GE(wins, 2);
}

TEST(IntegrationTest, ZombieBeatsRandomScanOnEntityWithTokenIndex) {
  int wins = 0;
  for (uint64_t seed : {42ull, 43ull}) {
    Task task = MakeTask(TaskKind::kEntity, 8000, seed);
    // The engineer seeds the inverted index with the entity's mention
    // terms (the designed usage for extraction tasks).
    TokenGrouperOptions topts;
    for (size_t m = 0; m < 5; ++m) {
      topts.seed_terms.push_back("topic0_w" + std::to_string(m));
    }
    TokenGrouper grouper(topts);
    Outcome o = RunPair(task, grouper.Group(task.corpus), seed);
    SpeedupReport s = ComputeSpeedup(o.baseline, o.zombie, 0.9);
    if (s.items_speedup > 2.0) ++wins;
  }
  EXPECT_GE(wins, 1);
}

TEST(IntegrationTest, NoMeaningfulHarmOnBalancedTask) {
  // On the balanced control task, early-stopped Zombie must reach nearly
  // the full-scan quality (input selection cannot help, must not hurt).
  for (uint64_t seed : {42ull, 43ull}) {
    Task task = MakeTask(TaskKind::kBalanced, 6000, seed);
    KMeansGrouper grouper(16, 7);
    Outcome o = RunPair(task, grouper.Group(task.corpus), seed);
    EXPECT_GT(o.zombie.final_quality, 0.92 * o.baseline.final_quality)
        << "seed " << seed;
    // And it processes far fewer items doing so (early stop works).
    EXPECT_LT(o.zombie.items_processed, o.baseline.items_processed / 2);
  }
}

TEST(IntegrationTest, BetterGroupingsSelectMorePositives) {
  // Positive-selection efficiency must be ordered:
  // oracle >= kmeans > random-partition (which matches the base rate).
  Task task = MakeTask(TaskKind::kWebCat, 8000, 42);
  auto positive_rate = [&task](GroupingResult grouping) {
    NaiveBayesLearner nb;
    EpsilonGreedyPolicy policy;
    LabelReward reward;
    EngineOptions opts = TestOptions(1);
    opts.stop.max_items = 600;
    opts.stop.plateau_enabled = false;
    RunResult r = ZombieEngine(&task.corpus, &task.pipeline, opts)
                      .Run(RunSpec(grouping, policy, nb, reward));
    return static_cast<double>(r.positives_processed) /
           static_cast<double>(r.items_processed);
  };
  OracleGrouper oracle(OracleMode::kLabel);
  KMeansGrouper kmeans(16, 7);
  RandomGrouper random(16, 7);
  double oracle_rate = positive_rate(oracle.Group(task.corpus));
  double kmeans_rate = positive_rate(kmeans.Group(task.corpus));
  double random_rate = positive_rate(random.Group(task.corpus));
  double base = task.corpus.ComputeStats().positive_fraction;
  EXPECT_GT(oracle_rate, 0.8);
  EXPECT_GT(kmeans_rate, 2.0 * base);
  EXPECT_GE(oracle_rate, kmeans_rate);
  EXPECT_LT(random_rate, 2.0 * base);
}

TEST(IntegrationTest, EarlyStopSavesMostOfTheCorpus) {
  Task task = MakeTask(TaskKind::kWebCat, 10000, 45);
  KMeansGrouper grouper(16, 7);
  NaiveBayesLearner nb;
  EpsilonGreedyPolicy policy;
  LabelReward reward;
  RunResult r = ZombieEngine(&task.corpus, &task.pipeline, TestOptions(2))
                    .Run(RunSpec(grouper.Group(task.corpus), policy, nb, reward));
  EXPECT_EQ(r.stop_reason, StopReason::kPlateau);
  EXPECT_LT(r.items_processed, task.corpus.size() / 4);
}

TEST(IntegrationTest, PersistedCorpusReproducesIdenticalTraces) {
  // Save → load → run must produce the exact same trace as running on the
  // in-memory original: serialization is faithful and the engine is
  // deterministic over it.
  Task task = MakeTask(TaskKind::kWebCat, 2000, 47);
  std::string path = testing::TempDir() + "/integration_corpus.zmbc";
  ASSERT_TRUE(SaveCorpus(task.corpus, path).ok());
  StatusOr<Corpus> loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  FeaturePipeline pipeline_a = MakeDefaultPipeline(TaskKind::kWebCat,
                                                   task.corpus);
  FeaturePipeline pipeline_b = MakeDefaultPipeline(TaskKind::kWebCat,
                                                   loaded.value());
  KMeansGrouper grouper(8, 3);
  GroupingResult grouping_a = grouper.Group(task.corpus);
  GroupingResult grouping_b = grouper.Group(loaded.value());
  EXPECT_EQ(grouping_a.groups, grouping_b.groups);

  EngineOptions opts = TestOptions(9);
  opts.stop.max_items = 300;
  NaiveBayesLearner nb;
  EpsilonGreedyPolicy policy;
  LabelReward reward;
  RunResult a = ZombieEngine(&task.corpus, &pipeline_a, opts)
                    .Run(RunSpec(grouping_a, policy, nb, reward));
  RunResult b = ZombieEngine(&loaded.value(), &pipeline_b, opts)
                    .Run(RunSpec(grouping_b, policy, nb, reward));
  EXPECT_EQ(a.items_processed, b.items_processed);
  EXPECT_EQ(a.loop_virtual_micros, b.loop_virtual_micros);
  EXPECT_EQ(a.final_quality, b.final_quality);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve.point(i).quality, b.curve.point(i).quality);
  }
}

TEST(IntegrationTest, BanditConcentratesPullsOnRichArms) {
  Task task = MakeTask(TaskKind::kWebCat, 8000, 46);
  KMeansGrouper grouper(16, 7);
  GroupingResult grouping = grouper.Group(task.corpus);
  NaiveBayesLearner nb;
  EpsilonGreedyPolicy policy;
  LabelReward reward;
  EngineOptions opts = TestOptions(3);
  opts.stop.max_items = 800;
  opts.stop.plateau_enabled = false;
  RunResult r = ZombieEngine(&task.corpus, &task.pipeline, opts)
                    .Run(RunSpec(grouping, policy, nb, reward));
  // The most-pulled arm should be one of the positive-rich groups.
  size_t best_arm = 0;
  for (size_t a = 1; a < r.arms.size(); ++a) {
    if (r.arms[a].pulls > r.arms[best_arm].pulls) best_arm = a;
  }
  const auto& grp = grouping.groups[best_arm];
  size_t pos = 0;
  for (uint32_t d : grp) pos += task.corpus.doc(d).label == 1;
  double rate = static_cast<double>(pos) / static_cast<double>(grp.size());
  double base = task.corpus.ComputeStats().positive_fraction;
  EXPECT_GT(rate, 2.0 * base);
}

}  // namespace
}  // namespace zombie
