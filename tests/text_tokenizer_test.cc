#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world! 123"),
            (std::vector<std::string>{"hello", "world", "123"}));
}

TEST(TokenizerTest, LowercaseToggle) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Hello World"),
            (std::vector<std::string>{"Hello", "World"}));
}

TEST(TokenizerTest, MinLengthFiltersShortTokens) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("a an the quick fox"),
            (std::vector<std::string>{"the", "quick", "fox"}));
}

TEST(TokenizerTest, MaxLengthFiltersLongTokens) {
  TokenizerOptions opts;
  opts.max_token_length = 4;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("tiny enormous word"),
            (std::vector<std::string>{"tiny", "word"}));
}

TEST(TokenizerTest, DigitsCanSplitTokens) {
  TokenizerOptions opts;
  opts.keep_digits = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("abc123def"),
            (std::vector<std::string>{"abc", "def"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("!!! ... ???").empty());
}

TEST(TokenizerTest, AppendAccumulates) {
  Tokenizer t;
  std::vector<std::string> out = {"pre"};
  size_t n = t.TokenizeAppend("a b", &out);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out, (std::vector<std::string>{"pre", "a", "b"}));
}

// --- Zero-allocation view path ------------------------------------------
// TokenizeViews must reproduce Tokenize's token sequence exactly — it is
// the same classification (via the per-byte table) and normalization, just
// without per-token heap traffic.

std::vector<std::string> Materialize(
    const std::vector<std::string_view>& views) {
  return std::vector<std::string>(views.begin(), views.end());
}

const char* kViewCorpus[] = {
    "",
    "   ",
    "Hello, World!",
    "a",
    "The;quick,brown..fox JUMPED over_the lazy dog 42 times",
    "trailing token",
    "token trailing!",
    "MiXeD CaSe AB12cd34 ...punct---runs___ x",
    "digits123embedded and 999 alone",
};

TEST(TokenizeViewsTest, MatchesTokenizeOnDefaults) {
  Tokenizer t;
  TokenBuffer buf;
  for (const char* text : kViewCorpus) {
    EXPECT_EQ(Materialize(t.TokenizeViews(text, &buf)), t.Tokenize(text))
        << "text: \"" << text << "\"";
  }
}

TEST(TokenizeViewsTest, MatchesTokenizeAcrossOptionCombos) {
  for (bool lowercase : {false, true}) {
    for (bool keep_digits : {false, true}) {
      for (size_t min_len : {size_t{1}, size_t{3}}) {
        TokenizerOptions opts;
        opts.lowercase = lowercase;
        opts.keep_digits = keep_digits;
        opts.min_token_length = min_len;
        opts.max_token_length = 6;
        Tokenizer t(opts);
        TokenBuffer buf;
        for (const char* text : kViewCorpus) {
          EXPECT_EQ(Materialize(t.TokenizeViews(text, &buf)),
                    t.Tokenize(text))
              << "lowercase=" << lowercase << " keep_digits=" << keep_digits
              << " min_len=" << min_len << " text: \"" << text << "\"";
        }
      }
    }
  }
}

TEST(TokenizeViewsTest, BufferReuseDoesNotLeakPriorTokens) {
  Tokenizer t;
  TokenBuffer buf;
  t.TokenizeViews("first document with several tokens", &buf);
  const std::vector<std::string_view>& views =
      t.TokenizeViews("second", &buf);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0], "second");
}

TEST(TokenizeViewsTest, ViewsPointIntoBufferArenaNotInput) {
  // The views must survive the input string's death: they alias the
  // buffer's arena, not the caller's text.
  Tokenizer t;
  TokenBuffer buf;
  std::string doomed = "ephemeral input text";
  t.TokenizeViews(doomed, &buf);
  doomed.assign(doomed.size(), 'x');  // clobber in place
  ASSERT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf[0], "ephemeral");
  EXPECT_EQ(buf[2], "text");
}

TEST(NgramTest, Bigrams) {
  std::vector<std::string> toks = {"a", "b", "c"};
  EXPECT_EQ(WordNgrams(toks, 2), (std::vector<std::string>{"a_b", "b_c"}));
}

TEST(NgramTest, UnigramIsIdentity) {
  std::vector<std::string> toks = {"x", "y"};
  EXPECT_EQ(WordNgrams(toks, 1), toks);
}

TEST(NgramTest, TooFewTokensYieldsEmpty) {
  EXPECT_TRUE(WordNgrams({"only"}, 2).empty());
  EXPECT_TRUE(WordNgrams({}, 3).empty());
}

TEST(NgramTest, CustomJoiner) {
  EXPECT_EQ(WordNgrams({"a", "b"}, 2, '-'),
            (std::vector<std::string>{"a-b"}));
}

}  // namespace
}  // namespace zombie
