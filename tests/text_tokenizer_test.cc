#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace zombie {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world! 123"),
            (std::vector<std::string>{"hello", "world", "123"}));
}

TEST(TokenizerTest, LowercaseToggle) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Hello World"),
            (std::vector<std::string>{"Hello", "World"}));
}

TEST(TokenizerTest, MinLengthFiltersShortTokens) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("a an the quick fox"),
            (std::vector<std::string>{"the", "quick", "fox"}));
}

TEST(TokenizerTest, MaxLengthFiltersLongTokens) {
  TokenizerOptions opts;
  opts.max_token_length = 4;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("tiny enormous word"),
            (std::vector<std::string>{"tiny", "word"}));
}

TEST(TokenizerTest, DigitsCanSplitTokens) {
  TokenizerOptions opts;
  opts.keep_digits = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("abc123def"),
            (std::vector<std::string>{"abc", "def"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("!!! ... ???").empty());
}

TEST(TokenizerTest, AppendAccumulates) {
  Tokenizer t;
  std::vector<std::string> out = {"pre"};
  size_t n = t.TokenizeAppend("a b", &out);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(out, (std::vector<std::string>{"pre", "a", "b"}));
}

TEST(NgramTest, Bigrams) {
  std::vector<std::string> toks = {"a", "b", "c"};
  EXPECT_EQ(WordNgrams(toks, 2), (std::vector<std::string>{"a_b", "b_c"}));
}

TEST(NgramTest, UnigramIsIdentity) {
  std::vector<std::string> toks = {"x", "y"};
  EXPECT_EQ(WordNgrams(toks, 1), toks);
}

TEST(NgramTest, TooFewTokensYieldsEmpty) {
  EXPECT_TRUE(WordNgrams({"only"}, 2).empty());
  EXPECT_TRUE(WordNgrams({}, 3).empty());
}

TEST(NgramTest, CustomJoiner) {
  EXPECT_EQ(WordNgrams({"a", "b"}, 2, '-'),
            (std::vector<std::string>{"a-b"}));
}

}  // namespace
}  // namespace zombie
