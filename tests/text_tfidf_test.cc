#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace zombie {
namespace {

TEST(TfIdfTest, RareTermsGetHigherIdf) {
  TfIdfTransform t;
  // Term 0 in every doc, term 1 in one of four.
  t.AddDocument({0, 1});
  t.AddDocument({0});
  t.AddDocument({0});
  t.AddDocument({0});
  t.Finalize();
  EXPECT_GT(t.Idf(1), t.Idf(0));
  EXPECT_EQ(t.num_documents(), 4u);
}

TEST(TfIdfTest, SmoothedIdfFormula) {
  TfIdfTransform t;
  t.AddDocument({0});
  t.AddDocument({0});
  t.Finalize();
  // df=2, N=2: log((1+2)/(1+2)) + 1 = 1.
  EXPECT_DOUBLE_EQ(t.Idf(0), 1.0);
}

TEST(TfIdfTest, UnseenTermIdfIsOne) {
  TfIdfTransform t;
  t.AddDocument({0});
  t.Finalize();
  EXPECT_DOUBLE_EQ(t.Idf(12345), 1.0);
}

TEST(TfIdfTest, TransformAppliesTfTimesIdf) {
  TfIdfTransform t;
  t.AddDocument({0, 1});
  t.AddDocument({0});
  t.Finalize();
  TermCounts c = t.Transform({0, 0, 1}, /*l2_normalize=*/false);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0].second, 2.0 * t.Idf(0));
  EXPECT_DOUBLE_EQ(c[1].second, 1.0 * t.Idf(1));
}

TEST(TfIdfTest, L2NormalizationUnitLength) {
  TfIdfTransform t;
  t.AddDocument({0, 1, 2});
  t.Finalize();
  TermCounts c = t.Transform({0, 1, 2, 2});
  double norm_sq = 0.0;
  for (const auto& [idx, value] : c) norm_sq += value * value;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST(TfIdfTest, DuplicateTokensCountOncePerDocForDf) {
  TfIdfTransform t;
  t.AddDocument({0, 0, 0});
  t.AddDocument({1});
  t.Finalize();
  // Both terms have df = 1 despite term 0 appearing three times.
  EXPECT_DOUBLE_EQ(t.Idf(0), t.Idf(1));
}

TEST(TfIdfTest, EmptyDocumentTransformsToEmpty) {
  TfIdfTransform t;
  t.AddDocument({0});
  t.Finalize();
  EXPECT_TRUE(t.Transform({}).empty());
}

TEST(TfIdfDeathTest, TransformBeforeFinalizeAborts) {
  TfIdfTransform t;
  t.AddDocument({0});
  EXPECT_DEATH(t.Transform({0}), "Finalize");
}

TEST(TfIdfDeathTest, AddAfterFinalizeAborts) {
  TfIdfTransform t;
  t.AddDocument({0});
  t.Finalize();
  EXPECT_DEATH(t.AddDocument({1}), "Finalize");
}

}  // namespace
}  // namespace zombie
