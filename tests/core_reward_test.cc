#include "core/reward.h"

#include <gtest/gtest.h>

#include "ml/naive_bayes.h"

namespace zombie {
namespace {

RewardInputs Inputs(int32_t label, double score, double prob,
                    double probe_delta = 0.0) {
  RewardInputs in;
  in.label = label;
  in.score_before = score;
  in.probability_before = prob;
  in.probe_quality_delta = probe_delta;
  return in;
}

TEST(LabelRewardTest, RewardsTargetClass) {
  LabelReward r;
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5)), 1.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, 0.0, 0.5)), 0.0);
  EXPECT_FALSE(r.requires_probe());
}

TEST(LabelRewardTest, CustomTargetClass) {
  LabelReward r(0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, 0.0, 0.5)), 1.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5)), 0.0);
}

TEST(UncertaintyRewardTest, PeaksAtBoundary) {
  UncertaintyReward r;
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5)), 1.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 5.0, 1.0)), 0.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, -5.0, 0.0)), 0.0);
  EXPECT_NEAR(r.Compute(Inputs(1, 1.0, 0.75)), 0.5, 1e-12);
}

TEST(UncertaintyRewardTest, ClampsOutOfRangeProbabilities) {
  UncertaintyReward r;
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 1.5)), 0.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, -0.5)), 0.0);
}

TEST(MisclassificationRewardTest, RewardsMistakes) {
  MisclassificationReward r;
  // score > 0 predicts 1.
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, -1.0, 0.3)), 1.0);  // miss
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 1.0, 0.7)), 0.0);   // hit
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, 1.0, 0.7)), 1.0);   // false positive
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, -1.0, 0.3)), 0.0);  // hit
  // score == 0 classifies negative, so a negative item is a hit.
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, 0.0, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5)), 1.0);
}

TEST(ImprovementRewardTest, ScalesAndClampsDelta) {
  ImprovementReward r(10.0);
  EXPECT_TRUE(r.requires_probe());
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5, 0.05)), 0.5);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5, 0.5)), 1.0);   // saturates
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5, -0.1)), 0.0);  // no negative
}

TEST(BlendedRewardTest, MixesLabelAndUncertainty) {
  BlendedReward r(0.6);
  // Positive at the boundary: 0.6*1 + 0.4*1 = 1.
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 0.0, 0.5)), 1.0);
  // Confident negative: 0.6*0 + 0.4*0 = 0.
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, -5.0, 0.0)), 0.0);
  // Uncertain negative: 0.4 * 1.
  EXPECT_NEAR(r.Compute(Inputs(0, 0.0, 0.5)), 0.4, 1e-12);
}

TEST(BalanceRewardTest, RewardsUnderrepresentedClass) {
  BalanceReward r;
  RewardInputs in = Inputs(1, 0.0, 0.5);
  in.seen_positive = 2;
  in.seen_negative = 10;
  EXPECT_DOUBLE_EQ(r.Compute(in), 1.0);  // positives scarce, item positive
  in.label = 0;
  EXPECT_DOUBLE_EQ(r.Compute(in), 0.0);
  in.seen_positive = 10;
  in.seen_negative = 2;
  EXPECT_DOUBLE_EQ(r.Compute(in), 1.0);  // negatives scarce, item negative
  in.label = 1;
  EXPECT_DOUBLE_EQ(r.Compute(in), 0.0);
}

TEST(BalanceRewardTest, TiesFavorPositives) {
  BalanceReward r;
  RewardInputs in = Inputs(1, 0.0, 0.5);
  in.seen_positive = 5;
  in.seen_negative = 5;
  EXPECT_DOUBLE_EQ(r.Compute(in), 1.0);
}

TEST(ZeroRewardTest, AlwaysZero) {
  ZeroReward r;
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(1, 3.0, 0.9, 1.0)), 0.0);
  EXPECT_DOUBLE_EQ(r.Compute(Inputs(0, -3.0, 0.1, -1.0)), 0.0);
}

TEST(RewardFactoryTest, MakesEveryKind) {
  for (RewardKind kind :
       {RewardKind::kLabel, RewardKind::kUncertainty,
        RewardKind::kMisclassification, RewardKind::kImprovement,
        RewardKind::kBlend, RewardKind::kBalance, RewardKind::kZero}) {
    auto r = MakeReward(kind);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name(), RewardKindName(kind));
    auto clone = r->Clone();
    EXPECT_EQ(clone->name(), r->name());
  }
}

TEST(RewardRangeTest, AllRewardsInUnitInterval) {
  // Property: for any inputs, every shipped reward lands in [0, 1].
  std::vector<std::unique_ptr<RewardFunction>> rewards;
  for (RewardKind kind :
       {RewardKind::kLabel, RewardKind::kUncertainty,
        RewardKind::kMisclassification, RewardKind::kImprovement,
        RewardKind::kBlend, RewardKind::kBalance, RewardKind::kZero}) {
    rewards.push_back(MakeReward(kind));
  }
  for (const auto& r : rewards) {
    for (int32_t label : {0, 1}) {
      for (double score : {-10.0, -0.5, 0.0, 0.5, 10.0}) {
        for (double prob : {0.0, 0.25, 0.5, 0.75, 1.0}) {
          for (double delta : {-1.0, 0.0, 0.01, 1.0}) {
            double v = r->Compute(Inputs(label, score, prob, delta));
            EXPECT_GE(v, 0.0) << r->name();
            EXPECT_LE(v, 1.0) << r->name();
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace zombie
