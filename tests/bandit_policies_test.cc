#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bandit/arm_stats.h"
#include "bandit/epsilon_greedy.h"
#include "bandit/exp3.h"
#include "bandit/policy.h"
#include "bandit/round_robin.h"
#include "bandit/softmax.h"
#include "bandit/thompson.h"
#include "bandit/ucb1.h"
#include "bandit/uniform_random.h"
#include "util/random.h"

namespace zombie {
namespace {

constexpr PolicyKind kAllKinds[] = {
    PolicyKind::kRoundRobin,    PolicyKind::kUniformRandom,
    PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1,
    PolicyKind::kSlidingUcb,    PolicyKind::kThompson,
    PolicyKind::kExp3,          PolicyKind::kSoftmax,
};

// Simulates a Bernoulli bandit: arm a pays 1 with probability p[a].
// Returns the fraction of pulls spent on the best arm.
double PlayBandit(BanditPolicy* policy, const std::vector<double>& p,
                  size_t steps, uint64_t seed) {
  ArmStats stats(p.size());
  policy->Reset(p.size());
  Rng rng(seed);
  size_t best_arm = 0;
  for (size_t a = 1; a < p.size(); ++a) {
    if (p[a] > p[best_arm]) best_arm = a;
  }
  size_t best_pulls = 0;
  for (size_t t = 0; t < steps; ++t) {
    size_t arm = policy->SelectArm(stats, &rng);
    double r = rng.NextBernoulli(p[arm]) ? 1.0 : 0.0;
    stats.Record(arm, r);
    policy->Observe(arm, r);
    if (arm == best_arm) ++best_pulls;
  }
  return static_cast<double>(best_pulls) / static_cast<double>(steps);
}

class EveryPolicyTest : public testing::TestWithParam<PolicyKind> {};

TEST_P(EveryPolicyTest, SelectsOnlyActiveArms) {
  auto policy = MakePolicy(GetParam());
  ArmStats stats(4);
  policy->Reset(4);
  stats.Deactivate(0);
  stats.Deactivate(2);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    size_t arm = policy->SelectArm(stats, &rng);
    EXPECT_TRUE(arm == 1 || arm == 3) << PolicyKindName(GetParam());
    stats.Record(arm, rng.NextBernoulli(0.5) ? 1.0 : 0.0);
    policy->Observe(arm, 0.5);
  }
}

TEST_P(EveryPolicyTest, WorksWithSingleArm) {
  auto policy = MakePolicy(GetParam());
  ArmStats stats(1);
  policy->Reset(1);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(policy->SelectArm(stats, &rng), 0u);
    stats.Record(0, 1.0);
    policy->Observe(0, 1.0);
  }
}

TEST_P(EveryPolicyTest, CloneResetsState) {
  auto policy = MakePolicy(GetParam());
  ArmStats stats(3);
  policy->Reset(3);
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    size_t arm = policy->SelectArm(stats, &rng);
    stats.Record(arm, 1.0);
    policy->Observe(arm, 1.0);
  }
  auto clone = policy->Clone();
  EXPECT_EQ(clone->name(), policy->name());
  // The clone must be usable after its own Reset.
  ArmStats fresh(2);
  clone->Reset(2);
  Rng rng2(4);
  size_t arm = clone->SelectArm(fresh, &rng2);
  EXPECT_LT(arm, 2u);
}

TEST_P(EveryPolicyTest, AdaptivePoliciesBeatUniformOnEasyBandit) {
  PolicyKind kind = GetParam();
  // Scheduling policies (round-robin, uniform) are excluded: they ignore
  // rewards by design.
  if (kind == PolicyKind::kRoundRobin || kind == PolicyKind::kUniformRandom) {
    GTEST_SKIP();
  }
  std::vector<double> p = {0.05, 0.05, 0.8, 0.05};
  double best_fraction = 0.0;
  for (uint64_t seed : {11ull, 12ull, 13ull}) {
    auto policy = MakePolicy(kind);
    best_fraction += PlayBandit(policy.get(), p, 2000, seed);
  }
  best_fraction /= 3.0;
  // Uniform would give 0.25; adaptive policies must concentrate.
  EXPECT_GT(best_fraction, 0.5) << PolicyKindName(kind);
}

TEST_P(EveryPolicyTest, OnArmAddedGrowsStateMidRun) {
  auto policy = MakePolicy(GetParam());
  ArmStats stats(3);
  policy->Reset(3);
  Rng rng(21);
  // Burn in so stateful policies have skewed internal state.
  for (int i = 0; i < 60; ++i) {
    size_t arm = policy->SelectArm(stats, &rng);
    double r = arm == 0 ? 1.0 : 0.0;
    stats.Record(arm, r);
    policy->Observe(arm, r);
  }
  // A group split: a fourth arm appears mid-run.
  size_t new_arm = stats.AddArm();
  ASSERT_EQ(new_arm, 3u);
  policy->OnArmAdded(new_arm);
  // ScoreArms must already cover the new arm...
  std::vector<double> scores;
  policy->ScoreArms(stats, &scores);
  EXPECT_EQ(scores.size(), 4u) << PolicyKindName(GetParam());
  // ...and selection must stay in range and reach the newborn arm.
  size_t new_arm_pulls = 0;
  for (int i = 0; i < 500; ++i) {
    size_t arm = policy->SelectArm(stats, &rng);
    ASSERT_LT(arm, 4u) << PolicyKindName(GetParam());
    double r = arm == 0 || arm == new_arm ? 1.0 : 0.0;
    stats.Record(arm, r);
    policy->Observe(arm, r);
    new_arm_pulls += arm == new_arm;
  }
  EXPECT_GT(new_arm_pulls, 0u)
      << PolicyKindName(GetParam()) << " never tried the newborn arm";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EveryPolicyTest,
                         testing::ValuesIn(kAllKinds),
                         [](const testing::TestParamInfo<PolicyKind>& param_info) {
                           std::string name = PolicyKindName(param_info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// RankArms: the speculation hook must be a pure, deterministic view of
// ScoreArms (score descending, index ascending on ties, active arms only).
// ---------------------------------------------------------------------------

TEST(RankArmsTest, OrdersByScoreThenIndexAndHonorsMaxArms) {
  Ucb1Policy policy;
  policy.Reset(4);
  ArmStats stats(4);
  // Give every arm equal pulls so the UCB bonus ties; means decide.
  for (size_t a = 0; a < 4; ++a) {
    stats.Record(a, a == 2 ? 1.0 : 0.0);
    stats.Record(a, a == 1 || a == 2 ? 1.0 : 0.0);
  }
  std::vector<size_t> ranked;
  policy.RankArms(stats, 4, &ranked);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0], 2u);  // mean 1.0
  EXPECT_EQ(ranked[1], 1u);  // mean 0.5
  // Arms 0 and 3 tie at mean 0: index-ascending tiebreak.
  EXPECT_EQ(ranked[2], 0u);
  EXPECT_EQ(ranked[3], 3u);

  policy.RankArms(stats, 2, &ranked);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 2u);
  EXPECT_EQ(ranked[1], 1u);

  policy.RankArms(stats, 0, &ranked);
  EXPECT_TRUE(ranked.empty());
}

TEST(RankArmsTest, SkipsDeactivatedArms) {
  Ucb1Policy policy;
  policy.Reset(3);
  ArmStats stats(3);
  for (size_t a = 0; a < 3; ++a) stats.Record(a, 1.0);
  stats.Deactivate(1);
  std::vector<size_t> ranked;
  policy.RankArms(stats, 3, &ranked);
  ASSERT_EQ(ranked.size(), 2u);
  for (size_t arm : ranked) EXPECT_NE(arm, 1u);
}

TEST(RankArmsTest, DeterministicForStochasticPolicies) {
  // RankArms must not consume randomness: two calls on identical stats
  // return identical rankings even for RNG-driven policies.
  EpsilonGreedyPolicy policy;
  policy.Reset(5);
  ArmStats stats(5);
  for (size_t a = 0; a < 5; ++a) {
    stats.Record(a, a % 2 == 0 ? 1.0 : 0.0);
  }
  std::vector<size_t> first;
  std::vector<size_t> second;
  policy.RankArms(stats, 5, &first);
  policy.RankArms(stats, 5, &second);
  EXPECT_EQ(first, second);
}

TEST(RoundRobinTest, CyclesInOrder) {
  RoundRobinPolicy policy;
  ArmStats stats(3);
  policy.Reset(3);
  Rng rng(1);
  std::vector<size_t> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(policy.SelectArm(stats, &rng));
  EXPECT_EQ(picks, (std::vector<size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobinTest, SkipsDeactivatedArms) {
  RoundRobinPolicy policy;
  ArmStats stats(3);
  policy.Reset(3);
  stats.Deactivate(1);
  Rng rng(1);
  std::vector<size_t> picks;
  for (int i = 0; i < 4; ++i) picks.push_back(policy.SelectArm(stats, &rng));
  EXPECT_EQ(picks, (std::vector<size_t>{0, 2, 0, 2}));
}

TEST(UniformRandomTest, CoversAllActiveArms) {
  UniformRandomPolicy policy;
  ArmStats stats(4);
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[policy.SelectArm(stats, &rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(EpsilonGreedyTest, TriesEveryArmOnceFirst) {
  EpsilonGreedyPolicy policy;
  ArmStats stats(5);
  policy.Reset(5);
  Rng rng(6);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 5; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    EXPECT_FALSE(seen[arm]);
    seen[arm] = true;
    stats.Record(arm, 0.0);
  }
}

TEST(EpsilonGreedyTest, ZeroEpsilonIsPureGreedy) {
  EpsilonGreedyOptions opts;
  opts.epsilon = 0.0;
  EpsilonGreedyPolicy policy(opts);
  ArmStats stats(3);
  policy.Reset(3);
  Rng rng(7);
  stats.Record(0, 0.1);
  stats.Record(1, 0.9);
  stats.Record(2, 0.2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.SelectArm(stats, &rng), 1u);
  }
}

TEST(EpsilonGreedyTest, DecaySchedule) {
  EpsilonGreedyOptions opts;
  opts.epsilon = 1.0;
  opts.decay = 0.5;
  opts.min_epsilon = 0.1;
  EpsilonGreedyPolicy policy(opts);
  ArmStats stats(2);
  policy.Reset(2);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    policy.SelectArm(stats, &rng);
    stats.Record(0, 0.0);
  }
  EXPECT_DOUBLE_EQ(policy.current_epsilon(), 0.1);  // floored
  policy.Reset(2);
  EXPECT_DOUBLE_EQ(policy.current_epsilon(), 1.0);
}

TEST(Ucb1Test, PrefersHighMeanWithEqualPulls) {
  Ucb1Policy policy;
  ArmStats stats(2);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    stats.Record(0, 1.0);
    stats.Record(1, 0.0);
  }
  EXPECT_EQ(policy.SelectArm(stats, &rng), 0u);
}

TEST(Ucb1Test, ExplorationBonusRevisitsNeglectedArm) {
  Ucb1Policy policy;
  ArmStats stats(2);
  Rng rng(10);
  // Arm 0 slightly better but hammered; arm 1 pulled once.
  for (int i = 0; i < 500; ++i) stats.Record(0, 0.55);
  stats.Record(1, 0.5);
  EXPECT_EQ(policy.SelectArm(stats, &rng), 1u);
}

TEST(ThompsonTest, RequiresReset) {
  ThompsonPolicy policy;
  ArmStats stats(2);
  Rng rng(11);
  EXPECT_DEATH(policy.SelectArm(stats, &rng), "Reset");
}

TEST(Exp3Test, RequiresReset) {
  Exp3Policy policy;
  ArmStats stats(2);
  Rng rng(12);
  EXPECT_DEATH(policy.SelectArm(stats, &rng), "Reset");
}

TEST(Exp3Test, WeightsStayFiniteOverLongRuns) {
  Exp3Policy policy;
  ArmStats stats(3);
  policy.Reset(3);
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    double r = arm == 0 ? 1.0 : 0.0;
    stats.Record(arm, r);
    policy.Observe(arm, r);
  }
  // If weights overflowed this would have produced NaN selections and
  // tripped the uniform fallback forever; the best arm must dominate.
  EXPECT_GT(stats.pulls(0), 10000u);
}

TEST(SoftmaxTest, TemperatureControlsGreediness) {
  ArmStats stats(2);
  Rng rng(14);
  for (int i = 0; i < 20; ++i) {
    stats.Record(0, 1.0);
    stats.Record(1, 0.0);
  }
  SoftmaxOptions cold;
  cold.temperature = 0.01;
  SoftmaxPolicy greedy(cold);
  int arm0 = 0;
  for (int i = 0; i < 200; ++i) arm0 += greedy.SelectArm(stats, &rng) == 0;
  EXPECT_GT(arm0, 195);

  SoftmaxOptions hot;
  hot.temperature = 100.0;
  SoftmaxPolicy uniform(hot);
  arm0 = 0;
  for (int i = 0; i < 2000; ++i) arm0 += uniform.SelectArm(stats, &rng) == 0;
  EXPECT_NEAR(arm0, 1000, 150);
}

TEST(Exp3Test, OnArmAddedStartsAtMaxActiveWeight) {
  Exp3Policy policy;
  ArmStats stats(2);
  policy.Reset(2);
  Rng rng(15);
  // Skew the weights hard toward arm 0.
  for (int i = 0; i < 500; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    double r = arm == 0 ? 1.0 : 0.0;
    stats.Record(arm, r);
    policy.Observe(arm, r);
  }
  size_t new_arm = stats.AddArm();
  policy.OnArmAdded(new_arm);
  std::vector<double> probs;
  policy.ScoreArms(stats, &probs);
  ASSERT_EQ(probs.size(), 3u);
  // Born at the maximum active weight: the newborn's choice probability
  // ties the current leader and dominates the starved arm.
  EXPECT_NEAR(probs[new_arm], probs[0], 1e-9);
  EXPECT_GT(probs[new_arm], probs[1]);
}

TEST(ThompsonTest, OnArmAddedStartsAtBarePrior) {
  ThompsonOptions opts;
  opts.prior_alpha = 1.0;
  opts.prior_beta = 1.0;
  ThompsonPolicy policy(opts);
  ArmStats stats(2);
  policy.Reset(2);
  Rng rng(16);
  for (int i = 0; i < 200; ++i) {
    size_t arm = policy.SelectArm(stats, &rng);
    stats.Record(arm, 1.0);
    policy.Observe(arm, 1.0);
  }
  size_t new_arm = stats.AddArm();
  policy.OnArmAdded(new_arm);
  std::vector<double> means;
  policy.ScoreArms(stats, &means);
  ASSERT_EQ(means.size(), 3u);
  // Zero pseudo-counts: posterior mean is exactly the prior's 0.5, while
  // the trained arms sit near 1.
  EXPECT_NEAR(means[new_arm], 0.5, 1e-9);
  EXPECT_GT(means[0], 0.8);
}

TEST(PolicyFactoryTest, NamesRoundTrip) {
  for (PolicyKind kind : kAllKinds) {
    auto policy = MakePolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
  EXPECT_STREQ(PolicyKindName(PolicyKind::kUcb1), "ucb1");
}

}  // namespace
}  // namespace zombie
