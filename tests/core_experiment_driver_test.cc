#include "core/experiment_driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "data/corpus_source.h"
#include "featureeng/feature_cache.h"
#include "index/incremental_grouper.h"
#include "index/kmeans_grouper.h"
#include "ml/feature_pruner.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"

namespace zombie {
namespace {

// Small but non-trivial workload shared by all tests in this file.
struct Fixture {
  Fixture() : task(MakeTask(TaskKind::kWebCat, 1200, 42)) {
    KMeansGrouper grouper(8, 3);
    grouping = grouper.Group(task.corpus);
  }

  EngineOptions SmallOptions() const {
    EngineOptions opts;
    opts.seed = 7;
    opts.holdout_size = 100;
    opts.eval_every = 20;
    opts.stop.min_items = 100;
    return opts;
  }

  ExperimentGrid SmallGrid() const {
    ExperimentGrid grid;
    grid.policies = {PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1};
    grid.groupings = {&grouping};
    grid.rewards = {&reward};
    grid.learners = {&learner};
    grid.seeds = {1, 2, 3};
    return grid;
  }

  Task task;
  GroupingResult grouping;
  LabelReward reward;
  NaiveBayesLearner learner;
};

void ExpectSameRun(const RunResult& a, const RunResult& b, size_t trial) {
  EXPECT_EQ(a.items_processed, b.items_processed) << "trial " << trial;
  EXPECT_EQ(a.positives_processed, b.positives_processed) << "trial " << trial;
  EXPECT_EQ(a.loop_virtual_micros, b.loop_virtual_micros) << "trial " << trial;
  EXPECT_EQ(a.final_quality, b.final_quality) << "trial " << trial;
  ASSERT_EQ(a.curve.size(), b.curve.size()) << "trial " << trial;
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve.point(i).quality, b.curve.point(i).quality);
    EXPECT_EQ(a.curve.point(i).virtual_micros, b.curve.point(i).virtual_micros);
  }
}

TEST(ExperimentGridTest, SizeIsCrossProduct) {
  Fixture f;
  EXPECT_EQ(f.SmallGrid().size(), 2u * 1u * 1u * 1u * 3u);
}

TEST(ExperimentGridTest, ValidateRejectsEmptyAxes) {
  Fixture f;
  ExperimentGrid grid = f.SmallGrid();
  EXPECT_TRUE(grid.Validate().ok());

  ExperimentGrid no_policies = grid;
  no_policies.policies.clear();
  EXPECT_TRUE(no_policies.Validate().code() == StatusCode::kInvalidArgument);

  ExperimentGrid no_groupings = grid;
  no_groupings.groupings.clear();
  EXPECT_TRUE(no_groupings.Validate().code() == StatusCode::kInvalidArgument);

  ExperimentGrid no_rewards = grid;
  no_rewards.rewards.clear();
  EXPECT_TRUE(no_rewards.Validate().code() == StatusCode::kInvalidArgument);

  ExperimentGrid no_learners = grid;
  no_learners.learners.clear();
  EXPECT_TRUE(no_learners.Validate().code() == StatusCode::kInvalidArgument);

  ExperimentGrid no_seeds = grid;
  no_seeds.seeds.clear();
  EXPECT_TRUE(no_seeds.Validate().code() == StatusCode::kInvalidArgument);
}

TEST(ExperimentGridTest, ValidateRejectsNullPrototypes) {
  Fixture f;
  ExperimentGrid grid = f.SmallGrid();
  grid.groupings.push_back(nullptr);
  EXPECT_TRUE(grid.Validate().code() == StatusCode::kInvalidArgument);

  grid = f.SmallGrid();
  grid.rewards.push_back(nullptr);
  EXPECT_TRUE(grid.Validate().code() == StatusCode::kInvalidArgument);

  grid = f.SmallGrid();
  grid.learners.push_back(nullptr);
  EXPECT_TRUE(grid.Validate().code() == StatusCode::kInvalidArgument);
}

TEST(ExperimentDriverTest, RunGridPropagatesValidationError) {
  Fixture f;
  ExperimentDriverOptions opts;
  opts.engine = f.SmallOptions();
  ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);
  ExperimentGrid empty;
  auto result = driver.RunGrid(empty);
  EXPECT_TRUE(result.status().code() == StatusCode::kInvalidArgument);
}

TEST(ExperimentDriverTest, ResultsComeBackInGridOrder) {
  Fixture f;
  ExperimentDriverOptions opts;
  opts.num_threads = 4;
  opts.engine = f.SmallOptions();
  ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);

  ExperimentGrid grid = f.SmallGrid();
  auto trials = driver.RunGrid(grid);
  ASSERT_TRUE(trials.ok()) << trials.status().ToString();
  ASSERT_EQ(trials.value().size(), grid.size());
  // Row-major: policy-major, seed-minor.
  for (size_t i = 0; i < trials.value().size(); ++i) {
    const TrialSpec& spec = trials.value()[i].spec;
    EXPECT_EQ(spec.index, i);
    EXPECT_EQ(spec.policy, grid.policies[i / grid.seeds.size()]);
    EXPECT_EQ(spec.seed, grid.seeds[i % grid.seeds.size()]);
    EXPECT_GT(trials.value()[i].run.items_processed, 0u);
  }
}

// The determinism contract the driver documents: the returned vector is
// bit-identical at any thread count.
TEST(ExperimentDriverTest, ThreadCountDoesNotChangeResults) {
  Fixture f;
  ExperimentGrid grid = f.SmallGrid();

  auto run_with_threads = [&](size_t n) {
    ExperimentDriverOptions opts;
    opts.num_threads = n;
    opts.engine = f.SmallOptions();
    ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);
    auto trials = driver.RunGrid(grid);
    ZCHECK_OK(trials.status());
    return std::move(trials).value();
  };

  std::vector<TrialResult> serial = run_with_threads(1);
  for (size_t n : {2u, 8u}) {
    std::vector<TrialResult> parallel = run_with_threads(n);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectSameRun(serial[i].run, parallel[i].run, i);
    }
  }
}

// A shared feature cache accelerates trials but must never leak between
// them in a way that alters results.
TEST(ExperimentDriverTest, SharedCacheDoesNotChangeResults) {
  Fixture f;
  ExperimentGrid grid = f.SmallGrid();

  ExperimentDriverOptions plain_opts;
  plain_opts.num_threads = 4;
  plain_opts.engine = f.SmallOptions();
  ExperimentDriver plain(&f.task.corpus, &f.task.pipeline, plain_opts);
  auto plain_trials = plain.RunGrid(grid);
  ASSERT_TRUE(plain_trials.ok());

  FeatureCache cache;
  ExperimentDriverOptions cached_opts = plain_opts;
  cached_opts.cache = &cache;
  ExperimentDriver cached(&f.task.corpus, &f.task.pipeline, cached_opts);
  auto cached_trials = cached.RunGrid(grid);
  ASSERT_TRUE(cached_trials.ok());

  ASSERT_EQ(plain_trials.value().size(), cached_trials.value().size());
  for (size_t i = 0; i < plain_trials.value().size(); ++i) {
    ExpectSameRun(plain_trials.value()[i].run, cached_trials.value()[i].run,
                  i);
  }
  // All trials share one pipeline, so cross-trial hits must have happened.
  EXPECT_GT(cache.Stats().hits, 0u);
}

// RunScanBaselines is the same computation as the serial baseline helpers;
// the pool only changes who executes it.
TEST(ExperimentDriverTest, ScanBaselinesMatchSerialBaselines) {
  Fixture f;
  ExperimentDriverOptions opts;
  opts.num_threads = 4;
  opts.engine = f.SmallOptions();
  ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);

  std::vector<uint64_t> seeds = {11, 12, 13};
  std::vector<RunResult> random = driver.RunScanBaselines(seeds, f.learner);
  std::vector<RunResult> sequential =
      driver.RunScanBaselines(seeds, f.learner, /*sequential=*/true);
  ASSERT_EQ(random.size(), seeds.size());
  ASSERT_EQ(sequential.size(), seeds.size());

  for (size_t i = 0; i < seeds.size(); ++i) {
    EngineOptions eopts = f.SmallOptions();
    eopts.seed = seeds[i];
    ZombieEngine engine(&f.task.corpus, &f.task.pipeline,
                        FullScanOptions(eopts));
    ExpectSameRun(RunRandomBaseline(engine, f.learner), random[i], i);
    ExpectSameRun(RunSequentialBaseline(engine, f.learner), sequential[i], i);
  }
}

// --- Prunings axis (per-arm RunSpec::pruning_override through the grid). --

TEST(ExperimentGridTest, PruningsAxisMultipliesSizeAndLabels) {
  Fixture f;
  ExperimentGrid grid = f.SmallGrid();
  EXPECT_EQ(grid.size(), 6u);
  FeaturePrunerOptions conservative = ConservativePruning();
  grid.prunings = {nullptr, &conservative};
  EXPECT_EQ(grid.size(), 12u);
  EXPECT_TRUE(grid.Validate().ok());
}

TEST(ExperimentDriverTest, PruningsAxisExpandsInOrderWithStableLabels) {
  Fixture f;
  ExperimentDriverOptions opts;
  opts.num_threads = 4;
  opts.engine = f.SmallOptions();
  // Enough post-freeze runway (freeze_after_items defaults to 100) for the
  // override to leave a mark on the run fingerprint.
  opts.engine.stop.max_items = 200;
  ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);

  FeaturePrunerOptions conservative = ConservativePruning();
  ExperimentGrid grid = f.SmallGrid();
  grid.policies = {PolicyKind::kEpsilonGreedy};
  grid.seeds = {1, 2};
  grid.prunings = {nullptr, &conservative};
  auto trials = driver.RunGrid(grid);
  ASSERT_TRUE(trials.ok()) << trials.status().ToString();
  ASSERT_EQ(trials.value().size(), 4u);
  // Expansion order: prunings between learners and seeds (seed-minor).
  for (size_t i = 0; i < trials.value().size(); ++i) {
    const TrialSpec& spec = trials.value()[i].spec;
    EXPECT_EQ(spec.index, i);
    EXPECT_EQ(spec.pruning, grid.prunings[i / 2]);
    EXPECT_EQ(spec.pruning_index, i / 2);
    EXPECT_EQ(spec.seed, grid.seeds[i % 2]);
    // Labels: the no-override cell keeps the legacy label, the override
    // cell appends its axis position.
    if (spec.pruning == nullptr) {
      EXPECT_EQ(spec.Label().find("/prune@"), std::string::npos);
    } else {
      EXPECT_NE(spec.Label().find("/prune@1"), std::string::npos)
          << spec.Label();
    }
  }
  // The prune-off and prune-on arms of a seed really differ (the override
  // reached the engine), while same-pruning same-seed cells reproduce the
  // legacy (no-axis) grid exactly.
  ExperimentGrid legacy = grid;
  legacy.prunings.clear();
  auto legacy_trials = driver.RunGrid(legacy);
  ASSERT_TRUE(legacy_trials.ok());
  ASSERT_EQ(legacy_trials.value().size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    ExpectSameRun(legacy_trials.value()[s].run, trials.value()[s].run, s);
    EXPECT_EQ(legacy_trials.value()[s].spec.Label(),
              trials.value()[s].spec.Label());
  }
  EXPECT_NE(trials.value()[0].run.Fingerprint(),
            trials.value()[2].run.Fingerprint())
      << "pruning override had no observable effect";
}

// --- Streaming grids (ExperimentDriverOptions::stream). -------------------

TEST(ExperimentDriverTest, StreamingGridDeterministicAcrossThreads) {
  Fixture f;
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 6;
  kopts.seed = 5;
  kopts.split_threshold = 16;
  IncrementalKMeansGrouper igrouper(kopts);
  const size_t base = 800;
  GroupingResult base_grouping = igrouper.GroupBase(f.task.corpus, base);
  ScheduledCorpusSource source(
      &f.task.corpus, base,
      BuildArrivalSchedule(f.task.corpus, base, ArrivalScheduleOptions{}));

  ExperimentGrid grid;
  grid.policies = {PolicyKind::kEpsilonGreedy, PolicyKind::kSlidingUcb};
  grid.groupings = {&base_grouping};
  grid.rewards = {&f.reward};
  grid.learners = {&f.learner};
  grid.seeds = {1, 2};

  auto run_with_threads = [&](size_t n) {
    ExperimentDriverOptions opts;
    opts.num_threads = n;
    opts.engine = f.SmallOptions();
    opts.engine.stop.max_items = 150;
    opts.stream = &source;
    opts.incremental_grouper = &igrouper;
    ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);
    auto trials = driver.RunGrid(grid);
    ZCHECK_OK(trials.status());
    return std::move(trials).value();
  };

  std::vector<TrialResult> serial = run_with_threads(1);
  // Non-vacuity: streaming really reached the trials (arms can outgrow the
  // base grouping).
  for (const TrialResult& t : serial) {
    EXPECT_GE(t.run.arms.size(), base_grouping.num_groups());
  }
  std::vector<TrialResult> parallel = run_with_threads(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameRun(serial[i].run, parallel[i].run, i);
    ASSERT_EQ(serial[i].run.arms.size(), parallel[i].run.arms.size()) << i;
  }
}

TEST(ExperimentDriverTest, ZeroThreadsResolvesToHardware) {
  Fixture f;
  ExperimentDriverOptions opts;
  opts.num_threads = 0;
  ExperimentDriver driver(&f.task.corpus, &f.task.pipeline, opts);
  EXPECT_GE(driver.num_threads(), 1u);
}

}  // namespace
}  // namespace zombie
