// E5 — grouping-strategy comparison figure analogue: every index-
// construction strategy on WebCat and EntityExtract, including the
// (fictional) oracle upper bounds.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "index/metadata_grouper.h"
#include "index/oracle_grouper.h"
#include "index/random_grouper.h"
#include "index/token_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

std::vector<std::unique_ptr<Grouper>> GroupersFor(TaskKind kind) {
  std::vector<std::unique_ptr<Grouper>> out;
  out.push_back(std::make_unique<RandomGrouper>(32, 7));
  out.push_back(std::make_unique<KMeansGrouper>(32, 7));
  TokenGrouperOptions topts;
  if (kind == TaskKind::kEntity) {
    for (size_t m = 0; m < 5; ++m) {
      topts.seed_terms.push_back(StrFormat("topic0_w%zu", m));
    }
  }
  out.push_back(std::make_unique<TokenGrouper>(topts));
  out.push_back(std::make_unique<MetadataGrouper>(64));
  out.push_back(std::make_unique<OracleGrouper>(OracleMode::kTopic));
  out.push_back(std::make_unique<OracleGrouper>(OracleMode::kLabel));
  return out;
}

void Run() {
  PrintPreamble(
      "E5: grouping strategy comparison",
      "the paper's index-construction comparison",
      "oracle-label bounds everything; metadata wins when domains carry "
      "the signal (webcat), the seeded token index wins on extraction "
      "(entity); random grouping degrades to ~1x. The balance reward is "
      "used so that very pure groups (oracle) do not skew the training "
      "stream and break the learner's class prior");

  TableWriter table({"task", "grouper", "groups", "items(mean)", "final_q",
                     "pos_share", "speedup95_t", "speedup95_items"});
  BenchReporter reporter("e5_groupers");

  for (TaskKind kind : {TaskKind::kWebCat, TaskKind::kEntity}) {
    Task task = MakeTask(kind, BenchCorpusSize(), 42);
    std::vector<RunResult> baselines =
        RunScanTrials(task, BenchEngineOptions(1));
    reporter.AddRuns(task.name + "/randomscan", baselines);
    for (auto& grouper : GroupersFor(kind)) {
      GroupingResult grouping = grouper->Group(task.corpus);
      NaiveBayesLearner nb;
      BalanceReward reward;
      std::vector<RunResult> runs =
          RunZombieTrials(task, grouping, PolicyKind::kEpsilonGreedy, reward,
                          nb, BenchEngineOptions(1));
      double pos_share = 0.0;
      for (const RunResult& r : runs) {
        pos_share += r.items_processed
                         ? static_cast<double>(r.positives_processed) /
                               static_cast<double>(r.items_processed)
                         : 0.0;
      }
      pos_share /= static_cast<double>(runs.size());
      MeanSpeedup m = AverageSpeedup(baselines, runs, 0.95);
      table.BeginRow();
      table.Cell(task.name);
      table.Cell(grouper->name());
      table.Cell(static_cast<int64_t>(grouping.num_groups()));
      table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
      table.Cell(MeanFinalQuality(runs), 3);
      table.Cell(pos_share, 3);
      table.Cell(m.time_speedup, 2);
      table.Cell(m.items_speedup, 2);
      reporter.AddRuns(task.name + "/" + grouper->name(), runs);
    }
  }
  FinishTable(table, "e5_groupers");
  reporter.Finish();
  std::printf("\nnote: oracle groupers read hidden ground truth and exist "
              "only to bound the attainable speedup.\n");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
