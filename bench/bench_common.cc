#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "ml/naive_bayes.h"
#include "util/logging.h"

namespace zombie {
namespace bench {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

size_t BenchCorpusSize() { return EnvSize("ZOMBIE_BENCH_DOCS", 12000); }

std::vector<uint64_t> BenchSeeds() {
  size_t trials = EnvSize("ZOMBIE_BENCH_TRIALS", 3);
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < trials; ++i) seeds.push_back(i + 1);
  return seeds;
}

EngineOptions BenchEngineOptions(uint64_t seed) {
  EngineOptions o;
  o.seed = seed;
  o.holdout_size = 400;
  o.holdout_positive_fraction = 0.25;
  o.eval_every = 25;
  o.metric = QualityMetric::kF1;
  return o;
}

RunResult RunZombieTrial(const Task& task, const GroupingResult& grouping,
                         const BanditPolicy& policy,
                         const RewardFunction& reward,
                         const Learner& learner, const EngineOptions& opts) {
  ZombieEngine engine(&task.corpus, &task.pipeline, opts);
  return engine.Run(grouping, policy, learner, reward);
}

RunResult RunScanTrial(const Task& task, const EngineOptions& opts,
                       bool sequential) {
  ZombieEngine engine(&task.corpus, &task.pipeline, FullScanOptions(opts));
  // The scan baselines use the default naive Bayes learner, matching the
  // Zombie side in every experiment that calls this helper.
  NaiveBayesLearner nb;
  return sequential ? RunSequentialBaseline(engine, nb)
                    : RunRandomBaseline(engine, nb);
}

MeanSpeedup AverageSpeedup(const std::vector<RunResult>& baselines,
                           const std::vector<RunResult>& zombies,
                           double quality_fraction) {
  ZCHECK_EQ(baselines.size(), zombies.size());
  MeanSpeedup m;
  m.total_trials = baselines.size();
  double time_sum = 0.0;
  double items_sum = 0.0;
  for (size_t i = 0; i < baselines.size(); ++i) {
    SpeedupReport s =
        ComputeSpeedup(baselines[i], zombies[i], quality_fraction);
    if (!s.valid()) continue;
    time_sum += s.time_speedup;
    items_sum += s.items_speedup;
    ++m.valid_trials;
  }
  if (m.valid_trials > 0) {
    m.time_speedup = time_sum / static_cast<double>(m.valid_trials);
    m.items_speedup = items_sum / static_cast<double>(m.valid_trials);
  }
  return m;
}

void FinishTable(const TableWriter& table, const char* name) {
  table.Print();
  const char* dir = std::getenv("ZOMBIE_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  if (table.WriteCsvFile(path)) {
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

void PrintPreamble(const char* experiment_id, const char* reproduces,
                   const char* expected_shape) {
  std::printf("=== %s ===\n", experiment_id);
  std::printf("reproduces: %s\n", reproduces);
  std::printf("expected shape: %s\n", expected_shape);
  std::printf("scale: %zu docs, %zu trials (ZOMBIE_BENCH_DOCS / "
              "ZOMBIE_BENCH_TRIALS to change)\n\n",
              BenchCorpusSize(), BenchSeeds().size());
}

}  // namespace bench
}  // namespace zombie
