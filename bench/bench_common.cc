#include "bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

size_t BenchCorpusSize() { return EnvSize("ZOMBIE_BENCH_DOCS", 12000); }

std::vector<uint64_t> BenchSeeds() {
  size_t trials = EnvSize("ZOMBIE_BENCH_TRIALS", 3);
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < trials; ++i) seeds.push_back(i + 1);
  return seeds;
}

size_t BenchThreads() {
  // 0 = let the driver resolve hardware concurrency.
  return EnvSize("ZOMBIE_BENCH_THREADS", 0);
}

EngineOptions BenchEngineOptions(uint64_t seed) {
  EngineOptions o;
  o.seed = seed;
  o.holdout_size = 400;
  o.holdout_positive_fraction = 0.25;
  o.eval_every = 25;
  o.metric = QualityMetric::kF1;
  return o;
}

RunResult RunZombieTrial(const Task& task, const GroupingResult& grouping,
                         const BanditPolicy& policy,
                         const RewardFunction& reward,
                         const Learner& learner, const EngineOptions& opts) {
  ZombieEngine engine(&task.corpus, &task.pipeline, opts);
  return engine.Run(RunSpec(grouping, policy, learner, reward));
}

std::vector<RunResult> RunZombieTrials(const Task& task,
                                       const GroupingResult& grouping,
                                       PolicyKind policy,
                                       const RewardFunction& reward,
                                       const Learner& learner,
                                       const EngineOptions& base,
                                       FeatureCache* cache) {
  ExperimentDriverOptions dopts;
  dopts.num_threads = BenchThreads();
  dopts.engine = base;
  dopts.cache = cache;
  ExperimentDriver driver(&task.corpus, &task.pipeline, dopts);
  ExperimentGrid grid;
  grid.policies = {policy};
  grid.groupings = {&grouping};
  grid.rewards = {&reward};
  grid.learners = {&learner};
  grid.seeds = BenchSeeds();
  StatusOr<std::vector<TrialResult>> trials = driver.RunGrid(grid);
  ZCHECK_OK(trials.status());
  std::vector<RunResult> runs;
  runs.reserve(trials.value().size());
  for (TrialResult& t : trials.value()) runs.push_back(std::move(t.run));
  return runs;
}

std::vector<RunResult> RunScanTrials(const Task& task,
                                     const EngineOptions& base,
                                     bool sequential, const Learner* learner) {
  ExperimentDriverOptions dopts;
  dopts.num_threads = BenchThreads();
  dopts.engine = base;
  ExperimentDriver driver(&task.corpus, &task.pipeline, dopts);
  // The scan baselines default to naive Bayes, matching the Zombie side in
  // every experiment that calls this helper.
  NaiveBayesLearner nb;
  return driver.RunScanBaselines(BenchSeeds(),
                                 learner != nullptr ? *learner : nb,
                                 sequential);
}

MeanSpeedup AverageSpeedup(const std::vector<RunResult>& baselines,
                           const std::vector<RunResult>& zombies,
                           double quality_fraction) {
  ZCHECK_EQ(baselines.size(), zombies.size());
  MeanSpeedup m;
  m.total_trials = baselines.size();
  double time_sum = 0.0;
  double items_sum = 0.0;
  for (size_t i = 0; i < baselines.size(); ++i) {
    SpeedupReport s =
        ComputeSpeedup(baselines[i], zombies[i], quality_fraction);
    if (!s.valid()) continue;
    time_sum += s.time_speedup;
    items_sum += s.items_speedup;
    ++m.valid_trials;
  }
  if (m.valid_trials > 0) {
    m.time_speedup = time_sum / static_cast<double>(m.valid_trials);
    m.items_speedup = items_sum / static_cast<double>(m.valid_trials);
  }
  return m;
}

void FinishTable(const TableWriter& table, const char* name) {
  table.Print();
  const char* dir = std::getenv("ZOMBIE_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  if (table.WriteCsvFile(path)) {
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

void PrintPreamble(const char* experiment_id, const char* reproduces,
                   const char* expected_shape) {
  std::printf("=== %s ===\n", experiment_id);
  std::printf("reproduces: %s\n", reproduces);
  std::printf("expected shape: %s\n", expected_shape);
  std::printf("scale: %zu docs, %zu trials (ZOMBIE_BENCH_DOCS / "
              "ZOMBIE_BENCH_TRIALS to change)\n\n",
              BenchCorpusSize(), BenchSeeds().size());
}

// --- BenchReporter ----------------------------------------------------------

namespace {

/// Escapes a string for a JSON literal (names are plain ASCII labels, but
/// escape defensively).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string GitRev() {
  for (const char* var : {"ZOMBIE_GIT_REV", "GITHUB_SHA"}) {
    const char* v = std::getenv(var);
    if (v != nullptr && v[0] != '\0') return v;
  }
  return "unknown";
}

}  // namespace

BenchReporter::BenchReporter(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchReporter::Add(Entry entry) {
  entries_.push_back(std::move(entry));
}

void BenchReporter::AddRuns(const std::string& name,
                            const std::vector<RunResult>& runs,
                            double cache_hit_rate) {
  Entry e;
  e.name = name;
  e.cache_hit_rate = cache_hit_rate;
  if (!runs.empty()) {
    double n = static_cast<double>(runs.size());
    for (const RunResult& r : runs) {
      e.wall_micros += static_cast<double>(r.wall_micros);
      e.virtual_micros += static_cast<double>(r.total_virtual_micros());
      e.items += static_cast<double>(r.items_processed);
      e.quality += r.final_quality;
    }
    e.wall_micros /= n;
    e.virtual_micros /= n;
    e.items /= n;
    e.quality /= n;
  }
  entries_.push_back(std::move(e));
}

void BenchReporter::AddMetric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

void BenchReporter::AttachMetrics(const MetricsRegistry& metrics) {
  observability_json_ = metrics.ToJson();
}

void BenchReporter::Finish() {
  const char* dir = std::getenv("ZOMBIE_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";

  std::string json;
  json += "{\n";
  json += "  \"schema_version\": 2,\n";
  json += StrFormat("  \"bench\": \"%s\",\n", JsonEscape(name_).c_str());
  json += StrFormat("  \"git_rev\": \"%s\",\n", JsonEscape(GitRev()).c_str());
  json += StrFormat("  \"generated_unix\": %lld,\n",
                    static_cast<long long>(std::time(nullptr)));
  json += StrFormat("  \"total_wall_micros\": %lld,\n",
                    static_cast<long long>(total_.ElapsedMicros()));
  json += "  \"entries\": [\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    json += StrFormat(
        "    {\"name\": \"%s\", \"wall_micros\": %.3f, "
        "\"virtual_micros\": %.3f, \"items\": %.3f, \"quality\": %.6f, "
        "\"cache_hit_rate\": %.6f}%s\n",
        JsonEscape(e.name).c_str(), e.wall_micros, e.virtual_micros,
        e.items, e.quality, e.cache_hit_rate,
        i + 1 < entries_.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"metrics\": {";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    json += StrFormat("%s\"%s\": %.6f", i == 0 ? "" : ", ",
                      JsonEscape(metrics_[i].first).c_str(),
                      metrics_[i].second);
  }
  json += "}";
  if (!observability_json_.empty()) {
    json += ",\n  \"observability\": ";
    json += observability_json_;
  }
  json += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("(json written to %s)\n", path.c_str());
}

}  // namespace bench
}  // namespace zombie
