// A2 (ablation) — cost-aware selection: when item costs are highly
// dispersed, dividing the reward by the item's relative cost makes the
// bandit maximize usefulness per unit *time* rather than per item.

#include <cstdio>

#include "bench_common.h"
#include "core/task_factory.h"
#include "data/webcat_generator.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "A2 (ablation): cost-aware rewards under cost dispersion (WebCat)",
      "a design-choice ablation implied by the paper's time-based objective",
      "with near-uniform costs the flag is a no-op; with heavy-tailed "
      "costs, cost-aware selection reaches quality in less virtual time "
      "(it may process *more*, cheaper, items)");

  TableWriter table({"cost_sigma", "cost_aware", "items(mean)",
                     "vtime(mean)", "final_q", "pos_share"});
  BenchReporter reporter("a2_cost_aware");

  for (double sigma : {0.2, 1.2}) {
    WebCatOptions wopts;
    wopts.num_documents = BenchCorpusSize();
    wopts.extraction_cost_sigma = sigma;
    wopts.seed = 42;
    Corpus corpus = GenerateWebCatCorpus(wopts);
    FeaturePipeline pipeline = MakeDefaultPipeline(TaskKind::kWebCat, corpus);
    Task task("webcat", std::move(corpus), std::move(pipeline));
    KMeansGrouper grouper(32, 7);
    GroupingResult grouping = grouper.Group(task.corpus);

    for (bool aware : {false, true}) {
      EngineOptions opts = BenchEngineOptions(1);
      opts.cost_aware_rewards = aware;
      NaiveBayesLearner nb;
      LabelReward reward;
      std::vector<RunResult> runs = RunZombieTrials(
          task, grouping, PolicyKind::kEpsilonGreedy, reward, nb, opts);
      double pos_share = 0.0;
      for (const RunResult& r : runs) {
        pos_share += r.items_processed
                         ? static_cast<double>(r.positives_processed) /
                               static_cast<double>(r.items_processed)
                         : 0.0;
      }
      pos_share /= static_cast<double>(runs.size());
      table.BeginRow();
      table.Cell(sigma, 1);
      table.Cell(aware ? "yes" : "no");
      table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
      table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
      table.Cell(MeanFinalQuality(runs), 3);
      table.Cell(pos_share, 3);
      reporter.AddRuns(
          StrFormat("sigma%.1f/%s", sigma, aware ? "aware" : "naive"), runs);
    }
  }
  FinishTable(table, "a2_cost_aware");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
