// E7 — label-skew sensitivity figure analogue: speedup as a function of
// the positive-class rate. This is the mechanism plot: input selection
// pays off exactly when useful items are rare.

#include <cstdio>

#include "bench_common.h"
#include "core/task_factory.h"
#include "data/webcat_generator.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E7: positive-rate sweep (WebCat family)",
      "the paper's skew-sensitivity analysis (balance reward adapts to any\n"
      "skew; the label reward would over-steer at high positive rates)",
      "speedup is largest at low positive rates and decays toward ~1x as "
      "the classes balance (at 50% every item is equally useful)");

  TableWriter table({"nominal_pos", "measured_pos", "base_items(mean)",
                     "zombie_items(mean)", "final_q", "speedup95_t",
                     "speedup95_items"});
  BenchReporter reporter("e7_skew");

  for (double pos : {0.01, 0.02, 0.05, 0.10, 0.25, 0.50}) {
    WebCatOptions wopts;
    wopts.num_documents = BenchCorpusSize();
    wopts.positive_fraction = pos;
    wopts.label_noise = 0.0;   // keep the x-axis honest
    wopts.topic_token_share = 0.30;  // learnable even from ~60 positives
    wopts.seed = 42;
    Corpus corpus = GenerateWebCatCorpus(wopts);
    FeaturePipeline pipeline = MakeDefaultPipeline(TaskKind::kWebCat, corpus);
    Task task("webcat", std::move(corpus), std::move(pipeline));

    KMeansGrouper grouper(32, 7);
    GroupingResult grouping = grouper.Group(task.corpus);

    NaiveBayesLearner nb;
    BalanceReward reward;
    std::vector<RunResult> zombies =
        RunZombieTrials(task, grouping, PolicyKind::kEpsilonGreedy, reward,
                        nb, BenchEngineOptions(1));
    std::vector<RunResult> baselines =
        RunScanTrials(task, BenchEngineOptions(1));
    MeanSpeedup m = AverageSpeedup(baselines, zombies, 0.95);
    table.BeginRow();
    table.Cell(pos, 2);
    table.Cell(task.corpus.ComputeStats().positive_fraction, 3);
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(baselines)));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(zombies)));
    table.Cell(MeanFinalQuality(zombies), 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
    reporter.AddRuns(StrFormat("pos%.2f/zombie", pos), zombies);
    reporter.AddRuns(StrFormat("pos%.2f/randomscan", pos), baselines);
    reporter.AddMetric(StrFormat("pos%.2f_speedup95", pos), m.time_speedup);
  }
  FinishTable(table, "e7_skew");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
