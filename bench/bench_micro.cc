// E11 — substrate microbenchmarks (google-benchmark): the hot paths of the
// inner loop and the index build.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bandit/ucb1.h"
#include "bench_common.h"
#include "core/task_factory.h"
#include "data/webcat_generator.h"
#include "featureeng/feature_cache.h"
#include "index/kmeans.h"
#include "index/signature.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/sparse_vector.h"
#include "util/logging.h"
#include "util/random.h"

namespace zombie {
namespace {

SparseVector RandomVector(Rng* rng, uint32_t dim, size_t nnz) {
  std::vector<std::pair<uint32_t, double>> pairs;
  pairs.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng->NextBelow(dim)),
                       rng->NextGaussian());
  }
  return SparseVector::FromPairs(std::move(pairs));
}

void BM_SparseDotSparse(benchmark::State& state) {
  Rng rng(1);
  SparseVector a = RandomVector(&rng, 8192, static_cast<size_t>(state.range(0)));
  SparseVector b = RandomVector(&rng, 8192, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(b));
  }
}
BENCHMARK(BM_SparseDotSparse)->Arg(32)->Arg(128)->Arg(512);

void BM_SparseDotDense(benchmark::State& state) {
  Rng rng(2);
  SparseVector a = RandomVector(&rng, 8192, static_cast<size_t>(state.range(0)));
  std::vector<double> dense(8192, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(dense));
  }
}
BENCHMARK(BM_SparseDotDense)->Arg(32)->Arg(128)->Arg(512);

void BM_SparseFromPairs(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<uint32_t, double>> pairs;
  for (int i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng.NextBelow(8192)), 1.0);
  }
  for (auto _ : state) {
    auto copy = pairs;
    benchmark::DoNotOptimize(SparseVector::FromPairs(std::move(copy)));
  }
}
BENCHMARK(BM_SparseFromPairs)->Arg(128)->Arg(1024);

void BM_NaiveBayesUpdate(benchmark::State& state) {
  Rng rng(4);
  NaiveBayesLearner nb;
  SparseVector x = RandomVector(&rng, 8192, 128);
  int32_t y = 0;
  for (auto _ : state) {
    nb.Update(x, y);
    y = 1 - y;
  }
}
BENCHMARK(BM_NaiveBayesUpdate);

void BM_NaiveBayesScore(benchmark::State& state) {
  Rng rng(5);
  NaiveBayesLearner nb;
  for (int i = 0; i < 200; ++i) {
    nb.Update(RandomVector(&rng, 8192, 128), i % 2);
  }
  SparseVector x = RandomVector(&rng, 8192, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Score(x));
  }
}
BENCHMARK(BM_NaiveBayesScore);

void BM_LogisticRegressionUpdate(benchmark::State& state) {
  Rng rng(6);
  LogisticRegressionLearner lr;
  SparseVector x = RandomVector(&rng, 8192, 128);
  int32_t y = 0;
  for (auto _ : state) {
    lr.Update(x, y);
    y = 1 - y;
  }
}
BENCHMARK(BM_LogisticRegressionUpdate);

void BM_PipelineExtract(benchmark::State& state) {
  Task task = MakeTask(TaskKind::kWebCat, 200, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        task.pipeline.Extract(task.corpus.doc(i % task.corpus.size()),
                              task.corpus));
    ++i;
  }
}
BENCHMARK(BM_PipelineExtract);

void BM_ComputeSignature(benchmark::State& state) {
  WebCatOptions opts;
  opts.num_documents = 100;
  Corpus corpus = GenerateWebCatCorpus(opts);
  SignatureConfig cfg;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeSignature(corpus.doc(i % corpus.size()), cfg));
    ++i;
  }
}
BENCHMARK(BM_ComputeSignature);

void BM_KMeans(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<double> row(64);
    for (double& v : row) v = rng.NextGaussian();
    rows.push_back(std::move(row));
  }
  KMeansConfig cfg;
  cfg.k = 16;
  cfg.max_iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(rows, cfg));
  }
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_PolicySelect_EpsilonGreedy(benchmark::State& state) {
  EpsilonGreedyPolicy policy;
  size_t arms = static_cast<size_t>(state.range(0));
  ArmStats stats(arms);
  policy.Reset(arms);
  Rng rng(8);
  for (size_t a = 0; a < arms; ++a) stats.Record(a, rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SelectArm(stats, &rng));
  }
}
BENCHMARK(BM_PolicySelect_EpsilonGreedy)->Arg(16)->Arg(256);

void BM_PolicySelect_Ucb1(benchmark::State& state) {
  Ucb1Policy policy;
  size_t arms = static_cast<size_t>(state.range(0));
  ArmStats stats(arms);
  Rng rng(9);
  for (size_t a = 0; a < arms; ++a) stats.Record(a, rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SelectArm(stats, &rng));
  }
}
BENCHMARK(BM_PolicySelect_Ucb1)->Arg(16)->Arg(256);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextZipf(8000, 1.1));
  }
}
BENCHMARK(BM_RngZipf);

void BM_CorpusGeneration(benchmark::State& state) {
  WebCatOptions opts;
  opts.num_documents = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateWebCatCorpus(opts));
  }
}
BENCHMARK(BM_CorpusGeneration)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_FeatureCacheLookupHit(benchmark::State& state) {
  Rng rng(11);
  FeatureCache cache;
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    cache.Insert(1, static_cast<uint32_t>(i),
                 FeatureCache::Entry{RandomVector(&rng, 8192, 64), 1, 1000});
  }
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Lookup(1, i++ % static_cast<uint32_t>(n)));
  }
}
BENCHMARK(BM_FeatureCacheLookupHit)->Arg(1024)->Arg(65536);

void BM_FeatureCacheInsert(benchmark::State& state) {
  Rng rng(12);
  FeatureCacheOptions copts;
  copts.capacity = 4096;  // exercises the eviction path
  FeatureCache cache(copts);
  SparseVector x = RandomVector(&rng, 8192, 64);
  uint32_t i = 0;
  for (auto _ : state) {
    cache.Insert(1, i++, FeatureCache::Entry{x, 1, 1000});
  }
}
BENCHMARK(BM_FeatureCacheInsert);

void BM_PipelineFingerprint(benchmark::State& state) {
  Task task = MakeTask(TaskKind::kWebCat, 200, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(task.pipeline.Fingerprint());
  }
}
BENCHMARK(BM_PipelineFingerprint);

// Console output plus the repo's machine-readable BENCH_micro.json (per-
// iteration real time in the wall_micros field) when ZOMBIE_BENCH_JSON_DIR
// is set.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      bench::BenchReporter::Entry e;
      e.name = run.benchmark_name();
      e.wall_micros = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e6;
      e.items = static_cast<double>(run.iterations);
      out_->Add(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReporter* out_;
};

}  // namespace
}  // namespace zombie

int main(int argc, char** argv) {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  zombie::bench::BenchReporter reporter("micro");
  zombie::JsonExportReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  reporter.Finish();
  return 0;
}
