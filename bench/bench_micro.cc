// E11 — substrate microbenchmarks (google-benchmark): the hot paths of the
// inner loop and the index build.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bandit/ucb1.h"
#include "bench_common.h"
#include "core/task_factory.h"
#include "data/webcat_generator.h"
#include "featureeng/feature_cache.h"
#include "index/kmeans.h"
#include "index/signature.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/simd/simd_level.h"
#include "ml/simd/sparse_kernels.h"
#include "ml/sparse_vector.h"
#include "text/hashing_vectorizer.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/random.h"

namespace zombie {
namespace {

SparseVector RandomVector(Rng* rng, uint32_t dim, size_t nnz) {
  std::vector<std::pair<uint32_t, double>> pairs;
  pairs.reserve(nnz);
  for (size_t i = 0; i < nnz; ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng->NextBelow(dim)),
                       rng->NextGaussian());
  }
  return SparseVector::FromPairs(std::move(pairs));
}

// Vector-pair pool for the sparse-kernel benchmarks. Benchmarking one pair
// repeatedly lets the branch predictor memorize the entire merge sequence
// — a state production code never reaches, since the engine dots each
// incoming example against ever-changing model state. Cycling a pool of
// distinct pairs keeps per-element branch outcomes data-random, which is
// what the kernels actually face (and what separates the merge variants:
// the run-skipping Dot is ~1.6x faster than a three-way merge here, while
// they tie on a single memorized pair).
constexpr size_t kSparsePool = 64;

std::vector<SparseVector> RandomVectorPool(uint64_t seed, uint32_t dim,
                                           size_t nnz) {
  Rng rng(seed);
  std::vector<SparseVector> pool;
  pool.reserve(kSparsePool);
  for (size_t p = 0; p < kSparsePool; ++p) {
    pool.push_back(RandomVector(&rng, dim, nnz));
  }
  return pool;
}

void BM_SparseDotSparse(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  std::vector<SparseVector> as = RandomVectorPool(1, 8192, nnz);
  std::vector<SparseVector> bs = RandomVectorPool(101, 8192, nnz);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) acc += as[p].Dot(bs[p]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}
BENCHMARK(BM_SparseDotSparse)->Arg(32)->Arg(128)->Arg(512);

void BM_SparseDotDense(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  std::vector<SparseVector> as = RandomVectorPool(2, 8192, nnz);
  std::vector<double> dense(8192, 0.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) acc += as[p].Dot(dense);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}
BENCHMARK(BM_SparseDotDense)->Arg(32)->Arg(128)->Arg(512);

void BM_SparseFromPairs(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<uint32_t, double>> pairs;
  for (int i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng.NextBelow(8192)), 1.0);
  }
  for (auto _ : state) {
    auto copy = pairs;
    benchmark::DoNotOptimize(SparseVector::FromPairs(std::move(copy)));
  }
}
BENCHMARK(BM_SparseFromPairs)->Arg(128)->Arg(1024);

// --- Reference kernels: the pre-CSR scalar implementations, kept
// bench-local so the kernel-ratio metrics below always compare the shipped
// kernels against exactly what they replaced (same inputs, same FP
// semantics — ratios are pure codegen/layout, not algorithm changes).
// noinline pins the call boundary: the originals lived in sparse_vector.cc
// (a separate TU, no LTO) and were never inlined into call sites, so
// letting the bench TU inline+specialize them would flatter the reference.

__attribute__((noinline)) double RefDotSparse(const SparseVector& a,
                                              const SparseVector& b) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.num_nonzero() && j < b.num_nonzero()) {
    if (a.index_at(i) < b.index_at(j)) {
      ++i;
    } else if (a.index_at(i) > b.index_at(j)) {
      ++j;
    } else {
      sum += a.value_at(i) * b.value_at(j);
      ++i;
      ++j;
    }
  }
  return sum;
}

__attribute__((noinline)) double RefDotDense(const SparseVector& a,
                                             const std::vector<double>& dense) {
  double sum = 0.0;
  for (size_t i = 0; i < a.num_nonzero(); ++i) {
    if (a.index_at(i) >= dense.size()) break;
    sum += a.value_at(i) * dense[a.index_at(i)];
  }
  return sum;
}

__attribute__((noinline)) double RefSquaredDistance(const SparseVector& a,
                                                    const SparseVector& b) {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.num_nonzero() || j < b.num_nonzero()) {
    if (j >= b.num_nonzero() ||
        (i < a.num_nonzero() && a.index_at(i) < b.index_at(j))) {
      s += a.value_at(i) * a.value_at(i);
      ++i;
    } else if (i >= a.num_nonzero() || a.index_at(i) > b.index_at(j)) {
      s += b.value_at(j) * b.value_at(j);
      ++j;
    } else {
      double d = a.value_at(i) - b.value_at(j);
      s += d * d;
      ++i;
      ++j;
    }
  }
  return s;
}

void BM_RefSparseDotSparse(benchmark::State& state) {
  // Same seeds/sizes as BM_SparseDotSparse: identical inputs.
  const size_t nnz = static_cast<size_t>(state.range(0));
  std::vector<SparseVector> as = RandomVectorPool(1, 8192, nnz);
  std::vector<SparseVector> bs = RandomVectorPool(101, 8192, nnz);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) acc += RefDotSparse(as[p], bs[p]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}
BENCHMARK(BM_RefSparseDotSparse)->Arg(32)->Arg(128)->Arg(512);

void BM_RefSparseDotDense(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  std::vector<SparseVector> as = RandomVectorPool(2, 8192, nnz);
  std::vector<double> dense(8192, 0.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) acc += RefDotDense(as[p], dense);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}
BENCHMARK(BM_RefSparseDotDense)->Arg(32)->Arg(128)->Arg(512);

void BM_SparseSquaredDistance(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  std::vector<SparseVector> as = RandomVectorPool(13, 8192, nnz);
  std::vector<SparseVector> bs = RandomVectorPool(113, 8192, nnz);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      acc += as[p].SquaredDistance(bs[p]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}
BENCHMARK(BM_SparseSquaredDistance)->Arg(128)->Arg(512);

void BM_RefSparseSquaredDistance(benchmark::State& state) {
  const size_t nnz = static_cast<size_t>(state.range(0));
  std::vector<SparseVector> as = RandomVectorPool(13, 8192, nnz);
  std::vector<SparseVector> bs = RandomVectorPool(113, 8192, nnz);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      acc += RefSquaredDistance(as[p], bs[p]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}
BENCHMARK(BM_RefSparseSquaredDistance)->Arg(128)->Arg(512);

// --- Per-ISA kernel benches (runtime-registered) --------------------------
//
// One benchmark per (available SIMD level, kernel), calling the level's
// dispatch table directly on the same seeded pools as the wrapper benches
// above. All levels go through the same function-pointer indirection, so
// scalar-vs-AVX2-vs-AVX-512 walls isolate the kernel body; the per-ISA
// "ratio.<isa>.<kernel>" metrics (scalar wall / ISA wall, computed below)
// are machine-independent and gated in bench/baseline.json. Registered at
// runtime because which levels exist depends on the host cpuid.

void BM_SimdDotSparseSparse(benchmark::State& state,
                            const simd::SparseKernels* k, size_t nnz) {
  std::vector<SparseVector> as = RandomVectorPool(1, 8192, nnz);
  std::vector<SparseVector> bs = RandomVectorPool(101, 8192, nnz);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      const SparseVector& a = as[p];
      const SparseVector& b = bs[p];
      acc += k->dot_sparse_sparse(a.indices().data(), a.values().data(),
                                  a.num_nonzero(), b.indices().data(),
                                  b.values().data(), b.num_nonzero());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}

void BM_SimdDotSparseDense(benchmark::State& state,
                           const simd::SparseKernels* k, size_t nnz) {
  std::vector<SparseVector> as = RandomVectorPool(2, 8192, nnz);
  std::vector<double> dense(8192, 0.5);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      const SparseVector& a = as[p];
      // Indices are all < 8192 == dense.size(), so n needs no cutoff.
      acc += k->dot_sparse_dense(a.indices().data(), a.values().data(),
                                 a.num_nonzero(), dense.data());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}

void BM_SimdAddScaledTo(benchmark::State& state, const simd::SparseKernels* k,
                        size_t nnz) {
  std::vector<SparseVector> as = RandomVectorPool(3, 8192, nnz);
  std::vector<double> out(8192, 0.0);
  for (auto _ : state) {
    for (size_t p = 0; p < kSparsePool; ++p) {
      const SparseVector& a = as[p];
      k->add_scaled_to(a.indices().data(), a.values().data(), a.num_nonzero(),
                       0.5, out.data());
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}

void BM_SimdSquaredDistance(benchmark::State& state,
                            const simd::SparseKernels* k, size_t nnz) {
  std::vector<SparseVector> as = RandomVectorPool(13, 8192, nnz);
  std::vector<SparseVector> bs = RandomVectorPool(113, 8192, nnz);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      const SparseVector& a = as[p];
      const SparseVector& b = bs[p];
      acc += k->squared_distance(a.indices().data(), a.values().data(),
                                 a.num_nonzero(), b.indices().data(),
                                 b.values().data(), b.num_nonzero());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}

// Mid-run dimension compaction: remap + left-pack a pool of rows through a
// half-pruned 8192-wide table. Out-of-place so the seeded inputs survive
// across iterations (the kernel itself also permits in-place).
void BM_SimdRemapSparseView(benchmark::State& state,
                            const simd::SparseKernels* k, size_t nnz) {
  std::vector<SparseVector> as = RandomVectorPool(7, 8192, nnz);
  std::vector<uint32_t> remap(8192);
  Rng rng(77);
  uint32_t next = 0;
  for (size_t f = 0; f < remap.size(); ++f) {
    remap[f] = rng.NextBelow(2) == 0 ? simd::kPrunedFeature : next++;
  }
  std::vector<uint32_t> out_idx(nnz);
  std::vector<double> out_val(nnz);
  for (auto _ : state) {
    size_t kept = 0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      const SparseVector& a = as[p];
      kept += k->remap_sparse_view(a.indices().data(), a.values().data(),
                                   a.num_nonzero(), remap.data(),
                                   remap.size(), out_idx.data(),
                                   out_val.data());
    }
    benchmark::DoNotOptimize(kept);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}

// Unbalanced merge: a document-sized row dotted against a centroid-sized
// row — the kNN/k-means shape, and the one run-skipping SIMD exists for
// (mismatch runs of ~20 on the dense side, retired 8/16 indices per vector
// compare; balanced same-density merges have runs of ~2, where the kernels
// fall back to their scalar probe and roughly tie).
void BM_SimdDotSparseSparseSkew(benchmark::State& state,
                                const simd::SparseKernels* k) {
  std::vector<SparseVector> docs = RandomVectorPool(1, 8192, 96);
  std::vector<SparseVector> centroids = RandomVectorPool(101, 8192, 2048);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t p = 0; p < kSparsePool; ++p) {
      const SparseVector& a = docs[p];
      const SparseVector& b = centroids[p];
      acc += k->dot_sparse_sparse(a.indices().data(), a.values().data(),
                                  a.num_nonzero(), b.indices().data(),
                                  b.values().data(), b.num_nonzero());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSparsePool));
}

// Kernels the per-ISA ratio metrics cover, in bench-name / metric-name form.
constexpr struct {
  const char* bench;
  const char* metric;
} kSimdKernelNames[] = {
    {"BM_SimdDotSparseSparse", "dot_sparse_sparse"},
    {"BM_SimdDotSparseDense", "dot_sparse_dense"},
    {"BM_SimdAddScaledTo", "add_scaled_to"},
    {"BM_SimdSquaredDistance", "squared_distance"},
    {"BM_SimdRemapSparseView", "remap_sparse_view"},
};
constexpr size_t kSimdBenchNnz = 128;  // matches the wrapper benches' gates
// Small-nnz sweep for the gathered sparse*dense dot: per-nnz walls locate
// the crossover below which gather setup loses to the scalar loop — the
// measurement behind kSimdMinEntriesDotSparseDense (EXPERIMENTS.md).
constexpr size_t kDotSparseDenseSweep[] = {8, 16, 32, 64, 256, 512};

void RegisterPerIsaKernelBenches() {
  for (simd::SimdLevel level : simd::AvailableLevels()) {
    const simd::SparseKernels* k = simd::KernelsForLevel(level);
    const std::string ln = simd::SimdLevelName(level);
    auto name = [&ln](const char* bench, size_t nnz) {
      return std::string(bench) + "/" + ln + "/" + std::to_string(nnz);
    };
    benchmark::RegisterBenchmark(
        name("BM_SimdDotSparseSparse", kSimdBenchNnz).c_str(),
        BM_SimdDotSparseSparse, k, kSimdBenchNnz);
    // A denser regime too: shorter mismatch runs stress the scan early-out.
    benchmark::RegisterBenchmark(
        name("BM_SimdDotSparseSparse", 512).c_str(), BM_SimdDotSparseSparse,
        k, size_t{512});
    benchmark::RegisterBenchmark(
        name("BM_SimdDotSparseDense", kSimdBenchNnz).c_str(),
        BM_SimdDotSparseDense, k, kSimdBenchNnz);
    for (size_t nnz : kDotSparseDenseSweep) {
      benchmark::RegisterBenchmark(
          name("BM_SimdDotSparseDense", nnz).c_str(), BM_SimdDotSparseDense,
          k, nnz);
    }
    benchmark::RegisterBenchmark(
        name("BM_SimdRemapSparseView", kSimdBenchNnz).c_str(),
        BM_SimdRemapSparseView, k, kSimdBenchNnz);
    benchmark::RegisterBenchmark(
        name("BM_SimdAddScaledTo", kSimdBenchNnz).c_str(), BM_SimdAddScaledTo,
        k, kSimdBenchNnz);
    benchmark::RegisterBenchmark(
        name("BM_SimdSquaredDistance", kSimdBenchNnz).c_str(),
        BM_SimdSquaredDistance, k, kSimdBenchNnz);
    benchmark::RegisterBenchmark(
        ("BM_SimdDotSparseSparseSkew/" + ln).c_str(),
        BM_SimdDotSparseSparseSkew, k);
  }
}

// --- Text hot path: owned-string tokenize+vectorize vs the view path. ----

std::string SyntheticDocument(size_t words) {
  Rng rng(14);
  static const char* kWords[] = {"zombie",  "feature",  "bandit", "input",
                                 "select",  "corpus",   "group",  "reward",
                                 "holdout", "pipeline", "sparse", "kernel"};
  std::string text;
  for (size_t i = 0; i < words; ++i) {
    text += kWords[rng.NextBelow(sizeof(kWords) / sizeof(kWords[0]))];
    text += (i % 11 == 0) ? ", " : " ";
  }
  return text;
}

// Document sizes mirror the sparse benches' nnz sweep: a short snippet, a
// typical crawl page, and a long article.
void BM_Tokenize(benchmark::State& state) {
  Tokenizer tokenizer;
  const std::string text =
      SyntheticDocument(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize)->Arg(100)->Arg(400)->Arg(1600);

void BM_TokenizeViews(benchmark::State& state) {
  Tokenizer tokenizer;
  const std::string text =
      SyntheticDocument(static_cast<size_t>(state.range(0)));
  TokenBuffer buffer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.TokenizeViews(text, &buffer));
  }
}
BENCHMARK(BM_TokenizeViews)->Arg(100)->Arg(400)->Arg(1600);

void BM_Vectorize(benchmark::State& state) {
  Tokenizer tokenizer;
  HashingVectorizer vectorizer(1 << 18, /*signed_hash=*/true);
  const std::string text =
      SyntheticDocument(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.Transform(tokenizer.Tokenize(text)));
  }
}
BENCHMARK(BM_Vectorize)->Arg(100)->Arg(400)->Arg(1600);

void BM_VectorizeViews(benchmark::State& state) {
  Tokenizer tokenizer;
  HashingVectorizer vectorizer(1 << 18, /*signed_hash=*/true);
  const std::string text =
      SyntheticDocument(static_cast<size_t>(state.range(0)));
  TokenBuffer buffer;
  TermCounts scratch;
  for (auto _ : state) {
    vectorizer.TransformViews(tokenizer.TokenizeViews(text, &buffer),
                              &scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_VectorizeViews)->Arg(100)->Arg(400)->Arg(1600);

void BM_NaiveBayesUpdate(benchmark::State& state) {
  Rng rng(4);
  NaiveBayesLearner nb;
  SparseVector x = RandomVector(&rng, 8192, 128);
  int32_t y = 0;
  for (auto _ : state) {
    nb.Update(x, y);
    y = 1 - y;
  }
}
BENCHMARK(BM_NaiveBayesUpdate);

void BM_NaiveBayesScore(benchmark::State& state) {
  Rng rng(5);
  NaiveBayesLearner nb;
  for (int i = 0; i < 200; ++i) {
    nb.Update(RandomVector(&rng, 8192, 128), i % 2);
  }
  SparseVector x = RandomVector(&rng, 8192, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Score(x));
  }
}
BENCHMARK(BM_NaiveBayesScore);

void BM_LogisticRegressionUpdate(benchmark::State& state) {
  Rng rng(6);
  LogisticRegressionLearner lr;
  SparseVector x = RandomVector(&rng, 8192, 128);
  int32_t y = 0;
  for (auto _ : state) {
    lr.Update(x, y);
    y = 1 - y;
  }
}
BENCHMARK(BM_LogisticRegressionUpdate);

// Deliberately benchmarks the raw pipeline, not ExtractionService::Featurize:
// this measures extraction cost itself, with no cache in the loop.
void BM_PipelineExtract(benchmark::State& state) {
  Task task = MakeTask(TaskKind::kWebCat, 200, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        task.pipeline.Extract(task.corpus.doc(i % task.corpus.size()),
                              task.corpus));
    ++i;
  }
}
BENCHMARK(BM_PipelineExtract);

void BM_ComputeSignature(benchmark::State& state) {
  WebCatOptions opts;
  opts.num_documents = 100;
  Corpus corpus = GenerateWebCatCorpus(opts);
  SignatureConfig cfg;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeSignature(corpus.doc(i % corpus.size()), cfg));
    ++i;
  }
}
BENCHMARK(BM_ComputeSignature);

void BM_KMeans(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<double> row(64);
    for (double& v : row) v = rng.NextGaussian();
    rows.push_back(std::move(row));
  }
  KMeansConfig cfg;
  cfg.k = 16;
  cfg.max_iterations = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(rows, cfg));
  }
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_PolicySelect_EpsilonGreedy(benchmark::State& state) {
  EpsilonGreedyPolicy policy;
  size_t arms = static_cast<size_t>(state.range(0));
  ArmStats stats(arms);
  policy.Reset(arms);
  Rng rng(8);
  for (size_t a = 0; a < arms; ++a) stats.Record(a, rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SelectArm(stats, &rng));
  }
}
BENCHMARK(BM_PolicySelect_EpsilonGreedy)->Arg(16)->Arg(256);

void BM_PolicySelect_Ucb1(benchmark::State& state) {
  Ucb1Policy policy;
  size_t arms = static_cast<size_t>(state.range(0));
  ArmStats stats(arms);
  Rng rng(9);
  for (size_t a = 0; a < arms; ++a) stats.Record(a, rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.SelectArm(stats, &rng));
  }
}
BENCHMARK(BM_PolicySelect_Ucb1)->Arg(16)->Arg(256);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextZipf(8000, 1.1));
  }
}
BENCHMARK(BM_RngZipf);

void BM_CorpusGeneration(benchmark::State& state) {
  WebCatOptions opts;
  opts.num_documents = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateWebCatCorpus(opts));
  }
}
BENCHMARK(BM_CorpusGeneration)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_FeatureCacheLookupHit(benchmark::State& state) {
  Rng rng(11);
  FeatureCache cache;
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    cache.Insert(1, static_cast<uint32_t>(i),
                 FeatureCache::Entry{RandomVector(&rng, 8192, 64), 1, 1000});
  }
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Lookup(1, i++ % static_cast<uint32_t>(n)));
  }
}
BENCHMARK(BM_FeatureCacheLookupHit)->Arg(1024)->Arg(65536);

void BM_FeatureCacheInsert(benchmark::State& state) {
  Rng rng(12);
  FeatureCacheOptions copts;
  copts.capacity = 4096;  // exercises the eviction path
  FeatureCache cache(copts);
  SparseVector x = RandomVector(&rng, 8192, 64);
  uint32_t i = 0;
  for (auto _ : state) {
    cache.Insert(1, i++, FeatureCache::Entry{x, 1, 1000});
  }
}
BENCHMARK(BM_FeatureCacheInsert);

void BM_PipelineFingerprint(benchmark::State& state) {
  Task task = MakeTask(TaskKind::kWebCat, 200, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(task.pipeline.Fingerprint());
  }
}
BENCHMARK(BM_PipelineFingerprint);

// Console output plus the repo's machine-readable BENCH_micro.json (per-
// iteration real time in the wall_micros field) when ZOMBIE_BENCH_JSON_DIR
// is set.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      bench::BenchReporter::Entry e;
      e.name = run.benchmark_name();
      e.wall_micros = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e6;
      e.items = static_cast<double>(run.iterations);
      walls_[e.name] = e.wall_micros;
      out_->Add(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Per-iteration wall time of a completed benchmark, or 0 if absent.
  double WallOf(const std::string& name) const {
    auto it = walls_.find(name);
    return it == walls_.end() ? 0.0 : it->second;
  }

 private:
  bench::BenchReporter* out_;
  std::map<std::string, double> walls_;
};

// Old-kernel / new-kernel wall ratios (> 1 means the new path is faster).
// Exported as "ratio.*" metrics in BENCH_micro.json; check_bench_regression
// surfaces them as the kernel-speedup table on the CI step summary.
void ExportKernelRatios(const JsonExportReporter& console,
                        bench::BenchReporter* reporter) {
  const std::pair<const char*, std::pair<const char*, const char*>> kPairs[] =
      {{"ratio.tokenize_100", {"BM_Tokenize/100", "BM_TokenizeViews/100"}},
       {"ratio.tokenize_400", {"BM_Tokenize/400", "BM_TokenizeViews/400"}},
       {"ratio.tokenize_1600", {"BM_Tokenize/1600", "BM_TokenizeViews/1600"}},
       {"ratio.vectorize_100", {"BM_Vectorize/100", "BM_VectorizeViews/100"}},
       {"ratio.vectorize_400", {"BM_Vectorize/400", "BM_VectorizeViews/400"}},
       {"ratio.vectorize_1600",
        {"BM_Vectorize/1600", "BM_VectorizeViews/1600"}},
       {"ratio.sparse_dot_sparse",
        {"BM_RefSparseDotSparse/128", "BM_SparseDotSparse/128"}},
       {"ratio.sparse_dot_dense",
        {"BM_RefSparseDotDense/128", "BM_SparseDotDense/128"}},
       {"ratio.sparse_squared_distance",
        {"BM_RefSparseSquaredDistance/128", "BM_SparseSquaredDistance/128"}}};
  for (const auto& [metric, pair] : kPairs) {
    const double old_wall = console.WallOf(pair.first);
    const double new_wall = console.WallOf(pair.second);
    if (old_wall > 0.0 && new_wall > 0.0) {
      reporter->AddMetric(metric, old_wall / new_wall);
    }
  }
}

// Per-ISA speedups over the scalar dispatch table, from the runtime-
// registered BM_Simd* benches: "ratio.<isa>.<kernel>" = scalar wall / ISA
// wall on identical inputs through identical indirection. Levels the host
// lacks produce no benches, so their metrics are simply absent and their
// baseline.json gates auto-skip (check_bench_regression reports them as
// "skipped (not run)").
void ExportPerIsaKernelRatios(const JsonExportReporter& console,
                              bench::BenchReporter* reporter) {
  for (simd::SimdLevel level :
       {simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
    const std::string ln = simd::SimdLevelName(level);
    for (const auto& kernel : kSimdKernelNames) {
      const std::string suffix = "/" + std::to_string(kSimdBenchNnz);
      const double scalar_wall =
          console.WallOf(std::string(kernel.bench) + "/scalar" + suffix);
      const double isa_wall =
          console.WallOf(std::string(kernel.bench) + "/" + ln + suffix);
      if (scalar_wall > 0.0 && isa_wall > 0.0) {
        reporter->AddMetric("ratio." + ln + "." + kernel.metric,
                            scalar_wall / isa_wall);
      }
    }
    const double skew_scalar =
        console.WallOf("BM_SimdDotSparseSparseSkew/scalar");
    const double skew_isa = console.WallOf("BM_SimdDotSparseSparseSkew/" + ln);
    if (skew_scalar > 0.0 && skew_isa > 0.0) {
      reporter->AddMetric("ratio." + ln + ".dot_sparse_sparse_skew",
                          skew_scalar / skew_isa);
    }
    // The cutoff sweep: where does the gathered sparse*dense kernel cross
    // scalar as rows shrink? Documented (not gated) in EXPERIMENTS.md.
    for (size_t nnz : kDotSparseDenseSweep) {
      const std::string suffix = "/" + std::to_string(nnz);
      const double scalar_wall =
          console.WallOf("BM_SimdDotSparseDense/scalar" + suffix);
      const double isa_wall =
          console.WallOf("BM_SimdDotSparseDense/" + ln + suffix);
      if (scalar_wall > 0.0 && isa_wall > 0.0) {
        reporter->AddMetric(
            "ratio." + ln + ".dot_sparse_dense_nnz" + std::to_string(nnz),
            scalar_wall / isa_wall);
      }
    }
  }
}

}  // namespace
}  // namespace zombie

int main(int argc, char** argv) {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::RegisterPerIsaKernelBenches();
  benchmark::Initialize(&argc, argv);
  zombie::bench::BenchReporter reporter("micro");
  zombie::JsonExportReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  zombie::ExportKernelRatios(console, &reporter);
  zombie::ExportPerIsaKernelRatios(console, &reporter);
  reporter.Finish();
  return 0;
}
