// E2 — headline speedup table: time (and items) to reach 90/95/99% of the
// full-scan baseline's converged quality, per task. The abstract's "up to
// 8x" claim lives here.

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "index/token_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E2: time-to-quality speedup over a random full scan",
      "the paper's headline feature-evaluation speedup (abstract: up to 8x)",
      "multi-x speedups on the skewed tasks, ~1x on the balanced control; "
      "ours can exceed 8x because synthetic groups are cleaner than a real "
      "crawl's (see EXPERIMENTS.md)");

  TableWriter table({"task", "grouper", "target", "baseline_t", "zombie_t",
                     "time_speedup", "items_speedup", "valid_trials"});
  BenchReporter reporter("e2_speedup");

  for (TaskKind kind :
       {TaskKind::kWebCat, TaskKind::kEntity, TaskKind::kBalanced}) {
    Task task = MakeTask(kind, BenchCorpusSize(), 42);

    // Grouping per task: k-means for content tasks, the engineer-seeded
    // token index for the extraction task.
    GroupingResult grouping;
    if (kind == TaskKind::kEntity) {
      TokenGrouperOptions topts;
      for (size_t m = 0; m < 5; ++m) {
        topts.seed_terms.push_back(StrFormat("topic0_w%zu", m));
      }
      TokenGrouper grouper(topts);
      grouping = grouper.Group(task.corpus);
    } else {
      KMeansGrouper grouper(32, 7);
      grouping = grouper.Group(task.corpus);
    }

    EngineOptions opts = BenchEngineOptions(1);
    NaiveBayesLearner nb;
    LabelReward reward;
    std::vector<RunResult> zombies = RunZombieTrials(
        task, grouping, PolicyKind::kEpsilonGreedy, reward, nb, opts);
    std::vector<RunResult> baselines = RunScanTrials(task, opts);
    reporter.AddRuns(std::string(task.name) + "/zombie", zombies);
    reporter.AddRuns(std::string(task.name) + "/randomscan", baselines);

    for (double fraction : {0.90, 0.95, 0.99}) {
      MeanSpeedup m = AverageSpeedup(baselines, zombies, fraction);
      // Representative absolute times from the first trial.
      SpeedupReport first = ComputeSpeedup(baselines[0], zombies[0], fraction);
      table.BeginRow();
      table.Cell(task.name);
      table.Cell(grouping.method);
      table.Cell(StrFormat("%.0f%%", fraction * 100.0));
      table.Cell(first.baseline_micros >= 0
                     ? FormatDuration(first.baseline_micros)
                     : "never");
      table.Cell(first.treatment_micros >= 0
                     ? FormatDuration(first.treatment_micros)
                     : "never");
      table.Cell(m.time_speedup, 2);
      table.Cell(m.items_speedup, 2);
      table.Cell(StrFormat("%zu/%zu", m.valid_trials, m.total_trials));
      reporter.AddMetric(StrFormat("%s_speedup_%.0f", task.name.c_str(),
                                   fraction * 100.0),
                         m.time_speedup);
    }
  }
  FinishTable(table, "e2_speedup");

  // --- Parallel holdout evaluation: wall-clock ratio of the serial eval
  // path over the sharded one (holdout_eval_threads), on a run where the
  // periodic evaluation dominates (large holdout, tight cadence). Results
  // must be identical — the sharded reduction is deterministic — so the
  // two runs are also an end-to-end A/B equivalence check.
  {
    Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
    KMeansGrouper grouper(32, 7);
    GroupingResult grouping = grouper.Group(task.corpus);
    EngineOptions opts = BenchEngineOptions(1);
    opts.holdout_size = 2000;
    opts.eval_every = 10;
    NaiveBayesLearner nb;
    LabelReward reward;

    Stopwatch serial_watch;
    RunResult serial = RunZombieTrial(task, grouping, *MakePolicy(PolicyKind::kEpsilonGreedy),
                                      reward, nb, opts);
    const int64_t serial_wall = serial_watch.ElapsedMicros();

    opts.holdout_eval_threads = 4;
    Stopwatch parallel_watch;
    RunResult parallel = RunZombieTrial(task, grouping, *MakePolicy(PolicyKind::kEpsilonGreedy),
                                        reward, nb, opts);
    const int64_t parallel_wall = parallel_watch.ElapsedMicros();

    const bool identical =
        serial.final_quality == parallel.final_quality &&
        serial.items_processed == parallel.items_processed &&
        serial.loop_virtual_micros == parallel.loop_virtual_micros;
    ZCHECK(identical)
        << "parallel holdout evaluation changed the run result";
    const double ratio = parallel_wall > 0
                             ? static_cast<double>(serial_wall) /
                                   static_cast<double>(parallel_wall)
                             : 0.0;
    reporter.AddMetric("parallel_holdout_eval_wall_ratio", ratio);
    std::printf(
        "\nparallel holdout eval (threads=4, holdout=2000): wall ratio "
        "%.2fx, results identical: %s\n",
        ratio, identical ? "yes" : "no");
  }

  reporter.Finish();
  std::printf(
      "\nnote: *_t columns are virtual data-processing time of trial 1 "
      "(holdout featurization included on both sides); speedups are means "
      "over valid trials.\n");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
