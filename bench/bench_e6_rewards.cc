// E6 — reward-function ablation table: what usefulness signal should the
// bandit maximize? The whole reward x seed grid runs as one
// ExperimentDriver batch.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E6: reward-function ablation (WebCat, k-means-32)",
      "the paper's usefulness-signal discussion",
      "label reward steers hardest on rare-class tasks; misclassification/"
      "uncertainty self-balance but steer less; improvement is the most "
      "faithful and the most expensive per item; zero reward degrades to "
      "uniform scheduling");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  std::vector<RunResult> baselines = RunScanTrials(task, BenchEngineOptions(1));

  const RewardKind kinds[] = {
      RewardKind::kLabel,       RewardKind::kBalance,
      RewardKind::kMisclassification, RewardKind::kUncertainty,
      RewardKind::kBlend,       RewardKind::kImprovement,
      RewardKind::kZero};
  std::vector<std::unique_ptr<RewardFunction>> rewards;
  for (RewardKind kind : kinds) rewards.push_back(MakeReward(kind));

  NaiveBayesLearner nb;
  ExperimentDriverOptions dopts;
  dopts.num_threads = BenchThreads();
  dopts.engine = BenchEngineOptions(1);
  ExperimentDriver driver(&task.corpus, &task.pipeline, dopts);
  ExperimentGrid grid;
  grid.policies = {PolicyKind::kEpsilonGreedy};
  grid.groupings = {&grouping};
  for (const auto& r : rewards) grid.rewards.push_back(r.get());
  grid.learners = {&nb};
  grid.seeds = BenchSeeds();
  StatusOr<std::vector<TrialResult>> trials = driver.RunGrid(grid);
  ZCHECK_OK(trials.status());

  TableWriter table({"reward", "items(mean)", "vtime(mean)", "final_q",
                     "pos_share", "speedup95_t", "speedup95_items",
                     "wall_ms(mean)"});
  BenchReporter reporter("e6_rewards");
  reporter.AddRuns("randomscan", baselines);

  size_t seeds_per_reward = grid.seeds.size();
  for (size_t k = 0; k < rewards.size(); ++k) {
    std::vector<RunResult> runs;
    double pos_share = 0.0;
    double wall_ms = 0.0;
    for (size_t s = 0; s < seeds_per_reward; ++s) {
      RunResult& r = trials.value()[k * seeds_per_reward + s].run;
      pos_share += r.items_processed
                       ? static_cast<double>(r.positives_processed) /
                             static_cast<double>(r.items_processed)
                       : 0.0;
      wall_ms += static_cast<double>(r.wall_micros) / 1e3;
      runs.push_back(std::move(r));
    }
    pos_share /= static_cast<double>(runs.size());
    wall_ms /= static_cast<double>(runs.size());
    MeanSpeedup m = AverageSpeedup(baselines, runs, 0.95);
    table.BeginRow();
    table.Cell(RewardKindName(kinds[k]));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(pos_share, 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
    table.Cell(wall_ms, 1);
    reporter.AddRuns(RewardKindName(kinds[k]), runs);
  }
  FinishTable(table, "e6_rewards");
  reporter.Finish();
  std::printf("\nnote: wall_ms shows the engine's real bookkeeping cost — "
              "the improvement reward's probe evaluations are visible "
              "there, not on the virtual clock. With parallel trials "
              "(ZOMBIE_BENCH_THREADS) wall_ms also absorbs scheduling "
              "noise; virtual columns stay exact.\n");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
