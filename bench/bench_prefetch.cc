// bench_prefetch — speculative prefetch extraction A/B: the identical
// cold-cache warm-start session (the E8 engineer workload) run with
// speculation off and on. While the engine evaluates the holdout, idle
// prefetch workers featurize the likeliest next arms' documents into the
// cache, so the engine's next pulls find their extraction already done.
// Prefetch is wall-clock-only: outcomes are ZCHECKed byte-identical on the
// virtual clock, and the wall ratio (on/off, revision loop only) is the
// headline number — target < 1.0.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/session.h"
#include "data/generator.h"
#include "data/webcat_generator.h"
#include "featureeng/revision_script.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/clock.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

bool SameOutcomes(const SessionResult& a, const SessionResult& b) {
  if (a.revisions.size() != b.revisions.size()) return false;
  if (a.total_virtual_micros != b.total_virtual_micros) return false;
  if (a.best_quality != b.best_quality) return false;
  for (size_t i = 0; i < a.revisions.size(); ++i) {
    const RevisionOutcome& x = a.revisions[i];
    const RevisionOutcome& y = b.revisions[i];
    if (x.items_processed != y.items_processed) return false;
    if (x.virtual_micros != y.virtual_micros) return false;
    if (x.final_quality != y.final_quality) return false;
  }
  return true;
}

void Run() {
  PrintPreamble(
      "PREFETCH: speculative extraction A/B (WebCat session)",
      "ROADMAP's overlap-compute-with-decision step: prefetch workers "
      "featurize likely-next documents during holdout evaluation windows",
      "identical virtual-clock outcomes; wall-clock ratio (on/off) < 1.0 "
      "over the revision loop");

  WebCatOptions wopts;
  wopts.num_documents = BenchCorpusSize();
  wopts.seed = 42;
  wopts.mean_extraction_cost_ms = 25.0;
  SyntheticCorpusConfig cfg = MakeWebCatConfig(wopts);
  // Extraction-heavy documents: the wall-clock cost prefetch can hide must
  // dominate, matching the paper's session scenario.
  cfg.mean_doc_length = 480.0;
  Corpus corpus = SyntheticCorpusGenerator(cfg).Generate();

  RevisionScript script = MakeWebCatRevisionScript();
  NaiveBayesLearner nb;
  LabelReward reward;
  EngineOptions base = BenchEngineOptions(1);

  // A: speculation off. Fresh cold cache; obs attached for symmetric
  // instrumentation overhead with the B side.
  ObsContext obs_off;
  EngineOptions opts_off = base;
  opts_off.obs = &obs_off;
  FeatureCache cache_off;
  KMeansGrouper grouper_off(32, 7);
  Stopwatch watch_off;
  SessionResult off =
      RunSession(corpus, script, SessionMode::kZombie, &grouper_off, nb,
                 reward, opts_off, /*warm_start_bandit=*/true, &cache_off);
  int64_t wall_off = watch_off.ElapsedMicros();

  // B: speculation on. Same cold-cache workload; worker count follows the
  // bench thread preset (ZOMBIE_BENCH_THREADS).
  PrefetchOptions prefetch;
  prefetch.threads = BenchThreads();
  // Default speculation bounds (4 arms x 4 docs per window): wide enough to
  // cover the exploited arms between eval windows, narrow enough that
  // mispredicted arms waste little worker CPU.
  ObsContext obs_on;
  EngineOptions opts_on = base;
  opts_on.obs = &obs_on;
  FeatureCache cache_on;
  KMeansGrouper grouper_on(32, 7);
  Stopwatch watch_on;
  SessionResult on = RunSession(corpus, script, SessionMode::kZombie,
                                &grouper_on, nb, reward, opts_on,
                                /*warm_start_bandit=*/true, &cache_on,
                                prefetch);
  int64_t wall_on = watch_on.ElapsedMicros();

  // The contract everything rests on: speculation only moves wall time.
  ZCHECK(SameOutcomes(off, on))
      << "prefetch changed session outcomes (virtual clock or quality)";

  uint64_t enqueued =
      obs_on.metrics()->GetCounter("prefetch.enqueued")->value();
  uint64_t issued = obs_on.metrics()->GetCounter("prefetch.issued")->value();
  uint64_t useful = obs_on.metrics()->GetCounter("prefetch.useful")->value();
  uint64_t wasted = obs_on.metrics()->GetCounter("prefetch.wasted")->value();
  double hit_rate = obs_on.metrics()->GetGauge("prefetch.hit_rate")->value();

  // Index construction is identical on both sides and untouched by
  // prefetch; the speculation window only exists inside the revision loop.
  int64_t loop_off = wall_off - off.index_wall_micros;
  int64_t loop_on = wall_on - on.index_wall_micros;
  double ratio = loop_off > 0 ? static_cast<double>(loop_on) /
                                    static_cast<double>(loop_off)
                              : 0.0;

  std::printf("\nprefetch off: %s wall (%s excl. one-time index build)\n",
              FormatDuration(wall_off).c_str(),
              FormatDuration(loop_off).c_str());
  std::printf("prefetch on:  %s wall (%s excl. one-time index build; "
              "%zu workers)\n",
              FormatDuration(wall_on).c_str(), FormatDuration(loop_on).c_str(),
              prefetch.threads);
  std::printf("speculation:  %llu enqueued, %llu issued, %llu useful, "
              "%llu wasted (hit rate %.3f)\n",
              static_cast<unsigned long long>(enqueued),
              static_cast<unsigned long long>(issued),
              static_cast<unsigned long long>(useful),
              static_cast<unsigned long long>(wasted), hit_rate);
  unsigned cores = std::thread::hardware_concurrency();
  std::printf("wall ratio:   %.3f over the revision loop (virtual-clock "
              "outcomes byte-identical)\n", ratio);
  if (cores >= 2) {
    std::printf("target:       < 1.0 (%u cores: workers overlap the engine "
                "thread)\n", cores);
  } else {
    std::printf("target:       n/a on %u core(s) — speculation needs a spare "
                "core to hide extraction behind; expect ratio ~1.0 + wasted "
                "work here\n", cores);
  }

  BenchReporter reporter("prefetch");
  reporter.Add({"session/prefetch_off", static_cast<double>(wall_off),
                static_cast<double>(off.total_virtual_micros), 0.0,
                off.best_quality, cache_off.Stats().hit_rate()});
  reporter.Add({"session/prefetch_on", static_cast<double>(wall_on),
                static_cast<double>(on.total_virtual_micros), 0.0,
                on.best_quality, cache_on.Stats().hit_rate()});
  reporter.AddMetric("prefetch_wall_ratio", ratio);
  reporter.AddMetric("prefetch_useful", static_cast<double>(useful));
  reporter.AddMetric("prefetch_wasted", static_cast<double>(wasted));
  reporter.AddMetric("prefetch_hit_rate", hit_rate);
  reporter.AttachMetrics(*obs_on.metrics());
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
