// bench_stream — streaming ingestion A/B (E13): the WebCat run at
// stream-off (the whole corpus is the offline base) versus stream-on (a
// 2/3 base plus a virtual-time arrival schedule for the rest, consumed at
// holdout boundaries through the incremental k-means grouper). Both arms
// process the same documents end to end, so the wall ratio isolates what
// ingestion itself costs: shard appends, assign-or-split, and mid-run arm
// registration.
//
// Determinism ZCHECKs (the contract the feature rests on):
//   - a drained stream (base == corpus, empty schedule) is byte-identical
//     (RunResult fingerprint) to the plain offline engine, per seed;
//   - the streaming run itself is byte-identical across cache on/off and
//     holdout-eval-thread counts, per seed.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bandit/epsilon_greedy.h"
#include "data/corpus_source.h"
#include "index/incremental_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

/// Fixed-budget engine options: early stops off and max_items covering the
/// whole corpus, so both arms run to exhaustion and compare like for like.
EngineOptions StreamBenchOptions(const Task& task, uint64_t seed,
                                 FeatureCache* cache, size_t eval_threads) {
  EngineOptions opts = BenchEngineOptions(seed);
  opts.stop.max_items = task.corpus.size();
  opts.stop.plateau_enabled = false;
  opts.stop.decline_enabled = false;
  opts.feature_cache = cache;
  opts.holdout_eval_threads = eval_threads;
  return opts;
}

struct ArmOutcome {
  RunResult run;
  uint64_t ingest_docs = 0;
  uint64_t ingest_new_arms = 0;
  uint64_t ingest_windows = 0;
};

ArmOutcome RunArm(const Task& task, const GroupingResult& grouping,
                  uint64_t seed, FeatureCache* cache, size_t eval_threads,
                  const ScheduledCorpusSource* stream,
                  const IncrementalGrouper* igrouper) {
  EngineOptions opts = StreamBenchOptions(task, seed, cache, eval_threads);
  ObsContext obs;
  opts.obs = &obs;
  ZombieEngine engine(&task.corpus, &task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunSpec spec(grouping, policy, nb, reward);
  spec.stream = stream;
  spec.incremental_grouper = igrouper;
  ArmOutcome out;
  out.run = engine.Run(spec);
  out.ingest_docs = static_cast<uint64_t>(
      obs.metrics()->GetCounter("ingest.docs")->value());
  out.ingest_new_arms = static_cast<uint64_t>(
      obs.metrics()->GetCounter("ingest.new_arms")->value());
  out.ingest_windows = static_cast<uint64_t>(
      obs.metrics()->GetCounter("ingest.windows")->value());
  return out;
}

struct MeasuredArm {
  ArmOutcome outcome;
  /// Minimum wall over kWallReps identical repeats — robust against the
  /// scheduling noise of shared CI runners.
  double wall_micros = 0.0;
};

constexpr int kWallReps = 3;

MeasuredArm MeasureArm(const Task& task, const GroupingResult& grouping,
                       uint64_t seed, FeatureCache* cache,
                       const ScheduledCorpusSource* stream,
                       const IncrementalGrouper* igrouper) {
  MeasuredArm out;
  for (int rep = 0; rep < kWallReps; ++rep) {
    ArmOutcome o = RunArm(task, grouping, seed, cache, 1, stream, igrouper);
    const double wall = static_cast<double>(o.run.wall_micros);
    if (rep == 0) {
      out.wall_micros = wall;
    } else {
      ZCHECK(o.run.Fingerprint() == out.outcome.run.Fingerprint())
          << "repeat run diverged (seed " << seed << ")";
      if (wall < out.wall_micros) out.wall_micros = wall;
    }
    out.outcome = std::move(o);
  }
  return out;
}

double MeanAccuracy(const std::vector<RunResult>& runs) {
  double sum = 0.0;
  for (const RunResult& r : runs) sum += r.final_metrics.accuracy;
  return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
}

void Run() {
  PrintPreamble(
      "STREAM: streaming ingestion A/B (WebCat, incremental k-means)",
      "appendable sharded index behind CorpusSource: documents past a 2/3 "
      "offline base arrive on a virtual-time schedule, are assigned (or "
      "split into) groups incrementally, and new arms register with the "
      "policy mid-run at holdout boundaries",
      "stream-on matches stream-off quality on the same documents at a "
      "modest wall overhead; drained-stream runs byte-identical to the "
      "offline engine");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  const size_t base = 2 * task.corpus.size() / 3;

  // A grouper prototype can be primed with GroupBase only once, so the
  // full-base (offline / drained) and 2/3-base (streaming) arms each get
  // their own instance of the same configuration.
  IncrementalKMeansOptions kopts;
  kopts.num_groups = 32;
  kopts.seed = 7;
  IncrementalKMeansGrouper igrouper_full(kopts);
  IncrementalKMeansGrouper igrouper(kopts);
  GroupingResult offline_grouping =
      igrouper_full.GroupBase(task.corpus, task.corpus.size());
  GroupingResult stream_grouping = igrouper.GroupBase(task.corpus, base);

  ArrivalScheduleOptions sched;  // 100 docs per virtual second, jittered
  ScheduledCorpusSource source(
      &task.corpus, base, BuildArrivalSchedule(task.corpus, base, sched));
  ScheduledCorpusSource drained(&task.corpus, task.corpus.size(), {});

  FeatureCache cache;

  std::vector<RunResult> off_runs;
  std::vector<RunResult> on_runs;
  double wall_off = 0.0;
  double wall_on = 0.0;
  uint64_t new_arms_total = 0;
  uint64_t windows_total = 0;
  uint64_t ingest_docs_total = 0;
  for (uint64_t seed : BenchSeeds()) {
    MeasuredArm off = MeasureArm(task, offline_grouping, seed, &cache,
                                 nullptr, nullptr);

    // Drained-stream equivalence: the streaming machinery with nothing to
    // ingest must be a perfect no-op against the offline engine.
    ArmOutcome drained_run = RunArm(task, offline_grouping, seed, &cache, 1,
                                    &drained, &igrouper_full);
    ZCHECK(drained_run.run.Fingerprint() == off.outcome.run.Fingerprint())
        << "drained stream changed the run (seed " << seed << ")";

    MeasuredArm on =
        MeasureArm(task, stream_grouping, seed, &cache, &source, &igrouper);

    // Streaming determinism: byte-identical without the cache and at a
    // different holdout-eval thread count (wall-clock-only knobs).
    ArmOutcome on_nocache =
        RunArm(task, stream_grouping, seed, nullptr, 1, &source, &igrouper);
    ZCHECK(on_nocache.run.Fingerprint() == on.outcome.run.Fingerprint())
        << "streaming run depends on the feature cache (seed " << seed << ")";
    ArmOutcome on_mt =
        RunArm(task, stream_grouping, seed, &cache, 2, &source, &igrouper);
    ZCHECK(on_mt.run.Fingerprint() == on.outcome.run.Fingerprint())
        << "streaming run depends on eval threads (seed " << seed << ")";

    wall_off += off.wall_micros;
    wall_on += on.wall_micros;
    new_arms_total += on.outcome.ingest_new_arms;
    windows_total += on.outcome.ingest_windows;
    ingest_docs_total += on.outcome.ingest_docs;
    off_runs.push_back(std::move(off.outcome.run));
    on_runs.push_back(std::move(on.outcome.run));
  }

  const size_t seeds = BenchSeeds().size();
  const double acc_off = MeanAccuracy(off_runs);
  const double acc_on = MeanAccuracy(on_runs);
  // The gate bounds quality *loss* only: an incremental grouping that
  // happens to classify better must not trip a degradation gate.
  const double quality_delta = acc_off > acc_on ? acc_off - acc_on : 0.0;
  const double wall_ratio = wall_off > 0.0 ? wall_on / wall_off : 0.0;
  const double suffix_docs =
      static_cast<double>(seeds * (task.corpus.size() - base));
  const double coverage =
      suffix_docs > 0.0 ? static_cast<double>(ingest_docs_total) / suffix_docs
                        : 0.0;
  const double mean_new_arms =
      static_cast<double>(new_arms_total) / static_cast<double>(seeds);

  TableWriter table({"arm", "wall_ms(total)", "accuracy", "f1", "arms",
                     "ingest_docs", "windows"});
  struct Row {
    const char* arm;
    const std::vector<RunResult>* runs;
    double wall_micros;
    uint64_t docs;
    uint64_t windows;
  };
  auto mean_arms = [](const std::vector<RunResult>& runs) {
    double sum = 0.0;
    for (const RunResult& r : runs) sum += static_cast<double>(r.arms.size());
    return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
  };
  for (const Row& row :
       {Row{"stream_off", &off_runs, wall_off, 0, 0},
        Row{"stream_on", &on_runs, wall_on, ingest_docs_total,
            windows_total}}) {
    table.BeginRow();
    table.Cell(row.arm);
    table.Cell(row.wall_micros / 1e3, 1);
    table.Cell(MeanAccuracy(*row.runs), 4);
    table.Cell(MeanFinalQuality(*row.runs), 4);
    table.Cell(mean_arms(*row.runs), 1);
    table.Cell(static_cast<double>(row.docs), 0);
    table.Cell(static_cast<double>(row.windows), 0);
  }
  FinishTable(table, "stream");
  std::printf("gate:       ingest coverage %.3f (= 1 required: the schedule "
              "must drain), quality delta %.4f, wall ratio %.2f\n",
              coverage, quality_delta, wall_ratio);

  BenchReporter reporter("stream");
  reporter.AddRuns("stream_off", off_runs);
  reporter.AddRuns("stream_on", on_runs);
  reporter.AddMetric("stream_ingest_coverage", coverage);
  reporter.AddMetric("stream_quality_delta", quality_delta);
  reporter.AddMetric("stream_wall_ratio", wall_ratio);
  reporter.AddMetric("stream_new_arms_per_seed", mean_new_arms);
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
