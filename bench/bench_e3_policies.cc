// E3 — bandit-policy comparison figure analogue: every selection policy on
// the WebCat task against the same full-scan baseline.

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E3: bandit policy comparison (WebCat, k-means-32 groups)",
      "the paper's selection-policy sensitivity figure",
      "adaptive policies (egreedy/ucb1/thompson/exp3/softmax) beat the "
      "non-adaptive schedulers (roundrobin/random); differences among the "
      "adaptive family are modest");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  // A shared baseline per seed.
  std::vector<RunResult> baselines;
  for (uint64_t seed : BenchSeeds()) {
    baselines.push_back(RunScanTrial(task, BenchEngineOptions(seed)));
  }

  TableWriter table({"policy", "items(mean)", "vtime(mean)", "final_q",
                     "pos_share", "speedup95_t", "speedup95_items"});

  for (PolicyKind kind :
       {PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1,
        PolicyKind::kSlidingUcb, PolicyKind::kThompson, PolicyKind::kExp3,
        PolicyKind::kSoftmax, PolicyKind::kRoundRobin,
        PolicyKind::kUniformRandom}) {
    std::vector<RunResult> runs;
    double pos_share = 0.0;
    for (uint64_t seed : BenchSeeds()) {
      EngineOptions opts = BenchEngineOptions(seed);
      auto policy = MakePolicy(kind);
      NaiveBayesLearner nb;
      LabelReward reward;
      RunResult r = RunZombieTrial(task, grouping, *policy, reward, nb, opts);
      pos_share += r.items_processed
                       ? static_cast<double>(r.positives_processed) /
                             static_cast<double>(r.items_processed)
                       : 0.0;
      runs.push_back(std::move(r));
    }
    pos_share /= static_cast<double>(runs.size());
    MeanSpeedup m = AverageSpeedup(baselines, runs, 0.95);
    table.BeginRow();
    table.Cell(PolicyKindName(kind));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(pos_share, 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
  }
  FinishTable(table, "e3_policies");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
