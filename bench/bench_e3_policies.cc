// E3 — bandit-policy comparison figure analogue: every selection policy on
// the WebCat task against the same full-scan baseline. The whole policy x
// seed grid runs as one ExperimentDriver batch.

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

double PositiveShare(const std::vector<RunResult>& runs) {
  if (runs.empty()) return 0.0;
  double share = 0.0;
  for (const RunResult& r : runs) {
    share += r.items_processed
                 ? static_cast<double>(r.positives_processed) /
                       static_cast<double>(r.items_processed)
                 : 0.0;
  }
  return share / static_cast<double>(runs.size());
}

void Run() {
  PrintPreamble(
      "E3: bandit policy comparison (WebCat, k-means-32 groups)",
      "the paper's selection-policy sensitivity figure",
      "adaptive policies (egreedy/ucb1/thompson/exp3/softmax) beat the "
      "non-adaptive schedulers (roundrobin/random); differences among the "
      "adaptive family are modest");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  // A shared baseline per seed.
  std::vector<RunResult> baselines = RunScanTrials(task, BenchEngineOptions(1));

  // One grid over every policy: the driver expands policies x seeds
  // row-major, so results chunk per policy in seed order.
  NaiveBayesLearner nb;
  LabelReward reward;
  ExperimentDriverOptions dopts;
  dopts.num_threads = BenchThreads();
  dopts.engine = BenchEngineOptions(1);
  ExperimentDriver driver(&task.corpus, &task.pipeline, dopts);
  ExperimentGrid grid;
  grid.policies = {PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1,
                   PolicyKind::kSlidingUcb,    PolicyKind::kThompson,
                   PolicyKind::kExp3,          PolicyKind::kSoftmax,
                   PolicyKind::kRoundRobin,    PolicyKind::kUniformRandom};
  grid.groupings = {&grouping};
  grid.rewards = {&reward};
  grid.learners = {&nb};
  grid.seeds = BenchSeeds();
  StatusOr<std::vector<TrialResult>> trials = driver.RunGrid(grid);
  ZCHECK_OK(trials.status());

  TableWriter table({"policy", "items(mean)", "vtime(mean)", "final_q",
                     "pos_share", "speedup95_t", "speedup95_items"});
  BenchReporter reporter("e3_policies");
  reporter.AddRuns("randomscan", baselines);

  size_t seeds_per_policy = grid.seeds.size();
  for (size_t p = 0; p < grid.policies.size(); ++p) {
    std::vector<RunResult> runs;
    for (size_t s = 0; s < seeds_per_policy; ++s) {
      runs.push_back(std::move(trials.value()[p * seeds_per_policy + s].run));
    }
    MeanSpeedup m = AverageSpeedup(baselines, runs, 0.95);
    table.BeginRow();
    table.Cell(PolicyKindName(grid.policies[p]));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(PositiveShare(runs), 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
    reporter.AddRuns(PolicyKindName(grid.policies[p]), runs);
    reporter.AddMetric(StrFormat("%s_speedup95",
                                 PolicyKindName(grid.policies[p])),
                       m.time_speedup);
  }
  FinishTable(table, "e3_policies");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
