// E10 — learner-choice table: the inner loop with each incremental learner.
// The selection machinery is learner-agnostic; sample efficiency and
// update cost differ.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/logistic_regression.h"
#include "ml/majority.h"
#include "ml/naive_bayes.h"
#include "ml/pegasos_svm.h"
#include "ml/perceptron.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E10: learner comparison (WebCat, k-means-32)",
      "the paper's learner-choice discussion (balance reward isolates the\n"
      "learner effect from training-stream class skew)",
      "naive Bayes is the most sample-efficient single-pass learner here; "
      "the margin/SGD learners need more items but all beat the majority "
      "floor; speedups hold across learners");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  std::vector<std::unique_ptr<Learner>> learners;
  learners.push_back(std::make_unique<NaiveBayesLearner>());
  learners.push_back(std::make_unique<LogisticRegressionLearner>());
  learners.push_back(std::make_unique<AveragedPerceptronLearner>());
  learners.push_back(std::make_unique<PegasosSvmLearner>());
  learners.push_back(std::make_unique<MajorityClassLearner>());

  TableWriter table({"learner", "items(mean)", "vtime(mean)", "peak_q",
                     "final_q", "baseline_q", "speedup95_t",
                     "speedup95_items"});
  BenchReporter reporter("e10_learners");

  for (const auto& learner : learners) {
    BalanceReward reward;
    std::vector<RunResult> zombies =
        RunZombieTrials(task, grouping, PolicyKind::kEpsilonGreedy, reward,
                        *learner, BenchEngineOptions(1));
    // Baseline with the same learner.
    std::vector<RunResult> baselines = RunScanTrials(
        task, BenchEngineOptions(1), /*sequential=*/false, learner.get());
    MeanSpeedup m = AverageSpeedup(baselines, zombies, 0.95);
    table.BeginRow();
    table.Cell(learner->name());
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(zombies)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(zombies)));
    double peak = 0.0;
    for (const auto& r : zombies) peak += r.curve.PeakQuality();
    table.Cell(peak / static_cast<double>(zombies.size()), 3);
    table.Cell(MeanFinalQuality(zombies), 3);
    table.Cell(MeanFinalQuality(baselines), 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
    reporter.AddRuns(learner->name() + std::string("/zombie"), zombies);
    reporter.AddRuns(learner->name() + std::string("/randomscan"), baselines);
  }
  FinishTable(table, "e10_learners");
  reporter.Finish();
  std::printf("\nnote: the majority learner ignores features; its row is "
              "the floor any real learner must beat.\n");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
