// A1 (ablation) — the practitioner's shortcut: "just run the features on a
// random sample of n items". How big must n be to match what Zombie
// reaches adaptively, and what does each choice cost?

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "A1 (ablation): fixed random samples vs. adaptive selection (WebCat)",
      "the status-quo practice the paper argues against",
      "small samples are fast but under-shoot quality (too few positives); "
      "samples big enough to match Zombie's quality cost several times "
      "Zombie's adaptive budget");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  TableWriter table(
      {"method", "items(mean)", "vtime(mean)", "final_q", "positives(mean)"});
  BenchReporter reporter("a1_sample_sizes");

  auto add_row = [&](const char* name, const std::vector<RunResult>& runs) {
    double positives = 0.0;
    for (const auto& r : runs) {
      positives += static_cast<double>(r.positives_processed);
    }
    positives /= static_cast<double>(runs.size());
    table.BeginRow();
    table.Cell(name);
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(static_cast<int64_t>(positives));
    reporter.AddRuns(name, runs);
  };

  std::vector<uint64_t> seeds = BenchSeeds();
  for (size_t sample : {250, 500, 1000, 2000, 4000, 8000}) {
    // Fixed-sample trials are independent: run the seeds on the pool.
    std::vector<RunResult> runs(seeds.size());
    ThreadPool pool(std::min<size_t>(
        BenchThreads() == 0 ? seeds.size() : BenchThreads(), seeds.size()));
    ParallelFor(&pool, seeds.size(), [&](size_t i) {
      ZombieEngine engine(&task.corpus, &task.pipeline,
                          BenchEngineOptions(seeds[i]));
      NaiveBayesLearner nb;
      runs[i] = RunFixedSampleBaseline(engine, nb, sample);
    });
    add_row(StrFormat("sample-%zu", sample).c_str(), runs);
  }

  NaiveBayesLearner nb;
  LabelReward reward;
  std::vector<RunResult> zombies =
      RunZombieTrials(task, grouping, PolicyKind::kEpsilonGreedy, reward, nb,
                      BenchEngineOptions(1));
  add_row("zombie", zombies);

  FinishTable(table, "a1_sample_sizes");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
