// A1 (ablation) — the practitioner's shortcut: "just run the features on a
// random sample of n items". How big must n be to match what Zombie
// reaches adaptively, and what does each choice cost?

#include <cstdio>

#include "bandit/epsilon_greedy.h"
#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "A1 (ablation): fixed random samples vs. adaptive selection (WebCat)",
      "the status-quo practice the paper argues against",
      "small samples are fast but under-shoot quality (too few positives); "
      "samples big enough to match Zombie's quality cost several times "
      "Zombie's adaptive budget");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  TableWriter table(
      {"method", "items(mean)", "vtime(mean)", "final_q", "positives(mean)"});

  auto add_row = [&table](const char* name,
                          const std::vector<RunResult>& runs) {
    double positives = 0.0;
    for (const auto& r : runs) {
      positives += static_cast<double>(r.positives_processed);
    }
    positives /= static_cast<double>(runs.size());
    table.BeginRow();
    table.Cell(name);
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(static_cast<int64_t>(positives));
  };

  for (size_t sample : {250, 500, 1000, 2000, 4000, 8000}) {
    std::vector<RunResult> runs;
    for (uint64_t seed : BenchSeeds()) {
      ZombieEngine engine(&task.corpus, &task.pipeline,
                          BenchEngineOptions(seed));
      NaiveBayesLearner nb;
      runs.push_back(RunFixedSampleBaseline(engine, nb, sample));
    }
    add_row(StrFormat("sample-%zu", sample).c_str(), runs);
  }

  std::vector<RunResult> zombies;
  for (uint64_t seed : BenchSeeds()) {
    EngineOptions opts = BenchEngineOptions(seed);
    EpsilonGreedyPolicy policy;
    NaiveBayesLearner nb;
    LabelReward reward;
    zombies.push_back(
        RunZombieTrial(task, grouping, policy, reward, nb, opts));
  }
  add_row("zombie", zombies);

  FinishTable(table, "a1_sample_sizes");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
