// E9 — evaluation-cadence figure analogue: how often should the inner loop
// retrain/evaluate? Frequent evaluation stops closer to the true knee but
// costs real bookkeeping time; sparse evaluation overshoots.

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E9: evaluation cadence sweep (WebCat, k-means-32)",
      "the paper's inner-loop bookkeeping discussion",
      "items-to-stop grows with the cadence (coarser stopping); wall-clock "
      "bookkeeping per item shrinks; quality stays flat");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  TableWriter table({"eval_every", "items(mean)", "vtime(mean)", "final_q",
                     "evals(mean)", "wall_ms(mean)"});
  BenchReporter reporter("e9_cadence");

  for (size_t cadence : {5, 25, 100, 400}) {
    EngineOptions opts = BenchEngineOptions(1);
    opts.eval_every = cadence;
    NaiveBayesLearner nb;
    LabelReward reward;
    std::vector<RunResult> runs = RunZombieTrials(
        task, grouping, PolicyKind::kEpsilonGreedy, reward, nb, opts);
    double wall_ms = 0.0;
    double evals = 0.0;
    for (const RunResult& r : runs) {
      wall_ms += static_cast<double>(r.wall_micros) / 1e3;
      evals += static_cast<double>(r.curve.size());
    }
    wall_ms /= static_cast<double>(runs.size());
    evals /= static_cast<double>(runs.size());
    table.BeginRow();
    table.Cell(static_cast<int64_t>(cadence));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(StrFormat("%.1fs", MeanVirtualSeconds(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(evals, 1);
    table.Cell(wall_ms, 1);
    reporter.AddRuns(StrFormat("eval_every_%zu", cadence), runs);
  }
  FinishTable(table, "e9_cadence");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
