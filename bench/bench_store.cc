// bench_store — persistent feature store warm-vs-cold A/B: the identical
// cold-memory-cache warm-start session (the E8 engineer workload) run
// three times — store off, store cold (first run populates the on-disk
// store), and store warm (a fresh process-equivalent reopen serves every
// unchanged revision's extraction from disk). The store is
// wall-clock-only: outcomes are ZCHECKed byte-identical on the virtual
// clock across all three arms, and the warm/cold wall ratio over the
// revision loop is the headline number — target < 1.0 (warm restart
// skips the extraction the cold run had to do).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/session.h"
#include "data/generator.h"
#include "data/webcat_generator.h"
#include "featureeng/persistent_feature_store.h"
#include "featureeng/revision_script.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/clock.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

bool SameOutcomes(const SessionResult& a, const SessionResult& b) {
  if (a.revisions.size() != b.revisions.size()) return false;
  if (a.total_virtual_micros != b.total_virtual_micros) return false;
  if (a.best_quality != b.best_quality) return false;
  for (size_t i = 0; i < a.revisions.size(); ++i) {
    const RevisionOutcome& x = a.revisions[i];
    const RevisionOutcome& y = b.revisions[i];
    if (x.items_processed != y.items_processed) return false;
    if (x.virtual_micros != y.virtual_micros) return false;
    if (x.final_quality != y.final_quality) return false;
  }
  return true;
}

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

struct ArmResult {
  SessionResult session;
  int64_t wall_micros = 0;
};

/// One full session from a cold memory cache, optionally store-backed.
ArmResult RunArm(const Corpus& corpus, const RevisionScript& script,
                 const NaiveBayesLearner& nb, const LabelReward& reward,
                 const EngineOptions& base, ObsContext* obs,
                 PersistentFeatureStore* store) {
  EngineOptions opts = base;
  opts.obs = obs;
  FeatureCache cache;
  KMeansGrouper grouper(32, 7);
  Stopwatch watch;
  ArmResult out;
  out.session =
      RunSession(corpus, script, SessionMode::kZombie, &grouper, nb, reward,
                 opts, /*warm_start_bandit=*/true, &cache, {}, store);
  out.wall_micros = watch.ElapsedMicros();
  return out;
}

void Run() {
  PrintPreamble(
      "STORE: persistent feature store warm-restart A/B (WebCat session)",
      "cross-process extraction reuse: an mmap-backed store carries "
      "featurizations across engine restarts, so a warm rerun of the "
      "session skips extraction for every unchanged revision",
      "identical virtual-clock outcomes across off/cold/warm; wall-clock "
      "ratio (warm/cold) < 1.0 over the revision loop");

  WebCatOptions wopts;
  wopts.num_documents = BenchCorpusSize();
  wopts.seed = 42;
  wopts.mean_extraction_cost_ms = 25.0;
  SyntheticCorpusConfig cfg = MakeWebCatConfig(wopts);
  // Extraction-heavy documents: the wall-clock cost the store short-
  // circuits must dominate, matching the paper's session scenario.
  cfg.mean_doc_length = 480.0;
  Corpus corpus = SyntheticCorpusGenerator(cfg).Generate();

  RevisionScript script = MakeWebCatRevisionScript();
  NaiveBayesLearner nb;
  LabelReward reward;
  EngineOptions base = BenchEngineOptions(1);

  const char* json_dir = std::getenv("ZOMBIE_BENCH_JSON_DIR");
  std::string store_path =
      (json_dir != nullptr ? std::string(json_dir) : std::string("."));
  store_path += "/bench_store.zfs";
  RemoveStoreFiles(store_path);

  // A: no store. Fresh cold memory cache; obs attached for symmetric
  // instrumentation overhead with the other arms.
  ObsContext obs_off;
  ArmResult off = RunArm(corpus, script, nb, reward, base, &obs_off, nullptr);

  // B: cold store. The session extracts everything once and appends each
  // record to the fresh file — this arm pays the store's write overhead.
  ObsContext obs_cold;
  ArmResult cold;
  PersistentFeatureStoreStats cold_stats;
  {
    StatusOr<std::unique_ptr<PersistentFeatureStore>> store =
        PersistentFeatureStore::Open(store_path);
    ZCHECK(store.ok()) << store.status().ToString();
    ZCHECK(store.value()->writable())
        << "cold arm must own the writer role on " << store_path;
    cold = RunArm(corpus, script, nb, reward, base, &obs_cold,
                  store.value().get());
    cold_stats = store.value()->Stats();
  }

  // C: warm store. A fresh open (the restart) recovers the cold run's
  // records; every unchanged revision's extraction is served from disk.
  ObsContext obs_warm;
  ArmResult warm;
  PersistentFeatureStoreStats warm_stats;
  {
    StatusOr<std::unique_ptr<PersistentFeatureStore>> store =
        PersistentFeatureStore::Open(store_path);
    ZCHECK(store.ok()) << store.status().ToString();
    warm = RunArm(corpus, script, nb, reward, base, &obs_warm,
                  store.value().get());
    warm_stats = store.value()->Stats();
    store.value()->ExportMetrics(obs_warm.metrics());
  }

  // The contract everything rests on: the store only moves wall time.
  ZCHECK(SameOutcomes(off.session, cold.session))
      << "cold store changed session outcomes (virtual clock or quality)";
  ZCHECK(SameOutcomes(off.session, warm.session))
      << "warm store changed session outcomes (virtual clock or quality)";
  ZCHECK(cold_stats.appends > 0) << "cold run did not populate the store";
  ZCHECK(warm_stats.hits > 0) << "warm run did not hit the store";

  // Index construction is identical on every arm and untouched by the
  // store; only the revision loop can be shortened by a warm restart.
  int64_t loop_off = off.wall_micros - off.session.index_wall_micros;
  int64_t loop_cold = cold.wall_micros - cold.session.index_wall_micros;
  int64_t loop_warm = warm.wall_micros - warm.session.index_wall_micros;
  double warm_ratio = loop_cold > 0 ? static_cast<double>(loop_warm) /
                                          static_cast<double>(loop_cold)
                                    : 0.0;
  double cold_ratio = loop_off > 0 ? static_cast<double>(loop_cold) /
                                         static_cast<double>(loop_off)
                                   : 0.0;

  std::printf("\nstore off:  %s wall (%s excl. one-time index build)\n",
              FormatDuration(off.wall_micros).c_str(),
              FormatDuration(loop_off).c_str());
  std::printf("store cold: %s wall (%s excl. index; %llu records appended)\n",
              FormatDuration(cold.wall_micros).c_str(),
              FormatDuration(loop_cold).c_str(),
              static_cast<unsigned long long>(cold_stats.appends));
  std::printf("store warm: %s wall (%s excl. index; %llu recovered, "
              "hit rate %.3f)\n",
              FormatDuration(warm.wall_micros).c_str(),
              FormatDuration(loop_warm).c_str(),
              static_cast<unsigned long long>(warm_stats.recovered),
              warm_stats.hit_rate());
  std::printf("wall ratio: %.3f warm/cold over the revision loop "
              "(virtual-clock outcomes byte-identical); cold/off %.3f "
              "(write overhead)\n",
              warm_ratio, cold_ratio);
  std::printf("target:     warm/cold < 1.0 — a warm restart reads "
              "extractions from disk instead of recomputing them\n");

  BenchReporter reporter("store");
  reporter.Add({"session/store_off", static_cast<double>(off.wall_micros),
                static_cast<double>(off.session.total_virtual_micros), 0.0,
                off.session.best_quality, -1.0});
  reporter.Add({"session/store_cold", static_cast<double>(cold.wall_micros),
                static_cast<double>(cold.session.total_virtual_micros), 0.0,
                cold.session.best_quality, -1.0});
  reporter.Add({"session/store_warm", static_cast<double>(warm.wall_micros),
                static_cast<double>(warm.session.total_virtual_micros), 0.0,
                warm.session.best_quality, warm_stats.hit_rate()});
  reporter.AddMetric("store_warm_wall_ratio", warm_ratio);
  reporter.AddMetric("store_cold_wall_ratio", cold_ratio);
  reporter.AddMetric("store_hits",
                     static_cast<double>(warm_stats.hits));
  reporter.AddMetric("store_hit_rate", warm_stats.hit_rate());
  reporter.AttachMetrics(*obs_warm.metrics());
  reporter.Finish();

  RemoveStoreFiles(store_path);
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
