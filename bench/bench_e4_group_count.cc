// E4 — group-count sensitivity figure analogue: speedup as a function of
// the number of k-means index groups K.

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E4: k-means group-count sweep (WebCat)",
      "the paper's index-granularity sensitivity figure",
      "K=1 degrades to a random scan (~1x); speedup rises with K to a "
      "broad optimum, then flattens/dips as groups get too small to "
      "estimate and the bandit pays more exploration");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);

  std::vector<RunResult> baselines = RunScanTrials(task, BenchEngineOptions(1));

  TableWriter table({"K", "build_wall", "items(mean)", "final_q",
                     "pos_share", "speedup95_t", "speedup95_items"});
  BenchReporter reporter("e4_group_count");
  reporter.AddRuns("randomscan", baselines);

  for (size_t k : {1, 4, 16, 64, 256}) {
    KMeansGrouper grouper(k, 7);
    GroupingResult grouping = grouper.Group(task.corpus);
    NaiveBayesLearner nb;
    LabelReward reward;
    std::vector<RunResult> runs =
        RunZombieTrials(task, grouping, PolicyKind::kEpsilonGreedy, reward,
                        nb, BenchEngineOptions(1));
    double pos_share = 0.0;
    for (const RunResult& r : runs) {
      pos_share += r.items_processed
                       ? static_cast<double>(r.positives_processed) /
                             static_cast<double>(r.items_processed)
                       : 0.0;
    }
    pos_share /= static_cast<double>(runs.size());
    MeanSpeedup m = AverageSpeedup(baselines, runs, 0.95);
    table.BeginRow();
    table.Cell(static_cast<int64_t>(k));
    table.Cell(FormatDuration(grouping.build_wall_micros));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(pos_share, 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
    reporter.AddRuns(StrFormat("K%zu", k), runs);
    reporter.AddMetric(StrFormat("K%zu_speedup95", k), m.time_speedup);
  }
  FinishTable(table, "e4_group_count");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
