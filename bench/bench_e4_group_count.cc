// E4 — group-count sensitivity figure analogue: speedup as a function of
// the number of k-means index groups K.

#include <cstdio>

#include "bandit/epsilon_greedy.h"
#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E4: k-means group-count sweep (WebCat)",
      "the paper's index-granularity sensitivity figure",
      "K=1 degrades to a random scan (~1x); speedup rises with K to a "
      "broad optimum, then flattens/dips as groups get too small to "
      "estimate and the bandit pays more exploration");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);

  std::vector<RunResult> baselines;
  for (uint64_t seed : BenchSeeds()) {
    baselines.push_back(RunScanTrial(task, BenchEngineOptions(seed)));
  }

  TableWriter table({"K", "build_wall", "items(mean)", "final_q",
                     "pos_share", "speedup95_t", "speedup95_items"});

  for (size_t k : {1, 4, 16, 64, 256}) {
    KMeansGrouper grouper(k, 7);
    GroupingResult grouping = grouper.Group(task.corpus);
    std::vector<RunResult> runs;
    double pos_share = 0.0;
    for (uint64_t seed : BenchSeeds()) {
      EngineOptions opts = BenchEngineOptions(seed);
      EpsilonGreedyPolicy policy;
      NaiveBayesLearner nb;
      LabelReward reward;
      RunResult r = RunZombieTrial(task, grouping, policy, reward, nb, opts);
      pos_share += r.items_processed
                       ? static_cast<double>(r.positives_processed) /
                             static_cast<double>(r.items_processed)
                       : 0.0;
      runs.push_back(std::move(r));
    }
    pos_share /= static_cast<double>(runs.size());
    MeanSpeedup m = AverageSpeedup(baselines, runs, 0.95);
    table.BeginRow();
    table.Cell(static_cast<int64_t>(k));
    table.Cell(FormatDuration(grouping.build_wall_micros));
    table.Cell(static_cast<int64_t>(MeanItemsProcessed(runs)));
    table.Cell(MeanFinalQuality(runs), 3);
    table.Cell(pos_share, 3);
    table.Cell(m.time_speedup, 2);
    table.Cell(m.items_speedup, 2);
  }
  FinishTable(table, "e4_group_count");
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
