// bench_obs_overhead — pins the observability layer's cost contract.
//
// Three engine configurations run the identical workload interleaved:
//
//   off   EngineOptions::obs == nullptr (the uninstrumented hot path)
//   noop  an ObsContext with every sink disabled (null-sink hook cost)
//   full  an ObsContext with metrics + trace + decision log enabled
//
// Asserted (process exits 1 on violation):
//   * noop wall time stays within ZOMBIE_OBS_OVERHEAD_MAX (default 1.02,
//     i.e. <= 2%) of off — the DESIGN.md disabled-path cost contract.
//   * RunResults are byte-identical across all three configurations
//     (observability must measure the run, never steer it).
//
// The full configuration's overhead is reported but not gated: it pays for
// real work (per-pull decision records) and is allowed to cost more.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : fallback;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

/// Serializes every deterministic RunResult field (everything except
/// wall_micros) so configurations can be compared byte-for-byte.
std::string ResultFingerprint(const RunResult& r) {
  std::string s = StrFormat(
      "items=%zu loop_us=%lld holdout_us=%lld quality=%.17g stop=%s "
      "positives=%zu policy=%s grouper=%s reward=%s learner=%s\n",
      r.items_processed, static_cast<long long>(r.loop_virtual_micros),
      static_cast<long long>(r.holdout_virtual_micros), r.final_quality,
      StopReasonName(r.stop_reason), r.positives_processed,
      r.policy_name.c_str(), r.grouper_name.c_str(), r.reward_name.c_str(),
      r.learner_name.c_str());
  for (const ArmSummary& a : r.arms) {
    s += StrFormat("arm size=%zu pulls=%zu reward=%.17g pos=%zu\n",
                   a.group_size, a.pulls, a.total_reward, a.positives_seen);
  }
  s += r.curve.ToCsv();
  return s;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int Main() {
  PrintPreamble("obs_overhead",
                "observability cost contract (no paper analogue)",
                "noop-sink wall time within noise of uninstrumented");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(16, 7);
  GroupingResult grouping = grouper.Group(task.corpus);
  NaiveBayesLearner learner;
  LabelReward reward;
  EpsilonGreedyPolicy policy;

  EngineOptions base = BenchEngineOptions(1);
  base.stop.max_items = 1500;

  const size_t reps = EnvSize("ZOMBIE_OBS_OVERHEAD_REPS", 5);
  const double max_ratio = EnvDouble("ZOMBIE_OBS_OVERHEAD_MAX", 1.02);

  std::vector<double> off_wall, noop_wall, full_wall;
  std::string off_fp, noop_fp, full_fp;
  ObsContext full_obs;  // accumulates across reps; reported at the end

  // Interleaved A/B/C reps so drift (thermal, ccache, page cache) hits all
  // three configurations equally.
  for (size_t rep = 0; rep < reps; ++rep) {
    {
      EngineOptions opts = base;
      ZombieEngine engine(&task.corpus, &task.pipeline, opts);
      RunResult r = engine.Run(RunSpec(grouping, policy, learner, reward));
      off_wall.push_back(static_cast<double>(r.wall_micros));
      off_fp = ResultFingerprint(r);
    }
    {
      ObsOptions no_sinks;
      no_sinks.metrics = false;
      no_sinks.trace = false;
      no_sinks.decision_log = false;
      ObsContext noop_obs(no_sinks);
      EngineOptions opts = base;
      opts.obs = &noop_obs;
      ZombieEngine engine(&task.corpus, &task.pipeline, opts);
      RunResult r = engine.Run(RunSpec(grouping, policy, learner, reward));
      noop_wall.push_back(static_cast<double>(r.wall_micros));
      noop_fp = ResultFingerprint(r);
    }
    {
      EngineOptions opts = base;
      opts.obs = &full_obs;
      ZombieEngine engine(&task.corpus, &task.pipeline, opts);
      RunResult r = engine.Run(RunSpec(grouping, policy, learner, reward));
      full_wall.push_back(static_cast<double>(r.wall_micros));
      full_fp = ResultFingerprint(r);
    }
  }

  double off_med = Median(off_wall);
  double noop_ratio = off_med > 0.0 ? Median(noop_wall) / off_med : 1.0;
  double full_ratio = off_med > 0.0 ? Median(full_wall) / off_med : 1.0;
  std::printf("median wall: off=%.0fus noop=%.0fus (%.4fx) "
              "full=%.0fus (%.4fx)\n",
              off_med, Median(noop_wall), noop_ratio, Median(full_wall),
              full_ratio);

  BenchReporter reporter("obs_overhead");
  reporter.AddMetric("noop_wall_ratio", noop_ratio);
  reporter.AddMetric("full_wall_ratio", full_ratio);
  reporter.AddMetric("reps", static_cast<double>(reps));
  if (full_obs.metrics() != nullptr) {
    reporter.AttachMetrics(*full_obs.metrics());
  }
  reporter.Finish();

  int failures = 0;
  if (noop_fp != off_fp) {
    std::fprintf(stderr,
                 "FAIL: noop-sink RunResult differs from uninstrumented\n");
    ++failures;
  }
  if (full_fp != off_fp) {
    std::fprintf(stderr,
                 "FAIL: full-obs RunResult differs from uninstrumented\n");
    ++failures;
  }
  if (noop_ratio > max_ratio) {
    std::fprintf(stderr,
                 "FAIL: noop-sink overhead %.4fx exceeds limit %.4fx "
                 "(ZOMBIE_OBS_OVERHEAD_MAX)\n",
                 noop_ratio, max_ratio);
    ++failures;
  }
  if (failures == 0) {
    std::printf("PASS: results identical, noop overhead %.4fx <= %.4fx\n",
                noop_ratio, max_ratio);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() { return zombie::bench::Main(); }
