// bench_prune — online feature pruning frontier (E-series): the identical
// warm-cache WebCat run at prune off / conservative / aggressive. Extraction
// is fully memoized up front, so inner-loop wall time is dominated by the
// learner-update and holdout-scoring kernels — exactly the work mid-run
// dimension compaction shortens. The conservative arm is the gated point on
// the frontier (>= 1.3x inner-loop wall at <= 0.5% holdout-accuracy delta);
// the aggressive arm is reported as the far end of the speed/quality trade.
//
// Determinism ZCHECKs (the contract the speedup rests on):
//   - a conservative preset with enabled=false is byte-identical (RunResult
//     fingerprint) to the default prune-off options, per seed;
//   - the pruned run itself is byte-identical across cache on/off and
//     holdout-eval-thread counts, per seed.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bandit/epsilon_greedy.h"
#include "index/kmeans_grouper.h"
#include "ml/feature_pruner.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace bench {
namespace {

/// Fixed-budget engine options: stop rules off so every arm processes the
/// same item count and wall times compare like for like. Evaluation is
/// deliberately frequent (every 5 items over a corpus-half holdout) — the
/// regime where the inner loop is holdout-kernel-bound and pruning pays.
EngineOptions PruneBenchOptions(uint64_t seed, FeatureCache* cache,
                                size_t eval_threads) {
  EngineOptions opts = BenchEngineOptions(seed);
  opts.holdout_size = 1000;
  opts.eval_every = 5;
  // 600 items with the conservative freeze at 100 puts ~5/6 of the evals
  // after the mask froze — the wall-clock margin the 1.3x gate needs.
  opts.stop.max_items = 600;
  opts.stop.plateau_enabled = false;
  opts.stop.decline_enabled = false;
  opts.feature_cache = cache;
  opts.holdout_eval_threads = eval_threads;
  return opts;
}

RunResult RunArm(const Task& task, const GroupingResult& grouping,
                 uint64_t seed, FeatureCache* cache, size_t eval_threads,
                 const FeaturePrunerOptions* pruning_override) {
  EngineOptions opts = PruneBenchOptions(seed, cache, eval_threads);
  ZombieEngine engine(&task.corpus, &task.pipeline, opts);
  EpsilonGreedyPolicy policy;
  NaiveBayesLearner nb;
  LabelReward reward;
  RunSpec spec(grouping, policy, nb, reward);
  spec.pruning_override = pruning_override;
  return engine.Run(spec);
}

double MeanAccuracy(const std::vector<RunResult>& runs) {
  double sum = 0.0;
  for (const RunResult& r : runs) sum += r.final_metrics.accuracy;
  return runs.empty() ? 0.0 : sum / static_cast<double>(runs.size());
}

struct MeasuredArm {
  RunResult run;
  /// Minimum wall over kWallReps identical repeats — robust against the
  /// scheduling noise of shared CI runners (every repeat does the same
  /// deterministic work, so the minimum is the least-perturbed sample).
  double wall_micros = 0.0;
};

constexpr int kWallReps = 3;

MeasuredArm MeasureArm(const Task& task, const GroupingResult& grouping,
                       uint64_t seed, FeatureCache* cache,
                       const FeaturePrunerOptions* pruning_override) {
  MeasuredArm out;
  for (int rep = 0; rep < kWallReps; ++rep) {
    RunResult r = RunArm(task, grouping, seed, cache, 1, pruning_override);
    const double wall = static_cast<double>(r.wall_micros);
    if (rep == 0) {
      out.wall_micros = wall;
    } else {
      ZCHECK(r.Fingerprint() == out.run.Fingerprint())
          << "repeat run diverged (seed " << seed << ")";
      if (wall < out.wall_micros) out.wall_micros = wall;
    }
    out.run = std::move(r);
  }
  return out;
}

void Run() {
  PrintPreamble(
      "PRUNE: online feature pruning frontier (WebCat, warm cache)",
      "mid-session dimension compaction: past a warmup the engine freezes a "
      "deterministic pruning mask at a holdout-eval boundary and every "
      "subsequent sparse vector runs compacted through the learner and "
      "holdout kernels",
      "conservative >= 1.3x inner-loop wall at <= 0.5% accuracy delta; "
      "aggressive faster still with a visible quality hit; prune-off "
      "byte-identical to the no-pruner engine");

  Task task = MakeTask(TaskKind::kWebCat, BenchCorpusSize(), 42);
  KMeansGrouper grouper(32, 7);
  GroupingResult grouping = grouper.Group(task.corpus);

  // Memoize every extraction up front so the measured arms never pay
  // extraction wall time: arm trajectories diverge after the freeze (the
  // bandit reacts to pruned-learner rewards), and a trajectory-dependent
  // cache miss would bill extraction to whichever arm wandered off first.
  FeatureCache cache;
  {
    ExtractionService warm(&task.pipeline, &cache);
    for (uint32_t id = 0; id < task.corpus.size(); ++id) {
      warm.Featurize(task.corpus.doc(id), id, task.corpus);
    }
  }

  const FeaturePrunerOptions conservative = ConservativePruning();
  const FeaturePrunerOptions aggressive = AggressivePruning();
  FeaturePrunerOptions conservative_disabled = conservative;
  conservative_disabled.enabled = false;

  std::vector<RunResult> off_runs;
  std::vector<RunResult> cons_runs;
  std::vector<RunResult> aggr_runs;
  double wall_off = 0.0;
  double wall_cons = 0.0;
  double wall_aggr = 0.0;
  for (uint64_t seed : BenchSeeds()) {
    MeasuredArm off = MeasureArm(task, grouping, seed, &cache, nullptr);

    // Prune-off equivalence: a disabled preset must be a perfect no-op.
    RunResult off_preset =
        RunArm(task, grouping, seed, &cache, 1, &conservative_disabled);
    ZCHECK(off_preset.Fingerprint() == off.run.Fingerprint())
        << "disabled pruning preset changed the run (seed " << seed << ")";

    MeasuredArm cons = MeasureArm(task, grouping, seed, &cache, &conservative);

    // Prune-on determinism: byte-identical without the cache and at a
    // different holdout-eval thread count (wall-clock-only knobs).
    RunResult cons_nocache =
        RunArm(task, grouping, seed, nullptr, 1, &conservative);
    ZCHECK(cons_nocache.Fingerprint() == cons.run.Fingerprint())
        << "pruned run depends on the feature cache (seed " << seed << ")";
    RunResult cons_mt = RunArm(task, grouping, seed, &cache, 2, &conservative);
    ZCHECK(cons_mt.Fingerprint() == cons.run.Fingerprint())
        << "pruned run depends on eval threads (seed " << seed << ")";

    MeasuredArm aggr = MeasureArm(task, grouping, seed, &cache, &aggressive);

    wall_off += off.wall_micros;
    wall_cons += cons.wall_micros;
    wall_aggr += aggr.wall_micros;
    off_runs.push_back(std::move(off.run));
    cons_runs.push_back(std::move(cons.run));
    aggr_runs.push_back(std::move(aggr.run));
  }
  const double acc_off = MeanAccuracy(off_runs);
  const double acc_cons = MeanAccuracy(cons_runs);
  const double acc_aggr = MeanAccuracy(aggr_runs);
  const double cons_speedup = wall_cons > 0.0 ? wall_off / wall_cons : 0.0;
  const double aggr_speedup = wall_aggr > 0.0 ? wall_off / wall_aggr : 0.0;
  // The gate bounds quality *loss*: pruning noise features can also raise
  // accuracy, and an improvement must not trip a degradation gate.
  const double cons_delta =
      acc_off > acc_cons ? acc_off - acc_cons : 0.0;
  const double aggr_delta =
      acc_off > acc_aggr ? acc_off - acc_aggr : 0.0;

  TableWriter table({"arm", "wall_ms(total)", "accuracy", "f1", "speedup",
                     "acc_loss"});
  struct Row {
    const char* arm;
    const std::vector<RunResult>* runs;
    double wall_micros;
    double speedup;
    double delta;
  };
  for (const Row& row : {Row{"off", &off_runs, wall_off, 1.0, 0.0},
                         Row{"conservative", &cons_runs, wall_cons,
                             cons_speedup, cons_delta},
                         Row{"aggressive", &aggr_runs, wall_aggr,
                             aggr_speedup, aggr_delta}}) {
    table.BeginRow();
    table.Cell(row.arm);
    table.Cell(row.wall_micros / 1e3, 1);
    table.Cell(MeanAccuracy(*row.runs), 4);
    table.Cell(MeanFinalQuality(*row.runs), 4);
    table.Cell(row.speedup, 2);
    table.Cell(row.delta, 4);
  }
  FinishTable(table, "prune");
  std::printf("gate:       conservative speedup %.2fx (>= 1.3 required), "
              "accuracy loss %.4f (<= 0.005 required)\n",
              cons_speedup, cons_delta);

  BenchReporter reporter("prune");
  reporter.AddRuns("prune_off", off_runs);
  reporter.AddRuns("prune_conservative", cons_runs);
  reporter.AddRuns("prune_aggressive", aggr_runs);
  reporter.AddMetric("prune_conservative_speedup", cons_speedup);
  reporter.AddMetric("prune_conservative_quality_delta", cons_delta);
  reporter.AddMetric("prune_aggressive_speedup", aggr_speedup);
  reporter.AddMetric("prune_aggressive_quality_delta", aggr_delta);
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
