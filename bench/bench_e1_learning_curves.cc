// E1 — learning-curve figure analogue: quality vs. items processed for
// Zombie (ε-greedy over k-means groups, label reward) against the random
// and sequential full-scan baselines, on all three tasks.

#include <cstdio>

#include "bench_common.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

// Curve checkpoints (items processed) reported in the table.
constexpr size_t kCheckpoints[] = {100, 200, 400, 800, 1600, 3200, 6400};

double QualityAtItems(const std::vector<MeanCurvePoint>& curve,
                      size_t items) {
  double q = 0.0;
  for (const auto& p : curve) {
    if (p.mean_items > static_cast<double>(items)) break;
    q = p.mean_quality;
  }
  return q;
}

void Run() {
  PrintPreamble(
      "E1: learning curves (quality vs. items processed)",
      "the paper's per-task quality-vs-effort figures",
      "zombie's curve dominates the baselines on skewed tasks (webcat, "
      "entity) and roughly matches them on the balanced control");

  TableWriter table({"task", "method", "q@100", "q@200", "q@400", "q@800",
                     "q@1600", "q@3200", "q@6400", "final_q",
                     "items_run"});
  BenchReporter reporter("e1_learning_curves");

  for (TaskKind kind :
       {TaskKind::kWebCat, TaskKind::kEntity, TaskKind::kBalanced}) {
    Task task = MakeTask(kind, BenchCorpusSize(), 42);
    KMeansGrouper grouper(32, 7);
    GroupingResult grouping = grouper.Group(task.corpus);

    EngineOptions opts = BenchEngineOptions(1);
    // Curves are comparable only when runs last equally long: disable
    // early stop for the curve figure (E2 measures stopping).
    opts.stop.plateau_enabled = false;
    opts.stop.decline_enabled = false;
    NaiveBayesLearner nb;
    LabelReward reward;
    std::vector<RunResult> zombie_runs = RunZombieTrials(
        task, grouping, PolicyKind::kEpsilonGreedy, reward, nb, opts);
    std::vector<RunResult> random_runs =
        RunScanTrials(task, opts, /*sequential=*/false);
    std::vector<RunResult> seq_runs =
        RunScanTrials(task, opts, /*sequential=*/true);

    struct Row {
      const char* method;
      std::vector<RunResult>* runs;
    } rows[] = {{"zombie", &zombie_runs},
                {"randomscan", &random_runs},
                {"sequential", &seq_runs}};
    for (const Row& row : rows) {
      auto mc = MeanCurve(*row.runs);
      table.BeginRow();
      table.Cell(task.name);
      table.Cell(row.method);
      for (size_t cp : kCheckpoints) {
        table.Cell(QualityAtItems(mc, cp), 3);
      }
      table.Cell(MeanFinalQuality(*row.runs), 3);
      table.Cell(static_cast<int64_t>(MeanItemsProcessed(*row.runs)));
      reporter.AddRuns(std::string(task.name) + "/" + row.method, *row.runs);
    }
  }
  FinishTable(table, "e1_learning_curves");
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
