#ifndef ZOMBIE_BENCH_BENCH_COMMON_H_
#define ZOMBIE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bandit/policy.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/run_result.h"
#include "core/task_factory.h"
#include "index/grouper.h"
#include "ml/learner.h"
#include "util/table_writer.h"

namespace zombie {
namespace bench {

/// Corpus size used by the experiment binaries. Defaults to 12000;
/// override with ZOMBIE_BENCH_DOCS for quicker smoke runs or fuller
/// sweeps.
size_t BenchCorpusSize();

/// Engine seeds used as independent trials. Defaults to {1, 2, 3};
/// override the count with ZOMBIE_BENCH_TRIALS.
std::vector<uint64_t> BenchSeeds();

/// The engine configuration shared by every experiment (DESIGN.md):
/// 400-item stratified holdout, evaluate every 25 items, plateau stop.
EngineOptions BenchEngineOptions(uint64_t seed);

/// One Zombie run with the given components.
RunResult RunZombieTrial(const Task& task, const GroupingResult& grouping,
                         const BanditPolicy& policy,
                         const RewardFunction& reward,
                         const Learner& learner, const EngineOptions& opts);

/// One full-scan baseline run (random order unless `sequential`).
RunResult RunScanTrial(const Task& task, const EngineOptions& opts,
                       bool sequential = false);

/// Mean speedup report across paired (baseline, zombie) trials at the
/// given quality fraction; invalid trials are skipped (count reported).
struct MeanSpeedup {
  double time_speedup = -1.0;
  double items_speedup = -1.0;
  size_t valid_trials = 0;
  size_t total_trials = 0;
};
MeanSpeedup AverageSpeedup(const std::vector<RunResult>& baselines,
                           const std::vector<RunResult>& zombies,
                           double quality_fraction);

/// Prints the standard experiment banner (id, what it reproduces, scale).
void PrintPreamble(const char* experiment_id, const char* reproduces,
                   const char* expected_shape);

/// Prints the table; when ZOMBIE_BENCH_CSV_DIR is set, also writes
/// `<dir>/<name>.csv` for plotting the figure analogues.
void FinishTable(const TableWriter& table, const char* name);

}  // namespace bench
}  // namespace zombie

#endif  // ZOMBIE_BENCH_BENCH_COMMON_H_
