#ifndef ZOMBIE_BENCH_BENCH_COMMON_H_
#define ZOMBIE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bandit/policy.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/config.h"
#include "core/engine.h"
#include "core/experiment_driver.h"
#include "core/reward.h"
#include "core/run_result.h"
#include "core/task_factory.h"
#include "featureeng/feature_cache.h"
#include "index/grouper.h"
#include "ml/learner.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/table_writer.h"

namespace zombie {
namespace bench {

/// Corpus size used by the experiment binaries. Defaults to 12000;
/// override with ZOMBIE_BENCH_DOCS for quicker smoke runs or fuller
/// sweeps.
size_t BenchCorpusSize();

/// Engine seeds used as independent trials. Defaults to {1, 2, 3};
/// override the count with ZOMBIE_BENCH_TRIALS.
std::vector<uint64_t> BenchSeeds();

/// Worker threads for the experiment driver. Defaults to hardware
/// concurrency; override with ZOMBIE_BENCH_THREADS (results are
/// bit-identical at any value — see ExperimentDriver).
size_t BenchThreads();

/// The engine configuration shared by every experiment (DESIGN.md):
/// 400-item stratified holdout, evaluate every 25 items, plateau stop.
EngineOptions BenchEngineOptions(uint64_t seed);

/// One Zombie run with the given components (serial; trial loops should
/// prefer RunZombieTrials).
RunResult RunZombieTrial(const Task& task, const GroupingResult& grouping,
                         const BanditPolicy& policy,
                         const RewardFunction& reward,
                         const Learner& learner, const EngineOptions& opts);

/// Runs one (policy, grouping, reward, learner) grid cell for every
/// BenchSeeds() seed in parallel on the experiment driver. `base` supplies
/// every engine knob except the per-trial seed. Results are in seed order
/// and bit-identical at any thread count.
std::vector<RunResult> RunZombieTrials(const Task& task,
                                       const GroupingResult& grouping,
                                       PolicyKind policy,
                                       const RewardFunction& reward,
                                       const Learner& learner,
                                       const EngineOptions& base,
                                       FeatureCache* cache = nullptr);

/// Full-scan baseline runs (random order unless `sequential`), one per
/// BenchSeeds() seed, in parallel. `learner` defaults to naive Bayes, the
/// learner the Zombie side uses in every experiment that calls this.
std::vector<RunResult> RunScanTrials(const Task& task,
                                     const EngineOptions& base,
                                     bool sequential = false,
                                     const Learner* learner = nullptr);

/// Mean speedup report across paired (baseline, zombie) trials at the
/// given quality fraction; invalid trials are skipped (count reported).
struct MeanSpeedup {
  double time_speedup = -1.0;
  double items_speedup = -1.0;
  size_t valid_trials = 0;
  size_t total_trials = 0;
};
MeanSpeedup AverageSpeedup(const std::vector<RunResult>& baselines,
                           const std::vector<RunResult>& zombies,
                           double quality_fraction);

/// Prints the standard experiment banner (id, what it reproduces, scale).
void PrintPreamble(const char* experiment_id, const char* reproduces,
                   const char* expected_shape);

/// Prints the table; when ZOMBIE_BENCH_CSV_DIR is set, also writes
/// `<dir>/<name>.csv` for plotting the figure analogues.
void FinishTable(const TableWriter& table, const char* name);

/// Machine-readable benchmark results: every bench serializes its rows to
/// a versioned BENCH_<name>.json when ZOMBIE_BENCH_JSON_DIR is set (see
/// EXPERIMENTS.md for the schema; tools/check_bench_regression.py consumes
/// the files in CI). Wall-clock fields are real measured time; virtual
/// fields are the paper's simulated data-processing time.
///
/// Schema v2 adds an optional "observability" key holding a
/// MetricsRegistry snapshot (AttachMetrics); entries/metrics are unchanged
/// from v1, so v1 consumers only need to accept the version bump.
class BenchReporter {
 public:
  struct Entry {
    std::string name;             // stable row id, e.g. "webcat/egreedy/s1"
    double wall_micros = 0.0;     // measured wall time for this row
    double virtual_micros = 0.0;  // virtual (simulated) time, 0 if n/a
    double items = 0.0;           // items processed, 0 if n/a
    double quality = 0.0;         // final quality, 0 if n/a
    double cache_hit_rate = -1.0;  // feature-cache hit rate, -1 if n/a
  };

  explicit BenchReporter(std::string bench_name);

  void Add(Entry entry);

  /// Convenience: one entry summarizing a set of runs (means across runs).
  void AddRuns(const std::string& name, const std::vector<RunResult>& runs,
               double cache_hit_rate = -1.0);

  /// Named scalar metric (speedups, ratios) for the top-level JSON map.
  void AddMetric(const std::string& name, double value);

  /// Embeds a snapshot of `metrics` under the "observability" key of the
  /// output JSON (schema v2). Call at most once, before Finish.
  void AttachMetrics(const MetricsRegistry& metrics);

  /// Writes BENCH_<name>.json into ZOMBIE_BENCH_JSON_DIR and prints the
  /// path; silent no-op when the variable is unset. Call once, last.
  void Finish();

 private:
  std::string name_;
  Stopwatch total_;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::string observability_json_;
};

}  // namespace bench
}  // namespace zombie

#endif  // ZOMBIE_BENCH_BENCH_COMMON_H_
