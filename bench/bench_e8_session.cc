// E8 — engineer-session table: a 10-revision scripted feature-engineering
// session, full-scan versus Zombie, including the one-time indexing cost.
// This reproduces the abstract's "reduces engineer wait times from 8 to 5
// hours" aggregate: total wait shrinks by a meaningful factor even though
// early revisions pay indexing and holdout overheads.
//
// With --cache, the warm-start session is additionally re-run against a
// populated FeatureCache: the engineer's edit-run-evaluate loop re-executes
// an unchanged script, so every extraction is a memo hit. The cached replay
// must be byte-identical on the virtual clock (items, virtual time,
// quality) and is expected to be >= 1.5x faster on the wall clock.

#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "core/session.h"
#include "data/generator.h"
#include "data/webcat_generator.h"
#include "featureeng/revision_script.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

bool SameOutcomes(const SessionResult& a, const SessionResult& b) {
  if (a.revisions.size() != b.revisions.size()) return false;
  if (a.total_virtual_micros != b.total_virtual_micros) return false;
  if (a.best_quality != b.best_quality) return false;
  for (size_t i = 0; i < a.revisions.size(); ++i) {
    const RevisionOutcome& x = a.revisions[i];
    const RevisionOutcome& y = b.revisions[i];
    if (x.items_processed != y.items_processed) return false;
    if (x.virtual_micros != y.virtual_micros) return false;
    if (x.final_quality != y.final_quality) return false;
  }
  return true;
}

void Run(bool use_cache) {
  PrintPreamble(
      "E8: 10-revision engineering session (WebCat)",
      "the paper's end-to-end engineer wait-time experiment (8h -> 5h)",
      "zombie's total wait is a sizable fraction lower than the full-scan "
      "session; the one-time index cost amortizes across revisions");

  WebCatOptions wopts;
  wopts.num_documents = BenchCorpusSize();
  wopts.seed = 42;
  // Heavier items make the session timescale resemble the paper's hours.
  wopts.mean_extraction_cost_ms = 25.0;
  SyntheticCorpusConfig cfg = MakeWebCatConfig(wopts);
  // The paper's session workload is extraction-heavy; longer documents make
  // the *real* per-item extraction cost match the scenario the virtual
  // clock simulates.
  cfg.mean_doc_length = 480.0;
  Corpus corpus = SyntheticCorpusGenerator(cfg).Generate();

  RevisionScript script = MakeWebCatRevisionScript();
  NaiveBayesLearner nb;
  LabelReward reward;
  EngineOptions opts = BenchEngineOptions(1);

  SessionResult full = RunSession(corpus, script, SessionMode::kFullScan,
                                  nullptr, nb, reward, opts);
  KMeansGrouper grouper(32, 7);
  SessionResult fast = RunSession(corpus, script, SessionMode::kZombie,
                                  &grouper, nb, reward, opts);
  KMeansGrouper grouper_warm(32, 7);
  Stopwatch uncached_watch;
  SessionResult warm = RunSession(corpus, script, SessionMode::kZombie,
                                  &grouper_warm, nb, reward, opts,
                                  /*warm_start_bandit=*/true);
  int64_t uncached_wall = uncached_watch.ElapsedMicros();

  TableWriter table({"revision", "full_items", "full_wait", "full_q",
                     "zombie_items", "zombie_wait", "zombie_q"});
  for (size_t i = 0; i < script.size(); ++i) {
    const RevisionOutcome& f = full.revisions[i];
    const RevisionOutcome& z = fast.revisions[i];
    table.BeginRow();
    table.Cell(f.revision_name);
    table.Cell(static_cast<int64_t>(f.items_processed));
    table.Cell(FormatDuration(f.virtual_micros));
    table.Cell(f.final_quality, 3);
    table.Cell(static_cast<int64_t>(z.items_processed));
    table.Cell(FormatDuration(z.virtual_micros));
    table.Cell(z.final_quality, 3);
  }
  FinishTable(table, "e8_session");

  double ratio = fast.total_virtual_micros > 0
                     ? static_cast<double>(full.total_virtual_micros) /
                           static_cast<double>(fast.total_virtual_micros)
                     : 0.0;
  std::printf("\nfull-scan session wait:    %s (best quality %.3f)\n",
              FormatDuration(full.total_virtual_micros).c_str(),
              full.best_quality);
  std::printf("zombie session wait:       %s (best quality %.3f; index build "
              "%s virtual, %s wall)\n",
              FormatDuration(fast.total_virtual_micros).c_str(),
              fast.best_quality,
              FormatDuration(fast.index_virtual_micros).c_str(),
              FormatDuration(fast.index_wall_micros).c_str());
  std::printf("zombie + warm-start wait:  %s (best quality %.3f; bandit "
              "state carried across revisions)\n",
              FormatDuration(warm.total_virtual_micros).c_str(),
              warm.best_quality);
  std::printf("session-level reduction:   %.2fx (paper analogue: 8h -> 5h "
              "~= 1.6x)\n", ratio);

  BenchReporter reporter("e8_session");
  reporter.Add({"full_scan", 0.0,
                static_cast<double>(full.total_virtual_micros), 0.0,
                full.best_quality, -1.0});
  reporter.Add({"zombie", 0.0, static_cast<double>(fast.total_virtual_micros),
                0.0, fast.best_quality, -1.0});
  reporter.Add({"zombie_warm", static_cast<double>(uncached_wall),
                static_cast<double>(warm.total_virtual_micros), 0.0,
                warm.best_quality, -1.0});
  reporter.AddMetric("session_reduction", ratio);

  if (use_cache) {
    // The edit-run-evaluate replay: populate the cache with one run of the
    // script, then re-run the identical script against the warm cache.
    FeatureCache cache;
    KMeansGrouper grouper_pop(32, 7);
    SessionResult populate = RunSession(corpus, script, SessionMode::kZombie,
                                        &grouper_pop, nb, reward, opts,
                                        /*warm_start_bandit=*/true, &cache);
    ZCHECK(SameOutcomes(warm, populate))
        << "cold-cache session diverged from uncached session";

    KMeansGrouper grouper_hot(32, 7);
    Stopwatch cached_watch;
    SessionResult replay = RunSession(corpus, script, SessionMode::kZombie,
                                      &grouper_hot, nb, reward, opts,
                                      /*warm_start_bandit=*/true, &cache);
    int64_t cached_wall = cached_watch.ElapsedMicros();
    ZCHECK(SameOutcomes(warm, replay))
        << "warm-cache session diverged from uncached session";

    FeatureCacheStats stats = cache.Stats();
    // The index build is a one-time cost charged identically on both sides
    // (a real replay would reuse the index too); the cache's wall-clock win
    // is over the session workload — the revision loop.
    int64_t uncached_loop = uncached_wall - warm.index_wall_micros;
    int64_t cached_loop = cached_wall - replay.index_wall_micros;
    double wall_speedup =
        cached_loop > 0 ? static_cast<double>(uncached_loop) /
                              static_cast<double>(cached_loop)
                        : 0.0;
    std::printf(
        "\n--cache: warm replay outcomes byte-identical to the uncached "
        "session\n"
        "uncached warm-start wall:  %s (%s excl. one-time index build)\n"
        "cached   warm-start wall:  %s (%s excl. one-time index build; "
        "hit rate %.3f, %zu entries)\n"
        "wall-clock replay speedup: %.2fx over the revision loop "
        "(target >= 1.5x)\n",
        FormatDuration(uncached_wall).c_str(),
        FormatDuration(uncached_loop).c_str(),
        FormatDuration(cached_wall).c_str(),
        FormatDuration(cached_loop).c_str(), stats.hit_rate(), stats.entries,
        wall_speedup);
    reporter.Add({"zombie_warm_cached", static_cast<double>(cached_wall),
                  static_cast<double>(replay.total_virtual_micros), 0.0,
                  replay.best_quality, stats.hit_rate()});
    reporter.AddMetric("cache_wall_speedup", wall_speedup);
    reporter.AddMetric("cache_hit_rate", stats.hit_rate());
  }
  reporter.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main(int argc, char** argv) {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  bool use_cache = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") == 0) use_cache = true;
  }
  zombie::bench::Run(use_cache);
  return 0;
}
