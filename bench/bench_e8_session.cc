// E8 — engineer-session table: a 10-revision scripted feature-engineering
// session, full-scan versus Zombie, including the one-time indexing cost.
// This reproduces the abstract's "reduces engineer wait times from 8 to 5
// hours" aggregate: total wait shrinks by a meaningful factor even though
// early revisions pay indexing and holdout overheads.

#include <cstdio>

#include "bench_common.h"
#include "core/session.h"
#include "data/webcat_generator.h"
#include "featureeng/revision_script.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"

namespace zombie {
namespace bench {
namespace {

void Run() {
  PrintPreamble(
      "E8: 10-revision engineering session (WebCat)",
      "the paper's end-to-end engineer wait-time experiment (8h -> 5h)",
      "zombie's total wait is a sizable fraction lower than the full-scan "
      "session; the one-time index cost amortizes across revisions");

  WebCatOptions wopts;
  wopts.num_documents = BenchCorpusSize();
  wopts.seed = 42;
  // Heavier items make the session timescale resemble the paper's hours.
  wopts.mean_extraction_cost_ms = 25.0;
  Corpus corpus = GenerateWebCatCorpus(wopts);

  RevisionScript script = MakeWebCatRevisionScript();
  NaiveBayesLearner nb;
  LabelReward reward;
  EngineOptions opts = BenchEngineOptions(1);

  SessionResult full = RunSession(corpus, script, SessionMode::kFullScan,
                                  nullptr, nb, reward, opts);
  KMeansGrouper grouper(32, 7);
  SessionResult fast = RunSession(corpus, script, SessionMode::kZombie,
                                  &grouper, nb, reward, opts);
  KMeansGrouper grouper_warm(32, 7);
  SessionResult warm = RunSession(corpus, script, SessionMode::kZombie,
                                  &grouper_warm, nb, reward, opts,
                                  /*warm_start_bandit=*/true);

  TableWriter table({"revision", "full_items", "full_wait", "full_q",
                     "zombie_items", "zombie_wait", "zombie_q"});
  for (size_t i = 0; i < script.size(); ++i) {
    const RevisionOutcome& f = full.revisions[i];
    const RevisionOutcome& z = fast.revisions[i];
    table.BeginRow();
    table.Cell(f.revision_name);
    table.Cell(static_cast<int64_t>(f.items_processed));
    table.Cell(FormatDuration(f.virtual_micros));
    table.Cell(f.final_quality, 3);
    table.Cell(static_cast<int64_t>(z.items_processed));
    table.Cell(FormatDuration(z.virtual_micros));
    table.Cell(z.final_quality, 3);
  }
  FinishTable(table, "e8_session");

  double ratio = fast.total_virtual_micros > 0
                     ? static_cast<double>(full.total_virtual_micros) /
                           static_cast<double>(fast.total_virtual_micros)
                     : 0.0;
  std::printf("\nfull-scan session wait:    %s (best quality %.3f)\n",
              FormatDuration(full.total_virtual_micros).c_str(),
              full.best_quality);
  std::printf("zombie session wait:       %s (best quality %.3f; index build "
              "%s virtual, %s wall)\n",
              FormatDuration(fast.total_virtual_micros).c_str(),
              fast.best_quality,
              FormatDuration(fast.index_virtual_micros).c_str(),
              FormatDuration(fast.index_wall_micros).c_str());
  std::printf("zombie + warm-start wait:  %s (best quality %.3f; bandit "
              "state carried across revisions)\n",
              FormatDuration(warm.total_virtual_micros).c_str(),
              warm.best_quality);
  std::printf("session-level reduction:   %.2fx (paper analogue: 8h -> 5h "
              "~= 1.6x)\n", ratio);
}

}  // namespace
}  // namespace bench
}  // namespace zombie

int main() {
  zombie::SetLogLevel(zombie::LogLevel::kWarning);
  zombie::bench::Run();
  return 0;
}
