// How a downstream user extends Zombie: write a bespoke FeatureExtractor
// (here: URL-path depth + a suspicious-token detector) and a bespoke
// RewardFunction (here: reward items the model is confidently wrong
// about), plug both into the engine, and run against a baseline.

#include <cstdio>
#include <memory>

#include "bandit/epsilon_greedy.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "featureeng/extractors.h"
#include "featureeng/pipeline.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/logging.h"

namespace {

using namespace zombie;

// A user-written feature: bucketized URL path depth ("/a/b/c.html" -> 3).
// Extractors see the full raw document, so any field is fair game.
class UrlDepthExtractor : public FeatureExtractor {
 public:
  static constexpr uint32_t kBuckets = 8;

  void Extract(const Document& doc, const Corpus& /*corpus*/,
               TermCounts* out) const override {
    uint32_t depth = 0;
    // Count '/' after the scheme's "//".
    size_t start = doc.url.find("//");
    start = start == std::string::npos ? 0 : start + 2;
    for (size_t i = start; i < doc.url.size(); ++i) {
      if (doc.url[i] == '/') ++depth;
    }
    out->emplace_back(std::min(depth, kBuckets - 1), 1.0);
  }
  uint32_t dimension() const override { return kBuckets; }
  std::string name() const override { return "urldepth"; }
  double cost_factor() const override { return 0.02; }  // metadata-cheap
};

// A user-written reward: "confidently wrong" items are gold for fixing a
// model. Reward = misclassified AND far from the boundary.
class ConfidentMistakeReward : public RewardFunction {
 public:
  double Compute(const RewardInputs& inputs) const override {
    int32_t predicted = inputs.score_before > 0.0 ? 1 : 0;
    if (predicted == inputs.label) return 0.0;
    double confidence =
        std::abs(2.0 * inputs.probability_before - 1.0);  // 0 at boundary
    return confidence;
  }
  std::string name() const override { return "confident-mistake"; }
  std::unique_ptr<RewardFunction> Clone() const override {
    return std::make_unique<ConfidentMistakeReward>();
  }
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  Task base = MakeTask(TaskKind::kWebCat, 6000, 21);

  // Compose the user's pipeline: stock extractors + the custom one.
  FeaturePipeline pipeline("custom");
  pipeline.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
  pipeline.Add(std::make_unique<UrlDepthExtractor>());
  pipeline.Add(std::make_unique<DomainExtractor>());
  std::printf("pipeline: %s (cost factor %.2f, %u dims)\n",
              pipeline.Description().c_str(), pipeline.total_cost_factor(),
              pipeline.dimension());

  KMeansGrouper grouper(24, 5);
  GroupingResult grouping = grouper.Group(base.corpus);

  EngineOptions options;
  options.seed = 2;
  ZombieEngine engine(&base.corpus, &pipeline, options);

  NaiveBayesLearner learner;
  EpsilonGreedyPolicy policy;
  ConfidentMistakeReward reward;
  RunResult zombie = engine.Run(RunSpec(grouping, policy, learner, reward));

  ZombieEngine baseline_engine(&base.corpus, &pipeline,
                               FullScanOptions(options));
  RunResult baseline = RunRandomBaseline(baseline_engine, learner);

  std::printf("\nzombie:   %s\n", zombie.ToString().c_str());
  std::printf("baseline: %s\n", baseline.ToString().c_str());
  SpeedupReport speedup = ComputeSpeedup(baseline, zombie, 0.95);
  std::printf("\n%s\n", speedup.ToString().c_str());
  return 0;
}
