// Extraction-style task (T2): find pages mentioning a target entity.
// Demonstrates the inverted-index grouper seeded with the engineer's
// entity terms, plus the uncertainty reward (active-learning flavored
// usefulness signal).

#include <cstdio>

#include "bandit/ucb1.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "index/token_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

int main() {
  using namespace zombie;
  SetLogLevel(LogLevel::kWarning);

  Task task = MakeTask(TaskKind::kEntity, 8000, 7);
  std::printf("corpus: %zu docs, %.1f%% mention the entity\n", task.corpus.size(),
              100.0 * task.corpus.ComputeStats().positive_fraction);

  // The engineer knows the entity's surface forms; seed the inverted index
  // with them. The grouper adds generic mid-frequency token groups too.
  TokenGrouperOptions index_options;
  for (size_t m = 0; m < 5; ++m) {
    index_options.seed_terms.push_back(StrFormat("topic0_w%zu", m));
  }
  TokenGrouper grouper(index_options);
  GroupingResult grouping = grouper.Group(task.corpus);
  std::printf("inverted index: %zu token groups (%s to build)\n",
              grouping.num_groups(),
              FormatDuration(grouping.build_wall_micros).c_str());

  EngineOptions options;
  options.seed = 11;
  ZombieEngine engine(&task.corpus, &task.pipeline, options);

  NaiveBayesLearner learner;
  Ucb1Policy policy;  // UCB instead of the default epsilon-greedy
  UncertaintyReward reward;
  RunResult zombie = engine.Run(RunSpec(grouping, policy, learner, reward));

  ZombieEngine baseline_engine(&task.corpus, &task.pipeline,
                               FullScanOptions(options));
  RunResult baseline = RunRandomBaseline(baseline_engine, learner);

  std::printf("\nzombie:   %s\n", zombie.ToString().c_str());
  std::printf("baseline: %s\n", baseline.ToString().c_str());

  // Which arms did the bandit favor?
  std::printf("\ntop arms by pulls:\n");
  std::vector<size_t> order(zombie.arms.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&zombie](size_t a, size_t b) {
    return zombie.arms[a].pulls > zombie.arms[b].pulls;
  });
  for (size_t i = 0; i < std::min<size_t>(5, order.size()); ++i) {
    const ArmSummary& arm = zombie.arms[order[i]];
    std::printf("  arm %zu: %zu pulls, %zu positives, group size %zu\n",
                order[i], arm.pulls, arm.positives_seen, arm.group_size);
  }

  SpeedupReport speedup = ComputeSpeedup(baseline, zombie, 0.95);
  std::printf("\n%s\n", speedup.ToString().c_str());
  return 0;
}
