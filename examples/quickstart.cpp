// Quickstart: the 60-second tour of Zombie.
//
// 1. Generate a synthetic "web crawl" with a rare target category.
// 2. Build index groups over it (offline, once per corpus).
// 3. Run the Zombie inner loop (bandit input selection + early stop) and a
//    random-order full scan, and compare how fast each reaches quality.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "bandit/epsilon_greedy.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/reward.h"
#include "core/task_factory.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"

int main() {
  using namespace zombie;
  SetLogLevel(LogLevel::kWarning);

  // --- 1. A 10k-document crawl; ~5% of pages are the target category. ----
  Task task = MakeTask(TaskKind::kWebCat, /*num_documents=*/10000,
                       /*seed=*/42);
  CorpusStats stats = task.corpus.ComputeStats();
  std::printf("corpus: %zu docs, %.1f%% positive, ~%.1f ms/item to featurize\n",
              stats.num_documents, 100.0 * stats.positive_fraction,
              stats.mean_extraction_cost_ms);

  // --- 2. Offline indexing: k-means over cheap content signatures. --------
  KMeansGrouper grouper(/*num_groups=*/32, /*seed=*/7);
  GroupingResult grouping = grouper.Group(task.corpus);
  std::printf("index: %zu groups built in %s wall time\n",
              grouping.num_groups(),
              FormatDuration(grouping.build_wall_micros).c_str());

  // --- 3. Zombie vs. random scan. ------------------------------------------
  EngineOptions options;
  options.seed = 1;

  ZombieEngine engine(&task.corpus, &task.pipeline, options);

  NaiveBayesLearner learner;
  EpsilonGreedyPolicy policy;
  LabelReward reward;
  RunResult zombie = engine.Run(RunSpec(grouping, policy, learner, reward));

  ZombieEngine baseline_engine(&task.corpus, &task.pipeline,
                               FullScanOptions(options));
  RunResult baseline = RunRandomBaseline(baseline_engine, learner);

  std::printf("\nzombie:   %s\n", zombie.ToString().c_str());
  std::printf("baseline: %s\n", baseline.ToString().c_str());

  SpeedupReport speedup = ComputeSpeedup(baseline, zombie, 0.95);
  std::printf("\n%s\n", speedup.ToString().c_str());
  return 0;
}
