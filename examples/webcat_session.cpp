// The paper's motivating scenario end-to-end: an engineer iterates on
// feature code for rare-category web page classification. We replay a
// scripted 10-revision session twice — the status quo (featurize the whole
// corpus every revision) and Zombie (index once, bandit-select inputs,
// stop when the quality estimate converges) — and compare total wait time.
//
// This is the abstract's "reduces engineer wait times from 8 to 5 hours"
// experiment at example scale; bench_e8_session runs it at full scale.

#include <cstdio>

#include "core/reward.h"
#include "core/session.h"
#include "data/webcat_generator.h"
#include "featureeng/revision_script.h"
#include "index/kmeans_grouper.h"
#include "ml/naive_bayes.h"
#include "util/clock.h"
#include "util/logging.h"

int main() {
  using namespace zombie;
  SetLogLevel(LogLevel::kWarning);

  WebCatOptions corpus_options;
  corpus_options.num_documents = 6000;
  corpus_options.mean_extraction_cost_ms = 25.0;  // heavyweight raw pages
  corpus_options.seed = 42;
  Corpus corpus = GenerateWebCatCorpus(corpus_options);
  std::printf("crawl: %zu pages, %.1f%% in the target category\n\n",
              corpus.size(),
              100.0 * corpus.ComputeStats().positive_fraction);

  RevisionScript script = MakeWebCatRevisionScript();
  NaiveBayesLearner learner;
  LabelReward reward;
  EngineOptions engine_options;
  engine_options.seed = 1;

  std::printf("replaying %zu feature revisions, full scan per revision...\n",
              script.size());
  SessionResult full = RunSession(corpus, script, SessionMode::kFullScan,
                                  nullptr, learner, reward, engine_options);

  std::printf("replaying the same revisions with Zombie input selection...\n\n");
  KMeansGrouper grouper(32, 7);
  SessionResult fast = RunSession(corpus, script, SessionMode::kZombie,
                                  &grouper, learner, reward, engine_options);

  std::printf("%-18s %14s %10s %14s %10s\n", "revision", "full wait",
              "full q", "zombie wait", "zombie q");
  for (size_t i = 0; i < script.size(); ++i) {
    std::printf("%-18s %14s %10.3f %14s %10.3f\n",
                full.revisions[i].revision_name.c_str(),
                FormatDuration(full.revisions[i].virtual_micros).c_str(),
                full.revisions[i].final_quality,
                FormatDuration(fast.revisions[i].virtual_micros).c_str(),
                fast.revisions[i].final_quality);
  }

  double ratio = static_cast<double>(full.total_virtual_micros) /
                 static_cast<double>(fast.total_virtual_micros);
  std::printf("\nengineer wait, full scans: %s\n",
              FormatDuration(full.total_virtual_micros).c_str());
  std::printf("engineer wait, Zombie:     %s (incl. one-time indexing %s)\n",
              FormatDuration(fast.total_virtual_micros).c_str(),
              FormatDuration(fast.index_virtual_micros).c_str());
  std::printf("session speedup:           %.2fx, best quality %.3f vs %.3f\n",
              ratio, fast.best_quality, full.best_quality);
  return 0;
}
