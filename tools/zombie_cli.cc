// zombie_cli — command-line front end for the library.
//
//   zombie_cli generate --task=webcat --docs=20000 --seed=42 --out=crawl.zmbc
//   zombie_cli inspect  --corpus=crawl.zmbc
//   zombie_cli run      --corpus=crawl.zmbc [--task=webcat --docs=...]
//                       --grouper=kmeans --groups=32 --policy=egreedy
//                       --reward=label --learner=nb [--baseline] [--csv=out.csv]
//                       [--trials=N] [--threads=N] [--eval-threads=N]
//                       [--cache] [--prefetch-threads=N] [--prefetch-arms=N]
//                       [--prune=off|conservative|aggressive]
//                       [--stream=F] [--ingest-rate=R]
//                       [--stream-order=corpus|shuffled|domain]
//                       [--stream-seed=N]
//                       [--store-path=feat.zfs] [--store-gc]
//                       [--trace-out=trace.json] [--metrics-out=metrics.json]
//                       [--decisions-out=decisions.jsonl]
//                       [--fingerprint-out=fp.txt]
//   zombie_cli session  --task=webcat --docs=12000 [--warm] [--cache]
//                       [--eval-threads=N]
//                       [--prefetch-threads=N] [--prefetch-arms=N]
//                       [--prune=off|conservative|aggressive]
//                       [--store-path=feat.zfs]
//                       [--trace-out=...] [--metrics-out=...]
//                       [--decisions-out=...]
//   zombie_cli simd-level [--print=active|detected]
//
// Flags are --key=value; unknown flags fail loudly. When --corpus is given
// it is loaded from disk, otherwise --task/--docs/--seed generate one.
// The three --*-out flags enable the matching observability sink for the
// run and write it on exit: --trace-out produces Chrome/Perfetto-loadable
// trace JSON, --metrics-out a metrics snapshot, --decisions-out the
// per-pull bandit decision log as JSONL.
//
// --store-path attaches the persistent mmap-backed feature store at that
// path (created on first use) as a second cache tier: extractions persist
// across processes and restarts, results stay byte-identical (the store is
// wall-clock-only, like --cache). One process writes, concurrent ones read.
// --store-gc (run only) drops store records from other pipeline
// fingerprints at open (versioned invalidation).
//
// --prune selects an online feature-pruning preset (ml/feature_pruner.h):
// past a warmup item count the engine freezes a deterministic pruning mask
// at a holdout-eval boundary and compacts every subsequent sparse vector.
// "off" (the default) leaves all output byte-identical to pre-pruning
// builds; "conservative"/"aggressive" trade accuracy for inner-loop speed.
//
// --stream=F (run only) holds back the last F (0 < F < 1) of the corpus as
// a virtual-time arrival stream: the index is built over the remaining
// base prefix and arrivals join it at holdout-eval boundaries, splitting
// or opening bandit arms mid-run (data/corpus_source.h,
// index/incremental_grouper.h). --ingest-rate sets the arrival rate in
// documents per virtual second (default 100), --stream-order the arrival
// permutation, --stream-seed the schedule's jitter seed. Streaming runs
// are deterministic given these flags: fingerprints and decision logs are
// byte-identical across --threads, --eval-threads, --cache/--store-path,
// and forced SIMD levels. Requires --grouper=kmeans|metadata|token.
//
// --fingerprint-out (run only) writes each trial's canonical RunResult
// fingerprint (see RunResult::Fingerprint); the simd-dispatch CI job
// byte-compares these files across forced ZOMBIE_SIMD_LEVEL runs.
// `simd-level` reports how SIMD dispatch resolved on this machine/binary.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bandit/policy.h"
#include "core/analysis.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "core/experiment_driver.h"
#include "core/reward.h"
#include "core/session.h"
#include "featureeng/extraction_service.h"
#include "featureeng/feature_cache.h"
#include "featureeng/persistent_feature_store.h"
#include "core/task_factory.h"
#include "data/corpus_source.h"
#include "data/serialization.h"
#include "featureeng/revision_script.h"
#include "index/incremental_grouper.h"
#include "index/kmeans_grouper.h"
#include "index/metadata_grouper.h"
#include "index/oracle_grouper.h"
#include "index/random_grouper.h"
#include "index/token_grouper.h"
#include "ml/adagrad_lr.h"
#include "ml/feature_pruner.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/simd/simd_level.h"
#include "ml/pegasos_svm.h"
#include "ml/perceptron.h"
#include "obs/obs.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {
namespace cli {
namespace {

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

class Flags {
 public:
  [[nodiscard]] Status Parse(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected --key=value, got " + arg);
      }
      size_t eq = arg.find('=');
      std::string key = arg.substr(2, eq == std::string::npos
                                          ? std::string::npos
                                          : eq - 2);
      std::string value = eq == std::string::npos ? "true" : arg.substr(eq + 1);
      values_[key] = value;
    }
    return Status::OK();
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    consumed_.insert(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    consumed_.insert(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    consumed_.insert(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key) const {
    auto it = values_.find(key);
    consumed_.insert(key);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

  /// Errors out on flags nobody consumed (typo protection).
  [[nodiscard]] Status CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      if (consumed_.find(key) == consumed_.end()) {
        return Status::InvalidArgument("unknown flag --" + key);
      }
    }
    return Status::OK();
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

// ---------------------------------------------------------------------------
// Component construction from flag values
// ---------------------------------------------------------------------------

StatusOr<TaskKind> ParseTaskKind(const std::string& name) {
  if (name == "webcat") return TaskKind::kWebCat;
  if (name == "entity") return TaskKind::kEntity;
  if (name == "balanced") return TaskKind::kBalanced;
  return Status::InvalidArgument("unknown task: " + name);
}

StatusOr<Corpus> ObtainCorpus(const Flags& flags) {
  std::string path = flags.GetString("corpus", "");
  if (!path.empty()) return LoadCorpus(path);
  ZOMBIE_ASSIGN_OR_RETURN(TaskKind kind,
                          ParseTaskKind(flags.GetString("task", "webcat")));
  Task task = MakeTask(kind,
                       static_cast<size_t>(flags.GetInt("docs", 12000)),
                       static_cast<uint64_t>(flags.GetInt("seed", 42)));
  return std::move(task.corpus);
}

std::unique_ptr<Grouper> MakeGrouperFromFlags(const Flags& flags) {
  std::string name = flags.GetString("grouper", "kmeans");
  size_t groups = static_cast<size_t>(flags.GetInt("groups", 32));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("grouper_seed", 7));
  if (name == "kmeans") return std::make_unique<KMeansGrouper>(groups, seed);
  if (name == "random") return std::make_unique<RandomGrouper>(groups, seed);
  if (name == "metadata") return std::make_unique<MetadataGrouper>(groups);
  if (name == "token") {
    TokenGrouperOptions opts;
    for (const std::string& term :
         Split(flags.GetString("seed_terms", ""), ',')) {
      if (!term.empty()) opts.seed_terms.push_back(term);
    }
    return std::make_unique<TokenGrouper>(opts);
  }
  if (name == "oracle") {
    return std::make_unique<OracleGrouper>(OracleMode::kLabel);
  }
  return nullptr;
}

/// The incremental counterpart of MakeGrouperFromFlags, for --stream runs.
/// Only kmeans/metadata/token have streaming variants; anything else
/// returns null and CmdRun reports the error.
std::unique_ptr<IncrementalGrouper> MakeIncrementalGrouperFromFlags(
    const Flags& flags) {
  std::string name = flags.GetString("grouper", "kmeans");
  size_t groups = static_cast<size_t>(flags.GetInt("groups", 32));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("grouper_seed", 7));
  if (name == "kmeans") {
    IncrementalKMeansOptions opts;
    opts.num_groups = groups;
    opts.seed = seed;
    return std::make_unique<IncrementalKMeansGrouper>(opts);
  }
  if (name == "metadata") {
    IncrementalMetadataOptions opts;
    opts.max_groups = groups;
    return std::make_unique<IncrementalMetadataGrouper>(opts);
  }
  if (name == "token") {
    TokenGrouperOptions opts;
    for (const std::string& term :
         Split(flags.GetString("seed_terms", ""), ',')) {
      if (!term.empty()) opts.seed_terms.push_back(term);
    }
    return std::make_unique<IncrementalTokenGrouper>(opts);
  }
  return nullptr;
}

/// --stream-order parse; unknown values are reported and fall back to the
/// corpus order (the prune/prefetch flag idiom).
ArrivalOrder ParseArrivalOrder(const std::string& name) {
  if (name == "shuffled") return ArrivalOrder::kShuffled;
  if (name == "domain") return ArrivalOrder::kDomainGrouped;
  if (name != "corpus") {
    std::fprintf(stderr,
                 "unknown --stream-order '%s' (want corpus|shuffled|domain); "
                 "using corpus\n",
                 name.c_str());
  }
  return ArrivalOrder::kCorpus;
}

StatusOr<PolicyKind> ParsePolicyKindFromFlags(const Flags& flags) {
  std::string name = flags.GetString("policy", "egreedy");
  for (PolicyKind kind :
       {PolicyKind::kRoundRobin, PolicyKind::kUniformRandom,
        PolicyKind::kEpsilonGreedy, PolicyKind::kUcb1,
        PolicyKind::kSlidingUcb, PolicyKind::kThompson, PolicyKind::kExp3,
        PolicyKind::kSoftmax}) {
    if (name == PolicyKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown policy: " + name);
}

std::unique_ptr<RewardFunction> MakeRewardFromFlags(const Flags& flags) {
  std::string name = flags.GetString("reward", "label");
  for (RewardKind kind :
       {RewardKind::kLabel, RewardKind::kUncertainty,
        RewardKind::kMisclassification, RewardKind::kImprovement,
        RewardKind::kBlend, RewardKind::kBalance, RewardKind::kZero}) {
    if (name == RewardKindName(kind)) return MakeReward(kind);
  }
  return nullptr;
}

std::unique_ptr<Learner> MakeLearnerFromFlags(const Flags& flags) {
  std::string name = flags.GetString("learner", "nb");
  if (name == "nb") return std::make_unique<NaiveBayesLearner>();
  if (name == "logreg") return std::make_unique<LogisticRegressionLearner>();
  if (name == "adagrad") return std::make_unique<AdaGradLogisticLearner>();
  if (name == "perceptron") {
    return std::make_unique<AveragedPerceptronLearner>();
  }
  if (name == "svm") return std::make_unique<PegasosSvmLearner>();
  return nullptr;
}

EngineOptions MakeEngineOptionsFromFlags(const Flags& flags) {
  EngineOptions opts;
  opts.seed = static_cast<uint64_t>(flags.GetInt("run_seed", 1));
  opts.holdout_size = static_cast<size_t>(flags.GetInt("holdout", 400));
  opts.eval_every = static_cast<size_t>(flags.GetInt("eval_every", 25));
  opts.tune_threshold = flags.GetBool("tune_threshold");
  int64_t budget = flags.GetInt("max_items", -1);
  if (budget > 0) opts.stop.max_items = static_cast<size_t>(budget);
  int64_t eval_threads = flags.GetInt("eval-threads", 1);
  if (eval_threads > 1) {
    opts.holdout_eval_threads = static_cast<size_t>(eval_threads);
  }
  // Online feature pruning preset (ml/feature_pruner.h). Unknown values
  // are reported and ignored, matching the prefetch-flag idiom.
  std::string prune = flags.GetString("prune", "off");
  if (prune == "conservative") {
    opts.pruning = ConservativePruning();
  } else if (prune == "aggressive") {
    opts.pruning = AggressivePruning();
  } else if (prune != "off") {
    std::fprintf(stderr,
                 "unknown --prune preset '%s' "
                 "(want off|conservative|aggressive); pruning stays off\n",
                 prune.c_str());
  }
  return opts;
}

/// Speculative prefetch knobs (wall-clock-only; featureeng/
/// extraction_service.h). Prefetch needs the feature cache to store into,
/// so --prefetch-threads without --cache is reported and disabled.
PrefetchOptions MakePrefetchOptionsFromFlags(const Flags& flags,
                                             bool use_cache) {
  PrefetchOptions prefetch;
  int64_t threads = flags.GetInt("prefetch-threads", 0);
  int64_t arms = flags.GetInt("prefetch-arms", 4);
  if (threads > 0) prefetch.threads = static_cast<size_t>(threads);
  if (arms > 0) prefetch.max_arms = static_cast<size_t>(arms);
  if (prefetch.threads > 0 && !use_cache) {
    std::fprintf(stderr,
                 "--prefetch-threads requires --cache; prefetch disabled\n");
    prefetch.threads = 0;
  }
  return prefetch;
}

/// Opens the persistent feature store named by `path` (--store-path).
/// `retain` non-empty enables versioned invalidation at open (--store-gc).
/// Reports and returns null on failure; the caller treats null as
/// "no store" (an empty path is not an error).
std::unique_ptr<PersistentFeatureStore> OpenStore(
    const std::string& path, std::vector<uint64_t> retain) {
  if (path.empty()) return nullptr;
  PersistentFeatureStoreOptions sopts;
  sopts.retain_fingerprints = std::move(retain);
  StatusOr<std::unique_ptr<PersistentFeatureStore>> store =
      PersistentFeatureStore::Open(path, std::move(sopts));
  if (!store.ok()) {
    std::fprintf(stderr, "cannot open store: %s\n",
                 store.status().ToString().c_str());
    return nullptr;
  }
  if (!store.value()->writable()) {
    std::printf("store: %s opened read-only (another writer is active)\n",
                path.c_str());
  }
  return std::move(store).value();
}

void PrintStoreStats(const PersistentFeatureStore& store) {
  PersistentFeatureStoreStats s = store.Stats();
  std::printf(
      "store: %llu entries (%llu recovered, %llu appended), hit rate %.3f "
      "(%llu hits / %llu lookups), %llu invalidated, %llu corrupt skipped%s\n",
      static_cast<unsigned long long>(s.entries),
      static_cast<unsigned long long>(s.recovered),
      static_cast<unsigned long long>(s.appends), s.hit_rate(),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.hits + s.misses),
      static_cast<unsigned long long>(s.invalidated),
      static_cast<unsigned long long>(s.corrupt_skipped),
      s.writable ? "" : " [read-only]");
}

// ---------------------------------------------------------------------------
// Observability plumbing shared by run/session
// ---------------------------------------------------------------------------

struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;
  std::string decisions_path;

  bool any() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !decisions_path.empty();
  }
};

ObsOutputs GetObsOutputs(const Flags& flags) {
  ObsOutputs out;
  out.trace_path = flags.GetString("trace-out", "");
  out.metrics_path = flags.GetString("metrics-out", "");
  out.decisions_path = flags.GetString("decisions-out", "");
  return out;
}

/// Builds a context with exactly the sinks the requested outputs need, or
/// null when no --*-out flag was given (keeps the hot path uninstrumented).
std::unique_ptr<ObsContext> MakeObsContext(const ObsOutputs& out) {
  if (!out.any()) return nullptr;
  ObsOptions opts;
  opts.trace = !out.trace_path.empty();
  opts.metrics = !out.metrics_path.empty();
  opts.decision_log = !out.decisions_path.empty();
  return std::make_unique<ObsContext>(opts);
}

/// Writes each requested sink; returns false (after reporting) on IO error.
bool WriteObsOutputs(const ObsOutputs& out, const ObsContext& obs) {
  bool ok = true;
  auto report = [&ok](const Status& st, const std::string& what,
                      const std::string& path) {
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      ok = false;
    } else {
      std::printf("%s written to %s\n", what.c_str(), path.c_str());
    }
  };
  if (!out.metrics_path.empty()) {
    report(obs.metrics()->WriteJson(out.metrics_path), "metrics",
           out.metrics_path);
  }
  if (!out.trace_path.empty()) {
    report(obs.trace()->WriteJson(out.trace_path), "trace", out.trace_path);
  }
  if (!out.decisions_path.empty()) {
    report(obs.decisions()->WriteJsonl(out.decisions_path), "decision log",
           out.decisions_path);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int CmdGenerate(const Flags& flags) {
  StatusOr<TaskKind> kind = ParseTaskKind(flags.GetString("task", "webcat"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  std::string out = flags.GetString("out", "corpus.zmbc");
  Task task = MakeTask(kind.value(),
                       static_cast<size_t>(flags.GetInt("docs", 12000)),
                       static_cast<uint64_t>(flags.GetInt("seed", 42)));
  ZCHECK_OK(flags.CheckAllConsumed());
  Status st = SaveCorpus(task.corpus, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  CorpusStats stats = task.corpus.ComputeStats();
  std::printf("wrote %s: %zu docs, %.1f%% positive\n", out.c_str(),
              stats.num_documents, 100.0 * stats.positive_fraction);
  return 0;
}

int CmdInspect(const Flags& flags) {
  StatusOr<Corpus> corpus = ObtainCorpus(flags);
  ZCHECK_OK(flags.CheckAllConsumed());
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  CorpusStats s = corpus.value().ComputeStats();
  std::printf("name:               %s\n", corpus.value().name().c_str());
  std::printf("documents:          %zu\n", s.num_documents);
  std::printf("positive fraction:  %.3f\n", s.positive_fraction);
  std::printf("mean length:        %.1f tokens\n", s.mean_length);
  std::printf("mean extract cost:  %.2f ms\n", s.mean_extraction_cost_ms);
  std::printf("domains:            %zu\n", s.num_domains);
  std::printf("vocabulary:         %zu terms\n", s.vocabulary_size);
  return 0;
}

int CmdRun(const Flags& flags) {
  StatusOr<Corpus> corpus_or = ObtainCorpus(flags);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "%s\n", corpus_or.status().ToString().c_str());
    return 1;
  }
  Corpus corpus = std::move(corpus_or).value();
  StatusOr<TaskKind> kind = ParseTaskKind(flags.GetString("task", "webcat"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }
  FeaturePipeline pipeline = MakeDefaultPipeline(kind.value(), corpus);

  auto grouper = MakeGrouperFromFlags(flags);
  StatusOr<PolicyKind> policy_kind = ParsePolicyKindFromFlags(flags);
  auto reward = MakeRewardFromFlags(flags);
  auto learner = MakeLearnerFromFlags(flags);
  if (!grouper || !policy_kind.ok() || !reward || !learner) {
    std::fprintf(stderr, "unknown grouper/policy/reward/learner\n");
    return 1;
  }
  EngineOptions opts = MakeEngineOptionsFromFlags(flags);
  bool with_baseline = flags.GetBool("baseline");
  bool use_cache = flags.GetBool("cache");
  PrefetchOptions prefetch = MakePrefetchOptionsFromFlags(flags, use_cache);
  size_t trials = static_cast<size_t>(flags.GetInt("trials", 1));
  size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  std::string csv = flags.GetString("csv", "");
  std::string fingerprint_out = flags.GetString("fingerprint-out", "");
  std::string store_path = flags.GetString("store-path", "");
  bool store_gc = flags.GetBool("store-gc");
  // Streaming ingestion: --stream=F holds back the last F of the corpus
  // and replays it as a virtual-time arrival schedule.
  double stream_fraction = flags.GetDouble("stream", 0.0);
  double ingest_rate = flags.GetDouble("ingest-rate", 100.0);
  ArrivalOrder stream_order =
      ParseArrivalOrder(flags.GetString("stream-order", "corpus"));
  uint64_t stream_seed = static_cast<uint64_t>(flags.GetInt("stream-seed", 17));
  ObsOutputs obs_out = GetObsOutputs(flags);
  Status st = flags.CheckAllConsumed();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (trials == 0) trials = 1;

  // The store retains everything by default; --store-gc keeps only this
  // run's pipeline fingerprint (drops records from other feature code).
  std::vector<uint64_t> retain;
  if (store_gc) retain.push_back(pipeline.Fingerprint());
  std::unique_ptr<PersistentFeatureStore> store =
      OpenStore(store_path, std::move(retain));
  if (!store_path.empty() && store == nullptr) return 1;

  // Streaming setup: the base grouping covers only the offline prefix; the
  // held-back suffix becomes the arrival schedule every trial replays.
  const bool streaming = stream_fraction > 0.0;
  std::unique_ptr<IncrementalGrouper> igrouper;
  std::unique_ptr<ScheduledCorpusSource> source;
  GroupingResult grouping;
  if (streaming) {
    if (stream_fraction >= 1.0) {
      std::fprintf(stderr, "--stream must be in (0, 1)\n");
      return 1;
    }
    igrouper = MakeIncrementalGrouperFromFlags(flags);
    if (igrouper == nullptr) {
      std::fprintf(stderr,
                   "--stream supports --grouper=kmeans|metadata|token only\n");
      return 1;
    }
    size_t base = corpus.size() -
                  static_cast<size_t>(stream_fraction *
                                      static_cast<double>(corpus.size()));
    base = std::max<size_t>(std::min(base, corpus.size()), 1);
    ArrivalScheduleOptions sopts;
    sopts.docs_per_virtual_second = ingest_rate;
    sopts.order = stream_order;
    sopts.seed = stream_seed;
    source = std::make_unique<ScheduledCorpusSource>(
        &corpus, base, BuildArrivalSchedule(corpus, base, sopts));
    grouping = igrouper->GroupBase(corpus, base);
    std::printf("stream: base %zu of %zu docs, %zu arrivals at %.1f "
                "docs/virtual-second (%s order)\n",
                base, corpus.size(), source->arrivals().size(), ingest_rate,
                ArrivalOrderName(stream_order));
  } else {
    grouping = grouper->Group(corpus);
  }
  std::printf("index: %zu groups via %s (%s wall)\n", grouping.num_groups(),
              grouping.method.c_str(),
              FormatDuration(grouping.build_wall_micros).c_str());

  // Trials run on the experiment driver (seeds run_seed..run_seed+trials-1,
  // --threads workers); an optional shared feature cache memoizes
  // extraction across trials of the identical pipeline.
  FeatureCache cache;
  std::unique_ptr<ObsContext> obs = MakeObsContext(obs_out);
  ExperimentDriverOptions dopts;
  dopts.num_threads = threads;
  dopts.engine = opts;
  dopts.engine.obs = obs.get();
  dopts.cache = use_cache ? &cache : nullptr;
  dopts.prefetch = prefetch;
  dopts.store = store.get();
  dopts.stream = source.get();
  dopts.incremental_grouper = igrouper.get();
  ExperimentDriver driver(&corpus, &pipeline, dopts);
  ExperimentGrid grid;
  grid.policies = {policy_kind.value()};
  grid.groupings = {&grouping};
  grid.rewards = {reward.get()};
  grid.learners = {learner.get()};
  for (size_t t = 0; t < trials; ++t) grid.seeds.push_back(opts.seed + t);
  StatusOr<std::vector<TrialResult>> trials_or = driver.RunGrid(grid);
  if (!trials_or.ok()) {
    std::fprintf(stderr, "%s\n", trials_or.status().ToString().c_str());
    return 1;
  }
  for (const TrialResult& t : trials_or.value()) {
    std::printf("zombie[s%llu]: %s\n",
                static_cast<unsigned long long>(t.spec.seed),
                t.run.ToString().c_str());
  }
  if (use_cache) {
    FeatureCacheStats cs = cache.Stats();
    std::printf("cache: %zu entries, hit rate %.3f (%zu hits / %zu lookups), "
                "%zu evictions\n",
                cs.entries, cs.hit_rate(), cs.hits, cs.hits + cs.misses,
                cs.evictions);
  }
  if (store != nullptr) PrintStoreStats(*store);
  const RunResult& zombie = trials_or.value().front().run;

  if (with_baseline) {
    ZombieEngine baseline_engine(&corpus, &pipeline, FullScanOptions(opts));
    RunResult baseline = RunRandomBaseline(baseline_engine, *learner);
    std::printf("baseline: %s\n", baseline.ToString().c_str());
    SpeedupReport report = ComputeSpeedup(baseline, zombie, 0.95);
    std::printf("%s\n", report.ToString().c_str());
  }

  if (!csv.empty()) {
    std::FILE* f = std::fopen(csv.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csv.c_str());
      return 1;
    }
    std::string data = zombie.curve.ToCsv();
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    std::printf("curve written to %s\n", csv.c_str());
  }
  if (!fingerprint_out.empty()) {
    // Canonical deterministic fingerprints for every trial; the SIMD
    // forced-dispatch CI matrix byte-compares these files across
    // ZOMBIE_SIMD_LEVEL runs.
    std::FILE* f = std::fopen(fingerprint_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", fingerprint_out.c_str());
      return 1;
    }
    for (const TrialResult& t : trials_or.value()) {
      std::string fp = StrFormat("trial seed=%llu\n",
                                 static_cast<unsigned long long>(t.spec.seed))
                       + t.run.Fingerprint();
      std::fwrite(fp.data(), 1, fp.size(), f);
    }
    std::fclose(f);
    std::printf("fingerprints written to %s\n", fingerprint_out.c_str());
  }
  if (obs != nullptr && !WriteObsOutputs(obs_out, *obs)) return 1;
  return 0;
}

int CmdSession(const Flags& flags) {
  StatusOr<Corpus> corpus_or = ObtainCorpus(flags);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "%s\n", corpus_or.status().ToString().c_str());
    return 1;
  }
  Corpus corpus = std::move(corpus_or).value();
  bool warm = flags.GetBool("warm");
  bool use_cache = flags.GetBool("cache");
  PrefetchOptions prefetch = MakePrefetchOptionsFromFlags(flags, use_cache);
  EngineOptions opts = MakeEngineOptionsFromFlags(flags);
  size_t groups = static_cast<size_t>(flags.GetInt("groups", 32));
  std::string store_path = flags.GetString("store-path", "");
  ObsOutputs obs_out = GetObsOutputs(flags);
  Status st = flags.CheckAllConsumed();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // A session spans many pipeline fingerprints (one per revision), so it
  // always retains everything.
  std::unique_ptr<PersistentFeatureStore> store = OpenStore(store_path, {});
  if (!store_path.empty() && store == nullptr) return 1;

  std::unique_ptr<ObsContext> obs = MakeObsContext(obs_out);
  opts.obs = obs.get();
  RevisionScript script = MakeWebCatRevisionScript();
  NaiveBayesLearner learner;
  LabelReward reward;
  FeatureCache cache;
  FeatureCache* cache_ptr = use_cache ? &cache : nullptr;
  SessionResult full = RunSession(corpus, script, SessionMode::kFullScan,
                                  nullptr, learner, reward, opts);
  KMeansGrouper grouper(groups, 7);
  SessionResult fast = RunSession(corpus, script, SessionMode::kZombie,
                                  &grouper, learner, reward, opts, warm,
                                  cache_ptr, prefetch, store.get());
  std::printf("%s\n%s\n", full.ToString().c_str(), fast.ToString().c_str());
  if (use_cache) {
    FeatureCacheStats cs = cache.Stats();
    std::printf("cache: %zu entries, hit rate %.3f (%zu hits / %zu lookups), "
                "%zu evictions\n",
                cs.entries, cs.hit_rate(), cs.hits, cs.hits + cs.misses,
                cs.evictions);
  }
  if (store != nullptr) PrintStoreStats(*store);
  double ratio = fast.total_virtual_micros > 0
                     ? static_cast<double>(full.total_virtual_micros) /
                           static_cast<double>(fast.total_virtual_micros)
                     : 0.0;
  std::printf("session speedup: %.2fx\n", ratio);
  if (obs != nullptr) {
    if (use_cache && obs->metrics() != nullptr) {
      cache.ExportMetrics(obs->metrics());
    }
    if (store != nullptr && obs->metrics() != nullptr) {
      // Final snapshot: the per-run exports inside the engine already set
      // the store.* gauges, but the session's last lookups may postdate
      // the last run's export.
      store->ExportMetrics(obs->metrics());
    }
    if (!WriteObsOutputs(obs_out, *obs)) return 1;
  }
  return 0;
}

int CmdSimdLevel(const Flags& flags) {
  // Machine-readable (--print=...) or human-readable report of the SIMD
  // dispatch resolution; CI uses `--print=active` to auto-skip forced
  // levels the runner cannot actually execute.
  std::string print = flags.GetString("print", "");
  Status st = flags.CheckAllConsumed();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const simd::SimdLevel detected = simd::DetectCpuSimdLevel();
  const simd::SimdLevel compiled = simd::CompiledSimdLevel();
  const simd::SimdLevel active = simd::ActiveSimdLevel();
  if (print == "active") {
    std::printf("%s\n", simd::SimdLevelName(active));
    return 0;
  }
  if (print == "detected") {
    std::printf("%s\n", simd::SimdLevelName(detected));
    return 0;
  }
  if (!print.empty()) {
    std::fprintf(stderr, "unknown --print=%s (want active or detected)\n",
                 print.c_str());
    return 1;
  }
  const char* forced = std::getenv("ZOMBIE_SIMD_LEVEL");
  std::printf("detected cpu:  %s\n", simd::SimdLevelName(detected));
  std::printf("compiled max:  %s\n", simd::SimdLevelName(compiled));
  std::printf("forced (env):  %s\n", forced != nullptr ? forced : "(unset)");
  std::printf("active:        %s\n", simd::SimdLevelName(active));
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: zombie_cli <generate|inspect|run|session|simd-level> "
               "[--key=value ...]\n"
               "see the header comment of tools/zombie_cli.cc for flags\n");
  return 2;
}

int Main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  if (argc < 2) return Usage();
  Flags flags;
  Status st = flags.Parse(argc, argv, 2);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "session") return CmdSession(flags);
  if (cmd == "simd-level") return CmdSimdLevel(flags);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace zombie

int main(int argc, char** argv) { return zombie::cli::Main(argc, argv); }
