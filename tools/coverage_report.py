#!/usr/bin/env python3
"""Aggregate gcov line coverage for a ZOMBIE_COVERAGE build.

Usage:
  tools/coverage_report.py --build-dir build-cov [--source-root .]
      [--include src/] [--html-out coverage.html] [--fail-under-line 80]

Works from the raw toolchain only (gcov --json-format); no gcovr/lcov
dependency.  The script walks the build tree for .gcda counter files,
asks gcov for the JSON intermediate format on stdout, and merges the
per-line execution counts across translation units (headers are
instrumented in every TU that includes them, so counts are summed
per source line).

Outputs a per-file table on stdout, optionally a self-contained HTML
report with annotated sources, and exits 1 when total line coverage
falls below --fail-under-line (the CI gate).

Exit codes: 0 ok, 1 coverage below threshold, 2 usage/IO error.
"""

import argparse
import collections
import html
import json
import os
import subprocess
import sys


def find_gcda_files(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.join(root, name))
    return sorted(out)


def run_gcov(gcda_path):
    """Returns the parsed gcov JSON document for one .gcda, or None."""
    # cwd must contain the .gcda/.gcno pair; gcov resolves them by stem.
    cwd = os.path.dirname(gcda_path)
    cmd = ["gcov", "--json-format", "--stdout", os.path.basename(gcda_path)]
    try:
        proc = subprocess.run(cmd, cwd=cwd, capture_output=True, text=True,
                              check=False)
    except OSError as e:
        print(f"error: cannot run gcov: {e}", file=sys.stderr)
        sys.exit(2)
    if proc.returncode != 0 or not proc.stdout.strip():
        print(f"warning: gcov failed on {gcda_path}: "
              f"{proc.stderr.strip()[:200]}", file=sys.stderr)
        return None
    # gcov emits one JSON document per input file, one per line.
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            pass
    return docs


def normalize(path, cwd):
    if not os.path.isabs(path):
        path = os.path.join(cwd, path)
    return os.path.realpath(path)


def collect_coverage(build_dir, source_root, include_prefixes):
    """Returns {rel_source_path: {line_number: count}}."""
    gcdas = find_gcda_files(build_dir)
    if not gcdas:
        print(f"error: no .gcda files under {build_dir} — build with "
              "-DZOMBIE_COVERAGE=ON and run the tests first", file=sys.stderr)
        sys.exit(2)
    coverage = collections.defaultdict(lambda: collections.defaultdict(int))
    for gcda in gcdas:
        docs = run_gcov(gcda)
        if not docs:
            continue
        cwd = os.path.dirname(gcda)
        for doc in docs:
            # Compilation cwd recorded by gcc is the authority for
            # relative source paths when present.
            comp_cwd = doc.get("current_working_directory", cwd)
            for f in doc.get("files", []):
                src = normalize(f["file"], comp_cwd)
                try:
                    rel = os.path.relpath(src, source_root)
                except ValueError:
                    continue
                if rel.startswith(".."):
                    continue
                if not any(rel.startswith(p) for p in include_prefixes):
                    continue
                lines = coverage[rel]
                for ln in f.get("lines", []):
                    lines[ln["line_number"]] += ln["count"]
    return coverage


def summarize(coverage):
    """Returns ([(rel, covered, total)], covered_total, lines_total)."""
    rows = []
    grand_covered = 0
    grand_total = 0
    for rel in sorted(coverage):
        lines = coverage[rel]
        total = len(lines)
        covered = sum(1 for c in lines.values() if c > 0)
        rows.append((rel, covered, total))
        grand_covered += covered
        grand_total += total
    return rows, grand_covered, grand_total


def pct(covered, total):
    return 100.0 * covered / total if total else 0.0


def write_html(path, rows, grand_covered, grand_total, coverage, source_root):
    def color(p):
        if p >= 90:
            return "#2e7d32"
        if p >= 70:
            return "#f9a825"
        return "#c62828"

    parts = []
    parts.append(
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>zombie coverage</title><style>"
        "body{font-family:monospace;margin:2em;}"
        "table{border-collapse:collapse;}"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:left;}"
        "pre{margin:0;}"
        ".src{font-size:12px;border:1px solid #ddd;margin:0 0 2em 0;}"
        ".src td{border:none;padding:0 8px;white-space:pre;}"
        ".hit{background:#e8f5e9;}"
        ".miss{background:#ffebee;}"
        ".count{color:#888;text-align:right;}"
        "</style></head><body>")
    total_pct = pct(grand_covered, grand_total)
    parts.append(f"<h1>zombie line coverage: "
                 f"<span style='color:{color(total_pct)}'>"
                 f"{total_pct:.1f}%</span> "
                 f"({grand_covered}/{grand_total} lines)</h1>")
    parts.append("<table><tr><th>file</th><th>covered</th><th>total</th>"
                 "<th>%</th></tr>")
    for rel, covered, total in rows:
        p = pct(covered, total)
        anchor = rel.replace("/", "_").replace(".", "_")
        parts.append(
            f"<tr><td><a href='#{anchor}'>{html.escape(rel)}</a></td>"
            f"<td>{covered}</td><td>{total}</td>"
            f"<td style='color:{color(p)}'>{p:.1f}</td></tr>")
    parts.append("</table>")

    for rel, covered, total in rows:
        anchor = rel.replace("/", "_").replace(".", "_")
        p = pct(covered, total)
        parts.append(f"<h2 id='{anchor}'>{html.escape(rel)} "
                     f"— {p:.1f}%</h2>")
        src_path = os.path.join(source_root, rel)
        try:
            with open(src_path, encoding="utf-8", errors="replace") as f:
                source_lines = f.read().splitlines()
        except OSError:
            parts.append("<p>(source unavailable)</p>")
            continue
        lines = coverage[rel]
        parts.append("<table class='src'>")
        for i, text in enumerate(source_lines, start=1):
            count = lines.get(i)
            if count is None:
                cls, shown = "", ""
            elif count > 0:
                cls, shown = "hit", str(count)
            else:
                cls, shown = "miss", "0"
            parts.append(
                f"<tr class='{cls}'><td class='count'>{i}</td>"
                f"<td class='count'>{shown}</td>"
                f"<td>{html.escape(text) or ' '}</td></tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(parts))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True,
                        help="coverage-instrumented build tree")
    parser.add_argument("--source-root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--include", action="append", default=None,
                        help="source path prefix to report on "
                             "(repeatable; default: src/)")
    parser.add_argument("--html-out", default=None,
                        help="write a self-contained HTML report here")
    parser.add_argument("--fail-under-line", type=float, default=None,
                        help="exit 1 if total line coverage %% is below this")
    args = parser.parse_args()

    source_root = os.path.realpath(args.source_root)
    include_prefixes = args.include if args.include else ["src/"]

    coverage = collect_coverage(args.build_dir, source_root, include_prefixes)
    if not coverage:
        print("error: no instrumented source files matched "
              f"{include_prefixes}", file=sys.stderr)
        sys.exit(2)
    rows, grand_covered, grand_total = summarize(coverage)

    width = max(len(rel) for rel, _, _ in rows)
    for rel, covered, total in rows:
        print(f"  {rel:<{width}}  {covered:>5}/{total:<5}  "
              f"{pct(covered, total):6.1f}%")
    total_pct = pct(grand_covered, grand_total)
    print(f"TOTAL line coverage: {total_pct:.2f}% "
          f"({grand_covered}/{grand_total} lines in {len(rows)} files)")

    if args.html_out:
        write_html(args.html_out, rows, grand_covered, grand_total, coverage,
                   source_root)
        print(f"HTML report written to {args.html_out}")

    if args.fail_under_line is not None and total_pct < args.fail_under_line:
        print(f"FAIL: line coverage {total_pct:.2f}% is below the "
              f"required {args.fail_under_line:.2f}%", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
