#!/usr/bin/env python3
"""Render static-analysis logs into a GitHub step-summary markdown report.

CI's static-analysis job captures the raw output of its three analyzers —
the clang -Wthread-safety build, zombie_lint, and clang-tidy — into log
files, then feeds them here:

    python3 tools/render_analysis_summary.py \
        --thread-safety-log logs/build.log \
        --zombie-lint-log logs/zombie_lint.log \
        --clang-tidy-log logs/clang_tidy.log >> "$GITHUB_STEP_SUMMARY"

The script only *renders*; it always exits 0 (a missing or unparseable log
renders as "not run"). Pass/fail is decided by the steps that produced the
logs — a summary formatter must never mask or duplicate their verdicts.

Stdlib only (CI runners have no extra packages).
"""

import argparse
import os
import re
import sys

# Findings shown in full per analyzer; the rest are folded into a count so
# a pathological run cannot blow past GitHub's 1 MiB step-summary cap.
MAX_ROWS = 50

# clang diagnostic carrying a thread-safety flag, e.g.
#   src/obs/metrics.cc:41:3: error: reading variable 'counters_' requires
#   holding mutex 'mu_' [-Werror,-Wthread-safety-analysis]
THREAD_SAFETY_RE = re.compile(
    r"^(?P<loc>[^:\s][^:]*:\d+(?::\d+)?): (?:warning|error): "
    r"(?P<msg>.*\[-W(?:error,-W)?thread-safety[^\]]*\])\s*$")

# zombie_lint finding:  src/core/engine.cc:12: [no-throw] message
ZOMBIE_LINT_RE = re.compile(
    r"^(?P<loc>[^:\s][^:]*:\d+): \[(?P<rule>[a-z0-9-]+)\] (?P<msg>.*)$")

# clang-tidy finding:  src/ml/knn.cc:10:5: warning: msg [check-name]
CLANG_TIDY_RE = re.compile(
    r"^(?P<loc>[^:\s][^:]*:\d+:\d+): (?:warning|error): "
    r"(?P<msg>.*?)\s*\[(?P<check>[a-z0-9.,-]+)\]$")


def read_log(path):
    """Returns the log's lines, or None when the log was never produced."""
    if path is None or not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def parse(lines, regex):
    if lines is None:
        return None
    findings = []
    for line in lines:
        m = regex.match(line.strip())
        if m:
            findings.append(m.groupdict())
    return findings


def md_escape(text):
    return text.replace("|", "\\|").replace("\n", " ")


def render_section(out, title, findings, columns):
    """One analyzer's findings as a collapsible markdown table."""
    if findings is None:
        out.append(f"### {title}\n\n_not run (no log produced)_\n")
        return
    if not findings:
        out.append(f"### {title}\n\n:white_check_mark: clean\n")
        return
    shown = findings[:MAX_ROWS]
    out.append(f"### {title}\n")
    out.append(f"<details><summary>{len(findings)} finding(s)</summary>\n")
    out.append("| " + " | ".join(name for name, _ in columns) + " |")
    out.append("|" + "---|" * len(columns))
    for f in shown:
        cells = (md_escape(f.get(key, "")) for _, key in columns)
        out.append("| " + " | ".join("`" + c + "`" if i == 0 else c
                                     for i, c in enumerate(cells)) + " |")
    if len(findings) > MAX_ROWS:
        out.append(f"\n_... and {len(findings) - MAX_ROWS} more "
                   f"(see the job log)_")
    out.append("\n</details>\n")


def status_cell(findings):
    if findings is None:
        return "not run"
    if not findings:
        return ":white_check_mark: clean"
    return f":x: {len(findings)} finding(s)"


def main():
    ap = argparse.ArgumentParser(
        description="Render analyzer logs as step-summary markdown.")
    ap.add_argument("--thread-safety-log",
                    help="clang -Wthread-safety build log")
    ap.add_argument("--zombie-lint-log", help="zombie_lint output")
    ap.add_argument("--clang-tidy-log", help="run_clang_tidy.sh output")
    args = ap.parse_args()

    tsa = parse(read_log(args.thread_safety_log), THREAD_SAFETY_RE)
    lint = parse(read_log(args.zombie_lint_log), ZOMBIE_LINT_RE)
    tidy = parse(read_log(args.clang_tidy_log), CLANG_TIDY_RE)

    out = ["## Static analysis\n"]
    out.append("| analyzer | result |")
    out.append("|---|---|")
    out.append(f"| clang `-Wthread-safety` | {status_cell(tsa)} |")
    out.append(f"| `zombie_lint` | {status_cell(lint)} |")
    out.append(f"| clang-tidy | {status_cell(tidy)} |")
    out.append("")

    render_section(out, "Thread-safety analysis", tsa,
                   [("location", "loc"), ("diagnostic", "msg")])
    render_section(out, "zombie_lint", lint,
                   [("location", "loc"), ("rule", "rule"),
                    ("message", "msg")])
    render_section(out, "clang-tidy", tidy,
                   [("location", "loc"), ("check", "check"),
                    ("message", "msg")])

    print("\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
