// zombie_lint — repo-specific invariant linter for the zombie library (v2).
//
// Generic tools (compiler warnings, clang-tidy) cannot enforce contracts that
// are conventions of *this* codebase. The linter tokenizes every source file
// (comments, strings, and char literals stripped first), tracks namespace /
// class / function scope where a rule needs it, and resolves quoted project
// includes so type information declared in a header is visible when the
// matching .cc is linted. It checks the rules the library's design docs
// promise:
//
//   no-throw        Library code never throws; fallible operations return a
//                   Status (src/util/status.h). `throw`, `try`, and `catch`
//                   are banned in src/.
//   no-raw-random   All randomness flows through zombie::Rng (determinism
//                   contract: identical seeds give bit-identical traces).
//                   `rand`, `srand`, `rand_r`, `drand48`, `random_device`,
//                   and `mt19937` are banned outside src/util/random.cc.
//   no-stdout       Library code is silent unless asked: user-facing output
//                   goes through util/logging.h. `std::cout` and bare
//                   `printf` are banned in src/ (snprintf/fprintf stderr are
//                   fine and are distinct identifiers).
//   no-raw-clock    Wall-clock reads flow through util/clock (Stopwatch /
//                   VirtualClock) so time handling stays centralized and
//                   mockable. `steady_clock::now`, `system_clock::now`, and
//                   `high_resolution_clock::now` are banned outside
//                   src/util/clock.* and src/obs/ (token-sequence match, so
//                   a call wrapped across lines is still caught).
//   header-guard    Include guards must be derived from the file path:
//                   src/util/status.h -> ZOMBIE_UTIL_STATUS_H_.
//   no-hot-path-string-copy
//                   The feature-extraction and engine layers are the hot
//                   path; token streams there flow as string_view spans
//                   over a reusable TokenBuffer (src/text/tokenizer.h), not
//                   as owning string collections that allocate per token.
//                   `std::vector<std::string>` is banned in src/featureeng/
//                   and src/core/ (token match: whitespace and line breaks
//                   are irrelevant).
//   no-raw-extract-outside-service
//                   Feature extraction flows through
//                   ExtractionService::Featurize so caching, speculative-
//                   prefetch accounting, and metrics stay on one path.
//                   Direct `.Extract(` / `->Extract(` calls are banned in
//                   src/ outside src/featureeng/.
//   no-raw-mmap     Memory mapping flows through util/mmap_file.h (and the
//                   advisory locks through util/file_lock.h) so growth,
//                   remap invalidation, and error handling live in one
//                   audited place. Calls to `mmap`, `munmap`, `mremap`,
//                   and `msync` are banned in src/ outside src/util/.
//   no-raw-intrinsics
//                   Vendor SIMD intrinsics live only in src/ml/simd/, where
//                   the per-TU ISA compile flags, the cpuid dispatch gate,
//                   and the bit-identity obligations (FP-order contract,
//                   ODR isolation — see src/ml/simd/kernel_entries.h) are
//                   enforced. `<*intrin.h>` includes, `_mm*` calls, and
//                   `__m128`/`__m256`/`__m512`/`__mmask` types are banned
//                   in src/ outside src/ml/simd/ — an intrinsic elsewhere
//                   either crashes pre-AVX hardware (no dispatch gate) or
//                   silently forks the accumulation order.
//
// Determinism rules (v2). The paper's speedup claims rest on byte-identical
// results across cache / prefetch / thread-count configurations; these rules
// make the easiest ways to silently break that invariant a lint failure:
//
//   no-unordered-iteration
//                   Iterating a std::unordered_{map,set,multimap,multiset}
//                   (range-for over it, or .begin()/.cbegin() on it) is
//                   banned in the result-affecting layers src/core/,
//                   src/bandit/, src/ml/, and src/featureeng/ — iteration
//                   order is hash-seed- and libstdc++-version-dependent, so
//                   any result that depends on it breaks byte-identity.
//                   Unordered *lookup* is fine; order-dependent traversal is
//                   not. Type information crosses files: a member declared
//                   unordered in an included project header is recognized in
//                   the .cc that iterates it.
//   no-detached-thread
//                   Raw std::thread construction is banned outside
//                   src/util/thread_pool.* (trial-level parallelism flows
//                   through ThreadPool so Wait()/shutdown semantics and
//                   determinism-by-index hold); `.detach()` is banned
//                   everywhere (a detached thread outlives every invariant
//                   this repo checks). `std::thread::id` /
//                   `std::thread::hardware_concurrency` remain usable.
//   no-nondet-float Floating-point accumulation order is part of the
//                   byte-identity contract (see sparse_vector.h). Banned:
//                   fast-math-style pragmas (`float_control`, `GCC
//                   optimize`, `clang fp contract`, `STDC FP_CONTRACT ON`),
//                   `std::reduce` / `std::transform_reduce` /
//                   `std::execution` parallel-reordering algorithms, and
//                   `#include <execution>`, outside allowlisted kernels
//                   (none today — even the SIMD kernels in src/ml/simd/
//                   preserve scalar accumulation order and need no
//                   exemption; a future entry earns its slot with a
//                   documented reduction-order proof).
//   no-mutable-global
//                   Non-const namespace-scope variables are banned: hidden
//                   mutable process state breaks run-to-run reproducibility
//                   and is invisible to the thread-safety annotations.
//                   Function-local statics (Meyer's singletons) and
//                   constexpr/constinit/const globals are fine.
//
// A finding on a line can be suppressed in place with a trailing comment
// naming the exact rule (comma lists are accepted):
//
//   int x = rand();  // zombie-lint: allow(no-raw-random)
//   f(g);            // zombie-lint: allow(no-throw, no-stdout)
//
// Matching is exact per rule token: allow(no-raw) suppresses nothing, and
// allow(no-raw-clock) does not suppress a hypothetical no-raw-clock-x.
//
// Usage: zombie_lint <root-dir>...
// Exits 0 when clean, 1 with findings (one "path:line: [rule] msg" per line),
// 2 on usage/IO errors.
//
// This is a tool, not library code, so stdio output here is intentional.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  size_t line;
  std::string rule;
  std::string message;
};

// One source line split into its code and comment parts (strings/chars are
// blanked out of `code` so tokens inside literals never match).
struct LineView {
  std::string code;
  std::string comment;
};

// Strips comments, string literals, and char literals, preserving line
// structure. The comment text is kept per line so suppression directives
// remain visible.
std::vector<LineView> SplitCodeAndComments(const std::string& text) {
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment, kRawString };
  std::vector<LineView> lines(1);
  State state = State::kCode;
  std::string raw_delim;  // delimiter of an active raw string, e.g. `)foo"`
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals cannot span lines; reset defensively.
      if (state == State::kString || state == State::kChar) state = State::kCode;
      lines.emplace_back();
      continue;
    }
    LineView& cur = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          cur.comment += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim".
          size_t open = text.find('(', i + 2);
          if (open == std::string::npos) { cur.code += c; break; }
          raw_delim.assign(1, ')');
          raw_delim.append(text, i + 2, open - i - 2);
          raw_delim.push_back('"');
          state = State::kRawString;
          cur.code += ' ';
          i = open;
        } else if (c == '"') {
          state = State::kString;
          cur.code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          cur.code += ' ';
        } else {
          cur.code += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Exact-token suppression: every `zombie-lint: allow(...)` on the line is
// parsed as a comma-separated rule list and compared token-for-token, so
// allow(no-raw) never suppresses no-raw-clock and vice versa.
bool IsSuppressed(const LineView& line, const std::string& rule) {
  static const std::string kPrefix = "zombie-lint: allow(";
  size_t pos = 0;
  while ((pos = line.comment.find(kPrefix, pos)) != std::string::npos) {
    size_t start = pos + kPrefix.size();
    size_t close = line.comment.find(')', start);
    if (close == std::string::npos) return false;
    std::string list = line.comment.substr(start, close - start);
    size_t item = 0;
    while (item <= list.size()) {
      size_t comma = list.find(',', item);
      size_t end = comma == std::string::npos ? list.size() : comma;
      if (Trim(list.substr(item, end - item)) == rule) return true;
      if (comma == std::string::npos) break;
      item = comma + 1;
    }
    pos = close + 1;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenizer. Strings/comments are already blanked, so this only has to deal
// with identifiers, pp-numbers, and punctuation. Numbers are consumed as one
// pp-number token so `1.5f` never emits a `.` that could be mistaken for a
// member access; `::` and `->` are the only multi-character punctuators the
// rules need (notably NOT `>>`, which must stay two `>` so nested template
// argument lists close one level at a time).
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  size_t line;            // 1-based
  bool first_on_line;     // no earlier token on this line (directive detect)
};

std::vector<Token> Tokenize(const std::vector<LineView>& lines) {
  std::vector<Token> toks;
  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    size_t line_no = li + 1;
    bool first = true;
    size_t i = 0;
    while (i < code.size()) {
      char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token t;
      t.line = line_no;
      t.first_on_line = first;
      first = false;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        t.kind = Token::kIdent;
        t.text = code.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i + 1 < code.size() &&
                  std::isdigit(static_cast<unsigned char>(code[i + 1])))) {
        // pp-number: digits, idents, '.', and exponent signs in one token.
        size_t j = i;
        while (j < code.size()) {
          char d = code[j];
          if (IsIdentChar(d) || d == '.') {
            ++j;
          } else if ((d == '+' || d == '-') && j > i &&
                     (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                      code[j - 1] == 'p' || code[j - 1] == 'P')) {
            ++j;
          } else {
            break;
          }
        }
        t.kind = Token::kNumber;
        t.text = code.substr(i, j - i);
        i = j;
      } else {
        t.kind = Token::kPunct;
        if (i + 1 < code.size() &&
            ((c == ':' && code[i + 1] == ':') ||
             (c == '-' && code[i + 1] == '>'))) {
          t.text = code.substr(i, 2);
          i += 2;
        } else {
          t.text.assign(1, c);
          ++i;
        }
      }
      toks.push_back(std::move(t));
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Path-derived policy: which files a rule applies to.
// ---------------------------------------------------------------------------

// Expected include guard for `path` relative to the repo root, e.g.
// src/util/status.h -> ZOMBIE_UTIL_STATUS_H_ (the "src/" prefix is dropped;
// other roots such as bench/ keep theirs).
std::string ExpectedGuard(const fs::path& rel) {
  std::string s = rel.generic_string();
  const std::string kSrcPrefix = "src/";
  if (s.rfind(kSrcPrefix, 0) == 0) s = s.substr(kSrcPrefix.size());
  std::string guard = "ZOMBIE_";
  for (char c : s) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// File-scope exemptions for no-raw-random: the one place allowed to touch
// the underlying generator machinery.
bool IsRandomImplFile(const std::string& rel) {
  return rel == "src/util/random.cc" || rel == "src/util/random.h";
}

// File-scope exemptions for no-raw-clock: the clock wrapper itself, and
// the observability layer (whose whole purpose is timing measurement).
bool IsClockImplFile(const std::string& rel) {
  return rel == "src/util/clock.cc" || rel == "src/util/clock.h" ||
         rel.rfind("src/obs/", 0) == 0;
}

// Files covered by no-hot-path-string-copy: the per-event layers where a
// per-token allocation multiplies across the whole stream.
bool IsHotPathFile(const std::string& rel) {
  return rel.rfind("src/featureeng/", 0) == 0 || rel.rfind("src/core/", 0) == 0;
}

// Files covered by no-raw-extract-outside-service: all of src/ except the
// extraction layer itself, which implements the service and its backing
// pipeline and so is the one place allowed to call Extract directly.
bool IsRawExtractBannedFile(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 && rel.rfind("src/featureeng/", 0) != 0;
}

// Files covered by no-raw-mmap: all of src/ except src/util/, where
// MmapFile (util/mmap_file.h) and FileLock (util/file_lock.h) own the raw
// mapping syscalls.
bool IsRawMmapBannedFile(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 && rel.rfind("src/util/", 0) != 0;
}

// Files covered by no-raw-intrinsics: all of src/ except src/ml/simd/,
// the one home for vendor intrinsics (per-TU ISA flags + cpuid dispatch +
// bit-identity contract live there).
bool IsRawIntrinsicsBannedFile(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 && rel.rfind("src/ml/simd/", 0) != 0;
}

// Vendor intrinsic spellings: _mm_* / _mm256_* / _mm512_* calls (and the
// _mm_malloc family), __m128/__m256/__m512 vector types with any element
// suffix, and AVX-512 __mmask types. All are compiler-reserved identifiers,
// so a legitimate project symbol can never collide with this predicate.
bool IsIntrinsicIdent(const std::string& id) {
  if (id.rfind("_mm", 0) == 0) return true;
  if (id.rfind("__m", 0) == 0) {
    if (id.size() > 3 && std::isdigit(static_cast<unsigned char>(id[3])))
      return true;
    if (id.rfind("__mmask", 0) == 0) return true;
  }
  return false;
}

// Result-affecting layers where unordered-container iteration order could
// leak into paper numbers (no-unordered-iteration scope).
bool IsUnorderedIterationBannedFile(const std::string& rel) {
  return rel.rfind("src/core/", 0) == 0 || rel.rfind("src/bandit/", 0) == 0 ||
         rel.rfind("src/ml/", 0) == 0 || rel.rfind("src/featureeng/", 0) == 0;
}

// The one home for raw std::thread construction (no-detached-thread scope).
bool IsThreadPoolFile(const std::string& rel) {
  return rel == "src/util/thread_pool.cc" || rel == "src/util/thread_pool.h";
}

// Kernels allowed to use reordering float reductions (no-nondet-float
// scope). Empty today — the SIMD kernels in src/ml/simd/ keep scalar
// accumulation order (that is their whole contract) and so need no slot; a
// future entry earns one together with a documented reduction-order
// argument.
bool IsNondetFloatAllowlistedFile(const std::string& rel) {
  (void)rel;
  return false;
}

// ---------------------------------------------------------------------------
// Per-file parse products shared between the include-graph pass and the
// lint pass.
// ---------------------------------------------------------------------------

struct IncludeRef {
  std::string path;
  bool angled;
  size_t line;
};

// Include directives are read from the *raw* text (SplitCodeAndComments
// blanks string literals, which would erase quoted include paths).
std::vector<IncludeRef> ExtractIncludes(const std::string& text) {
  std::vector<IncludeRef> refs;
  std::istringstream in(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    size_t i = 0;
    while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) ++i;
    if (i >= raw.size() || raw[i] != '#') continue;
    ++i;
    while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) ++i;
    if (raw.compare(i, 7, "include") != 0) continue;
    i += 7;
    while (i < raw.size() && std::isspace(static_cast<unsigned char>(raw[i]))) ++i;
    if (i >= raw.size()) continue;
    char open = raw[i];
    char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') continue;
    size_t end = raw.find(close, i + 1);
    if (end == std::string::npos) continue;
    refs.push_back({raw.substr(i + 1, end - i - 1), open == '<', line_no});
  }
  return refs;
}

bool IsUnorderedContainerName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// Skips a balanced <...> template-argument list starting at toks[i] == "<";
// returns the index one past the matching ">". `>>` is two tokens, so
// nesting closes one level per token.
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">" && --depth == 0) return i + 1;
    ++i;
  }
  return i;
}

// Records the names of variables declared with an unordered container type:
// `std::unordered_map<K, V> map_;`, `const std::unordered_set<T>& seen`,
// pointers, and references all register the declared identifier. Scope-free
// by design — a header's member names must be visible when the matching .cc
// iterates them, and over-approximating locals is harmless (the rule only
// fires on iteration in restricted dirs, where iterating a same-named
// ordered container would deserve a second look anyway).
void CollectUnorderedNames(const std::vector<Token>& toks,
                           std::set<std::string>* names) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent || !IsUnorderedContainerName(toks[i].text))
      continue;
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") j = SkipTemplateArgs(toks, j);
    while (j < toks.size() &&
           (toks[j].text == "*" || toks[j].text == "&" ||
            (toks[j].kind == Token::kIdent && toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::kIdent) {
      names->insert(toks[j].text);
    }
  }
}

struct FileData {
  fs::path abs;
  std::string rel;  // generic_string relative to the root's parent
  std::vector<LineView> lines;
  std::vector<Token> tokens;
  std::vector<IncludeRef> includes;
  std::set<std::string> own_unordered;
  bool io_error = false;
};

// ---------------------------------------------------------------------------
// The analyzer: one instance per file, with the include-graph-derived
// unordered-symbol table passed in.
// ---------------------------------------------------------------------------

class FileAnalyzer {
 public:
  FileAnalyzer(const FileData& file, const std::set<std::string>& unordered,
               std::vector<Finding>* findings)
      : f_(file), unordered_(unordered), findings_(findings) {}

  void Run() {
    TokenRules();
    DirectiveRules();
    NamespaceScopeRules();
    if (fs::path(f_.rel).extension() == ".h") HeaderGuardRule();
  }

 private:
  void Report(size_t line_no, const std::string& rule,
              const std::string& msg) {
    if (line_no >= 1 && line_no <= f_.lines.size() &&
        IsSuppressed(f_.lines[line_no - 1], rule)) {
      return;
    }
    findings_->push_back({f_.rel, line_no, rule, msg});
  }

  bool TokIs(size_t i, const char* text) const {
    return i < f_.tokens.size() && f_.tokens[i].text == text;
  }

  // Index one past a balanced (...) group starting at toks[open] == "(".
  size_t SkipParens(size_t open) const {
    int depth = 0;
    size_t i = open;
    while (i < f_.tokens.size()) {
      const std::string& t = f_.tokens[i].text;
      if (t == "(") ++depth;
      else if (t == ")" && --depth == 0) return i + 1;
      ++i;
    }
    return i;
  }

  // Index one past a balanced {...} group starting at toks[open] == "{".
  size_t SkipBraces(size_t open) const {
    int depth = 0;
    size_t i = open;
    while (i < f_.tokens.size()) {
      const std::string& t = f_.tokens[i].text;
      if (t == "{") ++depth;
      else if (t == "}" && --depth == 0) return i + 1;
      ++i;
    }
    return i;
  }

  // Single linear scan for every rule that is a (file-scoped) token or
  // token-sequence property.
  void TokenRules() {
    const std::vector<Token>& toks = f_.tokens;
    static const std::set<std::string> kThrowTokens = {"throw", "try", "catch"};
    static const std::set<std::string> kRandomTokens = {
        "rand", "srand", "rand_r", "drand48", "random_device", "mt19937"};
    static const std::set<std::string> kStdoutTokens = {"cout", "printf"};
    static const std::set<std::string> kClockTokens = {
        "steady_clock", "system_clock", "high_resolution_clock"};
    static const std::set<std::string> kMmapTokens = {"mmap", "munmap",
                                                      "mremap", "msync"};

    bool in_directive = false;
    size_t directive_line = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      // Skip preprocessor directives (DirectiveRules owns them); a guard
      // like `#ifndef ZOMBIE_..._H_` must not be parsed as code.
      if (t.kind == Token::kPunct && t.text == "#" && t.first_on_line) {
        in_directive = true;
        directive_line = t.line;
        continue;
      }
      if (in_directive) {
        if (t.line == directive_line) continue;
        in_directive = false;
      }
      if (t.kind != Token::kIdent) continue;
      const std::string& id = t.text;

      if (kThrowTokens.count(id) != 0) {
        Report(t.line, "no-throw",
               "'" + id +
                   "' in library code; return a Status instead "
                   "(src/util/status.h contract)");
      }
      if (!IsRandomImplFile(f_.rel) && kRandomTokens.count(id) != 0) {
        Report(t.line, "no-raw-random",
               "'" + id +
                   "' breaks the determinism contract; use zombie::Rng "
                   "(src/util/random.h)");
      }
      if (kStdoutTokens.count(id) != 0) {
        Report(t.line, "no-stdout",
               "'" + id + "' in library code; use ZLOG (src/util/logging.h)");
      }
      if (!IsClockImplFile(f_.rel) && kClockTokens.count(id) != 0 &&
          TokIs(i + 1, "::") && TokIs(i + 2, "now")) {
        Report(toks[i + 2].line, "no-raw-clock",
               "'" + id +
                   "::now' outside util/clock; use Stopwatch or "
                   "VirtualClock (src/util/clock.h) so timing stays "
                   "centralized and mockable");
      }
      if (IsHotPathFile(f_.rel) && id == "std" && TokIs(i + 1, "::") &&
          TokIs(i + 2, "vector") && TokIs(i + 3, "<") && TokIs(i + 4, "std") &&
          TokIs(i + 5, "::") && TokIs(i + 6, "string") && TokIs(i + 7, ">")) {
        Report(t.line, "no-hot-path-string-copy",
               "std::vector<std::string> allocates per token on the hot "
               "path; use TokenBuffer + string_view spans "
               "(src/text/tokenizer.h)");
      }
      if (IsRawMmapBannedFile(f_.rel) && kMmapTokens.count(id) != 0 &&
          TokIs(i + 1, "(")) {
        Report(t.line, "no-raw-mmap",
               "'" + id +
                   "' outside src/util/; map files through MmapFile "
                   "(src/util/mmap_file.h) so growth, remap invalidation, "
                   "and error handling stay in one audited place");
      }
      if (IsRawIntrinsicsBannedFile(f_.rel) && IsIntrinsicIdent(id)) {
        Report(t.line, "no-raw-intrinsics",
               "'" + id +
                   "' outside src/ml/simd/; vendor intrinsics belong in the "
                   "dispatch kernels, where the cpuid gate and the FP-order "
                   "contract are enforced (src/ml/simd/sparse_kernels.h)");
      }
      if (IsRawExtractBannedFile(f_.rel) && id == "Extract" && i > 0 &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          TokIs(i + 1, "(")) {
        Report(t.line, "no-raw-extract-outside-service",
               "direct FeaturePipeline::Extract call outside "
               "src/featureeng/; route extraction through "
               "ExtractionService::Featurize "
               "(src/featureeng/extraction_service.h)");
      }

      // --- no-detached-thread ---
      if (id == "std" && TokIs(i + 1, "::") &&
          (TokIs(i + 2, "thread") || TokIs(i + 2, "jthread")) &&
          !TokIs(i + 3, "::")) {
        // std::thread::id / std::thread::hardware_concurrency are type-level
        // uses, not thread construction, and stay allowed.
        if (!IsThreadPoolFile(f_.rel)) {
          Report(toks[i + 2].line, "no-detached-thread",
                 "raw std::" + toks[i + 2].text +
                     " outside src/util/thread_pool; run work on the shared "
                     "ThreadPool so shutdown joins it and "
                     "determinism-by-index holds (src/util/thread_pool.h)");
        }
      }
      if (id == "detach" && i > 0 &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          TokIs(i + 1, "(")) {
        Report(t.line, "no-detached-thread",
               ".detach() abandons the thread past every join/shutdown "
               "invariant; keep ownership and join (ThreadPool does this "
               "for you)");
      }

      // --- no-nondet-float: reordering reductions ---
      if (!IsNondetFloatAllowlistedFile(f_.rel) && id == "std" &&
          TokIs(i + 1, "::") &&
          (TokIs(i + 2, "reduce") || TokIs(i + 2, "transform_reduce") ||
           TokIs(i + 2, "execution"))) {
        Report(toks[i + 2].line, "no-nondet-float",
               "std::" + toks[i + 2].text +
                   " may reorder floating-point accumulation; the FP-order "
                   "contract (src/ml/sparse_vector.h) requires sequential "
                   "left-to-right reduction");
      }

      // --- no-unordered-iteration ---
      if (IsUnorderedIterationBannedFile(f_.rel)) {
        if (id == "for" && TokIs(i + 1, "(")) {
          CheckRangeFor(i);
        }
        if ((id == "begin" || id == "cbegin") && i >= 2 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
            TokIs(i + 1, "(") && toks[i - 2].kind == Token::kIdent &&
            unordered_.count(toks[i - 2].text) != 0) {
          Report(t.line, "no-unordered-iteration",
                 "iterator over unordered container '" + toks[i - 2].text +
                     "'; iteration order is hash-seed-dependent and breaks "
                     "byte-identical results — copy keys and sort, or use an "
                     "ordered container");
        }
      }
    }
  }

  // `for (` at toks[for_idx]: flag when it is a range-for whose range
  // expression names an unordered container (by declared-symbol table or by
  // literal type).
  void CheckRangeFor(size_t for_idx) {
    const std::vector<Token>& toks = f_.tokens;
    size_t open = for_idx + 1;
    size_t close = SkipParens(open);  // one past ')'
    int depth = 0;
    size_t colon = 0;
    for (size_t i = open; i < close; ++i) {
      const std::string& t = toks[i].text;
      if (t == "(") ++depth;
      else if (t == ")") --depth;
      else if (t == ";" && depth == 1) return;  // classic for
      else if (t == ":" && depth == 1 && colon == 0) colon = i;
    }
    if (colon == 0) return;
    for (size_t i = colon + 1; i + 1 < close; ++i) {
      if (toks[i].kind != Token::kIdent) continue;
      bool literal_type = IsUnorderedContainerName(toks[i].text);
      bool known_symbol = unordered_.count(toks[i].text) != 0;
      if (literal_type || known_symbol) {
        Report(toks[for_idx].line, "no-unordered-iteration",
               "range-for over unordered container '" + toks[i].text +
                   "'; iteration order is hash-seed-dependent and breaks "
                   "byte-identical results — copy keys and sort, or use an "
                   "ordered container");
        return;
      }
    }
  }

  // Preprocessor-level no-nondet-float: fast-math-style pragmas and
  // #include <execution>.
  void DirectiveRules() {
    const std::vector<Token>& toks = f_.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!(toks[i].kind == Token::kPunct && toks[i].text == "#" &&
            toks[i].first_on_line)) {
        continue;
      }
      size_t line = toks[i].line;
      std::vector<const Token*> rest;
      for (size_t j = i + 1; j < toks.size() && toks[j].line == line; ++j) {
        rest.push_back(&toks[j]);
      }
      if (rest.empty() || rest[0]->kind != Token::kIdent) continue;
      if (rest[0]->text != "pragma") continue;
      if (IsNondetFloatAllowlistedFile(f_.rel)) continue;
      std::set<std::string> ids;
      for (const Token* t : rest) {
        if (t->kind == Token::kIdent) ids.insert(t->text);
      }
      bool bad = false;
      if (ids.count("float_control") != 0) bad = true;
      if (ids.count("FP_CONTRACT") != 0 && ids.count("OFF") == 0) bad = true;
      if (ids.count("fp") != 0 && ids.count("contract") != 0 &&
          ids.count("off") == 0) {
        bad = true;
      }
      // #pragma GCC optimize("...") — the argument is a (blanked) string
      // literal, so ban the directive outright; per-function fast-math is
      // exactly what the FP-order contract forbids.
      if (ids.count("GCC") != 0 && ids.count("optimize") != 0) bad = true;
      if (ids.count("fast_math") != 0 || ids.count("ffast_math") != 0)
        bad = true;
      if (bad) {
        Report(line, "no-nondet-float",
               "pragma relaxes floating-point evaluation; the FP-order "
               "contract (src/ml/sparse_vector.h) requires strict IEEE "
               "left-to-right evaluation");
      }
    }
    if (!IsNondetFloatAllowlistedFile(f_.rel)) {
      for (const IncludeRef& inc : f_.includes) {
        if (inc.angled && inc.path == "execution") {
          Report(inc.line, "no-nondet-float",
                 "#include <execution> enables parallel/reordering "
                 "algorithm overloads; sequential overloads are the only "
                 "ones compatible with byte-identical results");
        }
      }
    }
    if (IsRawIntrinsicsBannedFile(f_.rel)) {
      // Catches <immintrin.h>, <x86intrin.h>, the per-ISA <*mmintrin.h>
      // family, and MSVC's <intrin.h> in one suffix test.
      static const std::string kSuffix = "intrin.h";
      for (const IncludeRef& inc : f_.includes) {
        if (inc.path.size() >= kSuffix.size() &&
            inc.path.compare(inc.path.size() - kSuffix.size(),
                             kSuffix.size(), kSuffix) == 0) {
          Report(inc.line, "no-raw-intrinsics",
                 "#include of '" + inc.path +
                     "' outside src/ml/simd/; vendor intrinsics belong in "
                     "the dispatch kernels (src/ml/simd/)");
        }
      }
    }
  }

  // no-mutable-global: a small scope machine that only distinguishes
  // "namespace scope" from "everything else". Class/enum/function bodies
  // are skipped wholesale (class members and locals are out of scope for
  // the rule; function-local statics — Meyer's singletons — are therefore
  // naturally exempt), and namespace braces nest.
  void NamespaceScopeRules() {
    const std::vector<Token>& toks = f_.tokens;
    std::vector<const Token*> stmt;
    int paren = 0;
    size_t namespace_depth = 0;
    bool in_directive = false;
    size_t directive_line = 0;
    size_t i = 0;
    while (i < toks.size()) {
      const Token& t = toks[i];
      if (t.kind == Token::kPunct && t.text == "#" && t.first_on_line) {
        in_directive = true;
        directive_line = t.line;
        ++i;
        continue;
      }
      if (in_directive) {
        if (t.line == directive_line) {
          ++i;
          continue;
        }
        in_directive = false;
      }
      if (t.text == "(") {
        ++paren;
        stmt.push_back(&t);
        ++i;
      } else if (t.text == ")") {
        if (paren > 0) --paren;
        stmt.push_back(&t);
        ++i;
      } else if (t.text == "{") {
        if (StmtHasIdent(stmt, "namespace")) {
          ++namespace_depth;
          stmt.clear();
          ++i;
        } else if (paren > 0 || StmtLooksLikeInitializer(stmt)) {
          // Braced initializer (`std::atomic<int> g{0};`, `= {...}`,
          // `f({...})`, member-init `b_{2}`): consume it and keep the
          // surrounding declaration for the ';' analysis.
          i = SkipBraces(i);
        } else {
          // Class / enum / function body (or a block): nothing at
          // namespace scope lives inside, so skip it wholesale.
          i = SkipBraces(i);
          stmt.clear();
        }
      } else if (t.text == "}") {
        // Bodies are skipped balanced above, so a '}' seen here closes a
        // namespace.
        if (namespace_depth > 0) --namespace_depth;
        stmt.clear();
        ++i;
      } else if (t.text == ";" && paren == 0) {
        AnalyzeNamespaceStatement(stmt);
        stmt.clear();
        ++i;
      } else {
        stmt.push_back(&t);
        ++i;
      }
    }
  }

  static bool StmtHasIdent(const std::vector<const Token*>& stmt,
                           const char* ident) {
    for (const Token* t : stmt) {
      if (t->kind == Token::kIdent && t->text == ident) return true;
    }
    return false;
  }

  // Heuristic for a '{' (at paren depth 0) that begins a braced initializer
  // rather than a body: the declaration so far has a top-level '=' (`auto
  // g = [...]...{`, `int x[] = {`) or no top-level parenthesis group at all
  // (`std::atomic<int> g{`, `Foo g_instance{`). Function definitions always
  // carry a parameter list, so they fall through to the skip-body branch.
  static bool StmtLooksLikeInitializer(const std::vector<const Token*>& stmt) {
    if (stmt.empty()) return false;
    if (StmtHasIdent(stmt, "class") || StmtHasIdent(stmt, "struct") ||
        StmtHasIdent(stmt, "union") || StmtHasIdent(stmt, "enum")) {
      return false;
    }
    bool has_paren = false;
    int depth = 0;
    for (const Token* t : stmt) {
      if (t->text == "(") {
        if (depth == 0) has_paren = true;
        ++depth;
      } else if (t->text == ")") {
        if (depth > 0) --depth;
      } else if (t->text == "=" && depth == 0) {
        return true;
      }
    }
    return !has_paren;
  }

  void AnalyzeNamespaceStatement(const std::vector<const Token*>& stmt) {
    if (stmt.size() < 2) return;
    // Declarations that are not variable definitions, or that introduce
    // their own scoping/linkage semantics, are out of scope for the rule.
    static const std::set<std::string> kSkipKeywords = {
        "using",    "typedef",  "extern",        "friend",
        "template", "concept",  "static_assert", "operator",
        "class",    "struct",   "enum",          "union",
        "namespace", "requires", "asm",          "goto",
    };
    size_t first_paren = stmt.size();
    size_t first_eq = stmt.size();
    int depth = 0;
    for (size_t i = 0; i < stmt.size(); ++i) {
      const Token* t = stmt[i];
      if (t->kind == Token::kIdent && kSkipKeywords.count(t->text) != 0)
        return;
      if (t->text == "(" || t->text == "[") {
        if (depth == 0 && t->text == "(" && first_paren == stmt.size())
          first_paren = i;
        ++depth;
      } else if (t->text == ")" || t->text == "]") {
        if (depth > 0) --depth;
      } else if (t->text == "=" && depth == 0 && first_eq == stmt.size()) {
        first_eq = i;
      }
    }
    // A top-level '(' before any '=' marks a function declaration (or a
    // most-vexing-parse construct, which deserves the rewrite anyway).
    if (first_paren < first_eq) return;
    if (StmtHasIdent(stmt, "const") || StmtHasIdent(stmt, "constexpr") ||
        StmtHasIdent(stmt, "constinit")) {
      return;
    }
    // Declared name: last identifier before the initializer (or before the
    // terminating ';' when there is none).
    size_t limit = first_eq;
    const Token* name = nullptr;
    for (size_t i = 0; i < limit; ++i) {
      if (stmt[i]->kind == Token::kIdent) name = stmt[i];
    }
    if (name == nullptr) return;
    Report(name->line, "no-mutable-global",
           "'" + name->text +
               "' is a mutable namespace-scope variable; hidden process "
               "state breaks run-to-run reproducibility — make it "
               "const/constexpr or hand it to a function-local static "
               "accessor");
  }

  void HeaderGuardRule() {
    std::string expected = ExpectedGuard(fs::path(f_.rel));
    std::string actual;
    size_t guard_line = 0;
    for (size_t i = 0; i < f_.lines.size(); ++i) {
      const std::string& code = f_.lines[i].code;
      size_t pos = code.find("#ifndef");
      if (pos != std::string::npos) {
        size_t start = pos + 7;
        while (start < code.size() &&
               std::isspace(static_cast<unsigned char>(code[start]))) {
          ++start;
        }
        size_t end = start;
        while (end < code.size() && IsIdentChar(code[end])) ++end;
        actual = code.substr(start, end - start);
        guard_line = i + 1;
        break;
      }
    }
    if (actual.empty()) {
      Report(1, "header-guard", "missing #ifndef include guard");
    } else if (actual != expected) {
      Report(guard_line, "header-guard",
             "include guard '" + actual + "' should be '" + expected + "'");
    }
  }

  const FileData& f_;
  const std::set<std::string>& unordered_;
  std::vector<Finding>* findings_;
};

bool IsSourceFile(const fs::path& p) {
  auto ext = p.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Resolves a quoted project include against the scanned file set: exact
// relative path, or unique-enough suffix match ("featureeng/feature_cache.h"
// resolves to "src/featureeng/feature_cache.h").
const FileData* ResolveInclude(const std::string& inc,
                               const std::vector<FileData>& files) {
  for (const FileData& f : files) {
    if (f.rel == inc) return &f;
    if (f.rel.size() > inc.size() + 1 &&
        f.rel.compare(f.rel.size() - inc.size(), inc.size(), inc) == 0 &&
        f.rel[f.rel.size() - inc.size() - 1] == '/') {
      return &f;
    }
  }
  return nullptr;
}

// Union of a file's own unordered-typed declarations and those of every
// transitively included project header, so `for (auto& kv : map_)` in a .cc
// is caught when `map_` is declared unordered in the header.
void TransitiveUnordered(const FileData* file,
                         const std::vector<FileData>& files,
                         std::set<const FileData*>* visited,
                         std::set<std::string>* out) {
  if (!visited->insert(file).second) return;
  out->insert(file->own_unordered.begin(), file->own_unordered.end());
  for (const IncludeRef& inc : file->includes) {
    if (inc.angled) continue;
    const FileData* dep = ResolveInclude(inc.path, files);
    if (dep != nullptr) TransitiveUnordered(dep, files, visited, out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: zombie_lint <root-dir>...\n");
    return 2;
  }
  std::vector<Finding> findings;
  std::vector<FileData> files;
  for (int a = 1; a < argc; ++a) {
    fs::path root(argv[a]);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "zombie_lint: not a directory: %s\n", argv[a]);
      return 2;
    }
    // Findings are reported relative to the root's parent so the expected
    // header guard can be derived ("src/util/status.h", "bench/foo.h").
    fs::path base = root.has_parent_path() ? root.parent_path() : fs::path(".");
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      paths.push_back(entry.path());
    }
    // Directory iteration order is filesystem-dependent; sort so output is
    // reproducible (this linter enforces determinism — it should practice
    // it).
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      FileData fd;
      fd.abs = p;
      fd.rel = fs::relative(p, base).generic_string();
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        fd.io_error = true;
        files.push_back(std::move(fd));
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string text = buf.str();
      fd.lines = SplitCodeAndComments(text);
      fd.tokens = Tokenize(fd.lines);
      fd.includes = ExtractIncludes(text);
      CollectUnorderedNames(fd.tokens, &fd.own_unordered);
      files.push_back(std::move(fd));
    }
  }
  for (const FileData& fd : files) {
    if (fd.io_error) {
      findings.push_back({fd.rel, 0, "io", "cannot read file"});
      continue;
    }
    std::set<std::string> unordered;
    std::set<const FileData*> visited;
    TransitiveUnordered(&fd, files, &visited, &unordered);
    FileAnalyzer(fd, unordered, &findings).Run();
  }
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (findings.empty()) {
    std::printf("zombie_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "zombie_lint: %zu finding(s) in %zu files\n",
               findings.size(), files.size());
  return 1;
}
