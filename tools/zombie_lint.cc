// zombie_lint — repo-specific invariant linter for the zombie library.
//
// Generic tools (compiler warnings, clang-tidy) cannot enforce contracts that
// are conventions of *this* codebase. This linter walks the given source
// roots and checks the rules the library's design docs promise:
//
//   no-throw        Library code never throws; fallible operations return a
//                   Status (src/util/status.h). `throw`, `try`, and `catch`
//                   are banned in src/.
//   no-raw-random   All randomness flows through zombie::Rng (determinism
//                   contract: identical seeds give bit-identical traces).
//                   `rand`, `srand`, `rand_r`, `drand48`, `random_device`,
//                   and `mt19937` are banned outside src/util/random.cc.
//   no-stdout       Library code is silent unless asked: user-facing output
//                   goes through util/logging.h. `std::cout` and bare
//                   `printf` are banned in src/ (snprintf/fprintf stderr are
//                   fine and are distinct identifiers).
//   no-raw-clock    Wall-clock reads flow through util/clock (Stopwatch /
//                   VirtualClock) so time handling stays centralized and
//                   mockable. Lines calling `now` on std::chrono's
//                   steady_clock / system_clock / high_resolution_clock are
//                   banned outside src/util/clock.* and src/obs/.
//   header-guard    Include guards must be derived from the file path:
//                   src/util/status.h -> ZOMBIE_UTIL_STATUS_H_.
//   no-hot-path-string-copy
//                   The feature-extraction and engine layers are the hot
//                   path; token streams there flow as string_view spans
//                   over a reusable TokenBuffer (src/text/tokenizer.h), not
//                   as owning string collections that allocate per token.
//                   `std::vector<std::string>` is banned in src/featureeng/
//                   and src/core/ (whitespace-tolerant match).
//   no-raw-extract-outside-service
//                   Feature extraction flows through
//                   ExtractionService::Featurize so caching, speculative-
//                   prefetch accounting, and metrics stay on one path.
//                   Direct `.Extract(` / `->Extract(` calls are banned in
//                   src/ outside src/featureeng/ (whitespace-tolerant
//                   match; the extraction layer itself is the one place
//                   allowed to touch FeaturePipeline::Extract).
//
// A finding on a line can be suppressed in place with a trailing comment:
//
//   int x = rand();  // zombie-lint: allow(no-raw-random)
//
// Usage: zombie_lint <root-dir>...
// Exits 0 when clean, 1 with findings (one "path:line: [rule] msg" per line),
// 2 on usage/IO errors.
//
// This is a tool, not library code, so stdio output here is intentional.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  size_t line;
  std::string rule;
  std::string message;
};

// One source line split into its code and comment parts (strings/chars are
// blanked out of `code` so tokens inside literals never match).
struct LineView {
  std::string code;
  std::string comment;
};

// Strips comments, string literals, and char literals, preserving line
// structure. The comment text is kept per line so suppression directives
// remain visible.
std::vector<LineView> SplitCodeAndComments(const std::string& text) {
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment, kRawString };
  std::vector<LineView> lines(1);
  State state = State::kCode;
  std::string raw_delim;  // delimiter of an active raw string, e.g. `)foo"`
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals cannot span lines; reset defensively.
      if (state == State::kString || state == State::kChar) state = State::kCode;
      lines.emplace_back();
      continue;
    }
    LineView& cur = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          cur.comment += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim".
          size_t open = text.find('(', i + 2);
          if (open == std::string::npos) { cur.code += c; break; }
          raw_delim.assign(1, ')');
          raw_delim.append(text, i + 2, open - i - 2);
          raw_delim.push_back('"');
          state = State::kRawString;
          cur.code += ' ';
          i = open;
        } else if (c == '"') {
          state = State::kString;
          cur.code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          cur.code += ' ';
        } else {
          cur.code += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `code` contains `ident` as a whole token.
bool HasToken(const std::string& code, const std::string& ident) {
  size_t pos = 0;
  while ((pos = code.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    size_t end = pos + ident.size();
    bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool IsSuppressed(const LineView& line, const std::string& rule) {
  return line.comment.find("zombie-lint: allow(" + rule + ")") !=
         std::string::npos;
}

// Expected include guard for `path` relative to the repo root, e.g.
// src/util/status.h -> ZOMBIE_UTIL_STATUS_H_ (the "src/" prefix is dropped;
// other roots such as bench/ keep theirs).
std::string ExpectedGuard(const fs::path& rel) {
  std::string s = rel.generic_string();
  const std::string kSrcPrefix = "src/";
  if (s.rfind(kSrcPrefix, 0) == 0) s = s.substr(kSrcPrefix.size());
  std::string guard = "ZOMBIE_";
  for (char c : s) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// File-scope exemptions for no-raw-random: the one place allowed to touch
// the underlying generator machinery.
bool IsRandomImplFile(const fs::path& rel) {
  std::string s = rel.generic_string();
  return s == "src/util/random.cc" || s == "src/util/random.h";
}

// File-scope exemptions for no-raw-clock: the clock wrapper itself, and
// the observability layer (whose whole purpose is timing measurement).
bool IsClockImplFile(const fs::path& rel) {
  std::string s = rel.generic_string();
  return s == "src/util/clock.cc" || s == "src/util/clock.h" ||
         s.rfind("src/obs/", 0) == 0;
}

// Files covered by no-hot-path-string-copy: the per-event layers where a
// per-token allocation multiplies across the whole stream.
bool IsHotPathFile(const fs::path& rel) {
  std::string s = rel.generic_string();
  return s.rfind("src/featureeng/", 0) == 0 || s.rfind("src/core/", 0) == 0;
}

// Files covered by no-raw-extract-outside-service: all of src/ except the
// extraction layer itself, which implements the service and its backing
// pipeline and so is the one place allowed to call Extract directly.
bool IsRawExtractBannedFile(const fs::path& rel) {
  std::string s = rel.generic_string();
  return s.rfind("src/", 0) == 0 && s.rfind("src/featureeng/", 0) != 0;
}

void LintFile(const fs::path& path, const fs::path& rel,
              std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    findings->push_back({rel.generic_string(), 0, "io", "cannot read file"});
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  std::vector<LineView> lines = SplitCodeAndComments(text);

  auto report = [&](size_t line_no, const std::string& rule,
                    const std::string& msg) {
    if (IsSuppressed(lines[line_no - 1], rule)) return;
    findings->push_back({rel.generic_string(), line_no, rule, msg});
  };

  static const char* kThrowTokens[] = {"throw", "try", "catch"};
  static const char* kRandomTokens[] = {"rand",   "srand",         "rand_r",
                                        "drand48", "random_device", "mt19937"};
  static const char* kStdoutTokens[] = {"cout", "printf"};
  static const char* kClockTokens[] = {"steady_clock", "system_clock",
                                       "high_resolution_clock"};

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (code.empty()) continue;
    size_t line_no = i + 1;
    for (const char* tok : kThrowTokens) {
      if (HasToken(code, tok)) {
        report(line_no, "no-throw",
               std::string("'") + tok +
                   "' in library code; return a Status instead "
                   "(src/util/status.h contract)");
      }
    }
    if (!IsRandomImplFile(rel)) {
      for (const char* tok : kRandomTokens) {
        if (HasToken(code, tok)) {
          report(line_no, "no-raw-random",
                 std::string("'") + tok +
                     "' breaks the determinism contract; use zombie::Rng "
                     "(src/util/random.h)");
        }
      }
    }
    for (const char* tok : kStdoutTokens) {
      if (HasToken(code, tok)) {
        report(line_no, "no-stdout",
               std::string("'") + tok +
                   "' in library code; use ZLOG (src/util/logging.h)");
      }
    }
    if (IsHotPathFile(rel) || IsRawExtractBannedFile(rel)) {
      // Whitespace-tolerant: `std::vector< std::string >` etc. must match,
      // so compare against the line's code with all whitespace removed.
      std::string squished;
      squished.reserve(code.size());
      for (char c : code) {
        if (!std::isspace(static_cast<unsigned char>(c))) squished += c;
      }
      if (IsHotPathFile(rel) &&
          squished.find("std::vector<std::string>") != std::string::npos) {
        report(line_no, "no-hot-path-string-copy",
               "std::vector<std::string> allocates per token on the hot "
               "path; use TokenBuffer + string_view spans "
               "(src/text/tokenizer.h)");
      }
      if (IsRawExtractBannedFile(rel) &&
          (squished.find(".Extract(") != std::string::npos ||
           squished.find("->Extract(") != std::string::npos)) {
        report(line_no, "no-raw-extract-outside-service",
               "direct FeaturePipeline::Extract call outside "
               "src/featureeng/; route extraction through "
               "ExtractionService::Featurize "
               "(src/featureeng/extraction_service.h)");
      }
    }
    if (!IsClockImplFile(rel) && HasToken(code, "now")) {
      for (const char* tok : kClockTokens) {
        if (HasToken(code, tok)) {
          report(line_no, "no-raw-clock",
                 std::string("'") + tok +
                     "::now' outside util/clock; use Stopwatch or "
                     "VirtualClock (src/util/clock.h) so timing stays "
                     "centralized and mockable");
        }
      }
    }
  }

  if (rel.extension() == ".h") {
    std::string expected = ExpectedGuard(rel);
    std::string actual;
    size_t guard_line = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      size_t pos = code.find("#ifndef");
      if (pos != std::string::npos) {
        size_t start = pos + 7;
        while (start < code.size() &&
               std::isspace(static_cast<unsigned char>(code[start]))) {
          ++start;
        }
        size_t end = start;
        while (end < code.size() && IsIdentChar(code[end])) ++end;
        actual = code.substr(start, end - start);
        guard_line = i + 1;
        break;
      }
    }
    if (actual.empty()) {
      report(1, "header-guard", "missing #ifndef include guard");
    } else if (actual != expected) {
      report(guard_line, "header-guard",
             "include guard '" + actual + "' should be '" + expected + "'");
    }
  }
}

bool IsSourceFile(const fs::path& p) {
  auto ext = p.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: zombie_lint <root-dir>...\n");
    return 2;
  }
  std::vector<Finding> findings;
  size_t files_scanned = 0;
  for (int a = 1; a < argc; ++a) {
    fs::path root(argv[a]);
    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
      std::fprintf(stderr, "zombie_lint: not a directory: %s\n", argv[a]);
      return 2;
    }
    // Findings are reported relative to the root's parent so the expected
    // header guard can be derived ("src/util/status.h", "bench/foo.h").
    fs::path base = root.has_parent_path() ? root.parent_path() : fs::path(".");
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      ++files_scanned;
      LintFile(entry.path(), fs::relative(entry.path(), base), &findings);
    }
  }
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (findings.empty()) {
    std::printf("zombie_lint: %zu files clean\n", files_scanned);
    return 0;
  }
  std::fprintf(stderr, "zombie_lint: %zu finding(s) in %zu files\n",
               findings.size(), files_scanned);
  return 1;
}
