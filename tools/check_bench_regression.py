#!/usr/bin/env python3
"""Compare BENCH_*.json results against a committed baseline.

Usage:
  tools/check_bench_regression.py --baseline bench/baseline.json \
      --results <dir-with-BENCH_*.json> [--tolerance 0.25]

The baseline (bench/baseline.json) maps "<bench>/<entry>" to the
wall_micros measured on the reference machine.  CI machines differ in
absolute speed, so raw comparison would be meaningless: instead the
checker computes each entry's ratio current/baseline and normalizes by
the *median* ratio across all entries.  A uniformly slower machine moves
every ratio equally and cancels out; a genuine regression moves one
entry's normalized ratio past 1 + tolerance and fails the build.

When $GITHUB_STEP_SUMMARY is set (GitHub Actions), a markdown ratio
table is appended to it so the comparison shows up on the job summary
page without digging through logs.

Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import sys


def load_results(results_dir):
    """Returns ({"<bench>/<entry>": wall_micros}, {"<bench>/<metric>": value},
    {bench names that produced a results file}) from every BENCH_*.json."""
    out = {}
    metrics = {}
    benches_run = set()
    paths = sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json")))
    if not paths:
        print(f"error: no BENCH_*.json files in {results_dir}", file=sys.stderr)
        sys.exit(2)
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        # v2 adds an optional "observability" block; entries are unchanged.
        if doc.get("schema_version") not in (1, 2):
            print(f"error: {path}: unsupported schema_version "
                  f"{doc.get('schema_version')!r}", file=sys.stderr)
            sys.exit(2)
        bench = doc["bench"]
        benches_run.add(bench)
        for entry in doc.get("entries", []):
            wall = entry.get("wall_micros", 0.0)
            if wall > 0:
                out[f"{bench}/{entry['name']}"] = wall
        for name, value in doc.get("metrics", {}).items():
            metrics[f"{bench}/{name}"] = value
    return out, metrics, benches_run


def median(xs):
    xs = sorted(xs)
    n = len(xs)
    mid = n // 2
    return xs[mid] if n % 2 else (xs[mid - 1] + xs[mid]) / 2.0


#: ISA levels bench_micro can emit per-ISA ratios for, in dispatch order.
SIMD_ISAS = ("avx2", "avx512")


def kernel_ratio_rows(metrics):
    """Extracts sorted (name, speedup) rows from "ratio.*" bench metrics.

    bench_micro emits one "ratio.<kernel>" metric per old-vs-new kernel
    pair (old wall / new wall, >1 means the shipped kernel is faster); see
    ExportKernelRatios in bench/bench_micro.cc.  Per-ISA dispatch ratios
    ("ratio.<isa>.<kernel>") are pivoted separately by per_isa_ratio_rows.
    """
    rows = []
    for name, value in sorted(metrics.items()):
        bench, _, metric = name.partition("/")
        if not metric.startswith("ratio."):
            continue
        rest = metric[len("ratio."):]
        if rest.partition(".")[0] in SIMD_ISAS:
            continue
        rows.append((f"{bench}/{rest}", value))
    return rows


def per_isa_ratio_rows(metrics):
    """Pivots "ratio.<isa>.<kernel>" metrics into (kernel, {isa: speedup}).

    bench_micro runs each sparse kernel once per runtime-dispatchable ISA
    level and emits scalar wall / ISA wall (see ExportPerIsaKernelRatios);
    >1.00x means the SIMD kernel beats the bit-identical scalar reference
    on that machine.  Levels the runner cannot execute are simply absent.
    Returns (isas_present, rows) with both sorted for stable output.
    """
    pivot = {}
    isas_present = []
    for name, value in sorted(metrics.items()):
        metric = name.partition("/")[2]
        if not metric.startswith("ratio."):
            continue
        isa, dot, kernel = metric[len("ratio."):].partition(".")
        if not dot or isa not in SIMD_ISAS:
            continue
        pivot.setdefault(kernel, {})[isa] = value
        if isa not in isas_present:
            isas_present.append(isa)
    isas_present.sort(key=SIMD_ISAS.index)
    return isas_present, sorted(pivot.items())


def evaluate_metric_gates(gates, metrics, benches_run):
    """Checks baseline "metric_gates" against collected bench metrics.

    Each gate maps "<bench>/<metric>" to {"max": x} and/or {"min": y}
    (plus an optional "why" note).  Gated metrics are machine-independent
    by construction (wall ratios, hit rates), so they are compared raw —
    no median normalization.  Returns (rows, failures, missing, absent):
    rows = [(name, value, bound_desc, ok)]; missing holds gates whose
    bench produced no results file at all (legitimately skipped — not
    every job runs every bench); absent holds gates whose bench DID run
    but never emitted the metric, which is a hard error — a renamed or
    dropped AddMetric call would otherwise silently un-gate the bound.
    One conditional-emission family is tolerated: "ratio.<isa>.*" gates
    whose ISA produced no metrics at all in this run go to missing, not
    absent — the runner's CPU lacks the level, so AvailableLevels()
    skipped the whole family, which is not a renamed metric.
    """
    rows = []
    failures = []
    missing = []
    absent = []
    isas_emitted = {
        name.partition("/")[2].split(".")[1]
        for name in metrics
        if name.partition("/")[2].startswith("ratio.")
        and name.partition("/")[2].split(".")[1] in SIMD_ISAS
    }
    for name, gate in sorted(gates.items()):
        if name not in metrics:
            bench = name.partition("/")[0]
            metric = name.partition("/")[2]
            isa = metric.split(".")[1] if metric.startswith("ratio.") else None
            if bench not in benches_run:
                missing.append(name)
            elif isa in SIMD_ISAS and isa not in isas_emitted:
                # bench_micro ran but this runner cannot dispatch the ISA;
                # AvailableLevels() skipped the whole level, not one metric.
                missing.append(name)
            else:
                absent.append(name)
            continue
        value = metrics[name]
        bounds = []
        ok = True
        if "max" in gate:
            bounds.append(f"<= {gate['max']}")
            if value > gate["max"]:
                ok = False
        if "min" in gate:
            bounds.append(f">= {gate['min']}")
            if value < gate["min"]:
                ok = False
        row = (name, value, " and ".join(bounds), ok)
        rows.append(row)
        if not ok:
            failures.append(row)
    return rows, failures, missing, absent


def print_metric_gates(rows, missing, absent=()):
    if not rows and not missing and not absent:
        return
    print(f"\n{len(rows)} metric gates:")
    for name, value, bounds, ok in rows:
        flag = "" if ok else "  <-- GATE FAILED"
        print(f"  {name}: {value:.3f} (bound {bounds}){flag}")
    if missing:
        print(f"  note: {len(missing)} gated metrics missing from results "
              "(bench not run in this job): " + ", ".join(missing))
    for name in absent:
        bench = name.partition("/")[0]
        print(f"  {name}: METRIC ABSENT — BENCH_{bench}.json is present but "
              "contains no such metric  <-- GATE FAILED")


def print_kernel_ratios(rows):
    if not rows:
        return
    print(f"\n{len(rows)} kernel speedup metrics (old wall / new wall):")
    for name, speedup in rows:
        print(f"  {name}: {speedup:.2f}x")
    speedups = [s for _, s in rows]
    print(f"  median: {median(speedups):.2f}x")


def print_per_isa_ratios(isas, rows):
    if not rows:
        return
    print(f"\nper-ISA kernel speedups vs scalar ({', '.join(isas)}):")
    width = max(len(kernel) for kernel, _ in rows)
    for kernel, by_isa in rows:
        cells = "  ".join(
            f"{isa} {by_isa[isa]:.2f}x" if isa in by_isa else f"{isa} —"
            for isa in isas)
        print(f"  {kernel:<{width}}  {cells}")


def write_step_summary(scale, tolerance, table_rows, failures, kernel_rows,
                       gate_rows=(), gate_missing=(), isa_table=None,
                       gate_absent=()):
    """Appends a markdown ratio table to $GITHUB_STEP_SUMMARY if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Bench regression gate", ""]
    if failures:
        lines.append(f"**FAIL** — {len(failures)} entr"
                     f"{'y' if len(failures) == 1 else 'ies'} regressed more "
                     f"than {tolerance:.0%} after normalization.")
    else:
        lines.append("**OK** — no wall-clock regressions beyond "
                     f"{tolerance:.0%} tolerance.")
    lines += ["",
              f"Machine-speed scale factor (median raw ratio): `{scale:.3f}`",
              "",
              "| entry | raw ratio | normalized | status |",
              "|---|---|---|---|"]
    failed_names = {name for name, _ in failures}
    for name, ratio, normalized in table_rows:
        status = ":x: regression" if name in failed_names else ":white_check_mark:"
        lines.append(f"| `{name}` | {ratio:.2f}x | {normalized:.2f}x "
                     f"| {status} |")
    if kernel_rows:
        lines += ["", "## Kernel speedups (old vs new)", "",
                  "Per-kernel wall ratio of the pre-optimization reference "
                  "implementation over the shipped kernel, measured on "
                  "identical inputs in the same bench_micro run "
                  "(machine speed cancels; >1.00x means the shipped kernel "
                  "is faster).", "",
                  "| kernel | speedup |",
                  "|---|---|"]
        for name, speedup in kernel_rows:
            lines.append(f"| `{name}` | {speedup:.2f}x |")
        speedups = [s for _, s in kernel_rows]
        lines.append(f"| **median** | **{median(speedups):.2f}x** |")
    if isa_table and isa_table[1]:
        isas, rows = isa_table
        lines += ["", "## Per-ISA kernel speedups", "",
                  "Scalar wall over SIMD wall for each sparse kernel at "
                  "every ISA level this runner can dispatch to, measured in "
                  "the same bench_micro run (machine speed cancels; >1.00x "
                  "means the SIMD kernel is faster than the bit-identical "
                  "scalar reference).", "",
                  "| kernel | " + " | ".join(isas) + " |",
                  "|---|" + "---|" * len(isas)]
        for kernel, by_isa in rows:
            cells = " | ".join(
                f"{by_isa[isa]:.2f}x" if isa in by_isa else "—"
                for isa in isas)
            lines.append(f"| `{kernel}` | {cells} |")
    if gate_rows or gate_missing or gate_absent:
        lines += ["", "## Metric gates", "",
                  "Machine-independent bench metrics (ratios, rates) "
                  "compared raw against the bounds in baseline.json's "
                  "`metric_gates`.", "",
                  "| metric | value | bound | status |",
                  "|---|---|---|---|"]
        for name, value, bounds, ok in gate_rows:
            status = ":white_check_mark:" if ok else ":x: gate failed"
            lines.append(f"| `{name}` | {value:.3f} | {bounds} | {status} |")
        for name in gate_missing:
            lines.append(f"| `{name}` | — | — | skipped (not run) |")
        for name in gate_absent:
            lines.append(f"| `{name}` | — | — | :x: metric absent "
                         "(bench ran but never emitted it) |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--results", required=True,
                        help="directory containing BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalized slowdown (0.25 = +25%%)")
    parser.add_argument("--min-micros", type=float, default=100.0,
                        help="ignore entries faster than this in the "
                             "baseline (too noisy to gate on)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline_doc = json.load(f)
    except OSError as e:
        print(f"error: cannot read baseline: {e}", file=sys.stderr)
        sys.exit(2)
    baseline = baseline_doc["entries"]
    current, metrics, benches_run = load_results(args.results)
    kernel_rows = kernel_ratio_rows(metrics)
    isa_table = per_isa_ratio_rows(metrics)
    gate_rows, gate_failures, gate_missing, gate_absent = (
        evaluate_metric_gates(
            baseline_doc.get("metric_gates", {}), metrics, benches_run))

    ratios = {}
    skipped = []
    for name, base_wall in sorted(baseline.items()):
        if name not in current:
            skipped.append(name)
            continue
        if base_wall < args.min_micros:
            continue
        ratios[name] = current[name] / base_wall

    if len(ratios) < 3:
        print(f"error: only {len(ratios)} comparable entries — baseline and "
              "results barely overlap; refusing to certify", file=sys.stderr)
        sys.exit(2)

    scale = median(ratios.values())
    print(f"{len(ratios)} comparable entries; machine-speed scale factor "
          f"{scale:.3f} (median raw ratio)")
    if skipped:
        print(f"note: {len(skipped)} baseline entries missing from results: "
              + ", ".join(skipped[:5])
              + ("..." if len(skipped) > 5 else ""))

    failures = []
    table_rows = []
    for name, ratio in sorted(ratios.items(), key=lambda kv: -kv[1]):
        normalized = ratio / scale
        flag = ""
        if normalized > 1.0 + args.tolerance:
            failures.append((name, normalized))
            flag = "  <-- REGRESSION"
        table_rows.append((name, ratio, normalized))
        print(f"  {name}: raw {ratio:.2f}x, normalized {normalized:.2f}x{flag}")

    print_kernel_ratios(kernel_rows)
    print_per_isa_ratios(*isa_table)
    print_metric_gates(gate_rows, gate_missing, gate_absent)
    write_step_summary(scale, args.tolerance, table_rows, failures,
                       kernel_rows, gate_rows, gate_missing, isa_table,
                       gate_absent)

    if failures:
        print(f"\nFAIL: {len(failures)} entr{'y' if len(failures) == 1 else 'ies'} "
              f"regressed more than {args.tolerance:.0%} after machine-speed "
              "normalization:", file=sys.stderr)
        for name, normalized in failures:
            print(f"  {name}: {normalized:.2f}x", file=sys.stderr)
        sys.exit(1)
    if gate_failures:
        print(f"\nFAIL: {len(gate_failures)} metric gate"
              f"{'' if len(gate_failures) == 1 else 's'} out of bounds:",
              file=sys.stderr)
        for name, value, bounds, _ in gate_failures:
            print(f"  {name}: {value:.3f} (bound {bounds})", file=sys.stderr)
        sys.exit(1)
    if gate_absent:
        print(f"\nFAIL: {len(gate_absent)} metric gate"
              f"{'' if len(gate_absent) == 1 else 's'} name"
              f"{'s' if len(gate_absent) == 1 else ''} a metric the bench "
              "never emitted:", file=sys.stderr)
        for name in gate_absent:
            bench = name.partition("/")[0]
            print(f"  {name}: BENCH_{bench}.json is present but has no such "
                  "metric — the gate name in baseline.json and the bench's "
                  "AddMetric call are out of sync (a rename or a dropped "
                  "export would otherwise silently disable this gate)",
                  file=sys.stderr)
        sys.exit(1)
    print("OK: no wall-clock regressions beyond tolerance; all metric "
          "gates in bounds")


if __name__ == "__main__":
    main()
