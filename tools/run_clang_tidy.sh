#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the compile database that
# CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
#   tools/run_clang_tidy.sh [-p BUILD_DIR] [--diff [BASE_REF]] [paths...]
#
#   -p BUILD_DIR   build tree containing compile_commands.json (default: build)
#   --diff [REF]   only lint .cc files changed relative to REF (default: HEAD)
#   paths...       explicit files to lint; default is all of src/ and tools/
#
# Exits 0 when clean, 1 on findings, and 77 ("skip" to ctest) when no
# clang-tidy binary is installed, so the lint ctest degrades gracefully on
# machines without LLVM.

set -u -o pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
DIFF_MODE=0
DIFF_BASE="HEAD"
declare -a PATHS=()

while [ $# -gt 0 ]; do
  case "$1" in
    -p)
      BUILD_DIR="$2"
      shift 2
      ;;
    --diff)
      DIFF_MODE=1
      if [ $# -gt 1 ] && [ "${2#-}" = "$2" ]; then
        DIFF_BASE="$2"
        shift
      fi
      shift
      ;;
    *)
      PATHS+=("$1")
      shift
      ;;
  esac
done

TIDY_BIN="${CLANG_TIDY:-}"
if [ -z "$TIDY_BIN" ]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
              clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" > /dev/null 2>&1; then
      TIDY_BIN="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY_BIN" ]; then
  echo "run_clang_tidy: no clang-tidy binary found; skipping" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found;" \
       "configure first: cmake -B $BUILD_DIR -S $REPO_ROOT" >&2
  exit 2
fi

cd "$REPO_ROOT"

declare -a FILES=()
if [ "$DIFF_MODE" = 1 ]; then
  while IFS= read -r f; do
    case "$f" in
      src/*.cc | tools/*.cc) FILES+=("$f") ;;
    esac
  done < <(git diff --name-only --diff-filter=ACMR "$DIFF_BASE" -- '*.cc')
elif [ "${#PATHS[@]}" -gt 0 ]; then
  FILES=("${PATHS[@]}")
else
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find src tools -name '*.cc' | sort)
fi

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: nothing to lint"
  exit 0
fi

echo "run_clang_tidy: $TIDY_BIN over ${#FILES[@]} file(s)"
"$TIDY_BIN" -p "$BUILD_DIR" --quiet "${FILES[@]}"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy: findings reported (exit $STATUS)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
exit 0
