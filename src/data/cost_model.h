#ifndef ZOMBIE_DATA_COST_MODEL_H_
#define ZOMBIE_DATA_COST_MODEL_H_

#include <cstdint>
#include <memory>

#include "util/random.h"

namespace zombie {

/// Assigns per-item virtual extraction costs during corpus generation.
///
/// The paper's raw items are expensive to featurize (parsing a page, running
/// an extractor); absolute cost is testbed-specific, so we model it as a
/// virtual-clock charge. Different models let benches explore how cost
/// dispersion interacts with input selection.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Cost in virtual microseconds for a document with `num_tokens` content
  /// tokens. Must be non-negative and deterministic given the rng state.
  virtual int64_t SampleCostMicros(size_t num_tokens, Rng* rng) const = 0;
};

/// Every item costs the same.
class ConstantCostModel : public CostModel {
 public:
  explicit ConstantCostModel(int64_t micros);
  int64_t SampleCostMicros(size_t num_tokens, Rng* rng) const override;

 private:
  int64_t micros_;
};

/// Lognormal cost around a target mean: heavy right tail, matching real
/// page-processing time distributions.
class LogNormalCostModel : public CostModel {
 public:
  /// `mean_micros` is the distribution mean (not the median); `sigma` is the
  /// log-space standard deviation.
  LogNormalCostModel(double mean_micros, double sigma);
  int64_t SampleCostMicros(size_t num_tokens, Rng* rng) const override;

 private:
  double mu_;
  double sigma_;
};

/// Cost linear in document length plus lognormal noise: fixed parse
/// overhead + per-token work.
class LengthProportionalCostModel : public CostModel {
 public:
  LengthProportionalCostModel(double base_micros, double micros_per_token,
                              double noise_sigma);
  int64_t SampleCostMicros(size_t num_tokens, Rng* rng) const override;

 private:
  double base_micros_;
  double micros_per_token_;
  double noise_sigma_;
};

}  // namespace zombie

#endif  // ZOMBIE_DATA_COST_MODEL_H_
