#include "data/entity_generator.h"

namespace zombie {

SyntheticCorpusConfig MakeEntityExtractConfig(
    const EntityExtractOptions& options) {
  SyntheticCorpusConfig cfg;
  cfg.name = "entity";
  cfg.num_documents = options.num_documents;
  cfg.seed = options.seed;
  cfg.label_rule = LabelRule::kTokenPresence;
  cfg.positive_fraction = options.target_topic_fraction;
  cfg.num_mention_tokens = options.num_mention_tokens;
  cfg.mention_inject_probability = options.mention_inject_probability;
  cfg.domain_purity = options.domain_purity;
  cfg.topic_token_share = 0.3;
  cfg.mean_extraction_cost_ms = options.mean_extraction_cost_ms;
  cfg.num_background_topics = 9;
  cfg.num_domains = 100;
  return cfg;
}

Corpus GenerateEntityExtractCorpus(const EntityExtractOptions& options) {
  return SyntheticCorpusGenerator(MakeEntityExtractConfig(options)).Generate();
}

}  // namespace zombie
