#include "data/webcat_generator.h"

namespace zombie {

SyntheticCorpusConfig MakeWebCatConfig(const WebCatOptions& options) {
  SyntheticCorpusConfig cfg;
  cfg.name = "webcat";
  cfg.num_documents = options.num_documents;
  cfg.seed = options.seed;
  cfg.label_rule = LabelRule::kTopic;
  cfg.positive_fraction = options.positive_fraction;
  cfg.label_noise = options.label_noise;
  cfg.domain_purity = options.domain_purity;
  cfg.topic_token_share = options.topic_token_share;
  cfg.topic_vocabulary_size = options.topic_vocabulary_size;
  cfg.mean_extraction_cost_ms = options.mean_extraction_cost_ms;
  cfg.extraction_cost_sigma = options.extraction_cost_sigma;
  cfg.num_background_topics = 9;
  cfg.num_domains = 100;
  return cfg;
}

Corpus GenerateWebCatCorpus(const WebCatOptions& options) {
  return SyntheticCorpusGenerator(MakeWebCatConfig(options)).Generate();
}

}  // namespace zombie
