#include "data/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "util/string_util.h"

namespace zombie {

namespace {

constexpr char kMagic[4] = {'Z', 'M', 'B', 'C'};
constexpr uint32_t kVersion = 1;

// Minimal little-endian writer over a stdio FILE. All fixed-width fields
// are written LSB-first explicitly so files are portable across hosts.
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  bool ok() const { return ok_; }

  void U32(uint32_t v) { Raw(&v, Encode(v, 4)); }
  void U64(uint64_t v) { Raw(&v, Encode(v, 8)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  void Str(const std::string& s) {
    U64(s.size());
    if (ok_ && !s.empty() &&
        std::fwrite(s.data(), 1, s.size(), f_) != s.size()) {
      ok_ = false;
    }
  }

  void Bytes(const void* data, size_t len) {
    if (ok_ && len > 0 && std::fwrite(data, 1, len, f_) != len) ok_ = false;
  }

 private:
  // Encodes v LSB-first into buf_ and returns the byte count.
  size_t Encode(uint64_t v, size_t n) {
    for (size_t i = 0; i < n; ++i) buf_[i] = static_cast<unsigned char>(v >> (8 * i));
    return n;
  }
  void Raw(const void* /*unused*/, size_t n) { Bytes(buf_, n); }

  std::FILE* f_;
  unsigned char buf_[8];
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  bool ok() const { return ok_; }

  uint32_t U32() { return static_cast<uint32_t>(Decode(4)); }
  uint64_t U64() { return Decode(8); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string Str(uint64_t max_len = 1ULL << 30) {
    uint64_t n = U64();
    if (!ok_ || n > max_len) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    if (n > 0 && std::fread(s.data(), 1, n, f_) != n) ok_ = false;
    return s;
  }

 private:
  uint64_t Decode(size_t n) {
    unsigned char buf[8] = {0};
    if (ok_ && std::fread(buf, 1, n, f_) != n) ok_ = false;
    if (!ok_) return 0;
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return v;
  }

  std::FILE* f_;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  Writer w(f.get());
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.Str(corpus.name());

  // Vocabulary.
  w.U64(corpus.vocabulary().size());
  for (uint32_t i = 0; i < corpus.vocabulary().size(); ++i) {
    w.Str(corpus.vocabulary().Term(i));
  }

  // Domains.
  w.U64(corpus.num_domains());
  for (uint32_t i = 0; i < corpus.num_domains(); ++i) {
    w.Str(corpus.DomainName(i));
  }

  // Documents.
  w.U64(corpus.size());
  for (const Document& d : corpus.documents()) {
    w.U64(d.id);
    w.I32(d.label);
    w.U32(d.domain);
    w.U32(d.topic);
    w.I64(d.extraction_cost_micros);
    w.I64(d.labeling_cost_micros);
    w.Str(d.url);
    w.U64(d.tokens.size());
    for (uint32_t tok : d.tokens) w.U32(tok);
  }
  if (!w.ok()) return Status::IOError(StrFormat("write failed: %s", path.c_str()));
  return Status::OK();
}

StatusOr<Corpus> LoadCorpus(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  Reader r(f.get());
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Internal("bad magic: not a zombie corpus file");
  }
  uint32_t version = r.U32();
  if (!r.ok() || version != kVersion) {
    return Status::Internal(StrFormat("unsupported corpus version %u", version));
  }
  Corpus corpus;
  corpus.set_name(r.Str());

  uint64_t vocab_size = r.U64();
  for (uint64_t i = 0; r.ok() && i < vocab_size; ++i) {
    corpus.mutable_vocabulary().GetOrAdd(r.Str());
  }
  corpus.mutable_vocabulary().Freeze();

  uint64_t num_domains = r.U64();
  for (uint64_t i = 0; r.ok() && i < num_domains; ++i) {
    corpus.AddDomain(r.Str());
  }

  uint64_t num_docs = r.U64();
  for (uint64_t i = 0; r.ok() && i < num_docs; ++i) {
    Document d;
    d.id = r.U64();
    d.label = r.I32();
    d.domain = r.U32();
    d.topic = r.U32();
    d.extraction_cost_micros = r.I64();
    d.labeling_cost_micros = r.I64();
    d.url = r.Str();
    uint64_t ntok = r.U64();
    if (!r.ok() || ntok > (1ULL << 30)) {
      return Status::Internal("corrupt token count");
    }
    d.tokens.reserve(ntok);
    for (uint64_t t = 0; t < ntok; ++t) d.tokens.push_back(r.U32());
    corpus.AddDocument(std::move(d));
  }
  if (!r.ok()) return Status::Internal(StrFormat("corrupt corpus file: %s", path.c_str()));
  ZOMBIE_RETURN_IF_ERROR(corpus.Validate());
  return corpus;
}

}  // namespace zombie
