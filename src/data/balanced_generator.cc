#include "data/balanced_generator.h"

namespace zombie {

SyntheticCorpusConfig MakeBalancedConfig(const BalancedOptions& options) {
  SyntheticCorpusConfig cfg;
  cfg.name = "balanced";
  cfg.num_documents = options.num_documents;
  cfg.seed = options.seed;
  cfg.label_rule = LabelRule::kTopic;
  cfg.positive_fraction = 0.5;
  // One background topic so the task is a clean two-class problem.
  cfg.num_background_topics = 1;
  cfg.label_noise = options.label_noise;
  // No domain signal: groups built from metadata are uninformative.
  cfg.domain_purity = 0.0;
  cfg.topic_token_share = options.topic_token_share;
  cfg.mean_extraction_cost_ms = options.mean_extraction_cost_ms;
  cfg.num_domains = 100;
  return cfg;
}

Corpus GenerateBalancedCorpus(const BalancedOptions& options) {
  return SyntheticCorpusGenerator(MakeBalancedConfig(options)).Generate();
}

}  // namespace zombie
