#ifndef ZOMBIE_DATA_DOCUMENT_H_
#define ZOMBIE_DATA_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zombie {

/// Ground-truth class of a document. Binary tasks use 0/1; kUnlabeled marks
/// items whose label is unknown (not used by the shipped tasks but supported
/// by the corpus container).
inline constexpr int32_t kUnlabeled = -1;

/// One raw input item (a "page" of the simulated crawl).
///
/// A Document carries everything the simulated substrate needs:
///  - `tokens`: content as ids into the owning Corpus's Vocabulary,
///  - `label`: ground truth, revealed to the engine only after the item is
///    processed (labels are part of the training data in the feature
///    engineering setting; featurization is the expensive step),
///  - `domain`: metadata group hint (hostname analogue) usable for cheap
///    indexing,
///  - `topic`: the latent topic that generated the document. Hidden from
///    the engine; used only by the oracle grouper and analysis code,
///  - costs: simulated virtual-clock charges (see util/clock.h).
struct Document {
  uint64_t id = 0;
  std::vector<uint32_t> tokens;
  int32_t label = kUnlabeled;
  uint32_t domain = 0;
  uint32_t topic = 0;
  int64_t extraction_cost_micros = 0;
  int64_t labeling_cost_micros = 0;
  std::string url;

  size_t length() const { return tokens.size(); }
};

}  // namespace zombie

#endif  // ZOMBIE_DATA_DOCUMENT_H_
