#include "data/corpus.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

size_t Corpus::AddDocument(Document doc) {
  docs_.push_back(std::move(doc));
  return docs_.size() - 1;
}

const Document& Corpus::doc(size_t i) const {
  ZCHECK_LT(i, docs_.size());
  return docs_[i];
}

uint32_t Corpus::AddDomain(std::string name) {
  domain_names_.push_back(std::move(name));
  return static_cast<uint32_t>(domain_names_.size() - 1);
}

const std::string& Corpus::DomainName(uint32_t domain_id) const {
  ZCHECK_LT(domain_id, domain_names_.size());
  return domain_names_[domain_id];
}

CorpusStats Corpus::ComputeStats() const {
  CorpusStats stats;
  stats.num_documents = docs_.size();
  stats.num_domains = domain_names_.size();
  stats.vocabulary_size = vocab_.size();
  if (docs_.empty()) return stats;
  double total_len = 0.0;
  double total_cost = 0.0;
  for (const auto& d : docs_) {
    if (d.label == 1) ++stats.num_positive;
    total_len += static_cast<double>(d.tokens.size());
    total_cost += static_cast<double>(d.extraction_cost_micros);
  }
  double n = static_cast<double>(docs_.size());
  stats.positive_fraction = static_cast<double>(stats.num_positive) / n;
  stats.mean_length = total_len / n;
  stats.mean_extraction_cost_ms = total_cost / n / 1e3;
  return stats;
}

Status Corpus::Validate() const {
  for (size_t i = 0; i < docs_.size(); ++i) {
    const Document& d = docs_[i];
    for (uint32_t tok : d.tokens) {
      if (tok >= vocab_.size()) {
        return Status::Internal(StrFormat(
            "doc %zu: token id %u out of vocabulary (size %zu)", i, tok,
            vocab_.size()));
      }
    }
    if (!domain_names_.empty() && d.domain >= domain_names_.size()) {
      return Status::Internal(
          StrFormat("doc %zu: domain id %u out of range (%zu domains)", i,
                    d.domain, domain_names_.size()));
    }
    if (d.extraction_cost_micros < 0 || d.labeling_cost_micros < 0) {
      return Status::Internal(StrFormat("doc %zu: negative cost", i));
    }
  }
  return Status::OK();
}

}  // namespace zombie
