#ifndef ZOMBIE_DATA_WEBCAT_GENERATOR_H_
#define ZOMBIE_DATA_WEBCAT_GENERATOR_H_

#include "data/corpus.h"
#include "data/generator.h"

namespace zombie {

/// Task T1 "WebCat": rare-category web page classification, the paper's
/// motivating workload. Positives (the target category) are ~5% of the
/// crawl and concentrate on topic-affiliated domains, so a grouping of the
/// corpus by content or by hostname carries strong usefulness signal —
/// the regime where intelligent input selection pays off most.
struct WebCatOptions {
  size_t num_documents = 20000;
  double positive_fraction = 0.05;
  /// How strongly positives concentrate on their affiliated domains
  /// (0 = none: metadata carries no signal).
  double domain_purity = 0.85;
  /// Content separability: share of tokens drawn from topic vocabulary.
  double topic_token_share = 0.20;
  /// Topic vocabulary breadth: larger values mean more per-class
  /// parameters to estimate, i.e. more labeled positives needed before the
  /// learner converges (the regime where input selection pays off).
  size_t topic_vocabulary_size = 1600;
  /// Flip probability; also inflates the measured positive rate slightly
  /// (a flipped negative becomes a content-less positive).
  double label_noise = 0.03;
  double mean_extraction_cost_ms = 10.0;
  /// Log-space spread of per-item extraction cost (heavier tail = more
  /// cost dispersion for the bandit to exploit; see EngineOptions::
  /// cost_aware_rewards).
  double extraction_cost_sigma = 0.6;
  uint64_t seed = 42;
};

/// Builds the full generator config for a WebCat corpus.
SyntheticCorpusConfig MakeWebCatConfig(const WebCatOptions& options);

/// Generates a WebCat corpus directly.
Corpus GenerateWebCatCorpus(const WebCatOptions& options);

}  // namespace zombie

#endif  // ZOMBIE_DATA_WEBCAT_GENERATOR_H_
