#ifndef ZOMBIE_DATA_CORPUS_SOURCE_H_
#define ZOMBIE_DATA_CORPUS_SOURCE_H_

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "util/status.h"

namespace zombie {

/// One scheduled document arrival: the document at dense corpus index
/// `doc_index` becomes visible once the run's virtual clock reaches
/// `at_virtual_micros`. Arrivals are kept sorted by time (ties by position
/// in the schedule), so consuming them in order is deterministic.
struct DocumentArrival {
  int64_t at_virtual_micros = 0;
  uint32_t doc_index = 0;
};

/// In what order the streamed suffix of the corpus arrives. The order is
/// part of the schedule (and therefore of the deterministic run), not a
/// presentation choice: domain-grouped arrival is what creates genuinely
/// drifting arm values for the non-stationary policies.
enum class ArrivalOrder {
  /// Corpus construction order (generators already interleave topics).
  kCorpus,
  /// Deterministically shuffled with the schedule seed.
  kShuffled,
  /// Grouped by domain id (stable within a domain): arrivals sweep through
  /// domains one at a time, so which index groups receive fresh documents
  /// shifts over virtual time — concept drift by construction.
  kDomainGrouped,
};

const char* ArrivalOrderName(ArrivalOrder order);

/// Knobs for BuildArrivalSchedule.
struct ArrivalScheduleOptions {
  /// Mean arrival rate, documents per virtual second. The gap between
  /// consecutive arrivals is (1e6 / rate) microseconds plus deterministic
  /// jitter.
  double docs_per_virtual_second = 100.0;
  /// Relative jitter on each inter-arrival gap, in [0, 1): gap is drawn
  /// uniformly from [mean * (1 - jitter), mean * (1 + jitter)]. 0 gives a
  /// strictly periodic stream.
  double jitter = 0.5;
  ArrivalOrder order = ArrivalOrder::kCorpus;
  uint64_t seed = 17;
};

/// The pull-based streaming view of a corpus: a fully materialized corpus
/// whose *visibility* is time-gated. Documents [0, base_size) exist from
/// the start (the offline base the index is built over); documents
/// [base_size, corpus.size()) arrive over virtual time per `arrivals`.
///
/// Pre-materializing the whole corpus — instead of mutating a Corpus
/// mid-run — is what keeps streaming deterministic and thread-safe for
/// free: prefetch workers hold `const Corpus&` across the run, document
/// views never invalidate, and the engine's only streaming state is a
/// cursor over the (immutable) schedule. The source itself is therefore
/// const through an entire run and safely shared across concurrent trials.
class ScheduledCorpusSource {
 public:
  /// `corpus` is borrowed and must outlive the source. Every arrival must
  /// reference a document in [base_size, corpus->size()) exactly once
  /// (checked by Validate). Arrivals are stably sorted by time here, so
  /// callers may pass them in any order; ties keep their relative order.
  ScheduledCorpusSource(const Corpus* corpus, size_t base_size,
                        std::vector<DocumentArrival> arrivals);

  const Corpus& corpus() const { return *corpus_; }

  /// Documents visible before any virtual time has passed.
  size_t base_size() const { return base_size_; }

  /// The full schedule, sorted by arrival time (ties in schedule order).
  const std::vector<DocumentArrival>& arrivals() const { return arrivals_; }

  /// Number of documents visible at `virtual_now` (base + arrived).
  size_t VisibleCount(int64_t virtual_now_micros) const;

  /// Checks that the schedule covers [base_size, corpus.size()) exactly
  /// once and references no base or out-of-range document.
  [[nodiscard]] Status Validate() const;

 private:
  const Corpus* corpus_;
  size_t base_size_;
  std::vector<DocumentArrival> arrivals_;
};

/// Builds the canonical schedule for streaming the suffix
/// [base_size, corpus.size()) of `corpus`: inter-arrival gaps from the
/// rate/jitter knobs, document order per `options.order`. Deterministic
/// given (corpus, base_size, options). `base_size` must be >= 1 and <=
/// corpus.size(); a base equal to the corpus size yields an empty (drained)
/// schedule.
std::vector<DocumentArrival> BuildArrivalSchedule(
    const Corpus& corpus, size_t base_size,
    const ArrivalScheduleOptions& options);

}  // namespace zombie

#endif  // ZOMBIE_DATA_CORPUS_SOURCE_H_
