#include "data/corpus_source.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {

const char* ArrivalOrderName(ArrivalOrder order) {
  switch (order) {
    case ArrivalOrder::kCorpus:
      return "corpus";
    case ArrivalOrder::kShuffled:
      return "shuffled";
    case ArrivalOrder::kDomainGrouped:
      return "domain";
  }
  return "?";
}

ScheduledCorpusSource::ScheduledCorpusSource(
    const Corpus* corpus, size_t base_size,
    std::vector<DocumentArrival> arrivals)
    : corpus_(corpus), base_size_(base_size), arrivals_(std::move(arrivals)) {
  ZCHECK(corpus_ != nullptr);
  ZCHECK_GE(base_size_, 1u) << "streaming needs a non-empty offline base";
  ZCHECK_LE(base_size_, corpus_->size());
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const DocumentArrival& a, const DocumentArrival& b) {
                     return a.at_virtual_micros < b.at_virtual_micros;
                   });
  ZCHECK_OK(Validate());
}

size_t ScheduledCorpusSource::VisibleCount(int64_t virtual_now_micros) const {
  DocumentArrival probe;
  probe.at_virtual_micros = virtual_now_micros;
  auto it = std::upper_bound(
      arrivals_.begin(), arrivals_.end(), probe,
      [](const DocumentArrival& a, const DocumentArrival& b) {
        return a.at_virtual_micros < b.at_virtual_micros;
      });
  return base_size_ + static_cast<size_t>(it - arrivals_.begin());
}

Status ScheduledCorpusSource::Validate() const {
  if (arrivals_.size() != corpus_->size() - base_size_) {
    return Status::InvalidArgument(StrFormat(
        "schedule has %zu arrivals for a streamed suffix of %zu documents",
        arrivals_.size(), corpus_->size() - base_size_));
  }
  std::vector<uint8_t> seen(corpus_->size() - base_size_, 0);
  for (const DocumentArrival& a : arrivals_) {
    if (a.doc_index < base_size_ || a.doc_index >= corpus_->size()) {
      return Status::InvalidArgument(StrFormat(
          "arrival references doc %u outside the streamed range [%zu, %zu)",
          a.doc_index, base_size_, corpus_->size()));
    }
    if (a.at_virtual_micros < 0) {
      return Status::InvalidArgument(
          StrFormat("arrival for doc %u has negative time", a.doc_index));
    }
    uint8_t& flag = seen[a.doc_index - base_size_];
    if (flag != 0) {
      return Status::InvalidArgument(
          StrFormat("doc %u arrives twice", a.doc_index));
    }
    flag = 1;
  }
  return Status::OK();
}

std::vector<DocumentArrival> BuildArrivalSchedule(
    const Corpus& corpus, size_t base_size,
    const ArrivalScheduleOptions& options) {
  ZCHECK_GE(base_size, 1u);
  ZCHECK_LE(base_size, corpus.size());
  ZCHECK_GT(options.docs_per_virtual_second, 0.0);
  ZCHECK_GE(options.jitter, 0.0);
  ZCHECK_LT(options.jitter, 1.0);

  std::vector<uint32_t> order;
  order.reserve(corpus.size() - base_size);
  for (size_t i = base_size; i < corpus.size(); ++i) {
    order.push_back(static_cast<uint32_t>(i));
  }
  Rng rng(options.seed);
  switch (options.order) {
    case ArrivalOrder::kCorpus:
      break;
    case ArrivalOrder::kShuffled:
      rng.Shuffle(&order);
      break;
    case ArrivalOrder::kDomainGrouped:
      // Stable, so within one domain the corpus order is preserved; across
      // domains the stream sweeps domain ids in ascending order.
      std::stable_sort(order.begin(), order.end(),
                       [&corpus](uint32_t a, uint32_t b) {
                         return corpus.doc(a).domain < corpus.doc(b).domain;
                       });
      break;
  }

  const double mean_gap = 1e6 / options.docs_per_virtual_second;
  std::vector<DocumentArrival> schedule;
  schedule.reserve(order.size());
  double now = 0.0;
  for (uint32_t doc : order) {
    double gap = mean_gap;
    if (options.jitter > 0.0) {
      gap = mean_gap * rng.NextDouble(1.0 - options.jitter,
                                      1.0 + options.jitter);
    }
    now += gap;
    DocumentArrival a;
    a.at_virtual_micros = static_cast<int64_t>(std::llround(now));
    a.doc_index = doc;
    schedule.push_back(a);
  }
  return schedule;
}

}  // namespace zombie
