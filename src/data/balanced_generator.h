#ifndef ZOMBIE_DATA_BALANCED_GENERATOR_H_
#define ZOMBIE_DATA_BALANCED_GENERATOR_H_

#include "data/corpus.h"
#include "data/generator.h"

namespace zombie {

/// Task T3 "Balanced": ~50/50 class balance with no domain signal — the
/// control workload where every input is roughly equally useful, so
/// intelligent input selection should neither help much nor hurt (the
/// paper's no-harm case).
struct BalancedOptions {
  size_t num_documents = 20000;
  double topic_token_share = 0.35;
  double label_noise = 0.02;
  double mean_extraction_cost_ms = 10.0;
  uint64_t seed = 44;
};

/// Builds the full generator config for a Balanced corpus.
SyntheticCorpusConfig MakeBalancedConfig(const BalancedOptions& options);

/// Generates a Balanced corpus directly.
Corpus GenerateBalancedCorpus(const BalancedOptions& options);

}  // namespace zombie

#endif  // ZOMBIE_DATA_BALANCED_GENERATOR_H_
