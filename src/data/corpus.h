#ifndef ZOMBIE_DATA_CORPUS_H_
#define ZOMBIE_DATA_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/document.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace zombie {

/// Aggregate statistics over a corpus, reported by tooling and used by
/// tests to validate generator targets.
struct CorpusStats {
  size_t num_documents = 0;
  size_t num_positive = 0;
  double positive_fraction = 0.0;
  double mean_length = 0.0;
  double mean_extraction_cost_ms = 0.0;
  size_t num_domains = 0;
  size_t vocabulary_size = 0;
};

/// An in-memory collection of raw input items plus the shared vocabulary
/// and domain-name table. Documents are addressed by dense index (their
/// position), with Document::id preserved for provenance.
class Corpus {
 public:
  Corpus() = default;

  /// Moves a document into the corpus; returns its dense index.
  size_t AddDocument(Document doc);

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Borrowes the document at dense index `i` (must be < size()).
  const Document& doc(size_t i) const;

  const std::vector<Document>& documents() const { return docs_; }

  Vocabulary& mutable_vocabulary() { return vocab_; }
  const Vocabulary& vocabulary() const { return vocab_; }

  /// Registers a domain name; returns its dense domain id.
  uint32_t AddDomain(std::string name);
  const std::string& DomainName(uint32_t domain_id) const;
  size_t num_domains() const { return domain_names_.size(); }

  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  /// Scans the corpus and computes summary statistics.
  CorpusStats ComputeStats() const;

  /// Validates internal consistency: token ids within vocabulary, domain
  /// ids within the domain table, non-negative costs.
  [[nodiscard]] Status Validate() const;

 private:
  std::string name_;
  std::vector<Document> docs_;
  Vocabulary vocab_;
  std::vector<std::string> domain_names_;
};

}  // namespace zombie

#endif  // ZOMBIE_DATA_CORPUS_H_
