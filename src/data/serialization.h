#ifndef ZOMBIE_DATA_SERIALIZATION_H_
#define ZOMBIE_DATA_SERIALIZATION_H_

#include <string>

#include "data/corpus.h"
#include "util/status.h"

namespace zombie {

/// Writes a corpus to a little-endian binary file (magic "ZMBC", version 1).
/// The format round-trips everything: documents (tokens, label, domain,
/// topic, costs, url), the vocabulary, domain names, and the corpus name.
[[nodiscard]] Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// Loads a corpus previously written by SaveCorpus. Fails with IOError on
/// filesystem problems and Internal on format corruption.
[[nodiscard]] StatusOr<Corpus> LoadCorpus(const std::string& path);

}  // namespace zombie

#endif  // ZOMBIE_DATA_SERIALIZATION_H_
