#include "data/cost_model.h"

#include <cmath>

#include "util/logging.h"

namespace zombie {

ConstantCostModel::ConstantCostModel(int64_t micros) : micros_(micros) {
  ZCHECK_GE(micros, 0);
}

int64_t ConstantCostModel::SampleCostMicros(size_t /*num_tokens*/,
                                            Rng* /*rng*/) const {
  return micros_;
}

LogNormalCostModel::LogNormalCostModel(double mean_micros, double sigma)
    : sigma_(sigma) {
  ZCHECK_GT(mean_micros, 0.0);
  ZCHECK_GE(sigma, 0.0);
  // E[exp(N(mu, sigma))] = exp(mu + sigma^2/2)  =>  mu = log(mean) - sigma^2/2.
  mu_ = std::log(mean_micros) - sigma * sigma / 2.0;
}

int64_t LogNormalCostModel::SampleCostMicros(size_t /*num_tokens*/,
                                             Rng* rng) const {
  double c = rng->NextLogNormal(mu_, sigma_);
  if (c < 1.0) c = 1.0;
  return static_cast<int64_t>(c);
}

LengthProportionalCostModel::LengthProportionalCostModel(
    double base_micros, double micros_per_token, double noise_sigma)
    : base_micros_(base_micros),
      micros_per_token_(micros_per_token),
      noise_sigma_(noise_sigma) {
  ZCHECK_GE(base_micros, 0.0);
  ZCHECK_GE(micros_per_token, 0.0);
  ZCHECK_GE(noise_sigma, 0.0);
}

int64_t LengthProportionalCostModel::SampleCostMicros(size_t num_tokens,
                                                      Rng* rng) const {
  double c = base_micros_ + micros_per_token_ * static_cast<double>(num_tokens);
  if (noise_sigma_ > 0.0) {
    c *= rng->NextLogNormal(-noise_sigma_ * noise_sigma_ / 2.0, noise_sigma_);
  }
  if (c < 1.0) c = 1.0;
  return static_cast<int64_t>(c);
}

}  // namespace zombie
