#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "data/cost_model.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {

Status SyntheticCorpusConfig::Validate() const {
  if (num_documents == 0) {
    return Status::InvalidArgument("num_documents must be positive");
  }
  if (topic_vocabulary_size == 0 || common_vocabulary_size == 0) {
    return Status::InvalidArgument("vocabulary slices must be non-empty");
  }
  if (positive_fraction < 0.0 || positive_fraction > 1.0) {
    return Status::InvalidArgument("positive_fraction must be in [0,1]");
  }
  if (label_noise < 0.0 || label_noise > 0.5) {
    return Status::InvalidArgument("label_noise must be in [0,0.5]");
  }
  if (topic_token_share < 0.0 || topic_token_share > 1.0) {
    return Status::InvalidArgument("topic_token_share must be in [0,1]");
  }
  if (domain_purity < 0.0 || domain_purity > 1.0) {
    return Status::InvalidArgument("domain_purity must be in [0,1]");
  }
  if (num_domains == 0) {
    return Status::InvalidArgument("num_domains must be positive");
  }
  if (mean_doc_length <= 0.0 || min_doc_length == 0) {
    return Status::InvalidArgument("document length knobs must be positive");
  }
  if (mean_extraction_cost_ms <= 0.0 || labeling_cost_ms < 0.0) {
    return Status::InvalidArgument("cost knobs must be positive");
  }
  if (label_rule == LabelRule::kTokenPresence &&
      (num_mention_tokens == 0 ||
       num_mention_tokens > topic_vocabulary_size)) {
    return Status::InvalidArgument(
        "num_mention_tokens must be in [1, topic_vocabulary_size]");
  }
  return Status::OK();
}

SyntheticCorpusGenerator::SyntheticCorpusGenerator(
    SyntheticCorpusConfig config)
    : config_(std::move(config)) {}

uint32_t SyntheticCorpusGenerator::CommonTokenId(size_t rank) const {
  ZCHECK_LT(rank, config_.common_vocabulary_size);
  return static_cast<uint32_t>(rank);
}

uint32_t SyntheticCorpusGenerator::TopicTokenId(size_t topic,
                                                size_t rank) const {
  ZCHECK_LT(topic, num_topics());
  ZCHECK_LT(rank, config_.topic_vocabulary_size);
  return static_cast<uint32_t>(config_.common_vocabulary_size +
                               topic * config_.topic_vocabulary_size + rank);
}

bool SyntheticCorpusGenerator::IsMentionToken(uint32_t token_id) const {
  uint32_t lo = TopicTokenId(0, 0);
  return token_id >= lo && token_id < lo + config_.num_mention_tokens;
}

Corpus SyntheticCorpusGenerator::Generate() const {
  ZCHECK_OK(config_.Validate());
  const SyntheticCorpusConfig& cfg = config_;
  Rng rng(cfg.seed);
  Corpus corpus;
  corpus.set_name(cfg.name);

  // --- Vocabulary layout: [common][topic 0][topic 1]... -------------------
  Vocabulary& vocab = corpus.mutable_vocabulary();
  for (size_t i = 0; i < cfg.common_vocabulary_size; ++i) {
    vocab.GetOrAdd(StrFormat("w%zu", i));
  }
  const size_t topics = num_topics();
  for (size_t t = 0; t < topics; ++t) {
    for (size_t i = 0; i < cfg.topic_vocabulary_size; ++i) {
      vocab.GetOrAdd(StrFormat("topic%zu_w%zu", t, i));
    }
  }
  vocab.Freeze();

  // --- Domains: each domain has a primary topic (round-robin), so topic-t
  // documents cluster on the domains affiliated with t when purity > 0. ----
  std::vector<std::vector<uint32_t>> topic_domains(topics);
  for (size_t d = 0; d < cfg.num_domains; ++d) {
    uint32_t id = corpus.AddDomain(StrFormat("site%zu.example.com", d));
    topic_domains[d % topics].push_back(id);
  }

  // --- Cost model ----------------------------------------------------------
  std::unique_ptr<CostModel> cost_model;
  if (cfg.length_proportional_cost) {
    double per_token = cfg.mean_extraction_cost_ms * 1e3 / cfg.mean_doc_length;
    cost_model = std::make_unique<LengthProportionalCostModel>(
        /*base_micros=*/cfg.mean_extraction_cost_ms * 1e3 * 0.1,
        /*micros_per_token=*/per_token * 0.9, cfg.extraction_cost_sigma);
  } else {
    cost_model = std::make_unique<LogNormalCostModel>(
        cfg.mean_extraction_cost_ms * 1e3, cfg.extraction_cost_sigma);
  }

  // Length distribution: lognormal with the requested mean.
  const double len_mu = std::log(cfg.mean_doc_length) -
                        cfg.doc_length_sigma * cfg.doc_length_sigma / 2.0;

  // --- Documents ------------------------------------------------------------
  for (size_t i = 0; i < cfg.num_documents; ++i) {
    Document doc;
    doc.id = i;

    // Latent topic. Topic 0 is the target.
    bool target = rng.NextBernoulli(cfg.positive_fraction);
    doc.topic = target ? 0
                       : static_cast<uint32_t>(
                             1 + rng.NextBelow(cfg.num_background_topics));

    // Domain: affiliated w.p. purity, else uniform.
    if (cfg.domain_purity > 0.0 && rng.NextBernoulli(cfg.domain_purity) &&
        !topic_domains[doc.topic].empty()) {
      const auto& pool = topic_domains[doc.topic];
      doc.domain = pool[rng.NextBelow(pool.size())];
    } else {
      doc.domain = static_cast<uint32_t>(rng.NextBelow(cfg.num_domains));
    }

    // Length.
    double len = rng.NextLogNormal(len_mu, cfg.doc_length_sigma);
    size_t length = std::max(cfg.min_doc_length, static_cast<size_t>(len));

    // Tokens: mixture of topic slice and common slice, both Zipfian.
    doc.tokens.reserve(length);
    for (size_t k = 0; k < length; ++k) {
      if (rng.NextBernoulli(cfg.topic_token_share)) {
        size_t rank = rng.NextZipf(cfg.topic_vocabulary_size,
                                   cfg.zipf_exponent);
        doc.tokens.push_back(TopicTokenId(doc.topic, rank));
      } else {
        size_t rank = rng.NextZipf(cfg.common_vocabulary_size,
                                   cfg.zipf_exponent);
        doc.tokens.push_back(CommonTokenId(rank));
      }
    }

    // Entity mentions: force one into most target-topic documents.
    if (cfg.label_rule == LabelRule::kTokenPresence && doc.topic == 0 &&
        rng.NextBernoulli(cfg.mention_inject_probability)) {
      size_t which = rng.NextBelow(cfg.num_mention_tokens);
      size_t pos = rng.NextBelow(doc.tokens.size());
      doc.tokens[pos] = TopicTokenId(0, which);
    }

    // Label.
    int32_t label = 0;
    switch (cfg.label_rule) {
      case LabelRule::kTopic:
        label = target ? 1 : 0;
        break;
      case LabelRule::kTokenPresence: {
        label = 0;
        for (uint32_t tok : doc.tokens) {
          if (IsMentionToken(tok)) {
            label = 1;
            break;
          }
        }
        break;
      }
    }
    if (cfg.label_noise > 0.0 && rng.NextBernoulli(cfg.label_noise)) {
      label = 1 - label;
    }
    doc.label = label;

    // Costs.
    doc.extraction_cost_micros = cost_model->SampleCostMicros(length, &rng);
    doc.labeling_cost_micros =
        static_cast<int64_t>(cfg.labeling_cost_ms * 1e3);
    doc.url = StrFormat("http://%s/page%zu.html",
                        corpus.DomainName(doc.domain).c_str(), i);

    corpus.AddDocument(std::move(doc));
  }

  ZCHECK_OK(corpus.Validate());
  return corpus;
}

}  // namespace zombie
