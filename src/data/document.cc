// Document is a passive struct; its definition lives entirely in the header.
// This file anchors the translation unit for the data library.
#include "data/document.h"
