#ifndef ZOMBIE_DATA_GENERATOR_H_
#define ZOMBIE_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/corpus.h"
#include "util/status.h"

namespace zombie {

/// How ground-truth labels are derived during generation.
enum class LabelRule {
  /// label == 1 iff the document's latent topic is the target topic (0).
  /// Models category classification ("is this a sports page?").
  kTopic,
  /// label == 1 iff the document contains at least one designated mention
  /// token. Models extraction-style tasks ("does this page mention X?").
  kTokenPresence,
};

/// Knobs of the synthetic document process. The process is:
///
///   topic   ~ target topic 0 w.p. positive_fraction, else a background topic
///   domain  ~ a domain affiliated with the topic w.p. domain_purity,
///             else uniform (domain_purity == 0 → metadata carries no signal)
///   length  ~ lognormal(mean_doc_length, doc_length_sigma), floored
///   token_i ~ topic-exclusive Zipf slice w.p. topic_token_share,
///             else common Zipf slice
///   label   per LabelRule, then flipped w.p. label_noise
///   cost    ~ lognormal(mean_extraction_cost_ms) or length-proportional
///
/// Two properties matter for reproducing the paper's shapes: items are
/// expensive relative to model updates (costs), and usefulness correlates
/// with groupable structure (domain affiliation, topic vocabulary). Both
/// are explicit knobs here.
struct SyntheticCorpusConfig {
  std::string name = "synthetic";
  size_t num_documents = 20000;
  uint64_t seed = 42;

  // Topic structure. Topic 0 is the target topic.
  size_t num_background_topics = 9;
  size_t topic_vocabulary_size = 800;
  size_t common_vocabulary_size = 8000;
  double topic_token_share = 0.35;
  double zipf_exponent = 1.1;

  // Label structure.
  LabelRule label_rule = LabelRule::kTopic;
  double positive_fraction = 0.05;
  double label_noise = 0.0;
  /// kTokenPresence only: the first `num_mention_tokens` ranks of the target
  /// topic slice count as entity mentions.
  size_t num_mention_tokens = 5;
  /// kTokenPresence only: probability that a target-topic document receives
  /// a forced mention (background docs can still pick mentions by chance
  /// through the Zipf slice, modelling incidental mentions).
  double mention_inject_probability = 0.9;

  // Domain structure.
  size_t num_domains = 100;
  double domain_purity = 0.8;

  // Document length.
  double mean_doc_length = 120.0;
  double doc_length_sigma = 0.4;
  size_t min_doc_length = 8;

  // Costs (virtual clock).
  double mean_extraction_cost_ms = 10.0;
  double extraction_cost_sigma = 0.6;
  bool length_proportional_cost = false;
  double labeling_cost_ms = 0.2;

  /// Validates knob ranges.
  [[nodiscard]] Status Validate() const;
};

/// Deterministically generates a corpus from the config (same config + seed
/// ⇒ identical corpus, bit for bit).
class SyntheticCorpusGenerator {
 public:
  explicit SyntheticCorpusGenerator(SyntheticCorpusConfig config);

  /// Builds the corpus. Aborts (ZCHECK) on an invalid config; call
  /// config.Validate() first for a recoverable error.
  Corpus Generate() const;

  const SyntheticCorpusConfig& config() const { return config_; }

  /// Token-id layout helpers (the vocabulary is laid out as
  /// [common slice][topic 0 slice][topic 1 slice]...).
  uint32_t CommonTokenId(size_t rank) const;
  uint32_t TopicTokenId(size_t topic, size_t rank) const;
  size_t num_topics() const { return config_.num_background_topics + 1; }

  /// True if `token_id` is a mention token under the kTokenPresence rule.
  bool IsMentionToken(uint32_t token_id) const;

 private:
  SyntheticCorpusConfig config_;
};

}  // namespace zombie

#endif  // ZOMBIE_DATA_GENERATOR_H_
