#ifndef ZOMBIE_DATA_ENTITY_GENERATOR_H_
#define ZOMBIE_DATA_ENTITY_GENERATOR_H_

#include "data/corpus.h"
#include "data/generator.h"

namespace zombie {

/// Task T2 "EntityExtract": extraction-style labeling — a page is positive
/// iff it mentions the target entity (one of a small set of mention
/// tokens). Mentions correlate with the target topic's vocabulary, so a
/// token-based inverted index over the corpus isolates the useful inputs
/// almost perfectly; content k-means also works, metadata less so (purity
/// is lower than WebCat: entities get mentioned off their home sites too).
struct EntityExtractOptions {
  size_t num_documents = 20000;
  /// Fraction of documents generated from the entity's home topic (the
  /// realized positive rate tracks this, plus incidental mentions).
  double target_topic_fraction = 0.05;
  size_t num_mention_tokens = 5;
  double mention_inject_probability = 0.9;
  double domain_purity = 0.5;
  double mean_extraction_cost_ms = 10.0;
  uint64_t seed = 43;
};

/// Builds the full generator config for an EntityExtract corpus.
SyntheticCorpusConfig MakeEntityExtractConfig(
    const EntityExtractOptions& options);

/// Generates an EntityExtract corpus directly.
Corpus GenerateEntityExtractCorpus(const EntityExtractOptions& options);

}  // namespace zombie

#endif  // ZOMBIE_DATA_ENTITY_GENERATOR_H_
