#include "bandit/epsilon_greedy.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

EpsilonGreedyPolicy::EpsilonGreedyPolicy(EpsilonGreedyOptions options)
    : options_(options), current_epsilon_(options.epsilon) {
  ZCHECK_GE(options.epsilon, 0.0);
  ZCHECK_LE(options.epsilon, 1.0);
  ZCHECK_GT(options.decay, 0.0);
  ZCHECK_LE(options.decay, 1.0);
}

void EpsilonGreedyPolicy::Reset(size_t /*num_arms*/) {
  current_epsilon_ = options_.epsilon;
}

size_t EpsilonGreedyPolicy::SelectArm(const ArmStats& stats, Rng* rng) {
  ZCHECK_GT(stats.num_active(), 0u);

  size_t choice;
  size_t unpulled = bandit_internal::FirstUnpulledActive(stats);
  if (unpulled < stats.num_arms()) {
    choice = unpulled;
  } else if (rng->NextBernoulli(current_epsilon_)) {
    choice = bandit_internal::PickUniformActive(stats, rng);
  } else {
    double best = -1.0;
    size_t best_arm = stats.num_arms();
    for (size_t a = 0; a < stats.num_arms(); ++a) {
      if (!stats.active(a)) continue;
      double m = stats.mean(a);
      if (m > best) {
        best = m;
        best_arm = a;
      }
    }
    ZCHECK_LT(best_arm, stats.num_arms());
    choice = best_arm;
  }
  if (options_.decay < 1.0) {
    current_epsilon_ =
        std::max(options_.min_epsilon, current_epsilon_ * options_.decay);
  }
  return choice;
}

std::string EpsilonGreedyPolicy::name() const {
  if (options_.decay < 1.0) {
    return StrFormat("egreedy(%.2f,decay)", options_.epsilon);
  }
  return StrFormat("egreedy(%.2f)", options_.epsilon);
}

std::unique_ptr<BanditPolicy> EpsilonGreedyPolicy::Clone() const {
  return std::make_unique<EpsilonGreedyPolicy>(options_);
}

}  // namespace zombie
