#ifndef ZOMBIE_BANDIT_EPSILON_GREEDY_H_
#define ZOMBIE_BANDIT_EPSILON_GREEDY_H_

#include "bandit/policy.h"

namespace zombie {

/// Hyperparameters for ε-greedy.
struct EpsilonGreedyOptions {
  /// Exploration probability.
  double epsilon = 0.1;
  /// Per-step multiplicative decay of epsilon (1.0 = constant ε). Decay
  /// suits stationary problems; the Zombie loop is non-stationary, so the
  /// default keeps ε constant and relies on windowed means.
  double decay = 1.0;
  /// Lower bound for decayed epsilon.
  double min_epsilon = 0.01;
};

/// ε-greedy over windowed reward means — the paper's workhorse policy.
/// Unpulled arms are tried first (optimistic initialization); then, with
/// probability ε, a uniform active arm; otherwise the active arm with the
/// best recency-weighted mean.
class EpsilonGreedyPolicy : public BanditPolicy {
 public:
  explicit EpsilonGreedyPolicy(EpsilonGreedyOptions options = {});

  void Reset(size_t num_arms) override;
  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  std::string name() const override;
  std::unique_ptr<BanditPolicy> Clone() const override;

  double current_epsilon() const { return current_epsilon_; }

 private:
  EpsilonGreedyOptions options_;
  double current_epsilon_;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_EPSILON_GREEDY_H_
