#include "bandit/sliding_ucb.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

SlidingUcbPolicy::SlidingUcbPolicy(SlidingUcbOptions options)
    : options_(options) {
  ZCHECK_GE(options.window, 2u);
  ZCHECK_GT(options.exploration, 0.0);
}

void SlidingUcbPolicy::Reset(size_t num_arms) {
  history_.clear();
  window_pulls_.assign(num_arms, 0);
  window_reward_.assign(num_arms, 0.0);
}

size_t SlidingUcbPolicy::SelectArm(const ArmStats& stats, Rng* /*rng*/) {
  ZCHECK_GT(stats.num_active(), 0u);
  ZCHECK_EQ(window_pulls_.size(), stats.num_arms()) << "Reset() not called";

  // Any active arm absent from the window has an infinite index: try it.
  // (This also covers never-pulled arms.)
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (stats.active(a) && window_pulls_[a] == 0) return a;
  }

  double horizon = static_cast<double>(
      std::min<size_t>(history_.size() + 1, options_.window));
  double log_h = std::log(std::max(horizon, 2.0));
  double best = -1.0;
  size_t best_arm = stats.num_arms();
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    double n = static_cast<double>(window_pulls_[a]);
    double mean = window_reward_[a] / n;
    double index = mean + options_.exploration * std::sqrt(log_h / n);
    if (index > best) {
      best = index;
      best_arm = a;
    }
  }
  ZCHECK_LT(best_arm, stats.num_arms());
  return best_arm;
}

void SlidingUcbPolicy::ScoreArms(const ArmStats& stats,
                                 std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  if (window_pulls_.size() != stats.num_arms()) return;  // before Reset()
  double horizon = static_cast<double>(
      std::min<size_t>(history_.size() + 1, options_.window));
  double log_h = std::log(std::max(horizon, 2.0));
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    if (window_pulls_[a] == 0) {
      (*out)[a] = 1e9;  // finite stand-in for the infinite index
      continue;
    }
    double n = static_cast<double>(window_pulls_[a]);
    (*out)[a] = window_reward_[a] / n +
                options_.exploration * std::sqrt(log_h / n);
  }
}

void SlidingUcbPolicy::Observe(size_t arm, double reward) {
  ZCHECK_LT(arm, window_pulls_.size());
  history_.emplace_back(arm, reward);
  ++window_pulls_[arm];
  window_reward_[arm] += reward;
  if (history_.size() > options_.window) {
    auto [old_arm, old_reward] = history_.front();
    history_.pop_front();
    --window_pulls_[old_arm];
    window_reward_[old_arm] -= old_reward;
  }
}

void SlidingUcbPolicy::OnArmAdded(size_t arm) {
  ZCHECK_EQ(arm, window_pulls_.size()) << "arms must be appended in order";
  window_pulls_.push_back(0);
  window_reward_.push_back(0.0);
}

std::string SlidingUcbPolicy::name() const {
  return StrFormat("swucb(%zu)", options_.window);
}

std::unique_ptr<BanditPolicy> SlidingUcbPolicy::Clone() const {
  return std::make_unique<SlidingUcbPolicy>(options_);
}

size_t SlidingUcbPolicy::WindowPulls(size_t arm) const {
  ZCHECK_LT(arm, window_pulls_.size());
  return window_pulls_[arm];
}

}  // namespace zombie
