#ifndef ZOMBIE_BANDIT_UCB1_H_
#define ZOMBIE_BANDIT_UCB1_H_

#include "bandit/policy.h"

namespace zombie {

/// UCB1 (Auer et al.): argmax of windowed mean + c * sqrt(2 ln N / n_i).
/// Unpulled active arms have an infinite index and are tried first.
struct Ucb1Options {
  /// Exploration coefficient; 1.0 is the textbook setting, smaller values
  /// exploit harder (useful when rewards are sparse {0,1}).
  double exploration = 1.0;
};

class Ucb1Policy : public BanditPolicy {
 public:
  explicit Ucb1Policy(Ucb1Options options = {});

  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// UCB indices (mean + exploration bonus); unpulled active arms report
  /// the optimistic sentinel 1e9 that mirrors their try-first priority.
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  std::string name() const override;
  std::unique_ptr<BanditPolicy> Clone() const override;

 private:
  Ucb1Options options_;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_UCB1_H_
