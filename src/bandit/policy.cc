#include "bandit/policy.h"

#include <algorithm>

#include "bandit/epsilon_greedy.h"
#include "bandit/exp3.h"
#include "bandit/round_robin.h"
#include "bandit/sliding_ucb.h"
#include "bandit/softmax.h"
#include "bandit/thompson.h"
#include "bandit/ucb1.h"
#include "bandit/uniform_random.h"
#include "util/logging.h"

namespace zombie {

void BanditPolicy::ScoreArms(const ArmStats& stats,
                             std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (stats.active(a)) (*out)[a] = stats.mean(a);
  }
}

void BanditPolicy::RankArms(const ArmStats& stats, size_t max_arms,
                            std::vector<size_t>* out) const {
  out->clear();
  if (max_arms == 0) return;
  std::vector<double> scores;
  ScoreArms(stats, &scores);
  for (size_t a = 0; a < scores.size(); ++a) {
    if (stats.active(a)) out->push_back(a);
  }
  size_t k = std::min(max_arms, out->size());
  // Deterministic order: score descending, index ascending on ties — the
  // ranking must not depend on sort implementation details.
  std::partial_sort(out->begin(),
                    out->begin() + static_cast<std::ptrdiff_t>(k), out->end(),
                    [&scores](size_t x, size_t y) {
                      if (scores[x] != scores[y]) return scores[x] > scores[y];
                      return x < y;
                    });
  out->resize(k);
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return "roundrobin";
    case PolicyKind::kUniformRandom:
      return "random";
    case PolicyKind::kEpsilonGreedy:
      return "egreedy";
    case PolicyKind::kUcb1:
      return "ucb1";
    case PolicyKind::kSlidingUcb:
      return "swucb";
    case PolicyKind::kThompson:
      return "thompson";
    case PolicyKind::kExp3:
      return "exp3";
    case PolicyKind::kSoftmax:
      return "softmax";
  }
  return "?";
}

std::unique_ptr<BanditPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kUniformRandom:
      return std::make_unique<UniformRandomPolicy>();
    case PolicyKind::kEpsilonGreedy:
      return std::make_unique<EpsilonGreedyPolicy>();
    case PolicyKind::kUcb1:
      return std::make_unique<Ucb1Policy>();
    case PolicyKind::kSlidingUcb:
      return std::make_unique<SlidingUcbPolicy>();
    case PolicyKind::kThompson:
      return std::make_unique<ThompsonPolicy>();
    case PolicyKind::kExp3:
      return std::make_unique<Exp3Policy>();
    case PolicyKind::kSoftmax:
      return std::make_unique<SoftmaxPolicy>();
  }
  ZCHECK(false) << "unknown policy kind";
  return nullptr;
}

namespace bandit_internal {

size_t PickUniformActive(const ArmStats& stats, Rng* rng) {
  ZCHECK_GT(stats.num_active(), 0u);
  size_t target = static_cast<size_t>(rng->NextBelow(stats.num_active()));
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    if (target == 0) return a;
    --target;
  }
  ZCHECK(false) << "active arm count inconsistent";
  return 0;
}

size_t FirstUnpulledActive(const ArmStats& stats) {
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (stats.active(a) && stats.pulls(a) == 0) return a;
  }
  return stats.num_arms();
}

}  // namespace bandit_internal
}  // namespace zombie
