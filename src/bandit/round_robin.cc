#include "bandit/round_robin.h"

#include <memory>

#include "util/logging.h"

namespace zombie {

void RoundRobinPolicy::Reset(size_t /*num_arms*/) { next_ = 0; }

size_t RoundRobinPolicy::SelectArm(const ArmStats& stats, Rng* /*rng*/) {
  ZCHECK_GT(stats.num_active(), 0u);
  size_t n = stats.num_arms();
  for (size_t step = 0; step < n; ++step) {
    size_t arm = next_ % n;
    next_ = (next_ + 1) % n;
    if (stats.active(arm)) return arm;
  }
  ZCHECK(false) << "no active arm despite num_active > 0";
  return 0;
}

void RoundRobinPolicy::ScoreArms(const ArmStats& stats,
                                 std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  size_t n = stats.num_arms();
  for (size_t step = 0; step < n; ++step) {
    size_t arm = (next_ + step) % n;
    if (stats.active(arm)) {
      (*out)[arm] = 1.0;
      return;
    }
  }
}

std::unique_ptr<BanditPolicy> RoundRobinPolicy::Clone() const {
  return std::make_unique<RoundRobinPolicy>();
}

}  // namespace zombie
