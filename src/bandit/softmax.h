#ifndef ZOMBIE_BANDIT_SOFTMAX_H_
#define ZOMBIE_BANDIT_SOFTMAX_H_

#include "bandit/policy.h"

namespace zombie {

/// Boltzmann exploration: P(arm) ∝ exp(mean / temperature) over active
/// arms, using the windowed means from ArmStats.
struct SoftmaxOptions {
  /// Lower temperature → greedier.
  double temperature = 0.1;
};

class SoftmaxPolicy : public BanditPolicy {
 public:
  explicit SoftmaxPolicy(SoftmaxOptions options = {});

  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// Normalized Boltzmann choice probabilities over active arms.
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  std::string name() const override;
  std::unique_ptr<BanditPolicy> Clone() const override;

 private:
  SoftmaxOptions options_;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_SOFTMAX_H_
