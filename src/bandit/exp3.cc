#include "bandit/exp3.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"

namespace zombie {

Exp3Policy::Exp3Policy(Exp3Options options) : options_(options) {
  ZCHECK_GT(options.gamma, 0.0);
  ZCHECK_LE(options.gamma, 1.0);
}

void Exp3Policy::Reset(size_t num_arms) {
  weights_.assign(num_arms, 1.0);
  last_probability_ = 1.0;
  last_arm_ = 0;
  num_active_last_ = num_arms;
}

size_t Exp3Policy::SelectArm(const ArmStats& stats, Rng* rng) {
  ZCHECK_GT(stats.num_active(), 0u);
  ZCHECK_EQ(weights_.size(), stats.num_arms()) << "Reset() not called";

  // Renormalize so the max weight is 1 (prevents overflow over long runs).
  double max_w = 0.0;
  for (size_t a = 0; a < weights_.size(); ++a) {
    if (stats.active(a)) max_w = std::max(max_w, weights_[a]);
  }
  if (max_w > 1e6) {
    for (double& w : weights_) w /= max_w;
  }

  double total = 0.0;
  size_t active = 0;
  for (size_t a = 0; a < weights_.size(); ++a) {
    if (stats.active(a)) {
      total += weights_[a];
      ++active;
    }
  }
  num_active_last_ = active;
  ZCHECK_GT(total, 0.0);

  std::vector<double> probs(weights_.size(), 0.0);
  double k = static_cast<double>(active);
  for (size_t a = 0; a < weights_.size(); ++a) {
    if (!stats.active(a)) continue;
    probs[a] = (1.0 - options_.gamma) * weights_[a] / total +
               options_.gamma / k;
  }
  size_t arm = rng->NextDiscrete(probs);
  if (arm >= probs.size()) arm = bandit_internal::PickUniformActive(stats, rng);
  last_arm_ = arm;
  last_probability_ = std::max(probs[arm], 1e-12);
  return arm;
}

void Exp3Policy::ScoreArms(const ArmStats& stats,
                           std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  if (weights_.size() != stats.num_arms()) return;  // before Reset()
  double total = 0.0;
  size_t active = 0;
  for (size_t a = 0; a < weights_.size(); ++a) {
    if (stats.active(a)) {
      total += weights_[a];
      ++active;
    }
  }
  if (active == 0 || total <= 0.0) return;
  double k = static_cast<double>(active);
  for (size_t a = 0; a < weights_.size(); ++a) {
    if (!stats.active(a)) continue;
    (*out)[a] = (1.0 - options_.gamma) * weights_[a] / total +
                options_.gamma / k;
  }
}

void Exp3Policy::Observe(size_t arm, double reward) {
  ZCHECK_LT(arm, weights_.size());
  // Importance-weighted reward estimate for the played arm only.
  double r = std::clamp(reward, 0.0, 1.0);
  double estimate = r / last_probability_;
  double k = static_cast<double>(std::max<size_t>(num_active_last_, 1));
  weights_[arm] *= std::exp(options_.gamma * estimate / k);
}

void Exp3Policy::OnArmAdded(size_t arm) {
  ZCHECK_EQ(arm, weights_.size()) << "arms must be appended in order";
  double max_w = 0.0;
  for (double w : weights_) max_w = std::max(max_w, w);
  weights_.push_back(max_w > 0.0 ? max_w : 1.0);
}

std::unique_ptr<BanditPolicy> Exp3Policy::Clone() const {
  return std::make_unique<Exp3Policy>(options_);
}

}  // namespace zombie
