#ifndef ZOMBIE_BANDIT_UNIFORM_RANDOM_H_
#define ZOMBIE_BANDIT_UNIFORM_RANDOM_H_

#include "bandit/policy.h"

namespace zombie {

/// Uniform random choice among active arms, ignoring rewards. Combined
/// with any grouping, this reproduces the random-order full-scan baseline
/// in expectation.
class UniformRandomPolicy : public BanditPolicy {
 public:
  UniformRandomPolicy() = default;

  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// Uniform probability 1/num_active on each active arm.
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  std::string name() const override { return "random"; }
  std::unique_ptr<BanditPolicy> Clone() const override;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_UNIFORM_RANDOM_H_
