#ifndef ZOMBIE_BANDIT_ROUND_ROBIN_H_
#define ZOMBIE_BANDIT_ROUND_ROBIN_H_

#include "bandit/policy.h"

namespace zombie {

/// Cycles through active arms in order, ignoring rewards. With a single
/// group this is exactly a sequential scan of the (shuffled) corpus, which
/// makes it double as the paper's scan baseline.
class RoundRobinPolicy : public BanditPolicy {
 public:
  RoundRobinPolicy() = default;

  void Reset(size_t num_arms) override;
  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// 1.0 on the arm the next SelectArm will return, 0 elsewhere.
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  std::string name() const override { return "roundrobin"; }
  std::unique_ptr<BanditPolicy> Clone() const override;

 private:
  size_t next_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_ROUND_ROBIN_H_
