#include "bandit/thompson.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace zombie {

ThompsonPolicy::ThompsonPolicy(ThompsonOptions options) : options_(options) {
  ZCHECK_GT(options.prior_alpha, 0.0);
  ZCHECK_GT(options.prior_beta, 0.0);
  ZCHECK_GT(options.discount, 0.0);
  ZCHECK_LE(options.discount, 1.0);
}

void ThompsonPolicy::Reset(size_t num_arms) {
  success_.assign(num_arms, 0.0);
  failure_.assign(num_arms, 0.0);
}

size_t ThompsonPolicy::SelectArm(const ArmStats& stats, Rng* rng) {
  ZCHECK_GT(stats.num_active(), 0u);
  ZCHECK_EQ(success_.size(), stats.num_arms()) << "Reset() not called";
  double best = -1.0;
  size_t best_arm = stats.num_arms();
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    double draw = rng->NextBeta(options_.prior_alpha + success_[a],
                                options_.prior_beta + failure_[a]);
    if (draw > best) {
      best = draw;
      best_arm = a;
    }
  }
  ZCHECK_LT(best_arm, stats.num_arms());
  return best_arm;
}

void ThompsonPolicy::ScoreArms(const ArmStats& stats,
                               std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  if (success_.size() != stats.num_arms()) return;  // before Reset()
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    double alpha = options_.prior_alpha + success_[a];
    double beta = options_.prior_beta + failure_[a];
    (*out)[a] = alpha / (alpha + beta);
  }
}

void ThompsonPolicy::Observe(size_t arm, double reward) {
  ZCHECK_LT(arm, success_.size());
  double r = std::clamp(reward, 0.0, 1.0);
  if (options_.discount < 1.0) {
    for (size_t a = 0; a < success_.size(); ++a) {
      success_[a] *= options_.discount;
      failure_[a] *= options_.discount;
    }
  }
  success_[arm] += r;
  failure_[arm] += 1.0 - r;
}

void ThompsonPolicy::OnArmAdded(size_t arm) {
  ZCHECK_EQ(arm, success_.size()) << "arms must be appended in order";
  success_.push_back(0.0);
  failure_.push_back(0.0);
}

std::unique_ptr<BanditPolicy> ThompsonPolicy::Clone() const {
  return std::make_unique<ThompsonPolicy>(options_);
}

}  // namespace zombie
