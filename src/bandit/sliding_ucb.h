#ifndef ZOMBIE_BANDIT_SLIDING_UCB_H_
#define ZOMBIE_BANDIT_SLIDING_UCB_H_

#include <deque>
#include <vector>

#include "bandit/policy.h"

namespace zombie {

/// Sliding-window UCB (Garivier & Moulines): UCB indices computed only
/// over the last `window` pulls across all arms, so the policy tracks
/// non-stationary arm values — a natural fit for the Zombie loop, where a
/// group's usefulness decays as its good items are consumed.
struct SlidingUcbOptions {
  /// Horizon of pulls considered (across all arms).
  size_t window = 200;
  /// Exploration coefficient.
  double exploration = 0.6;
};

class SlidingUcbPolicy : public BanditPolicy {
 public:
  explicit SlidingUcbPolicy(SlidingUcbOptions options = {});

  void Reset(size_t num_arms) override;
  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// Windowed UCB indices; active arms absent from the window report the
  /// optimistic sentinel 1e9 (they are tried first).
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  void Observe(size_t arm, double reward) override;
  /// Appends zeroed window counters: an arm with no pulls in the window
  /// has an infinite index, so a newborn arm is tried at the next
  /// opportunity — no extra optimism needed.
  void OnArmAdded(size_t arm) override;
  std::string name() const override;
  std::unique_ptr<BanditPolicy> Clone() const override;

  /// Pulls of `arm` currently inside the window (testing accessor).
  size_t WindowPulls(size_t arm) const;

 private:
  SlidingUcbOptions options_;
  /// (arm, reward) of the last `window` pulls.
  std::deque<std::pair<size_t, double>> history_;
  std::vector<size_t> window_pulls_;
  std::vector<double> window_reward_;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_SLIDING_UCB_H_
