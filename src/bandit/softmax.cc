#include "bandit/softmax.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

SoftmaxPolicy::SoftmaxPolicy(SoftmaxOptions options) : options_(options) {
  ZCHECK_GT(options.temperature, 0.0);
}

size_t SoftmaxPolicy::SelectArm(const ArmStats& stats, Rng* rng) {
  ZCHECK_GT(stats.num_active(), 0u);
  // Stabilize exp() by subtracting the max mean.
  double max_mean = -1e300;
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (stats.active(a)) max_mean = std::max(max_mean, stats.mean(a));
  }
  std::vector<double> probs(stats.num_arms(), 0.0);
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    probs[a] = std::exp((stats.mean(a) - max_mean) / options_.temperature);
  }
  size_t arm = rng->NextDiscrete(probs);
  if (arm >= probs.size()) arm = bandit_internal::PickUniformActive(stats, rng);
  return arm;
}

void SoftmaxPolicy::ScoreArms(const ArmStats& stats,
                              std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  double max_mean = -1e300;
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (stats.active(a)) max_mean = std::max(max_mean, stats.mean(a));
  }
  double total = 0.0;
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    (*out)[a] = std::exp((stats.mean(a) - max_mean) / options_.temperature);
    total += (*out)[a];
  }
  if (total <= 0.0) return;
  for (size_t a = 0; a < stats.num_arms(); ++a) (*out)[a] /= total;
}

std::string SoftmaxPolicy::name() const {
  return StrFormat("softmax(%.2f)", options_.temperature);
}

std::unique_ptr<BanditPolicy> SoftmaxPolicy::Clone() const {
  return std::make_unique<SoftmaxPolicy>(options_);
}

}  // namespace zombie
