#include "bandit/ucb1.h"

#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

Ucb1Policy::Ucb1Policy(Ucb1Options options) : options_(options) {
  ZCHECK_GT(options.exploration, 0.0);
}

size_t Ucb1Policy::SelectArm(const ArmStats& stats, Rng* /*rng*/) {
  ZCHECK_GT(stats.num_active(), 0u);
  size_t unpulled = bandit_internal::FirstUnpulledActive(stats);
  if (unpulled < stats.num_arms()) return unpulled;

  double log_n = std::log(static_cast<double>(stats.total_pulls()) + 1.0);
  double best = -1.0;
  size_t best_arm = stats.num_arms();
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    double bonus = options_.exploration *
                   std::sqrt(2.0 * log_n /
                             static_cast<double>(stats.pulls(a)));
    double index = stats.mean(a) + bonus;
    if (index > best) {
      best = index;
      best_arm = a;
    }
  }
  ZCHECK_LT(best_arm, stats.num_arms());
  return best_arm;
}

void Ucb1Policy::ScoreArms(const ArmStats& stats,
                           std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  double log_n = std::log(static_cast<double>(stats.total_pulls()) + 1.0);
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (!stats.active(a)) continue;
    if (stats.pulls(a) == 0) {
      (*out)[a] = 1e9;  // finite stand-in for the infinite index
      continue;
    }
    (*out)[a] = stats.mean(a) +
                options_.exploration *
                    std::sqrt(2.0 * log_n /
                              static_cast<double>(stats.pulls(a)));
  }
}

std::string Ucb1Policy::name() const {
  return StrFormat("ucb1(%.2f)", options_.exploration);
}

std::unique_ptr<BanditPolicy> Ucb1Policy::Clone() const {
  return std::make_unique<Ucb1Policy>(options_);
}

}  // namespace zombie
