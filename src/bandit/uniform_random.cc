#include "bandit/uniform_random.h"

#include <memory>

namespace zombie {

size_t UniformRandomPolicy::SelectArm(const ArmStats& stats, Rng* rng) {
  return bandit_internal::PickUniformActive(stats, rng);
}

std::unique_ptr<BanditPolicy> UniformRandomPolicy::Clone() const {
  return std::make_unique<UniformRandomPolicy>();
}

}  // namespace zombie
