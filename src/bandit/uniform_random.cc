#include "bandit/uniform_random.h"

#include <memory>

namespace zombie {

size_t UniformRandomPolicy::SelectArm(const ArmStats& stats, Rng* rng) {
  return bandit_internal::PickUniformActive(stats, rng);
}

void UniformRandomPolicy::ScoreArms(const ArmStats& stats,
                                    std::vector<double>* out) const {
  out->assign(stats.num_arms(), 0.0);
  if (stats.num_active() == 0) return;
  double p = 1.0 / static_cast<double>(stats.num_active());
  for (size_t a = 0; a < stats.num_arms(); ++a) {
    if (stats.active(a)) (*out)[a] = p;
  }
}

std::unique_ptr<BanditPolicy> UniformRandomPolicy::Clone() const {
  return std::make_unique<UniformRandomPolicy>();
}

}  // namespace zombie
