#ifndef ZOMBIE_BANDIT_THOMPSON_H_
#define ZOMBIE_BANDIT_THOMPSON_H_

#include <vector>

#include "bandit/policy.h"

namespace zombie {

/// Thompson sampling with Beta posteriors over [0,1]-valued rewards.
/// Fractional rewards contribute fractional pseudo-counts. A per-step
/// discount keeps the posterior tracking non-stationary group value.
struct ThompsonOptions {
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  /// Multiplied into every arm's pseudo-counts at each Observe; < 1.0
  /// forgets old evidence (0.99 halves evidence every ~69 steps).
  double discount = 0.995;
};

class ThompsonPolicy : public BanditPolicy {
 public:
  explicit ThompsonPolicy(ThompsonOptions options = {});

  void Reset(size_t num_arms) override;
  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// Beta posterior means (alpha+s)/(alpha+beta+s+f) — the expectation the
  /// per-pull draws in SelectArm scatter around.
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  void Observe(size_t arm, double reward) override;
  /// Appends an arm at the bare prior (zero pseudo-counts): the widest
  /// posterior in the pool, so Thompson's own draws explore it promptly.
  void OnArmAdded(size_t arm) override;
  std::string name() const override { return "thompson"; }
  std::unique_ptr<BanditPolicy> Clone() const override;

 private:
  ThompsonOptions options_;
  std::vector<double> success_;  // pseudo successes per arm
  std::vector<double> failure_;  // pseudo failures per arm
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_THOMPSON_H_
