#ifndef ZOMBIE_BANDIT_ARM_STATS_H_
#define ZOMBIE_BANDIT_ARM_STATS_H_

#include <cstddef>
#include <vector>

#include "util/stats.h"

namespace zombie {

/// How per-arm reward estimates are aggregated.
struct ArmStatsOptions {
  /// Sliding-window size for the reward mean; 0 disables windowing.
  /// Non-stationarity is intrinsic here: a group's usefulness *decays* as
  /// its good items get consumed, so a recency-weighted estimate tracks
  /// the current value of an arm much better than the lifetime mean.
  size_t window = 50;
  /// Exponential discount per observation (1.0 = off). When both window
  /// and discount are set, the discounted mean wins.
  double discount = 1.0;
  /// Estimate reported for never-pulled arms (optimistic initialization:
  /// policies that exploit means will still try everything once).
  double prior_mean = 1.0;
};

/// Book-keeping shared by all bandit policies: pulls, rewards, and the
/// active/exhausted flag per arm (an arm dies when its index group runs
/// out of unprocessed items).
class ArmStats {
 public:
  ArmStats(size_t num_arms, ArmStatsOptions options = {});

  /// Records a reward for an arm (also counts the pull).
  void Record(size_t arm, double reward);

  /// Marks an arm exhausted; policies must not select it again.
  void Deactivate(size_t arm);

  /// Appends a fresh, active arm (streaming ingestion: a group split or a
  /// new group); returns its index. The caller must notify the policy via
  /// BanditPolicy::OnArmAdded immediately after.
  size_t AddArm();

  /// Revives an exhausted arm whose group received new documents. No-op
  /// when already active; reward history is kept (the arm is the same
  /// group, only its supply was interrupted).
  void Reactivate(size_t arm);

  bool active(size_t arm) const;
  size_t num_arms() const { return arms_.size(); }
  size_t num_active() const { return num_active_; }
  size_t total_pulls() const { return total_pulls_; }

  size_t pulls(size_t arm) const;
  /// Recency-weighted reward estimate per the options (prior_mean before
  /// the first pull).
  double mean(size_t arm) const;
  /// Plain lifetime mean (prior_mean before the first pull).
  double lifetime_mean(size_t arm) const;
  double total_reward(size_t arm) const;

  const ArmStatsOptions& options() const { return options_; }

 private:
  struct Arm {
    size_t pulls = 0;
    double total_reward = 0.0;
    WindowedMean windowed;
    DiscountedMean discounted;
    bool active = true;

    Arm(size_t window, double discount)
        : windowed(window), discounted(discount) {}
  };

  ArmStatsOptions options_;
  std::vector<Arm> arms_;
  size_t num_active_;
  size_t total_pulls_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_ARM_STATS_H_
