#ifndef ZOMBIE_BANDIT_POLICY_H_
#define ZOMBIE_BANDIT_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "bandit/arm_stats.h"
#include "util/random.h"

namespace zombie {

/// Multi-armed bandit selection strategy over index groups.
///
/// Contract: SelectArm is called only when stats.num_active() > 0 and must
/// return an active arm. Stateless policies read everything from ArmStats;
/// stateful ones (Exp3, Thompson) additionally track internal state via
/// Observe()/Reset().
class BanditPolicy {
 public:
  virtual ~BanditPolicy() = default;

  /// Prepares internal state for a run over `num_arms` arms. The engine
  /// calls this exactly once before the first SelectArm.
  virtual void Reset(size_t num_arms) { (void)num_arms; }

  /// Picks an active arm.
  virtual size_t SelectArm(const ArmStats& stats, Rng* rng) = 0;

  /// Reward notification for the arm just played (after ArmStats::Record).
  virtual void Observe(size_t arm, double reward) {
    (void)arm;
    (void)reward;
  }

  /// A new arm appeared mid-run (streaming ingestion: a group split or a
  /// brand-new group). Called after ArmStats::AddArm, so `arm` ==
  /// stats.num_arms() - 1 and per-arm state must grow to match before the
  /// next SelectArm/ScoreArms. The default no-op suits policies whose only
  /// per-arm state lives in ArmStats; stateful policies (Exp3, Thompson,
  /// SlidingUcb) override to append an entry that keeps ScoreArms/RankArms
  /// deterministic — no RNG draws allowed here, for the same reason as
  /// ScoreArms.
  virtual void OnArmAdded(size_t arm) { (void)arm; }

  virtual std::string name() const = 0;

  /// Diagnostic view of the policy's current per-arm preference — the
  /// quantity SelectArm ranks by: reward means (default), UCB indices,
  /// posterior means, or choice probabilities. Resizes `out` to
  /// stats.num_arms(); inactive arms score 0. Must be cheap, must not
  /// mutate policy state, and must not draw randomness (the observability
  /// layer calls this per pull without touching the run's RNG stream —
  /// the decision-log determinism tests depend on that).
  virtual void ScoreArms(const ArmStats& stats, std::vector<double>* out) const;

  /// Indices of the top `max_arms` *active* arms by ScoreArms() score,
  /// best first, ties broken toward the lower index. This is the
  /// speculation hook: the prefetcher asks "which arms is the policy most
  /// likely to pull next" without touching the run's RNG stream, so it
  /// inherits ScoreArms' constraints — cheap, no mutation, no randomness.
  /// `out` is cleared and holds at most min(max_arms, num active) entries.
  void RankArms(const ArmStats& stats, size_t max_arms,
                std::vector<size_t>* out) const;

  /// Fresh policy with identical hyperparameters and cleared state.
  virtual std::unique_ptr<BanditPolicy> Clone() const = 0;
};

/// Identifier for the shipped policies (bench/table axes).
enum class PolicyKind {
  kRoundRobin,
  kUniformRandom,
  kEpsilonGreedy,
  kUcb1,
  kSlidingUcb,
  kThompson,
  kExp3,
  kSoftmax,
};

const char* PolicyKindName(PolicyKind kind);

/// Instantiates a policy with its default hyperparameters.
std::unique_ptr<BanditPolicy> MakePolicy(PolicyKind kind);

namespace bandit_internal {
/// Uniform choice among active arms; shared by several policies.
/// Precondition: stats.num_active() > 0.
size_t PickUniformActive(const ArmStats& stats, Rng* rng);

/// First active arm with zero pulls, or num_arms() when all active arms
/// have been pulled (optimistic initialization pass).
size_t FirstUnpulledActive(const ArmStats& stats);
}  // namespace bandit_internal

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_POLICY_H_
