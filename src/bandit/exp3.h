#ifndef ZOMBIE_BANDIT_EXP3_H_
#define ZOMBIE_BANDIT_EXP3_H_

#include <vector>

#include "bandit/policy.h"

namespace zombie {

/// Exp3 (Auer et al.) for adversarial/non-stationary rewards: exponential
/// weights with importance-weighted updates. Rewards must be in [0,1]
/// (clamped). Weight overflow is prevented by periodic renormalization.
struct Exp3Options {
  /// Exploration mix gamma in (0,1].
  double gamma = 0.1;
};

class Exp3Policy : public BanditPolicy {
 public:
  explicit Exp3Policy(Exp3Options options = {});

  void Reset(size_t num_arms) override;
  size_t SelectArm(const ArmStats& stats, Rng* rng) override;
  /// The gamma-mixed choice probabilities SelectArm would draw from.
  void ScoreArms(const ArmStats& stats, std::vector<double>* out)
      const override;
  void Observe(size_t arm, double reward) override;
  /// Appends the new arm at the maximum active weight: a newborn arm
  /// starts as the (joint) most attractive choice, the exponential-weights
  /// analogue of optimistic initialization — and deterministic, unlike
  /// seeding at the mean.
  void OnArmAdded(size_t arm) override;
  std::string name() const override { return "exp3"; }
  std::unique_ptr<BanditPolicy> Clone() const override;

 private:
  Exp3Options options_;
  std::vector<double> weights_;
  /// Probability the last SelectArm assigned to the arm it returned; needed
  /// by the importance-weighted update in Observe.
  double last_probability_ = 1.0;
  size_t last_arm_ = 0;
  size_t num_active_last_ = 1;
};

}  // namespace zombie

#endif  // ZOMBIE_BANDIT_EXP3_H_
