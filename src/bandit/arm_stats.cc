#include "bandit/arm_stats.h"

#include "util/logging.h"

namespace zombie {

ArmStats::ArmStats(size_t num_arms, ArmStatsOptions options)
    : options_(options), num_active_(num_arms) {
  ZCHECK_GE(num_arms, 1u);
  ZCHECK_GT(options.discount, 0.0);
  ZCHECK_LE(options.discount, 1.0);
  arms_.reserve(num_arms);
  for (size_t i = 0; i < num_arms; ++i) {
    arms_.emplace_back(options.window, options.discount);
  }
}

void ArmStats::Record(size_t arm, double reward) {
  ZCHECK_LT(arm, arms_.size());
  Arm& a = arms_[arm];
  ++a.pulls;
  ++total_pulls_;
  a.total_reward += reward;
  a.windowed.Add(reward);
  a.discounted.Add(reward);
}

void ArmStats::Deactivate(size_t arm) {
  ZCHECK_LT(arm, arms_.size());
  if (arms_[arm].active) {
    arms_[arm].active = false;
    --num_active_;
  }
}

size_t ArmStats::AddArm() {
  arms_.emplace_back(options_.window, options_.discount);
  ++num_active_;
  return arms_.size() - 1;
}

void ArmStats::Reactivate(size_t arm) {
  ZCHECK_LT(arm, arms_.size());
  if (!arms_[arm].active) {
    arms_[arm].active = true;
    ++num_active_;
  }
}

bool ArmStats::active(size_t arm) const {
  ZCHECK_LT(arm, arms_.size());
  return arms_[arm].active;
}

size_t ArmStats::pulls(size_t arm) const {
  ZCHECK_LT(arm, arms_.size());
  return arms_[arm].pulls;
}

double ArmStats::mean(size_t arm) const {
  ZCHECK_LT(arm, arms_.size());
  const Arm& a = arms_[arm];
  if (a.pulls == 0) return options_.prior_mean;
  if (options_.discount < 1.0) return a.discounted.mean();
  if (options_.window > 0) return a.windowed.mean();
  return a.total_reward / static_cast<double>(a.pulls);
}

double ArmStats::lifetime_mean(size_t arm) const {
  ZCHECK_LT(arm, arms_.size());
  const Arm& a = arms_[arm];
  if (a.pulls == 0) return options_.prior_mean;
  return a.total_reward / static_cast<double>(a.pulls);
}

double ArmStats::total_reward(size_t arm) const {
  ZCHECK_LT(arm, arms_.size());
  return arms_[arm].total_reward;
}

}  // namespace zombie
