#ifndef ZOMBIE_TEXT_TERM_COUNTS_H_
#define ZOMBIE_TEXT_TERM_COUNTS_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace zombie {

/// Sparse (index, weight) pairs sorted by index — the interchange format
/// between the text layer and the ML layer's SparseVector (featureeng does
/// the conversion so that text/ and ml/ stay independent).
using TermCounts = std::vector<std::pair<uint32_t, double>>;

/// Aggregates raw token ids into sorted (id, count) pairs.
inline TermCounts CountTokenIds(const std::vector<uint32_t>& token_ids) {
  TermCounts counts;
  if (token_ids.empty()) return counts;
  std::vector<uint32_t> sorted = token_ids;
  std::sort(sorted.begin(), sorted.end());
  counts.reserve(sorted.size() / 2 + 1);
  uint32_t current = sorted[0];
  double run = 0.0;
  for (uint32_t id : sorted) {
    if (id != current) {
      counts.emplace_back(current, run);
      current = id;
      run = 0.0;
    }
    run += 1.0;
  }
  counts.emplace_back(current, run);
  return counts;
}

/// Merges duplicate indices (summing weights) and sorts by index.
inline void NormalizeTermCounts(TermCounts* counts) {
  std::sort(counts->begin(), counts->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t w = 0;
  for (size_t r = 0; r < counts->size(); ++r) {
    if (w > 0 && (*counts)[w - 1].first == (*counts)[r].first) {
      (*counts)[w - 1].second += (*counts)[r].second;
    } else {
      (*counts)[w++] = (*counts)[r];
    }
  }
  counts->resize(w);
}

}  // namespace zombie

#endif  // ZOMBIE_TEXT_TERM_COUNTS_H_
