#ifndef ZOMBIE_TEXT_TOKENIZER_H_
#define ZOMBIE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace zombie {

/// Options controlling tokenization of raw text.
struct TokenizerOptions {
  /// ASCII-lowercase tokens before emitting.
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
  /// Drop tokens longer than this many characters (0 = no limit).
  size_t max_token_length = 64;
  /// Treat digits as token characters (else digits split tokens).
  bool keep_digits = true;
};

/// Splits raw text into word tokens on non-alphanumeric boundaries.
///
/// This is the text front end for user-supplied raw documents (see the
/// custom_feature example); the synthetic corpus generators emit token ids
/// directly and skip this stage.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `text` into owned token strings.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Appends tokens to `out` without clearing it; returns how many were
  /// appended. Useful when concatenating fields of a document.
  size_t TokenizeAppend(std::string_view text,
                        std::vector<std::string>* out) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsTokenChar(unsigned char c) const;

  TokenizerOptions options_;
};

/// Produces word n-grams ("a_b", "b_c" for n=2) from a token sequence.
/// n must be >= 1; n == 1 returns a copy of the input.
std::vector<std::string> WordNgrams(const std::vector<std::string>& tokens,
                                    size_t n, char joiner = '_');

}  // namespace zombie

#endif  // ZOMBIE_TEXT_TOKENIZER_H_
