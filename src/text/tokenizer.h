#ifndef ZOMBIE_TEXT_TOKENIZER_H_
#define ZOMBIE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace zombie {

/// Options controlling tokenization of raw text.
struct TokenizerOptions {
  /// ASCII-lowercase tokens before emitting.
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
  /// Drop tokens longer than this many characters (0 = no limit).
  size_t max_token_length = 64;
  /// Treat digits as token characters (else digits split tokens).
  bool keep_digits = true;
};

/// Reusable scratch storage for the zero-allocation token path. One
/// TokenizeViews call fills it with string_views over an internal char
/// arena; the views stay valid until the next TokenizeViews/Clear on the
/// same buffer (or its destruction). Reusing one TokenBuffer across
/// documents amortizes both allocations to zero once the buffer has grown
/// to the largest document seen.
class TokenBuffer {
 public:
  const std::vector<std::string_view>& views() const { return views_; }
  size_t size() const { return views_.size(); }
  bool empty() const { return views_.empty(); }
  std::string_view operator[](size_t i) const { return views_[i]; }

  void Clear() {
    chars_.clear();
    views_.clear();
  }

 private:
  friend class Tokenizer;
  std::string chars_;  // normalized token bytes, concatenated
  std::vector<std::string_view> views_;
};

/// Splits raw text into word tokens on non-alphanumeric boundaries.
///
/// This is the text front end for user-supplied raw documents (see the
/// custom_feature example); the synthetic corpus generators emit token ids
/// directly and skip this stage.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `text` into owned token strings.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Appends tokens to `out` without clearing it; returns how many were
  /// appended. Useful when concatenating fields of a document.
  size_t TokenizeAppend(std::string_view text,
                        std::vector<std::string>* out) const;

  /// Zero-allocation token path: clears `buffer` and fills it with views
  /// of the tokens of `text` (identical token sequence to Tokenize()).
  /// Returns buffer->views(). No per-token heap traffic — token bytes land
  /// in the buffer's arena, which is reserved to text.size() up front so
  /// the views never dangle from a mid-call reallocation.
  const std::vector<std::string_view>& TokenizeViews(
      std::string_view text, TokenBuffer* buffer) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  bool IsTokenChar(unsigned char c) const;

  TokenizerOptions options_;
  // Per-byte classification/normalization table built once at construction:
  // 0 for separator bytes, else the byte the token should contain (already
  // lowercased when options_.lowercase). TokenizeViews reads this instead of
  // calling the <cctype> functions per character — those go through a
  // locale-table indirection on every call. Classification semantics are
  // identical to IsTokenChar()/std::tolower() in the default "C" locale
  // (the program never calls setlocale); the text round-trip tests assert
  // TokenizeViews and Tokenize agree token-for-token.
  unsigned char token_char_map_[256];
};

/// Produces word n-grams ("a_b", "b_c" for n=2) from a token sequence.
/// n must be >= 1; n == 1 returns a copy of the input.
std::vector<std::string> WordNgrams(const std::vector<std::string>& tokens,
                                    size_t n, char joiner = '_');

}  // namespace zombie

#endif  // ZOMBIE_TEXT_TOKENIZER_H_
