#include "text/hashing_vectorizer.h"

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

HashingVectorizer::HashingVectorizer(uint32_t dimension, bool signed_hash,
                                     uint64_t salt)
    : dimension_(dimension), signed_hash_(signed_hash), salt_(salt) {
  ZCHECK_GT(dimension, 0u);
}

uint32_t HashingVectorizer::IndexOf(const std::string& token) const {
  uint64_t h = HashCombine(HashBytes(token.data(), token.size()), salt_);
  return static_cast<uint32_t>(h % dimension_);
}

TermCounts HashingVectorizer::Transform(
    const std::vector<std::string>& tokens) const {
  TermCounts counts;
  counts.reserve(tokens.size());
  for (const auto& tok : tokens) {
    uint64_t h = HashCombine(HashBytes(tok.data(), tok.size()), salt_);
    uint32_t idx = static_cast<uint32_t>(h % dimension_);
    double sign = 1.0;
    if (signed_hash_ && ((h >> 32) & 1) != 0) sign = -1.0;
    counts.emplace_back(idx, sign);
  }
  NormalizeTermCounts(&counts);
  return counts;
}

TermCounts HashingVectorizer::TransformIds(
    const std::vector<uint32_t>& token_ids) const {
  TermCounts counts;
  counts.reserve(token_ids.size());
  for (uint32_t id : token_ids) {
    uint64_t h = HashCombine(id, salt_);
    uint32_t idx = static_cast<uint32_t>(h % dimension_);
    double sign = 1.0;
    if (signed_hash_ && ((h >> 32) & 1) != 0) sign = -1.0;
    counts.emplace_back(idx, sign);
  }
  NormalizeTermCounts(&counts);
  return counts;
}

}  // namespace zombie
