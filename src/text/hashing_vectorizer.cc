#include "text/hashing_vectorizer.h"

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

HashingVectorizer::HashingVectorizer(uint32_t dimension, bool signed_hash,
                                     uint64_t salt)
    : dimension_(dimension), signed_hash_(signed_hash), salt_(salt) {
  ZCHECK_GT(dimension, 0u);
  if ((dimension_ & (dimension_ - 1)) == 0) index_mask_ = dimension_ - 1;
}

uint32_t HashingVectorizer::IndexOf(std::string_view token) const {
  uint64_t h = HashCombine(HashBytes(token.data(), token.size()), salt_);
  return ReduceHash(h);
}

TermCounts HashingVectorizer::Transform(
    const std::vector<std::string>& tokens) const {
  TermCounts counts;
  counts.reserve(tokens.size());
  for (const auto& tok : tokens) {
    uint64_t h = HashCombine(HashBytes(tok.data(), tok.size()), salt_);
    uint32_t idx = static_cast<uint32_t>(h % dimension_);
    double sign = 1.0;
    if (signed_hash_ && ((h >> 32) & 1) != 0) sign = -1.0;
    counts.emplace_back(idx, sign);
  }
  NormalizeTermCounts(&counts);
  return counts;
}

void HashingVectorizer::TransformViews(
    const std::vector<std::string_view>& tokens, TermCounts* scratch) const {
  scratch->clear();
  scratch->reserve(tokens.size());
  for (std::string_view tok : tokens) {
    uint64_t h = HashCombine(HashBytes(tok.data(), tok.size()), salt_);
    uint32_t idx = ReduceHash(h);
    double sign = 1.0;
    if (signed_hash_ && ((h >> 32) & 1) != 0) sign = -1.0;
    scratch->emplace_back(idx, sign);
  }
  NormalizeTermCounts(scratch);
}

TermCounts HashingVectorizer::TransformIds(
    const std::vector<uint32_t>& token_ids) const {
  TermCounts counts;
  counts.reserve(token_ids.size());
  for (uint32_t id : token_ids) {
    uint64_t h = HashCombine(id, salt_);
    uint32_t idx = static_cast<uint32_t>(h % dimension_);
    double sign = 1.0;
    if (signed_hash_ && ((h >> 32) & 1) != 0) sign = -1.0;
    counts.emplace_back(idx, sign);
  }
  NormalizeTermCounts(&counts);
  return counts;
}

}  // namespace zombie
