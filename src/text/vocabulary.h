#ifndef ZOMBIE_TEXT_VOCABULARY_H_
#define ZOMBIE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace zombie {

/// Bidirectional term <-> dense-id map shared by a corpus.
///
/// Ids are dense and assigned in insertion order, so they double as feature
/// indices for bag-of-words models. A Vocabulary can be frozen once corpus
/// construction finishes; lookups of unknown terms then return kUnknownTerm
/// instead of allocating new ids.
class Vocabulary {
 public:
  /// Sentinel returned by Lookup()/GetOrAdd() for unknown terms.
  static constexpr uint32_t kUnknownTerm = 0xFFFFFFFFu;

  Vocabulary() = default;

  /// Returns the id of `term`, inserting it if absent. If the vocabulary is
  /// frozen and the term is absent, returns kUnknownTerm.
  uint32_t GetOrAdd(std::string_view term);

  /// Returns the id of `term` or kUnknownTerm.
  uint32_t Lookup(std::string_view term) const;

  /// Returns the term for a valid id; id must be < size().
  const std::string& Term(uint32_t id) const;

  size_t size() const { return terms_.size(); }
  bool frozen() const { return frozen_; }

  /// Freezes the vocabulary; subsequent GetOrAdd of new terms fails soft.
  void Freeze() { frozen_ = true; }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> terms_;
  bool frozen_ = false;
};

}  // namespace zombie

#endif  // ZOMBIE_TEXT_VOCABULARY_H_
