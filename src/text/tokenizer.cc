#include "text/tokenizer.h"

#include <cctype>

#include "util/logging.h"

namespace zombie {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

bool Tokenizer::IsTokenChar(unsigned char c) const {
  if (std::isalpha(c)) return true;
  if (options_.keep_digits && std::isdigit(c)) return true;
  return false;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  TokenizeAppend(text, &out);
  return out;
}

size_t Tokenizer::TokenizeAppend(std::string_view text,
                                 std::vector<std::string>* out) const {
  size_t appended = 0;
  std::string token;
  auto flush = [&]() {
    if (token.size() >= options_.min_token_length &&
        (options_.max_token_length == 0 ||
         token.size() <= options_.max_token_length)) {
      out->push_back(token);
      ++appended;
    }
    token.clear();
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (IsTokenChar(c)) {
      token.push_back(options_.lowercase
                          ? static_cast<char>(std::tolower(c))
                          : raw);
    } else if (!token.empty()) {
      flush();
    }
  }
  if (!token.empty()) flush();
  return appended;
}

std::vector<std::string> WordNgrams(const std::vector<std::string>& tokens,
                                    size_t n, char joiner) {
  ZCHECK_GE(n, 1u);
  if (n == 1) return tokens;
  std::vector<std::string> out;
  if (tokens.size() < n) return out;
  out.reserve(tokens.size() - n + 1);
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      gram += joiner;
      gram += tokens[i + j];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

}  // namespace zombie
