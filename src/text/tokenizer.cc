#include "text/tokenizer.h"

#include <cctype>

#include "util/logging.h"

namespace zombie {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  for (int c = 0; c < 256; ++c) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (!IsTokenChar(uc)) {
      token_char_map_[c] = 0;
      continue;
    }
    token_char_map_[c] = options_.lowercase
                             ? static_cast<unsigned char>(std::tolower(uc))
                             : uc;
  }
}

bool Tokenizer::IsTokenChar(unsigned char c) const {
  if (std::isalpha(c)) return true;
  if (options_.keep_digits && std::isdigit(c)) return true;
  return false;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  TokenizeAppend(text, &out);
  return out;
}

size_t Tokenizer::TokenizeAppend(std::string_view text,
                                 std::vector<std::string>* out) const {
  size_t appended = 0;
  std::string token;
  auto flush = [&]() {
    if (token.size() >= options_.min_token_length &&
        (options_.max_token_length == 0 ||
         token.size() <= options_.max_token_length)) {
      out->push_back(token);
      ++appended;
    }
    token.clear();
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (IsTokenChar(c)) {
      token.push_back(options_.lowercase
                          ? static_cast<char>(std::tolower(c))
                          : raw);
    } else if (!token.empty()) {
      flush();
    }
  }
  if (!token.empty()) flush();
  return appended;
}

const std::vector<std::string_view>& Tokenizer::TokenizeViews(
    std::string_view text, TokenBuffer* buffer) const {
  buffer->Clear();
  // Token bytes are a subset of the input bytes, so sizing the arena to
  // text.size() guarantees it never reallocates mid-call — the views handed
  // out below stay anchored. std::string capacity never shrinks, so a
  // reused buffer keeps its high-water capacity and subsequent calls
  // allocate nothing. Writing through a raw cursor instead of push_back
  // removes the per-character capacity check from the hot loop.
  std::string& chars = buffer->chars_;
  chars.resize(text.size());
  char* const base = chars.data();
  size_t w = 0;
  size_t token_start = 0;
  auto flush = [&]() {
    const size_t len = w - token_start;
    if (len >= options_.min_token_length &&
        (options_.max_token_length == 0 || len <= options_.max_token_length)) {
      buffer->views_.emplace_back(base + token_start, len);
    } else {
      w = token_start;  // drop the filtered token's bytes
    }
    token_start = w;
  };
  const unsigned char* map = token_char_map_;
  const char* p = text.data();
  const size_t n = text.size();
  for (size_t k = 0; k < n; ++k) {
    const unsigned char out = map[static_cast<unsigned char>(p[k])];
    if (out != 0) {
      base[w++] = static_cast<char>(out);
    } else if (w > token_start) {
      flush();
    }
  }
  if (w > token_start) flush();
  chars.resize(w);  // shrinking never reallocates; views stay anchored
  return buffer->views_;
}

std::vector<std::string> WordNgrams(const std::vector<std::string>& tokens,
                                    size_t n, char joiner) {
  ZCHECK_GE(n, 1u);
  if (n == 1) return tokens;
  std::vector<std::string> out;
  if (tokens.size() < n) return out;
  out.reserve(tokens.size() - n + 1);
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      gram += joiner;
      gram += tokens[i + j];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

}  // namespace zombie
