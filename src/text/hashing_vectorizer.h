#ifndef ZOMBIE_TEXT_HASHING_VECTORIZER_H_
#define ZOMBIE_TEXT_HASHING_VECTORIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/term_counts.h"

namespace zombie {

/// Feature hashing ("hashing trick"): maps arbitrary token strings into a
/// fixed-dimension sparse count vector without a vocabulary. Collisions are
/// tolerated by design; a sign hash optionally debiases them.
class HashingVectorizer {
 public:
  /// `dimension` must be positive; powers of two hash fastest but any value
  /// works. When `signed_hash` is set, half the tokens contribute -1 per
  /// occurrence so collisions cancel in expectation.
  explicit HashingVectorizer(uint32_t dimension, bool signed_hash = false,
                             uint64_t salt = 0);

  /// Hashes string tokens into sorted (index, weight) pairs.
  TermCounts Transform(const std::vector<std::string>& tokens) const;

  /// Hashes pre-assigned token ids (cheap path for synthetic corpora).
  TermCounts TransformIds(const std::vector<uint32_t>& token_ids) const;

  /// The feature index a single token maps to.
  uint32_t IndexOf(const std::string& token) const;

  uint32_t dimension() const { return dimension_; }
  bool signed_hash() const { return signed_hash_; }
  uint64_t salt() const { return salt_; }

 private:
  uint32_t dimension_;
  bool signed_hash_;
  uint64_t salt_;
};

}  // namespace zombie

#endif  // ZOMBIE_TEXT_HASHING_VECTORIZER_H_
