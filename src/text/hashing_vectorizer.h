#ifndef ZOMBIE_TEXT_HASHING_VECTORIZER_H_
#define ZOMBIE_TEXT_HASHING_VECTORIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "text/term_counts.h"

namespace zombie {

/// Feature hashing ("hashing trick"): maps arbitrary token strings into a
/// fixed-dimension sparse count vector without a vocabulary. Collisions are
/// tolerated by design; a sign hash optionally debiases them.
class HashingVectorizer {
 public:
  /// `dimension` must be positive; powers of two hash fastest but any value
  /// works. When `signed_hash` is set, half the tokens contribute -1 per
  /// occurrence so collisions cancel in expectation.
  explicit HashingVectorizer(uint32_t dimension, bool signed_hash = false,
                             uint64_t salt = 0);

  /// Hashes string tokens into sorted (index, weight) pairs.
  TermCounts Transform(const std::vector<std::string>& tokens) const;

  /// Zero-allocation twin of Transform: hashes token views directly into
  /// caller-owned `scratch` (cleared first, capacity retained across
  /// calls). Bit-identical output to Transform on the same token sequence
  /// — both hash the raw token bytes. Pairs with Tokenizer::TokenizeViews
  /// so a whole document vectorizes without per-token heap traffic.
  void TransformViews(const std::vector<std::string_view>& tokens,
                      TermCounts* scratch) const;

  /// Hashes pre-assigned token ids (cheap path for synthetic corpora).
  TermCounts TransformIds(const std::vector<uint32_t>& token_ids) const;

  /// The feature index a single token maps to.
  uint32_t IndexOf(std::string_view token) const;

  uint32_t dimension() const { return dimension_; }
  bool signed_hash() const { return signed_hash_; }
  uint64_t salt() const { return salt_; }

 private:
  // Maps a 64-bit token hash to its feature index. For power-of-two
  // dimensions (the common configuration) `h % dimension_` equals
  // `h & (dimension_ - 1)` exactly, and the AND avoids a 64-bit divide per
  // token in the hot loop; the fallback modulo keeps arbitrary dimensions
  // working. Bit-identical to a plain modulo either way.
  uint32_t ReduceHash(uint64_t h) const {
    return index_mask_ != 0 ? static_cast<uint32_t>(h & index_mask_)
                            : static_cast<uint32_t>(h % dimension_);
  }

  uint32_t dimension_;
  bool signed_hash_;
  uint64_t salt_;
  // dimension_ - 1 when dimension_ is a power of two, else 0 (modulo path).
  uint64_t index_mask_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_TEXT_HASHING_VECTORIZER_H_
