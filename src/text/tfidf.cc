#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace zombie {

void TfIdfTransform::AddDocument(const std::vector<uint32_t>& token_ids) {
  ZCHECK(!finalized_) << "AddDocument after Finalize";
  ++num_documents_;
  // Count each distinct term once per document.
  std::vector<uint32_t> distinct = token_ids;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (uint32_t id : distinct) {
    if (id >= doc_freq_.size()) doc_freq_.resize(id + 1, 0);
    ++doc_freq_[id];
  }
}

void TfIdfTransform::Finalize() {
  ZCHECK(!finalized_);
  idf_.resize(doc_freq_.size());
  double n = static_cast<double>(num_documents_);
  for (size_t i = 0; i < doc_freq_.size(); ++i) {
    idf_[i] =
        std::log((1.0 + n) / (1.0 + static_cast<double>(doc_freq_[i]))) + 1.0;
  }
  finalized_ = true;
}

double TfIdfTransform::Idf(uint32_t term_id) const {
  ZCHECK(finalized_);
  if (term_id >= idf_.size()) return 1.0;
  return idf_[term_id];
}

TermCounts TfIdfTransform::Transform(const std::vector<uint32_t>& token_ids,
                                     bool l2_normalize) const {
  ZCHECK(finalized_) << "Transform before Finalize";
  TermCounts counts = CountTokenIds(token_ids);
  double norm_sq = 0.0;
  for (auto& [id, weight] : counts) {
    weight *= Idf(id);
    norm_sq += weight * weight;
  }
  if (l2_normalize && norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [id, weight] : counts) weight *= inv;
  }
  return counts;
}

}  // namespace zombie
