#ifndef ZOMBIE_TEXT_TFIDF_H_
#define ZOMBIE_TEXT_TFIDF_H_

#include <cstdint>
#include <vector>

#include "text/term_counts.h"

namespace zombie {

/// TF-IDF weighting fit over a collection of token-id documents.
///
/// IDF uses the smoothed form log((1 + N) / (1 + df)) + 1 so unseen terms
/// receive a finite weight. Transform applies raw-count TF times IDF, with
/// optional L2 row normalization.
class TfIdfTransform {
 public:
  TfIdfTransform() = default;

  /// Accumulates document frequencies from one document's token ids.
  /// Call once per document, then Finalize().
  void AddDocument(const std::vector<uint32_t>& token_ids);

  /// Computes IDF weights; must be called after the last AddDocument and
  /// before the first Transform.
  void Finalize();

  /// Applies TF-IDF weighting to a document. Requires Finalize() first.
  TermCounts Transform(const std::vector<uint32_t>& token_ids,
                       bool l2_normalize = true) const;

  /// IDF of a term id (1.0 for ids never seen during fitting).
  double Idf(uint32_t term_id) const;

  size_t num_documents() const { return num_documents_; }
  bool finalized() const { return finalized_; }

 private:
  std::vector<int64_t> doc_freq_;
  std::vector<double> idf_;
  size_t num_documents_ = 0;
  bool finalized_ = false;
};

}  // namespace zombie

#endif  // ZOMBIE_TEXT_TFIDF_H_
