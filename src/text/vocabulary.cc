#include "text/vocabulary.h"

#include "util/logging.h"

namespace zombie {

uint32_t Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  if (frozen_) return kUnknownTerm;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  ZCHECK_LT(id, kUnknownTerm) << "vocabulary overflow";
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

uint32_t Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kUnknownTerm : it->second;
}

const std::string& Vocabulary::Term(uint32_t id) const {
  ZCHECK_LT(id, terms_.size());
  return terms_[id];
}

}  // namespace zombie
