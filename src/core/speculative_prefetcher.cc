#include "core/speculative_prefetcher.h"

#include "util/logging.h"

namespace zombie {

SpeculativePrefetcher::SpeculativePrefetcher(ExtractionService* service,
                                             const GroupedCorpus* grouped,
                                             TraceRecorder* trace)
    : service_(service), grouped_(grouped), trace_(trace) {
  ZCHECK(service_ != nullptr);
  ZCHECK(grouped_ != nullptr);
}

void SpeculativePrefetcher::SpeculateBeforeEvaluation(
    const BanditPolicy& policy, const ArmStats& stats) {
  if (!service_->prefetch_enabled()) return;
  TraceSpan span(trace_, "engine.speculate", "prefetch");
  const PrefetchOptions& opts = service_->prefetch_options();
  policy.RankArms(stats, opts.max_arms, &ranked_arms_);
  candidates_.clear();
  for (size_t arm : ranked_arms_) {
    grouped_->PeekUnprocessed(arm, opts.max_items_per_arm, &peek_buffer_);
    candidates_.insert(candidates_.end(), peek_buffer_.begin(),
                       peek_buffer_.end());
  }
  if (!candidates_.empty()) {
    service_->EnqueuePrefetch(grouped_->corpus(), candidates_);
  }
}

}  // namespace zombie
