#include "core/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/clock.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace zombie {

std::string SpeedupReport::ToString() const {
  if (!valid()) {
    return StrFormat("target=%.3f: not reached by both runs",
                     target_quality);
  }
  return StrFormat(
      "target=%.3f: baseline %s vs treatment %s -> %.2fx time (%.2fx items)",
      target_quality, FormatDuration(baseline_micros).c_str(),
      FormatDuration(treatment_micros).c_str(), time_speedup, items_speedup);
}

namespace {

// First curve crossing of `target`, reporting the run's *total* virtual
// time (loop time at the crossing + the one-time holdout featurization).
void FirstCrossing(const RunResult& run, double target, int64_t* micros,
                   int64_t* items) {
  *micros = -1;
  *items = -1;
  for (const CurvePoint& p : run.curve.points()) {
    if (p.quality >= target) {
      *micros = p.virtual_micros + run.holdout_virtual_micros;
      *items = static_cast<int64_t>(p.items_processed);
      return;
    }
  }
}

}  // namespace

SpeedupReport ComputeSpeedup(const RunResult& baseline,
                             const RunResult& treatment,
                             double quality_fraction) {
  ZCHECK_GT(quality_fraction, 0.0);
  ZCHECK_LE(quality_fraction, 1.0);
  SpeedupReport report;
  report.target_quality = quality_fraction * baseline.final_quality;
  FirstCrossing(baseline, report.target_quality, &report.baseline_micros,
                &report.baseline_items);
  FirstCrossing(treatment, report.target_quality, &report.treatment_micros,
                &report.treatment_items);
  if (report.baseline_micros > 0 && report.treatment_micros > 0) {
    report.time_speedup = static_cast<double>(report.baseline_micros) /
                          static_cast<double>(report.treatment_micros);
  }
  if (report.baseline_items > 0 && report.treatment_items > 0) {
    report.items_speedup = static_cast<double>(report.baseline_items) /
                           static_cast<double>(report.treatment_items);
  }
  return report;
}

std::vector<MeanCurvePoint> MeanCurve(const std::vector<RunResult>& runs) {
  std::vector<MeanCurvePoint> out;
  if (runs.empty()) return out;
  size_t len = runs[0].curve.size();
  for (const auto& r : runs) len = std::min(len, r.curve.size());
  out.resize(len);
  for (size_t i = 0; i < len; ++i) {
    std::vector<double> qualities;
    double items = 0.0;
    double secs = 0.0;
    for (const auto& r : runs) {
      const CurvePoint& p = r.curve.point(i);
      qualities.push_back(p.quality);
      items += static_cast<double>(p.items_processed);
      secs += static_cast<double>(p.virtual_micros) / 1e6;
    }
    double n = static_cast<double>(runs.size());
    out[i].mean_items = items / n;
    out[i].mean_virtual_seconds = secs / n;
    out[i].mean_quality = Mean(qualities);
    out[i].stddev_quality = StdDev(qualities);
  }
  return out;
}

double MeanFinalQuality(const std::vector<RunResult>& runs) {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& r : runs) xs.push_back(r.final_quality);
  return Mean(xs);
}

double MeanItemsProcessed(const std::vector<RunResult>& runs) {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& r : runs) {
    xs.push_back(static_cast<double>(r.items_processed));
  }
  return Mean(xs);
}

double MeanVirtualSeconds(const std::vector<RunResult>& runs) {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& r : runs) {
    xs.push_back(static_cast<double>(r.total_virtual_micros()) / 1e6);
  }
  return Mean(xs);
}

}  // namespace zombie
