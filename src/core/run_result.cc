#include "core/run_result.h"

#include "util/clock.h"
#include "util/string_util.h"

namespace zombie {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kPlateau:
      return "plateau";
    case StopReason::kDecline:
      return "decline";
    case StopReason::kTarget:
      return "target";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kExhausted:
      return "exhausted";
  }
  return "?";
}

std::string RunResult::ToString() const {
  return StrFormat(
      "[%s/%s/%s/%s] items=%zu vtime=%s quality=%.3f stop=%s",
      policy_name.c_str(), grouper_name.c_str(), reward_name.c_str(),
      learner_name.c_str(), items_processed,
      FormatDuration(total_virtual_micros()).c_str(), final_quality,
      StopReasonName(stop_reason));
}

}  // namespace zombie
