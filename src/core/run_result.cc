#include "core/run_result.h"

#include "util/clock.h"
#include "util/string_util.h"

namespace zombie {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kPlateau:
      return "plateau";
    case StopReason::kDecline:
      return "decline";
    case StopReason::kTarget:
      return "target";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kExhausted:
      return "exhausted";
  }
  return "?";
}

std::string RunResult::ToString() const {
  return StrFormat(
      "[%s/%s/%s/%s] items=%zu vtime=%s quality=%.3f stop=%s",
      policy_name.c_str(), grouper_name.c_str(), reward_name.c_str(),
      learner_name.c_str(), items_processed,
      FormatDuration(total_virtual_micros()).c_str(), final_quality,
      StopReasonName(stop_reason));
}

std::string RunResult::Fingerprint() const {
  std::string s = StrFormat(
      "items=%zu loop=%lld holdout=%lld q=%.17g stop=%s pos=%zu\n",
      items_processed, static_cast<long long>(loop_virtual_micros),
      static_cast<long long>(holdout_virtual_micros), final_quality,
      StopReasonName(stop_reason), positives_processed);
  for (const ArmSummary& a : arms) {
    s += StrFormat("arm %zu %zu %.17g %zu\n", a.group_size, a.pulls,
                   a.total_reward, a.positives_seen);
  }
  s += curve.ToCsv();
  return s;
}

}  // namespace zombie
