#ifndef ZOMBIE_CORE_EXPERIMENT_DRIVER_H_
#define ZOMBIE_CORE_EXPERIMENT_DRIVER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bandit/policy.h"
#include "core/config.h"
#include "core/reward.h"
#include "core/run_result.h"
#include "data/corpus.h"
#include "featureeng/extraction_service.h"
#include "featureeng/feature_cache.h"
#include "featureeng/pipeline.h"
#include "index/grouper.h"
#include "ml/learner.h"
#include "util/status.h"

namespace zombie {

class ScheduledCorpusSource;
class IncrementalGrouper;

/// A declarative experiment grid: the cross product
///
///   policies x groupings x rewards x learners x prunings x seeds
///
/// Every axis except seeds may be left with a single element; every axis
/// except prunings must be non-empty (an empty prunings axis means one
/// prune-off cell — identical trial order and labels to grids that predate
/// the axis). Groupings, rewards, learners, and prunings are borrowed
/// prototypes and must outlive the RunGrid call (rewards and learners are
/// cloned per trial by the engine, so prototypes are never mutated).
struct ExperimentGrid {
  std::vector<PolicyKind> policies;
  std::vector<const GroupingResult*> groupings;
  std::vector<const RewardFunction*> rewards;
  std::vector<const Learner*> learners;
  /// Per-trial RunSpec::pruning_override values. nullptr entries mean "no
  /// override" (the shared EngineOptions::pruning applies) — the prune-off
  /// arm of a prune-off/prune-on A/B.
  std::vector<const FeaturePrunerOptions*> prunings;
  std::vector<uint64_t> seeds;

  /// Number of trials the grid expands to.
  size_t size() const {
    return policies.size() * groupings.size() * rewards.size() *
           learners.size() * std::max<size_t>(prunings.size(), 1) *
           seeds.size();
  }

  [[nodiscard]] Status Validate() const;
};

/// One cell of the grid, in row-major expansion order.
struct TrialSpec {
  size_t index = 0;  // linear grid index; results are returned in this order
  PolicyKind policy = PolicyKind::kEpsilonGreedy;
  const GroupingResult* grouping = nullptr;
  const RewardFunction* reward = nullptr;
  const Learner* learner = nullptr;
  /// The prunings-axis cell (null = no override). `pruning_index` is the
  /// position within the axis — it disambiguates labels, since distinct
  /// FeaturePrunerOptions have no short printable form.
  const FeaturePrunerOptions* pruning = nullptr;
  size_t pruning_index = 0;
  uint64_t seed = 0;

  /// "egreedy/kmeans32/label/nb/s3"-style display label; trials with a
  /// pruning override append "/prune@<axis index>".
  std::string Label() const;
};

struct TrialResult {
  TrialSpec spec;
  RunResult run;
  /// Snapshot of the shared cache's cumulative counters taken when this
  /// trial finished (all zeros when the driver has no cache). With
  /// concurrent trials the snapshot point is scheduling-dependent — use it
  /// for reporting, not for assertions; RunResult itself is deterministic.
  FeatureCacheStats cache;
};

struct ExperimentDriverOptions {
  /// Worker threads for trial execution; 0 means hardware concurrency.
  size_t num_threads = 1;
  /// Engine configuration shared by every trial; `seed` and
  /// `feature_cache` are overridden per the grid/driver.
  EngineOptions engine;
  /// Optional shared feature memo (borrowed, thread-safe; must outlive the
  /// driver). Trials of the same pipeline hit each other's extractions,
  /// which changes wall-clock time only — never results. The driver wraps
  /// it in one shared ExtractionService that every trial engine borrows,
  /// so `engine.feature_cache` must stay null.
  FeatureCache* cache = nullptr;
  /// Speculative prefetch shared by every trial (wall-clock-only; see
  /// ExtractionService). Requires `cache` — speculation without a cache
  /// has nowhere to put results and is silently disabled.
  PrefetchOptions prefetch;
  /// Optional persistent second cache tier shared by every trial (borrowed,
  /// thread-safe; must outlive the driver). Wall-clock-only, like `cache`;
  /// `engine.feature_store` must stay null.
  PersistentFeatureStore* store = nullptr;
  /// Streaming ingestion shared by every trial (both borrowed, both or
  /// neither; must outlive the driver). The groupings axis must then hold
  /// the incremental grouper's GroupBase result. The source is const and
  /// the grouper is cloned inside each engine run, so concurrent trials
  /// share the prototypes safely.
  const ScheduledCorpusSource* stream = nullptr;
  const IncrementalGrouper* incremental_grouper = nullptr;
};

/// Executes experiment grids over one (corpus, pipeline) workload on a
/// thread pool. Each trial is an independent ZombieEngine::Run deriving
/// every random draw from its own grid seed and writing to its own result
/// slot, so the returned vector is bit-identical at any thread count — the
/// property the determinism tests pin down.
class ExperimentDriver {
 public:
  /// Both pointers are borrowed and must outlive the driver. The driver
  /// owns one ExtractionService over (pipeline, options.cache,
  /// options.prefetch) shared by all trials; outstanding speculation is
  /// cancelled and drained when the driver is destroyed.
  ExperimentDriver(const Corpus* corpus, const FeaturePipeline* pipeline,
                   ExperimentDriverOptions options = {});

  /// Runs every trial of the grid; returns results in grid order, or the
  /// first validation/worker failure by trial index.
  StatusOr<std::vector<TrialResult>> RunGrid(const ExperimentGrid& grid) const;

  /// Full-scan baseline runs (random order, or sequential when
  /// `sequential`), one per seed, also executed on the pool.
  std::vector<RunResult> RunScanBaselines(const std::vector<uint64_t>& seeds,
                                          const Learner& learner_prototype,
                                          bool sequential = false) const;

  /// Resolved worker count (after the 0 = hardware default).
  size_t num_threads() const { return num_threads_; }

  const ExperimentDriverOptions& options() const { return options_; }

  /// The shared extraction path (never null after construction).
  ExtractionService* extraction_service() const { return service_.get(); }

 private:
  const Corpus* corpus_;
  const FeaturePipeline* pipeline_;
  ExperimentDriverOptions options_;
  size_t num_threads_;
  std::unique_ptr<ExtractionService> service_;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_EXPERIMENT_DRIVER_H_
