#ifndef ZOMBIE_CORE_RUN_RESULT_H_
#define ZOMBIE_CORE_RUN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/learning_curve.h"
#include "ml/metrics.h"

namespace zombie {

/// Why a run ended.
enum class StopReason {
  kPlateau,    // quality estimate converged (early stop)
  kDecline,    // quality clearly past its peak (early stop)
  kTarget,     // target quality reached
  kBudget,     // max_items exhausted
  kExhausted,  // corpus fully processed
};

const char* StopReasonName(StopReason reason);

/// Per-arm accounting for diagnostics and tests (did the bandit find the
/// rich groups?).
struct ArmSummary {
  size_t group_size = 0;
  size_t pulls = 0;
  double total_reward = 0.0;
  size_t positives_seen = 0;
};

/// Everything one inner-loop run produced.
struct RunResult {
  LearningCurve curve;

  size_t items_processed = 0;
  /// Virtual data-processing time of the selection loop itself.
  int64_t loop_virtual_micros = 0;
  /// Virtual cost of featurizing the holdout (one-time, per revision).
  int64_t holdout_virtual_micros = 0;
  /// Wall-clock time the run actually took (engine bookkeeping).
  int64_t wall_micros = 0;

  double final_quality = 0.0;
  BinaryMetrics final_metrics;
  StopReason stop_reason = StopReason::kExhausted;

  std::string policy_name;
  std::string grouper_name;
  std::string reward_name;
  std::string learner_name;

  std::vector<ArmSummary> arms;
  size_t positives_processed = 0;

  /// Total virtual time including the holdout featurization.
  int64_t total_virtual_micros() const {
    return loop_virtual_micros + holdout_virtual_micros;
  }

  /// One-line summary for logs.
  std::string ToString() const;

  /// Canonical rendering of every deterministic field (wall_micros is
  /// deliberately excluded): items/virtual-times/quality/stop/positives,
  /// one line per arm, then the full learning curve CSV with %.17g doubles.
  /// Byte-equality of fingerprints == run-level determinism; the store
  /// round-trip tests and the forced-ISA CI matrix (which asserts scalar,
  /// AVX2 and AVX-512 dispatch produce identical engine runs) both compare
  /// these.
  std::string Fingerprint() const;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_RUN_RESULT_H_
