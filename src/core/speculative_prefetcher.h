#ifndef ZOMBIE_CORE_SPECULATIVE_PREFETCHER_H_
#define ZOMBIE_CORE_SPECULATIVE_PREFETCHER_H_

#include <cstdint>
#include <vector>

#include "bandit/policy.h"
#include "featureeng/extraction_service.h"
#include "index/grouped_corpus.h"
#include "obs/trace.h"

namespace zombie {

/// Glue between the bandit and the ExtractionService's prefetch pool: while
/// the engine is busy with a holdout evaluation window, speculate that the
/// policy will keep pulling its currently top-ranked arms and featurize
/// those arms' next unprocessed documents into the cache in the background.
///
/// Determinism: candidate selection runs on the engine thread using only
/// BanditPolicy::RankArms (no RNG) and a const peek of the grouped corpus;
/// workers receive plain doc-id copies and only ever touch the pipeline
/// (stateless) and the cache (speculative inserts with as-if-no-prefetch
/// promotion). Nothing observable by the run changes — see the
/// ExtractionService equivalence contract.
///
/// All pointers are borrowed and must outlive the prefetcher. The service
/// may be shared across runs (experiment driver); each run's prefetcher
/// only enqueues, it never cancels shared speculation.
class SpeculativePrefetcher {
 public:
  SpeculativePrefetcher(ExtractionService* service,
                        const GroupedCorpus* grouped,
                        TraceRecorder* trace = nullptr);

  /// Ranks arms with the policy's current preferences and enqueues the top
  /// arms' upcoming documents, bounded by the service's PrefetchOptions.
  /// No-op when the service has speculation disabled. Call immediately
  /// before a holdout evaluation so the speculative work overlaps it.
  void SpeculateBeforeEvaluation(const BanditPolicy& policy,
                                 const ArmStats& stats);

  bool enabled() const { return service_->prefetch_enabled(); }

 private:
  ExtractionService* service_;
  const GroupedCorpus* grouped_;
  TraceRecorder* trace_;
  // Reused scratch: speculation fires once per eval window on the engine
  // thread, keep it allocation-quiet after warmup.
  std::vector<size_t> ranked_arms_;
  std::vector<uint32_t> peek_buffer_;
  std::vector<uint32_t> candidates_;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_SPECULATIVE_PREFETCHER_H_
