#ifndef ZOMBIE_CORE_ANALYSIS_H_
#define ZOMBIE_CORE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_result.h"

namespace zombie {

/// Time-to-quality comparison between a baseline run and a Zombie run —
/// the paper's headline metric. The quality target is a fraction of the
/// baseline's final (converged) quality, so "speedup to 95%" reads "how
/// much sooner does Zombie reach 95% of what the full scan ends at".
struct SpeedupReport {
  double target_quality = 0.0;
  /// Virtual microseconds each run first hit the target; -1 = never.
  int64_t baseline_micros = -1;
  int64_t treatment_micros = -1;
  /// Items each run had processed at that point; -1 = never.
  int64_t baseline_items = -1;
  int64_t treatment_items = -1;
  /// baseline / treatment ratios; -1 when either side never reached the
  /// target.
  double time_speedup = -1.0;
  double items_speedup = -1.0;

  bool valid() const { return time_speedup > 0.0; }
  std::string ToString() const;
};

/// Computes the report at `quality_fraction` of the baseline's final
/// quality. Holdout featurization cost is included on both sides (both
/// approaches pay it).
SpeedupReport ComputeSpeedup(const RunResult& baseline,
                             const RunResult& treatment,
                             double quality_fraction);

/// Pointwise mean of several curves sharing an evaluation cadence; the
/// output is truncated to the shortest curve. Used to average trials for
/// the figure analogues.
struct MeanCurvePoint {
  double mean_items = 0.0;
  double mean_virtual_seconds = 0.0;
  double mean_quality = 0.0;
  double stddev_quality = 0.0;
};
std::vector<MeanCurvePoint> MeanCurve(const std::vector<RunResult>& runs);

/// Mean of a scalar extracted from each run.
double MeanFinalQuality(const std::vector<RunResult>& runs);
double MeanItemsProcessed(const std::vector<RunResult>& runs);
double MeanVirtualSeconds(const std::vector<RunResult>& runs);

}  // namespace zombie

#endif  // ZOMBIE_CORE_ANALYSIS_H_
