#ifndef ZOMBIE_CORE_RUN_SPEC_H_
#define ZOMBIE_CORE_RUN_SPEC_H_

#include <vector>

#include "bandit/policy.h"
#include "core/run_result.h"
#include "featureeng/extraction_service.h"
#include "index/grouper.h"
#include "ml/feature_pruner.h"
#include "ml/learner.h"

namespace zombie {

class RewardFunction;
class ScheduledCorpusSource;
class IncrementalGrouper;

/// Everything that parameterizes one ZombieEngine::Run, with named fields
/// instead of a positional parameter list. The four component pointers are
/// borrowed for the duration of the call and cloned inside the engine, so
/// the engine never mutates caller state.
///
///   RunSpec spec(grouping, policy, learner, reward);
///   spec.warm_start = &previous.arms;
///   spec.prefetch.threads = 4;
///   RunResult r = engine.Run(spec);
struct RunSpec {
  RunSpec(const GroupingResult& grouping_in, const BanditPolicy& policy_in,
          const Learner& learner_in, const RewardFunction& reward_in)
      : grouping(&grouping_in),
        policy(&policy_in),
        learner(&learner_in),
        reward(&reward_in) {}

  const GroupingResult* grouping;
  const BanditPolicy* policy;
  const Learner* learner;
  const RewardFunction* reward;

  /// Shuffle within-group item order (false = preserve grouping order,
  /// used by the sequential-scan baseline).
  bool shuffle_groups = true;

  /// Optional per-arm knowledge from a previous run over the *same
  /// grouping* (e.g. the prior feature revision in a session): each arm is
  /// seeded with pseudo-observations of its previous mean reward. Ignored
  /// when the arm count does not match the grouping.
  const std::vector<ArmSummary>* warm_start = nullptr;

  /// Speculative prefetch extraction for this run. Only consulted when the
  /// engine owns its extraction path (the pipeline-pointer constructor):
  /// the engine then builds a per-run ExtractionService around
  /// EngineOptions::feature_cache with these bounds. Engines constructed
  /// over a borrowed ExtractionService use that service's own prefetch
  /// configuration instead, so concurrent runs share one speculation
  /// budget. Wall-clock-only either way: results are byte-identical with
  /// prefetch on or off (see ExtractionService).
  PrefetchOptions prefetch;

  /// Per-run override of EngineOptions::pruning (borrowed; null = use the
  /// engine-wide setting). Lets one engine run prune-off and prune-on arms
  /// back to back — the bench_prune frontier — without rebuilding engines.
  const FeaturePrunerOptions* pruning_override = nullptr;

  /// Streaming ingestion. When `stream` is set, `grouping` must be the
  /// base grouping returned by `incremental_grouper->GroupBase(corpus,
  /// stream->base_size())` (same corpus as the engine's), and both
  /// pointers must be non-null: the engine clones the primed grouper per
  /// run, restricts the holdout sample to the offline base prefix, and at
  /// every holdout-eval boundary consumes the arrivals whose virtual
  /// timestamp has passed — appending documents to the index, splitting or
  /// opening groups, and registering each new group with the bandit via
  /// BanditPolicy::OnArmAdded. Null (the default) is exactly the offline
  /// engine, byte for byte.
  const ScheduledCorpusSource* stream = nullptr;
  /// Primed prototype (GroupBase already called); cloned per run so
  /// repeated and concurrent runs share it safely. Borrowed.
  const IncrementalGrouper* incremental_grouper = nullptr;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_RUN_SPEC_H_
