#include "core/task_factory.h"

#include <memory>
#include <vector>

#include "data/balanced_generator.h"
#include "data/entity_generator.h"
#include "data/webcat_generator.h"
#include "featureeng/extractors.h"
#include "featureeng/revision_script.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kWebCat:
      return "webcat";
    case TaskKind::kEntity:
      return "entity";
    case TaskKind::kBalanced:
      return "balanced";
  }
  return "?";
}

FeaturePipeline MakeDefaultPipeline(TaskKind kind, const Corpus& /*corpus*/) {
  FeaturePipeline p(StrFormat("%s-default", TaskKindName(kind)));
  switch (kind) {
    case TaskKind::kWebCat:
      // Mid-session revision: hashed BoW + cheap structure signals. (The
      // keyword revisions appear later in the session script; the default
      // task deliberately leaves that headroom.)
      p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
      p.Add(std::make_unique<DocLengthExtractor>());
      break;
    case TaskKind::kEntity:
      // Deliberately collision-prone: the mention tokens share hash
      // buckets with unrelated tokens, so the label is learnable but not
      // trivially (the engineer has not hand-coded mention features yet).
      p.Add(std::make_unique<HashedBagOfWordsExtractor>(1024));
      break;
    case TaskKind::kBalanced:
      p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
      p.Add(std::make_unique<DomainExtractor>());
      break;
  }
  return p;
}

Task MakeTask(TaskKind kind, size_t num_documents, uint64_t seed) {
  Corpus corpus;
  switch (kind) {
    case TaskKind::kWebCat: {
      WebCatOptions opts;
      opts.num_documents = num_documents;
      opts.seed = seed;
      corpus = GenerateWebCatCorpus(opts);
      break;
    }
    case TaskKind::kEntity: {
      EntityExtractOptions opts;
      opts.num_documents = num_documents;
      opts.seed = seed;
      corpus = GenerateEntityExtractCorpus(opts);
      break;
    }
    case TaskKind::kBalanced: {
      BalancedOptions opts;
      opts.num_documents = num_documents;
      opts.seed = seed;
      corpus = GenerateBalancedCorpus(opts);
      break;
    }
  }
  FeaturePipeline pipeline = MakeDefaultPipeline(kind, corpus);
  return Task(TaskKindName(kind), std::move(corpus), std::move(pipeline));
}

}  // namespace zombie
