#ifndef ZOMBIE_CORE_BASELINES_H_
#define ZOMBIE_CORE_BASELINES_H_

#include "core/engine.h"

namespace zombie {

/// The paper's comparison points, expressed through the same engine so all
/// cost accounting is identical:
///  - sequential scan: one group in corpus order, round-robin (i.e. "just
///    run the feature code over the file"),
///  - random scan: one shuffled group (the strongest simple baseline),
/// each with the reward signal zeroed (nothing to steer).

/// Runs a sequential full-order scan. Early stopping follows
/// engine.options().stop — pass a StopRule with plateau disabled for the
/// classic "process everything" behavior.
RunResult RunSequentialBaseline(const ZombieEngine& engine,
                                const Learner& learner_prototype);

/// Runs a random-order scan.
RunResult RunRandomBaseline(const ZombieEngine& engine,
                            const Learner& learner_prototype);

/// The practitioner's shortcut baseline: featurize only a uniform random
/// sample of `sample_size` items, train, evaluate — no adaptivity, no
/// convergence detection. Cheap but blind: on skewed tasks the sample must
/// be large to contain enough positives. (Implemented as a random scan
/// with a hard item budget.)
RunResult RunFixedSampleBaseline(const ZombieEngine& engine,
                                 const Learner& learner_prototype,
                                 size_t sample_size);

/// Convenience: engine options whose stop rule only triggers on corpus
/// exhaustion or `max_items` (plateau and target disabled) — the
/// "full scan" configuration of the baselines.
EngineOptions FullScanOptions(EngineOptions base);

}  // namespace zombie

#endif  // ZOMBIE_CORE_BASELINES_H_
