#include "core/engine.h"

#include <algorithm>
#include <vector>

#include "core/convergence.h"
#include "core/speculative_prefetcher.h"
#include "data/corpus_source.h"
#include "featureeng/feature_cache.h"
#include "index/grouped_corpus.h"
#include "index/incremental_grouper.h"
#include "ml/dataset.h"
#include "ml/evaluator.h"
#include "ml/feature_pruner.h"
#include "obs/obs.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace zombie {

GroupingResult MakeSingleGroupGrouping(size_t corpus_size) {
  GroupingResult g;
  g.method = "single";
  g.groups.resize(1);
  g.groups[0].reserve(corpus_size);
  for (size_t i = 0; i < corpus_size; ++i) {
    g.groups[0].push_back(static_cast<uint32_t>(i));
  }
  return g;
}

ZombieEngine::ZombieEngine(const Corpus* corpus,
                           const FeaturePipeline* pipeline,
                           EngineOptions options)
    : corpus_(corpus), pipeline_(pipeline), options_(options) {
  ZCHECK(corpus != nullptr);
  ZCHECK(pipeline != nullptr);
  ZCHECK_OK(options.Validate());
  ZCHECK(!corpus->empty()) << "cannot run on an empty corpus";
}

ZombieEngine::ZombieEngine(const Corpus* corpus, ExtractionService* service,
                           EngineOptions options)
    : corpus_(corpus),
      pipeline_(service != nullptr ? &service->pipeline() : nullptr),
      service_(service),
      options_(options) {
  ZCHECK(corpus != nullptr);
  ZCHECK(service != nullptr);
  ZCHECK(options.feature_cache == nullptr)
      << "with a borrowed ExtractionService the cache belongs to the "
         "service, not EngineOptions";
  ZCHECK(options.feature_store == nullptr)
      << "with a borrowed ExtractionService the feature store belongs to "
         "the service, not EngineOptions";
  ZCHECK_OK(options.Validate());
  ZCHECK(!corpus->empty()) << "cannot run on an empty corpus";
}

namespace {

int32_t BinaryLabel(int32_t raw) { return raw == 1 ? 1 : 0; }

}  // namespace

RunResult ZombieEngine::Run(const RunSpec& spec) const {
  ZCHECK(spec.grouping != nullptr);
  ZCHECK(spec.policy != nullptr);
  ZCHECK(spec.learner != nullptr);
  ZCHECK(spec.reward != nullptr);
  const GroupingResult& grouping = *spec.grouping;
  const bool streaming = spec.stream != nullptr;
  if (streaming) {
    ZCHECK(spec.incremental_grouper != nullptr)
        << "streaming runs need the grouper that built spec.grouping";
    ZCHECK(&spec.stream->corpus() == corpus_)
        << "stream must be scheduled over the engine's corpus";
    ZCHECK_EQ(spec.incremental_grouper->num_groups(), grouping.groups.size())
        << "spec.grouping must be the incremental grouper's GroupBase "
           "result";
  }
  // The offline prefix: grouping, holdout sampling, and cost normalization
  // all see only these documents. Offline runs use the whole corpus, so
  // every base_size-derived quantity below reduces to the pre-streaming
  // value byte for byte.
  const size_t base_size =
      streaming ? spec.stream->base_size() : corpus_->size();
  const BanditPolicy& policy_prototype = *spec.policy;
  const Learner& learner_prototype = *spec.learner;
  const RewardFunction& reward_prototype = *spec.reward;
  const std::vector<ArmSummary>* warm_start = spec.warm_start;
  Stopwatch wall;
  Rng rng(options_.seed);
  VirtualClock clock;

  RunResult result;
  result.grouper_name = grouping.method;

  // --- Observability sinks (all null when disabled). Everything recorded
  // here is measurement only — no instrumented branch may influence the
  // run (RunResult stays byte-identical with obs on or off). -------------
  ObsContext* obs = options_.obs;
  MetricsRegistry* metrics = obs != nullptr ? obs->metrics() : nullptr;
  TraceRecorder* tracer = obs != nullptr ? obs->trace() : nullptr;
  DecisionLog* dlog = obs != nullptr ? obs->decisions() : nullptr;
  Counter* pulls_counter = nullptr;
  Counter* positives_counter = nullptr;
  Counter* evals_counter = nullptr;
  Counter* cache_hit_counter = nullptr;
  Counter* cache_miss_counter = nullptr;
  Counter* cache_bypass_counter = nullptr;
  Histogram* extract_hist = nullptr;
  Histogram* eval_hist = nullptr;
  Histogram* holdout_eval_hist = nullptr;
  if (metrics != nullptr) {
    metrics->GetCounter("engine.runs")->Increment();
    pulls_counter = metrics->GetCounter("engine.pulls");
    positives_counter = metrics->GetCounter("engine.positives");
    evals_counter = metrics->GetCounter("engine.evals");
    cache_hit_counter = metrics->GetCounter("featureeng.cache.hits");
    cache_miss_counter = metrics->GetCounter("featureeng.cache.misses");
    cache_bypass_counter = metrics->GetCounter("featureeng.cache.bypass");
    extract_hist = metrics->GetHistogram("featureeng.extract_us");
    eval_hist = metrics->GetHistogram("engine.eval_us");
    holdout_eval_hist = metrics->GetHistogram("engine.holdout_eval_us");
  }
  TraceSpan run_span(tracer, "engine.run", "engine");

  // All featurization goes through the ExtractionService facade: either
  // the caller's shared service, or a transient per-run one wrapping
  // (pipeline, EngineOptions::feature_cache, RunSpec::prefetch). The
  // service's memoization and speculation are wall-clock-only (see its
  // equivalence contract), so everything downstream — learner updates,
  // rewards, the virtual clock — is byte-identical whether extraction is
  // raw, cached, or prefetched.
  ExtractionService* service = service_;
  std::unique_ptr<ExtractionService> run_service;
  if (service == nullptr) {
    run_service = std::make_unique<ExtractionService>(
        pipeline_, options_.feature_cache, spec.prefetch, tracer,
        options_.feature_store);
    service = run_service.get();
  }
  // Online feature pruning. Disabled (the default) constructs nothing and
  // every hook below is null-guarded, so the prune-off run is byte-for-byte
  // the pre-pruning engine. Enabled, the pruner observes training examples
  // and freezes its mask at a holdout-eval boundary — all decisions derive
  // from virtual-time-visible state only, so the pruned run is itself
  // byte-identical across thread counts, cache/store modes, and SIMD
  // levels.
  const FeaturePrunerOptions& prune_opts = spec.pruning_override != nullptr
                                               ? *spec.pruning_override
                                               : options_.pruning;
  std::unique_ptr<FeaturePruner> pruner;
  if (prune_opts.enabled) {
    pruner = std::make_unique<FeaturePruner>(prune_opts);
  }

  CacheOutcome last_cache = CacheOutcome::kDisabled;
  auto featurize = [&](uint32_t doc_id, const Document& doc) {
    ScopedHistogramTimer extract_timer(extract_hist);
    SparseVector x =
        service->Featurize(doc, doc_id, *corpus_, &last_cache, pruner.get());
    switch (last_cache) {
      case CacheOutcome::kDisabled:
        if (cache_bypass_counter != nullptr) {
          cache_bypass_counter->Increment();
        }
        break;
      case CacheOutcome::kHit:
        if (cache_hit_counter != nullptr) cache_hit_counter->Increment();
        break;
      case CacheOutcome::kMiss:
        if (cache_miss_counter != nullptr) cache_miss_counter->Increment();
        break;
    }
    return x;
  };

  GroupedCorpus grouped(corpus_, grouping, rng.Fork().NextUint64(),
                        spec.shuffle_groups, base_size);
  // Arm count at the start of the run; streaming may grow it (splits, new
  // domains), so the loop always reads the live counts from
  // grouped/stats.
  const size_t num_groups = grouped.num_groups();
  ZCHECK_GE(num_groups, 1u);

  // Speculative prefetch: overlaps each holdout evaluation window with
  // background extraction of the top-ranked arms' upcoming documents.
  // No-op unless the service has prefetch workers.
  SpeculativePrefetcher prefetcher(service, &grouped, tracer);

  // --- Holdout: sample, exclude from training, featurize up front. --------
  // Streaming: sampled from the offline base prefix only — unarrived
  // documents must not leak into evaluation (or be pre-marked processed
  // before they exist).
  size_t holdout_size = std::min(options_.holdout_size, base_size / 2);
  holdout_size = std::max<size_t>(holdout_size, 1);
  Dataset holdout_data;
  {
    TraceSpan holdout_span(tracer, "engine.holdout", "engine");
    std::vector<uint32_t> ids(base_size);
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
    Rng holdout_rng = rng.Fork();
    holdout_rng.Shuffle(&ids);
    if (options_.holdout_positive_fraction >= 0.0) {
      // Stratified: walk the shuffled order taking positives/negatives
      // until each quota fills (falling back to whatever remains). Never
      // take more than half of the corpus's positives — on very skewed
      // corpora the holdout must not starve training of the rare class.
      size_t corpus_positives = 0;
      for (size_t i = 0; i < base_size; ++i) {
        corpus_positives += corpus_->doc(i).label == 1;
      }
      size_t want_pos = static_cast<size_t>(
          options_.holdout_positive_fraction *
          static_cast<double>(holdout_size));
      want_pos = std::min(want_pos, corpus_positives / 2);
      size_t want_neg = holdout_size - want_pos;
      std::vector<uint32_t> chosen;
      std::vector<uint32_t> leftovers;
      for (uint32_t id : ids) {
        bool positive = corpus_->doc(id).label == 1;
        if (positive && want_pos > 0) {
          chosen.push_back(id);
          --want_pos;
        } else if (!positive && want_neg > 0) {
          chosen.push_back(id);
          --want_neg;
        } else {
          leftovers.push_back(id);
        }
        if (want_pos == 0 && want_neg == 0) break;
      }
      for (uint32_t id : leftovers) {
        if (chosen.size() >= holdout_size) break;
        chosen.push_back(id);
      }
      ids = std::move(chosen);
    } else {
      ids.resize(holdout_size);
    }
    for (uint32_t id : ids) grouped.MarkProcessed(id);

    for (uint32_t id : ids) {
      const Document& doc = corpus_->doc(id);
      holdout_data.Add(featurize(id, doc), BinaryLabel(doc.label));
      if (options_.charge_holdout_cost) {
        clock.Advance(pipeline_->ExtractionCostMicros(doc) +
                      doc.labeling_cost_micros);
      }
    }
    result.holdout_virtual_micros = clock.NowMicros();
    clock.Reset();  // loop_virtual_micros is tracked separately
  }
  HoldoutEvaluator holdout(std::move(holdout_data));

  // Private pool for sharded holdout scoring (never the caller's driver
  // pool: nesting ParallelFor inside a driver task can leave every worker
  // blocked in Wait() on subtasks queued behind them). Scoring writes
  // disjoint slots of a pre-sized vector over fixed shard boundaries and
  // all reductions run serially, so results are byte-identical at any
  // thread count. The serial default (threads == 1) creates no pool and
  // allocates nothing extra.
  std::unique_ptr<ThreadPool> eval_pool;
  if (options_.holdout_eval_threads > 1) {
    eval_pool = std::make_unique<ThreadPool>(options_.holdout_eval_threads);
  }

  // Probe subset for probe-requiring rewards.
  Dataset probe;
  const bool needs_probe = reward_prototype.requires_probe();
  if (needs_probe) {
    size_t probe_size = std::min(options_.probe_size, holdout.size());
    for (size_t i = 0; i < probe_size; ++i) {
      probe.Add(holdout.holdout().example(i));
    }
  }

  // --- Components ----------------------------------------------------------
  std::unique_ptr<Learner> learner = learner_prototype.Clone();
  std::unique_ptr<BanditPolicy> policy = policy_prototype.Clone();
  std::unique_ptr<RewardFunction> reward = reward_prototype.Clone();
  policy->Reset(num_groups);
  ArmStats stats(num_groups, options_.arm_stats);
  std::vector<size_t> pseudo_pulls(num_groups, 0);
  std::vector<double> pseudo_reward(num_groups, 0.0);
  if (warm_start != nullptr && warm_start->size() == num_groups) {
    // Seed each arm with a handful of pseudo-observations at its previous
    // mean reward; enough to bias early selection, few enough that fresh
    // evidence overrides stale knowledge quickly. Pseudo counts are
    // subtracted from the reported arm summaries below.
    for (size_t a = 0; a < num_groups; ++a) {
      const ArmSummary& prior = (*warm_start)[a];
      if (prior.pulls == 0) continue;
      double mean = prior.total_reward / static_cast<double>(prior.pulls);
      size_t pseudo = std::min<size_t>(prior.pulls, 5);
      for (size_t k = 0; k < pseudo; ++k) {
        stats.Record(a, mean);
        policy->Observe(a, mean);
      }
      pseudo_pulls[a] = pseudo;
      pseudo_reward[a] = mean * static_cast<double>(pseudo);
    }
  }
  std::vector<size_t> arm_positives(num_groups, 0);
  Rng select_rng = rng.Fork();

  // --- Streaming ingestion --------------------------------------------------
  // The engine owns the cursor into the (const, pre-sorted) arrival
  // schedule; the source itself is never mutated, so sharing one
  // ScheduledCorpusSource across concurrent runs is safe. Arrivals become
  // visible when the *virtual* clock passes their timestamp, and the
  // engine consumes them only at holdout-eval boundaries (plus starvation
  // fast-forwards) — the same virtual-time-visible rule as prune freezes —
  // so ingestion is byte-identical across thread counts, cache/store
  // modes, and SIMD levels.
  std::unique_ptr<IncrementalGrouper> igrouper =
      streaming ? spec.incremental_grouper->Clone() : nullptr;
  size_t stream_cursor = 0;  // next unconsumed arrival
  std::vector<IngestEvent> ingest_events;
  Counter* ingest_windows_counter = nullptr;
  Counter* ingest_docs_counter = nullptr;
  Counter* ingest_new_arms_counter = nullptr;
  Counter* ingest_splits_counter = nullptr;
  if (metrics != nullptr && streaming) {
    ingest_windows_counter = metrics->GetCounter("ingest.windows");
    ingest_docs_counter = metrics->GetCounter("ingest.docs");
    ingest_new_arms_counter = metrics->GetCounter("ingest.new_arms");
    ingest_splits_counter = metrics->GetCounter("ingest.splits");
  }

  // Stream-visible virtual time: the holdout featurization charge plus the
  // loop clock (the clock resets after the holdout pass so the two spans
  // are tracked separately).
  auto stream_virtual_now = [&]() {
    return result.holdout_virtual_micros + clock.NowMicros();
  };

  // Consumes every arrival whose virtual timestamp has passed: routes the
  // document through the incremental grouper, appends it to its groups,
  // and registers any group born from it (split or new domain) as a fresh
  // bandit arm — GroupedCorpus::AddGroup, ArmStats::AddArm, and
  // BanditPolicy::OnArmAdded all number the new arm identically.
  auto ingest = [&](size_t items_now) {
    if (!streaming) return;
    const std::vector<DocumentArrival>& arrivals = spec.stream->arrivals();
    const int64_t now = stream_virtual_now();
    uint64_t docs_added = 0;
    uint64_t new_arms = 0;
    uint64_t splits = 0;
    while (stream_cursor < arrivals.size() &&
           arrivals[stream_cursor].at_virtual_micros <= now) {
      const uint32_t doc = arrivals[stream_cursor].doc_index;
      ++stream_cursor;
      IngestAssignment asg = igrouper->AssignOrSplit(*corpus_, doc);
      ZCHECK(!asg.groups.empty());
      for (const NewGroupSeed& seed : asg.new_groups) {
        size_t g = grouped.AddGroup(seed.members);
        size_t arm = stats.AddArm();
        ZCHECK_EQ(arm, g);
        policy->OnArmAdded(arm);
        pseudo_pulls.push_back(0);
        pseudo_reward.push_back(0.0);
        arm_positives.push_back(0);
        ++new_arms;
        splits += seed.source_group != kNoSourceGroup;
      }
      grouped.AppendDocument(doc, asg.groups);
      // The arm may have been exhausted while starved of supply; it is
      // the same group, so it revives with its reward history intact.
      for (size_t g : asg.groups) stats.Reactivate(g);
      ++docs_added;
    }
    if (docs_added == 0) return;
    ZCHECK_EQ(grouped.num_groups(), igrouper->num_groups());
    IngestEvent ev;
    ev.items = static_cast<uint64_t>(items_now);
    ev.virtual_micros = now;
    ev.docs_added = docs_added;
    ev.new_arms = new_arms;
    ev.splits = splits;
    ev.total_arms = static_cast<uint64_t>(stats.num_arms());
    ingest_events.push_back(ev);
    if (ingest_windows_counter != nullptr) {
      ingest_windows_counter->Increment();
      ingest_docs_counter->Increment(docs_added);
      ingest_new_arms_counter->Increment(new_arms);
      ingest_splits_counter->Increment(splits);
    }
  };

  result.policy_name = policy->name();
  result.reward_name = reward->name();
  result.learner_name = learner->name();

  // Per-component latency series and the decision log. The run label keys
  // decision records by configuration + seed, so the log is independent of
  // which driver thread executed the run.
  Histogram* select_hist = nullptr;
  Histogram* update_hist = nullptr;
  if (metrics != nullptr) {
    select_hist =
        metrics->GetHistogram("bandit.select_us." + policy->name());
    update_hist =
        metrics->GetHistogram("learner.update_us." + learner->name());
  }
  std::vector<DecisionRecord> decisions;
  std::vector<PruneEvent> prune_events;
  std::vector<double> score_buffer;
  const std::string run_label =
      dlog != nullptr
          ? StrFormat("%s/%s/%s/%s/s%llu", policy->name().c_str(),
                      grouping.method.c_str(), reward->name().c_str(),
                      learner->name().c_str(),
                      static_cast<unsigned long long>(options_.seed))
          : std::string();

  ConvergenceDetector plateau(options_.stop.plateau);
  const StopRule& stop = options_.stop;
  double peak_quality = 0.0;
  size_t evals_below_peak = 0;

  // Mean per-item pipeline cost, for cost-aware reward normalization.
  double mean_item_cost = 0.0;
  if (options_.cost_aware_rewards) {
    // Base prefix only: the normalizer must not read documents the stream
    // has not yet revealed (and must stay fixed as arrivals land).
    for (size_t i = 0; i < base_size; ++i) {
      mean_item_cost += static_cast<double>(
          pipeline_->ExtractionCostMicros(corpus_->doc(i)));
    }
    mean_item_cost /= static_cast<double>(base_size);
    if (mean_item_cost <= 0.0) mean_item_cost = 1.0;
  }

  // The holdout scoring pass proper (no curve/stop bookkeeping), shared by
  // the cadence evaluation and the final metrics; this is what
  // holdout_eval_threads parallelizes and engine.holdout_eval_us times.
  auto eval_holdout = [&]() {
    ScopedHistogramTimer holdout_eval_timer(holdout_eval_hist);
    return options_.tune_threshold
               ? EvaluateLearnerTuned(*learner, holdout.holdout(), nullptr,
                                      eval_pool.get())
               : holdout.Evaluate(*learner, eval_pool.get());
  };

  auto evaluate = [&](size_t items) {
    ScopedHistogramTimer eval_timer(eval_hist);
    TraceSpan eval_span(tracer, "engine.evaluate", "engine");
    if (evals_counter != nullptr) evals_counter->Increment();
    BinaryMetrics m = eval_holdout();
    CurvePoint p;
    p.items_processed = items;
    p.virtual_micros = clock.NowMicros();
    p.quality = QualityOf(m, options_.metric);
    p.metrics = m;
    result.curve.Add(p);
    plateau.Add(p.quality);
    if (p.quality < peak_quality - stop.decline_margin) {
      ++evals_below_peak;
    } else {
      evals_below_peak = 0;
    }
    peak_quality = std::max(peak_quality, p.quality);
    return p.quality;
  };

  // Probe quality uses AUC regardless of the run's reported metric: the
  // thresholded metrics almost never move for a single update, so their
  // deltas would starve the improvement reward of signal.
  auto probe_quality = [&]() {
    return QualityOf(EvaluateLearner(*learner, probe), QualityMetric::kAuc);
  };

  // Curve origin: the untrained learner.
  evaluate(0);

  // --- The inner loop -------------------------------------------------------
  TraceSpan loop_span(tracer, "engine.loop", "engine");
  size_t items = 0;
  bool stopped = false;
  while (!stopped) {
    if (stats.num_active() == 0) {
      if (streaming && stream_cursor < spec.stream->arrivals().size()) {
        // Starved, not exhausted: every current group is drained but the
        // stream still has arrivals. Fast-forward the virtual clock to the
        // next arrival (the engine would genuinely be idle until then) and
        // ingest. Consuming at least one arrival reactivates at least one
        // arm, so the loop makes progress.
        const int64_t next_at =
            spec.stream->arrivals()[stream_cursor].at_virtual_micros;
        const int64_t now = stream_virtual_now();
        if (next_at > now) clock.Advance(next_at - now);
        ingest(items);
        continue;
      }
      result.stop_reason = StopReason::kExhausted;
      break;
    }
    size_t arm;
    {
      ScopedHistogramTimer select_timer(select_hist);
      arm = policy->SelectArm(stats, &select_rng);
    }
    ZCHECK(stats.active(arm)) << "policy selected an exhausted arm";
    std::optional<uint32_t> doc_idx = grouped.NextFromGroup(arm);
    if (!doc_idx.has_value()) {
      stats.Deactivate(arm);
      continue;
    }
    if (pulls_counter != nullptr) pulls_counter->Increment();

    const Document& doc = corpus_->doc(*doc_idx);
    SparseVector x = featurize(*doc_idx, doc);
    const int64_t extraction_cost =
        pipeline_->ExtractionCostMicros(doc) + doc.labeling_cost_micros;
    clock.Advance(extraction_cost);
    int32_t y = BinaryLabel(doc.label);
    if (y == 1 && positives_counter != nullptr) {
      positives_counter->Increment();
    }

    RewardInputs inputs;
    inputs.features = x;
    inputs.label = y;
    inputs.score_before = learner->Score(x);
    inputs.probability_before = learner->PredictProbability(x);
    inputs.seen_positive = result.positives_processed;
    inputs.seen_negative = items - result.positives_processed;
    double probe_before = needs_probe ? probe_quality() : 0.0;

    // Activation counts feed the eventual prune ranking; one observation
    // per training example, in pull order (no-op once the mask froze).
    if (pruner != nullptr) pruner->ObserveExample(x);
    {
      ScopedHistogramTimer update_timer(update_hist);
      learner->Update(x, y);
    }
    ++items;
    if (y == 1) {
      ++result.positives_processed;
      ++arm_positives[arm];
    }

    inputs.learner = learner.get();
    if (needs_probe) {
      inputs.probe_quality_delta = probe_quality() - probe_before;
    }
    double r = reward->Compute(inputs);
    if (options_.cost_aware_rewards) {
      double relative_cost =
          static_cast<double>(pipeline_->ExtractionCostMicros(doc)) /
          mean_item_cost;
      // Clamp so one freak-cheap item cannot dominate the arm estimate
      // (rewards must stay in [0, 1] for the Bernoulli-style policies).
      r = std::min(1.0, r / std::max(relative_cost, 0.25));
    }
    if (dlog != nullptr) {
      // Captured before Observe so the scores reflect the posterior the
      // policy actually selected from. Every field is deterministic given
      // (corpus, grouping, seed) — no wall time — which is what makes the
      // log byte-identical across driver thread counts.
      policy->ScoreArms(stats, &score_buffer);
      DecisionRecord rec;
      rec.iteration = static_cast<uint64_t>(items - 1);  // 0-based pull index
      rec.arm = static_cast<uint32_t>(arm);
      rec.doc_id = *doc_idx;
      rec.reward = r;
      rec.cache = last_cache;
      rec.extraction_cost_micros = extraction_cost;
      rec.virtual_micros = clock.NowMicros();
      rec.arm_scores = score_buffer;
      decisions.push_back(std::move(rec));
    }
    stats.Record(arm, r);
    policy->Observe(arm, r);

    // --- Cadence: evaluate and apply stop rules. ---------------------------
    if (items % options_.eval_every == 0) {
      // Ingestion first: arrivals whose virtual timestamp has passed join
      // the index before speculation ranks arms and before the holdout
      // scores — the new arms are visible to everything downstream of
      // this boundary.
      ingest(items);
      // Speculate right before the evaluation so the prefetch workers run
      // while this thread is busy scoring the holdout. Candidate ranking
      // draws no randomness and mutates nothing the run observes.
      prefetcher.SpeculateBeforeEvaluation(*policy, stats);
      // Prune freeze happens at most once, exactly here — a holdout-eval
      // boundary — so the holdout kernels below already run compacted. The
      // freeze decision reads only items + learner state (deterministic);
      // the virtual clock never observes pruning bookkeeping.
      if (pruner != nullptr && pruner->MaybeFreeze(learner.get(), items)) {
        holdout =
            HoldoutEvaluator(pruner->CompactDataset(holdout.holdout()));
        if (needs_probe) probe = pruner->CompactDataset(probe);
        const PruneStats& ps = pruner->stats();
        PruneEvent ev;
        ev.items = static_cast<uint64_t>(items);
        ev.virtual_micros = clock.NowMicros();
        ev.input_dimension = static_cast<uint64_t>(ps.input_dimension);
        ev.kept_features = static_cast<uint64_t>(ps.kept_features);
        ev.pruned_features = static_cast<uint64_t>(ps.pruned_features);
        prune_events.push_back(ev);
        if (metrics != nullptr) {
          metrics->GetCounter("prune.freezes")->Increment();
          metrics->GetGauge("prune.frozen_at_items")
              ->Set(static_cast<double>(ps.frozen_at_items));
          metrics->GetGauge("prune.input_dimension")
              ->Set(static_cast<double>(ps.input_dimension));
          metrics->GetGauge("prune.kept_features")
              ->Set(static_cast<double>(ps.kept_features));
          metrics->GetGauge("prune.pruned_features")
              ->Set(static_cast<double>(ps.pruned_features));
        }
      }
      double q = evaluate(items);
      if (stop.target_quality >= 0.0 && q >= stop.target_quality) {
        result.stop_reason = StopReason::kTarget;
        stopped = true;
      } else if (stop.plateau_enabled && items >= stop.min_items &&
                 q > stop.plateau_min_quality && plateau.converged()) {
        result.stop_reason = StopReason::kPlateau;
        stopped = true;
      } else if (stop.decline_enabled && items >= stop.min_items &&
                 evals_below_peak >= stop.decline_window) {
        result.stop_reason = StopReason::kDecline;
        stopped = true;
      }
    }
    if (!stopped && items >= stop.max_items) {
      result.stop_reason = StopReason::kBudget;
      stopped = true;
    }
  }

  // Loop exit: pending speculation is now useless for this run. A per-run
  // service is cancelled outright; a borrowed (shared) one is left alone —
  // other runs may have speculation in flight, and its owner cancels at
  // teardown.
  if (run_service != nullptr) run_service->CancelPrefetch();

  // Final evaluation if the last item batch wasn't evaluated.
  if (result.curve.empty() ||
      result.curve.point(result.curve.size() - 1).items_processed != items) {
    evaluate(items);
  }

  result.items_processed = items;
  result.loop_virtual_micros = clock.NowMicros();
  result.final_metrics = eval_holdout();
  result.final_quality = QualityOf(result.final_metrics, options_.metric);
  result.wall_micros = wall.ElapsedMicros();

  // grouped.num_groups(), not the base count: streaming may have opened
  // arms mid-run, and they report like any other.
  const size_t final_groups = grouped.num_groups();
  result.arms.resize(final_groups);
  for (size_t a = 0; a < final_groups; ++a) {
    result.arms[a].group_size = grouped.group_size(a);
    result.arms[a].pulls = stats.pulls(a) - pseudo_pulls[a];
    result.arms[a].total_reward = stats.total_reward(a) - pseudo_reward[a];
    result.arms[a].positives_seen = arm_positives[a];
  }
  if (dlog != nullptr) {
    dlog->AppendRun(run_label, std::move(decisions));
    if (!prune_events.empty()) {
      dlog->AppendPruneEvents(run_label, std::move(prune_events));
    }
    if (!ingest_events.empty()) {
      dlog->AppendIngestEvents(run_label, std::move(ingest_events));
    }
  }
  // Delta-tracked, so repeated exports from runs sharing a service (and a
  // metrics registry) accumulate without double-counting.
  service->ExportMetrics(metrics);
  return result;
}

}  // namespace zombie
