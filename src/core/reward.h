#ifndef ZOMBIE_CORE_REWARD_H_
#define ZOMBIE_CORE_REWARD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "ml/learner.h"
#include "ml/sparse_vector.h"

namespace zombie {

/// Everything a reward function may look at for one processed item.
/// `score_before` / `probability_before` are the learner's outputs on the
/// item *before* it was trained on (the informative quantities). The
/// `learner` pointer is the live learner, whose state already includes the
/// item when Compute runs (rewards wanting pre-update behavior should use
/// the precomputed fields).
struct RewardInputs {
  const Learner* learner = nullptr;
  /// Non-owning view of the item's feature vector; valid only during the
  /// Compute call.
  SparseVectorView features;
  int32_t label = 0;
  double score_before = 0.0;
  double probability_before = 0.5;
  /// Quality delta on the probe set caused by this item's update; only
  /// populated when the reward function requires_probe(). Probe quality is
  /// measured with a smooth rank metric (AUC) so single-item deltas are
  /// informative.
  double probe_quality_delta = 0.0;
  /// Class counts of the training stream before this item.
  size_t seen_positive = 0;
  size_t seen_negative = 0;
};

/// Scores how *useful* a just-processed item was to the learner — the
/// signal the bandit maximizes. Rewards must land in [0, 1].
class RewardFunction {
 public:
  virtual ~RewardFunction() = default;

  /// True if the engine must measure probe-set quality before/after the
  /// update (costs extra learner evaluations per item).
  virtual bool requires_probe() const { return false; }

  virtual double Compute(const RewardInputs& inputs) const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<RewardFunction> Clone() const = 0;
};

/// Reward 1 for items of the target (rare) class, else 0. The cheapest
/// useful signal: on skewed tasks, positives are what the learner starves
/// for, so steering toward positive-rich groups is nearly optimal.
class LabelReward : public RewardFunction {
 public:
  explicit LabelReward(int32_t target_label = 1);

  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "label"; }
  std::unique_ptr<RewardFunction> Clone() const override;

 private:
  int32_t target_label_;
};

/// Active-learning style: reward grows as the pre-update prediction
/// approaches the decision boundary (1 - |2p - 1|). Favors groups whose
/// items the current model is unsure about.
class UncertaintyReward : public RewardFunction {
 public:
  UncertaintyReward() = default;

  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "uncertainty"; }
  std::unique_ptr<RewardFunction> Clone() const override;
};

/// Reward 1 when the pre-update model misclassifies the item (perceptron
/// style informativeness), else 0.
class MisclassificationReward : public RewardFunction {
 public:
  MisclassificationReward() = default;

  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "misclassify"; }
  std::unique_ptr<RewardFunction> Clone() const override;
};

/// Measured quality improvement on a small probe set, scaled and clamped
/// to [0,1]. The most faithful but most expensive signal.
class ImprovementReward : public RewardFunction {
 public:
  /// `scale` maps probe deltas to [0,1]; a delta >= 1/scale saturates.
  explicit ImprovementReward(double scale = 20.0);

  bool requires_probe() const override { return true; }
  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "improvement"; }
  std::unique_ptr<RewardFunction> Clone() const override;

 private:
  double scale_;
};

/// Weighted blend of label and uncertainty signals.
class BlendedReward : public RewardFunction {
 public:
  explicit BlendedReward(double label_weight = 0.7);

  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "blend"; }
  std::unique_ptr<RewardFunction> Clone() const override;

 private:
  double label_weight_;
  LabelReward label_;
  UncertaintyReward uncertainty_;
};

/// Class-balance reward: 1 when the item's label is the underrepresented
/// class of the training stream so far (ties: positives win, they are the
/// scarce class on the paper's tasks). Keeps the accumulated training set
/// near 50/50, which protects learners whose class prior matters (naive
/// Bayes) from the pure-positive pathology that very pure groups induce.
class BalanceReward : public RewardFunction {
 public:
  BalanceReward() = default;

  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "balance"; }
  std::unique_ptr<RewardFunction> Clone() const override;
};

/// Always 0 — turns the bandit loop into pure scheduling (baselines).
class ZeroReward : public RewardFunction {
 public:
  ZeroReward() = default;

  double Compute(const RewardInputs& inputs) const override;
  std::string name() const override { return "zero"; }
  std::unique_ptr<RewardFunction> Clone() const override;
};

/// Identifier for bench axes.
enum class RewardKind {
  kLabel,
  kUncertainty,
  kMisclassification,
  kImprovement,
  kBlend,
  kBalance,
  kZero,
};

const char* RewardKindName(RewardKind kind);
std::unique_ptr<RewardFunction> MakeReward(RewardKind kind);

}  // namespace zombie

#endif  // ZOMBIE_CORE_REWARD_H_
