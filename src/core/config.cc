#include "core/config.h"

namespace zombie {

Status EngineOptions::Validate() const {
  if (eval_every == 0) {
    return Status::InvalidArgument("eval_every must be positive");
  }
  if (holdout_size == 0) {
    return Status::InvalidArgument("holdout_size must be positive");
  }
  if (probe_size == 0 || probe_size > holdout_size) {
    return Status::InvalidArgument(
        "probe_size must be in [1, holdout_size]");
  }
  if (stop.plateau_enabled && stop.plateau.window < 2) {
    return Status::InvalidArgument("plateau window must be >= 2");
  }
  if (stop.max_items == 0) {
    return Status::InvalidArgument("max_items must be positive");
  }
  if (holdout_eval_threads == 0) {
    return Status::InvalidArgument("holdout_eval_threads must be positive");
  }
  if (Status s = pruning.Validate(); !s.ok()) return s;
  return Status::OK();
}

}  // namespace zombie
