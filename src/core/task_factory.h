#ifndef ZOMBIE_CORE_TASK_FACTORY_H_
#define ZOMBIE_CORE_TASK_FACTORY_H_

#include <memory>
#include <string>

#include "data/corpus.h"
#include "featureeng/pipeline.h"

namespace zombie {

/// The three evaluation workloads (DESIGN.md): T1 rare-category web page
/// classification, T2 entity extraction, T3 balanced control.
enum class TaskKind { kWebCat, kEntity, kBalanced };

const char* TaskKindName(TaskKind kind);

/// A ready-to-run workload: corpus + a representative feature pipeline
/// (the "current revision" the engineer is evaluating).
struct Task {
  std::string name;
  Corpus corpus;
  FeaturePipeline pipeline;

  Task(std::string n, Corpus c, FeaturePipeline p)
      : name(std::move(n)), corpus(std::move(c)), pipeline(std::move(p)) {}
  Task(Task&&) = default;
};

/// Builds a workload of `num_documents` items with deterministic content
/// for `seed`. The pipeline is a mid-session revision (hashed BoW +
/// domain + keywords) — strong enough to learn the task, cheap enough to
/// keep benches fast.
Task MakeTask(TaskKind kind, size_t num_documents, uint64_t seed);

/// The default pipeline used by MakeTask, exposed for tests.
FeaturePipeline MakeDefaultPipeline(TaskKind kind, const Corpus& corpus);

}  // namespace zombie

#endif  // ZOMBIE_CORE_TASK_FACTORY_H_
