#include "core/reward.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace zombie {

LabelReward::LabelReward(int32_t target_label) : target_label_(target_label) {}

double LabelReward::Compute(const RewardInputs& inputs) const {
  return inputs.label == target_label_ ? 1.0 : 0.0;
}

std::unique_ptr<RewardFunction> LabelReward::Clone() const {
  return std::make_unique<LabelReward>(target_label_);
}

double UncertaintyReward::Compute(const RewardInputs& inputs) const {
  double p = std::clamp(inputs.probability_before, 0.0, 1.0);
  return 1.0 - std::abs(2.0 * p - 1.0);
}

std::unique_ptr<RewardFunction> UncertaintyReward::Clone() const {
  return std::make_unique<UncertaintyReward>();
}

double MisclassificationReward::Compute(const RewardInputs& inputs) const {
  int32_t predicted = inputs.score_before > 0.0 ? 1 : 0;
  return predicted != inputs.label ? 1.0 : 0.0;
}

std::unique_ptr<RewardFunction> MisclassificationReward::Clone() const {
  return std::make_unique<MisclassificationReward>();
}

ImprovementReward::ImprovementReward(double scale) : scale_(scale) {
  ZCHECK_GT(scale, 0.0);
}

double ImprovementReward::Compute(const RewardInputs& inputs) const {
  return std::clamp(inputs.probe_quality_delta * scale_, 0.0, 1.0);
}

std::unique_ptr<RewardFunction> ImprovementReward::Clone() const {
  return std::make_unique<ImprovementReward>(scale_);
}

BlendedReward::BlendedReward(double label_weight)
    : label_weight_(label_weight) {
  ZCHECK_GE(label_weight, 0.0);
  ZCHECK_LE(label_weight, 1.0);
}

double BlendedReward::Compute(const RewardInputs& inputs) const {
  return label_weight_ * label_.Compute(inputs) +
         (1.0 - label_weight_) * uncertainty_.Compute(inputs);
}

std::unique_ptr<RewardFunction> BlendedReward::Clone() const {
  return std::make_unique<BlendedReward>(label_weight_);
}

double BalanceReward::Compute(const RewardInputs& inputs) const {
  bool positives_scarce = inputs.seen_positive <= inputs.seen_negative;
  return (inputs.label == 1) == positives_scarce ? 1.0 : 0.0;
}

std::unique_ptr<RewardFunction> BalanceReward::Clone() const {
  return std::make_unique<BalanceReward>();
}

double ZeroReward::Compute(const RewardInputs& /*inputs*/) const {
  return 0.0;
}

std::unique_ptr<RewardFunction> ZeroReward::Clone() const {
  return std::make_unique<ZeroReward>();
}

const char* RewardKindName(RewardKind kind) {
  switch (kind) {
    case RewardKind::kLabel:
      return "label";
    case RewardKind::kUncertainty:
      return "uncertainty";
    case RewardKind::kMisclassification:
      return "misclassify";
    case RewardKind::kImprovement:
      return "improvement";
    case RewardKind::kBlend:
      return "blend";
    case RewardKind::kBalance:
      return "balance";
    case RewardKind::kZero:
      return "zero";
  }
  return "?";
}

std::unique_ptr<RewardFunction> MakeReward(RewardKind kind) {
  switch (kind) {
    case RewardKind::kLabel:
      return std::make_unique<LabelReward>();
    case RewardKind::kUncertainty:
      return std::make_unique<UncertaintyReward>();
    case RewardKind::kMisclassification:
      return std::make_unique<MisclassificationReward>();
    case RewardKind::kImprovement:
      return std::make_unique<ImprovementReward>();
    case RewardKind::kBlend:
      return std::make_unique<BlendedReward>();
    case RewardKind::kBalance:
      return std::make_unique<BalanceReward>();
    case RewardKind::kZero:
      return std::make_unique<ZeroReward>();
  }
  ZCHECK(false) << "unknown reward kind";
  return nullptr;
}

}  // namespace zombie
