#include "core/baselines.h"

#include "bandit/round_robin.h"
#include "core/reward.h"

namespace zombie {

RunResult RunSequentialBaseline(const ZombieEngine& engine,
                                const Learner& learner_prototype) {
  GroupingResult grouping = MakeSingleGroupGrouping(engine.corpus().size());
  grouping.method = "sequential";
  RoundRobinPolicy policy;
  ZeroReward reward;
  RunSpec spec(grouping, policy, learner_prototype, reward);
  spec.shuffle_groups = false;
  RunResult r = engine.Run(spec);
  r.policy_name = "sequential";
  return r;
}

RunResult RunRandomBaseline(const ZombieEngine& engine,
                            const Learner& learner_prototype) {
  GroupingResult grouping = MakeSingleGroupGrouping(engine.corpus().size());
  grouping.method = "randomscan";
  RoundRobinPolicy policy;
  ZeroReward reward;
  RunResult r = engine.Run(RunSpec(grouping, policy, learner_prototype,
                                   reward));
  r.policy_name = "randomscan";
  return r;
}

RunResult RunFixedSampleBaseline(const ZombieEngine& engine,
                                 const Learner& learner_prototype,
                                 size_t sample_size) {
  EngineOptions opts = FullScanOptions(engine.options());
  opts.stop.max_items = sample_size;
  // Rebuild the engine with the tightened budget, keeping its extraction
  // path: a borrowed service (shared cache/prefetch) carries over, a
  // pipeline-pointer engine is rebuilt over the same pipeline.
  if (engine.extraction_service() != nullptr) {
    ZombieEngine budgeted(&engine.corpus(), engine.extraction_service(),
                          opts);
    RunResult r = RunRandomBaseline(budgeted, learner_prototype);
    r.policy_name = "fixedsample";
    return r;
  }
  ZombieEngine budgeted(&engine.corpus(), &engine.pipeline(), opts);
  RunResult r = RunRandomBaseline(budgeted, learner_prototype);
  r.policy_name = "fixedsample";
  return r;
}

EngineOptions FullScanOptions(EngineOptions base) {
  base.stop.plateau_enabled = false;
  base.stop.decline_enabled = false;
  base.stop.target_quality = -1.0;
  return base;
}

}  // namespace zombie
