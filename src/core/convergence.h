#ifndef ZOMBIE_CORE_CONVERGENCE_H_
#define ZOMBIE_CORE_CONVERGENCE_H_

#include <cstddef>
#include <deque>

namespace zombie {

/// Plateau detection over the quality-evaluation stream: the run stops
/// when the last `window` evaluations vary by at most `epsilon` — the
/// engineer's quality estimate has converged, so processing more inputs is
/// wasted time (the paper's early-stopping rule).
struct ConvergenceOptions {
  /// Number of consecutive evaluations the plateau must span (>= 2).
  size_t window = 10;
  /// Max-minus-min quality spread tolerated inside the window. The default
  /// matches the granularity of F1 measured on a few-hundred-item holdout.
  double epsilon = 0.01;
};

class ConvergenceDetector {
 public:
  explicit ConvergenceDetector(ConvergenceOptions options = {});

  /// Feeds the next quality evaluation.
  void Add(double quality);

  /// True once a full window of near-constant quality has been seen.
  /// Never true before `window` observations.
  bool converged() const;

  size_t num_observations() const { return total_; }

  void Reset();

  const ConvergenceOptions& options() const { return options_; }

 private:
  ConvergenceOptions options_;
  std::deque<double> recent_;
  size_t total_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_CONVERGENCE_H_
