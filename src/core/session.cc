#include "core/session.h"

#include <algorithm>

#include "bandit/epsilon_greedy.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "data/corpus_source.h"
#include "index/incremental_grouper.h"
#include "obs/obs.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

const char* SessionModeName(SessionMode mode) {
  switch (mode) {
    case SessionMode::kFullScan:
      return "fullscan";
    case SessionMode::kZombie:
      return "zombie";
  }
  return "?";
}

std::string SessionResult::ToString() const {
  return StrFormat(
      "%s: %zu revisions, total wait %s (index %s), best quality %.3f",
      SessionModeName(mode), revisions.size(),
      FormatDuration(total_virtual_micros).c_str(),
      FormatDuration(index_virtual_micros).c_str(), best_quality);
}

SessionResult RunSession(const Corpus& corpus, const RevisionScript& script,
                         SessionMode mode, Grouper* grouper,
                         const Learner& learner_prototype,
                         const RewardFunction& reward,
                         EngineOptions engine_options,
                         bool warm_start_bandit, FeatureCache* cache,
                         PrefetchOptions prefetch,
                         PersistentFeatureStore* store,
                         const SessionStreamConfig* stream) {
  ZCHECK(engine_options.feature_cache == nullptr)
      << "pass the cache via RunSession's cache parameter";
  ZCHECK(engine_options.feature_store == nullptr)
      << "pass the store via RunSession's store parameter";
  SessionResult session;
  session.mode = mode;
  std::vector<ArmSummary> previous_arms;

  const bool streaming =
      mode == SessionMode::kZombie && stream != nullptr &&
      stream->source != nullptr;
  GroupingResult grouping;
  if (mode == SessionMode::kZombie) {
    if (streaming) {
      // Prime the incremental grouper over the offline base prefix once;
      // every revision replays the same arrival schedule from this state
      // (the engine clones the primed grouper per run).
      ZCHECK(stream->incremental_grouper != nullptr)
          << "streaming session needs an incremental grouper";
      grouping = stream->incremental_grouper->GroupBase(
          corpus, stream->source->base_size());
    } else {
      ZCHECK(grouper != nullptr) << "kZombie session needs a grouper";
      grouping = grouper->Group(corpus);
    }
    session.index_virtual_micros = grouping.build_virtual_micros;
    session.index_wall_micros = grouping.build_wall_micros;
  }

  for (size_t r = 0; r < script.size(); ++r) {
    FeaturePipeline pipeline = script.BuildPipeline(r, corpus);
    // Each revision gets an independent but deterministic seed.
    EngineOptions opts = engine_options;
    opts.seed = HashCombine(engine_options.seed, r);
    // One service per revision (the fingerprint is per-pipeline); the
    // shared cache carries memoized extractions across revisions and
    // sessions. The service drains its prefetch workers before the
    // pipeline goes out of scope.
    ExtractionService service(
        &pipeline, cache, prefetch,
        engine_options.obs != nullptr ? engine_options.obs->trace() : nullptr,
        store);

    RevisionOutcome outcome;
    outcome.revision_name = script.name(r);
    if (mode == SessionMode::kFullScan) {
      EngineOptions full = FullScanOptions(opts);
      ZombieEngine engine(&corpus, &service, full);
      RunResult run = RunRandomBaseline(engine, learner_prototype);
      outcome.items_processed = run.items_processed;
      outcome.virtual_micros = run.total_virtual_micros();
      outcome.final_quality = run.final_quality;
      outcome.stop_reason = run.stop_reason;
    } else {
      ZombieEngine engine(&corpus, &service, opts);
      EpsilonGreedyPolicy policy;
      const std::vector<ArmSummary>* warm =
          (warm_start_bandit && !previous_arms.empty()) ? &previous_arms
                                                        : nullptr;
      RunSpec spec(grouping, policy, learner_prototype, reward);
      spec.warm_start = warm;
      if (streaming) {
        spec.stream = stream->source;
        spec.incremental_grouper = stream->incremental_grouper;
      }
      RunResult run = engine.Run(spec);
      outcome.items_processed = run.items_processed;
      outcome.virtual_micros = run.total_virtual_micros();
      outcome.final_quality = run.final_quality;
      outcome.stop_reason = run.stop_reason;
      if (warm_start_bandit) previous_arms = run.arms;
    }
    session.best_quality = std::max(session.best_quality,
                                    outcome.final_quality);
    session.total_virtual_micros += outcome.virtual_micros;
    session.revisions.push_back(std::move(outcome));
  }
  session.total_virtual_micros += session.index_virtual_micros;
  return session;
}

}  // namespace zombie
