#include "core/session.h"

#include <algorithm>

#include "bandit/epsilon_greedy.h"
#include "core/baselines.h"
#include "core/engine.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

const char* SessionModeName(SessionMode mode) {
  switch (mode) {
    case SessionMode::kFullScan:
      return "fullscan";
    case SessionMode::kZombie:
      return "zombie";
  }
  return "?";
}

std::string SessionResult::ToString() const {
  return StrFormat(
      "%s: %zu revisions, total wait %s (index %s), best quality %.3f",
      SessionModeName(mode), revisions.size(),
      FormatDuration(total_virtual_micros).c_str(),
      FormatDuration(index_virtual_micros).c_str(), best_quality);
}

SessionResult RunSession(const Corpus& corpus, const RevisionScript& script,
                         SessionMode mode, Grouper* grouper,
                         const Learner& learner_prototype,
                         const RewardFunction& reward,
                         EngineOptions engine_options,
                         bool warm_start_bandit, FeatureCache* cache) {
  SessionResult session;
  session.mode = mode;
  std::vector<ArmSummary> previous_arms;

  GroupingResult grouping;
  if (mode == SessionMode::kZombie) {
    ZCHECK(grouper != nullptr) << "kZombie session needs a grouper";
    grouping = grouper->Group(corpus);
    session.index_virtual_micros = grouping.build_virtual_micros;
    session.index_wall_micros = grouping.build_wall_micros;
  }

  for (size_t r = 0; r < script.size(); ++r) {
    FeaturePipeline pipeline = script.BuildPipeline(r, corpus);
    // Each revision gets an independent but deterministic seed.
    EngineOptions opts = engine_options;
    opts.seed = HashCombine(engine_options.seed, r);
    opts.feature_cache = cache;

    RevisionOutcome outcome;
    outcome.revision_name = script.name(r);
    if (mode == SessionMode::kFullScan) {
      EngineOptions full = FullScanOptions(opts);
      ZombieEngine engine(&corpus, &pipeline, full);
      RunResult run = RunRandomBaseline(engine, learner_prototype);
      outcome.items_processed = run.items_processed;
      outcome.virtual_micros = run.total_virtual_micros();
      outcome.final_quality = run.final_quality;
      outcome.stop_reason = run.stop_reason;
    } else {
      ZombieEngine engine(&corpus, &pipeline, opts);
      EpsilonGreedyPolicy policy;
      const std::vector<ArmSummary>* warm =
          (warm_start_bandit && !previous_arms.empty()) ? &previous_arms
                                                        : nullptr;
      RunResult run = engine.Run(grouping, policy, learner_prototype, reward,
                                 /*shuffle_groups=*/true, warm);
      outcome.items_processed = run.items_processed;
      outcome.virtual_micros = run.total_virtual_micros();
      outcome.final_quality = run.final_quality;
      outcome.stop_reason = run.stop_reason;
      if (warm_start_bandit) previous_arms = run.arms;
    }
    session.best_quality = std::max(session.best_quality,
                                    outcome.final_quality);
    session.total_virtual_micros += outcome.virtual_micros;
    session.revisions.push_back(std::move(outcome));
  }
  session.total_virtual_micros += session.index_virtual_micros;
  return session;
}

}  // namespace zombie
