#include "core/convergence.h"

#include <algorithm>

#include "util/logging.h"

namespace zombie {

ConvergenceDetector::ConvergenceDetector(ConvergenceOptions options)
    : options_(options) {
  ZCHECK_GE(options.window, 2u);
  ZCHECK_GE(options.epsilon, 0.0);
}

void ConvergenceDetector::Add(double quality) {
  ++total_;
  recent_.push_back(quality);
  if (recent_.size() > options_.window) recent_.pop_front();
}

bool ConvergenceDetector::converged() const {
  if (recent_.size() < options_.window) return false;
  double lo = *std::min_element(recent_.begin(), recent_.end());
  double hi = *std::max_element(recent_.begin(), recent_.end());
  return hi - lo <= options_.epsilon;
}

void ConvergenceDetector::Reset() {
  recent_.clear();
  total_ = 0;
}

}  // namespace zombie
