#ifndef ZOMBIE_CORE_SESSION_H_
#define ZOMBIE_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/reward.h"
#include "core/run_result.h"
#include "data/corpus.h"
#include "featureeng/extraction_service.h"
#include "featureeng/revision_script.h"
#include "index/grouper.h"
#include "ml/learner.h"

namespace zombie {

class ScheduledCorpusSource;
class IncrementalGrouper;

/// How each revision of the session evaluates its feature code.
enum class SessionMode {
  /// The status quo the paper argues against: every revision featurizes the
  /// whole corpus (random order), trains, evaluates.
  kFullScan,
  /// Zombie: the index is built once; every revision runs the bandit loop
  /// with early stopping.
  kZombie,
};

const char* SessionModeName(SessionMode mode);

/// Per-revision outcome within a session.
struct RevisionOutcome {
  std::string revision_name;
  size_t items_processed = 0;
  int64_t virtual_micros = 0;  // loop + holdout for this revision
  double final_quality = 0.0;
  StopReason stop_reason = StopReason::kExhausted;
};

/// Aggregate outcome of replaying a whole revision script — the engineer's
/// end-to-end wait time (the paper's "8 hours to 5 hours" quantity).
struct SessionResult {
  SessionMode mode = SessionMode::kFullScan;
  std::vector<RevisionOutcome> revisions;
  /// One-time index construction charge (kZombie only).
  int64_t index_virtual_micros = 0;
  int64_t index_wall_micros = 0;
  /// Total engineer wait: index build + every revision's virtual time.
  int64_t total_virtual_micros = 0;
  /// Quality of the best revision (what the engineer ships).
  double best_quality = 0.0;

  std::string ToString() const;
};

/// Replays `script` over `corpus` in the given mode. For kZombie, `grouper`
/// builds the index once up front and `policy_kind`/`reward` drive the
/// loop; for kFullScan those arguments are ignored. Deterministic given
/// `seed`.
///
/// With `warm_start_bandit` (kZombie only), each revision's bandit is
/// seeded with the previous revision's per-arm statistics — the groups'
/// usefulness barely changes between feature tweaks, so re-exploration is
/// mostly wasted work (the paper's cross-iteration amortization idea).
///
/// With `cache` (borrowed, may be shared), every revision's featurization
/// is memoized on the revision's pipeline fingerprint: re-running a script
/// whose prefix is unchanged — the paper's edit-run-evaluate loop — skips
/// re-extraction for those revisions entirely. Virtual-time and quality
/// numbers are unchanged by the cache; only wall-clock time shrinks.
///
/// Ownership: the session routes each revision through its own
/// ExtractionService built over (revision pipeline, cache, `prefetch`,
/// `store`), so EngineOptions::feature_cache and feature_store must be null
/// here — pass both via the parameters and they outlive every service
/// built on them. `prefetch` enables speculative prefetch extraction per
/// revision; `store` attaches a persistent second cache tier that carries
/// extractions across *processes* and restarts (both wall-clock-only; see
/// ExtractionService). Each revision hits the store under its own pipeline
/// fingerprint, so a warm store skips re-extraction for exactly the
/// revisions whose feature code is unchanged.
/// Streaming ingestion for kZombie sessions. When `source` is set the
/// session ignores the positional `grouper`: it primes
/// `incremental_grouper` once over the offline base prefix (charging the
/// index build exactly like the offline path) and every revision replays
/// the same arrival schedule — the engine clones the primed grouper per
/// run, so revisions are independent and deterministic. Both pointers are
/// borrowed and must outlive the call.
struct SessionStreamConfig {
  const ScheduledCorpusSource* source = nullptr;
  /// Unprimed; the session calls GroupBase exactly once.
  IncrementalGrouper* incremental_grouper = nullptr;
};

SessionResult RunSession(const Corpus& corpus, const RevisionScript& script,
                         SessionMode mode, Grouper* grouper,
                         const Learner& learner_prototype,
                         const RewardFunction& reward,
                         EngineOptions engine_options,
                         bool warm_start_bandit = false,
                         FeatureCache* cache = nullptr,
                         PrefetchOptions prefetch = {},
                         PersistentFeatureStore* store = nullptr,
                         const SessionStreamConfig* stream = nullptr);

}  // namespace zombie

#endif  // ZOMBIE_CORE_SESSION_H_
