#ifndef ZOMBIE_CORE_ENGINE_H_
#define ZOMBIE_CORE_ENGINE_H_

#include <memory>

#include <vector>

#include "bandit/policy.h"
#include "core/config.h"
#include "core/reward.h"
#include "core/run_result.h"
#include "core/run_spec.h"
#include "data/corpus.h"
#include "featureeng/extraction_service.h"
#include "featureeng/pipeline.h"
#include "index/grouper.h"
#include "ml/learner.h"

namespace zombie {

/// The Zombie inner loop (the paper's core contribution).
///
/// Given an indexed corpus, the engine repeatedly:
///  1. asks the bandit policy for an index group (arm),
///  2. pops that group's next unprocessed item,
///  3. runs the feature pipeline on it — the expensive step, charged to the
///     virtual clock at the item's extraction cost × the pipeline's cost
///     factor — and obtains its label,
///  4. trains the incremental learner on the example,
///  5. scores the item's usefulness with the reward function and feeds the
///     bandit,
///  6. every `eval_every` items, measures quality on the fixed holdout and
///     applies the stop rules (plateau / target / budget).
///
/// With RunSpec::stream set, the run is *streaming*: only the offline base
/// prefix exists up front, and at each holdout-eval boundary the engine
/// consumes the arrivals whose virtual timestamp has passed — appending
/// documents to the index, splitting or opening groups via the
/// incremental grouper, and registering each new group as a bandit arm.
///
/// A run is fully deterministic given (corpus, grouping, options.seed, and
/// the arrival schedule when streaming); wall-clock accelerations (feature
/// cache, speculative prefetch, parallel holdout evaluation) never change
/// RunResult or the decision log.
class ZombieEngine {
 public:
  /// Both pointers are borrowed and must outlive the engine. Extraction
  /// goes through a per-run ExtractionService built over `pipeline` and
  /// EngineOptions::feature_cache (if any), honoring RunSpec::prefetch.
  ZombieEngine(const Corpus* corpus, const FeaturePipeline* pipeline,
               EngineOptions options = {});

  /// Extraction routed through a caller-owned service (shared cache policy
  /// and speculation budget across runs — the session and experiment
  /// driver use this). `service` is borrowed and must outlive the engine;
  /// its prefetch configuration applies to every run, and
  /// RunSpec::prefetch is ignored. EngineOptions::feature_cache must be
  /// null here — the cache, if any, belongs to the service.
  ZombieEngine(const Corpus* corpus, ExtractionService* service,
               EngineOptions options = {});

  /// Executes one run as described by `spec` (see run_spec.h for the
  /// field-by-field contract). The spec's components are cloned, so the
  /// engine never mutates caller state and repeated Run() calls are
  /// independent.
  RunResult Run(const RunSpec& spec) const;

  const EngineOptions& options() const { return options_; }
  const Corpus& corpus() const { return *corpus_; }
  const FeaturePipeline& pipeline() const { return *pipeline_; }
  /// The borrowed service, or null when the engine builds one per run.
  ExtractionService* extraction_service() const { return service_; }

 private:
  const Corpus* corpus_;
  const FeaturePipeline* pipeline_;
  /// Borrowed from the caller (second constructor); null means Run()
  /// constructs a transient service per run.
  ExtractionService* service_ = nullptr;
  EngineOptions options_;
};

/// A one-group GroupingResult covering docs [0, corpus_size) in order;
/// building block of the scan baselines.
GroupingResult MakeSingleGroupGrouping(size_t corpus_size);

}  // namespace zombie

#endif  // ZOMBIE_CORE_ENGINE_H_
