#ifndef ZOMBIE_CORE_ENGINE_H_
#define ZOMBIE_CORE_ENGINE_H_

#include <memory>

#include <vector>

#include "bandit/policy.h"
#include "core/config.h"
#include "core/reward.h"
#include "core/run_result.h"
#include "data/corpus.h"
#include "featureeng/pipeline.h"
#include "index/grouper.h"
#include "ml/learner.h"

namespace zombie {

/// The Zombie inner loop (the paper's core contribution).
///
/// Given an indexed corpus, the engine repeatedly:
///  1. asks the bandit policy for an index group (arm),
///  2. pops that group's next unprocessed item,
///  3. runs the feature pipeline on it — the expensive step, charged to the
///     virtual clock at the item's extraction cost × the pipeline's cost
///     factor — and obtains its label,
///  4. trains the incremental learner on the example,
///  5. scores the item's usefulness with the reward function and feeds the
///     bandit,
///  6. every `eval_every` items, measures quality on the fixed holdout and
///     applies the stop rules (plateau / target / budget).
///
/// A run is fully deterministic given (corpus, grouping, options.seed).
class ZombieEngine {
 public:
  /// Both pointers are borrowed and must outlive the engine.
  ZombieEngine(const Corpus* corpus, const FeaturePipeline* pipeline,
               EngineOptions options = {});

  /// Executes one run. `policy_prototype`, `learner_prototype`, and
  /// `reward` are cloned, so the engine never mutates caller state and
  /// repeated Run() calls are independent.
  ///
  /// `shuffle_groups` controls within-group item order (false = preserve
  /// grouping order, used by the sequential-scan baseline).
  ///
  /// `warm_start` optionally carries per-arm knowledge from a previous run
  /// over the *same grouping* (e.g. the prior feature revision in a
  /// session): each arm is seeded with pseudo-observations of its previous
  /// mean reward, so the bandit skips most of the re-exploration. Ignored
  /// when the arm count does not match.
  RunResult Run(const GroupingResult& grouping,
                const BanditPolicy& policy_prototype,
                const Learner& learner_prototype,
                const RewardFunction& reward,
                bool shuffle_groups = true,
                const std::vector<ArmSummary>* warm_start = nullptr) const;

  const EngineOptions& options() const { return options_; }
  const Corpus& corpus() const { return *corpus_; }
  const FeaturePipeline& pipeline() const { return *pipeline_; }

 private:
  const Corpus* corpus_;
  const FeaturePipeline* pipeline_;
  EngineOptions options_;
};

/// A one-group GroupingResult covering docs [0, corpus_size) in order;
/// building block of the scan baselines.
GroupingResult MakeSingleGroupGrouping(size_t corpus_size);

}  // namespace zombie

#endif  // ZOMBIE_CORE_ENGINE_H_
