#ifndef ZOMBIE_CORE_CONFIG_H_
#define ZOMBIE_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "bandit/arm_stats.h"
#include "core/convergence.h"
#include "ml/feature_pruner.h"
#include "ml/metrics.h"
#include "util/status.h"

namespace zombie {

class FeatureCache;
class ObsContext;
class PersistentFeatureStore;

/// When the inner loop ends. Rules combine with OR: the first satisfied
/// rule stops the run. Exhausting the corpus always stops it.
struct StopRule {
  /// Hard budget on processed items.
  size_t max_items = std::numeric_limits<size_t>::max();
  /// Stop when the quality estimate first reaches this value (< 0: off).
  double target_quality = -1.0;
  /// Stop when the quality estimate plateaus (the paper's rule).
  bool plateau_enabled = true;
  ConvergenceOptions plateau;
  /// Plateau stop requires the quality estimate to have lifted off the
  /// floor: a flat-at-zero curve means the learner has not seen the rare
  /// class yet, not that it has converged.
  double plateau_min_quality = 0.02;
  /// Stop when the quality estimate has clearly peaked: every one of the
  /// last `decline_window` evaluations sat more than `decline_margin`
  /// below the best quality seen. Recency-sensitive learners (SGD) drift
  /// once the informative groups are drained; without this rule such runs
  /// never "converge" because the curve declines instead of flattening.
  bool decline_enabled = true;
  size_t decline_window = 12;
  double decline_margin = 0.08;
  /// Never stop (except on budget/exhaustion) before this many items.
  size_t min_items = 300;
};

/// Engine knobs independent of the pluggable components (policy, grouper,
/// learner, reward are passed as objects; see ZombieEngine::Run).
struct EngineOptions {
  uint64_t seed = 1;
  /// Retrain-evaluate cadence b: quality is measured on the holdout every
  /// `eval_every` processed items.
  size_t eval_every = 25;
  /// Number of corpus items sampled (and featurized up front) as the
  /// quality-estimation holdout. Excluded from training forever.
  size_t holdout_size = 400;
  /// Target positive-class share of the holdout. Rare-class F1 needs
  /// enough positives to be measurable (a 5%-positive holdout of 400 items
  /// has 20 positives, so F1 moves in ~5% jumps and plateau detection
  /// misfires). Stratifying the holdout stabilizes the quality signal; set
  /// to a negative value for natural (unstratified) sampling.
  double holdout_positive_fraction = 0.25;
  /// Probe subset size used by probe-requiring rewards (improvement).
  size_t probe_size = 50;
  QualityMetric metric = QualityMetric::kF1;
  /// Evaluate holdout quality at the F1-optimal score threshold instead of
  /// thresholding at zero (EvaluateLearnerTuned). Decouples the quality
  /// signal from class-prior miscalibration caused by skewed selection.
  bool tune_threshold = false;
  StopRule stop;
  ArmStatsOptions arm_stats;
  /// Charge the virtual clock for featurizing the holdout (the engineer
  /// pays that cost once per revision in reality).
  bool charge_holdout_cost = true;
  /// Cost-aware selection: divide each item's reward by its extraction
  /// cost relative to the corpus mean before feeding the bandit. The
  /// bandit then maximizes usefulness per unit *time* instead of per
  /// item — with heterogeneous item costs, cheap useful groups win.
  bool cost_aware_rewards = false;
  /// Optional feature-extraction memo (borrowed, thread-safe, may be
  /// shared across concurrent runs; must outlive every engine run using
  /// it). When set, extraction is memoized keyed on the pipeline
  /// fingerprint; the virtual clock is still charged full extraction cost
  /// on a hit, so results are byte-identical with the cache on or off —
  /// only wall-clock time changes (featureeng/feature_cache.h).
  ///
  /// Only meaningful for engines built over a raw pipeline pointer: the
  /// engine wraps (pipeline, feature_cache, RunSpec::prefetch) in a
  /// per-run ExtractionService. Engines built over a borrowed
  /// ExtractionService — the session and experiment driver paths — carry
  /// their cache inside the service, and this field must stay null there
  /// (checked at engine construction).
  FeatureCache* feature_cache = nullptr;
  /// Optional persistent second cache tier behind `feature_cache`
  /// (borrowed; featureeng/persistent_feature_store.h). Same as-if-no-store
  /// accounting as the cache: a store hit only skips wall-clock extraction,
  /// the virtual clock is still charged in full, so results are
  /// byte-identical with the store disabled, cold, or warm. Subject to the
  /// same raw-pipeline-engines-only rule as `feature_cache` (checked at
  /// engine construction); usable with or without a memory cache in front.
  PersistentFeatureStore* feature_store = nullptr;
  /// Optional observability sinks (borrowed, thread-safe; obs/obs.h). When
  /// set, the engine emits trace spans, metric series, and per-pull
  /// decision records into whichever sinks the context enables. Never
  /// affects results: RunResult is byte-identical with obs on or off
  /// (asserted by tests and bench_obs_overhead), and the disabled path
  /// (nullptr) costs only null checks.
  ObsContext* obs = nullptr;
  /// Worker threads for the periodic holdout evaluation (1 = serial, no
  /// pool is created). The engine owns a private pool rather than sharing
  /// the experiment driver's: a nested ParallelFor on the driver's pool
  /// could have every worker blocked in Wait() on subtasks stuck behind
  /// them in the same queue. Scoring shards over fixed index ranges into
  /// disjoint slots of one pre-sized vector and every reduction stays
  /// serial, so RunResult is byte-identical at any thread count (see
  /// EvaluateLearner's determinism contract; asserted by
  /// core_engine_holdout_test).
  size_t holdout_eval_threads = 1;
  /// Online feature pruning (ml/feature_pruner.h): off by default, and off
  /// must be a perfect no-op — fingerprints and decision logs byte-identical
  /// to a build without the pruner. When enabled, the mask freezes at a
  /// holdout-eval boundary from virtual-time-visible state only, so results
  /// are still byte-identical across thread counts, cache/store modes, and
  /// forced SIMD levels (only wall-clock and — by design — the post-freeze
  /// learning trajectory change versus pruning off). Overridable per run
  /// via RunSpec::pruning_override.
  FeaturePrunerOptions pruning;

  /// Validates knob ranges.
  [[nodiscard]] Status Validate() const;
};

}  // namespace zombie

#endif  // ZOMBIE_CORE_CONFIG_H_
