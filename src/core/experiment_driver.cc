#include "core/experiment_driver.h"

#include <thread>

#include "core/baselines.h"
#include "core/engine.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace zombie {

Status ExperimentGrid::Validate() const {
  if (policies.empty()) {
    return Status::InvalidArgument("grid has no policies");
  }
  if (groupings.empty()) {
    return Status::InvalidArgument("grid has no groupings");
  }
  if (rewards.empty()) return Status::InvalidArgument("grid has no rewards");
  if (learners.empty()) {
    return Status::InvalidArgument("grid has no learners");
  }
  if (seeds.empty()) return Status::InvalidArgument("grid has no seeds");
  for (const GroupingResult* g : groupings) {
    if (g == nullptr) {
      return Status::InvalidArgument("grid grouping is null");
    }
  }
  for (const RewardFunction* r : rewards) {
    if (r == nullptr) return Status::InvalidArgument("grid reward is null");
  }
  for (const Learner* l : learners) {
    if (l == nullptr) return Status::InvalidArgument("grid learner is null");
  }
  return Status::OK();
}

std::string TrialSpec::Label() const {
  std::string label =
      StrFormat("%s/%s/%s/%s/s%llu", PolicyKindName(policy),
                grouping != nullptr ? grouping->method.c_str() : "?",
                reward != nullptr ? reward->name().c_str() : "?",
                learner != nullptr ? learner->name().c_str() : "?",
                static_cast<unsigned long long>(seed));
  // No-override cells keep the historical label so prunings-free grids
  // produce byte-identical logs and reports.
  if (pruning != nullptr) {
    label += StrFormat("/prune@%zu", pruning_index);
  }
  return label;
}

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Metric-backed pool hooks when the driver has an obs context with
/// metrics enabled; empty (zero-cost) hooks otherwise.
ThreadPoolStatsHooks DriverPoolHooks(const ExperimentDriverOptions& options) {
  ObsContext* obs = options.engine.obs;
  return MetricsPoolHooks(obs != nullptr ? obs->metrics() : nullptr);
}

}  // namespace

ExperimentDriver::ExperimentDriver(const Corpus* corpus,
                                   const FeaturePipeline* pipeline,
                                   ExperimentDriverOptions options)
    : corpus_(corpus),
      pipeline_(pipeline),
      options_(options),
      num_threads_(ResolveThreads(options.num_threads)) {
  ZCHECK(corpus != nullptr);
  ZCHECK(pipeline != nullptr);
  ZCHECK(options_.engine.feature_cache == nullptr)
      << "pass the cache via ExperimentDriverOptions::cache";
  ZCHECK(options_.engine.feature_store == nullptr)
      << "pass the store via ExperimentDriverOptions::store";
  ZCHECK((options_.stream == nullptr) ==
         (options_.incremental_grouper == nullptr))
      << "streaming needs both the source and the incremental grouper";
  ObsContext* obs = options_.engine.obs;
  service_ = std::make_unique<ExtractionService>(
      pipeline_, options_.cache, options_.prefetch,
      obs != nullptr ? obs->trace() : nullptr, options_.store);
}

StatusOr<std::vector<TrialResult>> ExperimentDriver::RunGrid(
    const ExperimentGrid& grid) const {
  ZOMBIE_RETURN_IF_ERROR(grid.Validate());

  // Row-major expansion keeps result order independent of execution order.
  // An empty prunings axis expands as one no-override cell, so grids that
  // predate the axis keep their exact trial order and labels.
  std::vector<const FeaturePrunerOptions*> prunings = grid.prunings;
  if (prunings.empty()) prunings.push_back(nullptr);
  std::vector<TrialSpec> specs;
  specs.reserve(grid.size());
  for (PolicyKind policy : grid.policies) {
    for (const GroupingResult* grouping : grid.groupings) {
      for (const RewardFunction* reward : grid.rewards) {
        for (const Learner* learner : grid.learners) {
          for (size_t p = 0; p < prunings.size(); ++p) {
            for (uint64_t seed : grid.seeds) {
              TrialSpec spec;
              spec.index = specs.size();
              spec.policy = policy;
              spec.grouping = grouping;
              spec.reward = reward;
              spec.learner = learner;
              spec.pruning = prunings[p];
              spec.pruning_index = p;
              spec.seed = seed;
              specs.push_back(spec);
            }
          }
        }
      }
    }
  }

  std::vector<TrialResult> results(specs.size());
  ObsContext* obs = options_.engine.obs;
  TraceRecorder* tracer = obs != nullptr ? obs->trace() : nullptr;
  // Trial labels must outlive their TraceSpans (spans store the name
  // pointer), so they are materialized before the pool starts.
  // Once per trial, not per event.
  std::vector<std::string> labels;  // zombie-lint: allow(no-hot-path-string-copy)
  if (tracer != nullptr) {
    labels.reserve(specs.size());
    for (const TrialSpec& spec : specs) labels.push_back(spec.Label());
  }
  ThreadPool pool(std::min(num_threads_, std::max<size_t>(specs.size(), 1)),
                  DriverPoolHooks(options_));
  Status st = ParallelForStatus(&pool, specs.size(), [&](size_t i) {
    const TrialSpec& spec = specs[i];
    TraceSpan trial_span(tracer,
                         tracer != nullptr ? labels[i].c_str() : "trial",
                         "driver");
    EngineOptions opts = options_.engine;
    opts.seed = spec.seed;
    ZombieEngine engine(corpus_, service_.get(), opts);
    std::unique_ptr<BanditPolicy> policy = MakePolicy(spec.policy);
    if (policy == nullptr) {
      return Status::Internal(StrFormat("trial %zu: unknown policy", i));
    }
    TrialResult& out = results[i];
    out.spec = spec;
    RunSpec run_spec(*spec.grouping, *policy, *spec.learner, *spec.reward);
    run_spec.pruning_override = spec.pruning;
    run_spec.stream = options_.stream;
    run_spec.incremental_grouper = options_.incremental_grouper;
    out.run = engine.Run(run_spec);
    if (options_.cache != nullptr) out.cache = options_.cache->Stats();
    return Status::OK();
  });
  ZOMBIE_RETURN_IF_ERROR(std::move(st));
  if (options_.cache != nullptr && obs != nullptr) {
    options_.cache->ExportMetrics(obs->metrics());
  }
  if (obs != nullptr && obs->metrics() != nullptr) {
    obs->metrics()->GetCounter("driver.trials")->Increment(specs.size());
  }
  return results;
}

std::vector<RunResult> ExperimentDriver::RunScanBaselines(
    const std::vector<uint64_t>& seeds, const Learner& learner_prototype,
    bool sequential) const {
  std::vector<RunResult> results(seeds.size());
  if (seeds.empty()) return results;
  ThreadPool pool(std::min(num_threads_, seeds.size()),
                  DriverPoolHooks(options_));
  ParallelFor(&pool, seeds.size(), [&](size_t i) {
    EngineOptions opts = options_.engine;
    opts.seed = seeds[i];
    ZombieEngine engine(corpus_, service_.get(), FullScanOptions(opts));
    results[i] = sequential
                     ? RunSequentialBaseline(engine, learner_prototype)
                     : RunRandomBaseline(engine, learner_prototype);
  });
  return results;
}

}  // namespace zombie
