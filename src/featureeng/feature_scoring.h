#ifndef ZOMBIE_FEATUREENG_FEATURE_SCORING_H_
#define ZOMBIE_FEATUREENG_FEATURE_SCORING_H_

#include <cstdint>
#include <vector>

#include "data/corpus.h"

namespace zombie {

/// Statistical term scoring over a *labeled sample* of the corpus — the
/// data-driven half of the feature engineer's keyword hunt. The engineer
/// featurizes a small labeled sample anyway (the holdout); these scorers
/// turn it into candidate KeywordExtractor inputs.
///
/// Scores are computed from per-term document frequencies in the positive
/// and negative classes of the supplied document indices.
struct TermScore {
  uint32_t token_id = 0;
  double score = 0.0;
  /// Document frequency in each class within the sample.
  uint32_t df_positive = 0;
  uint32_t df_negative = 0;
};

/// Chi-square statistic of the term-vs-label 2x2 contingency table. High
/// values mark terms whose presence is strongly class-associated (in
/// either direction).
std::vector<TermScore> ChiSquareTerms(const Corpus& corpus,
                                      const std::vector<uint32_t>& sample,
                                      size_t top_k);

/// Pointwise mutual information of (term present, label positive), with
/// add-one smoothing; positive-class-targeted (terms indicating the
/// positive class score highest).
std::vector<TermScore> PmiTerms(const Corpus& corpus,
                                const std::vector<uint32_t>& sample,
                                size_t top_k);

/// Convenience: the token ids of the top_k chi-square terms — directly
/// usable as a KeywordExtractor's keyword list.
std::vector<uint32_t> SuggestKeywords(const Corpus& corpus,
                                      const std::vector<uint32_t>& sample,
                                      size_t top_k);

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_FEATURE_SCORING_H_
