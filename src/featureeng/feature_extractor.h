#ifndef ZOMBIE_FEATUREENG_FEATURE_EXTRACTOR_H_
#define ZOMBIE_FEATUREENG_FEATURE_EXTRACTOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "data/corpus.h"
#include "data/document.h"
#include "text/term_counts.h"

namespace zombie {

/// A unit of user-written feature code: consumes one raw document, emits
/// sparse (feature index, value) pairs in its own local index space
/// [0, dimension()). A FeaturePipeline namespaces several extractors into
/// one global feature space.
///
/// `cost_factor()` models how expensive the extractor is relative to the
/// document's base extraction cost (parsing the raw page). The pipeline
/// charges base_cost * sum(cost_factor) to the virtual clock per item —
/// the quantity Zombie's input selection is trying to spend wisely.
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  /// Appends this extractor's features (local indices) to `out`. `out` is
  /// not cleared; indices may repeat and be unsorted — the pipeline
  /// normalizes.
  virtual void Extract(const Document& doc, const Corpus& corpus,
                       TermCounts* out) const = 0;

  /// Size of the local feature index space; emitted indices must be less
  /// than this.
  virtual uint32_t dimension() const = 0;

  /// Short identifier for pipeline descriptions ("bow4096", "domain", ...).
  virtual std::string name() const = 0;

  /// Relative cost of running this extractor (see class comment).
  virtual double cost_factor() const { return 1.0; }

  /// Stable 64-bit fingerprint of this extractor's *behavior*: two
  /// extractors with equal fingerprints must emit identical features for
  /// every document. The default hashes (name, dimension, cost_factor);
  /// extractors with configuration not visible in those — hash salts,
  /// keyword lists — must fold it in (see extractors.h overrides). The
  /// FeatureCache keys memoized vectors on the pipeline fingerprint, so a
  /// stale fingerprint silently serves wrong features.
  virtual uint64_t Fingerprint() const;
};

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_FEATURE_EXTRACTOR_H_
