#ifndef ZOMBIE_FEATUREENG_FEATURE_CACHE_H_
#define ZOMBIE_FEATUREENG_FEATURE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ml/sparse_vector.h"
#include "util/thread_annotations.h"

namespace zombie {

class MetricsRegistry;

struct FeatureCacheOptions {
  /// Maximum number of cached (revision, doc) vectors. When an insert would
  /// exceed it, roughly the oldest eighth of the cache is evicted in one
  /// batch (amortized LRU — see class comment).
  size_t capacity = 1 << 18;
};

/// Counter snapshot; all counters are cumulative since construction.
struct FeatureCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t entries = 0;

  /// Hits / lookups, or 0.0 before the first lookup.
  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Thread-safe, capacity-bounded memo of feature extraction:
///
///   (pipeline revision fingerprint, doc id) -> (features, label, cost)
///
/// The paper's premise is that feature extraction dominates the inner loop,
/// and a feature-engineering session re-runs near-identical revisions over
/// the same corpus — so unchanged-prefix revisions can skip re-extraction
/// entirely. Correctness contract: FeaturePipeline::Extract is
/// deterministic and the fingerprint captures every behavior-affecting knob
/// (see FeaturePipeline::Fingerprint), so a hit returns exactly the vector
/// extraction would have produced; the engine still charges the *virtual*
/// clock the full extraction cost, keeping all paper numbers byte-identical
/// with the cache on or off (only wall-clock time shrinks).
///
/// Concurrency: lookups take a shared lock and bump an atomic recency stamp
/// on the entry; inserts take an exclusive lock. Eviction is "LRU-ish":
/// exact LRU order would force writes on the read path, so reads are
/// stamped from a global atomic tick and inserts evict the stalest ~1/8 of
/// entries in a batch once capacity is exceeded.
///
/// Entries are handed out as shared_ptr<const Entry>, so a reader's vector
/// stays valid even if the entry is evicted concurrently.
class FeatureCache {
 public:
  struct Entry {
    SparseVector features;
    int32_t label = 0;
    int64_t cost_micros = 0;
  };

  explicit FeatureCache(FeatureCacheOptions options = {});

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  /// Returns the cached entry, or nullptr on miss. Counts a hit/miss.
  std::shared_ptr<const Entry> Lookup(uint64_t pipeline_fingerprint,
                                      uint32_t doc_id) ZOMBIE_EXCLUDES(mu_);

  /// Lookup variant for the extraction hot path (ExtractionService). It
  /// behaves exactly like Lookup() except for entries planted by
  /// InsertSpeculative(): the *first* touch of a speculative entry promotes
  /// it to a regular entry, sets `*speculative_first_touch`, and is counted
  /// as a miss — because without prefetch this lookup *would* have missed.
  /// That as-if accounting keeps hit/miss counts, DecisionLog cache
  /// outcomes, and RunResults byte-identical with prefetch on or off; only
  /// the redundant wall-clock re-extraction is skipped. (Insert/entry
  /// counts do reflect speculative inserts.) Later touches are ordinary
  /// hits, matching the prefetch-off world where the first (miss) touch
  /// would have Insert()ed the entry.
  std::shared_ptr<const Entry> LookupForExtraction(
      uint64_t pipeline_fingerprint, uint32_t doc_id,
      bool* speculative_first_touch) ZOMBIE_EXCLUDES(mu_);

  /// Inserts (or keeps the existing entry for) the key; may evict. The
  /// first writer wins on a duplicate key — values for a given key are
  /// identical by the determinism contract, so which copy survives is
  /// irrelevant.
  void Insert(uint64_t pipeline_fingerprint, uint32_t doc_id, Entry entry)
      ZOMBIE_EXCLUDES(mu_);

  /// Insert performed by a prefetch worker: the entry is marked speculative
  /// so that LookupForExtraction can account for its first touch as a miss
  /// (see above). An existing entry — speculative or not — is kept as-is
  /// (never downgraded to speculative). Returns true when a new speculative
  /// entry was actually created.
  bool InsertSpeculative(uint64_t pipeline_fingerprint, uint32_t doc_id,
                         Entry entry) ZOMBIE_EXCLUDES(mu_);

  /// True when the key is present (speculative or not). Touches no counters
  /// and no recency stamp — used by prefetchers to skip known work without
  /// perturbing the hit/miss accounting.
  bool Contains(uint64_t pipeline_fingerprint, uint32_t doc_id) const
      ZOMBIE_EXCLUDES(mu_);

  /// Drops every entry (counts as evictions).
  void Clear() ZOMBIE_EXCLUDES(mu_);

  FeatureCacheStats Stats() const ZOMBIE_EXCLUDES(mu_);

  /// Publishes the current Stats() into `metrics` as gauges under
  /// "featureeng.cache.*" (entries, inserts, evictions, hit_rate, plus
  /// lifetime hits/misses as *_total). Gauges, not counters: this is a
  /// snapshot export, safe to call repeatedly without double-counting.
  /// No-op when `metrics` is null.
  void ExportMetrics(MetricsRegistry* metrics) const;

  size_t capacity() const { return options_.capacity; }

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    /// Tick of the last lookup/insert touching this slot; mutable under the
    /// shared lock via the atomic.
    std::atomic<uint64_t> last_used{0};
    /// Set by InsertSpeculative; cleared (promoted) by the first
    /// LookupForExtraction touch via atomic exchange under the shared lock.
    std::atomic<bool> speculative{false};

    Slot() = default;
    Slot(std::shared_ptr<const Entry> e, uint64_t tick, bool spec = false)
        : entry(std::move(e)), last_used(tick), speculative(spec) {}
  };

  struct Key {
    uint64_t fingerprint;
    uint32_t doc_id;
    bool operator==(const Key& o) const {
      return fingerprint == o.fingerprint && doc_id == o.doc_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  /// Removes the oldest entries until size <= capacity * 7/8. Caller holds
  /// the exclusive lock.
  void EvictLocked() ZOMBIE_REQUIRES(mu_);

  FeatureCacheOptions options_;
  mutable SharedMutex mu_;
  std::unordered_map<Key, std::unique_ptr<Slot>, KeyHash> map_
      ZOMBIE_GUARDED_BY(mu_);
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_FEATURE_CACHE_H_
