#include "featureeng/extractors.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {

// --- HashedBagOfWordsExtractor ---------------------------------------------

HashedBagOfWordsExtractor::HashedBagOfWordsExtractor(uint32_t dimension,
                                                     bool sublinear_tf,
                                                     uint64_t salt)
    : vectorizer_(dimension, /*signed_hash=*/false, salt),
      sublinear_tf_(sublinear_tf) {}

void HashedBagOfWordsExtractor::Extract(const Document& doc,
                                        const Corpus& /*corpus*/,
                                        TermCounts* out) const {
  TermCounts counts = vectorizer_.TransformIds(doc.tokens);
  for (auto& [idx, value] : counts) {
    if (sublinear_tf_) value = std::log1p(value);
    out->emplace_back(idx, value);
  }
}

std::string HashedBagOfWordsExtractor::name() const {
  return StrFormat("bow%u", vectorizer_.dimension());
}

uint64_t HashedBagOfWordsExtractor::Fingerprint() const {
  uint64_t fp = FeatureExtractor::Fingerprint();
  fp = HashCombine(fp, vectorizer_.salt());
  fp = HashCombine(fp, vectorizer_.signed_hash() ? 1u : 0u);
  return HashCombine(fp, sublinear_tf_ ? 1u : 0u);
}

// --- HashedBigramExtractor --------------------------------------------------

HashedBigramExtractor::HashedBigramExtractor(uint32_t dimension, uint64_t salt)
    : dimension_(dimension), salt_(salt) {
  ZCHECK_GT(dimension, 0u);
}

void HashedBigramExtractor::Extract(const Document& doc,
                                    const Corpus& /*corpus*/,
                                    TermCounts* out) const {
  for (size_t i = 0; i + 1 < doc.tokens.size(); ++i) {
    uint64_t h = HashCombine(
        HashCombine(doc.tokens[i], doc.tokens[i + 1]), salt_);
    out->emplace_back(static_cast<uint32_t>(h % dimension_), 1.0);
  }
}

std::string HashedBigramExtractor::name() const {
  return StrFormat("bigram%u", dimension_);
}

uint64_t HashedBigramExtractor::Fingerprint() const {
  return HashCombine(FeatureExtractor::Fingerprint(), salt_);
}

// --- KeywordExtractor -------------------------------------------------------

KeywordExtractor::KeywordExtractor(std::vector<uint32_t> keyword_token_ids)
    : keywords_(std::move(keyword_token_ids)) {
  std::sort(keywords_.begin(), keywords_.end());
  keywords_.erase(std::unique(keywords_.begin(), keywords_.end()),
                  keywords_.end());
  ZCHECK(!keywords_.empty()) << "keyword list must be non-empty";
}

void KeywordExtractor::Extract(const Document& doc, const Corpus& /*corpus*/,
                               TermCounts* out) const {
  for (uint32_t tok : doc.tokens) {
    auto it = std::lower_bound(keywords_.begin(), keywords_.end(), tok);
    if (it != keywords_.end() && *it == tok) {
      out->emplace_back(static_cast<uint32_t>(it - keywords_.begin()), 1.0);
    }
  }
}

std::string KeywordExtractor::name() const {
  return StrFormat("keywords%zu", keywords_.size());
}

uint64_t KeywordExtractor::Fingerprint() const {
  uint64_t fp = FeatureExtractor::Fingerprint();
  for (uint32_t id : keywords_) fp = HashCombine(fp, id);
  return fp;
}

// --- DocLengthExtractor -----------------------------------------------------

DocLengthExtractor::DocLengthExtractor(uint32_t num_buckets)
    : num_buckets_(num_buckets) {
  ZCHECK_GT(num_buckets, 0u);
}

void DocLengthExtractor::Extract(const Document& doc,
                                 const Corpus& /*corpus*/,
                                 TermCounts* out) const {
  double lg = std::log2(static_cast<double>(doc.tokens.size()) + 1.0);
  uint32_t bucket = std::min(num_buckets_ - 1, static_cast<uint32_t>(lg));
  out->emplace_back(bucket, 1.0);
}

// --- DomainExtractor --------------------------------------------------------

DomainExtractor::DomainExtractor(uint32_t dimension) : dimension_(dimension) {
  ZCHECK_GT(dimension, 0u);
}

void DomainExtractor::Extract(const Document& doc, const Corpus& /*corpus*/,
                              TermCounts* out) const {
  uint64_t h = HashCombine(doc.domain, 0x00D0D0D0ULL);
  out->emplace_back(static_cast<uint32_t>(h % dimension_), 1.0);
}

// --- TokenDiversityExtractor ------------------------------------------------

TokenDiversityExtractor::TokenDiversityExtractor(uint32_t num_buckets)
    : num_buckets_(num_buckets) {
  ZCHECK_GT(num_buckets, 0u);
}

void TokenDiversityExtractor::Extract(const Document& doc,
                                      const Corpus& /*corpus*/,
                                      TermCounts* out) const {
  if (doc.tokens.empty()) {
    out->emplace_back(0, 1.0);
    return;
  }
  std::vector<uint32_t> distinct = doc.tokens;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  double ratio = static_cast<double>(distinct.size()) /
                 static_cast<double>(doc.tokens.size());
  uint32_t bucket = std::min(
      num_buckets_ - 1,
      static_cast<uint32_t>(ratio * static_cast<double>(num_buckets_)));
  out->emplace_back(bucket, 1.0);
}

// --- ExpensiveWrapperExtractor ----------------------------------------------

ExpensiveWrapperExtractor::ExpensiveWrapperExtractor(
    std::unique_ptr<FeatureExtractor> inner, double cost_multiplier)
    : inner_(std::move(inner)), cost_multiplier_(cost_multiplier) {
  ZCHECK(inner_ != nullptr);
  ZCHECK_GT(cost_multiplier_, 0.0);
}

void ExpensiveWrapperExtractor::Extract(const Document& doc,
                                        const Corpus& corpus,
                                        TermCounts* out) const {
  inner_->Extract(doc, corpus, out);
}

std::string ExpensiveWrapperExtractor::name() const {
  return StrFormat("expensive(%s,x%.1f)", inner_->name().c_str(),
                   cost_multiplier_);
}

uint64_t ExpensiveWrapperExtractor::Fingerprint() const {
  // The printed name truncates the multiplier, so hash the exact bits and
  // the inner extractor's full fingerprint (which carries its salt).
  uint64_t mult_bits = 0;
  static_assert(sizeof(mult_bits) == sizeof(cost_multiplier_));
  std::memcpy(&mult_bits, &cost_multiplier_, sizeof(mult_bits));
  return HashCombine(inner_->Fingerprint(), mult_bits);
}

}  // namespace zombie
