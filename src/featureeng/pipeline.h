#ifndef ZOMBIE_FEATUREENG_PIPELINE_H_
#define ZOMBIE_FEATUREENG_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "featureeng/feature_extractor.h"
#include "ml/sparse_vector.h"

namespace zombie {

/// An ordered set of feature extractors composed into one global feature
/// space. Extractor e_i's local indices are offset by the cumulative
/// dimension of e_0..e_{i-1}, so extractors never collide.
///
/// A pipeline is one *revision* of the engineer's feature code; the
/// feature-engineering session is a sequence of pipelines (see
/// revision_script.h). Extracting an item charges
/// doc.extraction_cost_micros * total_cost_factor() of virtual time — the
/// engine does the charging, the pipeline just reports the factor.
class FeaturePipeline {
 public:
  explicit FeaturePipeline(std::string name);

  FeaturePipeline(FeaturePipeline&&) = default;
  FeaturePipeline& operator=(FeaturePipeline&&) = default;

  /// Appends an extractor; returns *this for chaining.
  FeaturePipeline& Add(std::unique_ptr<FeatureExtractor> extractor);

  /// Runs every extractor on the document and assembles the namespaced,
  /// optionally L2-normalized sparse feature vector.
  SparseVector Extract(const Document& doc, const Corpus& corpus) const;

  /// Sum of cost factors across extractors (>= 0; 0 for an empty pipeline).
  double total_cost_factor() const;

  /// Virtual cost of featurizing one document with this pipeline.
  int64_t ExtractionCostMicros(const Document& doc) const;

  /// Total global feature dimension.
  uint32_t dimension() const;

  size_t num_extractors() const { return extractors_.size(); }
  const FeatureExtractor& extractor(size_t i) const;

  const std::string& name() const { return name_; }

  /// L2-normalize the assembled vector (default on: keeps learners'
  /// step-size behavior consistent across extractor mixes).
  void set_l2_normalize(bool on) { l2_normalize_ = on; }
  bool l2_normalize() const { return l2_normalize_; }

  /// "bow4096 + keywords12 + domain" style description.
  std::string Description() const;

  /// Stable revision fingerprint: hashes the ordered extractor fingerprints
  /// plus the normalization flag — everything that determines Extract()'s
  /// output, and nothing else. Two pipelines built independently from the
  /// same revision spec (e.g. the unchanged prefix of a re-run session
  /// script) fingerprint identically, so FeatureCache entries carry across
  /// runs; the display name is deliberately excluded.
  uint64_t Fingerprint() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<FeatureExtractor>> extractors_;
  std::vector<uint32_t> offsets_;  // offsets_[i] = start of extractor i
  bool l2_normalize_ = true;
};

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_PIPELINE_H_
