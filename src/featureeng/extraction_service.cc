#include "featureeng/extraction_service.h"

#include <utility>

#include "featureeng/persistent_feature_store.h"
#include "ml/feature_pruner.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace zombie {

namespace {
// Same binary-label convention the engine applies everywhere: positive
// class is label 1, everything else is 0.
int32_t BinaryLabel(int32_t raw) { return raw == 1 ? 1 : 0; }
}  // namespace

ExtractionService::ExtractionService(const FeaturePipeline* pipeline,
                                     FeatureCache* cache,
                                     PrefetchOptions prefetch,
                                     TraceRecorder* trace,
                                     PersistentFeatureStore* store)
    : pipeline_(pipeline),
      cache_(cache),
      prefetch_(prefetch),
      trace_(trace),
      store_(store) {
  ZCHECK(pipeline_ != nullptr) << "ExtractionService needs a pipeline";
  if (cache_ != nullptr || store_ != nullptr) {
    fingerprint_ = pipeline_->Fingerprint();
  }
  // Speculation needs both workers and a cache to put results into.
  if (prefetch_.threads > 0 && cache_ != nullptr) {
    pool_ = std::make_unique<ThreadPool>(prefetch_.threads);
  }
}

ExtractionService::~ExtractionService() {
  CancelPrefetch();
  // ThreadPool's destructor drains the queue: cancelled tasks bail on the
  // generation check, running tasks finish their current document. After
  // this no task can touch the borrowed pipeline/cache/corpus.
  pool_.reset();
}

SparseVector ExtractionService::Featurize(const Document& doc,
                                          uint32_t doc_id,
                                          const Corpus& corpus,
                                          CacheOutcome* outcome,
                                          const FeaturePruner* pruner) {
  SparseVector x = FeaturizeFull(doc, doc_id, corpus, outcome);
  // View-side compaction: every tier above saw (and stored) the full-
  // dimension vector, so cache/store bytes and outcomes are untouched by
  // pruning; only the caller's copy shrinks.
  if (pruner != nullptr) pruner->CompactInPlace(&x);
  return x;
}

SparseVector ExtractionService::FeaturizeFull(const Document& doc,
                                              uint32_t doc_id,
                                              const Corpus& corpus,
                                              CacheOutcome* outcome) {
  if (cache_ == nullptr) {
    // No memory tier: the store alone still short-circuits wall-clock
    // extraction, while the reported outcome stays kDisabled — exactly
    // what the caller would see with no cache attached at all.
    if (outcome != nullptr) *outcome = CacheOutcome::kDisabled;
    if (store_ != nullptr) {
      if (auto stored = store_->Lookup(fingerprint_, doc_id)) {
        return stored->features;
      }
      SparseVector x = pipeline_->Extract(doc, corpus);
      store_->Append(fingerprint_, doc_id,
                     FeatureCache::Entry{x, BinaryLabel(doc.label),
                                         pipeline_->ExtractionCostMicros(doc)});
      return x;
    }
    return pipeline_->Extract(doc, corpus);
  }
  bool speculative_first_touch = false;
  if (auto hit = cache_->LookupForExtraction(fingerprint_, doc_id,
                                             &speculative_first_touch)) {
    if (speculative_first_touch) {
      // Without prefetch this would have been a miss followed by an
      // extraction + insert; report it as such so downstream accounting
      // (DecisionLog cache outcomes, cache hit/miss stats) is identical.
      useful_.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) *outcome = CacheOutcome::kMiss;
    } else {
      if (outcome != nullptr) *outcome = CacheOutcome::kHit;
    }
    return hit->features;
  }
  if (outcome != nullptr) *outcome = CacheOutcome::kMiss;
  if (store_ != nullptr) {
    if (auto stored = store_->Lookup(fingerprint_, doc_id)) {
      // Second-tier hit: fill the memory cache with the stored entry via
      // the same non-speculative Insert the store-off world would have
      // performed after extracting, so cache-state evolution (and any
      // later eviction behavior) is identical either way.
      cache_->Insert(fingerprint_, doc_id, *stored);
      return std::move(stored->features);
    }
  }
  SparseVector x = pipeline_->Extract(doc, corpus);
  FeatureCache::Entry entry{x, BinaryLabel(doc.label),
                            pipeline_->ExtractionCostMicros(doc)};
  cache_->Insert(fingerprint_, doc_id, entry);
  if (store_ != nullptr) store_->Append(fingerprint_, doc_id, entry);
  return x;
}

size_t ExtractionService::EnqueuePrefetch(
    const Corpus& corpus, const std::vector<uint32_t>& doc_ids) {
  if (pool_ == nullptr) return 0;
  const uint64_t gen = generation_.load(std::memory_order_acquire);
  const Corpus* corpus_ptr = &corpus;
  size_t submitted = 0;
  for (uint32_t doc_id : doc_ids) {
    if (cache_->Contains(fingerprint_, doc_id)) {
      skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Bounded speculation: never more than queue_cap outstanding tasks.
    size_t in_flight = in_flight_.load(std::memory_order_relaxed);
    bool reserved = false;
    while (in_flight < prefetch_.queue_cap) {
      if (in_flight_.compare_exchange_weak(in_flight, in_flight + 1,
                                           std::memory_order_relaxed)) {
        reserved = true;
        break;
      }
    }
    if (!reserved) {
      skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    ++submitted;
    pool_->Submit([this, corpus_ptr, doc_id, gen] {
      if (generation_.load(std::memory_order_acquire) != gen) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      bool created;
      if (store_ != nullptr) {
        if (auto stored = store_->Lookup(fingerprint_, doc_id)) {
          // Second-tier hit: promote to a speculative memory entry with no
          // extraction (and no trace span — no pipeline work ran).
          created = cache_->InsertSpeculative(fingerprint_, doc_id,
                                              std::move(*stored));
          if (created) {
            issued_.fetch_add(1, std::memory_order_relaxed);
          } else {
            skipped_.fetch_add(1, std::memory_order_relaxed);
          }
          in_flight_.fetch_sub(1, std::memory_order_relaxed);
          return;
        }
      }
      TraceSpan span(trace_, "prefetch.extract", "prefetch");
      const Document& doc = corpus_ptr->doc(doc_id);
      SparseVector x = pipeline_->Extract(doc, *corpus_ptr);
      FeatureCache::Entry entry{std::move(x), BinaryLabel(doc.label),
                                pipeline_->ExtractionCostMicros(doc)};
      if (store_ != nullptr) store_->Append(fingerprint_, doc_id, entry);
      created =
          cache_->InsertSpeculative(fingerprint_, doc_id, std::move(entry));
      if (created) {
        issued_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Lost the race to the engine's own insert (or another worker):
        // the extraction was redundant.
        skipped_.fetch_add(1, std::memory_order_relaxed);
      }
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  return submitted;
}

void ExtractionService::CancelPrefetch() {
  if (pool_ == nullptr) return;
  generation_.fetch_add(1, std::memory_order_release);
}

void ExtractionService::DrainPrefetch() {
  if (pool_ == nullptr) return;
  pool_->Wait();
}

PrefetchStats ExtractionService::prefetch_stats() const {
  PrefetchStats s;
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.issued = issued_.load(std::memory_order_relaxed);
  s.useful = useful_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.skipped = skipped_.load(std::memory_order_relaxed);
  return s;
}

void ExtractionService::ExportMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  if (store_ != nullptr) store_->ExportMetrics(metrics);
  if (pool_ == nullptr) return;
  MutexLock lock(&export_mu_);
  PrefetchStats now = prefetch_stats();
  // Counters are increment-only, so export the delta since the previous
  // export; repeated exports (one per engine run on a shared service)
  // accumulate to the lifetime totals without double-counting.
  metrics->GetCounter("prefetch.enqueued")
      ->Increment(now.enqueued - exported_.enqueued);
  metrics->GetCounter("prefetch.issued")
      ->Increment(now.issued - exported_.issued);
  metrics->GetCounter("prefetch.useful")
      ->Increment(now.useful - exported_.useful);
  // wasted() can shrink between exports (an issued entry becomes useful
  // later), so clamp the delta: the counter tracks the high-water growth
  // and may overshoot the instantaneous wasted() by design.
  metrics->GetCounter("prefetch.wasted")
      ->Increment(now.wasted() > exported_.wasted()
                      ? now.wasted() - exported_.wasted()
                      : 0);
  metrics->GetCounter("prefetch.cancelled")
      ->Increment(now.cancelled - exported_.cancelled);
  metrics->GetGauge("prefetch.hit_rate")->Set(now.hit_rate());
  exported_ = now;
}

int64_t ExtractionService::ExtractionCostMicros(const Document& doc) const {
  return pipeline_->ExtractionCostMicros(doc);
}

}  // namespace zombie
