#ifndef ZOMBIE_FEATUREENG_EXTRACTION_SERVICE_H_
#define ZOMBIE_FEATUREENG_EXTRACTION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/corpus.h"
#include "featureeng/feature_cache.h"
#include "featureeng/pipeline.h"
#include "ml/sparse_vector.h"
#include "obs/decision_log.h"
#include "obs/trace.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace zombie {

class FeaturePruner;
class MetricsRegistry;
class PersistentFeatureStore;

/// Bounds for speculative prefetch extraction. All limits are hard caps;
/// speculation beyond them is silently dropped (never queued unbounded).
struct PrefetchOptions {
  /// Background extraction workers. 0 disables speculation entirely — the
  /// service then never creates a pool and EnqueuePrefetch is a no-op.
  size_t threads = 0;
  /// Top-scoring arms considered per speculation window.
  size_t max_arms = 4;
  /// Upcoming unprocessed documents prefetched per arm per window.
  size_t max_items_per_arm = 4;
  /// Maximum outstanding (queued + running) speculative extractions;
  /// candidates past the cap are dropped for that window.
  size_t queue_cap = 64;
};

/// Cumulative speculation counters (since service construction).
struct PrefetchStats {
  /// Tasks handed to the worker pool.
  uint64_t enqueued = 0;
  /// Speculative extractions that ran and created a new cache entry.
  uint64_t issued = 0;
  /// Speculative entries later consumed by a real extraction request.
  uint64_t useful = 0;
  /// Tasks dropped by CancelPrefetch before running.
  uint64_t cancelled = 0;
  /// Candidates skipped at enqueue (already cached / queue cap) plus tasks
  /// whose insert lost to a concurrent writer.
  uint64_t skipped = 0;

  /// Speculative work that has not (yet) paid off.
  uint64_t wasted() const { return issued >= useful ? issued - useful : 0; }
  /// useful / issued, or 0.0 before the first issued extraction.
  double hit_rate() const {
    return issued == 0 ? 0.0
                       : static_cast<double>(useful) /
                             static_cast<double>(issued);
  }
};

/// The single entry point for feature extraction: a facade over the
/// pipeline, the optional FeatureCache, an optional PersistentFeatureStore,
/// and an optional speculative prefetch pool. Everything that featurizes a
/// document — engine inner loop, holdout setup, experiment driver, benches
/// — goes through Featurize() so cache policy and speculation live in
/// exactly one place (enforced by zombie_lint's
/// no-raw-extract-outside-service rule).
///
/// Tiering: the in-memory FeatureCache is the first tier, the persistent
/// store the second. A memory miss consults the store; a store hit fills
/// the memory cache with the stored entry (the same non-speculative Insert
/// the store-off world would have performed after extracting) and is still
/// reported as CacheOutcome::kMiss — the store, like prefetch, only ever
/// short-circuits wall-clock extraction work, never accounting. A
/// miss-in-both extracts and writes through to both tiers.
///
/// Ownership contract: the service *borrows* the pipeline, cache, and
/// store; all must outlive it, and the corpus passed to
/// Featurize/EnqueuePrefetch must stay alive until the service is
/// destroyed (prefetch workers read it asynchronously). The service *owns*
/// its worker pool; the destructor cancels outstanding speculation and
/// drains the workers before returning, so no task outlives the service.
///
/// Equivalence contract (extends the FeatureCache contract): speculation is
/// wall-clock-only. Prefetched entries are inserted speculatively and
/// promoted on first touch with as-if-no-prefetch accounting (see
/// FeatureCache::LookupForExtraction), so the CacheOutcome sequence
/// reported by Featurize — and therefore RunResult, DecisionLog JSONL, and
/// all virtual-time numbers — is byte-identical with prefetch on or off at
/// any thread count. Speculative inserts never evict (a full cache rejects
/// them), so the guarantee holds whenever the cache stays within capacity
/// for the run's working set — the normal configuration (default capacity
/// 256k entries vs corpus-sized working sets). An undersized cache that
/// evicts mid-run voids the guarantee: speculative entries occupy capacity
/// and can shift which committed entries later Inserts evict, changing
/// logged hit/miss outcomes. Size the cache to the corpus when exact
/// replay of decision logs matters.
///
/// Thread safety: Featurize and EnqueuePrefetch may be called from multiple
/// threads concurrently (the experiment driver shares one service across
/// trial workers); the pipeline is stateless and the cache is internally
/// synchronized.
class ExtractionService {
 public:
  /// `trace`, when non-null, receives a "prefetch.extract" span per
  /// speculative extraction; it must outlive the service.
  explicit ExtractionService(const FeaturePipeline* pipeline,
                             FeatureCache* cache = nullptr,
                             PrefetchOptions prefetch = {},
                             TraceRecorder* trace = nullptr,
                             PersistentFeatureStore* store = nullptr);

  /// Cancels outstanding speculation and drains the worker pool.
  ~ExtractionService();

  ExtractionService(const ExtractionService&) = delete;
  ExtractionService& operator=(const ExtractionService&) = delete;

  /// Featurizes one document, memoized through the cache when one is
  /// attached. `outcome` (optional) reports the cache interaction exactly
  /// as it would have happened without prefetch: kDisabled (no cache),
  /// kHit, or kMiss — a speculative entry's first touch reports kMiss (and
  /// counts as prefetch-useful) because that is what the caller would have
  /// observed had speculation been off.
  ///
  /// `pruner` (optional, borrowed) applies online feature pruning as a
  /// view-side transform on the return path: the cache and store tiers stay
  /// keyed and populated at full dimension (entries remain valid across a
  /// mid-run freeze and across prune settings), and only the vector handed
  /// back is compacted. A null or not-yet-frozen pruner changes nothing.
  SparseVector Featurize(const Document& doc, uint32_t doc_id,
                         const Corpus& corpus,
                         CacheOutcome* outcome = nullptr,
                         const FeaturePruner* pruner = nullptr);

  /// Enqueues speculative extraction of `doc_ids` onto the background
  /// workers, bounded by queue_cap outstanding tasks; already-cached ids
  /// and ids past the cap are dropped. Returns the number of tasks
  /// actually enqueued. No-op (returns 0) when speculation is disabled.
  size_t EnqueuePrefetch(const Corpus& corpus,
                         const std::vector<uint32_t>& doc_ids);

  /// Invalidates all not-yet-started speculative tasks (they complete as
  /// no-ops). Non-blocking; running tasks finish their current document.
  void CancelPrefetch();

  /// Blocks until every enqueued speculative task has finished or bailed.
  /// Test/bench hook — the engine never needs it (cache inserts are safe
  /// to race with lookups).
  void DrainPrefetch();

  bool prefetch_enabled() const { return pool_ != nullptr; }

  PrefetchStats prefetch_stats() const;

  /// Publishes prefetch counters into `metrics` when speculation is
  /// enabled: monotonic "prefetch.issued" / "prefetch.useful" /
  /// "prefetch.wasted" / "prefetch.enqueued" / "prefetch.cancelled"
  /// counters (delta-tracked, so repeated exports never double-count) and a
  /// "prefetch.hit_rate" gauge. Also forwards to the attached store's
  /// ExportMetrics ("store.*" gauges) when one is attached. No-op when
  /// `metrics` is null.
  void ExportMetrics(MetricsRegistry* metrics) const
      ZOMBIE_EXCLUDES(export_mu_);

  /// Virtual extraction cost passthrough (see FeaturePipeline).
  int64_t ExtractionCostMicros(const Document& doc) const;

  const FeaturePipeline& pipeline() const { return *pipeline_; }
  FeatureCache* cache() const { return cache_; }
  PersistentFeatureStore* store() const { return store_; }
  const PrefetchOptions& prefetch_options() const { return prefetch_; }
  uint64_t pipeline_fingerprint() const { return fingerprint_; }

 private:
  /// The pre-pruning extraction path (all cache/store tiering); Featurize
  /// compacts its result when a frozen pruner is passed.
  SparseVector FeaturizeFull(const Document& doc, uint32_t doc_id,
                             const Corpus& corpus, CacheOutcome* outcome);

  const FeaturePipeline* pipeline_;
  FeatureCache* cache_;
  PrefetchOptions prefetch_;
  TraceRecorder* trace_;
  /// Optional second cache tier (borrowed); consulted on memory miss,
  /// written through on extraction.
  PersistentFeatureStore* store_;
  /// Computed once: FeaturePipeline::Fingerprint hashes every extractor.
  uint64_t fingerprint_ = 0;
  /// Null unless prefetch.threads > 0 and a cache is attached (speculation
  /// without a cache has nowhere to put results).
  std::unique_ptr<ThreadPool> pool_;
  /// Bumped by CancelPrefetch; tasks capture the value at enqueue and bail
  /// when it has moved.
  std::atomic<uint64_t> generation_{0};
  /// Queued + running speculative tasks (queue_cap bound).
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> issued_{0};
  std::atomic<uint64_t> useful_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> skipped_{0};
  /// Serializes ExportMetrics' read-delta-increment sequence.
  mutable Mutex export_mu_;
  mutable PrefetchStats exported_ ZOMBIE_GUARDED_BY(export_mu_);
};

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_EXTRACTION_SERVICE_H_
